package teco

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSystemStrings(t *testing.T) {
	cases := map[System]string{
		ZeroOffload:      "ZeRO-Offload",
		TECOCXL:          "TECO-CXL",
		TECOReduction:    "TECO-Reduction",
		TECOInvalidation: "TECO-Invalidation",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d => %q", int(s), s.String())
		}
	}
}

func TestModels(t *testing.T) {
	ms := Models()
	if len(ms) != 5 {
		t.Fatalf("models = %d", len(ms))
	}
	if _, ok := ModelByName("Bert-large-cased"); !ok {
		t.Fatal("lookup failed")
	}
}

func TestSimulateAndSpeedup(t *testing.T) {
	m, _ := ModelByName("Bert-large-cased")
	base := Simulate(ZeroOffload, m, 4, SimConfig{})
	red := Simulate(TECOReduction, m, 4, SimConfig{})
	if red.Total() >= base.Total() {
		t.Fatal("TECO-Reduction must be faster")
	}
	sp := Speedup(TECOReduction, m, 4)
	if sp <= 1.0 || sp > 2.5 {
		t.Fatalf("speedup = %v", sp)
	}
	if Speedup(TECOInvalidation, m, 4) >= Speedup(TECOCXL, m, 4) {
		t.Fatal("invalidation ablation must be slower than update protocol")
	}
	// Full-graph model ignores batch.
	g, _ := ModelByName("GCNII")
	if Simulate(TECOCXL, g, 4, SimConfig{}).Total() != Simulate(TECOCXL, g, 64, SimConfig{}).Total() {
		t.Fatal("GCNII batch must be ignored")
	}
}

func TestClassifyChange(t *testing.T) {
	one := math.Float32frombits(0x3F800000)
	if ClassifyChange(one, one) != Unchanged {
		t.Fatal("unchanged")
	}
	if ClassifyChange(one, math.Float32frombits(0x3F800001)) != LastByte {
		t.Fatal("last byte")
	}
	if ClassifyChange(one, -one) != OtherBytes {
		t.Fatal("sign flip")
	}
	_ = LastTwoBytes
}

func TestReplayUpdate(t *testing.T) {
	old := NewTensor("old", 64)
	upd := NewTensor("new", 64)
	for i := 0; i < 64; i++ {
		old.Set(i, float32(i))
		upd.Set(i, float32(i)+1e-5)
	}
	dev, stats, err := ReplayUpdate(old, upd, ReplayConfig{DBA: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lines != 4 || stats.PayloadBytes != 4*32 {
		t.Fatalf("stats = %+v", stats)
	}
	if dev.Len() != 64 {
		t.Fatal("device tensor size")
	}
}

func TestFineTuneSmoke(t *testing.T) {
	r := FineTune(FineTuneConfig{Steps: 30, PreSteps: 30, Seed: 1})
	if len(r.Samples) == 0 || r.FinalAcc < 0 || r.FinalAcc > 1 {
		t.Fatalf("result = %+v", r.FinalAcc)
	}
}

func TestRunExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table1", 1, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "table1") {
		t.Fatalf("output = %q", buf.String())
	}
	if err := RunExperiment("bogus", 1, &buf); err == nil {
		t.Fatal("unknown id must error")
	}
	if len(ExperimentIDs()) == 0 {
		t.Fatal("no experiment ids")
	}
}

func TestSimulateDPU(t *testing.T) {
	m, _ := ModelByName("Bert-large-cased")
	plain := Simulate(ZeroOffload, m, 8, SimConfig{})
	dpu := Simulate(ZeroOffload, m, 8, SimConfig{DPU: true})
	if dpu.Total() >= plain.Total() {
		t.Fatal("DPU must not be slower")
	}
}

func TestReplayGradients(t *testing.T) {
	g := NewTensor("g", 128)
	for i := 0; i < 128; i++ {
		g.Set(i, float32(i)*0.5)
	}
	cpu, stats, err := ReplayGradients(g, ReplayConfig{})
	if err != nil || cpu.Len() != 128 || stats.Lines != 8 {
		t.Fatalf("cpu=%v stats=%+v err=%v", cpu.Len(), stats, err)
	}
}

func TestEstimateAndCost(t *testing.T) {
	m, _ := ModelByName("GPT2")
	est := EstimateTraining(m, 4, 1000, 500)
	if est.Speedup <= 1 {
		t.Fatalf("speedup %v", est.Speedup)
	}
	usd := AnnualSavingsUSD(DefaultCostModel(), est.TimeSavedFraction)
	if usd <= 0 {
		t.Fatalf("savings %v", usd)
	}
}
