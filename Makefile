# TECO reproduction — common targets.

GO ?= go

.PHONY: all build vet test test-short bench experiments loc

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every paper table/figure (plus the extension experiments) as
# markdown on stdout.
experiments:
	$(GO) run ./cmd/tecosim -markdown all
	$(GO) run ./cmd/tecosim -markdown tune-act
	$(GO) run ./cmd/tecosim -markdown ablation-dpu
	$(GO) run ./cmd/tecosim -markdown time-to-loss
	$(GO) run ./cmd/tecosim -markdown linkspeed

loc:
	find . -name '*.go' | xargs wc -l | tail -1
