# TECO reproduction — common targets.

GO ?= go

.PHONY: all build vet test test-short bench check experiments loc

all: build vet test

# Full verification gate: vet, race-enabled tests (-short skips the long
# numeric-training runs, which are single-threaded and covered by `test`),
# and a short native fuzz run over the CXL packet decoder.
check:
	$(GO) vet ./...
	$(GO) test -race -short -timeout 20m ./...
	$(GO) test -fuzz='FuzzDecode$$' -fuzztime=10s ./internal/cxl
	$(GO) test -fuzz='FuzzDecodeFramed$$' -fuzztime=10s ./internal/cxl

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every paper table/figure (plus the extension experiments) as
# markdown on stdout.
experiments:
	$(GO) run ./cmd/tecosim -markdown all
	$(GO) run ./cmd/tecosim -markdown tune-act
	$(GO) run ./cmd/tecosim -markdown ablation-dpu
	$(GO) run ./cmd/tecosim -markdown time-to-loss
	$(GO) run ./cmd/tecosim -markdown linkspeed
	$(GO) run ./cmd/tecosim -markdown -degrade faults

loc:
	find . -name '*.go' | xargs wc -l | tail -1
