# TECO reproduction — common targets.

GO ?= go

.PHONY: all build vet test test-short bench benchflow perfgate check experiments golden cover soak loc

all: build vet test

# Full verification gate: vet, race-enabled tests over the whole tree (the
# training hot loops and the sweep runner are concurrent now, so the race
# detector must see the long numeric runs too, not just -short),
# short native fuzz runs over the CXL packet decoder and the checkpoint
# snapshot decoder, and — when the tools are installed — staticcheck and
# govulncheck (CI always runs them; locally they are skipped if absent).
check:
	$(GO) vet ./...
	$(GO) test -race -timeout 40m ./...
	$(GO) test -count=1 -run 'TestFabricChaos' ./internal/realtrain
	$(GO) test -fuzz='FuzzDecode$$' -fuzztime=10s ./internal/cxl
	$(GO) test -fuzz='FuzzDecodeFramed$$' -fuzztime=10s ./internal/cxl
	$(GO) test -fuzz='FuzzDecodeSnapshot$$' -fuzztime=10s ./internal/checkpoint
	$(GO) test -fuzz='FuzzDecodeFrame$$' -fuzztime=10s ./internal/fabric
	$(GO) test -race -count=1 -run 'TestKernelBitIdentity|TestArenaReuse' ./internal/kernels
	$(GO) test -run xxx -bench 'TrainStep|MatmulBlocked|FusedAdamScan' -benchtime=1x ./internal/kernels ./internal/optim ./internal/realtrain
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

test-short:
	$(GO) test -short ./...

# Micro-benchmarks for everything, then the parallel-subsystem report
# (serial-vs-parallel hot paths and the memoized/pooled experiment-suite
# wall clock, BENCH_parallel.json) plus the numeric-core train-step report
# (blocked kernels + fused ADAM + arenas, before/after, BENCH_numeric.json).
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
	$(GO) run ./cmd/benchpar -out BENCH_parallel.json -numeric-out BENCH_numeric.json

# Flow-coalescing report: the stream microbenchmark (per-line vs coalesced)
# and the end-to-end suite seconds, written to BENCH_flow.json.
benchflow:
	$(GO) run ./cmd/benchflow -out BENCH_flow.json

# Perf-regression gate: re-measure the stream microbenchmark and the
# tecosimd warm-cache p99 lookup, and fail on a regression against
# perf_baseline.json (run with `go run ./cmd/perfgate -update` after an
# intentional perf change).
perfgate:
	$(GO) run ./cmd/perfgate

# Chaos soak: SIGKILL the real tecosimd daemon in a loop under cache fault
# injection (bit flips, truncations, short writes, transient errors) and
# verify every response against the seed-42 conformance references, then
# repeat the fabric kill-one-port chaos proof under the race detector.
# SOAK_SECS bounds the daemon half; the in-process chaos harnesses in
# internal/server and internal/realtrain run unconditionally under plain
# `make test`.
SOAK_SECS ?= 30
soak:
	SOAK_SECS=$(SOAK_SECS) $(GO) test -count=1 -v -run 'TestDaemonChaosSoak' ./internal/server
	$(GO) test -race -count=3 -run 'TestFabricChaos' ./internal/realtrain

# Regenerate every paper table/figure (plus the extension experiments) as
# markdown on stdout.
experiments:
	$(GO) run ./cmd/tecosim -markdown all
	$(GO) run ./cmd/tecosim -markdown tune-act
	$(GO) run ./cmd/tecosim -markdown ablation-dpu
	$(GO) run ./cmd/tecosim -markdown time-to-loss
	$(GO) run ./cmd/tecosim -markdown linkspeed
	$(GO) run ./cmd/tecosim -markdown -degrade faults
	$(GO) run ./cmd/tecosim -markdown recovery
	$(GO) run ./cmd/tecosim -markdown fabric
	$(GO) run ./cmd/tecosim -markdown fabric-faults
	$(GO) run ./cmd/tecosim -markdown layers
	$(GO) run ./cmd/tecosim -markdown layers-policy
	$(GO) run ./cmd/tecosim -markdown tiering
	$(GO) run ./cmd/tecosim -markdown tiering-policy

# Re-pin the conformance goldens: regenerate every paper-figure table at
# the canonical seed into internal/conformance/testdata/golden, the render
# golden, and the harvested fuzz seed corpora — then verify the tree is
# self-consistent. Run after an intentional model change; CI fails when the
# checked-in tree is stale against the generators.
golden:
	$(GO) test ./internal/conformance -run 'TestGolden$$|TestRenderGolden|TestFuzzCorpus' -update
	$(GO) test ./internal/conformance

# Coverage with a floor: the suite currently sits at ~85% of statements;
# the gate fails below COVER_FLOOR so coverage can only be spent down
# deliberately (raise the floor when it rises). Writes cover.out (published
# as a CI artifact).
COVER_FLOOR ?= 83.0
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./... ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{gsub(/%/,"",$$NF); print $$NF}'); \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { \
		if (t+0 < f+0) { printf "total coverage %.1f%% is below the %.1f%% floor\n", t, f; exit 1 } \
		printf "total coverage %.1f%% (floor %.1f%%)\n", t, f }'

loc:
	find . -name '*.go' | xargs wc -l | tail -1
