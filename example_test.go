package teco_test

import (
	"fmt"

	"teco"
)

// Classify a parameter update the way Figure 2 does.
func ExampleClassifyChange() {
	old := float32(1.0)
	tiny := float32(1.0000001) // mantissa-only drift
	flipped := float32(-1.0)   // sign change
	fmt.Println(teco.ClassifyChange(old, old))
	fmt.Println(teco.ClassifyChange(old, tiny))
	fmt.Println(teco.ClassifyChange(old, flipped))
	// Output:
	// unchanged
	// last-byte
	// other
}

// Simulate the headline comparison on Bert-large-cased at batch 4.
func ExampleSimulate() {
	m, _ := teco.ModelByName("Bert-large-cased")
	base := teco.Simulate(teco.ZeroOffload, m, 4, teco.SimConfig{})
	red := teco.Simulate(teco.TECOReduction, m, 4, teco.SimConfig{})
	fmt.Printf("TECO-Reduction speedup: %.2fx\n", red.Speedup(base))
	fmt.Printf("DBA halves parameter volume: %v\n", red.ParamLinkBytes*2 == base.ParamLinkBytes)
	// Output:
	// TECO-Reduction speedup: 1.66x
	// DBA halves parameter volume: true
}

// Drive the full functional protocol stack for one update cycle.
func ExampleReplayUpdate() {
	old := teco.NewTensor("old", 32)
	upd := teco.NewTensor("new", 32)
	for i := 0; i < 32; i++ {
		old.Set(i, float32(i))
		upd.Set(i, float32(i)+1e-6)
	}
	_, stats, _ := teco.ReplayUpdate(old, upd, teco.ReplayConfig{DBA: true})
	fmt.Printf("lines=%d payload=%dB on-demand=%d snoop-entries=%d\n",
		stats.Lines, stats.PayloadBytes, stats.OnDemandTransfers, stats.SnoopEntries)
	// Output:
	// lines=2 payload=64B on-demand=0 snoop-entries=0
}

// Project an end-to-end training run and its data-center economics.
func ExampleEstimateTraining() {
	m, _ := teco.ModelByName("GPT2")
	est := teco.EstimateTraining(m, 4, 10000, 500)
	fmt.Printf("speedup %.2fx, time saved %.0f%%\n", est.Speedup, 100*est.TimeSavedFraction)
	// Output:
	// speedup 1.64x, time saved 39%
}
