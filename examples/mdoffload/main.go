// Mdoffload: the paper's §VII generality study as a runnable program. Runs
// a real Lennard-Jones melt with the offloaded force kernel — positions
// crossing the (simulated) link through the dirty-byte path — and prints
// both the physics validation and the timing comparison.
//
//	go run ./examples/mdoffload
package main

import (
	"fmt"

	"teco/internal/md"
)

func main() {
	// Real physics: a 256-atom melt, 300 steps, with exact transfers and
	// with the dirty-byte position path.
	fmt.Println("LJ melt, 256 atoms, dt=0.004, 300 steps (NVE)")
	sysExact := md.NewSystem(md.Config{Seed: 1})
	t0 := sysExact.Temperature()
	driftExact := md.RunOffloaded(sysExact, 300, 0.004, 4)
	sysDBA := md.NewSystem(md.Config{Seed: 1})
	driftDBA := md.RunOffloaded(sysDBA, 300, 0.004, md.MDDirtyBytes)
	fmt.Printf("  initial T=%.3f -> final T=%.3f (melting exchanges KE and PE)\n", t0, sysExact.Temperature())
	fmt.Printf("  energy drift, exact transfers:      %.5f\n", driftExact)
	fmt.Printf("  energy drift, dirty-byte positions: %.5f (%d dirty bytes, fixed-binade encoding)\n",
		driftDBA, md.MDDirtyBytes)

	// Timing: the §VII comparison at production scale.
	r := md.Generality(4_000_000)
	fmt.Printf("\nOffload timing at %d atoms (paper values in parentheses):\n", r.Atoms)
	fmt.Printf("  baseline step %v, comm share %.1f%% (27%%)\n", r.BaselineStep, 100*r.CommFraction)
	fmt.Printf("  TECO improvement %.1f%% (21.5%%): CXL %.0f%% / DBA %.0f%% of it (78/22)\n",
		100*r.Improvement, 100*r.CXLContribution, 100*r.DBAContribution)
	fmt.Printf("  link volume reduced %.1f%% by DBA (17%%)\n", 100*r.VolumeReduction)
	fmt.Printf("  a month-long simulation saves %.0f hours\n", r.HoursSavedPerMonth)
}
