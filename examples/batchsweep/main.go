// Batchsweep: sweep batch sizes across the Table III workloads, printing
// the communication-exposure fractions (Table I) and TECO speedups
// (Fig 11) for each point — the motivation study as a runnable program.
//
//	go run ./examples/batchsweep
package main

import (
	"fmt"

	"teco"
)

func main() {
	fmt.Printf("%-20s %-6s %-10s %-10s %-10s %-10s\n",
		"model", "batch", "comm%", "cxl", "reduction", "step(base)")
	for _, m := range teco.Models() {
		batches := []int{4, 8, 16, 20}
		if m.FullGraphOnly {
			batches = []int{1}
		}
		for _, b := range batches {
			base := teco.Simulate(teco.ZeroOffload, m, b, teco.SimConfig{})
			cxl := teco.Simulate(teco.TECOCXL, m, b, teco.SimConfig{})
			red := teco.Simulate(teco.TECOReduction, m, b, teco.SimConfig{})
			fmt.Printf("%-20s %-6d %-10s %-10s %-10s %v\n",
				m.Name, b,
				fmt.Sprintf("%.1f%%", 100*base.CommFraction()),
				fmt.Sprintf("%.2fx", cxl.Speedup(base)),
				fmt.Sprintf("%.2fx", red.Speedup(base)),
				base.Total())
		}
		fmt.Println()
	}
	fmt.Println("Observations (paper §III): communication takes a large share at small")
	fmt.Println("batches and shrinks as batch grows — which is why TECO's speedup is")
	fmt.Println("largest exactly where memory pressure forces small per-GPU batches.")
}
