// Finetune: real FP32 training through the TECO parameter path. Runs the
// same fine-tuning job twice — exact transfers vs the dirty-byte merge —
// and prints the loss curves side by side plus the final quality (the
// paper's Figure 10 / Table V methodology).
//
//	go run ./examples/finetune
package main

import (
	"fmt"

	"teco"
)

func main() {
	const steps = 500
	base := teco.FineTune(teco.FineTuneConfig{Steps: steps, Seed: 7})
	red := teco.FineTune(teco.FineTuneConfig{Steps: steps, Seed: 7, DBA: true, ActAfterSteps: steps / 4})

	fmt.Println("step   original-loss  teco-reduction-loss")
	bs, bl := base.LossCurve()
	_, rl := red.LossCurve()
	for i := range bs {
		if i >= len(rl) {
			break
		}
		if i%5 != 0 && i != len(bs)-1 {
			continue
		}
		marker := ""
		if red.Samples[i].DBAActive {
			marker = "  <- DBA active"
		}
		fmt.Printf("%-6d %13.4f  %18.4f%s\n", bs[i], bl[i], rl[i], marker)
	}

	fmt.Println()
	fmt.Printf("final quality     original: acc %.3f, perplexity %.2f\n", base.FinalAcc, base.Perplexity)
	fmt.Printf("            teco-reduction: acc %.3f, perplexity %.2f\n", red.FinalAcc, red.Perplexity)
	fmt.Printf("DBA activated at step %d; %d of the model's words carry stale high bytes at the end\n",
		red.ActivatedAt, red.DivergedWords)
	fmt.Println("\nThe curves follow the same trend and converge in the same number of")
	fmt.Println("steps — the paper's Fig 10 conclusion; the quality delta is the Table V story.")
}
