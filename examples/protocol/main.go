// Protocol: a walkthrough of the functional stack — the Fig 5 state
// machine, CXL packet framing, and the Aggregator/Disaggregator byte merge
// — on a small parameter tensor, printing what crosses the link under each
// protocol variant.
//
//	go run ./examples/protocol
package main

import (
	"fmt"
	"math"

	"teco"
)

func main() {
	const n = 256 // parameters (16 cache lines)
	old := teco.NewTensor("step-i", n)
	upd := teco.NewTensor("step-i+1", n)
	for i := 0; i < n; i++ {
		w := float32(math.Sin(float64(i))) // a "trained" value
		old.Set(i, w)
		upd.Set(i, w+w*1e-6) // a fine-tuning-sized update
	}

	run := func(label string, cfg teco.ReplayConfig) {
		dev, stats, err := teco.ReplayUpdate(old, upd, cfg)
		if err != nil {
			panic(err)
		}
		exact := 0
		for i := 0; i < n; i++ {
			if math.Float32bits(dev.At(i)) == math.Float32bits(upd.At(i)) {
				exact++
			}
		}
		fmt.Printf("%-28s payload=%4dB  pushes=%-3d on-demand=%-3d snoop-entries=%-2d exact=%d/%d\n",
			label, stats.PayloadBytes, stats.FlushData, stats.OnDemandTransfers, stats.SnoopEntries, exact, n)
	}

	fmt.Printf("One parameter-update cycle over %d params (%d cache lines):\n\n", n, old.Lines())
	run("update protocol, full lines:", teco.ReplayConfig{})
	run("update protocol + DBA(2):", teco.ReplayConfig{DBA: true})
	run("update protocol + DBA(3):", teco.ReplayConfig{DBA: true, DirtyBytes: 3})
	run("invalidation (stock MESI):", teco.ReplayConfig{Invalidation: true})

	// And the reverse direction: gradients, never DBA'd.
	grads := teco.NewTensor("grads", n)
	for i := 0; i < n; i++ {
		grads.Set(i, float32(math.Cos(float64(i))))
	}
	_, gs, _ := teco.ReplayGradients(grads, teco.ReplayConfig{})
	fmt.Printf("\ngradients (GPU->CPU):        payload=%4dB  pushes=%-3d on-demand=%d\n",
		gs.PayloadBytes, gs.FlushData, gs.OnDemandTransfers)

	fmt.Println("\nReading the rows: the update protocol pushes every line at write time")
	fmt.Println("(no on-demand fills, no snoop filter); DBA shrinks the payload; tiny")
	fmt.Println("updates merge losslessly when confined to the transferred bytes; stock")
	fmt.Println("MESI defers all data to on-demand fills on the consumer's critical path.")
}
