// Solveroffload: the paper's §VII generality argument applied to the other
// application family it names — iterative numerical solvers. Solves a 2D
// Poisson problem with (a) conjugate gradients as the exact reference and
// (b) an offloaded damped-Jacobi iteration whose iterate crosses the
// dirty-byte channel, showing where the approximation is free and where it
// bites.
//
//	go run ./examples/solveroffload
package main

import (
	"fmt"

	"teco/internal/solver"
)

func main() {
	const n = 24
	m := solver.Poisson2D(n)
	b := make([]float32, m.N)
	for i := range b {
		b[i] = 1
	}
	fmt.Printf("2D Poisson, %dx%d grid (%d unknowns, %d nonzeros)\n\n", n, n, m.N, m.NNZ())

	x := make([]float32, m.N)
	iters := solver.CG(m, b, x, 1e-5, 5000)
	fmt.Printf("CG reference:                 converged in %d iterations\n", iters)

	run := func(label string, cfg solver.OffloadConfig) {
		res := solver.OffloadedJacobi(m, b, make([]float32, m.N), cfg)
		fmt.Printf("%-29s iters=%-5d rel-residual=%.3g converged=%v\n",
			label, res.Iterations, res.RelRes, res.Converged)
	}
	run("Jacobi, exact transfers:", solver.OffloadConfig{Tol: 1e-4, MaxIter: 20000})
	run("Jacobi, 3-dirty-byte channel:", solver.OffloadConfig{Tol: 1e-4, MaxIter: 20000, DirtyBytes: 3})
	run("Jacobi, 2-dirty-byte early:", solver.OffloadConfig{Tol: 1e-4, MaxIter: 20000, DirtyBytes: 2, ActAfterIters: 20})
	run("Jacobi, 2-dirty-byte late:", solver.OffloadConfig{Tol: 1e-4, MaxIter: 20000, DirtyBytes: 2, ActAfterIters: 2000})

	fmt.Println("\nWith the fixed-binade encoding the 3-byte channel is lossless, so the")
	fmt.Println("solver converges exactly like the reference; 2 bytes only works once the")
	fmt.Println("iterate has settled — the solver-world analogue of act_aft_steps.")
}
