// Quickstart: simulate one Bert-large-cased training step under
// ZeRO-Offload and both TECO variants, and print the Figure 12-style
// breakdowns plus headline speedups.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"teco"
)

func main() {
	m, ok := teco.ModelByName("Bert-large-cased")
	if !ok {
		panic("model missing")
	}
	const batch = 4

	fmt.Printf("Model: %s | batch %d | params %.0fM | per-step transfer volume %.2f GB each way\n\n",
		m.Name, batch, float64(m.Params)/1e6, float64(m.ParamBytes())/1e9)

	base := teco.Simulate(teco.ZeroOffload, m, batch, teco.SimConfig{})
	for _, sys := range []teco.System{teco.ZeroOffload, teco.TECOCXL, teco.TECOReduction} {
		r := teco.Simulate(sys, m, batch, teco.SimConfig{})
		fmt.Printf("%-15s %s\n", sys, r.Breakdown)
		if sys != teco.ZeroOffload {
			fmt.Printf("%-15s speedup %.2fx, exposed-communication reduction %.1f%%\n",
				"", r.Speedup(base), 100*r.CommReduction(base))
		}
		fmt.Println()
	}

	// The §IV-A2 ablation: what stock CXL (invalidation MESI) would cost.
	inv := teco.Simulate(teco.TECOInvalidation, m, batch, teco.SimConfig{})
	upd := teco.Simulate(teco.TECOCXL, m, batch, teco.SimConfig{})
	fmt.Printf("Invalidation-protocol ablation: %.1f%% slower than the update extension\n",
		100*(float64(inv.Total())/float64(upd.Total())-1))
}
