module teco

go 1.22
