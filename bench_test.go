package teco

// One benchmark per paper table/figure (regenerating its rows), plus
// microbenchmarks for the hardware components whose overhead §VIII-D
// analyzes. Run:
//
//	go test -bench=. -benchmem
//
// The Benchmark*Table/Figure benches print their rows once (on the first
// iteration) and then measure regeneration cost; the shapes printed are the
// reproduction artifact, the ns/op is incidental.

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"teco/internal/cache"
	"teco/internal/compressbl"
	"teco/internal/core"
	"teco/internal/cxl"
	"teco/internal/dba"
	"teco/internal/experiments"
	"teco/internal/gnn"
	"teco/internal/lz4"
	"teco/internal/md"
	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/realtrain"
	"teco/internal/sim"
	"teco/internal/solver"
	"teco/internal/zero"
)

var printOnce sync.Map

// printTables renders the tables to stdout exactly once per experiment id.
func printTables(b *testing.B, id string, tabs []*experiments.Table) {
	b.Helper()
	if _, dup := printOnce.LoadOrStore(id, true); dup {
		return
	}
	for _, t := range tabs {
		t.Render(os.Stdout)
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	tabs, err := experiments.ByID(id, 42)
	if err != nil {
		b.Fatal(err)
	}
	printTables(b, id, tabs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ByID(id, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I (communication share vs batch size).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2 regenerates Figure 2 (value-changed-byte distributions)
// from a real fine-tuning run.
func BenchmarkFig2(b *testing.B) {
	tabs, err := experiments.ByID("fig2", 42)
	if err != nil {
		b.Fatal(err)
	}
	printTables(b, "fig2", tabs[:0]) // rows are long; print only the notes below
	if _, dup := printOnce.LoadOrStore("fig2-notes", true); !dup {
		for _, t := range tabs {
			fmt.Printf("== %s: %s ==\n", t.ID, t.Title)
			for _, n := range t.Notes {
				fmt.Printf("note: %s\n", n)
			}
		}
		fmt.Println()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := realtrain.Run(realtrain.Config{Steps: 100, Seed: int64(i)})
		_, _ = r.AggregateDistributions()
	}
}

// BenchmarkAblationInvalidation regenerates the §IV-A2 on-demand-transfer
// penalty measurement.
func BenchmarkAblationInvalidation(b *testing.B) { benchExperiment(b, "ablation-inval") }

// BenchmarkFig11Table4 regenerates the headline speedup table.
func BenchmarkFig11Table4(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkTable5Fig10 regenerates the accuracy table and loss curves.
func BenchmarkTable5Fig10(b *testing.B) {
	t5, err := experiments.ByID("table5", 42)
	if err != nil {
		b.Fatal(err)
	}
	printTables(b, "table5", t5)
	f10, err := experiments.ByID("fig10", 42)
	if err != nil {
		b.Fatal(err)
	}
	if _, dup := printOnce.LoadOrStore("fig10-note", true); !dup {
		last := f10[0].Rows[len(f10[0].Rows)-1]
		fmt.Printf("== fig10: loss curves converge together (final: original %s vs TECO-Reduction %s) ==\n\n", last[1], last[2])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		realtrain.Run(realtrain.Config{Steps: 60, Seed: int64(i), DBA: true, ActAfterSteps: 20})
	}
}

// BenchmarkFig12 regenerates the T5-large time breakdown.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkCommVolume regenerates the §VIII-C communication-volume table.
func BenchmarkCommVolume(b *testing.B) { benchExperiment(b, "volume") }

// BenchmarkTable6 regenerates the GPT-2 scale sensitivity table.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkFig13 regenerates the act_aft_steps sweep.
func BenchmarkFig13(b *testing.B) {
	tabs, err := experiments.ByID("fig13", 42)
	if err != nil {
		b.Fatal(err)
	}
	printTables(b, "fig13", tabs)
	m := modelzoo.GPT2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MustEngine(core.Config{DBA: true}).Step(m, 4)
	}
}

// BenchmarkTable7 regenerates the ZeroQuant comparison.
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkTable8 regenerates the LZ4 lossless-compression comparison.
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8") }

// BenchmarkLAMMPS regenerates the §VII generality study.
func BenchmarkLAMMPS(b *testing.B) {
	tabs, err := experiments.ByID("lammps", 42)
	if err != nil {
		b.Fatal(err)
	}
	printTables(b, "lammps", tabs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md.Generality(4_000_000)
	}
}

// ---------------------------------------------------------------------------
// Component microbenchmarks (§VIII-D overhead analysis and substrate costs).

// BenchmarkAggregator measures the software Aggregator on 64-byte lines
// (hardware: 1.28 ns/line; the Go model is functional, not cycle-accurate).
func BenchmarkAggregator(b *testing.B) {
	line := make([]byte, mem.LineSize)
	rand.New(rand.NewSource(1)).Read(line)
	b.SetBytes(mem.LineSize)
	for i := 0; i < b.N; i++ {
		_ = dba.Aggregate(line, 2)
	}
}

// BenchmarkDisaggregator measures the merge path (hardware: 1.126 ns/line).
func BenchmarkDisaggregator(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	old := make([]byte, mem.LineSize)
	rng.Read(old)
	payload := dba.Aggregate(old, 2)
	b.SetBytes(mem.LineSize)
	for i := 0; i < b.N; i++ {
		_ = dba.Disaggregate(old, payload, 2)
	}
}

// BenchmarkCXLPacketRoundTrip measures packet framing.
func BenchmarkCXLPacketRoundTrip(b *testing.B) {
	p := cxl.Packet{Addr: 42, Aggregated: true, DirtyBytes: 2, Payload: make([]byte, 32)}
	for i := 0; i < b.N; i++ {
		buf, err := p.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cxl.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinkModel measures the timed-link fast path.
func BenchmarkLinkModel(b *testing.B) {
	link := cxl.NewLink(sim.New(), 0, 0)
	for i := 0; i < b.N; i++ {
		link.Send(sim.Time(i), mem.LineSize, 0)
	}
}

// BenchmarkCacheAccess measures the set-associative cache hot path.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.New(cache.Gem5L3())
	for i := 0; i < b.N; i++ {
		c.Access(mem.LineAddr(i%400000), i%3 == 0)
	}
}

// BenchmarkLZ4Compress measures compression throughput on parameter data
// (the Table VIII CPU-side cost).
func BenchmarkLZ4Compress(b *testing.B) {
	data := compressbl.ParamSnapshot(modelzoo.T5Large(), 3)
	b.SetBytes(int64(len(data)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = lz4.Compress(dst[:0], data)
	}
}

// BenchmarkLZ4Decompress measures decompression throughput (the GPU-side
// cost).
func BenchmarkLZ4Decompress(b *testing.B) {
	data := compressbl.ParamSnapshot(modelzoo.T5Large(), 3)
	comp := lz4.Compress(nil, data)
	b.SetBytes(int64(len(data)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = lz4.Decompress(dst[:0], comp, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkZeroOffloadStep measures the baseline simulator itself.
func BenchmarkZeroOffloadStep(b *testing.B) {
	m := modelzoo.BertLargeCased()
	e := zero.NewEngine()
	for i := 0; i < b.N; i++ {
		e.Step(m, 4)
	}
}

// BenchmarkTECOStep measures the TECO simulator itself.
func BenchmarkTECOStep(b *testing.B) {
	m := modelzoo.BertLargeCased()
	e := core.MustEngine(core.Config{DBA: true})
	for i := 0; i < b.N; i++ {
		e.Step(m, 4)
	}
}

// BenchmarkMDForceKernel measures the real LJ force kernel.
func BenchmarkMDForceKernel(b *testing.B) {
	s := md.NewSystem(md.Config{CellsPerSide: 5, Seed: 1})
	b.SetBytes(int64(s.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ComputeForces(s.Pos)
	}
}

// BenchmarkFineTuneStep measures one real training step of the proxy model.
func BenchmarkFineTuneStep(b *testing.B) {
	// Steps scale with b.N through the config; measure per-step cost.
	r := realtrain.Run(realtrain.Config{Steps: 1, PreSteps: 1, Seed: 1})
	_ = r
	b.ResetTimer()
	realtrain.Run(realtrain.Config{Steps: b.N, PreSteps: 1, Seed: 1})
}

// BenchmarkGCNIIEpoch measures one full-graph GCNII training epoch (the
// real GNN workload behind the GCNII rows).
func BenchmarkGCNIIEpoch(b *testing.B) {
	g := gnn.NewGraph(gnn.GraphConfig{Seed: 1})
	m := gnn.NewGCNII(len(g.Features[0]), 64, g.Classes, 8, 2)
	grads := make([]float32, m.NumParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LossAndGrad(m.Params, g, grads)
	}
}

// BenchmarkCGSolve measures the conjugate-gradient reference solver.
func BenchmarkCGSolve(b *testing.B) {
	m := solver.Poisson2D(32)
	rhs := make([]float32, m.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float32, m.N)
		solver.CG(m, rhs, x, 1e-5, 2000)
	}
}

// BenchmarkOffloadedJacobi measures the dirty-byte-channel Jacobi solver.
func BenchmarkOffloadedJacobi(b *testing.B) {
	m := solver.Poisson2D(16)
	rhs := make([]float32, m.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float32, m.N)
		solver.OffloadedJacobi(m, rhs, x, solver.OffloadConfig{Tol: 1e-3, MaxIter: 3000, DirtyBytes: 3})
	}
}

// BenchmarkMDForceKernelLarge measures the serial kernel at a larger size
// for comparison with the parallel version.
func BenchmarkMDForceKernelLarge(b *testing.B) {
	s := md.NewSystem(md.Config{CellsPerSide: 10, Seed: 1})
	b.SetBytes(int64(s.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ComputeForces(s.Pos)
	}
}

// BenchmarkMDForceKernelParallel measures the worker-pool LJ kernel.
func BenchmarkMDForceKernelParallel(b *testing.B) {
	s := md.NewSystem(md.Config{CellsPerSide: 10, Seed: 1})
	b.SetBytes(int64(s.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ComputeForcesParallel(s.Pos, 0)
	}
}
