// Package teco is the public API of the TECO (Tensor-CXL-Offload)
// reproduction: a simulation and numerical-validation library for the SC'24
// paper "Efficient Tensor Offloading for Large Deep-Learning Model Training
// based on Compute Express Link".
//
// The library provides three entry points:
//
//   - Simulate: per-step timing of ZeRO-Offload, TECO-CXL, TECO-Reduction
//     and the invalidation-protocol ablation for the paper's workloads
//     (Table III geometries or custom models);
//   - FineTune: real FP32 fine-tuning with the bit-exact dirty-byte
//     parameter path, for convergence/accuracy studies;
//   - Experiments: regeneration of every table and figure in the paper's
//     evaluation section.
//
// The protocol, link, and aggregation machinery (MESI update extension,
// CXL packets, Aggregator/Disaggregator) lives in the internal packages and
// is exercised end-to-end by ReplayParameterUpdate.
package teco

import (
	"io"

	"teco/internal/core"
	"teco/internal/experiments"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/realtrain"
	"teco/internal/tensor"
	"teco/internal/zero"
)

// System selects which training system to simulate.
type System int

const (
	// ZeroOffload is the DeepSpeed baseline (paper Fig 1).
	ZeroOffload System = iota
	// TECOCXL is the update-coherent giant cache without DBA.
	TECOCXL
	// TECOReduction is CXL plus dirty-byte aggregation — the full system.
	TECOReduction
	// TECOInvalidation is the stock-MESI ablation (§IV-A2).
	TECOInvalidation
)

// String names the system as the paper does.
func (s System) String() string { return s.toVariant().String() }

func (s System) toVariant() phases.Variant {
	switch s {
	case ZeroOffload:
		return phases.ZeroOffload
	case TECOCXL:
		return phases.TECOCXL
	case TECOReduction:
		return phases.TECOReduction
	default:
		return phases.TECOInvalidation
	}
}

// Model re-exports the workload description (see Models for Table III).
type Model = modelzoo.Model

// Models returns the five evaluation workloads of Table III.
func Models() []Model { return modelzoo.EvaluationModels() }

// ModelByName looks up any built-in model (Table III plus the GPT-2 scale
// sweep and Bert-base).
func ModelByName(name string) (Model, bool) { return modelzoo.ByName(name) }

// StepResult is the simulated per-step outcome: the Figure 12 breakdown
// plus link-volume accounting. See the embedded Breakdown's fields.
type StepResult = phases.StepResult

// SimConfig tunes a simulation.
type SimConfig struct {
	// DirtyBytes is `dirty_bytes` (default 2); only used by
	// TECOReduction.
	DirtyBytes int
	// DPU enables ZeRO-Offload's one-step delayed parameter update
	// (§II-A); only used by ZeroOffload.
	DPU bool
}

// Simulate runs one training step of the chosen system on the model at the
// given batch size and returns its critical-path breakdown. Batch is
// ignored for full-graph models (GCNII).
func Simulate(sys System, m Model, batch int, cfg SimConfig) StepResult {
	if m.FullGraphOnly {
		batch = 1
	}
	switch sys {
	case ZeroOffload:
		if cfg.DPU {
			return zero.NewEngine().StepDPU(m, batch)
		}
		return zero.NewEngine().Step(m, batch)
	case TECOCXL:
		return core.MustEngine(core.Config{}).Step(m, batch)
	case TECOReduction:
		return core.MustEngine(core.Config{DBA: true, DirtyBytes: cfg.DirtyBytes}).Step(m, batch)
	default:
		return core.MustEngine(core.Config{Invalidation: true}).Step(m, batch)
	}
}

// Speedup returns the training-time speedup of sys over ZeRO-Offload for
// the model/batch (the Fig 11 quantity).
func Speedup(sys System, m Model, batch int) float64 {
	base := Simulate(ZeroOffload, m, batch, SimConfig{})
	return Simulate(sys, m, batch, SimConfig{}).Speedup(base)
}

// FineTuneConfig configures a real fine-tuning run (see
// internal/realtrain.Config for all knobs).
type FineTuneConfig = realtrain.Config

// FineTuneResult is a completed run with loss curve, accuracy, and
// byte-change statistics.
type FineTuneResult = realtrain.Result

// FineTune runs real FP32 training with the bit-exact TECO parameter path
// (full transfers, or the dirty-byte merge when cfg.DBA is set).
func FineTune(cfg FineTuneConfig) FineTuneResult { return realtrain.Run(cfg) }

// ByteChangeClass re-exports the Figure 2 classification.
type ByteChangeClass = tensor.ChangeClass

// Figure 2 classes.
const (
	Unchanged    = tensor.Unchanged
	LastByte     = tensor.LastByte
	LastTwoBytes = tensor.LastTwoBytes
	OtherBytes   = tensor.Other
)

// ClassifyChange returns the Figure 2 byte-change class of an FP32 update.
func ClassifyChange(old, new float32) ByteChangeClass { return tensor.Classify(old, new) }

// Tensor re-exports the FP32 tensor with byte-level views.
type Tensor = tensor.Tensor

// NewTensor allocates a zeroed FP32 tensor.
func NewTensor(name string, n int) *Tensor { return tensor.New(name, n) }

// ReplayConfig selects the functional protocol path for ReplayUpdate.
type ReplayConfig struct {
	// DBA aggregates dirty bytes (DirtyBytes, default 2).
	DBA        bool
	DirtyBytes int
	// Invalidation uses stock MESI instead of the update extension.
	Invalidation bool
}

// ReplayStats re-exports the functional replay statistics.
type ReplayStats = core.ReplayStats

// ReplayUpdate drives the full functional stack — coherence protocol, CXL
// packet framing, Aggregator/Disaggregator — for one parameter-update
// cycle, returning the accelerator-side tensor and protocol statistics.
func ReplayUpdate(old, updated *Tensor, cfg ReplayConfig) (*Tensor, ReplayStats, error) {
	return core.ReplayParameterUpdate(old, updated, core.Config{
		DBA:          cfg.DBA,
		DirtyBytes:   cfg.DirtyBytes,
		Invalidation: cfg.Invalidation,
	})
}

// ExperimentIDs lists the regenerable tables/figures.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one table/figure (or "all") and writes the
// result as aligned text to w.
func RunExperiment(id string, seed int64, w io.Writer) error {
	tabs, err := experiments.ByID(id, seed)
	if err != nil {
		return err
	}
	for _, t := range tabs {
		t.Render(w)
	}
	return nil
}

// ReplayGradients drives the reverse functional path (accelerator-produced
// gradient lines pushed to the CPU through the update protocol), returning
// the CPU-side gradient tensor and protocol statistics.
func ReplayGradients(grads *Tensor, cfg ReplayConfig) (*Tensor, ReplayStats, error) {
	return core.ReplayGradientFlush(grads, core.Config{Invalidation: cfg.Invalidation})
}

// TrainingEstimate re-exports the end-to-end training projection.
type TrainingEstimate = core.TrainingEstimate

// EstimateTraining projects an end-to-end training run: ZeRO-Offload versus
// TECO with DBA activating at actAfterSteps (negative: never).
func EstimateTraining(m Model, batch, steps, actAfterSteps int) TrainingEstimate {
	return core.EstimateTraining(m, batch, steps, actAfterSteps)
}

// CostModel re-exports the §VIII-C data-center economics.
type CostModel = core.CostModel

// DefaultCostModel returns the paper's fleet assumptions (256 A100s at
// p4de.24xlarge pricing, 50% training share).
func DefaultCostModel() CostModel { return core.DefaultCostModel() }

// AnnualSavingsUSD converts a fractional training-time saving into yearly
// fleet dollars under the cost model.
func AnnualSavingsUSD(c CostModel, timeSavedFraction float64) float64 {
	return c.AnnualSavingsUSD(timeSavedFraction)
}
