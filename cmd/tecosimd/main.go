// Command tecosimd serves the experiment generators over HTTP/JSON with a
// content-addressed on-disk result cache, request coalescing, bounded
// admission, per-request deadlines and graceful SIGTERM drain. It is the
// long-running counterpart to the one-shot tecosim CLI: start it once over
// a cache directory and every repeated sweep request is a disk read.
//
//	tecosimd -addr :8723 -cache-dir /var/cache/teco
//	curl 'localhost:8723/run?id=table1&seed=42'
//
// Endpoints: /run (GET query or POST JSON), /experiments, /healthz,
// /statz. The -fault-* flags inject cache-layer disk faults (bit flips,
// truncations, short writes, transient errors) for chaos testing; they are
// never appropriate in real use.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"teco/internal/diskcache"
	"teco/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tecosimd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8723", "listen address")
		cacheDir     = flag.String("cache-dir", "", "result cache directory (required)")
		cacheMax     = flag.Int64("cache-max-bytes", 0, "on-disk cache size bound; LRU results evicted past it (0: unbounded)")
		slots        = flag.Int("slots", 2, "concurrently executing computations")
		queue        = flag.Int("queue", 64, "cold requests allowed to wait for a slot before shedding")
		timeout      = flag.Duration("timeout", 2*time.Minute, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 10*time.Minute, "cap on client-requested deadlines")
		workers      = flag.Int("workers", 0, "sweep pool size per computation (0: GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight requests")

		faultSeed     = flag.Int64("fault-seed", 1, "chaos: fault-injection RNG seed")
		faultFlip     = flag.Int("fault-flip-every", 0, "chaos: flip one bit in every Nth committed cache entry")
		faultTrunc    = flag.Int("fault-trunc-every", 0, "chaos: truncate every Nth committed cache entry")
		faultShort    = flag.Int("fault-short-every", 0, "chaos: short-write every Nth cache write")
		faultWriteErr = flag.Int("fault-writeerr-every", 0, "chaos: fail every Nth cache write transiently")
		faultDelay    = flag.Duration("fault-delay", 0, "chaos: added latency per cache I/O")
	)
	flag.Parse()
	if *cacheDir == "" {
		return fmt.Errorf("-cache-dir is required")
	}

	var faults *diskcache.Faults
	if *faultFlip > 0 || *faultTrunc > 0 || *faultShort > 0 || *faultWriteErr > 0 || *faultDelay > 0 {
		faults = diskcache.NewFaults(*faultSeed)
		faults.FlipBitEvery = *faultFlip
		faults.TruncateEvery = *faultTrunc
		faults.ShortWriteEvery = *faultShort
		faults.WriteErrEvery = *faultWriteErr
		faults.Delay = *faultDelay
		fmt.Fprintln(os.Stderr, "tecosimd: CHAOS MODE: cache fault injection enabled")
	}

	srv, err := server.New(server.Config{
		CacheDir:       *cacheDir,
		CacheMaxBytes:  *cacheMax,
		Slots:          *slots,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Workers:        *workers,
		CacheFaults:    faults,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// The listen line is the readiness signal the soak harness (and any
	// script) waits for before sending traffic.
	fmt.Printf("tecosimd: listening on %s (cache %s)\n", ln.Addr(), *cacheDir)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, finish every in-flight request
	// (each bounded by its own deadline), flush the cache, exit 0.
	fmt.Println("tecosimd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		srv.Kill()
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	st := srv.Stats()
	fmt.Printf("tecosimd: drained (requests=%d hits=%d computes=%d coalesced=%d shed=%d)\n",
		st.Requests, st.Hits, st.Computes, st.Coalesced, st.Shed)
	return nil
}
