// Command bytestat runs a real fine-tuning job and profiles the
// value-changed-byte distribution of parameters and gradients across
// consecutive steps — the paper's valuechanges.py (Figure 2 methodology).
//
//	bytestat [-steps N] [-seed N] [-dba] [-act N]
package main

import (
	"flag"
	"fmt"

	"teco/internal/realtrain"
	"teco/internal/tensor"
)

func main() {
	steps := flag.Int("steps", 600, "fine-tuning steps")
	seed := flag.Int64("seed", 42, "random seed")
	useDBA := flag.Bool("dba", false, "enable the dirty-byte parameter path")
	act := flag.Int("act", 500, "act_aft_steps when -dba is set")
	flag.Parse()

	r := realtrain.Run(realtrain.Config{
		Steps: *steps, Seed: *seed, DBA: *useDBA, ActAfterSteps: *act,
	})

	fmt.Printf("%-8s %-28s %-28s\n", "", "parameters", "gradients")
	fmt.Printf("%-8s %8s %8s %8s  %8s %8s %8s\n",
		"step", "last1", "last2", "other", "last1", "last2", "other")
	for _, s := range r.Samples {
		if s.Step == 0 {
			continue
		}
		fmt.Printf("%-8d %7.1f%% %7.1f%% %7.1f%%  %7.1f%% %7.1f%% %7.1f%%\n", s.Step,
			100*s.ParamDist.FracOfChanged(tensor.LastByte),
			100*s.ParamDist.FracOfChanged(tensor.LastTwoBytes),
			100*s.ParamDist.FracOfChanged(tensor.Other),
			100*s.GradDist.FracOfChanged(tensor.LastByte),
			100*s.GradDist.FracOfChanged(tensor.LastTwoBytes),
			100*s.GradDist.FracOfChanged(tensor.Other))
	}

	pd, gd := r.AggregateDistributions()
	fmt.Println()
	fmt.Printf("parameters: %.1f%% unchanged across steps; of the changed, %.1f%% confined to the low two bytes\n",
		100*pd.FracUnchanged(),
		100*(pd.FracOfChanged(tensor.LastByte)+pd.FracOfChanged(tensor.LastTwoBytes)))
	fmt.Printf("gradients:  %.1f%% of the changed touch higher bytes\n", 100*gd.FracOfChanged(tensor.Other))
	fmt.Printf("final: loss=%.4f acc=%.3f perplexity=%.2f", r.FinalLoss, r.FinalAcc, r.Perplexity)
	if *useDBA {
		fmt.Printf(" (DBA active from step %d, %d words diverged)", r.ActivatedAt, r.DivergedWords)
	}
	fmt.Println()
}
