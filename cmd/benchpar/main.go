// Command benchpar measures the parallel-execution subsystem and writes the
// results as JSON (default BENCH_parallel.json):
//
//   - intra-step hot paths (ADAM update, dirty-byte merge, value-changed-byte
//     scan) benchmarked serial vs parallel via testing.Benchmark, and
//   - the accuracy-experiment suite (the realtrain-backed tables fig2,
//     table5, fig10, fig13, time-to-loss) timed twice: serial with the
//     shared-run memoization disabled, then on the worker pool with
//     memoization on — the configuration `tecosim all` actually uses.
//
// Every measured configuration produces bit-identical tables (the
// determinism harnesses assert this); only wall-clock differs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"teco/internal/dba"
	"teco/internal/experiments"
	"teco/internal/optim"
)

const hotN = 1 << 20 // elements per hot-path benchmark tensor

type hotPath struct {
	Name            string  `json:"name"`
	Elements        int     `json:"elements"`
	SerialNsPerOp   int64   `json:"serial_ns_per_op"`
	ParallelNsPerOp int64   `json:"parallel_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

type suiteResult struct {
	IDs                     []string `json:"ids"`
	SerialNoMemoSeconds     float64  `json:"serial_no_memo_seconds"`
	ParallelMemoizedSeconds float64  `json:"parallel_memoized_seconds"`
	Speedup                 float64  `json:"speedup"`
}

type report struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Seed       int64        `json:"seed"`
	HotPaths   []hotPath    `json:"hot_paths"`
	Suite      *suiteResult `json:"suite,omitempty"`
}

func randWords(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(rng.Uint32())
	}
	return out
}

func bench(fn func()) int64 {
	return testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fn()
		}
	}).NsPerOp()
}

func hot(name string, workers int, run func(workers int) func()) hotPath {
	ser := bench(run(1))
	par := bench(run(workers))
	return hotPath{
		Name: name, Elements: hotN,
		SerialNsPerOp: ser, ParallelNsPerOp: par,
		Speedup: float64(ser) / float64(par),
	}
}

func hotPaths(workers int) []hotPath {
	rng := rand.New(rand.NewSource(1))
	params := make([]float32, hotN)
	grads := make([]float32, hotN)
	for i := range params {
		params[i] = rng.Float32()
		grads[i] = rng.Float32() * 0.01
	}
	out := []hotPath{
		hot("adam_step", workers, func(w int) func() {
			ad := optim.MustAdam(hotN, optim.AdamConfig{Workers: w})
			return func() {
				if err := ad.Step(params, grads); err != nil {
					panic(err)
				}
			}
		}),
		hot("dba_merge_words", workers, func(w int) func() {
			compute := randWords(hotN, 2)
			master := randWords(hotN, 3)
			return func() { dba.MergeWords(compute, master, 2, w) }
		}),
		hot("dba_scan_changed", workers, func(w int) func() {
			old := randWords(hotN, 4)
			new := randWords(hotN, 5)
			return func() { dba.ScanChanged(old, new, w) }
		}),
	}
	return out
}

func runSuite(ids []string, opt experiments.Options) (time.Duration, error) {
	t0 := time.Now()
	for _, id := range ids {
		if _, err := experiments.ByIDWith(id, opt); err != nil {
			return 0, fmt.Errorf("%s: %w", id, err)
		}
	}
	return time.Since(t0), nil
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output JSON path")
	seed := flag.Int64("seed", 42, "experiment seed")
	workers := flag.Int("workers", 4, "worker count for the parallel measurements")
	skipSuite := flag.Bool("skip-suite", false, "only benchmark the hot paths (fast)")
	flag.Parse()

	rep := report{GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: *workers, Seed: *seed}

	fmt.Fprintf(os.Stderr, "benchmarking hot paths (serial vs %d workers)...\n", *workers)
	rep.HotPaths = hotPaths(*workers)
	for _, h := range rep.HotPaths {
		fmt.Fprintf(os.Stderr, "  %-18s serial %8.2fms  parallel %8.2fms  %.2fx\n",
			h.Name, float64(h.SerialNsPerOp)/1e6, float64(h.ParallelNsPerOp)/1e6, h.Speedup)
	}

	if !*skipSuite {
		ids := []string{"fig2", "table5", "fig10", "fig13", "time-to-loss"}
		fmt.Fprintf(os.Stderr, "running accuracy suite %v serially, memoization off...\n", ids)
		serial, err := runSuite(ids, experiments.Options{Seed: *seed, Workers: 1, NoMemo: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  %.1fs\nrunning the same suite on %d workers with memoization...\n",
			serial.Seconds(), *workers)
		par, err := runSuite(ids, experiments.Options{Seed: *seed, Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  %.1fs  (%.2fx)\n", par.Seconds(), serial.Seconds()/par.Seconds())
		rep.Suite = &suiteResult{
			IDs:                     ids,
			SerialNoMemoSeconds:     serial.Seconds(),
			ParallelMemoizedSeconds: par.Seconds(),
			Speedup:                 serial.Seconds() / par.Seconds(),
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
