// Command benchpar measures the parallel-execution subsystem and writes the
// results as JSON (default BENCH_parallel.json):
//
//   - intra-step hot paths (ADAM update, dirty-byte merge, value-changed-byte
//     scan) benchmarked serial vs parallel via testing.Benchmark, and
//   - the accuracy-experiment suite (the realtrain-backed tables fig2,
//     table5, fig10, fig13, time-to-loss) timed twice: serial with the
//     shared-run memoization disabled, then on the worker pool with
//     memoization on — the configuration `tecosim all` actually uses.
//
// It also writes BENCH_numeric.json: the real train-step microbenchmark
// (internal/trainbench) per proxy architecture, serial and parallel, next
// to the pinned pre-optimization numbers — the before/after record of the
// blocked-kernel + fused-ADAM + tensor-arena work.
//
// Every measured configuration produces bit-identical tables (the
// determinism harnesses assert this); only wall-clock differs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"teco/internal/dba"
	"teco/internal/experiments"
	"teco/internal/optim"
	"teco/internal/profileflags"
	"teco/internal/trainbench"
)

const hotN = 1 << 20 // elements per hot-path benchmark tensor

type hotPath struct {
	Name            string  `json:"name"`
	Elements        int     `json:"elements"`
	SerialNsPerOp   int64   `json:"serial_ns_per_op"`
	ParallelNsPerOp int64   `json:"parallel_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

type suiteResult struct {
	IDs                     []string `json:"ids"`
	SerialNoMemoSeconds     float64  `json:"serial_no_memo_seconds"`
	ParallelMemoizedSeconds float64  `json:"parallel_memoized_seconds"`
	Speedup                 float64  `json:"speedup"`
}

// procRun is one hot-path measurement pass pinned to a GOMAXPROCS setting.
// The 1-proc row is the scheduling-overhead control (parallel speedups there
// are necessarily ~1.00x); the NumCPU row is the real parallel measurement.
type procRun struct {
	GOMAXPROCS int       `json:"gomaxprocs"`
	HotPaths   []hotPath `json:"hot_paths"`
}

type report struct {
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Seed       int64        `json:"seed"`
	HotPaths   []procRun    `json:"hot_path_runs"`
	Suite      *suiteResult `json:"suite,omitempty"`
}

// numericBefore pins the pre-optimization train-step numbers (serial,
// SDC guards on, this container's reference box) measured at the commit
// before the blocked-kernel/fused-ADAM/arena work landed, so the numeric
// report always shows the delta the tentpole bought.
var numericBefore = map[string]trainbench.Result{
	"mlp":       {NsPerOp: 15602978, AllocsPerOp: 18},
	"attention": {NsPerOp: 18657811, AllocsPerOp: 3890},
	"stack":     {NsPerOp: 26761458, AllocsPerOp: 9362},
}

type numericArch struct {
	Arch string `json:"arch"`
	// BeforeSerial is the pinned pre-optimization serial measurement.
	BeforeSerial trainbench.Result `json:"before_serial"`
	// Serial and Parallel are this machine's measurements (SDC guards on).
	Serial   trainbench.Result `json:"serial"`
	Parallel trainbench.Result `json:"parallel"`
	// SpeedupVsBefore is BeforeSerial/Serial ns per op.
	SpeedupVsBefore float64 `json:"speedup_vs_before"`
}

type numericReport struct {
	NumCPU  int           `json:"num_cpu"`
	Workers int           `json:"workers"`
	Archs   []numericArch `json:"archs"`
}

func measureNumeric(workers, repeat int) numericReport {
	rep := numericReport{NumCPU: runtime.NumCPU(), Workers: workers}
	for _, arch := range []string{"mlp", "attention", "stack"} {
		serCfg := trainbench.Config{Arch: arch, Workers: 1, SDC: true}
		parCfg := trainbench.Config{Arch: arch, Workers: workers, SDC: true}
		na := numericArch{
			Arch:         arch,
			BeforeSerial: numericBefore[arch],
			Serial:       trainbench.Best(func() trainbench.Result { return trainbench.MeasureStep(serCfg) }, repeat),
			Parallel:     trainbench.Best(func() trainbench.Result { return trainbench.MeasureStep(parCfg) }, repeat),
		}
		na.SpeedupVsBefore = float64(na.BeforeSerial.NsPerOp) / float64(na.Serial.NsPerOp)
		fmt.Fprintf(os.Stderr, "  %-9s before %8.2fms  serial %8.2fms (%.2fx)  parallel %8.2fms  allocs %d\n",
			arch, float64(na.BeforeSerial.NsPerOp)/1e6, float64(na.Serial.NsPerOp)/1e6,
			na.SpeedupVsBefore, float64(na.Parallel.NsPerOp)/1e6, na.Serial.AllocsPerOp)
		rep.Archs = append(rep.Archs, na)
	}
	return rep
}

func randWords(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(rng.Uint32())
	}
	return out
}

func bench(fn func()) int64 {
	return testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fn()
		}
	}).NsPerOp()
}

func hot(name string, workers int, run func(workers int) func()) hotPath {
	ser := bench(run(1))
	par := bench(run(workers))
	return hotPath{
		Name: name, Elements: hotN,
		SerialNsPerOp: ser, ParallelNsPerOp: par,
		Speedup: float64(ser) / float64(par),
	}
}

func hotPaths(workers int) []hotPath {
	rng := rand.New(rand.NewSource(1))
	params := make([]float32, hotN)
	grads := make([]float32, hotN)
	for i := range params {
		params[i] = rng.Float32()
		grads[i] = rng.Float32() * 0.01
	}
	out := []hotPath{
		hot("adam_step", workers, func(w int) func() {
			ad := optim.MustAdam(hotN, optim.AdamConfig{Workers: w})
			return func() {
				if err := ad.Step(params, grads); err != nil {
					panic(err)
				}
			}
		}),
		hot("dba_merge_words", workers, func(w int) func() {
			compute := randWords(hotN, 2)
			master := randWords(hotN, 3)
			return func() { dba.MergeWords(compute, master, 2, w) }
		}),
		hot("dba_scan_changed", workers, func(w int) func() {
			old := randWords(hotN, 4)
			new := randWords(hotN, 5)
			return func() { dba.ScanChanged(old, new, w) }
		}),
	}
	return out
}

func runSuite(ids []string, opt experiments.Options) (time.Duration, error) {
	t0 := time.Now()
	for _, id := range ids {
		if _, err := experiments.ByIDWith(id, opt); err != nil {
			return 0, fmt.Errorf("%s: %w", id, err)
		}
	}
	return time.Since(t0), nil
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output JSON path")
	numericOut := flag.String("numeric-out", "BENCH_numeric.json", "train-step report JSON path")
	seed := flag.Int64("seed", 42, "experiment seed")
	workers := flag.Int("workers", 0, "worker count for the parallel measurements (0: NumCPU)")
	skipSuite := flag.Bool("skip-suite", false, "only benchmark the hot paths (fast)")
	skipNumeric := flag.Bool("skip-numeric", false, "skip the train-step numeric report")
	repeat := flag.Int("repeat", 3, "best-of repetitions for the train-step measurements")
	prof := profileflags.Register(nil)
	flag.Parse()

	// Run at the machine's real parallelism even if the environment pinned
	// GOMAXPROCS down (the original BENCH_parallel.json was captured at
	// gomaxprocs=1, which made every hot-path "speedup" a no-op).
	numCPU := runtime.NumCPU()
	runtime.GOMAXPROCS(numCPU)
	if *workers <= 0 {
		*workers = numCPU
	}
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep := report{NumCPU: numCPU, GOMAXPROCS: numCPU, Workers: *workers, Seed: *seed}

	procs := []int{1, numCPU}
	if numCPU == 1 {
		procs = procs[:1]
	}
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		fmt.Fprintf(os.Stderr, "benchmarking hot paths at GOMAXPROCS=%d (serial vs %d workers)...\n", p, *workers)
		run := procRun{GOMAXPROCS: p, HotPaths: hotPaths(*workers)}
		for _, h := range run.HotPaths {
			fmt.Fprintf(os.Stderr, "  %-18s serial %8.2fms  parallel %8.2fms  %.2fx\n",
				h.Name, float64(h.SerialNsPerOp)/1e6, float64(h.ParallelNsPerOp)/1e6, h.Speedup)
		}
		rep.HotPaths = append(rep.HotPaths, run)
	}
	runtime.GOMAXPROCS(numCPU)

	if !*skipSuite {
		ids := []string{"fig2", "table5", "fig10", "fig13", "time-to-loss"}
		fmt.Fprintf(os.Stderr, "running accuracy suite %v serially, memoization off...\n", ids)
		serial, err := runSuite(ids, experiments.Options{Seed: *seed, Workers: 1, NoMemo: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  %.1fs\nrunning the same suite on %d workers with memoization...\n",
			serial.Seconds(), *workers)
		par, err := runSuite(ids, experiments.Options{Seed: *seed, Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  %.1fs  (%.2fx)\n", par.Seconds(), serial.Seconds()/par.Seconds())
		rep.Suite = &suiteResult{
			IDs:                     ids,
			SerialNoMemoSeconds:     serial.Seconds(),
			ParallelMemoizedSeconds: par.Seconds(),
			Speedup:                 serial.Seconds() / par.Seconds(),
		}
	}

	writeJSON(*out, rep)

	if !*skipNumeric {
		fmt.Fprintf(os.Stderr, "benchmarking train step per architecture (best of %d)...\n", *repeat)
		writeJSON(*numericOut, measureNumeric(*workers, *repeat))
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func writeJSON(path string, v any) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
