// Command tracegen generates and replays timed parameter-writeback traces —
// the paper's gem5-trace + process.py workflow (§VIII-A).
//
// Generate a trace of the CPU ADAM pass for a model:
//
//	tracegen -model Bert-large-cased -out bert.trace
//
// Replay it through the CXL emulator (optionally with DBA):
//
//	tracegen -replay bert.trace [-dba]
package main

import (
	"flag"
	"fmt"
	"os"

	"teco/internal/cpusim"
	"teco/internal/cxl"
	"teco/internal/dba"
	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/sim"
	"teco/internal/trace"
)

func main() {
	model := flag.String("model", "Bert-large-cased", "model name (Table III)")
	out := flag.String("out", "", "write the generated trace to this file (default stdout)")
	replay := flag.String("replay", "", "replay a trace file over the CXL link instead of generating")
	useDBA := flag.Bool("dba", false, "replay with dirty-byte aggregation (32-byte payloads)")
	maxLines := flag.Int("max-lines", 4096, "cap trace records per layer chunk (0 = every cache line)")
	hierarchy := flag.Bool("hierarchy", false, "generate via the gem5-style cache-hierarchy simulation instead of the analytic schedule (exact per-line writebacks; use -params to bound the size)")
	nParams := flag.Int64("params", 1<<20, "parameter count for -hierarchy mode")
	flag.Parse()

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		payload := mem.LineSize
		var extra sim.Time
		if *useDBA {
			payload = dba.WordsPerLine * dba.DefaultDirtyBytes
			extra = dba.ModelledLatency
		}
		link := cxl.NewLink(sim.New(), modelzoo.CXLLinkBandwidth(), cxl.DefaultQueueCap)
		res := trace.ReplayOverCXL(tr, link, payload, extra)
		fmt.Printf("replayed %d lines (%d payload bytes)\n", res.Lines, res.Bytes)
		fmt.Printf("finish: %v, drain tail after producer: %v, queue stall: %v\n",
			res.Finish, res.ExposedAfter, res.Stall)
		return
	}

	if *hierarchy {
		h := cpusim.NewHierarchySim()
		amap, regions := cpusim.LayoutAdam(*nParams)
		tr := h.RunAdamPass(amap, regions, *nParams)
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := tr.Write(w); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hierarchy pass over %d params: %d writebacks, CPU time %v\n",
			*nParams, tr.Len(), h.Now())
		return
	}

	m, ok := modelzoo.ByName(*model)
	if !ok {
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	cpu := cpusim.Xeon6120()
	chunks := cpu.UpdateSchedule(m)
	ready := make([]sim.Time, len(chunks))
	sizes := make([]int64, len(chunks))
	for i, c := range chunks {
		ready[i], sizes[i] = c.ReadyAt, c.Bytes
	}
	tr := trace.FromUpdateChunks(0, ready, sizes, 0, *maxLines)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d records for %s (%d layers, ADAM pass %v)\n",
		tr.Len(), m.Name, m.Layers, cpu.AdamTime(m.Params))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
