// Command benchflow measures the flow-coalescing fast path and writes the
// results as JSON (default BENCH_flow.json):
//
//   - the stream microbenchmark (one 1024-line homogeneous run per op) on
//     the per-line reference path versus the coalesced fast path, with
//     allocation counts, and
//   - the accuracy-experiment suite (the same ids BENCH_parallel.json
//     times) end-to-end under the coalescing default, compared against the
//     suite seconds recorded in an existing BENCH_parallel.json.
//
// Both modes produce bit-identical tables (asserted by the cross-check
// suites in internal/core and internal/experiments); only wall-clock
// differs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"teco/internal/experiments"
	"teco/internal/profileflags"
	"teco/internal/streambench"
)

type suiteResult struct {
	IDs []string `json:"ids"`
	// SerialNoMemoSeconds matches BENCH_parallel.json's configuration of
	// record: workers=1, memoization off, coalescing on (the default).
	SerialNoMemoSeconds float64 `json:"serial_no_memo_seconds"`
	// BaselineSerialSeconds is the same row from the baseline file, i.e.
	// the pre-coalescing suite cost.
	BaselineSerialSeconds float64 `json:"baseline_serial_seconds,omitempty"`
	// Improvement is baseline/current (>1 means faster now).
	Improvement float64 `json:"improvement,omitempty"`
}

type report struct {
	GOMAXPROCS int   `json:"gomaxprocs"`
	Seed       int64 `json:"seed"`
	RunLines   int   `json:"run_lines"`

	PerLine   streambench.Result `json:"per_line"`
	Coalesced streambench.Result `json:"coalesced"`
	// MicrobenchSpeedup is per-line ns/op over coalesced ns/op for the same
	// pushed run — the tentpole's >=5x target.
	MicrobenchSpeedup float64 `json:"microbench_speedup"`

	Suite *suiteResult `json:"suite,omitempty"`
}

// baselineSuiteSeconds pulls suite.serial_no_memo_seconds out of a
// BENCH_parallel.json, tolerating either the old or the regenerated shape.
func baselineSuiteSeconds(path string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc struct {
		Suite struct {
			SerialNoMemoSeconds float64 `json:"serial_no_memo_seconds"`
		} `json:"suite"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, err
	}
	if doc.Suite.SerialNoMemoSeconds == 0 {
		return 0, fmt.Errorf("%s: no suite.serial_no_memo_seconds", path)
	}
	return doc.Suite.SerialNoMemoSeconds, nil
}

func main() {
	out := flag.String("out", "BENCH_flow.json", "output JSON path")
	baseline := flag.String("baseline", "BENCH_parallel.json", "existing parallel report to compare suite seconds against (\"\" to skip)")
	seed := flag.Int64("seed", 42, "experiment seed")
	repeat := flag.Int("repeat", 3, "microbenchmark repetitions (best-of)")
	skipSuite := flag.Bool("skip-suite", false, "only run the stream microbenchmark (fast)")
	prof := profileflags.Register(nil)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep := report{GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: *seed, RunLines: streambench.RunLines}

	fmt.Fprintf(os.Stderr, "stream microbenchmark (%d-line runs, best of %d)...\n", streambench.RunLines, *repeat)
	rep.PerLine = streambench.Best(streambench.MeasurePerLine, *repeat)
	rep.Coalesced = streambench.Best(streambench.MeasureCoalesced, *repeat)
	rep.MicrobenchSpeedup = float64(rep.PerLine.NsPerOp) / float64(rep.Coalesced.NsPerOp)
	fmt.Fprintf(os.Stderr, "  per-line  %10d ns/op (%6.1f ns/line, %d allocs/op)\n",
		rep.PerLine.NsPerOp, rep.PerLine.NsPerLine, rep.PerLine.AllocsPerOp)
	fmt.Fprintf(os.Stderr, "  coalesced %10d ns/op (%d allocs/op)\n",
		rep.Coalesced.NsPerOp, rep.Coalesced.AllocsPerOp)
	fmt.Fprintf(os.Stderr, "  speedup   %.0fx\n", rep.MicrobenchSpeedup)

	if !*skipSuite {
		ids := []string{"fig2", "table5", "fig10", "fig13", "time-to-loss"}
		fmt.Fprintf(os.Stderr, "running accuracy suite %v serially, memoization off, coalescing on...\n", ids)
		t0 := time.Now()
		for _, id := range ids {
			if _, err := experiments.ByIDWith(id, experiments.Options{Seed: *seed, Workers: 1, NoMemo: true}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		cur := time.Since(t0).Seconds()
		s := &suiteResult{IDs: ids, SerialNoMemoSeconds: cur}
		if *baseline != "" {
			if prev, err := baselineSuiteSeconds(*baseline); err != nil {
				fmt.Fprintf(os.Stderr, "  (no baseline: %v)\n", err)
			} else {
				s.BaselineSerialSeconds = prev
				s.Improvement = prev / cur
			}
		}
		if s.Improvement > 0 {
			fmt.Fprintf(os.Stderr, "  %.1fs (baseline %.1fs, %.2fx)\n", cur, s.BaselineSerialSeconds, s.Improvement)
		} else {
			fmt.Fprintf(os.Stderr, "  %.1fs\n", cur)
		}
		rep.Suite = s
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
