// Command tecoload is the load-test traffic generator for the tecosimd
// sweep service: concurrent clients replay a hot/cold request mix against
// /run and the tool reports latency quantiles, cache hit rate, coalescing
// and shed counts — the numbers that show the daemon degrading gracefully
// (serving warm hits and shedding excess) instead of collapsing.
//
//	tecosimd -addr :8723 -cache-dir /tmp/teco &
//	tecoload -url http://localhost:8723 -clients 16 -duration 10s
//
// With -self it spins up an in-process server over a temp cache directory
// instead, so a one-command load test needs no running daemon.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"teco/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tecoload:", err)
		os.Exit(1)
	}
}

// counters aggregates worker outcomes.
type counters struct {
	ok, cached, coalesced atomic.Int64
	shed, errs            atomic.Int64
}

func run() error {
	var (
		url      = flag.String("url", "", "base URL of a running tecosimd (e.g. http://localhost:8723)")
		self     = flag.Bool("self", false, "spin up an in-process server over a temp cache instead of -url")
		clients  = flag.Int("clients", 8, "concurrent clients")
		duration = flag.Duration("duration", 10*time.Second, "how long to generate load")
		hot      = flag.Float64("hot", 0.8, "fraction of requests aimed at a single hot key (rest spread over -cold-keys cold keys)")
		coldKeys = flag.Int("cold-keys", 32, "distinct cold (id, seed) pairs in the mix")
		ids      = flag.String("ids", "table1,fig12,volume,table6,ablation-dpu", "comma-separated experiment ids to draw from")
		seed     = flag.Int64("seed", 1, "traffic-mix RNG seed")
		slots    = flag.Int("slots", 2, "-self: compute slots")
		queue    = flag.Int("queue", 8, "-self: admission queue depth")
	)
	flag.Parse()
	if (*url == "") == !*self {
		return fmt.Errorf("exactly one of -url or -self is required")
	}
	idList := strings.Split(*ids, ",")

	base := *url
	if *self {
		dir, err := os.MkdirTemp("", "tecoload-cache-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		srv, err := server.New(server.Config{CacheDir: dir, Slots: *slots, QueueDepth: *queue})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Printf("tecoload: in-process server on %s (cache %s)\n", base, dir)
	}

	// The request mix: one hot (id, seed) pair taking the -hot fraction of
	// traffic — the steady-state warm path — and -cold-keys cold pairs
	// sharing the rest, which exercise compute, coalescing and shedding.
	type target struct {
		id   string
		seed int64
	}
	hotTarget := target{idList[0], 42}
	cold := make([]target, *coldKeys)
	mixRng := rand.New(rand.NewSource(*seed))
	for i := range cold {
		cold[i] = target{idList[mixRng.Intn(len(idList))], int64(1000 + i)}
	}

	var c counters
	latMu := sync.Mutex{}
	var lats []time.Duration
	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			client := &http.Client{Timeout: time.Minute}
			for time.Now().Before(stop) {
				tgt := hotTarget
				if rng.Float64() >= *hot {
					tgt = cold[rng.Intn(len(cold))]
				}
				start := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/run?id=%s&seed=%d", base, tgt.id, tgt.seed))
				if err != nil {
					c.errs.Add(1)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				elapsed := time.Since(start)
				switch resp.StatusCode {
				case http.StatusOK:
					c.ok.Add(1)
					latMu.Lock()
					lats = append(lats, elapsed)
					latMu.Unlock()
					// Cheap envelope sniff; a full parse per request would
					// make the generator the bottleneck.
					if strings.Contains(string(body[:min(len(body), 64)]), `"cached":true`) {
						c.cached.Add(1)
					} else if strings.Contains(string(body[:min(len(body), 96)]), `"coalesced":true`) {
						c.coalesced.Add(1)
					}
				case http.StatusServiceUnavailable:
					c.shed.Add(1)
				default:
					c.errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	total := c.ok.Load() + c.shed.Load() + c.errs.Load()
	if total == 0 {
		return fmt.Errorf("no requests completed — is %s reachable?", base)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(float64(len(lats)-1)*p)]
	}
	fmt.Printf("requests:   %d (%.0f/s over %v)\n", total, float64(total)/duration.Seconds(), *duration)
	fmt.Printf("ok:         %d (%.1f%% cached, %d coalesced)\n",
		c.ok.Load(), 100*float64(c.cached.Load())/float64(max(c.ok.Load(), 1)), c.coalesced.Load())
	fmt.Printf("shed (503): %d\n", c.shed.Load())
	fmt.Printf("errors:     %d\n", c.errs.Load())
	fmt.Printf("latency:    p50 %v  p95 %v  p99 %v  max %v\n", q(0.50), q(0.95), q(0.99), q(1.0))
	if c.errs.Load() > 0 {
		return fmt.Errorf("%d requests failed", c.errs.Load())
	}
	return nil
}
