// Command tecosim regenerates the paper's tables and figures.
//
// Usage:
//
//	tecosim [-seed N] [-markdown] <experiment>
//	tecosim -list
//
// where <experiment> is one of the ids printed by -list (e.g. table1,
// fig11, lammps) or "all".
package main

import (
	"flag"
	"fmt"
	"os"

	"teco/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed for the real-training experiments")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown instead of aligned text")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tecosim [-seed N] [-markdown] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", experiments.IDs())
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	tabs, err := experiments.ByID(flag.Arg(0), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, t := range tabs {
		if *markdown {
			t.Markdown(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}
}
