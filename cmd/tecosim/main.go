// Command tecosim regenerates the paper's tables and figures.
//
// Usage:
//
//	tecosim [-seed N] [-markdown] <experiment>
//	tecosim -list
//
// where <experiment> is one of the ids printed by -list (e.g. table1,
// fig11, lammps) or "all".
package main

import (
	"flag"
	"fmt"
	"os"

	"teco/internal/core"
	"teco/internal/experiments"
	"teco/internal/profileflags"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed for the real-training experiments")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown instead of aligned text")
	list := flag.Bool("list", false, "list experiment ids and exit")
	ber := flag.Float64("ber", 0, "link bit-error rate for the fault sweep (0: default grid)")
	retryBudget := flag.Int("retry-budget", 0, "link-layer retransmit budget before poisoning (0: default 8)")
	degrade := flag.Bool("degrade", false, "enable graceful degradation from DBA to full-line transfers under faults")
	ckptInterval := flag.Int("ckpt-interval", 0, "checkpoint interval in steps for the recovery sweep (0: default grid)")
	ckptDir := flag.String("ckpt-dir", "", "root directory for recovery-sweep checkpoints (default: system temp)")
	crashAt := flag.Int("crash-at", 0, "kill and restore each recovery-sweep run at this step (0: no crash)")
	replicas := flag.Int("replicas", 0, "data-parallel width for the fabric sweep (0: default grid)")
	hostPorts := flag.Int("host-ports", 0, "fabric spine uplink count (0: oversubscription grid)")
	killPort := flag.Int("kill-port", 0, "1-based fabric port to kill in the fault sweep (0: default)")
	killStep := flag.Int("kill-step", 0, "fine-tuning step at which the fabric chaos kill fires (0: default)")
	layers := flag.Int("layers", 0, "layer count for the layers sweeps (0: default grid)")
	cachePct := flag.Int("cache-pct", 0, "fast-tier size for the layers sweeps, percent of model parameter bytes (0: defaults)")
	prefetch := flag.Int("prefetch", 0, "prefetch look-ahead depth in layers for the layers sweeps (0: defaults)")
	layerPolicy := flag.String("layer-policy", "", "eviction policy for the layers-policy sweep: lru, fifo, pin (empty: full set)")
	layerSeqLen := flag.Int("layer-seq-len", 0, "long-context sequence length for the layers-policy sweep (0: default 1024)")
	tierPolicy := flag.String("tier-policy", "", "placement policy for the tiering sweeps: heat, lru, static (empty: defaults)")
	tierDRAMPct := flag.Int("tier-dram-pct", 0, "fast-tier size for the tiering sweeps, percent of tiered slot bytes (0: defaults)")
	tierMigrateBudget := flag.Int("tier-migrate-budget", 0, "per-step migration budget in MiB for the tiering sweeps (0: defaults)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0: GOMAXPROCS, 1: serial); tables are identical at every setting")
	noMemo := flag.Bool("no-memo", false, "disable shared-run memoization across experiments (slower, identical output)")
	coalesce := flag.Bool("coalesce", true, "flow-coalescing fast path for the stream simulator; false runs the bit-identical per-line reference path (slow)")
	prof := profileflags.Register(nil)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tecosim [-seed N] [-markdown] [-workers N] [-no-memo] [-coalesce=false] [-ber R] [-retry-budget N] [-degrade] [-ckpt-interval N] [-ckpt-dir D] [-crash-at N] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: %v\n", experiments.IDs())
		flag.PrintDefaults()
	}
	flag.Parse()
	// The process-wide default catches engines built outside the experiment
	// generators (zz tools, future callers); Options.PerLine below covers
	// the generators themselves.
	core.SetPerLineDefault(!*coalesce)

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tabs, err := experiments.ByIDWith(flag.Arg(0), experiments.Options{
		Seed:              *seed,
		BER:               *ber,
		RetryBudget:       *retryBudget,
		Degrade:           *degrade,
		CkptInterval:      *ckptInterval,
		CkptDir:           *ckptDir,
		CrashAt:           *crashAt,
		Replicas:          *replicas,
		HostPorts:         *hostPorts,
		KillPort:          *killPort,
		KillStep:          *killStep,
		Layers:            *layers,
		CachePct:          *cachePct,
		PrefetchDepth:     *prefetch,
		LayerPolicy:       *layerPolicy,
		LayerSeqLen:       *layerSeqLen,
		TierPolicy:        *tierPolicy,
		TierDRAMPct:       *tierDRAMPct,
		TierMigrateBudget: *tierMigrateBudget,
		Workers:           *workers,
		NoMemo:            *noMemo,
		PerLine:           !*coalesce,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, t := range tabs {
		if *markdown {
			t.Markdown(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
