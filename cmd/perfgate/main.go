// Command perfgate is the CI perf-regression gate for the stream
// simulator. It re-measures the stream microbenchmark (the same workload
// cmd/benchflow records) and fails — exit status 1 — if:
//
//   - either mode's ns/op regressed more than the threshold (default 25%)
//     against the checked-in baseline (perf_baseline.json),
//   - either mode allocates in steady state,
//   - the coalescing speedup fell below the tentpole's 5x floor, or
//   - the sweep service's warm-cache p99 lookup latency (diskcache, the
//     tecosimd hot path) regressed past its own, looser threshold —
//     disk-backed latency on shared CI boxes is far noisier than a CPU
//     microbenchmark, so the cache gate defaults to 100% headroom where
//     the stream gate gets 25%, or
//   - the prefetch-scheduled layered step (internal/layerbench, the
//     BenchmarkLayerOverlap workload) regressed more than the threshold,
//   - the tiering migration plan epoch (internal/tierbench, the
//     BenchmarkTieringMigration workload) regressed more than the
//     threshold,
//   - a real fine-tuning step (internal/trainbench: blocked kernels, fused
//     clip+ADAM+scan pass, SDC guards on) regressed more than the threshold
//     on any architecture, or
//   - the steady-state fine-tuning step allocates (the tensor-arena
//     tentpole's contract: after warmup, Trainer.Step is allocation-free).
//
// Measurements take the best of -repeat runs, so scheduler noise on a busy
// CI box shows up as a slow outlier that is discarded, not a false failure.
// Run with -update after an intentional perf change to rewrite the
// baseline. No external dependencies: the check is this binary plus a JSON
// file in the repo.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"teco/internal/diskcache"
	"teco/internal/layerbench"
	"teco/internal/streambench"
	"teco/internal/tierbench"
	"teco/internal/trainbench"
)

// trainArchs are the proxy architectures the train-step gate covers, in
// report order.
var trainArchs = []string{"mlp", "attention", "stack"}

type baseline struct {
	// RunLines pins the workload shape the numbers were captured at.
	RunLines         int   `json:"run_lines"`
	PerLineNsPerOp   int64 `json:"per_line_ns_per_op"`
	CoalescedNsPerOp int64 `json:"coalesced_ns_per_op"`
	// WarmCacheP99Ns is the warm-lookup p99 of the tecosimd result cache at
	// the shape pinned by diskcache.WarmEntries/WarmPayloadBytes. Zero means
	// the baseline predates the cache gate; perfgate then measures and
	// reports but does not fail (run -update to arm it).
	WarmCacheP99Ns int64 `json:"warm_cache_p99_ns"`
	// LayerOverlapNsPerOp is one prefetch-scheduled layered step of the
	// layerbench workload (BenchmarkLayerOverlap). Zero means the baseline
	// predates the layer gate; perfgate then measures and reports but does
	// not fail (run -update to arm it).
	LayerOverlapNsPerOp int64 `json:"layer_overlap_ns_per_op"`
	// TieringMigrationNsPerOp is one plan epoch of the tierbench workload
	// (BenchmarkTieringMigration). Zero means the baseline predates the
	// tiering gate; perfgate then measures and reports but does not fail
	// (run -update to arm it).
	TieringMigrationNsPerOp int64 `json:"tiering_migration_ns_per_op"`
	// TrainStepNsPerOp maps proxy architecture -> ns per serial fine-tuning
	// step with SDC guards on (internal/trainbench). Nil/empty means the
	// baseline predates the train-step gate; perfgate then measures and
	// reports but does not fail (run -update to arm it). The companion
	// steady-state-alloc gate is absolute (0 allocs/op) and always armed.
	TrainStepNsPerOp map[string]int64 `json:"train_step_ns_per_op,omitempty"`
}

func main() {
	path := flag.String("baseline", "perf_baseline.json", "checked-in baseline path")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional ns/op regression before failing")
	minSpeedup := flag.Float64("min-speedup", 5, "minimum coalescing speedup (per-line / coalesced ns/op)")
	cacheThreshold := flag.Float64("cache-threshold", 1.0, "allowed fractional warm-cache p99 regression before failing")
	repeat := flag.Int("repeat", 3, "measurement repetitions (best-of)")
	update := flag.Bool("update", false, "rewrite the baseline from this machine's measurement and exit")
	flag.Parse()

	perLine := streambench.Best(streambench.MeasurePerLine, *repeat)
	coalesced := streambench.Best(streambench.MeasureCoalesced, *repeat)
	speedup := float64(perLine.NsPerOp) / float64(coalesced.NsPerOp)
	fmt.Printf("stream microbenchmark (%d-line runs, best of %d):\n", streambench.RunLines, *repeat)
	fmt.Printf("  per-line  %10d ns/op  %d allocs/op\n", perLine.NsPerOp, perLine.AllocsPerOp)
	fmt.Printf("  coalesced %10d ns/op  %d allocs/op\n", coalesced.NsPerOp, coalesced.AllocsPerOp)
	fmt.Printf("  speedup   %.0fx\n", speedup)

	warmP99 := measureWarmCacheP99(*repeat)
	fmt.Printf("warm-cache lookup (%d entries x %dB, best of %d):\n",
		diskcache.WarmEntries, diskcache.WarmPayloadBytes, *repeat)
	fmt.Printf("  p99       %10d ns\n", warmP99)

	overlap := layerbench.Best(*repeat)
	fmt.Printf("layer-overlap step (GPT-2, cache %d%%, best of %d):\n", layerbench.CachePct, *repeat)
	fmt.Printf("  scheduled %10d ns/op  %d allocs/op\n", overlap.NsPerOp, overlap.AllocsPerOp)

	migration := tierbench.Best(*repeat)
	fmt.Printf("tiering migration epoch (GPT-2, fast tier %d%%, best of %d):\n", tierbench.CapacityPct, *repeat)
	fmt.Printf("  planned   %10d ns/op  %d allocs/op\n", migration.NsPerOp, migration.AllocsPerOp)

	trainStep := make(map[string]int64, len(trainArchs))
	trainAllocs := make(map[string]float64, len(trainArchs))
	fmt.Printf("train step (serial, SDC guards on, best of %d):\n", *repeat)
	for _, arch := range trainArchs {
		cfg := trainbench.Config{Arch: arch, Workers: 1, SDC: true}
		r := trainbench.Best(func() trainbench.Result { return trainbench.MeasureStep(cfg) }, *repeat)
		trainStep[arch] = r.NsPerOp
		// The alloc gate excludes the sampled-step bookkeeping (samples
		// slice appends at the sampling cadence, by design).
		cfg.SampleEvery = 1 << 29
		trainAllocs[arch] = trainbench.StepAllocs(cfg, 10)
		fmt.Printf("  %-9s %10d ns/op  %.1f allocs/op\n", arch, r.NsPerOp, trainAllocs[arch])
	}

	if *update {
		b := baseline{
			RunLines:                streambench.RunLines,
			PerLineNsPerOp:          perLine.NsPerOp,
			CoalescedNsPerOp:        coalesced.NsPerOp,
			WarmCacheP99Ns:          warmP99,
			LayerOverlapNsPerOp:     overlap.NsPerOp,
			TieringMigrationNsPerOp: migration.NsPerOp,
			TrainStepNsPerOp:        trainStep,
		}
		buf, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*path, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *path)
		return
	}

	raw, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v (run with -update to create the baseline)\n", err)
		os.Exit(1)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %s: %v\n", *path, err)
		os.Exit(1)
	}
	if base.RunLines != streambench.RunLines {
		fmt.Fprintf(os.Stderr, "perfgate: baseline captured at %d-line runs, benchmark uses %d (re-run -update)\n",
			base.RunLines, streambench.RunLines)
		os.Exit(1)
	}

	failed := false
	check := func(name string, got, want int64) {
		limit := float64(want) * (1 + *threshold)
		if float64(got) > limit {
			fmt.Fprintf(os.Stderr, "FAIL %s: %d ns/op exceeds baseline %d ns/op by more than %.0f%% (limit %.0f)\n",
				name, got, want, *threshold*100, limit)
			failed = true
		} else {
			fmt.Printf("  ok %s: %d ns/op within %.0f%% of baseline %d\n", name, got, *threshold*100, want)
		}
	}
	check("per-line", perLine.NsPerOp, base.PerLineNsPerOp)
	check("coalesced", coalesced.NsPerOp, base.CoalescedNsPerOp)
	if base.WarmCacheP99Ns > 0 {
		limit := float64(base.WarmCacheP99Ns) * (1 + *cacheThreshold)
		if float64(warmP99) > limit {
			fmt.Fprintf(os.Stderr, "FAIL warm-cache p99: %d ns exceeds baseline %d ns by more than %.0f%% (limit %.0f)\n",
				warmP99, base.WarmCacheP99Ns, *cacheThreshold*100, limit)
			failed = true
		} else {
			fmt.Printf("  ok warm-cache p99: %d ns within %.0f%% of baseline %d\n", warmP99, *cacheThreshold*100, base.WarmCacheP99Ns)
		}
	} else {
		fmt.Println("  -- warm-cache p99: no baseline recorded; measuring only (run -update to arm the gate)")
	}
	if base.LayerOverlapNsPerOp > 0 {
		check("layer-overlap", overlap.NsPerOp, base.LayerOverlapNsPerOp)
	} else {
		fmt.Println("  -- layer-overlap: no baseline recorded; measuring only (run -update to arm the gate)")
	}
	if base.TieringMigrationNsPerOp > 0 {
		check("tiering-migration", migration.NsPerOp, base.TieringMigrationNsPerOp)
	} else {
		fmt.Println("  -- tiering-migration: no baseline recorded; measuring only (run -update to arm the gate)")
	}
	for _, arch := range trainArchs {
		if want, ok := base.TrainStepNsPerOp[arch]; ok && want > 0 {
			check("train-step/"+arch, trainStep[arch], want)
		} else {
			fmt.Printf("  -- train-step/%s: no baseline recorded; measuring only (run -update to arm the gate)\n", arch)
		}
		if trainAllocs[arch] != 0 {
			fmt.Fprintf(os.Stderr, "FAIL train-step/%s allocations: %.1f allocs/op in steady state (want 0)\n",
				arch, trainAllocs[arch])
			failed = true
		}
	}
	if perLine.AllocsPerOp != 0 || coalesced.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "FAIL allocations: per-line %d, coalesced %d allocs/op (want 0)\n",
			perLine.AllocsPerOp, coalesced.AllocsPerOp)
		failed = true
	}
	if speedup < *minSpeedup {
		fmt.Fprintf(os.Stderr, "FAIL speedup: %.1fx below the %.0fx floor\n", speedup, *minSpeedup)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("perfgate: pass")
}

// measureWarmCacheP99 returns the best warm-lookup p99 of repeat runs, each
// against its own fresh temp directory — best-of for the same reason as the
// stream benchmark: a noisy-neighbour outlier must not fail the gate.
func measureWarmCacheP99(repeat int) int64 {
	best := int64(0)
	for i := 0; i < repeat; i++ {
		p99, err := diskcache.MeasureWarmLookupP99Temp()
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfgate: warm-cache measurement: %v\n", err)
			os.Exit(1)
		}
		if best == 0 || p99 < best {
			best = p99
		}
	}
	return best
}
