package md

import (
	"runtime"
	"sync"
)

// ComputeForcesParallel evaluates the LJ forces with a worker pool,
// partitioning home cells across workers. Each worker accumulates into a
// private force array and a private potential sum (Newton's-third-law
// writes to neighbour-slab particles never race), followed by a parallel
// reduction — share memory by communicating the slab indices, not by
// locking the force array. workers <= 0 selects GOMAXPROCS.
//
// The result is numerically equivalent to ComputeForces up to FP32
// summation-order differences.
func (s *System) ComputeForcesParallel(pos []Vec3, workers int) float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return s.ComputeForces(pos)
	}
	// Build the cell lists serially (cheap, O(N)).
	s.buildCells()
	for i := 0; i < s.N; i++ {
		s.cells[s.cellIndexOf(pos[i])] = append(s.cells[s.cellIndexOf(pos[i])], int32(i))
	}
	cps := s.cellsPerSide
	if workers > cps {
		workers = cps
	}

	cut2 := float64(s.Cutoff) * float64(s.Cutoff)
	box := float64(s.Box)
	half := box / 2
	cellAt := func(x, y, z int) []int32 {
		x = (x%cps + cps) % cps
		y = (y%cps + cps) % cps
		z = (z%cps + cps) % cps
		return s.cells[(x*cps+y)*cps+z]
	}

	forces := make([][]Vec3, workers)
	pots := make([]float64, workers)
	slabs := make(chan int, cps)
	for cx := 0; cx < cps; cx++ {
		slabs <- cx
	}
	close(slabs)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		forces[w] = make([]Vec3, s.N)
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := forces[w]
			var pot float64
			for cx := range slabs {
				for cy := 0; cy < cps; cy++ {
					for cz := 0; cz < cps; cz++ {
						home := cellAt(cx, cy, cz)
						for dx := -1; dx <= 1; dx++ {
							for dy := -1; dy <= 1; dy++ {
								for dz := -1; dz <= 1; dz++ {
									nb := cellAt(cx+dx, cy+dy, cz+dz)
									for _, iIdx := range home {
										for _, jIdx := range nb {
											if jIdx <= iIdx {
												continue
											}
											i, j := int(iIdx), int(jIdx)
											ddx := float64(pos[i].X - pos[j].X)
											ddy := float64(pos[i].Y - pos[j].Y)
											ddz := float64(pos[i].Z - pos[j].Z)
											if ddx > half {
												ddx -= box
											} else if ddx < -half {
												ddx += box
											}
											if ddy > half {
												ddy -= box
											} else if ddy < -half {
												ddy += box
											}
											if ddz > half {
												ddz -= box
											} else if ddz < -half {
												ddz += box
											}
											r2 := ddx*ddx + ddy*ddy + ddz*ddz
											if r2 >= cut2 || r2 == 0 {
												continue
											}
											inv2 := 1 / r2
											inv6 := inv2 * inv2 * inv2
											ff := 24 * inv2 * inv6 * (2*inv6 - 1)
											pot += 4 * inv6 * (inv6 - 1)
											fx := float32(ff * ddx)
											fy := float32(ff * ddy)
											fz := float32(ff * ddz)
											f[i].X += fx
											f[i].Y += fy
											f[i].Z += fz
											f[j].X -= fx
											f[j].Y -= fy
											f[j].Z -= fz
										}
									}
								}
							}
						}
					}
				}
			}
			pots[w] = pot
		}()
	}
	wg.Wait()

	// Parallel reduction over particle ranges.
	var rg sync.WaitGroup
	chunk := (s.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > s.N {
			hi = s.N
		}
		if lo >= hi {
			break
		}
		rg.Add(1)
		go func(lo, hi int) {
			defer rg.Done()
			for i := lo; i < hi; i++ {
				var fx, fy, fz float32
				for _, f := range forces {
					fx += f[i].X
					fy += f[i].Y
					fz += f[i].Z
				}
				s.Force[i] = Vec3{X: fx, Y: fy, Z: fz}
			}
		}(lo, hi)
	}
	rg.Wait()

	var pot float64
	for _, p := range pots {
		pot += p
	}
	s.Potential = pot
	return pot
}
