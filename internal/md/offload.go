package md

import (
	"math"

	"teco/internal/modelzoo"
	"teco/internal/sim"
)

// Timing constants for the offloaded MD step (§VII): the force kernel is a
// neighbour-gather workload with much lower arithmetic efficiency than
// dense DL kernels.
const (
	// MDGPUEffectiveFLOPS is the V100's sustained throughput on the LJ
	// pair kernel.
	MDGPUEffectiveFLOPS = 0.7e12
	// FlopsPerPair is the cost of one LJ pair interaction.
	FlopsPerPair = 40
	// AvgNeighbors is the average neighbour count at the melt density
	// with cutoff 2.5.
	AvgNeighbors = 75
	// IntegrateBytesPerAtom is CPU memory traffic per atom per Verlet
	// update (positions + velocities + forces, read/write).
	IntegrateBytesPerAtom = 48
	// MDDirtyBytes is `dirty_bytes` for the position stream. As with DL
	// parameters (and unlike forces, whose sign byte flips constantly),
	// positions are made DBA-safe by transferring them as box-scaled
	// coordinates in [1, 2): there the sign and exponent bytes are
	// invariant, so with 3 dirty bytes the stale top byte never changes
	// and the merge is exact; the changing bytes are exactly the low
	// mantissa — the same byte-update pattern TECO exploits for
	// parameters.
	MDDirtyBytes = 3
)

// StepTiming is the per-step breakdown of the offloaded MD loop.
type StepTiming struct {
	Kernel    sim.Time // force kernel on the accelerator
	ForceXfer sim.Time // force transfer exposed beyond the kernel
	Integrate sim.Time // position update on CPU
	PosXfer   sim.Time // position transfer exposed beyond integration
	LinkBytes int64    // total payload on the link per step
}

// Total returns the critical-path step time.
func (t StepTiming) Total() sim.Time {
	return t.Kernel + t.ForceXfer + t.Integrate + t.PosXfer
}

// CommExposed returns exposed transfer time.
func (t StepTiming) CommExposed() sim.Time { return t.ForceXfer + t.PosXfer }

// Mode selects the interconnect behaviour for the MD loop.
type Mode int

const (
	// Baseline uses bulk PCIe DMA with transfers on the critical path.
	Baseline Mode = iota
	// CXLOnly streams updates through the coherent giant cache.
	CXLOnly
	// CXLWithDBA additionally dirty-byte-aggregates the positions.
	CXLWithDBA
)

// kernelTime returns the force-kernel duration for n atoms.
func kernelTime(n int) sim.Time {
	flops := float64(n) * AvgNeighbors * FlopsPerPair
	return sim.FromSeconds(flops / MDGPUEffectiveFLOPS)
}

// integrateTime returns the CPU Verlet-update duration for n atoms.
func integrateTime(n int) sim.Time {
	return sim.FromSeconds(float64(n) * IntegrateBytesPerAtom / modelzoo.CPUMemBandwidth)
}

// SimulateStep models one offloaded MD step for n atoms under the mode.
func SimulateStep(n int, mode Mode) StepTiming {
	posBytes := int64(n) * 12
	forceBytes := int64(n) * 12
	var t StepTiming
	t.Kernel = kernelTime(n)
	t.Integrate = integrateTime(n)

	switch mode {
	case Baseline:
		bw := modelzoo.BaselineLinkBandwidth()
		t.ForceXfer = sim.DurationForBytes(forceBytes, bw)
		t.PosXfer = sim.DurationForBytes(posBytes, bw)
		t.LinkBytes = posBytes + forceBytes
	case CXLOnly, CXLWithDBA:
		bw := modelzoo.CXLLinkBandwidth()
		// Forces stream out while the kernel runs; positions stream
		// while the CPU integrates. Exposure is only the excess beyond
		// the producing phase.
		fx := sim.DurationForBytes(forceBytes, bw)
		if fx > t.Kernel {
			t.ForceXfer = fx - t.Kernel
		}
		if fx > t.Kernel {
			t.ForceXfer = fx - t.Kernel
		}
		movedPos := posBytes
		if mode == CXLWithDBA {
			movedPos = posBytes * MDDirtyBytes / 4
		}
		px := sim.DurationForBytes(movedPos, bw)
		if px > t.Integrate {
			t.PosXfer = px - t.Integrate
		}
		t.LinkBytes = movedPos + forceBytes
	}
	return t
}

// GeneralityReport is the §VII result set.
type GeneralityReport struct {
	Atoms              int
	BaselineStep       sim.Time
	CXLStep            sim.Time
	DBAStep            sim.Time
	CommFraction       float64 // baseline exposed-comm share (paper: 27%)
	Improvement        float64 // total TECO improvement (paper: 21.5%)
	VolumeReduction    float64 // DBA link-volume saving (paper: 17%)
	CXLContribution    float64 // share of improvement from CXL (paper: 78%)
	DBAContribution    float64 // share from DBA (paper: 22%)
	HoursSavedPerMonth float64 // illustrative long-run saving
}

// Generality computes the §VII comparison for n atoms.
func Generality(n int) GeneralityReport {
	base := SimulateStep(n, Baseline)
	cxl := SimulateStep(n, CXLOnly)
	dbaT := SimulateStep(n, CXLWithDBA)
	r := GeneralityReport{
		Atoms:        n,
		BaselineStep: base.Total(),
		CXLStep:      cxl.Total(),
		DBAStep:      dbaT.Total(),
		CommFraction: float64(base.CommExposed()) / float64(base.Total()),
	}
	total := float64(base.Total() - dbaT.Total())
	r.Improvement = total / float64(base.Total())
	r.VolumeReduction = 1 - float64(dbaT.LinkBytes)/float64(base.LinkBytes)
	if total > 0 {
		r.CXLContribution = float64(base.Total()-cxl.Total()) / total
		r.DBAContribution = float64(cxl.Total()-dbaT.Total()) / total
	}
	// A month of continuous simulation at the baseline rate.
	stepsPerMonth := 30 * 24 * 3600 / base.Total().Seconds()
	r.HoursSavedPerMonth = stepsPerMonth * (base.Total().Seconds() - dbaT.Total().Seconds()) / 3600
	return r
}

// ---------------------------------------------------------------------------
// Real-physics DBA validation.

// RunOffloaded advances the system `steps` steps of size dt with the
// offloaded dataflow: the CPU integrates positions and ships them to the
// accelerator through the dirty-byte path (as box-scaled coordinates in
// [1, 2), where the merge is well-conditioned); the accelerator computes
// forces from its merged position copy, and forces return exact — like
// gradients in the DL flow, the accelerator->CPU stream is not DBA'd. It
// returns the relative total-energy drift over the run — the physics-level
// counterpart of the paper's accuracy tables.
func RunOffloaded(s *System, steps int, dt float32, dirtyBytes int) (drift float64) {
	s.ComputeForces(s.Pos)
	e0 := s.TotalEnergy()
	accU := make([]Vec3, s.N)   // accelerator's scaled position copy
	accPos := make([]Vec3, s.N) // reconstructed positions on the accelerator
	masterU := make([]Vec3, s.N)
	s.toScaled(masterU, s.Pos)
	copy(accU, masterU)
	forceEval := func() {
		// Position transfer CPU -> accelerator over the dirty-byte
		// path, then the offloaded kernel on the merged copy.
		s.toScaled(masterU, s.Pos)
		mergeVecs(accU, masterU, dirtyBytes)
		s.fromScaled(accPos, accU)
		s.ComputeForces(accPos)
	}
	for step := 0; step < steps; step++ {
		s.VerletStep(dt, forceEval)
	}
	e1 := s.TotalEnergy()
	ref := math.Abs(e0)
	if ref == 0 {
		ref = 1
	}
	d := math.Abs(e1-e0) / ref
	if math.IsNaN(d) {
		return math.Inf(1)
	}
	return d
}

// toScaled maps positions in [0, box) to u = 1 + pos/box in [1, 2), the
// fixed-binade representation that keeps FP32 sign/exponent bytes constant.
func (s *System) toScaled(dst, pos []Vec3) {
	inv := 1 / s.Box
	for i, p := range pos {
		dst[i] = Vec3{X: 1 + s.wrap(p.X)*inv, Y: 1 + s.wrap(p.Y)*inv, Z: 1 + s.wrap(p.Z)*inv}
	}
}

// fromScaled reconstructs positions from the scaled representation.
func (s *System) fromScaled(dst, u []Vec3) {
	for i, v := range u {
		dst[i] = Vec3{X: (v.X - 1) * s.Box, Y: (v.Y - 1) * s.Box, Z: (v.Z - 1) * s.Box}
	}
}

// mergeVecs refreshes dst from src via the dirty-byte merge (n = 4 is a
// full copy): src's low n bytes over dst's stale high bytes, per FP32
// component — the Disaggregator semantics.
func mergeVecs(dst, src []Vec3, n int) {
	if n >= 4 || n <= 0 {
		copy(dst, src)
		return
	}
	mask := uint32(1)<<(uint(n)*8) - 1
	merge := func(d, s float32) float32 {
		db := math.Float32bits(d)
		sb := math.Float32bits(s)
		return math.Float32frombits((db &^ mask) | (sb & mask))
	}
	for i := range dst {
		dst[i].X = merge(dst[i].X, src[i].X)
		dst[i].Y = merge(dst[i].Y, src[i].Y)
		dst[i].Z = merge(dst[i].Z, src[i].Z)
	}
}
