// Package md is a Lennard-Jones molecular-dynamics simulator (the LAMMPS
// "3D LJ melt" workload of the paper's §VII generality study): an FCC
// lattice melting under NVE dynamics with velocity-Verlet integration,
// periodic boundaries, and cell-list neighbour search.
//
// The offload structure mirrors the paper's: the accelerator computes
// forces, ships them to the CPU; the CPU integrates positions and ships
// them back — an iterative producer/consumer pattern with tolerance for
// approximation, i.e. exactly the three TECO-applicability conditions.
package md

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec3 is a 3-component single-precision vector. Positions are FP32 so the
// dirty-byte machinery applies to them exactly as to DL parameters.
type Vec3 struct{ X, Y, Z float32 }

// System is the particle state in reduced LJ units (sigma = epsilon = 1).
type System struct {
	N      int
	Box    float32 // cubic box edge
	Cutoff float32
	Pos    []Vec3
	Vel    []Vec3
	Force  []Vec3

	cellsPerSide int
	cells        [][]int32
	// Virial and potential accumulated by the last force evaluation.
	Potential float64
}

// Config sets up the melt.
type Config struct {
	// CellsPerSide: the FCC lattice replicates 4 atoms per cell, so
	// N = 4 * CellsPerSide^3 (default 4 -> 256 atoms).
	CellsPerSide int
	// Density is reduced number density (default 0.8442, the classic LJ
	// melt point).
	Density float64
	// Temperature is the initial reduced temperature (default 1.44).
	Temperature float64
	// Cutoff is the interaction cutoff (default 2.5).
	Cutoff float64
	Seed   int64
}

func (c Config) withDefaults() Config {
	if c.CellsPerSide == 0 {
		c.CellsPerSide = 4
	}
	if c.Density == 0 {
		c.Density = 0.8442
	}
	if c.Temperature == 0 {
		c.Temperature = 1.44
	}
	if c.Cutoff == 0 {
		c.Cutoff = 2.5
	}
	return c
}

// NewSystem builds an FCC lattice with Maxwell-distributed velocities, net
// momentum removed — the standard LJ melt setup.
func NewSystem(cfg Config) *System {
	cfg = cfg.withDefaults()
	nc := cfg.CellsPerSide
	n := 4 * nc * nc * nc
	box := float32(math.Cbrt(float64(n) / cfg.Density))
	s := &System{
		N:      n,
		Box:    box,
		Cutoff: float32(cfg.Cutoff),
		Pos:    make([]Vec3, n),
		Vel:    make([]Vec3, n),
		Force:  make([]Vec3, n),
	}
	// FCC basis.
	basis := [4][3]float32{{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}}
	a := box / float32(nc)
	i := 0
	for x := 0; x < nc; x++ {
		for y := 0; y < nc; y++ {
			for z := 0; z < nc; z++ {
				for _, b := range basis {
					s.Pos[i] = Vec3{
						X: (float32(x) + b[0]) * a,
						Y: (float32(y) + b[1]) * a,
						Z: (float32(z) + b[2]) * a,
					}
					i++
				}
			}
		}
	}
	// Maxwell velocities at the target temperature.
	rng := rand.New(rand.NewSource(cfg.Seed))
	sd := float32(math.Sqrt(cfg.Temperature))
	var mean Vec3
	for i := range s.Vel {
		s.Vel[i] = Vec3{
			X: sd * float32(rng.NormFloat64()),
			Y: sd * float32(rng.NormFloat64()),
			Z: sd * float32(rng.NormFloat64()),
		}
		mean.X += s.Vel[i].X
		mean.Y += s.Vel[i].Y
		mean.Z += s.Vel[i].Z
	}
	inv := 1 / float32(n)
	for i := range s.Vel {
		s.Vel[i].X -= mean.X * inv
		s.Vel[i].Y -= mean.Y * inv
		s.Vel[i].Z -= mean.Z * inv
	}
	s.buildCells()
	s.ComputeForces(s.Pos)
	return s
}

// wrap folds a coordinate into [0, box). Non-finite coordinates (a blown-up
// trajectory, e.g. under an intolerably aggressive dirty-byte setting) fold
// to 0 so the simulation remains well-defined and terminates.
func (s *System) wrap(v float32) float32 {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	b := float64(s.Box)
	f = math.Mod(f, b)
	if f < 0 {
		f += b
	}
	if f >= b {
		f = 0
	}
	return float32(f)
}

func (s *System) buildCells() {
	cps := int(s.Box / s.Cutoff)
	if cps < 3 {
		cps = 3
	}
	s.cellsPerSide = cps
	total := cps * cps * cps
	if s.cells == nil || len(s.cells) != total {
		s.cells = make([][]int32, total)
	}
	for i := range s.cells {
		s.cells[i] = s.cells[i][:0]
	}
}

func (s *System) cellIndexOf(p Vec3) int {
	cps := s.cellsPerSide
	cw := s.Box / float32(cps)
	clamp := func(c int) int {
		if c < 0 {
			return 0
		}
		if c >= cps {
			return cps - 1
		}
		return c
	}
	cx := clamp(int(s.wrap(p.X) / cw))
	cy := clamp(int(s.wrap(p.Y) / cw))
	cz := clamp(int(s.wrap(p.Z) / cw))
	return (cx*cps+cy)*cps + cz
}

// ComputeForces evaluates LJ forces from the given positions (which may be
// the accelerator's DBA-merged copy) into s.Force, and returns the
// potential energy. This is the "offloaded kernel".
func (s *System) ComputeForces(pos []Vec3) float64 {
	if len(pos) != s.N {
		panic(fmt.Sprintf("md: %d positions for %d particles", len(pos), s.N))
	}
	for i := range s.Force {
		s.Force[i] = Vec3{}
	}
	s.buildCells()
	for i := 0; i < s.N; i++ {
		s.cells[s.cellIndexOf(pos[i])] = append(s.cells[s.cellIndexOf(pos[i])], int32(i))
	}
	cut2 := float64(s.Cutoff) * float64(s.Cutoff)
	box := float64(s.Box)
	half := box / 2
	var pot float64
	cps := s.cellsPerSide
	cellAt := func(x, y, z int) []int32 {
		x = (x%cps + cps) % cps
		y = (y%cps + cps) % cps
		z = (z%cps + cps) % cps
		return s.cells[(x*cps+y)*cps+z]
	}
	for cx := 0; cx < cps; cx++ {
		for cy := 0; cy < cps; cy++ {
			for cz := 0; cz < cps; cz++ {
				home := cellAt(cx, cy, cz)
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						for dz := -1; dz <= 1; dz++ {
							nb := cellAt(cx+dx, cy+dy, cz+dz)
							for _, iIdx := range home {
								for _, jIdx := range nb {
									if jIdx <= iIdx {
										continue
									}
									i, j := int(iIdx), int(jIdx)
									ddx := float64(pos[i].X - pos[j].X)
									ddy := float64(pos[i].Y - pos[j].Y)
									ddz := float64(pos[i].Z - pos[j].Z)
									// Minimum image.
									if ddx > half {
										ddx -= box
									} else if ddx < -half {
										ddx += box
									}
									if ddy > half {
										ddy -= box
									} else if ddy < -half {
										ddy += box
									}
									if ddz > half {
										ddz -= box
									} else if ddz < -half {
										ddz += box
									}
									r2 := ddx*ddx + ddy*ddy + ddz*ddz
									if r2 >= cut2 || r2 == 0 {
										continue
									}
									inv2 := 1 / r2
									inv6 := inv2 * inv2 * inv2
									// LJ: U = 4(r^-12 - r^-6), F = 24(2 r^-12 - r^-6)/r^2 * dr.
									ff := 24 * inv2 * inv6 * (2*inv6 - 1)
									pot += 4 * inv6 * (inv6 - 1)
									fx := float32(ff * ddx)
									fy := float32(ff * ddy)
									fz := float32(ff * ddz)
									s.Force[i].X += fx
									s.Force[i].Y += fy
									s.Force[i].Z += fz
									s.Force[j].X -= fx
									s.Force[j].Y -= fy
									s.Force[j].Z -= fz
								}
							}
						}
					}
				}
			}
		}
	}
	s.Potential = pot
	return pot
}

// KineticEnergy returns the total kinetic energy.
func (s *System) KineticEnergy() float64 {
	var ke float64
	for _, v := range s.Vel {
		ke += float64(v.X)*float64(v.X) + float64(v.Y)*float64(v.Y) + float64(v.Z)*float64(v.Z)
	}
	return ke / 2
}

// Temperature returns the instantaneous reduced temperature.
func (s *System) Temperature() float64 {
	return 2 * s.KineticEnergy() / (3 * float64(s.N))
}

// TotalEnergy returns kinetic + potential from the last force evaluation.
func (s *System) TotalEnergy() float64 { return s.KineticEnergy() + s.Potential }

// VerletStep advances one NVE velocity-Verlet step of size dt. After the
// drift it calls forceEval, which must refresh s.Force from the new
// positions — in the offloaded setup that is "transfer positions to the
// accelerator, run the kernel there"; nil means evaluate from s.Pos
// directly.
func (s *System) VerletStep(dt float32, forceEval func()) {
	if forceEval == nil {
		forceEval = func() { s.ComputeForces(s.Pos) }
	}
	half := dt / 2
	for i := range s.Vel {
		s.Vel[i].X += half * s.Force[i].X
		s.Vel[i].Y += half * s.Force[i].Y
		s.Vel[i].Z += half * s.Force[i].Z
	}
	for i := range s.Pos {
		s.Pos[i].X = s.wrap(s.Pos[i].X + dt*s.Vel[i].X)
		s.Pos[i].Y = s.wrap(s.Pos[i].Y + dt*s.Vel[i].Y)
		s.Pos[i].Z = s.wrap(s.Pos[i].Z + dt*s.Vel[i].Z)
	}
	forceEval()
	for i := range s.Vel {
		s.Vel[i].X += half * s.Force[i].X
		s.Vel[i].Y += half * s.Force[i].Y
		s.Vel[i].Z += half * s.Force[i].Z
	}
}

// PosBytes returns the position transfer volume (3 FP32 per particle).
func (s *System) PosBytes() int64 { return int64(s.N) * 12 }

// ForceBytes returns the force transfer volume.
func (s *System) ForceBytes() int64 { return int64(s.N) * 12 }
