package md

import (
	"math"
	"testing"
)

func TestLatticeSetup(t *testing.T) {
	s := NewSystem(Config{CellsPerSide: 3, Seed: 1})
	if s.N != 4*27 {
		t.Fatalf("N = %d", s.N)
	}
	// Density check: N / box^3 ~= 0.8442.
	rho := float64(s.N) / math.Pow(float64(s.Box), 3)
	if math.Abs(rho-0.8442) > 1e-3 {
		t.Fatalf("density = %v", rho)
	}
	// Positions inside the box.
	for _, p := range s.Pos {
		if p.X < 0 || p.X >= s.Box || p.Y < 0 || p.Y >= s.Box || p.Z < 0 || p.Z >= s.Box {
			t.Fatalf("particle outside box: %+v", p)
		}
	}
}

func TestZeroNetMomentum(t *testing.T) {
	s := NewSystem(Config{Seed: 2})
	var px, py, pz float64
	for _, v := range s.Vel {
		px += float64(v.X)
		py += float64(v.Y)
		pz += float64(v.Z)
	}
	if math.Abs(px) > 1e-3 || math.Abs(py) > 1e-3 || math.Abs(pz) > 1e-3 {
		t.Fatalf("net momentum (%g, %g, %g)", px, py, pz)
	}
}

func TestInitialTemperature(t *testing.T) {
	s := NewSystem(Config{Temperature: 1.44, Seed: 3})
	T := s.Temperature()
	if T < 1.2 || T > 1.7 {
		t.Fatalf("initial temperature %v, want ~1.44", T)
	}
}

// TestNewtonThirdLaw: forces must sum to ~zero (pairwise antisymmetric).
func TestNewtonThirdLaw(t *testing.T) {
	s := NewSystem(Config{Seed: 4})
	s.ComputeForces(s.Pos)
	var fx, fy, fz float64
	for _, f := range s.Force {
		fx += float64(f.X)
		fy += float64(f.Y)
		fz += float64(f.Z)
	}
	if math.Abs(fx) > 1e-2 || math.Abs(fy) > 1e-2 || math.Abs(fz) > 1e-2 {
		t.Fatalf("net force (%g, %g, %g)", fx, fy, fz)
	}
}

// TestCellListMatchesBruteForce validates the neighbour search against an
// O(N^2) reference.
func TestCellListMatchesBruteForce(t *testing.T) {
	s := NewSystem(Config{CellsPerSide: 3, Seed: 5})
	s.ComputeForces(s.Pos)
	got := make([]Vec3, s.N)
	copy(got, s.Force)
	potGot := s.Potential

	// Brute force reference.
	ref := make([]Vec3, s.N)
	var potRef float64
	box := float64(s.Box)
	half := box / 2
	cut2 := float64(s.Cutoff) * float64(s.Cutoff)
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			dx := float64(s.Pos[i].X - s.Pos[j].X)
			dy := float64(s.Pos[i].Y - s.Pos[j].Y)
			dz := float64(s.Pos[i].Z - s.Pos[j].Z)
			for _, d := range []*float64{&dx, &dy, &dz} {
				if *d > half {
					*d -= box
				} else if *d < -half {
					*d += box
				}
			}
			r2 := dx*dx + dy*dy + dz*dz
			if r2 >= cut2 || r2 == 0 {
				continue
			}
			inv2 := 1 / r2
			inv6 := inv2 * inv2 * inv2
			ff := 24 * inv2 * inv6 * (2*inv6 - 1)
			potRef += 4 * inv6 * (inv6 - 1)
			ref[i].X += float32(ff * dx)
			ref[i].Y += float32(ff * dy)
			ref[i].Z += float32(ff * dz)
			ref[j].X -= float32(ff * dx)
			ref[j].Y -= float32(ff * dy)
			ref[j].Z -= float32(ff * dz)
		}
	}
	if math.Abs(potGot-potRef) > 1e-6*math.Abs(potRef)+1e-6 {
		t.Fatalf("potential %v vs brute-force %v", potGot, potRef)
	}
	for i := range ref {
		if math.Abs(float64(got[i].X-ref[i].X)) > 1e-3 ||
			math.Abs(float64(got[i].Y-ref[i].Y)) > 1e-3 ||
			math.Abs(float64(got[i].Z-ref[i].Z)) > 1e-3 {
			t.Fatalf("force %d: %+v vs %+v", i, got[i], ref[i])
		}
	}
}

// TestEnergyConservationExact: NVE with exact transfers conserves total
// energy to a small drift over hundreds of steps.
func TestEnergyConservationExact(t *testing.T) {
	s := NewSystem(Config{Seed: 6})
	drift := RunOffloaded(s, 200, 0.004, 4)
	if drift > 0.02 {
		t.Fatalf("energy drift %.4f with exact transfers", drift)
	}
}

// TestDBA3BytesTolerable: the §VII claim that the application tolerates
// DBA's approximation — 3 dirty bytes keeps the melt stable.
func TestDBA3BytesTolerable(t *testing.T) {
	exact := RunOffloaded(NewSystem(Config{Seed: 7}), 200, 0.004, 4)
	dba3 := RunOffloaded(NewSystem(Config{Seed: 7}), 200, 0.004, 3)
	if dba3 > exact+0.05 {
		t.Fatalf("3-byte DBA drift %.4f vs exact %.4f — not tolerable", dba3, exact)
	}
}

// TestDBA2BytesWorseThan3: an ablation — fewer dirty bytes means more
// approximation error in the dynamics.
func TestDBA2BytesWorseThan3(t *testing.T) {
	dba3 := RunOffloaded(NewSystem(Config{Seed: 8}), 150, 0.004, 3)
	dba2 := RunOffloaded(NewSystem(Config{Seed: 8}), 150, 0.004, 2)
	if dba2 < dba3 {
		t.Fatalf("2-byte drift %.4f < 3-byte drift %.4f", dba2, dba3)
	}
}

func TestMeltingHappens(t *testing.T) {
	// Kinetic and potential energy exchange as the lattice melts: the
	// temperature should drop from its initial value as potential energy
	// rises (classic LJ melt behaviour).
	s := NewSystem(Config{Seed: 9})
	t0 := s.Temperature()
	RunOffloaded(s, 150, 0.004, 4)
	t1 := s.Temperature()
	if math.Abs(t1-t0) < 1e-3 {
		t.Fatalf("temperature unchanged (%v -> %v); dynamics frozen?", t0, t1)
	}
}

func TestComputeForcesPanicsOnBadInput(t *testing.T) {
	s := NewSystem(Config{Seed: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.ComputeForces(make([]Vec3, 3))
}

// TestGeneralityReport: the §VII numbers — baseline comm ~27%, total
// improvement ~21.5%, CXL ~78% of it, volume reduced by DBA.
func TestGeneralityReport(t *testing.T) {
	r := Generality(4_000_000)
	if r.CommFraction < 0.15 || r.CommFraction > 0.45 {
		t.Fatalf("baseline comm fraction %.2f, paper measures 27%%", r.CommFraction)
	}
	if r.Improvement < 0.10 || r.Improvement > 0.40 {
		t.Fatalf("improvement %.3f, paper reports 21.5%%", r.Improvement)
	}
	if r.CXLContribution < r.DBAContribution {
		t.Fatalf("CXL share %.2f must dominate DBA share %.2f (paper: 78/22)", r.CXLContribution, r.DBAContribution)
	}
	if sum := r.CXLContribution + r.DBAContribution; sum < 0.99 || sum > 1.01 {
		t.Fatalf("contributions sum to %.3f", sum)
	}
	if r.VolumeReduction <= 0.05 || r.VolumeReduction >= 0.30 {
		t.Fatalf("volume reduction %.3f, paper reports 17%%", r.VolumeReduction)
	}
	if r.HoursSavedPerMonth <= 0 {
		t.Fatal("long-run saving must be positive")
	}
}

func TestStepTimingAccounting(t *testing.T) {
	b := SimulateStep(1_000_000, Baseline)
	if b.Total() != b.Kernel+b.ForceXfer+b.Integrate+b.PosXfer {
		t.Fatal("total mismatch")
	}
	c := SimulateStep(1_000_000, CXLOnly)
	if c.Total() >= b.Total() {
		t.Fatal("CXL must beat baseline")
	}
	d := SimulateStep(1_000_000, CXLWithDBA)
	if d.LinkBytes >= c.LinkBytes {
		t.Fatal("DBA must reduce link volume")
	}
}

func TestTransferVolumes(t *testing.T) {
	s := NewSystem(Config{CellsPerSide: 3, Seed: 1})
	if s.PosBytes() != int64(s.N)*12 || s.ForceBytes() != int64(s.N)*12 {
		t.Fatal("volumes")
	}
}

// TestGeneralityScalesWithAtoms: step times grow with system size; the
// comm fraction stays roughly constant (all terms linear in N).
func TestGeneralityScalesWithAtoms(t *testing.T) {
	small := Generality(1_000_000)
	big := Generality(8_000_000)
	if big.BaselineStep <= small.BaselineStep {
		t.Fatal("step time must grow with atoms")
	}
	if diff := big.CommFraction - small.CommFraction; diff > 0.01 || diff < -0.01 {
		t.Fatalf("comm fraction should be size-invariant: %.3f vs %.3f",
			small.CommFraction, big.CommFraction)
	}
}

// TestScaledCoordinateRoundTrip: the fixed-binade encoding is invertible
// within FP32 precision for in-box positions.
func TestScaledCoordinateRoundTrip(t *testing.T) {
	s := NewSystem(Config{Seed: 31})
	u := make([]Vec3, s.N)
	back := make([]Vec3, s.N)
	s.toScaled(u, s.Pos)
	for _, v := range u {
		for _, c := range []float32{v.X, v.Y, v.Z} {
			if c < 1 || c >= 2 {
				t.Fatalf("scaled coordinate %v outside [1,2)", c)
			}
		}
	}
	s.fromScaled(back, u)
	for i := range back {
		if math.Abs(float64(back[i].X-s.Pos[i].X)) > 1e-5*float64(s.Box) {
			t.Fatalf("particle %d: %v vs %v", i, back[i].X, s.Pos[i].X)
		}
	}
}
