package md

import (
	"math"
	"testing"
)

func TestParallelMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8} {
		s1 := NewSystem(Config{CellsPerSide: 4, Seed: 21})
		s2 := NewSystem(Config{CellsPerSide: 4, Seed: 21})
		p1 := s1.ComputeForces(s1.Pos)
		p2 := s2.ComputeForcesParallel(s2.Pos, workers)
		if math.Abs(p1-p2) > 1e-6*math.Abs(p1) {
			t.Fatalf("workers=%d: potential %v vs %v", workers, p2, p1)
		}
		for i := range s1.Force {
			d := math.Abs(float64(s1.Force[i].X-s2.Force[i].X)) +
				math.Abs(float64(s1.Force[i].Y-s2.Force[i].Y)) +
				math.Abs(float64(s1.Force[i].Z-s2.Force[i].Z))
			if d > 1e-3 {
				t.Fatalf("workers=%d particle %d: force diff %g", workers, i, d)
			}
		}
	}
}

func TestParallelSingleWorkerFallsBack(t *testing.T) {
	s := NewSystem(Config{Seed: 22})
	p := s.ComputeForcesParallel(s.Pos, 1)
	if p == 0 {
		t.Fatal("potential must be nonzero")
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	s := NewSystem(Config{Seed: 23})
	s.ComputeForcesParallel(s.Pos, 0) // GOMAXPROCS; must not panic or race
}

// TestParallelEnergyConservation: the parallel kernel drives the same
// stable dynamics.
func TestParallelEnergyConservation(t *testing.T) {
	s := NewSystem(Config{Seed: 24})
	s.ComputeForcesParallel(s.Pos, 4)
	e0 := s.TotalEnergy()
	for step := 0; step < 100; step++ {
		s.VerletStep(0.004, func() { s.ComputeForcesParallel(s.Pos, 4) })
	}
	drift := math.Abs(s.TotalEnergy()-e0) / math.Abs(e0)
	if drift > 0.02 {
		t.Fatalf("drift %v with parallel kernel", drift)
	}
}
