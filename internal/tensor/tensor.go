// Package tensor provides FP32 tensors with byte-level views, the
// value-changed-byte classification behind the paper's Figure 2, and the
// FP16 conversion used by mixed-precision training (paper §V, "About
// mixed-precision training").
package tensor

import (
	"encoding/binary"
	"fmt"
	"math"

	"teco/internal/mem"
)

// Tensor is a named, flat FP32 tensor.
type Tensor struct {
	name string
	data []float32
}

// New allocates a zeroed tensor of n elements.
func New(name string, n int) *Tensor {
	if n < 0 {
		panic(fmt.Sprintf("tensor: negative size %d", n))
	}
	return &Tensor{name: name, data: make([]float32, n)}
}

// FromSlice wraps (not copies) an existing slice.
func FromSlice(name string, data []float32) *Tensor {
	return &Tensor{name: name, data: data}
}

// Name returns the tensor's name.
func (t *Tensor) Name() string { return t.name }

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.data) }

// Bytes returns the byte footprint (4 bytes per FP32 element).
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// Lines returns the number of 64-byte cache lines covering the tensor.
func (t *Tensor) Lines() int64 { return mem.LinesIn(t.Bytes()) }

// Data returns the underlying slice (shared, not copied).
func (t *Tensor) Data() []float32 { return t.data }

// At returns element i.
func (t *Tensor) At(i int) float32 { return t.data[i] }

// Set stores v at element i.
func (t *Tensor) Set(i int, v float32) { t.data[i] = v }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	return &Tensor{name: t.name, data: d}
}

// CopyFrom copies src's elements into t; lengths must match.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: copy %d into %d elements", len(src.data), len(t.data)))
	}
	copy(t.data, src.data)
}

// EncodeLine serializes elements [16*line, 16*line+16) into a 64-byte
// little-endian cache-line image, zero-padding past the end of the tensor.
func (t *Tensor) EncodeLine(line int64) []byte {
	return t.EncodeLineInto(line, make([]byte, mem.LineSize))
}

// EncodeLineInto is EncodeLine writing into a caller-owned 64-byte buffer
// (returned for convenience), for per-line loops that must not allocate.
// Bytes past the end of the tensor are zeroed, matching a fresh buffer.
func (t *Tensor) EncodeLineInto(line int64, buf []byte) []byte {
	if len(buf) != mem.LineSize {
		panic(fmt.Sprintf("tensor: line buffer %dB", len(buf)))
	}
	base := int(line) * 16
	for i := 0; i < 16; i++ {
		idx := base + i
		if idx >= len(t.data) {
			for j := i * 4; j < mem.LineSize; j++ {
				buf[j] = 0
			}
			break
		}
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(t.data[idx]))
	}
	return buf
}

// DecodeLine overwrites elements [16*line, ...) from a 64-byte image,
// ignoring bytes past the end of the tensor.
func (t *Tensor) DecodeLine(line int64, buf []byte) {
	if len(buf) != mem.LineSize {
		panic(fmt.Sprintf("tensor: line buffer %dB", len(buf)))
	}
	base := int(line) * 16
	for i := 0; i < 16; i++ {
		idx := base + i
		if idx >= len(t.data) {
			break
		}
		t.data[idx] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
}

// ---------------------------------------------------------------------------
// Value-changed-byte classification (paper Figure 2).

// ChangeClass categorizes how a 4-byte FP32 value changed between two
// consecutive training steps.
type ChangeClass int

const (
	// Unchanged: the value is bit-identical.
	Unchanged ChangeClass = iota
	// LastByte: only the least-significant byte changed (Fig 2 case 1).
	LastByte
	// LastTwoBytes: changes confined to the two least-significant bytes,
	// touching the second byte (Fig 2 case 2).
	LastTwoBytes
	// Other: any change reaching the exponent/sign or high-mantissa bytes
	// (Fig 2 case 3).
	Other
	numChangeClasses
)

func (c ChangeClass) String() string {
	switch c {
	case Unchanged:
		return "unchanged"
	case LastByte:
		return "last-byte"
	case LastTwoBytes:
		return "last-two-bytes"
	case Other:
		return "other"
	default:
		return fmt.Sprintf("ChangeClass(%d)", int(c))
	}
}

// Classify compares old and new FP32 values byte-wise (little-endian
// significance order) and returns the Fig 2 class.
func Classify(old, new float32) ChangeClass {
	x := math.Float32bits(old) ^ math.Float32bits(new)
	switch {
	case x == 0:
		return Unchanged
	case x&0xFFFFFF00 == 0:
		return LastByte
	case x&0xFFFF0000 == 0:
		return LastTwoBytes
	default:
		return Other
	}
}

// Distribution counts values per change class for one step pair.
type Distribution struct {
	Counts [4]int64
}

// Observe accumulates the classification of one (old, new) pair.
func (d *Distribution) Observe(old, new float32) {
	d.Counts[Classify(old, new)]++
}

// ObserveTensors accumulates element-wise classifications of two tensors of
// equal length.
func (d *Distribution) ObserveTensors(old, new *Tensor) {
	if old.Len() != new.Len() {
		panic("tensor: distribution over mismatched tensors")
	}
	for i, ov := range old.data {
		d.Observe(ov, new.data[i])
	}
}

// Total returns the number of observations.
func (d *Distribution) Total() int64 {
	var n int64
	for _, c := range d.Counts {
		n += c
	}
	return n
}

// Changed returns the number of value-changed observations.
func (d *Distribution) Changed() int64 { return d.Total() - d.Counts[Unchanged] }

// FracOfChanged returns the fraction of *changed* values in class c — the
// quantity Fig 2 plots ("among those value-changed parameters...").
func (d *Distribution) FracOfChanged(c ChangeClass) float64 {
	ch := d.Changed()
	if ch == 0 {
		return 0
	}
	return float64(d.Counts[c]) / float64(ch)
}

// FracUnchanged returns the fraction of all values that did not change —
// the paper's "44.5% of parameters do not change values" observation.
func (d *Distribution) FracUnchanged() float64 {
	t := d.Total()
	if t == 0 {
		return 0
	}
	return float64(d.Counts[Unchanged]) / float64(t)
}

// Add merges another distribution into d.
func (d *Distribution) Add(o Distribution) {
	for i := range d.Counts {
		d.Counts[i] += o.Counts[i]
	}
}

// ---------------------------------------------------------------------------
// FP16 (IEEE 754 binary16) conversion for mixed-precision modelling.

// ToFloat16 converts an FP32 value to its binary16 bit pattern with
// round-to-nearest-even, handling subnormals, infinities and NaN.
func ToFloat16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xFF
	man := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf / NaN
		if man != 0 {
			return sign | 0x7E00 // quiet NaN
		}
		return sign | 0x7C00
	case exp == 0 && man == 0:
		return sign // signed zero
	}

	// Unbias, rebias for binary16.
	e := exp - 127 + 15
	if e >= 0x1F {
		return sign | 0x7C00 // overflow to infinity
	}
	if e <= 0 {
		// Subnormal (or underflow to zero).
		if e < -10 {
			return sign
		}
		man |= 0x800000 // implicit leading 1
		shift := uint32(14 - e)
		half := uint32(1) << (shift - 1)
		v := man >> shift
		// Round to nearest even.
		if man&(half*2-1) > half || (man&(half*2-1) == half && v&1 == 1) {
			v++
		}
		return sign | uint16(v)
	}
	// Normal: keep top 10 mantissa bits, round to nearest even.
	v := uint32(e)<<10 | man>>13
	rem := man & 0x1FFF
	if rem > 0x1000 || (rem == 0x1000 && v&1 == 1) {
		v++ // may carry into the exponent; that is correct rounding
	}
	if v >= 0x7C00 {
		return sign | 0x7C00
	}
	return sign | uint16(v)
}

// FromFloat16 converts a binary16 bit pattern to FP32 exactly.
func FromFloat16(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	man := uint32(h & 0x3FF)
	switch {
	case exp == 0x1F: // Inf / NaN
		if man != 0 {
			return math.Float32frombits(sign | 0x7FC00000)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3FF
		return math.Float32frombits(sign | e<<23 | man<<13)
	}
	return math.Float32frombits(sign | (exp-15+127)<<23 | man<<13)
}

// RoundTripFP16 converts through binary16 and back, the precision loss a
// GPU-side FP32->FP16 parameter copy incurs.
func RoundTripFP16(f float32) float32 { return FromFloat16(ToFloat16(f)) }
