package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	ts := New("w", 100)
	if ts.Name() != "w" || ts.Len() != 100 {
		t.Fatal("accessors")
	}
	if ts.Bytes() != 400 {
		t.Fatalf("bytes = %d", ts.Bytes())
	}
	if ts.Lines() != 7 { // ceil(400/64)
		t.Fatalf("lines = %d", ts.Lines())
	}
	ts.Set(3, 1.5)
	if ts.At(3) != 1.5 {
		t.Fatal("set/at")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bad", -1)
}

func TestCloneAndCopyFrom(t *testing.T) {
	a := FromSlice("a", []float32{1, 2, 3})
	b := a.Clone()
	b.Set(0, 9)
	if a.At(0) != 1 {
		t.Fatal("clone must not share storage")
	}
	c := New("c", 3)
	c.CopyFrom(a)
	if c.At(2) != 3 {
		t.Fatal("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched CopyFrom")
		}
	}()
	c.CopyFrom(New("d", 5))
}

func TestEncodeDecodeLine(t *testing.T) {
	ts := New("w", 40) // 2.5 lines
	for i := 0; i < 40; i++ {
		ts.Set(i, float32(i)*0.25)
	}
	for line := int64(0); line < ts.Lines(); line++ {
		buf := ts.EncodeLine(line)
		if len(buf) != 64 {
			t.Fatalf("line buf = %d bytes", len(buf))
		}
		dst := New("w2", 40)
		dst.DecodeLine(line, buf)
		for i := int(line) * 16; i < int(line+1)*16 && i < 40; i++ {
			if dst.At(i) != ts.At(i) {
				t.Fatalf("element %d: %v != %v", i, dst.At(i), ts.At(i))
			}
		}
	}
}

func TestDecodeLineBadBufPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("w", 16).DecodeLine(0, make([]byte, 10))
}

// Property: encode/decode of a full line round-trips element-exactly.
func TestLineRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ts := New("w", 16)
		for i := 0; i < 16; i++ {
			ts.Set(i, rng.Float32()*2000-1000)
		}
		dst := New("w2", 16)
		dst.DecodeLine(0, ts.EncodeLine(0))
		for i := 0; i < 16; i++ {
			if math.Float32bits(dst.At(i)) != math.Float32bits(ts.At(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	mk := func(bits uint32) float32 { return math.Float32frombits(bits) }
	base := uint32(0x3F800000) // 1.0
	cases := []struct {
		old, new float32
		want     ChangeClass
	}{
		{mk(base), mk(base), Unchanged},
		{mk(base), mk(base ^ 0x00000001), LastByte},
		{mk(base), mk(base ^ 0x000000FF), LastByte},
		{mk(base), mk(base ^ 0x00000100), LastTwoBytes},
		{mk(base), mk(base ^ 0x0000FF01), LastTwoBytes},
		{mk(base), mk(base ^ 0x00010000), Other},
		{mk(base), mk(base ^ 0x80000000), Other}, // sign flip
		{1.0, -1.0, Other},
	}
	for _, c := range cases {
		if got := Classify(c.old, c.new); got != c.want {
			t.Errorf("Classify(%x,%x) = %v, want %v",
				math.Float32bits(c.old), math.Float32bits(c.new), got, c.want)
		}
	}
}

func TestChangeClassString(t *testing.T) {
	if LastTwoBytes.String() != "last-two-bytes" || Unchanged.String() != "unchanged" {
		t.Fatal("strings")
	}
	if ChangeClass(9).String() == "" {
		t.Fatal("unknown class renders")
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	old := FromSlice("o", []float32{1, 2, 3, 4})
	nw := old.Clone()
	// leave 0 unchanged; flip LSB of 1; flip byte1 of 2; flip sign of 3.
	nw.Set(1, math.Float32frombits(math.Float32bits(nw.At(1))^1))
	nw.Set(2, math.Float32frombits(math.Float32bits(nw.At(2))^0x100))
	nw.Set(3, -nw.At(3))
	d.ObserveTensors(old, nw)
	if d.Total() != 4 || d.Changed() != 3 {
		t.Fatalf("total=%d changed=%d", d.Total(), d.Changed())
	}
	if d.FracUnchanged() != 0.25 {
		t.Fatalf("unchanged frac = %v", d.FracUnchanged())
	}
	third := 1.0 / 3.0
	for _, c := range []ChangeClass{LastByte, LastTwoBytes, Other} {
		if got := d.FracOfChanged(c); math.Abs(got-third) > 1e-12 {
			t.Fatalf("frac %v = %v", c, got)
		}
	}
	var d2 Distribution
	d2.Add(d)
	d2.Add(d)
	if d2.Total() != 8 {
		t.Fatal("Add failed")
	}
}

func TestDistributionEmptySafe(t *testing.T) {
	var d Distribution
	if d.FracOfChanged(LastByte) != 0 || d.FracUnchanged() != 0 {
		t.Fatal("empty distribution must return 0 fractions")
	}
}

func TestFP16KnownValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-2, 0xC000},
		{0.5, 0x3800},
		{65504, 0x7BFF},                         // max half
		{6.103515625e-05, 0x0400},               // min normal half
		{5.960464477539063e-08, 0x0001},         // min subnormal half
		{float32(math.Inf(1)), 0x7C00},          // +inf
		{float32(math.Inf(-1)), 0xFC00},         // -inf
		{100000, 0x7C00},                        // overflow -> inf
		{float32(math.Copysign(0, -1)), 0x8000}, // -0
	}
	for _, c := range cases {
		if got := ToFloat16(c.f); got != c.bits {
			t.Errorf("ToFloat16(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
	}
	if v := FromFloat16(0x3C00); v != 1 {
		t.Fatalf("FromFloat16(0x3C00) = %v", v)
	}
	if v := FromFloat16(0x0001); v != 5.960464477539063e-08 {
		t.Fatalf("min subnormal = %v", v)
	}
	if !math.IsNaN(float64(FromFloat16(0x7E00))) {
		t.Fatal("NaN must survive")
	}
}

func TestFP16NaN(t *testing.T) {
	if !math.IsNaN(float64(FromFloat16(ToFloat16(float32(math.NaN()))))) {
		t.Fatal("NaN does not round-trip")
	}
}

// Property: every binary16 value round-trips exactly through FP32:
// ToFloat16(FromFloat16(h)) == h (modulo NaN payloads).
func TestFP16ExhaustiveRoundTrip(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		bits := uint16(h)
		f := FromFloat16(bits)
		if math.IsNaN(float64(f)) {
			continue // NaN payloads may canonicalize
		}
		back := ToFloat16(f)
		if back != bits {
			t.Fatalf("half %#04x -> %v -> %#04x", bits, f, back)
		}
	}
}

// Property: FP32->FP16 rounding error is within half a ULP of the binary16
// result for values in the normal half range.
func TestFP16RoundingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := float32(rng.NormFloat64())
		r := RoundTripFP16(v)
		if v == 0 {
			return r == 0
		}
		rel := math.Abs(float64(r-v)) / math.Abs(float64(v))
		return rel <= 1.0/1024.0 // 2^-10 mantissa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMantissaDriftClassification demonstrates the Fig 2 mechanism: a small
// relative update to an FP32 parameter usually only disturbs the low
// mantissa bytes.
func TestMantissaDriftClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var d Distribution
	for i := 0; i < 10000; i++ {
		w := float32(rng.NormFloat64())
		// A fine-tuning-sized update: ~1e-6 relative.
		upd := w * (1 + 1e-7*float32(rng.NormFloat64()))
		d.Observe(w, upd)
	}
	lowTwo := d.FracOfChanged(LastByte) + d.FracOfChanged(LastTwoBytes)
	if lowTwo < 0.95 {
		t.Fatalf("tiny updates should stay in low mantissa bytes; got %.2f", lowTwo)
	}
}
