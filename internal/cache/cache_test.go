package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"teco/internal/mem"
)

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if s.String() != want {
			t.Errorf("%v", s)
		}
	}
	if !Modified.Valid() || Invalid.Valid() {
		t.Fatal("Valid() wrong")
	}
}

func TestGem5Geometries(t *testing.T) {
	// Table II: L1 8KB/64B/8-way, L2 64KB/64B/16-way, L3 16MB/64-way.
	for _, cfg := range []Config{Gem5L1(), Gem5L2(), Gem5L3()} {
		c := New(cfg)
		if c.Lines()*mem.LineSize != cfg.SizeBytes {
			t.Errorf("%s capacity mismatch", cfg.Name)
		}
	}
	if New(Gem5L1()).Lines() != 128 {
		t.Fatal("L1 should hold 128 lines")
	}
}

func TestInsertAndLookup(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1024, Ways: 4}) // 16 lines, 4 sets
	if c.Contains(5) {
		t.Fatal("empty cache should not contain")
	}
	if ev, evicted := c.Insert(5, Exclusive); evicted {
		t.Fatalf("unexpected eviction %+v", ev)
	}
	if c.Lookup(5) != Exclusive {
		t.Fatalf("state = %v", c.Lookup(5))
	}
	// Upgrade in place.
	c.Insert(5, Modified)
	if c.Lookup(5) != Modified {
		t.Fatal("in-place state update failed")
	}
	if c.ValidLines() != 1 {
		t.Fatalf("valid = %d", c.ValidLines())
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{SizeBytes: 1024, Ways: 4}).Insert(1, Invalid)
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways: addresses that map to set 0 in a 2-line cache.
	c := New(Config{Name: "tiny", SizeBytes: 128, Ways: 2})
	c.Insert(0, Modified)
	c.Insert(1, Exclusive)
	c.Touch(0) // 0 most recently used; 1 is LRU
	ev, evicted := c.Insert(2, Exclusive)
	if !evicted || ev.Addr != 1 || ev.Dirty {
		t.Fatalf("eviction = %+v %v, want clean victim line 1", ev, evicted)
	}
	// Now 0 is LRU and dirty.
	ev, evicted = c.Insert(3, Exclusive)
	if !evicted || ev.Addr != 0 || !ev.Dirty {
		t.Fatalf("eviction = %+v %v, want dirty victim line 0", ev, evicted)
	}
	_, _, evs, wbs := c.Stats()
	if evs != 2 || wbs != 1 {
		t.Fatalf("evictions=%d writebacks=%d", evs, wbs)
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 4})
	c.Insert(7, Modified)
	if !c.SetState(7, Shared) {
		t.Fatal("SetState on present line failed")
	}
	if c.Lookup(7) != Shared {
		t.Fatal("state not updated")
	}
	if !c.SetState(7, Invalid) {
		t.Fatal("invalidate failed")
	}
	if c.Contains(7) {
		t.Fatal("line still present after invalidate")
	}
	if c.SetState(7, Modified) {
		t.Fatal("SetState on absent line should return false")
	}
	// Silent invalidation is not an eviction.
	_, _, evs, _ := c.Stats()
	if evs != 0 {
		t.Fatalf("evictions = %d, want 0", evs)
	}
}

func TestAccessHitMissCounting(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 4})
	hit, _, _ := c.Access(1, false)
	if hit {
		t.Fatal("first access should miss")
	}
	hit, _, _ = c.Access(1, true)
	if !hit {
		t.Fatal("second access should hit")
	}
	if c.Lookup(1) != Modified {
		t.Fatal("write hit should dirty the line")
	}
	h, m, _, _ := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d", h, m)
	}
	c.ResetStats()
	h, m, _, _ = c.Stats()
	if h != 0 || m != 0 {
		t.Fatal("reset failed")
	}
}

func TestFlushAll(t *testing.T) {
	c := New(Config{SizeBytes: 1024, Ways: 4})
	c.Insert(1, Modified)
	c.Insert(2, Exclusive)
	c.Insert(3, Modified)
	c.Insert(4, Shared)
	evs := c.FlushAll()
	if len(evs) != 4 {
		t.Fatalf("flush returned %d lines, want all 4", len(evs))
	}
	dirty := 0
	for _, e := range evs {
		if e.Dirty {
			dirty++
		}
	}
	if dirty != 2 {
		t.Fatalf("flush marked %d dirty, want 2", dirty)
	}
	if c.ValidLines() != 0 {
		t.Fatal("cache not empty after flush")
	}
}

func TestFullyAssociative(t *testing.T) {
	c := New(Config{SizeBytes: 256, Ways: 0}) // 4 lines, fully associative
	for i := mem.LineAddr(0); i < 4; i++ {
		if _, evicted := c.Insert(i*1000, Exclusive); evicted {
			t.Fatal("no eviction expected while filling")
		}
	}
	_, evicted := c.Insert(9999, Exclusive)
	if !evicted {
		t.Fatal("full cache must evict")
	}
}

// Property: the cache never holds more valid lines than its capacity, and
// a line reported present by Contains is always found with a valid state.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{SizeBytes: 2048, Ways: 4}) // 32 lines
		for _, op := range ops {
			a := mem.LineAddr(op % 257)
			c.Access(a, op%3 == 0)
			if c.ValidLines() > int(c.Lines()) {
				return false
			}
			if c.Contains(a) != c.Lookup(a).Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: inclusion of dirty data — a Modified line either stays in the
// cache or leaves via a dirty eviction / flush; it is never silently lost.
func TestNoSilentDirtyLossProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := New(Config{SizeBytes: 512, Ways: 2}) // 8 lines
	dirty := map[mem.LineAddr]bool{}
	for i := 0; i < 5000; i++ {
		a := mem.LineAddr(rng.Intn(64))
		write := rng.Intn(2) == 0
		_, ev, evicted := c.Access(a, write)
		if write {
			dirty[a] = true
		}
		if evicted {
			if dirty[ev.Addr] && !ev.Dirty {
				t.Fatalf("dirty line %d silently dropped", ev.Addr)
			}
			delete(dirty, ev.Addr)
		}
	}
	// Everything still marked dirty must be in the cache in Modified state.
	for a := range dirty {
		if c.Lookup(a) != Modified {
			t.Fatalf("line %d should be resident Modified", a)
		}
	}
	// And the final flush must surface each of them exactly once.
	evs := c.FlushAll()
	seen := map[mem.LineAddr]bool{}
	for _, e := range evs {
		if seen[e.Addr] {
			t.Fatalf("line %d flushed twice", e.Addr)
		}
		seen[e.Addr] = true
		if e.Dirty != dirty[e.Addr] {
			t.Fatalf("line %d dirty=%v, tracker says %v", e.Addr, e.Dirty, dirty[e.Addr])
		}
		delete(dirty, e.Addr)
	}
	if len(dirty) != 0 {
		t.Fatalf("%d dirty lines missing from flush", len(dirty))
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, bad := range []Config{
		{SizeBytes: 0, Ways: 4},
		{SizeBytes: 100, Ways: 3}, // 1 line (64B) not divisible... actually 100/64=1 line, 1%3 != 0
	} {
		func() {
			defer func() { recover() }()
			New(bad)
			t.Errorf("config %+v should panic", bad)
		}()
	}
}
