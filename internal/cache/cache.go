// Package cache implements a set-associative, write-back cache with per-line
// MESI coherence state and LRU replacement. Instances model both the CPU
// cache hierarchy of the gem5-avx configuration (Table II of the paper) and
// the accelerator-side giant cache, which the paper treats as a peer cache of
// the CPU cache inside the CXL coherent domain (§IV-A2).
package cache

import (
	"fmt"

	"teco/internal/mem"
)

// State is a MESI coherence state.
type State uint8

const (
	// Invalid: the line is not present (or has been invalidated).
	Invalid State = iota
	// Shared: a clean copy that other caches may also hold.
	Shared
	// Exclusive: the only copy, clean.
	Exclusive
	// Modified: the only copy, dirty.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether the state holds data.
func (s State) Valid() bool { return s != Invalid }

// Line is one cache line's tag-array entry.
type Line struct {
	Addr  mem.LineAddr
	State State
	// lru is a per-set use stamp; larger = more recently used.
	lru uint64
}

// Eviction describes a line pushed out of the cache.
type Eviction struct {
	Addr mem.LineAddr
	// Dirty reports whether the victim was in Modified state (i.e. the
	// eviction is a writeback, not a silent drop).
	Dirty bool
}

// Config describes cache geometry.
type Config struct {
	Name string
	// SizeBytes is total capacity; must be a multiple of Ways*LineSize.
	SizeBytes int64
	// Ways is the associativity. Ways <= 0 means fully associative.
	Ways int
}

// Gem5L1 returns the paper's gem5-avx L1 data cache geometry (Table II).
func Gem5L1() Config { return Config{Name: "L1", SizeBytes: 8 << 10, Ways: 8} }

// Gem5L2 returns the paper's gem5-avx L2 geometry (Table II).
func Gem5L2() Config { return Config{Name: "L2", SizeBytes: 64 << 10, Ways: 16} }

// Gem5L3 returns the paper's gem5-avx shared L3 geometry (Table II).
func Gem5L3() Config { return Config{Name: "L3", SizeBytes: 16 << 20, Ways: 64} }

// Cache is a set-associative tag array. It tracks only coherence metadata;
// data payloads live in the tensor/backing-store layers, which keeps the
// model fast enough to sweep billions of parameters.
type Cache struct {
	cfg   Config
	sets  [][]Line
	nsets uint64
	tick  uint64
	// index for O(1) lookup: line address -> set slot.
	where map[mem.LineAddr]int

	// Statistics.
	hits, misses, evictions, writebacks int64
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	lines := cfg.SizeBytes / mem.LineSize
	if lines <= 0 {
		panic(fmt.Sprintf("cache %q: size %d too small", cfg.Name, cfg.SizeBytes))
	}
	ways := int64(cfg.Ways)
	if ways <= 0 {
		ways = lines // fully associative
	}
	if lines%ways != 0 {
		panic(fmt.Sprintf("cache %q: %d lines not divisible by %d ways", cfg.Name, lines, ways))
	}
	nsets := lines / ways
	c := &Cache{
		cfg:   cfg,
		sets:  make([][]Line, nsets),
		nsets: uint64(nsets),
		where: make(map[mem.LineAddr]int, lines),
	}
	for i := range c.sets {
		c.sets[i] = make([]Line, ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Lines returns total line capacity.
func (c *Cache) Lines() int64 { return c.cfg.SizeBytes / mem.LineSize }

func (c *Cache) setOf(a mem.LineAddr) []Line {
	return c.sets[uint64(a)%c.nsets]
}

// Lookup returns the current state of the line (Invalid if absent) without
// updating LRU or statistics.
func (c *Cache) Lookup(a mem.LineAddr) State {
	if _, ok := c.where[a]; !ok {
		return Invalid
	}
	set := c.setOf(a)
	for i := range set {
		if set[i].State.Valid() && set[i].Addr == a {
			return set[i].State
		}
	}
	return Invalid
}

// Contains reports whether the line is present in a valid state.
func (c *Cache) Contains(a mem.LineAddr) bool { return c.Lookup(a).Valid() }

// Touch marks the line as most recently used. No-op when absent.
func (c *Cache) Touch(a mem.LineAddr) {
	set := c.setOf(a)
	for i := range set {
		if set[i].State.Valid() && set[i].Addr == a {
			c.tick++
			set[i].lru = c.tick
			return
		}
	}
}

// Insert places the line in state s, evicting an LRU victim if the set is
// full. It returns the eviction (if any). Inserting a line that is already
// present updates its state in place and returns no eviction.
func (c *Cache) Insert(a mem.LineAddr, s State) (Eviction, bool) {
	if !s.Valid() {
		panic("cache: inserting line in Invalid state")
	}
	set := c.setOf(a)
	c.tick++
	// Already present: update state + LRU.
	for i := range set {
		if set[i].State.Valid() && set[i].Addr == a {
			set[i].State = s
			set[i].lru = c.tick
			return Eviction{}, false
		}
	}
	// Free slot?
	for i := range set {
		if !set[i].State.Valid() {
			set[i] = Line{Addr: a, State: s, lru: c.tick}
			c.where[a] = i
			return Eviction{}, false
		}
	}
	// Evict LRU.
	victim := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	ev := Eviction{Addr: set[victim].Addr, Dirty: set[victim].State == Modified}
	delete(c.where, set[victim].Addr)
	c.evictions++
	if ev.Dirty {
		c.writebacks++
	}
	set[victim] = Line{Addr: a, State: s, lru: c.tick}
	c.where[a] = victim
	return ev, true
}

// SetState transitions an existing line to state s. Setting Invalid removes
// the line (a silent drop — not counted as an eviction). Returns false when
// the line is absent.
func (c *Cache) SetState(a mem.LineAddr, s State) bool {
	set := c.setOf(a)
	for i := range set {
		if set[i].State.Valid() && set[i].Addr == a {
			if s == Invalid {
				set[i].State = Invalid
				delete(c.where, a)
			} else {
				set[i].State = s
			}
			return true
		}
	}
	return false
}

// Access performs a load (write=false) or store (write=true) against the
// cache *without* coherence: hits update LRU; misses insert the line
// (Exclusive for loads, Modified for stores) and may evict. The coherence
// layer wraps this for protocol-accurate traffic; this raw form serves the
// standalone hierarchy model and tests.
func (c *Cache) Access(a mem.LineAddr, write bool) (hit bool, ev Eviction, evicted bool) {
	st := c.Lookup(a)
	if st.Valid() {
		c.hits++
		c.Touch(a)
		if write {
			c.SetState(a, Modified)
		}
		return true, Eviction{}, false
	}
	c.misses++
	ns := Exclusive
	if write {
		ns = Modified
	}
	ev, evicted = c.Insert(a, ns)
	return false, ev, evicted
}

// FlushAll removes every valid line, returning all of them in deterministic
// (set, way) order with Dirty marking the writebacks. This models the
// once-per-iteration CPU cache flush that guarantees all updated parameters
// have been sent out (paper §IV-A2).
func (c *Cache) FlushAll() []Eviction {
	var out []Eviction
	for si := range c.sets {
		set := c.sets[si]
		for i := range set {
			if set[i].State.Valid() {
				dirty := set[i].State == Modified
				out = append(out, Eviction{Addr: set[i].Addr, Dirty: dirty})
				if dirty {
					c.writebacks++
				}
				c.evictions++
				delete(c.where, set[i].Addr)
				set[i].State = Invalid
			}
		}
	}
	return out
}

// ValidLines returns the number of currently valid lines.
func (c *Cache) ValidLines() int { return len(c.where) }

// Stats returns (hits, misses, evictions, writebacks).
func (c *Cache) Stats() (hits, misses, evictions, writebacks int64) {
	return c.hits, c.misses, c.evictions, c.writebacks
}

// ResetStats zeroes counters, keeping contents.
func (c *Cache) ResetStats() { c.hits, c.misses, c.evictions, c.writebacks = 0, 0, 0, 0 }
