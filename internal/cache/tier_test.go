package cache

import (
	"testing"

	"teco/internal/mem"
)

// The tiering plane (core.RunTiered) demotes a slot by streaming its bytes
// fast→far on the writeback link — which is the MESI story told at slot
// granularity: a slot leaving the coherent fast tier flushes every line a
// peer cache holds of it, dirty lines as writebacks, clean ones as silent
// drops. These tests pin that correspondence so the coherence model and
// the tiering cost model cannot drift apart.

// TestTierGeometriesLineExact: every modeled cache tier (the gem5 CPU
// hierarchy and the giant-cache peer) is an exact multiple of the line
// size the migration streams move — mem.LinesIn of a tier's capacity is
// its line count, with no partial-line remainder for a migration to lose.
func TestTierGeometriesLineExact(t *testing.T) {
	for _, cfg := range []Config{Gem5L1(), Gem5L2(), Gem5L3()} {
		c := New(cfg)
		if got, want := c.Lines(), int64(mem.LinesIn(cfg.SizeBytes)); got != want {
			t.Errorf("%s: %d lines, but LinesIn(%d) = %d", cfg.Name, got, cfg.SizeBytes, want)
		}
		if cfg.SizeBytes%mem.LineSize != 0 {
			t.Errorf("%s: capacity %d not line-exact", cfg.Name, cfg.SizeBytes)
		}
	}
}

// TestSlotDemotionFlushSemantics: flushing a cache that holds a slot's
// lines writes back exactly the dirty lines and drops the clean ones —
// the per-line ground truth behind the tiering plane's demotion
// accounting (a demoted slot's bytes leave on the writeback stream once,
// never twice, and never silently).
func TestSlotDemotionFlushSemantics(t *testing.T) {
	c := New(Config{Name: "peer", SizeBytes: 1 << 10, Ways: 4})
	// A 4-line "slot": two lines written (Modified), two only read.
	for a := mem.LineAddr(0); a < 4; a++ {
		c.Access(a, a%2 == 0)
	}
	evs := c.FlushAll()
	if len(evs) != 4 {
		t.Fatalf("flush returned %d lines, want 4", len(evs))
	}
	var dirty int
	for _, ev := range evs {
		if ev.Dirty {
			dirty++
		}
	}
	if dirty != 2 {
		t.Fatalf("%d dirty lines flushed, want the 2 written ones", dirty)
	}
	if c.ValidLines() != 0 {
		t.Fatalf("%d lines survived the flush", c.ValidLines())
	}
	_, _, _, wbs := c.Stats()
	if wbs != 2 {
		t.Fatalf("writeback counter %d, want 2", wbs)
	}
	// A second flush moves nothing: demotion streams a slot's bytes once.
	if again := c.FlushAll(); len(again) != 0 {
		t.Fatalf("double flush re-evicted %d lines", len(again))
	}
}
