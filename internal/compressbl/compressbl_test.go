package compressbl

import (
	"testing"

	"teco/internal/modelzoo"
)

func TestSnapshotRatios(t *testing.T) {
	// Table VIII compressibility shape: T5 notably compressible, the
	// dense transformers nearly incompressible.
	cases := []struct {
		m        modelzoo.Model
		min, max float64
	}{
		{modelzoo.GPT2(), 0.0, 0.25},
		{modelzoo.AlbertXXLarge(), 0.0, 0.10},
		{modelzoo.BertLargeCased(), 0.0, 0.10},
		{modelzoo.T5Large(), 0.25, 0.50},
	}
	for _, c := range cases {
		row := LosslessCompression(c.m, 4, 1)
		if row.Ratio < c.min || row.Ratio > c.max {
			t.Errorf("%s ratio = %.3f, want [%.2f, %.2f]", c.m.Name, row.Ratio, c.min, c.max)
		}
	}
}

// TestLosslessAlwaysSlower: Table VIII's conclusion — "compression and
// decompression incur large performance overhead (at least 2x)" versus
// TECO-Reduction.
func TestLosslessAlwaysSlower(t *testing.T) {
	for _, m := range []modelzoo.Model{modelzoo.GPT2(), modelzoo.AlbertXXLarge(), modelzoo.BertLargeCased(), modelzoo.T5Large()} {
		row := LosslessCompression(m, 4, 2)
		if row.Normalized < 1.2 {
			t.Errorf("%s: lossless pipeline %.2fx, must be clearly slower than TECO", m.Name, row.Normalized)
		}
		if row.Normalized > 8 {
			t.Errorf("%s: %.2fx implausibly slow", m.Name, row.Normalized)
		}
	}
}

// TestAlbertLeastPenalized: in Table VIII Albert shows the smallest
// normalized time (1.95) because its compute-dominated step amortizes the
// compression overhead.
func TestAlbertLeastPenalized(t *testing.T) {
	a := LosslessCompression(modelzoo.AlbertXXLarge(), 4, 3)
	for _, m := range []modelzoo.Model{modelzoo.GPT2(), modelzoo.BertLargeCased(), modelzoo.T5Large()} {
		o := LosslessCompression(m, 4, 3)
		if a.Normalized >= o.Normalized {
			t.Errorf("Albert normalized %.2f should be below %s's %.2f", a.Normalized, m.Name, o.Normalized)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	a := ParamSnapshot(modelzoo.GPT2(), 9)
	b := ParamSnapshot(modelzoo.GPT2(), 9)
	if len(a) != SnapshotBytes || len(b) != len(a) {
		t.Fatal("snapshot size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("snapshot not deterministic")
		}
	}
}

func TestGLUEMNLISteps(t *testing.T) {
	if GLUEMNLISteps(32) != 3*392702/32 {
		t.Fatal("steps formula")
	}
}

// TestZeroQuantTableVII: ZeroQuant takes substantially longer than TECO on
// Bert-base/GLUE-MNLI (paper: 5.8h vs 2.03h), and the TECO end-to-end time
// lands in the paper's ballpark.
func TestZeroQuantTableVII(t *testing.T) {
	row := ZeroQuant(modelzoo.BertBaseUncased(), 32, GLUEMNLISteps(32))
	if row.Slowdown < 1.5 || row.Slowdown > 4.5 {
		t.Fatalf("ZeroQuant slowdown = %.2fx, paper reports 2.87x", row.Slowdown)
	}
	if row.TECOHours < 1.0 || row.TECOHours > 4.0 {
		t.Fatalf("TECO hours = %.2f, paper reports 2.03", row.TECOHours)
	}
	if row.ZeroQuantHours <= row.TECOHours {
		t.Fatal("ZeroQuant must be slower")
	}
}
