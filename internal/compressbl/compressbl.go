// Package compressbl implements the paper's §VIII-F compression baselines:
// the lossless LZ4 transfer pipeline of Table VIII (compress parameters on
// CPU, move fewer bytes, decompress on GPU) and the ZeroQuant-style lossy
// baseline of Table VII (quantized training guided by a full-precision
// teacher model).
package compressbl

import (
	"encoding/binary"
	"math"
	"math/rand"

	"teco/internal/core"
	"teco/internal/lz4"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/sim"
	"teco/internal/zero"
)

// Throughput constants for the compression pipelines.
const (
	// CPULZ4BytesPerSecond is multi-threaded LZ4 compression throughput
	// on the host (the paper uses lz4mt).
	CPULZ4BytesPerSecond = 4e9
	// GPULZ4BytesPerSecond is nvCOMP LZ4 decompression throughput.
	GPULZ4BytesPerSecond = 20e9
)

// SnapshotBytes is the synthetic parameter snapshot size used to measure
// compression ratios (large enough for stable ratios, small enough for
// fast tests and benches).
const SnapshotBytes = 1 << 20

// zeroFraction reproduces each model's measured compressibility: most
// trained FP32 tensors are mantissa-noise (incompressible); T5-large
// carries a substantial exactly-zero/repeated share (paper Table VIII
// measures 36% for T5, 5% for GPT-2, 0% for Albert and Bert-large).
func zeroFraction(name string) float64 {
	switch name {
	case "GPT2":
		return 0.06
	case "T5-large":
		return 0.38
	default:
		return 0.0
	}
}

// ParamSnapshot synthesizes a FP32 parameter buffer with the byte-level
// statistics of the named model's trained weights. Zero weights appear in
// contiguous blocks (pruned rows / padded embeddings), which is what makes
// them reachable for a byte-oriented compressor.
func ParamSnapshot(m modelzoo.Model, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	zf := zeroFraction(m.Name)
	out := make([]byte, 0, SnapshotBytes)
	var buf [4]byte
	// Emit zero runs with the right total mass: a run of ~64 words with
	// probability p per word gives mass p*64/(p*64+1-p).
	pRun := 0.0
	if zf > 0 {
		pRun = zf / ((1 - zf) * 64)
	}
	for len(out) < SnapshotBytes {
		if zf > 0 && rng.Float64() < pRun {
			run := 32 + rng.Intn(64)
			for j := 0; j < run && len(out) < SnapshotBytes; j++ {
				out = append(out, 0, 0, 0, 0)
			}
			continue
		}
		v := float32(rng.NormFloat64() * 0.02)
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		out = append(out, buf[:]...)
	}
	return out[:SnapshotBytes]
}

// LosslessRow is one Table VIII row.
type LosslessRow struct {
	Model string
	// Ratio is the measured LZ4 space saving on the model's parameter
	// snapshot (paper: 5%, 0%, 0%, 36%).
	Ratio float64
	// StepTime is the per-step time with the LZ4 transfer pipeline.
	StepTime sim.Time
	// TECOStepTime is TECO-Reduction's per-step time.
	TECOStepTime sim.Time
	// Normalized is StepTime / TECOStepTime (paper: 4.51, 1.95, 3.03,
	// 2.04 — "at least 2x").
	Normalized float64
}

// LosslessCompression evaluates the Table VIII pipeline for one model: the
// ZeRO-Offload schedule, but the parameter phase becomes compress ->
// transfer (fewer bytes) -> decompress, all serialized on the critical
// path (neither side can overlap its half with the optimizer, which is the
// measured behaviour the paper reports).
func LosslessCompression(m modelzoo.Model, batch int, seed int64) LosslessRow {
	snap := ParamSnapshot(m, seed)
	lz4.MustRoundTrip(snap)
	ratio := lz4.Ratio(snap)

	base := zero.NewEngine().Step(m, batch)
	// Replace the baseline parameter exposure with the compression
	// pipeline.
	compress := sim.DurationForBytes(m.ParamBytes(), CPULZ4BytesPerSecond)
	moved := int64(float64(m.ParamBytes()) * (1 - ratio))
	transfer := sim.DurationForBytes(moved, modelzoo.BaselineLinkBandwidth())
	decompress := sim.DurationForBytes(m.ParamBytes(), GPULZ4BytesPerSecond)
	b := base.Breakdown
	b.Prm = compress + transfer + decompress

	teco := core.MustEngine(core.Config{DBA: true}).Step(m, batch)
	row := LosslessRow{
		Model:        m.Name,
		Ratio:        ratio,
		StepTime:     b.Total(),
		TECOStepTime: teco.Total(),
	}
	row.Normalized = float64(row.StepTime) / float64(row.TECOStepTime)
	return row
}

// ---------------------------------------------------------------------------
// Table VII: ZeroQuant-style lossy compression.

// ZeroQuantRow is the Table VII comparison.
type ZeroQuantRow struct {
	Task  string
	Model string
	Steps int
	// ZeroQuantHours / TECOHours are end-to-end training times.
	ZeroQuantHours float64
	TECOHours      float64
	// Slowdown is ZeroQuant/TECO (paper: 5.8h vs 2.03h = 2.86x).
	Slowdown float64
}

// GLUEMNLISteps approximates 3 epochs over GLUE-MNLI (393k examples) at
// the given batch size.
func GLUEMNLISteps(batch int) int {
	return 3 * 392702 / batch
}

// ZeroQuant evaluates Table VII: quantized training needs a full-precision
// teacher forward pass plus distillation computation every step ("it
// requires a teacher model during the quantized model training to ensure
// training accuracy"), on top of the baseline offloaded schedule.
func ZeroQuant(m modelzoo.Model, batch, steps int) ZeroQuantRow {
	base := zero.NewEngine().Step(m, batch)
	teco := core.MustEngine(core.Config{DBA: true}).Step(m, batch)

	// Teacher forward runs in full precision (no tensor cores): ~2x the
	// student's forward cost; knowledge-distillation loss adds a partial
	// extra backward over the logits (~0.3 of fwd+bwd).
	gpu := zero.NewEngine().GPU
	teacherFwd := 2 * gpu.ForwardTime(m, batch)
	kd := sim.Time(float64(gpu.StepComputeTime(m, batch)) * 0.3)
	zqStep := base.Total() + teacherFwd + kd

	row := ZeroQuantRow{
		Task:           m.Dataset,
		Model:          m.Name,
		Steps:          steps,
		ZeroQuantHours: sim.Time(int64(zqStep)*int64(steps)).Seconds() / 3600,
		TECOHours:      sim.Time(int64(teco.Total())*int64(steps)).Seconds() / 3600,
	}
	row.Slowdown = row.ZeroQuantHours / row.TECOHours
	return row
}

// TECOStep exposes the TECO-Reduction step result used in the rows above
// (for harness cross-checks).
func TECOStep(m modelzoo.Model, batch int) phases.StepResult {
	return core.MustEngine(core.Config{DBA: true}).Step(m, batch)
}
