// Package kernels is the shared blocked, cache-aware matrix kernel core of
// the realtrain numeric hot paths: the forward/backward dense products of
// the MLP, attention and LayerStack proxies all route through these four
// primitives instead of hand-rolled per-row loops.
//
// # Accumulation-order contract
//
// Every kernel fixes the FP32 accumulation order of each output element and
// documents it here; this is what makes the blocked forms bit-identical to
// the naive loops they replaced (asserted exhaustively by kernels_test.go
// across shapes and block-boundary remainders, and end-to-end by the
// conformance goldens, which were NOT regenerated for the kernel change):
//
//   - AddMatVec: acc[j] receives its terms x[i]·w[i,j] in ascending i, one
//     addition per term. Blocking streams MR weight rows per pass over the
//     accumulator, but the per-accumulator addition order is still exactly
//     ascending i — row-blocking reorders the traversal across (i, j)
//     pairs, never the sequence of additions into a single acc[j].
//   - DotRowsInto/AddDotRows: dst[i] is a single left-to-right chain over
//     ascending j (one running accumulator, never split into partial sums —
//     a multi-accumulator unroll would change the reduction tree and the
//     bits).
//   - BackProjSet/BackProjAdd: gw[i,j] receives exactly one addition per
//     call; the dx[i] reduction is a single chain over ascending j.
//
// Products are written operand-order-free (IEEE-754 multiplication is
// commutative down to the bit, so x[i]·w[i,j] and w[i,j]·x[i] are the same
// value); additions are never reassociated. No kernel uses math.FMA, and
// none is written as a single fused multiply-add expression, so Go's FMA
// fusing latitude (spec: "an implementation may combine multiple
// floating-point operations into a single fused operation ... within a
// single expression") never applies: every product is rounded to float32
// before it is added, on every architecture.
//
// All kernels are allocation-free and safe for concurrent use on disjoint
// output slices.
package kernels

// MR is the register-tile height of the row-blocked kernels: MR weight rows
// stream through one pass over the accumulator row, so each acc[j]
// load/store pair is amortized over MR multiply-adds and the w walk stays
// sequential (hardware-prefetcher friendly) instead of cols-strided.
const MR = 4

// AddMatVec accumulates the vector-matrix product acc[j] += Σ_i x[i]·w[i*cols+j]
// over the row-major rows×cols matrix w, with the additions into each
// acc[j] applied in ascending i order. x must have at least rows elements
// and acc at least cols. This is the kernel form of the "column-major
// naive" projection loop (for j { for i { s += x[i]*w[i*cols+j] } }) with
// the i/j loops interchanged and row-blocked: same additions, same order
// per accumulator, contiguous weight traffic.
func AddMatVec(acc, x, w []float32, rows, cols int) {
	acc = acc[:cols]
	i := 0
	for ; i+MR <= rows; i += MR {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		r0 := w[(i+0)*cols : (i+1)*cols]
		r1 := w[(i+1)*cols : (i+2)*cols]
		r2 := w[(i+2)*cols : (i+3)*cols]
		r3 := w[(i+3)*cols : (i+4)*cols]
		for j, w0 := range r0 {
			s := acc[j]
			s += x0 * w0
			s += x1 * r1[j]
			s += x2 * r2[j]
			s += x3 * r3[j]
			acc[j] = s
		}
	}
	for ; i < rows; i++ {
		xi := x[i]
		row := w[i*cols : (i+1)*cols]
		for j, wv := range row {
			acc[j] += xi * wv
		}
	}
}

// MatVecInto assigns dst = bias + x·W: dst is first overwritten with bias
// (dst and bias must both have cols elements), then AddMatVec accumulates
// the product in its fixed order. dst must not alias bias, x or w.
func MatVecInto(dst, bias, x, w []float32, rows, cols int) {
	copy(dst[:cols], bias[:cols])
	AddMatVec(dst, x, w, rows, cols)
}

// DotRowsInto assigns dst[i] = Σ_j y[j]·w[i*cols+j] for i in [0, rows):
// each output is the dot product of y with matrix row i, reduced strictly
// left to right over ascending j in one running accumulator. The j loop is
// unrolled four wide but keeps that single chain (sequential additions into
// one accumulator, never four partial sums), so the bits match the naive
// two-line loop exactly.
func DotRowsInto(dst, y, w []float32, rows, cols int) {
	for i := 0; i < rows; i++ {
		row := w[i*cols : (i+1)*cols]
		var s float32
		j := 0
		for ; j+4 <= cols; j += 4 {
			s += y[j] * row[j]
			s += y[j+1] * row[j+1]
			s += y[j+2] * row[j+2]
			s += y[j+3] * row[j+3]
		}
		for ; j < cols; j++ {
			s += y[j] * row[j]
		}
		dst[i] = s
	}
}

// backProj is the shared body of BackProjSet/BackProjAdd: one fused
// backward pass over the row-major rows×cols weight matrix w for the
// projection p = x·W. Per row i it applies the rank-1 gradient update
// gw[i*cols+j] += x[i]·dy[j] and reduces the input gradient
// s = Σ_j dy[j]·w[i*cols+j] in a single ascending-j chain; set selects
// dx[i] = s versus dx[i] += s.
func backProj(gw, dx, x, dy, w []float32, rows, cols int, set bool) {
	dy = dy[:cols]
	for i := 0; i < rows; i++ {
		xi := x[i]
		wrow := w[i*cols : (i+1)*cols]
		gwrow := gw[i*cols : (i+1)*cols]
		var s float32
		for j, dyj := range dy {
			gwrow[j] += xi * dyj
			s += dyj * wrow[j]
		}
		if set {
			dx[i] = s
		} else {
			dx[i] += s
		}
	}
}

// BackProjSet runs the fused backward of p = x·W, assigning the input
// gradient: gw[i,j] += x[i]·dy[j] and dx[i] = Σ_j dy[j]·w[i,j] (ascending
// j, single chain). gw and w are row-major rows×cols; x and dx have rows
// elements, dy has cols.
func BackProjSet(gw, dx, x, dy, w []float32, rows, cols int) {
	backProj(gw, dx, x, dy, w, rows, cols, true)
}

// BackProjAdd is BackProjSet with dx accumulated (dx[i] += ...) instead of
// assigned — the residual-stream form the attention and LayerStack
// backward passes use.
func BackProjAdd(gw, dx, x, dy, w []float32, rows, cols int) {
	backProj(gw, dx, x, dy, w, rows, cols, false)
}

// OuterAdd applies the rank-1 update gw[i*cols+j] += x[i]·dy[j]. Every
// element receives exactly one addition per call, so traversal order is
// immaterial to the bits; the loop is row-major for contiguous writes.
func OuterAdd(gw, x, dy []float32, rows, cols int) {
	dy = dy[:cols]
	for i := 0; i < rows; i++ {
		xi := x[i]
		row := gw[i*cols : (i+1)*cols]
		for j, dyj := range dy {
			row[j] += xi * dyj
		}
	}
}

// Axpy accumulates dst[j] += a·src[j] — one addition per element, the
// attention-value and softmax-Jacobian update shape.
func Axpy(dst []float32, a float32, src []float32) {
	src = src[:len(dst)]
	for j, v := range src {
		dst[j] += a * v
	}
}
