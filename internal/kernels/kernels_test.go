package kernels

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// shapes covers the block-boundary space: every remainder mod MR (and mod
// the 4-wide dot unroll), primes, tiny degenerate rows/cols, and shapes
// large enough that multiple full MR blocks and a remainder both execute.
var shapes = []struct{ rows, cols int }{
	{1, 1}, {1, 7}, {7, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5},
	{3, 8}, {4, 8}, {5, 8}, {6, 8}, {7, 8}, {8, 8},
	{8, 3}, {8, 5}, {13, 13}, {17, 31}, {31, 17},
	{32, 128}, {128, 8}, {127, 129}, {129, 127}, {64, 64},
}

// fill populates a slice with a deterministic mix of magnitudes, signs,
// subnormals and exact zeros — the value classes where accumulation-order
// differences show up as bit differences.
func fill(rng *rand.Rand, s []float32) {
	for i := range s {
		switch rng.Intn(8) {
		case 0:
			s[i] = 0
		case 1:
			s[i] = math.Float32frombits(rng.Uint32() & 0x007FFFFF) // subnormal
		case 2:
			s[i] = float32(rng.NormFloat64()) * 1e-20
		case 3:
			s[i] = float32(rng.NormFloat64()) * 1e20
		default:
			s[i] = float32(rng.NormFloat64())
		}
	}
}

// Naive references: the exact loops the kernels replaced, kept here as the
// bit-identity oracles.

func naiveAddMatVec(acc, x, w []float32, rows, cols int) {
	for j := 0; j < cols; j++ {
		s := acc[j]
		for i := 0; i < rows; i++ {
			s += x[i] * w[i*cols+j]
		}
		acc[j] = s
	}
}

func naiveDotRowsInto(dst, y, w []float32, rows, cols int) {
	for i := 0; i < rows; i++ {
		var s float32
		for j := 0; j < cols; j++ {
			s += y[j] * w[i*cols+j]
		}
		dst[i] = s
	}
}

func naiveBackProj(gw, dx, x, dy, w []float32, rows, cols int, set bool) {
	for i := 0; i < rows; i++ {
		xi := x[i]
		var s float32
		for j := 0; j < cols; j++ {
			gw[i*cols+j] += xi * dy[j]
			s += w[i*cols+j] * dy[j] // operand order flipped on purpose: IEEE mul commutes
		}
		if set {
			dx[i] = s
		} else {
			dx[i] += s
		}
	}
}

func naiveOuterAdd(gw, x, dy []float32, rows, cols int) {
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			gw[i*cols+j] += x[i] * dy[j]
		}
	}
}

// eqBits fails the test at the first element whose raw float32 bits differ.
func eqBits(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: bit mismatch at %d: got %08x (%g) want %08x (%g)",
				name, i, math.Float32bits(got[i]), got[i], math.Float32bits(want[i]), want[i])
		}
	}
}

// TestKernelBitIdentity proves every blocked kernel bit-identical to its
// naive reference on every shape, including non-zero starting accumulators
// (the residual-stream case).
func TestKernelBitIdentity(t *testing.T) {
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("%dx%d", sh.rows, sh.cols), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(sh.rows)<<16 | int64(sh.cols)))
			x := make([]float32, sh.rows)
			y := make([]float32, sh.cols)
			w := make([]float32, sh.rows*sh.cols)
			accInit := make([]float32, sh.cols)
			dxInit := make([]float32, sh.rows)
			gwInit := make([]float32, sh.rows*sh.cols)
			fill(rng, x)
			fill(rng, y)
			fill(rng, w)
			fill(rng, accInit)
			fill(rng, dxInit)
			fill(rng, gwInit)

			accK := append([]float32(nil), accInit...)
			accN := append([]float32(nil), accInit...)
			AddMatVec(accK, x, w, sh.rows, sh.cols)
			naiveAddMatVec(accN, x, w, sh.rows, sh.cols)
			eqBits(t, "AddMatVec", accK, accN)

			dstK := make([]float32, sh.cols)
			dstN := make([]float32, sh.cols)
			MatVecInto(dstK, accInit, x, w, sh.rows, sh.cols)
			copy(dstN, accInit)
			naiveAddMatVec(dstN, x, w, sh.rows, sh.cols)
			eqBits(t, "MatVecInto", dstK, dstN)

			dotK := make([]float32, sh.rows)
			dotN := make([]float32, sh.rows)
			DotRowsInto(dotK, y, w, sh.rows, sh.cols)
			naiveDotRowsInto(dotN, y, w, sh.rows, sh.cols)
			eqBits(t, "DotRowsInto", dotK, dotN)

			for _, set := range []bool{true, false} {
				gwK := append([]float32(nil), gwInit...)
				gwN := append([]float32(nil), gwInit...)
				dxK := append([]float32(nil), dxInit...)
				dxN := append([]float32(nil), dxInit...)
				if set {
					BackProjSet(gwK, dxK, x, y, w, sh.rows, sh.cols)
				} else {
					BackProjAdd(gwK, dxK, x, y, w, sh.rows, sh.cols)
				}
				naiveBackProj(gwN, dxN, x, y, w, sh.rows, sh.cols, set)
				eqBits(t, fmt.Sprintf("BackProj(set=%v).gw", set), gwK, gwN)
				eqBits(t, fmt.Sprintf("BackProj(set=%v).dx", set), dxK, dxN)
			}

			gwK := append([]float32(nil), gwInit...)
			gwN := append([]float32(nil), gwInit...)
			OuterAdd(gwK, x, y, sh.rows, sh.cols)
			naiveOuterAdd(gwN, x, y, sh.rows, sh.cols)
			eqBits(t, "OuterAdd", gwK, gwN)

			axK := append([]float32(nil), accInit...)
			axN := append([]float32(nil), accInit...)
			Axpy(axK, x[0], y)
			for j := range axN {
				axN[j] += x[0] * y[j]
			}
			eqBits(t, "Axpy", axK, axN)
		})
	}
}

// TestKernelZeroAlloc pins the kernels allocation-free.
func TestKernelZeroAlloc(t *testing.T) {
	const rows, cols = 33, 65
	rng := rand.New(rand.NewSource(7))
	x := make([]float32, rows)
	dy := make([]float32, cols)
	w := make([]float32, rows*cols)
	gw := make([]float32, rows*cols)
	acc := make([]float32, cols)
	dx := make([]float32, rows)
	fill(rng, x)
	fill(rng, dy)
	fill(rng, w)
	if n := testing.AllocsPerRun(100, func() {
		AddMatVec(acc, x, w, rows, cols)
		DotRowsInto(dx, dy, w, rows, cols)
		BackProjSet(gw, dx, x, dy, w, rows, cols)
		BackProjAdd(gw, dx, x, dy, w, rows, cols)
		OuterAdd(gw, x, dy, rows, cols)
		Axpy(acc, 2, dy)
	}); n != 0 {
		t.Fatalf("kernels allocated %v times per run, want 0", n)
	}
}

// TestArenaReuse pins the arena contract: zeroed handouts, growth never
// moves live slices, Reset reuses capacity with no further allocation.
func TestArenaReuse(t *testing.T) {
	var a Arena
	m := a.Rows(3, 5)
	if len(m) != 3 || len(m[0]) != 5 {
		t.Fatalf("Rows(3,5) shaped %dx%d", len(m), len(m[0]))
	}
	m[2][4] = 42
	v := a.Alloc(arenaSlabWords * 2) // forces a dedicated slab
	if len(v) != arenaSlabWords*2 {
		t.Fatalf("Alloc length %d", len(v))
	}
	if m[2][4] != 42 {
		t.Fatal("growth moved a live slice")
	}
	for _, x := range v {
		if x != 0 {
			t.Fatal("Alloc handed out non-zero storage")
		}
	}
	a.Reset()
	m2 := a.Rows(3, 5)
	if m2[2][4] != 0 {
		t.Fatal("Reset handout not zeroed")
	}
	if &m2[2][0] != &m[2][0] {
		t.Fatal("Reset did not reuse the slab")
	}
	// Steady state: no allocations once every slab exists.
	if n := testing.AllocsPerRun(50, func() {
		a.Reset()
		a.Rows(3, 5)
		a.Alloc(arenaSlabWords * 2)
		a.Rows(7, 9)
	}); n != 0 {
		t.Fatalf("steady-state arena allocated %v times per run, want 0", n)
	}

	// Row capacity is clamped: appending to a row must not bleed into its
	// neighbour.
	a.Reset()
	rows := a.Rows(2, 4)
	r0 := append(rows[0], 99)
	if rows[1][0] == 99 {
		t.Fatal("append to row 0 overwrote row 1")
	}
	_ = r0
}

// BenchmarkMatmulBlocked measures AddMatVec on the LayerStack projection
// shape (32×32) and the MLP hidden shape (32×128), against the naive
// column-major loop it replaced.
func BenchmarkMatmulBlocked(b *testing.B) {
	for _, sh := range []struct{ rows, cols int }{{32, 32}, {32, 128}, {128, 128}} {
		rng := rand.New(rand.NewSource(1))
		x := make([]float32, sh.rows)
		w := make([]float32, sh.rows*sh.cols)
		acc := make([]float32, sh.cols)
		fill(rng, x)
		fill(rng, w)
		b.Run(fmt.Sprintf("blocked-%dx%d", sh.rows, sh.cols), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				AddMatVec(acc, x, w, sh.rows, sh.cols)
			}
		})
		b.Run(fmt.Sprintf("naive-%dx%d", sh.rows, sh.cols), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				naiveAddMatVec(acc, x, w, sh.rows, sh.cols)
			}
		})
	}
}
