// Tensor arenas: reusable bump allocators for the per-example scratch
// tensors of the training hot loops. A model owns one Arena, Resets it at
// the top of each example, and carves every forward/backward intermediate
// out of it — after the first example (which sizes the slabs) steady-state
// training allocates nothing.

package kernels

// Arena is a bump allocator over reusable float32 slabs plus a matching
// row-header slab for [][]float32 matrix views. Alloc/Rows hand out zeroed
// storage; Reset rewinds both slabs without freeing, so capacity is reused
// across examples. Previously returned slices remain valid until the next
// Reset (growth appends new slabs, it never moves live ones). An Arena is
// not safe for concurrent use — like the model scratch buffers it backs,
// each trainer owns its own instance.
type Arena struct {
	slabs   [][]float32
	slab    int // index of the slab currently being carved
	off     int // carve offset within slabs[slab]
	headers [][][]float32
	hslab   int
	hoff    int
}

// arenaSlabWords is the minimum float32 slab size; allocations larger than
// this get a dedicated slab of exactly their size.
const arenaSlabWords = 1 << 14

// arenaHeaderRows is the minimum row-header slab length.
const arenaHeaderRows = 256

// Reset rewinds the arena: every slab stays allocated, every previously
// returned slice becomes dead (its storage will be reissued, zeroed).
func (a *Arena) Reset() {
	a.slab, a.off = 0, 0
	a.hslab, a.hoff = 0, 0
}

// Alloc returns a zeroed []float32 of length n carved from the arena.
func (a *Arena) Alloc(n int) []float32 {
	if n == 0 {
		return nil
	}
	for a.slab < len(a.slabs) && a.off+n > len(a.slabs[a.slab]) {
		a.slab++
		a.off = 0
	}
	if a.slab == len(a.slabs) {
		size := n
		if size < arenaSlabWords {
			size = arenaSlabWords
		}
		a.slabs = append(a.slabs, make([]float32, size))
		a.off = 0
	}
	s := a.slabs[a.slab][a.off : a.off+n : a.off+n]
	a.off += n
	clear(s)
	return s
}

// allocHeaders carves a [][]float32 of length t from the header slab; rows
// are overwritten by the caller, so headers are not cleared.
func (a *Arena) allocHeaders(t int) [][]float32 {
	for a.hslab < len(a.headers) && a.hoff+t > len(a.headers[a.hslab]) {
		a.hslab++
		a.hoff = 0
	}
	if a.hslab == len(a.headers) {
		size := t
		if size < arenaHeaderRows {
			size = arenaHeaderRows
		}
		a.headers = append(a.headers, make([][]float32, size))
		a.hoff = 0
	}
	h := a.headers[a.hslab][a.hoff : a.hoff+t : a.hoff+t]
	a.hoff += t
	return h
}

// Rows returns a zeroed t×d matrix as row views over one contiguous
// allocation — the arena-backed replacement for the per-call
// make([][]float32) + per-row make([]float32) pattern. Row i is
// data[i*d : (i+1)*d] with capacity clamped, so out-of-range writes fail
// loudly instead of corrupting the neighbouring row.
func (a *Arena) Rows(t, d int) [][]float32 {
	_, rows := a.RowsFlat(t, d)
	return rows
}

// RowsFlat is Rows plus the flat t·d backing slice, for callers that feed
// the same matrix both to row-at-a-time loops and to the flat row-major
// kernels (DotRowsInto, AddMatVec). rows[i] aliases flat[i*d:(i+1)*d].
func (a *Arena) RowsFlat(t, d int) ([]float32, [][]float32) {
	rows := a.allocHeaders(t)
	data := a.Alloc(t * d)
	for i := range rows {
		rows[i] = data[i*d : (i+1)*d : (i+1)*d]
	}
	return data, rows
}
