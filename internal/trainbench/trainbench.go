// Package trainbench is the shared measurement core for the training-step
// microbenchmark: cmd/benchpar records the numbers in BENCH_numeric.json
// and cmd/perfgate enforces train_step_ns_per_op and the steady-state
// allocation budget against the checked-in baseline. Keeping one definition
// of "the train-step microbenchmark" means the gate guards exactly what the
// report shows.
package trainbench

import (
	"fmt"
	"testing"

	"teco/internal/realtrain"
)

// Result is one measured configuration of the train-step microbenchmark.
type Result struct {
	// NsPerOp is nanoseconds per Trainer.Step call.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per Trainer.Step call in steady
	// state (after warmup steps have sized every scratch arena).
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Config selects the benchmarked trainer configuration.
type Config struct {
	Arch    string // "mlp", "attention" or "stack"
	Workers int    // hot-loop worker count (0/1 = serial)
	SDC     bool   // per-step checksum + NaN/Inf guards
	// SampleEvery overrides the trainer's sampling cadence (0 = the
	// trainer default, which includes the sampled dirty-byte scan at its
	// real duty cycle). The zero-alloc gate pushes it out of the window:
	// sampling appends to the samples slice by design, and the gate pins
	// the steady-state step, not the bounded per-sample bookkeeping.
	SampleEvery int
}

// newTrainer builds the benchmark trainer: small step budget is irrelevant
// (the benchmark drives Step directly).
func newTrainer(cfg Config) *realtrain.Trainer {
	tc := realtrain.Config{
		Steps:       1 << 30, // never Done during the benchmark
		Batch:       32,
		Seed:        42,
		PreSteps:    1, // benchmark measures fine-tune steps, not pretraining
		Arch:        cfg.Arch,
		DBA:         true,
		SampleEvery: cfg.SampleEvery,
		SDCChecks:   cfg.SDC,
		Workers:     cfg.Workers,
	}
	tr, err := realtrain.NewTrainer(tc)
	if err != nil {
		panic(fmt.Sprintf("trainbench: NewTrainer(%+v): %v", tc, err))
	}
	return tr
}

// MeasureStep benchmarks steady-state Trainer.Step for the configuration:
// a handful of warmup steps size every scratch buffer and arena, then
// testing.Benchmark calibrates the timed loop exactly like `go test -bench`.
func MeasureStep(cfg Config) Result {
	tr := newTrainer(cfg)
	for i := 0; i < 3; i++ {
		if err := tr.Step(); err != nil {
			panic(fmt.Sprintf("trainbench: warmup step: %v", err))
		}
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tr.Step(); err != nil {
				b.Fatalf("step: %v", err)
			}
		}
	})
	return Result{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp()}
}

// StepAllocs reports allocations per steady-state Step averaged over runs
// careful runs — the cheap form of the zero-alloc gate (testing.AllocsPerRun
// under the hood, no timing calibration).
func StepAllocs(cfg Config, runs int) float64 {
	tr := newTrainer(cfg)
	for i := 0; i < 3; i++ {
		if err := tr.Step(); err != nil {
			panic(fmt.Sprintf("trainbench: warmup step: %v", err))
		}
	}
	return testing.AllocsPerRun(runs, func() {
		if err := tr.Step(); err != nil {
			panic(err)
		}
	})
}

// Best returns the fastest of n repeated measurements — the standard
// noise-rejection for a shared machine (slowdowns are interference, never
// the code being "luckily" fast).
func Best(measure func() Result, n int) Result {
	best := measure()
	for i := 1; i < n; i++ {
		if r := measure(); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}
