package mem_test

import (
	"strings"
	"testing"

	"teco/internal/mem"
)

// TestBARSizeFor: smallest power-of-two cover with the 1 MiB resizable-BAR
// floor, exact at powers of two, doubling just past them.
func TestBARSizeFor(t *testing.T) {
	const MiB = 1 << 20
	for _, tc := range []struct{ bytes, want int64 }{
		{0, MiB},
		{1, MiB},
		{MiB, MiB},
		{MiB + 1, 2 * MiB},
		{2 * MiB, 2 * MiB},
		{3 * MiB, 4 * MiB},
		{1 << 30, 1 << 30},
		{1<<30 + 1, 1 << 31},
	} {
		if got := mem.BARSizeFor(tc.bytes); got != tc.want {
			t.Errorf("BARSizeFor(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

// TestConfigureGiantCacheBAR: the happy path rounds the request up to the
// BAR size and allocates a giant-cache region of exactly that size.
func TestConfigureGiantCacheBAR(t *testing.T) {
	m := mem.NewMap()
	r, err := m.ConfigureGiantCacheBAR("giant", 3<<20, 16<<20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes != 4<<20 {
		t.Fatalf("region of %d bytes, want the 4MiB BAR", r.Bytes)
	}
	if got := m.GiantCacheBytes(); got != 4<<20 {
		t.Fatalf("giant cache %d bytes, want %d", got, 4<<20)
	}
}

// TestConfigureGiantCacheBARErrors: non-positive requests and BARs that
// (with the reserve) exceed device memory are errors, not allocations.
func TestConfigureGiantCacheBARErrors(t *testing.T) {
	m := mem.NewMap()
	if _, err := m.ConfigureGiantCacheBAR("giant", 0, 16<<20, 0); err == nil {
		t.Fatal("zero-byte giant cache accepted")
	}
	if _, err := m.ConfigureGiantCacheBAR("giant", -5, 16<<20, 0); err == nil {
		t.Fatal("negative giant cache accepted")
	}
	// 3MiB request → 4MiB BAR; 4MiB + 1MiB reserve > 4MiB device memory.
	_, err := m.ConfigureGiantCacheBAR("giant", 3<<20, 4<<20, 1<<20)
	if err == nil {
		t.Fatal("BAR past device memory accepted")
	}
	if !strings.Contains(err.Error(), "exceeds device memory") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The failed attempts must not have allocated anything.
	if got := m.GiantCacheBytes(); got != 0 {
		t.Fatalf("failed configuration leaked %d bytes into the map", got)
	}
	// The BAR size itself fitting exactly (no reserve) is fine.
	if _, err := m.ConfigureGiantCacheBAR("giant", 3<<20, 4<<20, 0); err != nil {
		t.Fatal(err)
	}
}
