package mem

import "fmt"

// Resizable Base Address Register (BAR) support: TECO configures the giant
// cache "using resizable Base Address Register (BAR), which enables faster
// communication between host CPU and PCIe devices by mapping configurable
// memory regions of the devices to the system memory map. Once the size is
// set, that amount of space is separately marked as the giant cache"
// (paper §IV-A1). PCIe resizable BARs come in power-of-two sizes.

// BARSizeFor returns the smallest power-of-two BAR size covering bytes
// (minimum 1 MiB, the smallest resizable-BAR granularity).
func BARSizeFor(bytes int64) int64 {
	const minBAR = 1 << 20
	if bytes <= minBAR {
		return minBAR
	}
	sz := int64(minBAR)
	for sz < bytes {
		sz <<= 1
	}
	return sz
}

// ConfigureGiantCacheBAR maps a giant-cache region of at least `bytes`
// bytes through a resizable BAR, verifying the BAR fits within the device's
// memory alongside a reserve for non-coherent allocations. The configured
// size "does not change during the DL training" — reconfiguration means
// building a new map.
func (m *Map) ConfigureGiantCacheBAR(name string, bytes, deviceMemory, deviceReserve int64) (Region, error) {
	if bytes <= 0 {
		return Region{}, fmt.Errorf("mem: giant cache of %d bytes", bytes)
	}
	bar := BARSizeFor(bytes)
	if bar+deviceReserve > deviceMemory {
		return Region{}, fmt.Errorf("mem: BAR of %d bytes plus reserve %d exceeds device memory %d",
			bar, deviceReserve, deviceMemory)
	}
	return m.Allocate(name, RegionGiantCache, bar), nil
}
