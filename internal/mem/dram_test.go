package mem_test

import (
	"testing"

	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/sim"
)

// The device constants are calibration inputs to the cost model and the
// tiering/offload sweeps; these tests pin them so a drive-by edit cannot
// silently recalibrate every golden.

func TestDeviceConstantsPinned(t *testing.T) {
	for _, tc := range []struct {
		d       *mem.DRAM
		name    string
		bw      float64
		latency sim.Time
	}{
		{mem.V100HBM2(), "V100-HBM2", 900e9, 100 * sim.Nanosecond},
		{mem.HostDDR4(), "host-DDR4", 128e9, 90 * sim.Nanosecond},
		{mem.CXLExpander(), "cxl-expander", 16e9 * 0.943, 180 * sim.Nanosecond},
	} {
		if tc.d.Name != tc.name {
			t.Errorf("device name %q, want %q", tc.d.Name, tc.name)
		}
		if tc.d.BytesPerSecond != tc.bw {
			t.Errorf("%s bandwidth %g, want %g", tc.name, tc.d.BytesPerSecond, tc.bw)
		}
		if tc.d.AccessLatency != tc.latency {
			t.Errorf("%s latency %v, want %v", tc.name, tc.d.AccessLatency, tc.latency)
		}
	}
}

// TestCXLExpanderBandwidthIsLinkBandwidth: the far tier's sustained
// bandwidth IS the effective CXL link bandwidth — two spellings of one
// physical constant that must never drift apart.
func TestCXLExpanderBandwidthIsLinkBandwidth(t *testing.T) {
	if got, want := mem.CXLExpander().BytesPerSecond, modelzoo.CXLLinkBandwidth(); got != want {
		t.Fatalf("CXL expander bandwidth %g != modelzoo link bandwidth %g", got, want)
	}
}

// TestTierOrdering: fast tier strictly faster and lower latency than far —
// the premise of every tiering policy.
func TestTierOrdering(t *testing.T) {
	fast, far := mem.HostDDR4(), mem.CXLExpander()
	if fast.BytesPerSecond <= far.BytesPerSecond {
		t.Fatal("host DDR4 not faster than the CXL expander")
	}
	if fast.AccessLatency >= far.AccessLatency {
		t.Fatal("host DDR4 latency not below the CXL expander's")
	}
}

// TestAccessAccounting: Read/Write charge latency plus one line transfer
// and count; Reset clears.
func TestAccessAccounting(t *testing.T) {
	d := mem.HostDDR4()
	want := d.AccessLatency + d.LineTransferTime()
	if got := d.Read(); got != want {
		t.Fatalf("read time %v, want %v", got, want)
	}
	if got := d.Write(); got != want {
		t.Fatalf("write time %v, want %v", got, want)
	}
	if d.Reads() != 1 || d.Writes() != 1 {
		t.Fatalf("counters %d/%d, want 1/1", d.Reads(), d.Writes())
	}
	d.Reset()
	if d.Reads() != 0 || d.Writes() != 0 {
		t.Fatal("Reset left counters")
	}
}

// TestStreamTimeScales: streaming is pure bandwidth (no latency term) and
// linear in bytes up to integer-picosecond rounding (each conversion may
// round once, so 4× one conversion can differ from one 4× conversion by a
// few picoseconds).
func TestStreamTimeScales(t *testing.T) {
	d := mem.CXLExpander()
	one := d.StreamTime(1 << 20)
	four := d.StreamTime(4 << 20)
	if diff := four - 4*one; diff < -4 || diff > 4 {
		t.Fatalf("stream time not linear: %v vs 4×%v (diff %d ps)", four, one, diff)
	}
	if d.StreamTime(0) != 0 {
		t.Fatal("zero bytes stream in nonzero time")
	}
}
