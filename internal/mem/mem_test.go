package mem

import (
	"testing"
	"testing/quick"

	"teco/internal/sim"
)

func TestLineConversions(t *testing.T) {
	if LineSize != 1<<LineShift {
		t.Fatal("LineShift inconsistent with LineSize")
	}
	a := Addr(130)
	if a.Line() != 2 {
		t.Fatalf("line of 130 = %d, want 2", a.Line())
	}
	if LineAddr(2).Addr() != 128 {
		t.Fatalf("addr of line 2 = %d, want 128", LineAddr(2).Addr())
	}
}

func TestLinesIn(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int64
	}{{0, 0}, {-5, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {1000, 16}}
	for _, c := range cases {
		if got := LinesIn(c.bytes); got != c.want {
			t.Errorf("LinesIn(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

// Property: every byte address round-trips through its line: the line's base
// address is <= a and within LineSize bytes.
func TestLineRoundTripProperty(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw >> 1) // keep away from the very top to avoid +LineSize overflow
		base := a.Line().Addr()
		return base <= a && a < base+LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapAllocateAlignsAndOrders(t *testing.T) {
	m := NewMap()
	r1 := m.Allocate("params", RegionGiantCache, 100) // rounds to 128
	r2 := m.Allocate("grads", RegionGiantCache, 64)
	if r1.Bytes != 128 {
		t.Fatalf("r1.Bytes = %d, want 128 (line aligned)", r1.Bytes)
	}
	if r2.Base != 128 {
		t.Fatalf("r2.Base = %d, want 128", r2.Base)
	}
	if m.TotalBytes() != 192 {
		t.Fatalf("total = %d", m.TotalBytes())
	}
	if m.GiantCacheBytes() != 192 {
		t.Fatalf("giant cache bytes = %d", m.GiantCacheBytes())
	}
}

func TestMapLookup(t *testing.T) {
	m := NewMap()
	params := m.Allocate("params", RegionGiantCache, 4096)
	host := m.Allocate("optstates", RegionHostDRAM, 4096)
	dev := m.Allocate("activations", RegionDeviceLocal, 4096)

	if r, ok := m.Lookup(params.Base + 17); !ok || r.Name != "params" {
		t.Fatalf("lookup in params failed: %v %v", r, ok)
	}
	if r, ok := m.Lookup(host.Base); !ok || r.Kind != RegionHostDRAM {
		t.Fatalf("lookup host failed: %v %v", r, ok)
	}
	if r, ok := m.Lookup(dev.End() - 1); !ok || r.Kind != RegionDeviceLocal {
		t.Fatalf("lookup dev end failed: %v %v", r, ok)
	}
	if _, ok := m.Lookup(dev.End()); ok {
		t.Fatal("lookup past the end should miss")
	}
}

func TestInGiantCache(t *testing.T) {
	m := NewMap()
	gc := m.Allocate("params", RegionGiantCache, 1024)
	other := m.Allocate("host", RegionHostDRAM, 1024)
	if !m.InGiantCache(gc.Base.Line()) {
		t.Fatal("giant-cache line not recognized")
	}
	if m.InGiantCache(other.Base.Line()) {
		t.Fatal("host line misclassified as giant cache")
	}
}

func TestRegionContainsLine(t *testing.T) {
	r := Region{Base: 64, Bytes: 128}
	if !r.ContainsLine(LineAddr(1)) || !r.ContainsLine(LineAddr(2)) {
		t.Fatal("interior lines should be contained")
	}
	if r.ContainsLine(LineAddr(0)) || r.ContainsLine(LineAddr(3)) {
		t.Fatal("exterior lines should not be contained")
	}
}

func TestAllocatePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMap().Allocate("bad", RegionHostDRAM, 0)
}

func TestRegionKindString(t *testing.T) {
	if RegionGiantCache.String() != "giant-cache" {
		t.Fatal(RegionGiantCache.String())
	}
	if RegionKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestDRAMTiming(t *testing.T) {
	d := V100HBM2()
	lt := d.LineTransferTime()
	// 64 B / 900 GB/s ~= 71 ps.
	if lt < 60*sim.Picosecond || lt > 90*sim.Picosecond {
		t.Fatalf("HBM2 line time = %v", lt)
	}
	rd := d.Read()
	if rd <= d.AccessLatency {
		t.Fatalf("read time %v must include transfer", rd)
	}
	d.Write()
	if d.Reads() != 1 || d.Writes() != 1 {
		t.Fatalf("counters = %d/%d", d.Reads(), d.Writes())
	}
	d.Reset()
	if d.Reads() != 0 || d.Writes() != 0 {
		t.Fatal("reset failed")
	}
}

// The paper's §VIII-D claim: the Disaggregator's read-modify-write
// amplification is invisible because accelerator DRAM bandwidth is ~56x the
// PCIe 3.0 link bandwidth. Check the bandwidth gap our models encode.
func TestBandwidthGapSupportsDisaggregatorClaim(t *testing.T) {
	hbm := V100HBM2()
	pcie := 16e9
	if hbm.BytesPerSecond/pcie < 40 {
		t.Fatalf("HBM:PCIe ratio = %.1f, want >40x", hbm.BytesPerSecond/pcie)
	}
	// Even tripling per-line DRAM traffic (read + merge + write), the DRAM
	// service time per line must stay far under the link's 4 ns/line.
	perLine := hbm.LineTransferTime() * 3
	if perLine >= 1*sim.Nanosecond {
		t.Fatalf("3x line traffic = %v, want << 4ns link slot", perLine)
	}
}

func TestHostDDR4StreamTime(t *testing.T) {
	d := HostDDR4()
	// 128 MB at 128 GB/s = 1 ms.
	got := d.StreamTime(128_000_000)
	want := sim.Millisecond
	if got < want*99/100 || got > want*101/100 {
		t.Fatalf("stream time = %v, want ~1ms", got)
	}
}

func TestBARSizeFor(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{1, 1 << 20},
		{1 << 20, 1 << 20},
		{(1 << 20) + 1, 1 << 21},
		{817 << 20, 1 << 30},  // Bert-large's Table III giant cache fits a 1 GiB BAR
		{2069 << 20, 4 << 30}, // T5-large's fits a 4 GiB BAR
		{(4 << 30) - 1, 4 << 30},
	}
	for _, c := range cases {
		if got := BARSizeFor(c.in); got != c.want {
			t.Errorf("BARSizeFor(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestConfigureGiantCacheBAR(t *testing.T) {
	m := NewMap()
	const v100 = int64(32) << 30
	r, err := m.ConfigureGiantCacheBAR("params", 1336<<20, v100, 8<<30)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != RegionGiantCache {
		t.Fatal("region kind")
	}
	if r.Bytes != 2<<30 { // 1336 MiB rounds to a 2 GiB BAR
		t.Fatalf("BAR size = %d", r.Bytes)
	}
	if !m.InGiantCache(r.Base.Line()) {
		t.Fatal("BAR region must be coherent")
	}
	// Too big: a 44 GB parameter set cannot be mapped on a 32 GB device.
	if _, err := NewMap().ConfigureGiantCacheBAR("p", 44<<30, v100, 0); err == nil {
		t.Fatal("oversized BAR must fail")
	}
	if _, err := NewMap().ConfigureGiantCacheBAR("p", 0, v100, 0); err == nil {
		t.Fatal("zero-size BAR must fail")
	}
}
