// Package mem models the physical address map shared by the CPU and the
// accelerator, including the giant-cache region that TECO maps into the CXL
// coherent domain via a resizable Base Address Register (paper §IV-A1).
//
// Addresses are byte addresses in a flat 64-bit physical space. All coherent
// traffic moves in 64-byte cache lines, matching both the gem5-avx cache
// configuration (Table II) and the CXL.cache transfer granularity.
package mem

import (
	"fmt"
	"sort"
)

// LineSize is the coherence granularity in bytes (64-byte lines everywhere
// in the paper: gem5 caches, CXL.cache, the Aggregator input).
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Line returns the cache-line index containing a.
func (a Addr) Line() LineAddr { return LineAddr(a >> LineShift) }

// LineAddr is a cache-line-granular address (byte address >> 6).
type LineAddr uint64

// Addr returns the byte address of the first byte of the line.
func (l LineAddr) Addr() Addr { return Addr(l) << LineShift }

// LinesIn returns the number of cache lines covering n bytes starting at a
// line boundary.
func LinesIn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + LineSize - 1) / LineSize
}

// RegionKind labels what a region of the address map holds.
type RegionKind int

const (
	// RegionHostDRAM is ordinary CPU memory (gradients, optimizer states,
	// the master parameter copy in ZeRO-Offload).
	RegionHostDRAM RegionKind = iota
	// RegionGiantCache is the accelerator-memory slice mapped into the CXL
	// coherent domain ("giant cache", paper §II-B and §IV-A1).
	RegionGiantCache
	// RegionDeviceLocal is the non-coherent remainder of accelerator memory
	// (activations and other tensors, Fig 3).
	RegionDeviceLocal
)

func (k RegionKind) String() string {
	switch k {
	case RegionHostDRAM:
		return "host-dram"
	case RegionGiantCache:
		return "giant-cache"
	case RegionDeviceLocal:
		return "device-local"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// Region is a named, line-aligned interval of the address map.
type Region struct {
	Name  string
	Kind  RegionKind
	Base  Addr
	Bytes int64
}

// End returns one past the last byte of the region.
func (r Region) End() Addr { return r.Base + Addr(r.Bytes) }

// Contains reports whether a falls inside the region.
func (r Region) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// ContainsLine reports whether the whole line falls inside the region.
func (r Region) ContainsLine(l LineAddr) bool {
	return r.Contains(l.Addr()) && r.Contains(l.Addr()+LineSize-1)
}

// Lines returns the number of cache lines in the region.
func (r Region) Lines() int64 { return LinesIn(r.Bytes) }

// Map is the full address map. It doubles as the TECO "address registers"
// (paper §V-B): the Aggregator consults it to decide whether a written-back
// line belongs to the giant-cache coherent domain.
type Map struct {
	regions []Region // sorted by Base, non-overlapping
	next    Addr
}

// NewMap returns an empty address map allocating from address 0 upward.
func NewMap() *Map { return &Map{} }

// Allocate appends a new line-aligned region of at least bytes bytes and
// returns it. Allocation order is deterministic, which keeps trace replay
// reproducible.
func (m *Map) Allocate(name string, kind RegionKind, bytes int64) Region {
	if bytes <= 0 {
		panic(fmt.Sprintf("mem: allocating %q with %d bytes", name, bytes))
	}
	aligned := LinesIn(bytes) * LineSize
	r := Region{Name: name, Kind: kind, Base: m.next, Bytes: aligned}
	m.regions = append(m.regions, r)
	m.next += Addr(aligned)
	return r
}

// Regions returns the regions in address order.
func (m *Map) Regions() []Region {
	out := make([]Region, len(m.regions))
	copy(out, m.regions)
	return out
}

// Lookup returns the region containing a, if any.
func (m *Map) Lookup(a Addr) (Region, bool) {
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].End() > a })
	if i < len(m.regions) && m.regions[i].Contains(a) {
		return m.regions[i], true
	}
	return Region{}, false
}

// InGiantCache reports whether the line is mapped to the coherent giant
// cache — the check the CXL home agent performs on every LLC writeback
// (paper Fig 8: "mapped in the Giant cache?").
func (m *Map) InGiantCache(l LineAddr) bool {
	r, ok := m.Lookup(l.Addr())
	return ok && r.Kind == RegionGiantCache
}

// GiantCacheBytes returns the configured giant-cache capacity: the sum of
// all giant-cache regions. The paper sizes it to hold all parameters plus
// the gradient buffer so that there are no capacity/conflict misses.
func (m *Map) GiantCacheBytes() int64 {
	var n int64
	for _, r := range m.regions {
		if r.Kind == RegionGiantCache {
			n += r.Bytes
		}
	}
	return n
}

// TotalBytes returns the number of bytes allocated so far.
func (m *Map) TotalBytes() int64 { return int64(m.next) }
