package mem

import "teco/internal/sim"

// DRAM is a bandwidth/latency model of a memory device. It stands in for
// Ramulator in the paper's overhead analysis (§VIII-D): the Disaggregator's
// extra read-modify-write per updated cache line is charged against this
// model, and the conclusion — that GDDR/HBM bandwidth dwarfs PCIe so the
// amplification is invisible end-to-end — is checked in tests.
type DRAM struct {
	Name string
	// BytesPerSecond is sustained sequential bandwidth.
	BytesPerSecond float64
	// AccessLatency is the idle-row access latency per request.
	AccessLatency sim.Time
	// reads/writes count 64-byte line accesses.
	reads, writes int64
}

// LineTransferTime returns the bus occupancy of moving one cache line.
func (d *DRAM) LineTransferTime() sim.Time {
	return sim.DurationForBytes(LineSize, d.BytesPerSecond)
}

// Read charges one line read and returns its service time.
func (d *DRAM) Read() sim.Time {
	d.reads++
	return d.AccessLatency + d.LineTransferTime()
}

// Write charges one line write and returns its service time.
func (d *DRAM) Write() sim.Time {
	d.writes++
	return d.AccessLatency + d.LineTransferTime()
}

// Reads returns the number of line reads charged.
func (d *DRAM) Reads() int64 { return d.reads }

// Writes returns the number of line writes charged.
func (d *DRAM) Writes() int64 { return d.writes }

// Reset clears access counters.
func (d *DRAM) Reset() { d.reads, d.writes = 0, 0 }

// StreamTime returns the time to stream n bytes at sustained bandwidth
// (latency amortized away), used for bulk kernel traffic.
func (d *DRAM) StreamTime(n int64) sim.Time {
	return sim.DurationForBytes(n, d.BytesPerSecond)
}

// V100HBM2 returns the accelerator memory model: the paper quotes "total
// 900GB/s with 8 memory controllers" for the V100 (§VIII-D; the text calls
// it GDDR5 but quotes the V100's HBM2 aggregate bandwidth).
func V100HBM2() *DRAM {
	return &DRAM{Name: "V100-HBM2", BytesPerSecond: 900e9, AccessLatency: 100 * sim.Nanosecond}
}

// HostDDR4 returns the host memory model: 8 controllers of DDR4-2666-class
// memory (gem5 configuration, Table II), ~128 GB/s aggregate peak.
func HostDDR4() *DRAM {
	return &DRAM{Name: "host-DDR4", BytesPerSecond: 128e9, AccessLatency: 90 * sim.Nanosecond}
}

// CXLExpander returns the far-memory tier model: DRAM behind a CXL.mem
// expander. Sustained bandwidth is bounded by the CXL link itself — PCIe3
// x16 raw 16 GB/s at the paper's measured 94.3% protocol efficiency, the
// same constant modelzoo.CXLLinkBandwidth encodes (pinned equal by test) —
// and the access latency carries the ~2× far-memory penalty CXL.mem round
// trips add over local DDR (Pond/CXLRAMSim-class numbers).
func CXLExpander() *DRAM {
	return &DRAM{Name: "cxl-expander", BytesPerSecond: 16e9 * 0.943, AccessLatency: 180 * sim.Nanosecond}
}
