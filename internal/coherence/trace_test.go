package coherence

import (
	"testing"

	"teco/internal/mem"
)

func TestTransferRingOrderAndWrap(t *testing.T) {
	r := NewTransferRing(4)
	for i := 0; i < 6; i++ {
		r.Record(Transfer{Line: mem.LineAddr(i), Msg: MsgData})
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d, want 6", r.Total())
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if got, want := r.At(i).Line, mem.LineAddr(i+2); got != want {
			t.Errorf("At(%d).Line = %d, want %d", i, got, want)
		}
	}
	out := r.AppendTo(nil)
	if len(out) != 4 || out[0].Line != 2 || out[3].Line != 5 {
		t.Errorf("AppendTo = %+v", out)
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Errorf("after reset: len=%d total=%d", r.Len(), r.Total())
	}
}

func TestTransferRingRecordAllocs(t *testing.T) {
	r := NewTransferRing(128)
	tr := Transfer{Line: 7, From: CPU, To: Accelerator, Msg: MsgFlushData}
	if avg := testing.AllocsPerRun(1000, func() { r.Record(tr) }); avg != 0 {
		t.Errorf("Record allocates %.1f/op, want 0", avg)
	}
}

// TestTransferRingAsSink drives a real domain with the ring chained in
// front of a counting sink and checks both observe every crossing.
func TestTransferRingAsSink(t *testing.T) {
	amap := mem.NewMap()
	region := amap.Allocate("p", mem.RegionGiantCache, 1024)
	r := NewTransferRing(8)
	var n int64
	d := NewDomain(Config{
		Mode:       Update,
		AddrMap:    amap,
		OnTransfer: r.Chain(func(Transfer) { n++ }),
	})
	for l := int64(0); l < 16; l++ {
		d.Write(region.Base.Line()+mem.LineAddr(l), CPU)
	}
	total, _ := d.Transfers()
	if r.Total() != total || n != total {
		t.Errorf("ring total %d, sink %d, domain %d", r.Total(), n, total)
	}
	if r.Len() != 8 {
		t.Errorf("retained %d, want 8", r.Len())
	}
}
