package coherence

import (
	"math/rand"
	"testing"

	"teco/internal/cache"
	"teco/internal/mem"
)

// testDomain builds a domain with a params giant-cache region and a plain
// host region, returning the domain and the two regions.
func testDomain(mode Mode) (*Domain, mem.Region, mem.Region, *[]Transfer) {
	m := mem.NewMap()
	params := m.Allocate("params", mem.RegionGiantCache, 64*1024)
	host := m.Allocate("host", mem.RegionHostDRAM, 64*1024)
	var log []Transfer
	d := NewDomain(Config{
		Mode:       mode,
		AddrMap:    m,
		CPUCache:   cache.New(cache.Config{Name: "llc", SizeBytes: 8 << 10, Ways: 8}),
		OnTransfer: func(tr Transfer) { log = append(log, tr) },
	})
	return d, params, host, &log
}

func TestModeAndSideStrings(t *testing.T) {
	if Update.String() != "update" || Invalidation.String() != "invalidation" {
		t.Fatal("mode strings")
	}
	if CPU.String() != "cpu" || Accelerator.String() != "accelerator" {
		t.Fatal("side strings")
	}
	if CPU.Opposite() != Accelerator || Accelerator.Opposite() != CPU {
		t.Fatal("opposite")
	}
	if MsgGoFlush.String() != "Go_Flush" {
		t.Fatal(MsgGoFlush.String())
	}
	if MsgType(99).String() == "" {
		t.Fatal("unknown msg type should render")
	}
}

// TestFig5ParameterUpdateFlow walks the exact state sequence of Figure 5.
func TestFig5ParameterUpdateFlow(t *testing.T) {
	d, params, _, log := testDomain(Update)
	l := params.Base.Line()

	// Initial condition: giant cache has the parameter copy, G_S = E,
	// C_S = I.
	d.Seed(l, Accelerator)
	if d.GiantCache().Lookup(l) != cache.Exclusive {
		t.Fatalf("G_S = %v, want E", d.GiantCache().Lookup(l))
	}
	if d.CPUCache().Lookup(l).Valid() {
		t.Fatal("C_S should start I")
	}

	// (1)(2): CPU updates the parameter line. ReadOwn then the update push.
	d.Write(l, CPU)
	if got := d.Msgs(MsgReadOwn); got != 1 {
		t.Fatalf("ReadOwn msgs = %d, want 1", got)
	}
	if got := d.Msgs(MsgGoFlush); got != 1 {
		t.Fatalf("Go_Flush msgs = %d, want 1", got)
	}
	if got := d.Msgs(MsgFlushData); got != 1 {
		t.Fatalf("FlushData msgs = %d, want 1", got)
	}
	// (3): after the approved flush, C_S = S and the peer copy is S.
	if d.CPUCache().Lookup(l) != cache.Shared {
		t.Fatalf("C_S = %v, want S", d.CPUCache().Lookup(l))
	}
	if d.GiantCache().Lookup(l) != cache.Shared {
		t.Fatalf("G_S = %v, want S", d.GiantCache().Lookup(l))
	}
	// The push is NOT on-demand: it overlaps with producer compute.
	if len(*log) != 1 || (*log)[0].OnDemand {
		t.Fatalf("log = %+v", *log)
	}

	// CPU evicts C: C_S S -> I, G_S S -> E.
	d.Evict(l, CPU)
	if d.CPUCache().Lookup(l).Valid() {
		t.Fatal("C_S should be I after evict")
	}
	if d.GiantCache().Lookup(l) != cache.Exclusive {
		t.Fatalf("G_S = %v, want E after CPU evict", d.GiantCache().Lookup(l))
	}

	// Accelerator reads C: G_S remains E, no link traffic.
	before := len(*log)
	if onDemand := d.Read(l, Accelerator); onDemand {
		t.Fatal("accelerator read of pushed parameter must not be on-demand")
	}
	if d.GiantCache().Lookup(l) != cache.Exclusive {
		t.Fatal("G_S must remain E on accelerator read")
	}
	if len(*log) != before {
		t.Fatal("accelerator read caused link traffic")
	}
	if err := d.CheckInvariants([]mem.LineAddr{l}); err != nil {
		t.Fatal(err)
	}
}

// TestInvalidationOnDemand verifies the stock-CXL behaviour the paper
// measures as a 56.6% average training-time increase: the consumer's read
// triggers the data transfer on the critical path.
func TestInvalidationOnDemand(t *testing.T) {
	d, params, _, log := testDomain(Invalidation)
	l := params.Base.Line()
	d.Seed(l, Accelerator)

	// CPU updates the parameter: peer invalidated, no data pushed.
	d.Write(l, CPU)
	if d.GiantCache().Lookup(l).Valid() {
		t.Fatal("invalidation mode must invalidate the peer copy")
	}
	if d.CPUCache().Lookup(l) != cache.Modified {
		t.Fatalf("C_S = %v, want M", d.CPUCache().Lookup(l))
	}
	if d.Msgs(MsgInvalidate) != 1 {
		t.Fatalf("Invalidate msgs = %d", d.Msgs(MsgInvalidate))
	}
	if len(*log) != 0 {
		t.Fatal("no data should move at update time in invalidation mode")
	}

	// Accelerator read: on-demand transfer, critical path.
	if onDemand := d.Read(l, Accelerator); !onDemand {
		t.Fatal("read must be on-demand in invalidation mode")
	}
	if len(*log) != 1 || !(*log)[0].OnDemand {
		t.Fatalf("log = %+v", *log)
	}
	total, od := d.Transfers()
	if total != 1 || od != 1 {
		t.Fatalf("transfers = %d/%d", total, od)
	}
	if err := d.CheckInvariants([]mem.LineAddr{l}); err != nil {
		t.Fatal(err)
	}
}

// TestGradientPushAcceleratorToCPU: gradients flow the other way (Fig 6 (3)):
// the accelerator produces, the CPU consumes.
func TestGradientPushAcceleratorToCPU(t *testing.T) {
	d, params, _, log := testDomain(Update)
	l := params.Base.Line() + 10

	d.Write(l, Accelerator)
	if d.GiantCache().Lookup(l) != cache.Shared {
		t.Fatalf("G_S = %v, want S after push", d.GiantCache().Lookup(l))
	}
	// CPU cache did not hold the line; it "simply ignores the update
	// message" — data lands in host memory, not the CPU cache.
	if d.CPUCache().Lookup(l).Valid() {
		t.Fatal("CPU cache should not allocate on ignored update")
	}
	if len(*log) != 1 || (*log)[0].From != Accelerator || (*log)[0].To != CPU {
		t.Fatalf("log = %+v", *log)
	}
	// CPU read after the push costs nothing on the link.
	if onDemand := d.Read(l, CPU); onDemand {
		t.Fatal("CPU read after push must not be on-demand")
	}
}

// TestCPUCacheAcceptsUpdateWhenResident: if the CPU cache does hold the
// line, the update refreshes it in Shared state.
func TestCPUCacheAcceptsUpdateWhenResident(t *testing.T) {
	d, params, _, _ := testDomain(Update)
	l := params.Base.Line() + 3
	d.Read(l, CPU) // CPU now holds the line
	d.Write(l, Accelerator)
	if d.CPUCache().Lookup(l) != cache.Shared {
		t.Fatalf("CPU copy = %v, want S", d.CPUCache().Lookup(l))
	}
}

// TestRepeatedUpdatesSameLine: "a cache line containing multiple parameters
// may be transferred multiple times" — each write pushes again.
func TestRepeatedUpdatesSameLine(t *testing.T) {
	d, params, _, _ := testDomain(Update)
	l := params.Base.Line()
	d.Seed(l, Accelerator)
	for i := 0; i < 5; i++ {
		d.Write(l, CPU)
	}
	if d.Msgs(MsgFlushData) != 5 {
		t.Fatalf("FlushData = %d, want 5", d.Msgs(MsgFlushData))
	}
	// Ownership is acquired once; later writes reuse the Shared copy.
	if d.Msgs(MsgReadOwn) != 1 {
		t.Fatalf("ReadOwn = %d, want 1", d.Msgs(MsgReadOwn))
	}
}

// TestNonDomainLinesUseStockMESI: host-DRAM lines never ride the update
// protocol even when the domain is in Update mode.
func TestNonDomainLinesUseStockMESI(t *testing.T) {
	d, _, host, log := testDomain(Update)
	l := host.Base.Line()
	d.Write(l, CPU)
	if d.CPUCache().Lookup(l) != cache.Modified {
		t.Fatalf("state = %v, want M", d.CPUCache().Lookup(l))
	}
	if len(*log) != 0 {
		t.Fatal("host line write should not cross the link")
	}
}

// TestSnoopFilterOnlyInInvalidationMode: the paper's claim that the giant
// cache needs no snoop filter under the update protocol.
func TestSnoopFilterOnlyInInvalidationMode(t *testing.T) {
	du, params, _, _ := testDomain(Update)
	for i := 0; i < 100; i++ {
		du.Write(params.Base.Line()+mem.LineAddr(i), CPU)
	}
	if du.SnoopEntries() != 0 {
		t.Fatalf("update mode tracked %d snoop entries, want 0", du.SnoopEntries())
	}

	di, params2, _, _ := testDomain(Invalidation)
	for i := 0; i < 100; i++ {
		di.Write(params2.Base.Line()+mem.LineAddr(i), CPU)
	}
	if di.SnoopEntries() == 0 {
		t.Fatal("invalidation mode must track sharers")
	}
}

func TestFlushCPUPushesRemainingAndRestoresExclusive(t *testing.T) {
	d, params, host, _ := testDomain(Update)
	pl := params.Base.Line()
	hl := host.Base.Line()
	d.Seed(pl, Accelerator)
	d.Write(pl, CPU) // pushed; CPU=S, giant=S
	d.Write(hl, CPU) // host line, dirty in CPU cache

	hostWB := d.FlushCPU()
	if len(hostWB) != 1 || hostWB[0].Addr != hl {
		t.Fatalf("host writebacks = %+v", hostWB)
	}
	if d.CPUCache().ValidLines() != 0 {
		t.Fatal("CPU cache not empty after flush")
	}
	// Fig 5: "If the CPU evicts C or flushes all the cache lines, C_S
	// transits to I from S and G_S transits to E from S."
	if d.GiantCache().Lookup(pl) != cache.Exclusive {
		t.Fatalf("G_S = %v, want E after flush", d.GiantCache().Lookup(pl))
	}
}

func TestFlushCPUInvalidationModeTransfersDirtyDomainLines(t *testing.T) {
	d, params, _, log := testDomain(Invalidation)
	pl := params.Base.Line()
	d.Seed(pl, Accelerator)
	d.Write(pl, CPU) // CPU=M, giant invalidated
	d.FlushCPU()
	if len(*log) != 1 {
		t.Fatalf("flush should move the dirty domain line once, log=%+v", *log)
	}
}

func TestSetMode(t *testing.T) {
	d, params, _, _ := testDomain(Update)
	if d.Mode() != Update {
		t.Fatal("mode")
	}
	d.SetMode(Invalidation)
	l := params.Base.Line()
	d.Seed(l, Accelerator)
	d.Write(l, CPU)
	if d.CPUCache().Lookup(l) != cache.Modified {
		t.Fatal("after SetMode(Invalidation), writes must follow MESI")
	}
}

func TestNewDomainDefaults(t *testing.T) {
	m := mem.NewMap()
	m.Allocate("p", mem.RegionGiantCache, 1<<20)
	d := NewDomain(Config{Mode: Update, AddrMap: m})
	if d.CPUCache() == nil || d.GiantCache() == nil {
		t.Fatal("defaults not installed")
	}
	if d.GiantCache().Config().SizeBytes != 1<<20 {
		t.Fatalf("giant cache sized %d, want region size", d.GiantCache().Config().SizeBytes)
	}
}

func TestNewDomainNilMapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDomain(Config{})
}

// TestProtocolInvariantsRandomWalk drives random operations in both modes
// and checks single-writer / exclusive-means-exclusive invariants after
// every step.
func TestProtocolInvariantsRandomWalk(t *testing.T) {
	for _, mode := range []Mode{Update, Invalidation} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			d, params, host, _ := testDomain(mode)
			rng := rand.New(rand.NewSource(7))
			lines := make([]mem.LineAddr, 0, 40)
			for i := 0; i < 20; i++ {
				lines = append(lines, params.Base.Line()+mem.LineAddr(i))
				lines = append(lines, host.Base.Line()+mem.LineAddr(i))
			}
			for _, l := range lines[:10] {
				d.Seed(l, Accelerator)
			}
			for step := 0; step < 20000; step++ {
				l := lines[rng.Intn(len(lines))]
				side := Side(rng.Intn(2))
				switch rng.Intn(4) {
				case 0:
					d.Write(l, side)
				case 1:
					d.Read(l, side)
				case 2:
					d.Evict(l, side)
				case 3:
					if rng.Intn(50) == 0 {
						d.FlushCPU()
					}
				}
				if err := d.CheckInvariants(lines); err != nil {
					t.Fatalf("step %d (%v on %v by %v): %v", step, mode, l, side, err)
				}
			}
		})
	}
}

// TestUpdateModeKeepsCopiesCoherent: after any CPU write sequence followed
// by a flush, the accelerator holds every written parameter line (the data
// consistency the training loop relies on at CXLFENCE).
func TestUpdateModeKeepsCopiesCoherent(t *testing.T) {
	d, params, _, _ := testDomain(Update)
	rng := rand.New(rand.NewSource(11))
	written := map[mem.LineAddr]bool{}
	for i := 0; i < 2000; i++ {
		l := params.Base.Line() + mem.LineAddr(rng.Intn(256))
		d.Write(l, CPU)
		written[l] = true
	}
	d.FlushCPU()
	for l := range written {
		if !d.GiantCache().Contains(l) {
			t.Fatalf("line %d missing from giant cache after flush", l)
		}
		if d.GiantCache().Lookup(l) != cache.Exclusive {
			t.Fatalf("line %d = %v, want E", l, d.GiantCache().Lookup(l))
		}
	}
}
