// Package coherence implements the CXL.cache coherence machinery between the
// CPU cache and the accelerator's giant cache: the standard invalidation-based
// MESI protocol CXL ships with, and the paper's update-based extension
// (Figures 4 and 5 of the paper).
//
// The home agent is the single serialization point, exactly as in the CXL
// specification: every transition between the two peer caches flows through
// it. The package is link-agnostic — data movement is reported through a
// Transfer callback that the cxl package binds to its timed link model.
package coherence

import (
	"fmt"

	"teco/internal/cache"
	"teco/internal/conformance/check"
	"teco/internal/mem"
)

// Mode selects the coherence protocol.
type Mode int

const (
	// Invalidation is the stock CXL MESI behaviour: on a store, peers are
	// invalidated; data moves later, on demand, when the consumer misses.
	Invalidation Mode = iota
	// Update is the paper's extension: a Modified line is pushed to the
	// peer at update time (Go_Flush / FlushData), transitioning M->S
	// immediately (the red arrow in Fig 4).
	Update
)

func (m Mode) String() string {
	if m == Update {
		return "update"
	}
	return "invalidation"
}

// MsgType enumerates CXL.cache protocol messages the home agent exchanges.
type MsgType int

const (
	// MsgReadOwn: requester wants ownership to write (RFO).
	MsgReadOwn MsgType = iota
	// MsgReadShared: requester wants a readable copy.
	MsgReadShared
	// MsgInvalidate: home agent invalidates a peer copy.
	MsgInvalidate
	// MsgGoFlush: home agent approves an immediate flush of updated data
	// (the paper's new message enabling the M->S transition).
	MsgGoFlush
	// MsgFlushData: the updated cache line (or its DBA-aggregated payload)
	// pushed to the peer.
	MsgFlushData
	// MsgData: on-demand data response to a read miss.
	MsgData
	numMsgTypes
)

var msgNames = [...]string{"ReadOwn", "ReadShared", "Invalidate", "Go_Flush", "FlushData", "Data"}

func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", int(t))
}

// Side identifies a peer cache in the coherent domain.
type Side int

const (
	// CPU is the host-side cache hierarchy.
	CPU Side = iota
	// Accelerator is the giant cache carved out of device memory.
	Accelerator
)

func (s Side) String() string {
	if s == CPU {
		return "cpu"
	}
	return "accelerator"
}

// Opposite returns the other peer.
func (s Side) Opposite() Side {
	if s == CPU {
		return Accelerator
	}
	return CPU
}

// Transfer describes a data movement crossing the CXL link.
type Transfer struct {
	Line mem.LineAddr
	From Side
	To   Side
	Msg  MsgType
	// OnDemand marks transfers that sit on a consumer's critical path
	// (invalidation-protocol read-miss fills), as opposed to pushed
	// updates that overlap with producer compute.
	OnDemand bool
}

// TransferFunc receives each link crossing.
type TransferFunc func(Transfer)

// Domain is the coherent domain: the two peer caches plus the home agent
// state. Per the paper (§IV-A2), in update mode with a clear
// producer/consumer relationship no snoop filter is needed; in invalidation
// mode the home agent maintains one.
type Domain struct {
	mode    Mode
	addrMap *mem.Map
	cpu     *cache.Cache
	giant   *cache.Cache
	sink    TransferFunc

	// snoop is the sharer-tracking directory used only in invalidation
	// mode (the paper's fallback for workloads without a clear
	// producer/consumer pattern).
	snoop map[mem.LineAddr]uint8 // bit 0: CPU has copy, bit 1: accelerator

	msgs      [numMsgTypes]int64
	transfers int64
	onDemand  int64

	// Link-fault recovery accounting: retransmitted update pushes (NAKed
	// by the link layer and replayed), pushes poisoned after retry-budget
	// exhaustion, and poisoned lines later recovered through the
	// on-demand fetch path.
	retransmits     int64
	poisons         int64
	poisonRecovered int64
	// poisonedLines tracks lines whose last push was poisoned, so their
	// eventual on-demand recovery can be attributed.
	poisonedLines map[mem.LineAddr]struct{}
}

// Config configures a Domain.
type Config struct {
	Mode Mode
	// AddrMap distinguishes giant-cache lines from plain host memory.
	AddrMap *mem.Map
	// CPUCache is the host LLC model. If nil a gem5 Table II L3 is used.
	CPUCache *cache.Cache
	// GiantCache is the device-side giant cache. If nil, a fully
	// associative cache sized to the address map's giant-cache region is
	// used (the paper configures it to suffer no capacity misses).
	GiantCache *cache.Cache
	// OnTransfer observes link crossings; may be nil.
	OnTransfer TransferFunc
}

// NewDomain builds the coherent domain.
func NewDomain(cfg Config) *Domain {
	if cfg.AddrMap == nil {
		panic("coherence: nil address map")
	}
	cc := cfg.CPUCache
	if cc == nil {
		cc = cache.New(cache.Gem5L3())
	}
	gc := cfg.GiantCache
	if gc == nil {
		bytes := cfg.AddrMap.GiantCacheBytes()
		if bytes == 0 {
			bytes = 64 << 20
		}
		gc = cache.New(cache.Config{Name: "giant", SizeBytes: bytes, Ways: 0})
	}
	sink := cfg.OnTransfer
	if sink == nil {
		sink = func(Transfer) {}
	}
	return &Domain{
		mode:          cfg.Mode,
		addrMap:       cfg.AddrMap,
		cpu:           cc,
		giant:         gc,
		sink:          sink,
		snoop:         make(map[mem.LineAddr]uint8),
		poisonedLines: make(map[mem.LineAddr]struct{}),
	}
}

// Mode returns the active protocol.
func (d *Domain) Mode() Mode { return d.mode }

// SetMode reconfigures the protocol. The paper makes this switchable by the
// home agent: "By disabling the immediate FlushData transition upon data
// update, the update-based transitions can be disabled."
func (d *Domain) SetMode(m Mode) { d.mode = m }

// CPUCache returns the host cache model.
func (d *Domain) CPUCache() *cache.Cache { return d.cpu }

// GiantCache returns the device giant-cache model.
func (d *Domain) GiantCache() *cache.Cache { return d.giant }

// Msgs returns the count of protocol messages of type t exchanged.
func (d *Domain) Msgs(t MsgType) int64 { return d.msgs[t] }

// Transfers returns (total link data transfers, on-demand transfers).
func (d *Domain) Transfers() (total, onDemand int64) { return d.transfers, d.onDemand }

func (d *Domain) say(t MsgType) { d.msgs[t]++ }

// checkLine asserts the per-line legality rules after a protocol operation
// touched line l, plus the domain-wide message/transfer conservation laws.
// Called from Write/Read/Evict only while conformance checking is enabled.
func (d *Domain) checkLine(l mem.LineAddr) {
	check.Check(
		func() error { return d.CheckInvariants([]mem.LineAddr{l}) },
		func() error {
			if d.onDemand < 0 || d.onDemand > d.transfers {
				return fmt.Errorf("coherence: %d on-demand of %d transfers", d.onDemand, d.transfers)
			}
			// Every data transfer is either an update push or an (on-demand
			// or writeback) MESI data response.
			if data := d.msgs[MsgFlushData] + d.msgs[MsgData]; data != d.transfers {
				return fmt.Errorf("coherence: %d data messages vs %d transfers", data, d.transfers)
			}
			return nil
		},
		func() error {
			if d.poisonRecovered > d.poisons {
				return fmt.Errorf("coherence: recovered %d of %d poisoned pushes", d.poisonRecovered, d.poisons)
			}
			if int64(len(d.poisonedLines)) > d.poisons-d.poisonRecovered {
				return fmt.Errorf("coherence: %d poisoned lines outstanding, %d unrecovered pushes",
					len(d.poisonedLines), d.poisons-d.poisonRecovered)
			}
			return nil
		},
		func() error {
			if d.mode == Update && len(d.snoop) != 0 {
				return fmt.Errorf("coherence: update mode tracks %d snoop entries", len(d.snoop))
			}
			return nil
		},
	)
}

func (d *Domain) move(tr Transfer) {
	d.transfers++
	if tr.OnDemand {
		d.onDemand++
	}
	d.say(tr.Msg)
	d.sink(tr)
}

func (d *Domain) cacheOf(s Side) *cache.Cache {
	if s == CPU {
		return d.cpu
	}
	return d.giant
}

func (d *Domain) snoopSet(l mem.LineAddr, s Side) {
	d.snoop[l] |= 1 << uint(s)
}

func (d *Domain) snoopClear(l mem.LineAddr, s Side) {
	d.snoop[l] &^= 1 << uint(s)
	if d.snoop[l] == 0 {
		delete(d.snoop, l)
	}
}

// SnoopEntries returns the number of directory entries currently tracked —
// zero in update mode, which is the paper's snoop-filter-free claim.
func (d *Domain) SnoopEntries() int { return len(d.snoop) }

// NoteRetransmit records n link-layer retransmissions of update pushes.
// The replay engine delivers the data, so no protocol state changes — this
// is recovery accounting only.
func (d *Domain) NoteRetransmit(n int64) { d.retransmits += n }

// PoisonPush handles a FlushData push whose link-layer retry budget was
// exhausted: the payload arrived poisoned and must not be consumed. The
// home agent contains the error by dropping the peer's (poisoned) copy and
// reverting the writer's line to Modified — so the consumer's next Read
// takes the on-demand invalidation-style fetch path and pulls a clean copy
// from the still-dirty writer. Only meaningful in update mode (the
// invalidation protocol has no pushes to poison).
func (d *Domain) PoisonPush(l mem.LineAddr, from Side) {
	d.poisons++
	writer := d.cacheOf(from)
	peer := d.cacheOf(from.Opposite())
	if writer.Lookup(l) == cache.Shared {
		writer.SetState(l, cache.Modified)
	}
	if peer.Contains(l) {
		peer.SetState(l, cache.Invalid)
	}
	d.poisonedLines[l] = struct{}{}
}

// PoisonedLines returns the number of lines whose last push was poisoned
// and that have not yet been recovered.
func (d *Domain) PoisonedLines() int { return len(d.poisonedLines) }

// FaultCounters returns (retransmitted pushes, poisoned pushes, poisoned
// lines recovered via the on-demand fetch path).
func (d *Domain) FaultCounters() (retransmits, poisons, recovered int64) {
	return d.retransmits, d.poisons, d.poisonRecovered
}

// Seed installs the initial resident copy of a line on side s in Exclusive
// state without link traffic (e.g. parameters pre-loaded into the giant
// cache before training starts, as in Fig 5's initial condition G_S = E).
func (d *Domain) Seed(l mem.LineAddr, s Side) {
	d.cacheOf(s).Insert(l, cache.Exclusive)
	if d.mode == Invalidation {
		d.snoopSet(l, s)
	}
}

// handleEviction routes a capacity eviction from side s's cache through the
// protocol: clean giant-cache lines restore the peer copy to Exclusive
// (Fig 5's eviction rule); dirty giant-cache lines in invalidation mode must
// cross the link to their accelerator-memory home. It returns true when the
// eviction is fully absorbed, false when the caller owns it (a host-DRAM
// writeback).
func (d *Domain) handleEviction(ev cache.Eviction, s Side) bool {
	if !d.addrMap.InGiantCache(ev.Addr) {
		return !ev.Dirty // clean host lines vanish silently
	}
	if d.mode == Invalidation {
		d.snoopClear(ev.Addr, s)
	}
	peer := d.cacheOf(s.Opposite())
	if peer.Lookup(ev.Addr) == cache.Shared {
		peer.SetState(ev.Addr, cache.Exclusive)
	}
	if ev.Dirty && s == CPU && !peer.Contains(ev.Addr) {
		// Invalidation-mode dirty writeback to the accelerator home.
		d.move(Transfer{Line: ev.Addr, From: CPU, To: Accelerator, Msg: MsgData})
	}
	return true
}

// Write performs a store by side `from` to line l and returns the evictions
// the insertion caused in the writer's cache that the caller must write back
// to host DRAM (giant-cache-domain evictions are absorbed by the protocol).
//
// Update mode follows Fig 5 exactly for giant-cache lines:
//
//	writer I -> E (ReadOwn), store E -> M, Go_Flush approval, FlushData
//	pushed to the peer, writer M -> S, peer copy updated in S.
//
// Invalidation mode is stock MESI: peer invalidated, writer holds M, data
// moves later on demand.
func (d *Domain) Write(l mem.LineAddr, from Side) []cache.Eviction {
	writer := d.cacheOf(from)
	peer := d.cacheOf(from.Opposite())
	inDomain := d.addrMap.InGiantCache(l)

	var evs []cache.Eviction
	st := writer.Lookup(l)
	if !st.Valid() {
		// Fig 5 step 1: acquire ownership.
		d.say(MsgReadOwn)
		if ev, evicted := writer.Insert(l, cache.Exclusive); evicted {
			if !d.handleEviction(ev, from) {
				evs = append(evs, ev)
			}
		}
		if d.mode == Invalidation {
			d.snoopSet(l, from)
		}
	}

	if !inDomain || d.mode == Invalidation {
		// Plain MESI: invalidate the peer copy, hold Modified.
		if peer.Contains(l) {
			d.say(MsgInvalidate)
			peer.SetState(l, cache.Invalid)
			if d.mode == Invalidation {
				d.snoopClear(l, from.Opposite())
			}
		}
		writer.SetState(l, cache.Modified)
		if check.Enabled() {
			d.checkLine(l)
		}
		return evs
	}

	// Update protocol, Fig 5 steps 2-3: M, then Go_Flush -> push -> S.
	writer.SetState(l, cache.Modified)
	d.say(MsgGoFlush)
	d.move(Transfer{Line: l, From: from, To: from.Opposite(), Msg: MsgFlushData})
	writer.SetState(l, cache.Shared)
	// A fresh push supersedes any earlier poisoned delivery of this line
	// (the caller re-poisons via PoisonPush if this one failed too).
	delete(d.poisonedLines, l)
	// Peer copy is refreshed and shared. The giant cache always accepts;
	// a smaller CPU cache "simply ignores the update messages" for lines
	// it does not hold (paper §IV-A2) — the payload still lands in host
	// memory via the home agent.
	if from == CPU || peer.Contains(l) {
		if ev, evicted := peer.Insert(l, cache.Shared); evicted {
			// Giant cache is sized for zero capacity misses; a capacity
			// eviction here (or in the CPU peer cache) is routed through
			// the protocol like any other.
			if !d.handleEviction(ev, from.Opposite()) {
				evs = append(evs, ev)
			}
		}
	}
	if check.Enabled() {
		d.checkLine(l)
	}
	return evs
}

// Read performs a load by side `from`. In invalidation mode a miss whose
// peer holds the dirty line triggers the on-demand transfer the paper
// identifies as the critical-path cost of stock CXL (§IV-A2). It returns
// true when the read required an on-demand link crossing.
func (d *Domain) Read(l mem.LineAddr, from Side) bool {
	reader := d.cacheOf(from)
	peer := d.cacheOf(from.Opposite())

	if reader.Contains(l) {
		reader.Touch(l)
		return false
	}

	if peer.Lookup(l) == cache.Modified {
		// On-demand fill from the dirty peer copy. This is also the
		// recovery path for poisoned pushes: the writer still holds M,
		// so the fetch delivers a clean copy.
		if _, ok := d.poisonedLines[l]; ok {
			delete(d.poisonedLines, l)
			d.poisonRecovered++
		}
		d.say(MsgReadShared)
		d.move(Transfer{Line: l, From: from.Opposite(), To: from, Msg: MsgData, OnDemand: true})
		peer.SetState(l, cache.Shared)
		if ev, evicted := reader.Insert(l, cache.Shared); evicted {
			d.handleEviction(ev, from)
		}
		if d.mode == Invalidation {
			d.snoopSet(l, from)
		}
		if check.Enabled() {
			d.checkLine(l)
		}
		return true
	}

	// Clean fill from memory (no CXL critical-path cost modelled for the
	// local memory side).
	st := cache.Exclusive
	if ps := peer.Lookup(l); ps.Valid() {
		st = cache.Shared
		if ps == cache.Exclusive {
			peer.SetState(l, cache.Shared)
		}
	}
	if ev, evicted := reader.Insert(l, st); evicted {
		d.handleEviction(ev, from)
	}
	if d.mode == Invalidation {
		d.snoopSet(l, from)
	}
	if check.Enabled() {
		d.checkLine(l)
	}
	return false
}

// Evict removes side s's copy of line l, applying Fig 5's eviction rule for
// update-mode giant-cache lines: C_S S -> I and the peer's S -> E.
func (d *Domain) Evict(l mem.LineAddr, s Side) {
	c := d.cacheOf(s)
	if !c.Contains(l) {
		return
	}
	c.SetState(l, cache.Invalid)
	if d.mode == Invalidation {
		d.snoopClear(l, s)
	}
	peer := d.cacheOf(s.Opposite())
	if d.addrMap.InGiantCache(l) && peer.Lookup(l) == cache.Shared {
		peer.SetState(l, cache.Exclusive)
	}
	if check.Enabled() {
		d.checkLine(l)
	}
}

// FlushCPU flushes the whole CPU cache — the once-per-iteration flush that
// guarantees all updated parameters were pushed out (paper §IV-A2). Dirty
// non-domain lines are returned for the caller's host-memory writeback
// accounting; domain lines were already pushed by the update protocol and
// transition the peer back to Exclusive.
func (d *Domain) FlushCPU() []cache.Eviction {
	evs := d.cpu.FlushAll()
	var hostWB []cache.Eviction
	for _, ev := range evs {
		if d.addrMap.InGiantCache(ev.Addr) {
			if d.giant.Lookup(ev.Addr) == cache.Shared {
				d.giant.SetState(ev.Addr, cache.Exclusive)
			}
			if d.mode == Update {
				if ev.Dirty {
					// Under the update protocol a dirty giant-domain line
					// at flush time means its push was poisoned (clean
					// pushes leave the writer Shared). Keep ownership so
					// the consumer's on-demand fetch can still recover
					// the only good copy.
					d.cpu.Insert(ev.Addr, cache.Modified)
				}
				continue
			}
			if !ev.Dirty {
				continue
			}
			// Invalidation mode: the dirty line's home is accelerator
			// memory, so the writeback must cross the link now.
			d.move(Transfer{Line: ev.Addr, From: CPU, To: Accelerator, Msg: MsgData})
			continue
		}
		if ev.Dirty {
			hostWB = append(hostWB, ev)
		}
	}
	if d.mode == Invalidation {
		for l, bits := range d.snoop {
			if bits&(1<<uint(CPU)) != 0 {
				d.snoopClear(l, CPU)
			}
		}
	}
	return hostWB
}

// CheckInvariants validates protocol safety properties and returns an error
// describing the first violation, if any:
//
//  1. single-writer: a line Modified on one side is not valid on the other;
//  2. Exclusive means exclusive: an Exclusive line is Invalid on the peer;
//  3. update-mode giant-cache lines are never dirty-shared.
func (d *Domain) CheckInvariants(lines []mem.LineAddr) error {
	for _, l := range lines {
		cs := d.cpu.Lookup(l)
		gs := d.giant.Lookup(l)
		if cs == cache.Modified && gs.Valid() {
			return fmt.Errorf("line %d: CPU=M but accelerator=%v", l, gs)
		}
		if gs == cache.Modified && cs.Valid() {
			return fmt.Errorf("line %d: accelerator=M but CPU=%v", l, cs)
		}
		if cs == cache.Exclusive && gs.Valid() {
			return fmt.Errorf("line %d: CPU=E but accelerator=%v", l, gs)
		}
		if gs == cache.Exclusive && cs.Valid() {
			return fmt.Errorf("line %d: accelerator=E but CPU=%v", l, cs)
		}
	}
	return nil
}
