package coherence

import (
	"fmt"
	"math/bits"

	"teco/internal/mem"
)

// MultiDomain generalizes the coherent domain to N agents and implements
// the paper's fallback rule (§IV-A2): the update protocol is only safe when
// a line has a clear producer/consumer relationship; "for the application
// that does not have a clear producer-consumer relationship (e.g., having
// more than two sharers) or multiple sharers updating the cache line
// concurrently, TECO goes back to using the invalidation protocol and snoop
// filter". The home agent applies the rule per line: a third sharer or a
// second distinct writer demotes the line to invalidation handling, which
// requires a directory (snoop-filter) entry.
type MultiDomain struct {
	n       int
	addrMap *mem.Map
	sink    TransferFunc

	lines map[mem.LineAddr]*dirEntry

	updatePushes int64
	onDemand     int64
	fallbacks    int64
}

// dirEntry is the home agent's per-line state.
type dirEntry struct {
	// sharers is a bitset of agents holding a valid copy.
	sharers uint64
	// writer is the unique producer observed so far (-1: none).
	writer int
	// dirtyAt is the agent holding a Modified copy under invalidation
	// handling (-1: clean).
	dirtyAt int
	// inval marks the line demoted to the invalidation protocol.
	inval bool
}

// NewMultiDomain builds an N-agent domain (2 <= n <= 64).
func NewMultiDomain(n int, addrMap *mem.Map, sink TransferFunc) *MultiDomain {
	if n < 2 || n > 64 {
		panic(fmt.Sprintf("coherence: %d agents", n))
	}
	if addrMap == nil {
		panic("coherence: nil address map")
	}
	if sink == nil {
		sink = func(Transfer) {}
	}
	return &MultiDomain{n: n, addrMap: addrMap, sink: sink, lines: make(map[mem.LineAddr]*dirEntry)}
}

func (d *MultiDomain) entry(l mem.LineAddr) *dirEntry {
	e, ok := d.lines[l]
	if !ok {
		e = &dirEntry{writer: -1, dirtyAt: -1}
		d.lines[l] = e
	}
	return e
}

func (d *MultiDomain) check(agent int) {
	if agent < 0 || agent >= d.n {
		panic(fmt.Sprintf("coherence: agent %d of %d", agent, d.n))
	}
}

// Write performs a store by agent to line l.
func (d *MultiDomain) Write(l mem.LineAddr, agent int) {
	d.check(agent)
	e := d.entry(l)

	if !e.inval {
		if e.writer == -1 {
			e.writer = agent
		} else if e.writer != agent {
			// Second distinct writer: no clear producer. Fall back.
			d.demote(l, e)
		}
	}
	if !e.inval && bits.OnesCount64(e.sharers&^(1<<uint(agent))) > 1 {
		// More than two participants (writer + >1 consumers): fall back.
		d.demote(l, e)
	}

	if e.inval {
		// Invalidation protocol: drop all other copies, hold M.
		e.sharers = 1 << uint(agent)
		e.dirtyAt = agent
		return
	}
	// Update protocol: push the line to every current sharer.
	e.sharers |= 1 << uint(agent)
	for a := 0; a < d.n; a++ {
		if a == agent || e.sharers&(1<<uint(a)) == 0 {
			continue
		}
		d.updatePushes++
		d.sink(Transfer{Line: l, Msg: MsgFlushData})
	}
	e.dirtyAt = -1 // pushed: everyone is clean-shared
}

// Read performs a load by agent. It returns true when the read needed an
// on-demand transfer (critical-path cost).
func (d *MultiDomain) Read(l mem.LineAddr, agent int) bool {
	d.check(agent)
	e := d.entry(l)
	if e.sharers&(1<<uint(agent)) != 0 {
		return false // hit
	}
	onDemand := false
	if e.dirtyAt >= 0 && e.dirtyAt != agent {
		// Fetch the dirty copy: on-demand link crossing.
		d.onDemand++
		onDemand = true
		d.sink(Transfer{Line: l, Msg: MsgData, OnDemand: true})
		e.dirtyAt = -1
	}
	e.sharers |= 1 << uint(agent)
	if !e.inval && bits.OnesCount64(e.sharers) > 2 {
		// Three sharers: no clear producer/consumer pair. Fall back.
		d.demote(l, e)
	}
	return onDemand
}

// demote switches a line to invalidation handling.
func (d *MultiDomain) demote(l mem.LineAddr, e *dirEntry) {
	if e.inval {
		return
	}
	e.inval = true
	d.fallbacks++
}

// Evict removes agent's copy.
func (d *MultiDomain) Evict(l mem.LineAddr, agent int) {
	d.check(agent)
	e, ok := d.lines[l]
	if !ok {
		return
	}
	e.sharers &^= 1 << uint(agent)
	if e.dirtyAt == agent {
		e.dirtyAt = -1 // writeback to home
	}
	if e.sharers == 0 && !e.inval {
		delete(d.lines, l)
	}
}

// Stats returns (update pushes, on-demand fills, lines demoted to
// invalidation).
func (d *MultiDomain) Stats() (pushes, onDemand, fallbacks int64) {
	return d.updatePushes, d.onDemand, d.fallbacks
}

// SnoopEntries counts directory entries that exist because of invalidation
// handling — the snoop-filter cost the update protocol avoids.
func (d *MultiDomain) SnoopEntries() int {
	n := 0
	for _, e := range d.lines {
		if e.inval {
			n++
		}
	}
	return n
}

// UpdateLines counts lines still riding the update protocol.
func (d *MultiDomain) UpdateLines() int {
	n := 0
	for _, e := range d.lines {
		if !e.inval {
			n++
		}
	}
	return n
}

// CheckInvariants validates the multi-agent directory: a dirty line has
// exactly one sharer, and update-mode lines have at most one writer and at
// most two participants.
func (d *MultiDomain) CheckInvariants() error {
	for l, e := range d.lines {
		if e.dirtyAt >= 0 {
			if e.sharers != 1<<uint(e.dirtyAt) {
				return fmt.Errorf("line %d: dirty at %d but sharers %b", l, e.dirtyAt, e.sharers)
			}
		}
		if !e.inval && bits.OnesCount64(e.sharers) > 2 {
			return fmt.Errorf("line %d: update mode with %d sharers", l, bits.OnesCount64(e.sharers))
		}
	}
	return nil
}
