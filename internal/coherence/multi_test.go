package coherence

import (
	"math/rand"
	"testing"

	"teco/internal/mem"
)

func newMulti(t *testing.T, n int) *MultiDomain {
	t.Helper()
	m := mem.NewMap()
	m.Allocate("params", mem.RegionGiantCache, 1<<20)
	return NewMultiDomain(n, m, nil)
}

func TestMultiProducerConsumerStaysUpdate(t *testing.T) {
	d := newMulti(t, 2)
	const line = mem.LineAddr(3)
	// Consumer reads first (holds a copy), then the producer updates it
	// repeatedly: classic CPU->GPU parameter flow.
	d.Read(line, 1)
	for i := 0; i < 100; i++ {
		d.Write(line, 0)
		if onDemand := d.Read(line, 1); onDemand {
			t.Fatal("consumer read must be a hit under the update protocol")
		}
	}
	pushes, onDemand, fallbacks := d.Stats()
	if pushes != 100 {
		t.Fatalf("pushes = %d", pushes)
	}
	if onDemand != 0 || fallbacks != 0 {
		t.Fatalf("onDemand=%d fallbacks=%d", onDemand, fallbacks)
	}
	if d.SnoopEntries() != 0 {
		t.Fatal("no snoop entries for producer/consumer lines")
	}
	if d.UpdateLines() != 1 {
		t.Fatal("line should ride the update protocol")
	}
}

func TestMultiSecondWriterDemotes(t *testing.T) {
	d := newMulti(t, 3)
	const line = mem.LineAddr(7)
	d.Write(line, 0)
	d.Write(line, 1) // concurrent second writer
	_, _, fallbacks := d.Stats()
	if fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", fallbacks)
	}
	if d.SnoopEntries() != 1 {
		t.Fatal("demoted line must occupy the snoop filter")
	}
	// Under invalidation handling the next reader pays an on-demand fill.
	if !d.Read(line, 2) {
		t.Fatal("read after demotion must fetch on demand")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiThirdSharerDemotes(t *testing.T) {
	d := newMulti(t, 4)
	const line = mem.LineAddr(9)
	d.Write(line, 0)
	d.Read(line, 1)
	d.Read(line, 2) // third participant
	_, _, fallbacks := d.Stats()
	if fallbacks != 1 {
		t.Fatalf("three sharers must demote the line (fallbacks=%d)", fallbacks)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiEvictCleansUp(t *testing.T) {
	d := newMulti(t, 2)
	const line = mem.LineAddr(11)
	d.Write(line, 0)
	d.Evict(line, 0)
	if d.UpdateLines() != 0 {
		t.Fatal("fully evicted update-mode line should leave the directory")
	}
	// Evicting an untracked line is a no-op.
	d.Evict(mem.LineAddr(999), 1)
}

func TestMultiWriteAfterDemotionInvalidates(t *testing.T) {
	d := newMulti(t, 3)
	const line = mem.LineAddr(13)
	d.Write(line, 0)
	d.Write(line, 1)
	d.Read(line, 2)
	d.Write(line, 0)
	// Only the writer holds a copy now.
	if onDemand := d.Read(line, 2); !onDemand {
		t.Fatal("post-invalidation read must be on-demand")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiBounds(t *testing.T) {
	for _, bad := range []int{0, 1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d should panic", bad)
				}
			}()
			newMulti(t, bad)
		}()
	}
	d := newMulti(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("bad agent should panic")
		}
	}()
	d.Write(0, 5)
}

// TestMultiRandomWalkInvariants drives random traffic from many agents and
// checks directory invariants continuously.
func TestMultiRandomWalkInvariants(t *testing.T) {
	d := newMulti(t, 8)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50000; i++ {
		l := mem.LineAddr(rng.Intn(64))
		a := rng.Intn(8)
		switch rng.Intn(3) {
		case 0:
			d.Write(l, a)
		case 1:
			d.Read(l, a)
		case 2:
			d.Evict(l, a)
		}
		if i%1000 == 0 {
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With 8 agents hammering 64 lines, most lines must have fallen back
	// — the paper's point that the update protocol targets clear
	// producer/consumer patterns.
	if d.SnoopEntries() < 32 {
		t.Fatalf("only %d demoted lines; expected most of 64", d.SnoopEntries())
	}
}
