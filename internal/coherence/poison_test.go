package coherence

import (
	"testing"

	"teco/internal/cache"
	"teco/internal/mem"
)

func poisonDomain(t *testing.T) (*Domain, mem.LineAddr, *[]Transfer) {
	t.Helper()
	amap := mem.NewMap()
	region := amap.Allocate("p", mem.RegionGiantCache, 1<<20)
	var log []Transfer
	d := NewDomain(Config{
		Mode:       Update,
		AddrMap:    amap,
		OnTransfer: func(tr Transfer) { log = append(log, tr) },
	})
	l := region.Base.Line()
	d.Seed(l, Accelerator)
	return d, l, &log
}

// TestPoisonPushFallsBackToOnDemandFetch: a poisoned FlushData push must
// not leave the consumer with a poisoned copy; the writer reverts to
// Modified and the consumer's next read takes the on-demand fetch path.
func TestPoisonPushFallsBackToOnDemandFetch(t *testing.T) {
	d, l, log := poisonDomain(t)

	d.Write(l, CPU) // update push CPU -> accelerator
	d.PoisonPush(l, CPU)

	if got := d.CPUCache().Lookup(l); got != cache.Modified {
		t.Fatalf("writer state after poison = %v, want Modified", got)
	}
	if d.GiantCache().Contains(l) {
		t.Fatal("peer kept a poisoned copy")
	}
	if d.PoisonedLines() != 1 {
		t.Fatalf("poisoned lines = %d, want 1", d.PoisonedLines())
	}
	if err := d.CheckInvariants([]mem.LineAddr{l}); err != nil {
		t.Fatalf("invariants violated after poison: %v", err)
	}

	// Consumer read recovers on demand.
	before := len(*log)
	if !d.Read(l, Accelerator) {
		t.Fatal("post-poison read was not an on-demand fetch")
	}
	if tr := (*log)[before]; tr.Msg != MsgData || !tr.OnDemand || tr.From != CPU {
		t.Fatalf("recovery transfer = %+v, want on-demand MsgData from CPU", tr)
	}
	re, po, rec := d.FaultCounters()
	if re != 0 || po != 1 || rec != 1 {
		t.Fatalf("fault counters = (%d,%d,%d), want (0,1,1)", re, po, rec)
	}
	if d.PoisonedLines() != 0 {
		t.Fatal("recovered line still marked poisoned")
	}
	if err := d.CheckInvariants([]mem.LineAddr{l}); err != nil {
		t.Fatalf("invariants violated after recovery: %v", err)
	}
}

// TestRepushClearsPoison: a successful re-push of the same line supersedes
// the poisoned delivery without an on-demand fetch.
func TestRepushClearsPoison(t *testing.T) {
	d, l, _ := poisonDomain(t)
	d.Write(l, CPU)
	d.PoisonPush(l, CPU)
	d.Write(l, CPU) // retransmitted update push succeeds this time
	if d.PoisonedLines() != 0 {
		t.Fatal("successful re-push left the line marked poisoned")
	}
	if d.Read(l, Accelerator) {
		t.Fatal("read after clean re-push should hit the pushed copy")
	}
}

// TestNoteRetransmitIsStatsOnly: retransmits accumulate without touching
// protocol state.
func TestNoteRetransmitIsStatsOnly(t *testing.T) {
	d, l, _ := poisonDomain(t)
	d.Write(l, CPU)
	cpuState := d.CPUCache().Lookup(l)
	d.NoteRetransmit(3)
	d.NoteRetransmit(2)
	re, po, rec := d.FaultCounters()
	if re != 5 || po != 0 || rec != 0 {
		t.Fatalf("fault counters = (%d,%d,%d), want (5,0,0)", re, po, rec)
	}
	if d.CPUCache().Lookup(l) != cpuState {
		t.Fatal("NoteRetransmit changed protocol state")
	}
}
