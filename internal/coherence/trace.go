package coherence

// TransferRing is a preallocated, fixed-capacity trace buffer for link
// crossings: its Record method is a TransferFunc, so it plugs straight into
// Config.OnTransfer (or chains in front of another sink) and never
// allocates after construction — the protocol replay over a multi-gigabyte
// tensor stays allocation-free while still keeping the most recent
// crossings inspectable for debugging and tests.
type TransferRing struct {
	buf   []Transfer
	next  int
	total int64
}

// NewTransferRing preallocates a ring holding the last n transfers (n >= 1).
func NewTransferRing(n int) *TransferRing {
	if n < 1 {
		n = 1
	}
	return &TransferRing{buf: make([]Transfer, 0, n)}
}

// Record stores one transfer, overwriting the oldest once the ring is full.
// It is a TransferFunc.
func (r *TransferRing) Record(tr Transfer) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, tr)
	} else {
		r.buf[r.next] = tr
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Chain returns a TransferFunc that records into the ring and then forwards
// to sink (which may be nil).
func (r *TransferRing) Chain(sink TransferFunc) TransferFunc {
	if sink == nil {
		return r.Record
	}
	return func(tr Transfer) {
		r.Record(tr)
		sink(tr)
	}
}

// Total returns how many transfers were recorded over the ring's lifetime.
func (r *TransferRing) Total() int64 { return r.total }

// Len returns how many transfers are currently retained (<= capacity).
func (r *TransferRing) Len() int { return len(r.buf) }

// At returns the i-th retained transfer, oldest first; i must be < Len().
func (r *TransferRing) At(i int) Transfer {
	if len(r.buf) < cap(r.buf) {
		return r.buf[i]
	}
	return r.buf[(r.next+i)%cap(r.buf)]
}

// AppendTo appends the retained transfers, oldest first, and returns the
// extended slice. Passing a slice with spare capacity keeps this
// allocation-free.
func (r *TransferRing) AppendTo(dst []Transfer) []Transfer {
	for i := 0; i < r.Len(); i++ {
		dst = append(dst, r.At(i))
	}
	return dst
}

// Reset empties the ring, keeping its preallocated storage.
func (r *TransferRing) Reset() {
	r.buf = r.buf[:0]
	r.next = 0
	r.total = 0
}
