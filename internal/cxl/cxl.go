// Package cxl models the CXL.cache transport the paper builds on: a serial
// link running at 94.3% of PCIe 3.0 x16 bandwidth, a CXL controller with a
// 128-entry pending queue, packet framing with the reserved header bit that
// flags DBA-aggregated payloads, and the CXLFENCE completion primitive
// (paper §IV-A2 and §VIII-A).
package cxl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"teco/internal/conformance/check"
	"teco/internal/mem"
	"teco/internal/sim"
)

// Link-speed constants from the paper's experimental setup (§VIII-A).
const (
	// PCIe3x16BytesPerSecond is the emulated PCIe 3.0 x16 bandwidth.
	PCIe3x16BytesPerSecond = 16e9
	// Efficiency is the fraction of raw PCIe bandwidth CXL sustains
	// ("about 90%", measured as 94.3% in the paper's references).
	Efficiency = 0.943
	// DefaultQueueCap is the CXL controller's pending-queue depth.
	DefaultQueueCap = 128
	// MsgBytes is the link occupancy of a data-less protocol message
	// (invalidation, Go_Flush, ReadOwn): one header-sized slot.
	MsgBytes = 16
)

// EffectiveBandwidth returns the default modelled link bandwidth in B/s.
func EffectiveBandwidth() float64 { return PCIe3x16BytesPerSecond * Efficiency }

// Link is the timed serial-link model. All payloads serialize FIFO through
// the link ("the updated cache lines ... are going through the link one
// after another in a stream manner", §VIII-A). The pending queue bounds how
// far the producer may run ahead of the link.
type Link struct {
	eng            *sim.Engine
	bytesPerSecond float64
	queueCap       int

	freeAt sim.Time
	// finishRing holds the completion times of the most recent queueCap
	// packets; a new packet may only be admitted once the oldest of them
	// has left the queue.
	finishRing []sim.Time
	ringPos    int

	bytesSent int64
	packets   int64
	busy      sim.Time
	// stall accumulates producer wait time caused by a full pending queue.
	stall sim.Time

	// faults is the attached fault model; nil (or a disabled config)
	// leaves the send path bit-identical to the fault-free link.
	faults *FaultModel
	// fstats accumulates retry/replay/poison accounting when faults are
	// injected.
	fstats LinkFaultStats
	// cleanFreeAt tracks where the link drain would be absent injected
	// faults (for exposed-retry-latency accounting).
	cleanFreeAt sim.Time
}

// NewLink builds a link bound to eng. bytesPerSecond <= 0 selects the
// default effective CXL bandwidth; queueCap <= 0 selects DefaultQueueCap.
func NewLink(eng *sim.Engine, bytesPerSecond float64, queueCap int) *Link {
	if bytesPerSecond <= 0 {
		bytesPerSecond = EffectiveBandwidth()
	}
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	return &Link{
		eng:            eng,
		bytesPerSecond: bytesPerSecond,
		queueCap:       queueCap,
		finishRing:     make([]sim.Time, queueCap),
	}
}

// BytesPerSecond returns the modelled link bandwidth.
func (l *Link) BytesPerSecond() float64 { return l.bytesPerSecond }

// ServiceTime returns the serialization time of a payload of n bytes plus a
// fixed extra latency (e.g. the 1 ns Aggregator delay).
func (l *Link) ServiceTime(n int, extra sim.Time) sim.Time {
	return sim.DurationForBytes(int64(n), l.bytesPerSecond) + extra
}

// InjectFaults attaches a fault model built from cfg and returns it. A
// disabled config (zero error rate, no stalls, no degradation) attaches
// nothing and the link stays bit-identical to the fault-free model. A
// persistent BandwidthDegrade factor in (0,1) immediately retrains the link
// to the degraded rate. An invalid config is returned as an error and
// leaves the link untouched.
func (l *Link) InjectFaults(cfg FaultConfig) (*FaultModel, error) {
	if !cfg.Enabled() {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		l.faults = nil
		return nil, nil
	}
	fm, err := NewFaultModel(cfg)
	if err != nil {
		return nil, err
	}
	l.faults = fm
	if f := cfg.BandwidthDegrade; f > 0 && f < 1 {
		l.bytesPerSecond *= f
	}
	return l.faults, nil
}

// Faults returns the attached fault model (nil on a pristine link).
func (l *Link) Faults() *FaultModel { return l.faults }

// FaultStats returns the link's cumulative fault/recovery accounting.
func (l *Link) FaultStats() LinkFaultStats { return l.fstats }

// Send enqueues a packet of n payload bytes that becomes ready at time
// `ready` (producer-side timestamp; may be in the simulated future). extra
// is added to the serialization time (aggregation logic delay). It returns
// the admission time (when a queue slot was available — the producer is
// back-pressured until then) and the completion time (when the last byte is
// on the far side).
func (l *Link) Send(ready sim.Time, n int, extra sim.Time) (admit, done sim.Time) {
	r := l.SendFlow(ready, n, extra, 0, false)
	return r.Admit, r.Done
}

// SendFlow enqueues a flow of n payload bytes framed as wire packets of
// pktBytes each (pktBytes <= 0 treats the whole flow as one packet), and
// runs the link-layer retry/replay engine over it when a fault model is
// attached: each retransmit round draws the corrupted-packet count, charges
// a NAK round trip plus exponential backoff plus the resend serialization
// (and, for aggregated flows, the per-packet merge-header round trip), and
// packets still failing after the retry budget are delivered poisoned.
// On a pristine link the result is identical to Send.
func (l *Link) SendFlow(ready sim.Time, n int, extra sim.Time, pktBytes int, aggregated bool) FlowResult {
	admit, start := l.admitRun(ready)
	svc := l.ServiceTime(n, extra)
	done := start + svc
	res := FlowResult{Admit: admit, Packets: 1}
	if pktBytes > 0 {
		res.Packets = (int64(n) + int64(pktBytes) - 1) / int64(pktBytes)
		if res.Packets < 1 {
			res.Packets = 1
		}
	} else {
		pktBytes = n
	}

	if f := l.faults; f != nil {
		cfg := f.cfg
		// Controller-queue stall: serialization cannot start until the
		// controller recovers.
		if f.stallHit() {
			res.Stalled = cfg.StallTime
			l.fstats.Stalls++
			l.fstats.StallTime += cfg.StallTime
			start += cfg.StallTime
			done = start + svc
		}
		cleanDone := done
		pErr := f.PacketErrorProb(pktBytes)
		spread := f.burstSpread(pktBytes)
		nak := 2 * l.ServiceTime(MsgBytes, 0)
		outstanding := res.Packets
		for round := 1; outstanding > 0; round++ {
			corrupted := f.draw(outstanding, pErr) * spread
			if corrupted > outstanding {
				corrupted = outstanding
			}
			if corrupted == 0 {
				break
			}
			if round > cfg.RetryBudget {
				// Replay exhausted: deliver poisoned instead of
				// silently handing over corrupt data.
				res.Poisoned = corrupted
				l.fstats.Poisoned += corrupted
				break
			}
			res.Retries += corrupted
			l.fstats.Retries += corrupted
			replayBytes := corrupted * int64(pktBytes)
			if replayBytes > int64(n) {
				replayBytes = int64(n)
			}
			res.ReplayedBytes += replayBytes
			l.fstats.ReplayedBytes += replayBytes
			if corrupted > l.fstats.ReplayHighWater {
				l.fstats.ReplayHighWater = corrupted
			}
			// A round bigger than the replay buffer drains in waves,
			// each wave paying another NAK round trip.
			waves := (corrupted + int64(cfg.ReplaySlots) - 1) / int64(cfg.ReplaySlots)
			if waves < 1 {
				waves = 1
			}
			shift := uint(round - 1)
			if shift > 16 {
				shift = 16
			}
			resend := l.ServiceTime(int(replayBytes), 0)
			penalty := cfg.NakDelay + sim.Time(waves-1)*nak + (cfg.RetryBackoff << shift) + resend
			if aggregated {
				// Every retried aggregated packet re-sends the merge
				// header round trip: the Disaggregator refetches the
				// stale line to redo the merge.
				penalty += sim.Time(corrupted) * cfg.MergeRetryDelay
			}
			done += penalty
			l.busy += resend
			outstanding = corrupted
		}
		l.fstats.RetryTime += done - cleanDone
		res.CleanDone = cleanDone
		// Track the fault-free drain point for exposure accounting: the
		// clean link would have started no later than the faulty one.
		cs := admit
		if l.cleanFreeAt > cs {
			cs = l.cleanFreeAt
		}
		l.cleanFreeAt = cs + svc
	} else {
		res.CleanDone = done
		l.cleanFreeAt = done
	}

	res.Done = done
	l.commitRun(done, svc, n)
	if check.Enabled() {
		l.checkFlow(ready, n, pktBytes, res)
	}
	return res
}

// checkFlow asserts the per-flow conservation laws the retry/replay engine
// must preserve: every framed packet is either delivered (possibly after
// retries) or poisoned, replayed bytes never exceed the retransmit count
// times the frame size, and fault handling can only delay completion, never
// rewind it past the fault-free schedule.
func (l *Link) checkFlow(ready sim.Time, n, pktBytes int, res FlowResult) {
	check.Check(
		func() error {
			if res.Poisoned < 0 || res.Poisoned > res.Packets {
				return fmt.Errorf("cxl: flow of %d packets poisoned %d (delivery conservation)", res.Packets, res.Poisoned)
			}
			return nil
		},
		func() error {
			if pktBytes <= 0 {
				pktBytes = n
			}
			if res.Retries < 0 || res.ReplayedBytes < 0 || res.ReplayedBytes > res.Retries*int64(pktBytes) {
				return fmt.Errorf("cxl: %dB replayed for %d retries of %dB packets (replay conservation)",
					res.ReplayedBytes, res.Retries, pktBytes)
			}
			return nil
		},
		func() error {
			if res.Admit < ready {
				return fmt.Errorf("cxl: flow admitted at %v before ready %v", res.Admit, ready)
			}
			if res.Done < res.CleanDone {
				return fmt.Errorf("cxl: faulted completion %v before fault-free %v", res.Done, res.CleanDone)
			}
			return nil
		},
		l.CheckInvariants,
	)
}

// CheckInvariants validates the link's cumulative accounting and returns
// the first violation, if any: byte/packet/fault counters are non-negative,
// no recorded completion lies beyond the link's drain point, and the
// fault-free drain point never trails a retransmit-delayed one.
func (l *Link) CheckInvariants() error {
	if l.bytesSent < 0 || l.packets < 0 || l.busy < 0 || l.stall < 0 {
		return fmt.Errorf("cxl: negative link accounting (bytes=%d packets=%d busy=%v stall=%v)",
			l.bytesSent, l.packets, l.busy, l.stall)
	}
	f := l.fstats
	if f.Retries < 0 || f.ReplayedBytes < 0 || f.Poisoned < 0 || f.Stalls < 0 ||
		f.StallTime < 0 || f.RetryTime < 0 {
		return fmt.Errorf("cxl: negative fault accounting %+v", f)
	}
	if l.cleanFreeAt > l.freeAt {
		return fmt.Errorf("cxl: fault-free drain %v beyond drain %v", l.cleanFreeAt, l.freeAt)
	}
	for i, t := range l.finishRing {
		if t > l.freeAt {
			return fmt.Errorf("cxl: ring slot %d completion %v beyond drain %v", i, t, l.freeAt)
		}
	}
	return nil
}

// admitRun applies pending-queue admission for one run: the producer is
// back-pressured until the oldest of the last queueCap completions has
// drained, and serialization cannot start before the link is free. Both the
// coalesced closed-form path (SendFlow) and the per-line stream simulation
// share this, which is one half of their bit-identity.
func (l *Link) admitRun(ready sim.Time) (admit, start sim.Time) {
	oldest := l.finishRing[l.ringPos]
	admit = ready
	if oldest > admit {
		admit = oldest
		l.stall += oldest - ready
	}
	start = admit
	if l.freeAt > start {
		start = l.freeAt
	}
	return admit, start
}

// commitRun records one completed run in the link state — the other half of
// the coalesced/per-line bit-identity: regardless of how `done` was derived
// (closed form or the last line event), the link advances identically.
func (l *Link) commitRun(done, svc sim.Time, n int) {
	l.freeAt = done
	l.busy += svc
	l.finishRing[l.ringPos] = done
	l.ringPos = (l.ringPos + 1) % l.queueCap
	l.bytesSent += int64(n)
	l.packets++
}

// SendMsg enqueues a data-less protocol message.
func (l *Link) SendMsg(ready sim.Time) (admit, done sim.Time) {
	return l.Send(ready, MsgBytes, 0)
}

// Fence returns the time at which all traffic enqueued so far has completed,
// but no earlier than `ready`. This is CXLFENCE: it "guarantees the CXL
// coherence traffic by checking the status of CXL controller and home
// agent" (paper §IV-A2).
func (l *Link) Fence(ready sim.Time) sim.Time {
	if l.freeAt > ready {
		return l.freeAt
	}
	return ready
}

// FenceClean is Fence computed against the fault-free drain point: the time
// all traffic would have completed had no fault been injected. The
// difference Fence−FenceClean is the retry latency exposed to a producer
// fencing at `ready`.
func (l *Link) FenceClean(ready sim.Time) sim.Time {
	if l.cleanFreeAt > ready {
		return l.cleanFreeAt
	}
	return ready
}

// Drained returns the time the link finishes all enqueued traffic.
func (l *Link) Drained() sim.Time { return l.freeAt }

// Stats returns (payload bytes sent, packets, cumulative busy time,
// cumulative producer stall caused by the pending queue).
func (l *Link) Stats() (bytes int64, packets int64, busy, stall sim.Time) {
	return l.bytesSent, l.packets, l.busy, l.stall
}

// Reset clears counters and queue state (a new training run on the same
// hardware). Fault and retry counters are cleared alongside the byte and
// stall accounting; the attached fault model (and any degraded bandwidth)
// persists — the hardware is still the same lossy link.
func (l *Link) Reset() {
	l.freeAt = 0
	l.cleanFreeAt = 0
	l.bytesSent, l.packets = 0, 0
	l.busy, l.stall = 0, 0
	l.fstats = LinkFaultStats{}
	for i := range l.finishRing {
		l.finishRing[i] = 0
	}
	l.ringPos = 0
}

// ---------------------------------------------------------------------------
// Packet framing.

// headerSize is the encoded packet header: 8 bytes carrying the line
// address, the aggregation flag (one of the "at least six unused bits" the
// paper repurposes, §V-B), and the dirty-byte length.
const headerSize = 8

// Flags inside the header's top byte.
const (
	flagAggregated = 1 << 7
)

// Packet is one CXL.cache data packet: a 64-byte full cache line, or an
// aggregated payload carrying only the dirty bytes of each 4-byte word.
type Packet struct {
	Addr mem.LineAddr
	// Aggregated marks a DBA payload (header flag bit set).
	Aggregated bool
	// DirtyBytes is the per-word dirty length (1..4) when Aggregated.
	DirtyBytes uint8
	// Payload is LineSize bytes when !Aggregated, or
	// LineSize/4*DirtyBytes bytes when Aggregated.
	Payload []byte
}

// PayloadLen returns the expected payload length for the packet's flags.
func (p *Packet) PayloadLen() int {
	if !p.Aggregated {
		return mem.LineSize
	}
	return mem.LineSize / 4 * int(p.DirtyBytes)
}

// WireBytes returns the total on-wire size (header + payload).
func (p *Packet) WireBytes() int { return headerSize + p.PayloadLen() }

// WirePacketBytes returns the on-wire packet size (header + payload) for a
// full-line packet (dirtyBytes <= 0) or a DBA-aggregated packet carrying
// dirtyBytes per 4-byte word — the framing granularity the link-layer
// retry/replay engine retransmits at.
func WirePacketBytes(dirtyBytes int) int {
	if dirtyBytes <= 0 {
		return headerSize + mem.LineSize
	}
	return headerSize + mem.LineSize/4*dirtyBytes
}

// ErrPayloadMismatch reports a packet whose payload length does not match
// its header flags.
var ErrPayloadMismatch = errors.New("cxl: payload length does not match flags")

// Encode serializes the packet. A payload length inconsistent with the
// header flags is a caller error reported as ErrPayloadMismatch.
func (p *Packet) Encode() ([]byte, error) {
	return p.AppendEncode(nil)
}

// AppendEncode serializes the packet into dst's spare capacity (growing it
// only when needed) and returns the extended slice — the allocation-free
// form the functional replay path uses to reuse one flit buffer across
// millions of lines.
func (p *Packet) AppendEncode(dst []byte) ([]byte, error) {
	if len(p.Payload) != p.PayloadLen() {
		return nil, fmt.Errorf("%w: payload %dB, want %dB", ErrPayloadMismatch, len(p.Payload), p.PayloadLen())
	}
	base := len(dst)
	var hdr [headerSize]byte
	// 48-bit line address in the low 6 bytes, flags+dirty in byte 7.
	binary.LittleEndian.PutUint64(hdr[:], uint64(p.Addr)&((1<<48)-1))
	var fl byte
	if p.Aggregated {
		fl = flagAggregated | (p.DirtyBytes & 0x7)
	}
	hdr[7] = fl
	dst = append(dst, hdr[:]...)
	dst = append(dst, p.Payload...)
	return dst[:base+headerSize+len(p.Payload)], nil
}

// ErrShortPacket reports a truncated packet buffer.
var ErrShortPacket = errors.New("cxl: short packet")

// Decode parses a packet from buf.
func Decode(buf []byte) (Packet, error) {
	var p Packet
	if err := DecodeInto(&p, buf); err != nil {
		return Packet{}, err
	}
	return p, nil
}

// DecodeInto parses a packet from buf into p, reusing p.Payload's capacity
// when it suffices so a receive loop decodes without per-packet allocation.
// On error p is left zeroed.
func DecodeInto(p *Packet, buf []byte) error {
	payload := p.Payload[:0]
	*p = Packet{}
	if len(buf) < headerSize {
		return ErrShortPacket
	}
	p.Addr = mem.LineAddr(binary.LittleEndian.Uint64(buf[:8]) & ((1 << 48) - 1))
	fl := buf[7]
	if fl&flagAggregated != 0 {
		p.Aggregated = true
		p.DirtyBytes = fl & 0x7
		if p.DirtyBytes == 0 || p.DirtyBytes > 4 {
			*p = Packet{}
			return fmt.Errorf("cxl: invalid dirty-byte length %d", p.DirtyBytes)
		}
	}
	want := p.PayloadLen()
	if len(buf) < headerSize+want {
		*p = Packet{}
		return ErrShortPacket
	}
	p.Payload = append(payload, buf[headerSize:headerSize+want]...)
	return nil
}
