// Package cxl models the CXL.cache transport the paper builds on: a serial
// link running at 94.3% of PCIe 3.0 x16 bandwidth, a CXL controller with a
// 128-entry pending queue, packet framing with the reserved header bit that
// flags DBA-aggregated payloads, and the CXLFENCE completion primitive
// (paper §IV-A2 and §VIII-A).
package cxl

import (
	"encoding/binary"
	"errors"
	"fmt"

	"teco/internal/mem"
	"teco/internal/sim"
)

// Link-speed constants from the paper's experimental setup (§VIII-A).
const (
	// PCIe3x16BytesPerSecond is the emulated PCIe 3.0 x16 bandwidth.
	PCIe3x16BytesPerSecond = 16e9
	// Efficiency is the fraction of raw PCIe bandwidth CXL sustains
	// ("about 90%", measured as 94.3% in the paper's references).
	Efficiency = 0.943
	// DefaultQueueCap is the CXL controller's pending-queue depth.
	DefaultQueueCap = 128
	// MsgBytes is the link occupancy of a data-less protocol message
	// (invalidation, Go_Flush, ReadOwn): one header-sized slot.
	MsgBytes = 16
)

// EffectiveBandwidth returns the default modelled link bandwidth in B/s.
func EffectiveBandwidth() float64 { return PCIe3x16BytesPerSecond * Efficiency }

// Link is the timed serial-link model. All payloads serialize FIFO through
// the link ("the updated cache lines ... are going through the link one
// after another in a stream manner", §VIII-A). The pending queue bounds how
// far the producer may run ahead of the link.
type Link struct {
	eng            *sim.Engine
	bytesPerSecond float64
	queueCap       int

	freeAt sim.Time
	// finishRing holds the completion times of the most recent queueCap
	// packets; a new packet may only be admitted once the oldest of them
	// has left the queue.
	finishRing []sim.Time
	ringPos    int

	bytesSent int64
	packets   int64
	busy      sim.Time
	// stall accumulates producer wait time caused by a full pending queue.
	stall sim.Time
}

// NewLink builds a link bound to eng. bytesPerSecond <= 0 selects the
// default effective CXL bandwidth; queueCap <= 0 selects DefaultQueueCap.
func NewLink(eng *sim.Engine, bytesPerSecond float64, queueCap int) *Link {
	if bytesPerSecond <= 0 {
		bytesPerSecond = EffectiveBandwidth()
	}
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	return &Link{
		eng:            eng,
		bytesPerSecond: bytesPerSecond,
		queueCap:       queueCap,
		finishRing:     make([]sim.Time, queueCap),
	}
}

// BytesPerSecond returns the modelled link bandwidth.
func (l *Link) BytesPerSecond() float64 { return l.bytesPerSecond }

// ServiceTime returns the serialization time of a payload of n bytes plus a
// fixed extra latency (e.g. the 1 ns Aggregator delay).
func (l *Link) ServiceTime(n int, extra sim.Time) sim.Time {
	return sim.DurationForBytes(int64(n), l.bytesPerSecond) + extra
}

// Send enqueues a packet of n payload bytes that becomes ready at time
// `ready` (producer-side timestamp; may be in the simulated future). extra
// is added to the serialization time (aggregation logic delay). It returns
// the admission time (when a queue slot was available — the producer is
// back-pressured until then) and the completion time (when the last byte is
// on the far side).
func (l *Link) Send(ready sim.Time, n int, extra sim.Time) (admit, done sim.Time) {
	oldest := l.finishRing[l.ringPos]
	admit = ready
	if oldest > admit {
		admit = oldest
		l.stall += oldest - ready
	}
	start := admit
	if l.freeAt > start {
		start = l.freeAt
	}
	svc := l.ServiceTime(n, extra)
	done = start + svc
	l.freeAt = done
	l.busy += svc
	l.finishRing[l.ringPos] = done
	l.ringPos = (l.ringPos + 1) % l.queueCap
	l.bytesSent += int64(n)
	l.packets++
	return admit, done
}

// SendMsg enqueues a data-less protocol message.
func (l *Link) SendMsg(ready sim.Time) (admit, done sim.Time) {
	return l.Send(ready, MsgBytes, 0)
}

// Fence returns the time at which all traffic enqueued so far has completed,
// but no earlier than `ready`. This is CXLFENCE: it "guarantees the CXL
// coherence traffic by checking the status of CXL controller and home
// agent" (paper §IV-A2).
func (l *Link) Fence(ready sim.Time) sim.Time {
	if l.freeAt > ready {
		return l.freeAt
	}
	return ready
}

// Drained returns the time the link finishes all enqueued traffic.
func (l *Link) Drained() sim.Time { return l.freeAt }

// Stats returns (payload bytes sent, packets, cumulative busy time,
// cumulative producer stall caused by the pending queue).
func (l *Link) Stats() (bytes int64, packets int64, busy, stall sim.Time) {
	return l.bytesSent, l.packets, l.busy, l.stall
}

// Reset clears counters and queue state (a new training run on the same
// hardware).
func (l *Link) Reset() {
	l.freeAt = 0
	l.bytesSent, l.packets = 0, 0
	l.busy, l.stall = 0, 0
	for i := range l.finishRing {
		l.finishRing[i] = 0
	}
	l.ringPos = 0
}

// ---------------------------------------------------------------------------
// Packet framing.

// headerSize is the encoded packet header: 8 bytes carrying the line
// address, the aggregation flag (one of the "at least six unused bits" the
// paper repurposes, §V-B), and the dirty-byte length.
const headerSize = 8

// Flags inside the header's top byte.
const (
	flagAggregated = 1 << 7
)

// Packet is one CXL.cache data packet: a 64-byte full cache line, or an
// aggregated payload carrying only the dirty bytes of each 4-byte word.
type Packet struct {
	Addr mem.LineAddr
	// Aggregated marks a DBA payload (header flag bit set).
	Aggregated bool
	// DirtyBytes is the per-word dirty length (1..4) when Aggregated.
	DirtyBytes uint8
	// Payload is LineSize bytes when !Aggregated, or
	// LineSize/4*DirtyBytes bytes when Aggregated.
	Payload []byte
}

// PayloadLen returns the expected payload length for the packet's flags.
func (p *Packet) PayloadLen() int {
	if !p.Aggregated {
		return mem.LineSize
	}
	return mem.LineSize / 4 * int(p.DirtyBytes)
}

// WireBytes returns the total on-wire size (header + payload).
func (p *Packet) WireBytes() int { return headerSize + p.PayloadLen() }

// Encode serializes the packet. It panics when the payload length does not
// match the flags — always a construction bug.
func (p *Packet) Encode() []byte {
	if len(p.Payload) != p.PayloadLen() {
		panic(fmt.Sprintf("cxl: payload %dB does not match flags (want %dB)", len(p.Payload), p.PayloadLen()))
	}
	buf := make([]byte, headerSize+len(p.Payload))
	// 48-bit line address in the low 6 bytes, flags+dirty in byte 7.
	binary.LittleEndian.PutUint64(buf, uint64(p.Addr)&((1<<48)-1))
	var fl byte
	if p.Aggregated {
		fl = flagAggregated | (p.DirtyBytes & 0x7)
	}
	buf[7] = fl
	copy(buf[headerSize:], p.Payload)
	return buf
}

// ErrShortPacket reports a truncated packet buffer.
var ErrShortPacket = errors.New("cxl: short packet")

// Decode parses a packet from buf.
func Decode(buf []byte) (Packet, error) {
	if len(buf) < headerSize {
		return Packet{}, ErrShortPacket
	}
	var p Packet
	p.Addr = mem.LineAddr(binary.LittleEndian.Uint64(buf[:8]) & ((1 << 48) - 1))
	fl := buf[7]
	if fl&flagAggregated != 0 {
		p.Aggregated = true
		p.DirtyBytes = fl & 0x7
		if p.DirtyBytes == 0 || p.DirtyBytes > 4 {
			return Packet{}, fmt.Errorf("cxl: invalid dirty-byte length %d", p.DirtyBytes)
		}
	}
	want := p.PayloadLen()
	if len(buf) < headerSize+want {
		return Packet{}, ErrShortPacket
	}
	p.Payload = make([]byte, want)
	copy(p.Payload, buf[headerSize:headerSize+want])
	return p, nil
}
