package cxl

import (
	"encoding/binary"
	"errors"
)

// CXL flits carry a 2-byte CRC (the 68-byte flit = 64 payload + 2 header +
// 2 CRC). This file provides the data-integrity half of the retry/replay
// engine: a CRC-16 over the packet wire image, so a corrupted frame is
// *detected* and NAKed instead of being decoded into wrong data.

// crcTable is the byte-at-a-time lookup table for CRC-16/CCITT-FALSE. The
// checkpoint subsystem runs this CRC over multi-megabyte tensor snapshots
// every training step, so the bitwise loop is folded into a table once.
var crcTable = func() (t [256]uint16) {
	for b := 0; b < 256; b++ {
		crc := uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[b] = crc
	}
	return
}()

// CRC16 computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over p —
// the polynomial family CXL's link layer uses for flit protection.
func CRC16(p []byte) uint16 {
	return UpdateCRC16(0xFFFF, p)
}

// UpdateCRC16 continues a CRC-16/CCITT-FALSE computation over p from a
// previous state (start from 0xFFFF), so large tensors can be checksummed
// in chunks without concatenating their bytes.
func UpdateCRC16(crc uint16, p []byte) uint16 {
	for _, b := range p {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}

// ErrCRC reports a framed packet whose CRC check failed — the condition
// that consumes a replay-buffer slot and triggers NAK + retransmit.
var ErrCRC = errors.New("cxl: CRC mismatch")

// EncodeFramed serializes the packet with a trailing 2-byte CRC over the
// wire image, as the link layer would frame it into CRC-protected flits.
func (p *Packet) EncodeFramed() ([]byte, error) {
	wire, err := p.Encode()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(wire)+2)
	copy(out, wire)
	binary.LittleEndian.PutUint16(out[len(wire):], CRC16(wire))
	return out, nil
}

// DecodeFramed verifies the trailing CRC and decodes the packet. A CRC
// failure returns ErrCRC: the receiver must NAK, never deliver the data.
func DecodeFramed(buf []byte) (Packet, error) {
	if len(buf) < 2 {
		return Packet{}, ErrShortPacket
	}
	body, tail := buf[:len(buf)-2], buf[len(buf)-2:]
	if CRC16(body) != binary.LittleEndian.Uint16(tail) {
		return Packet{}, ErrCRC
	}
	return Decode(body)
}
