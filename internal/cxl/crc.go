package cxl

import (
	"encoding/binary"
	"errors"
)

// CXL flits carry a 2-byte CRC (the 68-byte flit = 64 payload + 2 header +
// 2 CRC). This file provides the data-integrity half of the retry/replay
// engine: a CRC-16 over the packet wire image, so a corrupted frame is
// *detected* and NAKed instead of being decoded into wrong data.

// crcTable is the byte-at-a-time lookup table for CRC-16/CCITT-FALSE. The
// checkpoint subsystem runs this CRC over multi-megabyte tensor snapshots
// every training step, so the bitwise loop is folded into a table once.
var crcTable = func() (t [256]uint16) {
	for b := 0; b < 256; b++ {
		crc := uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[b] = crc
	}
	return
}()

// CRC16 computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over p —
// the polynomial family CXL's link layer uses for flit protection.
func CRC16(p []byte) uint16 {
	return UpdateCRC16(0xFFFF, p)
}

// crcSlice extends crcTable to slicing-by-4: crcSlice[k][b] is the CRC
// (zero initial state) of byte b followed by k zero bytes. CRC is linear
// over GF(2), so four input bytes fold in one step: the 16-bit state XORs
// into the first two bytes and each byte's contribution — advanced past
// the bytes after it — combines by XOR. Same function, same bits as the
// byte-at-a-time loop; it only reads four table lanes per four bytes
// instead of chaining four dependent lookups.
var crcSlice = func() (t [4][256]uint16) {
	for b := 0; b < 256; b++ {
		c := crcTable[b]
		t[0][b] = c
		for k := 1; k < 4; k++ {
			c = c<<8 ^ crcTable[byte(c>>8)]
			t[k][b] = c
		}
	}
	return
}()

// UpdateCRC16 continues a CRC-16/CCITT-FALSE computation over p from a
// previous state (start from 0xFFFF), so large tensors can be checksummed
// in chunks without concatenating their bytes. The SDC guards CRC several
// parameter-sized tensors per training step, so the loop is sliced: four
// bytes per iteration with independent table lookups (the tail falls back
// to byte-at-a-time), bit-identical to the serial definition.
func UpdateCRC16(crc uint16, p []byte) uint16 {
	for len(p) >= 4 {
		crc = crcSlice[3][p[0]^byte(crc>>8)] ^
			crcSlice[2][p[1]^byte(crc)] ^
			crcSlice[1][p[2]] ^
			crcSlice[0][p[3]]
		p = p[4:]
	}
	for _, b := range p {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}

// ErrCRC reports a framed packet whose CRC check failed — the condition
// that consumes a replay-buffer slot and triggers NAK + retransmit.
var ErrCRC = errors.New("cxl: CRC mismatch")

// EncodeFramed serializes the packet with a trailing 2-byte CRC over the
// wire image, as the link layer would frame it into CRC-protected flits.
func (p *Packet) EncodeFramed() ([]byte, error) {
	return p.AppendEncodeFramed(nil)
}

// AppendEncodeFramed is EncodeFramed into dst's spare capacity — the
// allocation-free form for loops that frame one packet per cache line.
func (p *Packet) AppendEncodeFramed(dst []byte) ([]byte, error) {
	base := len(dst)
	dst, err := p.AppendEncode(dst)
	if err != nil {
		return nil, err
	}
	var tail [2]byte
	binary.LittleEndian.PutUint16(tail[:], CRC16(dst[base:]))
	return append(dst, tail[:]...), nil
}

// DecodeFramed verifies the trailing CRC and decodes the packet. A CRC
// failure returns ErrCRC: the receiver must NAK, never deliver the data.
func DecodeFramed(buf []byte) (Packet, error) {
	var p Packet
	err := DecodeFramedInto(&p, buf)
	return p, err
}

// DecodeFramedInto is DecodeFramed reusing p's payload capacity (see
// DecodeInto). p is zeroed on any error.
func DecodeFramedInto(p *Packet, buf []byte) error {
	if len(buf) < 2 {
		*p = Packet{}
		return ErrShortPacket
	}
	body, tail := buf[:len(buf)-2], buf[len(buf)-2:]
	if CRC16(body) != binary.LittleEndian.Uint16(tail) {
		*p = Packet{}
		return ErrCRC
	}
	return DecodeInto(p, body)
}
