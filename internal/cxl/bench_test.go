package cxl

import (
	"testing"

	"teco/internal/sim"
)

// benchLines matches streambench.RunLines: one homogeneous 1024-line run
// (a 64KiB layer chunk) per op. cmd/perfgate gates the same workload.
const benchLines = 1024

func benchStream(b *testing.B, perLine bool) {
	link := NewLink(sim.New(), 0, 0)
	s := NewStream(link, perLine)
	n := benchLines * 64
	s.PushRun(0, n, benchLines, 0, 0, false) // warm the event pool
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PushRun(0, n, benchLines, 0, 0, false)
	}
}

// BenchmarkStreamPerLine measures the per-line reference path: one pooled
// event per cache line.
func BenchmarkStreamPerLine(b *testing.B) { benchStream(b, true) }

// BenchmarkStreamCoalesced measures the flow-coalescing fast path: one
// closed-form segment per run.
func BenchmarkStreamCoalesced(b *testing.B) { benchStream(b, false) }

// BenchmarkPacketAppendEncode measures the preallocated flit framing path.
func BenchmarkPacketAppendEncode(b *testing.B) {
	p := Packet{Addr: 42, Aggregated: true, DirtyBytes: 2, Payload: make([]byte, 32)}
	var buf []byte
	var dec Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = p.AppendEncode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := DecodeInto(&dec, buf); err != nil {
			b.Fatal(err)
		}
	}
}
