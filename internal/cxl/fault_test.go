package cxl

import (
	"errors"
	"math/rand"
	"testing"

	"teco/internal/mem"
	"teco/internal/sim"
)

// Failure-injection tests: corrupted, truncated, and bit-flipped packets
// must be rejected deterministically, never decoded into wrong data
// silently accepted as a *different-shaped* payload. (The ad-hoc random
// decode loop that used to live here is now the native fuzz target
// FuzzDecode in fuzz_test.go.)

func TestBitFlipDetectionOrShapePreservation(t *testing.T) {
	// A single bit flip in the header either fails to decode or decodes
	// into a packet whose payload length still matches its flags — the
	// Disaggregator then merges garbage *data* (a data-integrity issue
	// the framed CRC path handles), but never reads out of bounds.
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 32)
	rng.Read(payload)
	p := Packet{Addr: 123456, Aggregated: true, DirtyBytes: 2, Payload: payload}
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < len(wire)*8; bit++ {
		mut := make([]byte, len(wire))
		copy(mut, wire)
		mut[bit/8] ^= 1 << (bit % 8)
		q, err := Decode(mut)
		if err != nil {
			continue
		}
		if len(q.Payload) != q.PayloadLen() {
			t.Fatalf("bit %d: decoded payload %d != declared %d", bit, len(q.Payload), q.PayloadLen())
		}
	}
}

func TestFramedCRCDetectsEveryBitFlip(t *testing.T) {
	// With the flit-style CRC trailer, *every* single-bit flip anywhere
	// in the frame is detected as ErrCRC — the condition that triggers
	// NAK + retransmit instead of a silent wrong merge.
	payload := make([]byte, 32)
	rand.New(rand.NewSource(8)).Read(payload)
	p := Packet{Addr: 99, Aggregated: true, DirtyBytes: 2, Payload: payload}
	frame, err := p.EncodeFramed()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFramed(frame); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
	for bit := 0; bit < len(frame)*8; bit++ {
		mut := make([]byte, len(frame))
		copy(mut, frame)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := DecodeFramed(mut); !errors.Is(err, ErrCRC) {
			t.Fatalf("bit %d: err = %v, want ErrCRC", bit, err)
		}
	}
}

func TestTruncationAlwaysErrors(t *testing.T) {
	p := Packet{Addr: 5, Payload: make([]byte, mem.LineSize)}
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(wire); cut++ {
		if _, err := Decode(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLinkMonotonicTime(t *testing.T) {
	// Completion times never go backwards even with adversarial ready
	// times (they are clamped by FIFO order).
	l := NewLink(sim.New(), 16e9, 8)
	rng := rand.New(rand.NewSource(3))
	var prev int64 = -1
	for i := 0; i < 10000; i++ {
		_, done := l.Send(0, rng.Intn(256)+1, 0)
		if int64(done) < prev {
			t.Fatalf("completion time went backwards at %d", i)
		}
		prev = int64(done)
	}
}
