package cxl

import (
	"testing"

	"teco/internal/mem"
	"teco/internal/sim"
)

// pushScript drives an identical sequence of runs through a stream and
// returns every FlowResult. The script mixes payload sizes, extra latency,
// aggregation flags and ready-time gaps so admission, backpressure and
// telescoping are all exercised.
type scriptRun struct {
	ready      sim.Time
	n          int
	extra      sim.Time
	pktBytes   int
	aggregated bool
}

func defaultScript() []scriptRun {
	full := WirePacketBytes(0)
	agg := WirePacketBytes(2)
	return []scriptRun{
		{0, 64 * 100, 0, full, false},
		{sim.Nanosecond, 64 * 1, 0, full, false},
		{2 * sim.Nanosecond, 40 * 333, sim.Nanosecond, agg, true},
		{sim.Microsecond, 64 * 4096, 0, full, false},
		{sim.Microsecond, 0, sim.Nanosecond, agg, true},
		{2 * sim.Microsecond, 64*257 + 32, 0, full, false},
		{500 * sim.Microsecond, 64 * 70000, sim.Nanosecond, agg, true},
	}
}

func runScript(t *testing.T, perLine bool, faults FaultConfig) ([]FlowResult, *Link, *Stream) {
	t.Helper()
	link := NewLink(sim.New(), 0, 0)
	if faults.Enabled() {
		if _, err := link.InjectFaults(faults); err != nil {
			t.Fatal(err)
		}
	}
	s := NewStream(link, perLine)
	var out []FlowResult
	for _, r := range defaultScript() {
		lines := mem.LinesIn(int64(r.n))
		out = append(out, s.PushRun(r.ready, r.n, lines, r.extra, r.pktBytes, r.aggregated))
	}
	return out, link, s
}

// TestStreamModesBitIdentical is the heart of the tentpole: the coalesced
// closed-form path and the per-line event path must produce identical
// FlowResults and identical link state, on pristine links and across a BER
// sweep (where both modes must hand runs to the retry engine whole).
func TestStreamModesBitIdentical(t *testing.T) {
	for _, ber := range []float64{0, 1e-7, 1e-6, 1e-5, 1e-4} {
		fc := FaultConfig{}
		if ber > 0 {
			fc = FaultConfig{Seed: 7, BER: ber}
		}
		co, coLink, _ := runScript(t, false, fc)
		pl, plLink, pls := runScript(t, true, fc)
		if len(co) != len(pl) {
			t.Fatalf("BER %g: %d vs %d results", ber, len(co), len(pl))
		}
		for i := range co {
			if co[i] != pl[i] {
				t.Errorf("BER %g run %d: coalesced %+v != per-line %+v", ber, i, co[i], pl[i])
			}
		}
		cb, cp, cbusy, cstall := coLink.Stats()
		pb, pp, pbusy, pstall := plLink.Stats()
		if cb != pb || cp != pp || cbusy != pbusy || cstall != pstall {
			t.Errorf("BER %g: link stats diverge: (%d,%d,%v,%v) vs (%d,%d,%v,%v)",
				ber, cb, cp, cbusy, cstall, pb, pp, pbusy, pstall)
		}
		if coLink.Drained() != plLink.Drained() || coLink.FenceClean(0) != plLink.FenceClean(0) {
			t.Errorf("BER %g: drain/clean-drain diverge: %v/%v vs %v/%v",
				ber, coLink.Drained(), coLink.FenceClean(0), plLink.Drained(), plLink.FenceClean(0))
		}
		if coLink.FaultStats() != plLink.FaultStats() {
			t.Errorf("BER %g: fault stats diverge: %+v vs %+v", ber, coLink.FaultStats(), plLink.FaultStats())
		}
		if ber == 0 && pls.Stats().LineEvents == 0 {
			t.Error("per-line mode fired no line events on a pristine link")
		}
		if ber > 0 && pls.Stats().FaultFallback == 0 {
			t.Errorf("BER %g: per-line mode never fell back at the fault boundary", ber)
		}
	}
}

// TestStreamModesBitIdenticalUnderBackpressure drives a 2-deep pending
// queue with runs that are all ready at once, so every admission is
// back-pressured, and checks the modes still agree exactly.
func TestStreamModesBitIdenticalUnderBackpressure(t *testing.T) {
	build := func(perLine bool) ([]FlowResult, *Link) {
		link := NewLink(sim.New(), 0, 2)
		s := NewStream(link, perLine)
		var out []FlowResult
		for i := 0; i < 50; i++ {
			n := 64 * (1 + i%7)
			out = append(out, s.PushRun(0, n, mem.LinesIn(int64(n)), 0, WirePacketBytes(0), false))
		}
		return out, link
	}
	co, coLink := build(false)
	pl, plLink := build(true)
	for i := range co {
		if co[i] != pl[i] {
			t.Errorf("run %d: coalesced %+v != per-line %+v", i, co[i], pl[i])
		}
	}
	_, _, _, cstall := coLink.Stats()
	_, _, _, pstall := plLink.Stats()
	if cstall == 0 {
		t.Error("backpressure script produced no stall time")
	}
	if cstall != pstall {
		t.Errorf("stall time diverges: %v vs %v", cstall, pstall)
	}
}

// TestStreamMatchesSendFlow pins the coalesced path to the pre-existing
// SendFlow behaviour: wrapping a link in a Stream must not change a single
// timestamp relative to calling SendFlow directly.
func TestStreamMatchesSendFlow(t *testing.T) {
	direct := NewLink(sim.New(), 0, 0)
	var want []FlowResult
	for _, r := range defaultScript() {
		want = append(want, direct.SendFlow(r.ready, r.n, r.extra, r.pktBytes, r.aggregated))
	}
	got, _, _ := runScript(t, false, FaultConfig{})
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("run %d: SendFlow %+v != Stream %+v", i, want[i], got[i])
		}
	}
}

// TestStreamPerLineLastEventIsClosedForm asserts the telescoping property
// directly: the per-line path's committed Done comes from the last fired
// line event, and equals start + ServiceTime(n, extra).
func TestStreamPerLineLastEventIsClosedForm(t *testing.T) {
	link := NewLink(sim.New(), 0, 0)
	s := NewStream(link, true)
	n := 64*12345 + 48
	lines := mem.LinesIn(int64(n))
	res := s.PushRun(0, n, lines, sim.Nanosecond, WirePacketBytes(0), false)
	want := link.ServiceTime(n, sim.Nanosecond)
	if res.Done != want {
		t.Fatalf("per-line Done %v, want closed form %v", res.Done, want)
	}
	if got := s.Stats().LineEvents; got != lines {
		t.Fatalf("fired %d line events, want %d", got, lines)
	}
	if s.Fired() != uint64(lines) {
		t.Fatalf("engine fired %d, want %d", s.Fired(), lines)
	}
}

// TestStreamPerLineWindowing pushes a run larger than the drain window and
// checks the event count and the closed form survive the windowed drain.
func TestStreamPerLineWindowing(t *testing.T) {
	link := NewLink(sim.New(), 0, 0)
	s := NewStream(link, true)
	lines := int64(3*drainWindow + 17)
	n := int(lines) * 64
	res := s.PushRun(0, n, lines, 0, WirePacketBytes(0), false)
	if res.Done != link.ServiceTime(n, 0) {
		t.Fatalf("windowed Done %v, want %v", res.Done, link.ServiceTime(n, 0))
	}
	if got := s.Stats().LineEvents; got != lines {
		t.Fatalf("fired %d line events, want %d", got, lines)
	}
}

// TestStreamCoalescedAllocs asserts the fast path allocates nothing per run
// and the per-line path nothing per line once the pool is warm.
func TestStreamCoalescedAllocs(t *testing.T) {
	link := NewLink(sim.New(), 0, 0)
	s := NewStream(link, false)
	var ready sim.Time
	allocs := testing.AllocsPerRun(1000, func() {
		r := s.PushRun(ready, 64*16, 16, 0, WirePacketBytes(0), false)
		ready = r.Done
	})
	if allocs != 0 {
		t.Fatalf("coalesced PushRun allocates %.1f/op, want 0", allocs)
	}

	pl := NewStream(NewLink(sim.New(), 0, 0), true)
	ready = 0
	// Warm the event pool and heap.
	pl.PushRun(0, 64*64, 64, 0, WirePacketBytes(0), false)
	ready = pl.Link().Drained()
	allocs = testing.AllocsPerRun(1000, func() {
		r := pl.PushRun(ready, 64*16, 16, 0, WirePacketBytes(0), false)
		ready = r.Done
	})
	if allocs != 0 {
		t.Fatalf("per-line PushRun allocates %.1f/op after warmup, want 0", allocs)
	}
}

// TestAppendEncodeMatchesEncode checks the append-style framing against the
// allocating forms byte-for-byte, and that reuse does not allocate.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	pkts := []Packet{
		{Addr: 0x1234, Payload: make([]byte, mem.LineSize)},
		{Addr: 0xffff, Aggregated: true, DirtyBytes: 2, Payload: make([]byte, mem.LineSize/4*2)},
	}
	for i := range pkts {
		for j := range pkts[i].Payload {
			pkts[i].Payload[j] = byte(i*31 + j)
		}
		plain, err := pkts[i].Encode()
		if err != nil {
			t.Fatal(err)
		}
		appended, err := pkts[i].AppendEncode(make([]byte, 0, 256))
		if err != nil {
			t.Fatal(err)
		}
		if string(plain) != string(appended) {
			t.Fatalf("packet %d: AppendEncode differs from Encode", i)
		}
		framed, err := pkts[i].EncodeFramed()
		if err != nil {
			t.Fatal(err)
		}
		framedApp, err := pkts[i].AppendEncodeFramed(make([]byte, 0, 256))
		if err != nil {
			t.Fatal(err)
		}
		if string(framed) != string(framedApp) {
			t.Fatalf("packet %d: AppendEncodeFramed differs from EncodeFramed", i)
		}
		var into Packet
		into.Payload = make([]byte, 0, mem.LineSize)
		if err := DecodeInto(&into, plain); err != nil {
			t.Fatal(err)
		}
		rt, err := Decode(plain)
		if err != nil {
			t.Fatal(err)
		}
		if into.Addr != rt.Addr || into.Aggregated != rt.Aggregated ||
			into.DirtyBytes != rt.DirtyBytes || string(into.Payload) != string(rt.Payload) {
			t.Fatalf("packet %d: DecodeInto differs from Decode", i)
		}
	}

	// Steady-state framing with reused buffers is allocation-free.
	pkt := pkts[0]
	buf := make([]byte, 0, 256)
	var dec Packet
	dec.Payload = make([]byte, 0, mem.LineSize)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = pkt.AppendEncodeFramed(buf[:0])
		if err != nil {
			panic(err)
		}
		if err := DecodeInto(&dec, buf[:len(buf)-2]); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("reused frame encode/decode allocates %.1f/op, want 0", allocs)
	}
}
