package cxl

import "fmt"

// Flit-level framing. CXL moves data in 68-byte flits: 64 bytes of slots
// plus a 2-byte CRC and 2-byte header — which is where the paper's "CXL
// consumes ~94.3% of PCIe bandwidth" comes from (64/68 = 94.1%; the quoted
// 94.3% includes protocol-level accounting). The Link Layer "combines one
// or multiple 32-byte payloads into one CXL packet depending on the CXL
// transfer size" (§V-B): two DBA-aggregated half-lines share one flit pair.
const (
	// FlitBytes is the on-wire flit size.
	FlitBytes = 68
	// FlitPayloadBytes is the usable slot capacity per flit.
	FlitPayloadBytes = 64
)

// FlitEfficiency returns the payload fraction of raw link bandwidth the
// flit framing permits.
func FlitEfficiency() float64 { return float64(FlitPayloadBytes) / float64(FlitBytes) }

// Packer packs payloads (32-byte aggregated half-lines or 64-byte full
// lines) into flits, tracking occupancy so consecutive DBA payloads share
// flits — the Link Layer behaviour that keeps DBA's volume saving intact on
// the wire.
type Packer struct {
	flits int64
	// fill is the occupied byte count of the currently open flit.
	fill  int
	bytes int64
}

// Add packs one payload of n bytes (1..FlitPayloadBytes) and returns the
// number of new flits opened.
func (p *Packer) Add(n int) int {
	if n <= 0 || n > FlitPayloadBytes {
		panic(fmt.Sprintf("cxl: payload of %d bytes per flit group", n))
	}
	p.bytes += int64(n)
	opened := 0
	if p.fill == 0 || p.fill+n > FlitPayloadBytes {
		// Open a fresh flit.
		p.flits++
		opened = 1
		p.fill = 0
	}
	p.fill += n
	if p.fill == FlitPayloadBytes {
		p.fill = 0
	}
	return opened
}

// Flits returns the number of flits emitted so far.
func (p *Packer) Flits() int64 { return p.flits }

// WireBytes returns total on-wire bytes (flits * FlitBytes).
func (p *Packer) WireBytes() int64 { return p.flits * FlitBytes }

// PayloadBytes returns total payload bytes packed.
func (p *Packer) PayloadBytes() int64 { return p.bytes }

// Efficiency returns payload/wire bytes achieved so far.
func (p *Packer) Efficiency() float64 {
	if p.flits == 0 {
		return 0
	}
	return float64(p.bytes) / float64(p.WireBytes())
}
