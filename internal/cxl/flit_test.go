package cxl

import (
	"testing"
	"testing/quick"

	"teco/internal/modelzoo"
)

// TestFlitEfficiencyDerivesPaperConstant: the paper's "94.3% of PCIe
// bandwidth" emulation constant is the flit framing overhead: 64 payload
// bytes per 68-byte flit.
func TestFlitEfficiencyDerivesPaperConstant(t *testing.T) {
	eff := FlitEfficiency()
	if eff < 0.94 || eff > 0.945 {
		t.Fatalf("flit efficiency = %.4f, want ~0.941 (paper models 0.943)", eff)
	}
	if diff := modelzoo.CXLEfficiency - eff; diff < 0 || diff > 0.01 {
		t.Fatalf("modelled efficiency %.4f should sit just above the flit bound %.4f",
			modelzoo.CXLEfficiency, eff)
	}
}

func TestPackerFullLines(t *testing.T) {
	var p Packer
	for i := 0; i < 100; i++ {
		if opened := p.Add(64); opened != 1 {
			t.Fatalf("full line must open exactly one flit, got %d", opened)
		}
	}
	if p.Flits() != 100 {
		t.Fatalf("flits = %d", p.Flits())
	}
	if p.Efficiency() < 0.94 {
		t.Fatalf("efficiency = %v", p.Efficiency())
	}
}

// TestPackerDBAHalvesFlits: two 32-byte DBA payloads share a flit, so DBA
// halves the flit count — the volume saving survives framing.
func TestPackerDBAHalvesFlits(t *testing.T) {
	var full, dba Packer
	for i := 0; i < 1000; i++ {
		full.Add(64)
	}
	for i := 0; i < 1000; i++ {
		dba.Add(32)
	}
	if dba.Flits()*2 != full.Flits() {
		t.Fatalf("DBA flits %d, want half of %d", dba.Flits(), full.Flits())
	}
	if dba.PayloadBytes()*2 != full.PayloadBytes() {
		t.Fatal("payload accounting")
	}
}

func TestPackerOddSizes(t *testing.T) {
	var p Packer
	p.Add(48)
	// 48 + 48 > 64: second payload opens a new flit.
	if opened := p.Add(48); opened != 1 {
		t.Fatal("overflow must open a new flit")
	}
	if p.Flits() != 2 {
		t.Fatalf("flits = %d", p.Flits())
	}
}

func TestPackerPanics(t *testing.T) {
	var p Packer
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) should panic", n)
				}
			}()
			p.Add(n)
		}()
	}
}

func TestPackerEmptyEfficiency(t *testing.T) {
	var p Packer
	if p.Efficiency() != 0 {
		t.Fatal("empty packer efficiency")
	}
}

// Property: flit count is always enough to carry the payload, and never
// more than one flit per payload.
func TestPackerBoundsProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		var p Packer
		count := 0
		for _, s := range sizes {
			n := int(s)%FlitPayloadBytes + 1
			p.Add(n)
			count++
		}
		minFlits := (p.PayloadBytes() + FlitPayloadBytes - 1) / FlitPayloadBytes
		return p.Flits() >= minFlits && p.Flits() <= int64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
