package cxl

import (
	"math/rand"
	"testing"
)

// crc16Serial is the byte-at-a-time reference definition the sliced
// UpdateCRC16 must match bit-for-bit.
func crc16Serial(crc uint16, p []byte) uint16 {
	for _, b := range p {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}

// TestCRC16CheckValue pins the CRC-16/CCITT-FALSE check value: every
// implementation of this CRC computes 0x29B1 over "123456789".
func TestCRC16CheckValue(t *testing.T) {
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16(123456789) = %#04x, want 0x29b1", got)
	}
}

// TestUpdateCRC16MatchesSerial drives the sliced implementation against
// the byte-at-a-time reference over every length class (covering the
// 4-byte block remainders), random data and random starting states, and
// arbitrary chunked continuations.
func TestUpdateCRC16MatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 63, 64, 65, 255, 1024, 4097} {
		p := make([]byte, n)
		for trial := 0; trial < 8; trial++ {
			rng.Read(p)
			crc := uint16(rng.Uint32())
			if got, want := UpdateCRC16(crc, p), crc16Serial(crc, p); got != want {
				t.Fatalf("len %d state %#04x: sliced %#04x != serial %#04x", n, crc, got, want)
			}
			// Chunked continuation at a random split point.
			cut := rng.Intn(n + 1)
			if got := UpdateCRC16(UpdateCRC16(crc, p[:cut]), p[cut:]); got != crc16Serial(crc, p) {
				t.Fatalf("len %d split %d: chunked continuation diverges", n, cut)
			}
		}
	}
}
