package cxl

import (
	"testing"

	"teco/internal/mem"
	"teco/internal/sim"
)

// sendPattern drives a fixed flow schedule and returns the final
// completion time plus the link's stats.
func sendPattern(l *Link) (last sim.Time, results []FlowResult) {
	for i := 0; i < 200; i++ {
		r := l.SendFlow(sim.Time(i)*10*sim.Nanosecond, 4096, 0, WirePacketBytes(0), false)
		results = append(results, r)
		last = r.Done
	}
	return last, results
}

func mustInjectT(t *testing.T, l *Link, cfg FaultConfig) {
	t.Helper()
	if _, err := l.InjectFaults(cfg); err != nil {
		t.Fatalf("InjectFaults(%+v): %v", cfg, err)
	}
}

func TestZeroFaultConfigBitIdentical(t *testing.T) {
	// A zero-BER, no-degradation fault config must leave every timing and
	// byte counter bit-identical to a pristine link (fault path strictly
	// additive).
	clean := NewLink(sim.New(), 0, 0)
	faulty := NewLink(sim.New(), 0, 0)
	if fm, err := faulty.InjectFaults(FaultConfig{Seed: 1}); fm != nil || err != nil {
		t.Fatal("disabled fault config must not attach a model")
	}
	cd, _ := sendPattern(clean)
	fd, _ := sendPattern(faulty)
	if cd != fd {
		t.Fatalf("completion diverged: %v vs %v", cd, fd)
	}
	cb, cp, cbusy, cstall := clean.Stats()
	fb, fp, fbusy, fstall := faulty.Stats()
	if cb != fb || cp != fp || cbusy != fbusy || cstall != fstall {
		t.Fatal("byte/packet/stall accounting diverged under zero-fault config")
	}
	if faulty.FaultStats() != (LinkFaultStats{}) {
		t.Fatal("zero-fault config produced fault stats")
	}
}

func TestDeterministicInjection(t *testing.T) {
	// Same seed + config => identical retry counts and timings.
	cfg := FaultConfig{Seed: 77, BER: 2e-5, StallProb: 0.1}
	a := NewLink(sim.New(), 0, 0)
	b := NewLink(sim.New(), 0, 0)
	mustInjectT(t, a, cfg)
	mustInjectT(t, b, cfg)
	da, ra := sendPattern(a)
	db, rb := sendPattern(b)
	if da != db {
		t.Fatalf("timings diverged: %v vs %v", da, db)
	}
	if a.FaultStats() != b.FaultStats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.FaultStats(), b.FaultStats())
	}
	if a.FaultStats().Retries == 0 {
		t.Fatal("expected some retries at BER 2e-5")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("flow %d diverged: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	// A different seed draws a different error pattern.
	c := NewLink(sim.New(), 0, 0)
	mustInjectT(t, c, FaultConfig{Seed: 78, BER: 2e-5, StallProb: 0.1})
	sendPattern(c)
	if c.FaultStats() == a.FaultStats() {
		t.Fatal("different seeds produced identical fault streams (suspicious)")
	}
}

func TestRetryDelaysCompletionAndCountsReplay(t *testing.T) {
	clean := NewLink(sim.New(), 0, 0)
	faulty := NewLink(sim.New(), 0, 0)
	mustInjectT(t, faulty, FaultConfig{Seed: 3, BER: 1e-4})
	cd, _ := sendPattern(clean)
	fd, _ := sendPattern(faulty)
	if fd <= cd {
		t.Fatalf("faulty link finished at %v, clean at %v: retries added no latency", fd, cd)
	}
	st := faulty.FaultStats()
	if st.Retries == 0 || st.ReplayedBytes == 0 || st.RetryTime == 0 {
		t.Fatalf("missing retry accounting: %+v", st)
	}
	// Payload byte accounting stays the offered load; replayed bytes are
	// tracked separately.
	cb, _, _, _ := clean.Stats()
	fb, _, _, _ := faulty.Stats()
	if cb != fb {
		t.Fatalf("payload accounting changed under faults: %d vs %d", cb, fb)
	}
}

func TestRetryLatencyGrowsWithBER(t *testing.T) {
	var prev sim.Time
	for _, ber := range []float64{1e-6, 1e-5, 1e-4} {
		l := NewLink(sim.New(), 0, 0)
		mustInjectT(t, l, FaultConfig{Seed: 9, BER: ber})
		sendPattern(l)
		rt := l.FaultStats().RetryTime
		if rt < prev {
			t.Fatalf("retry time shrank as BER grew: %v at BER %g (prev %v)", rt, ber, prev)
		}
		prev = rt
	}
	if prev == 0 {
		t.Fatal("no retry time accumulated at BER 1e-4")
	}
}

func TestExhaustedBudgetPoisons(t *testing.T) {
	// With a certain-corruption model and budget 2, every flow's packets
	// end up poisoned after exactly 2 retransmit rounds.
	l := NewLink(sim.New(), 0, 0)
	mustInjectT(t, l, FaultConfig{Seed: 5, BER: 0.5, RetryBudget: 2})
	r := l.SendFlow(0, 8*mem.LineSize, 0, WirePacketBytes(0), false)
	if r.Poisoned == 0 {
		t.Fatalf("no poison with saturating BER: %+v", r)
	}
	if r.Retries != 2*r.Packets {
		t.Fatalf("retries = %d, want 2 rounds x %d packets", r.Retries, r.Packets)
	}
	if st := l.FaultStats(); st.Poisoned != r.Poisoned {
		t.Fatalf("link poison counter %d != flow %d", st.Poisoned, r.Poisoned)
	}
}

func TestAggregatedRetryPaysMergePenalty(t *testing.T) {
	// Same corrupted-packet schedule, but the aggregated flow pays the
	// merge-header round trip per retried packet.
	mk := func(aggregated bool, pkt int) sim.Time {
		l := NewLink(sim.New(), 0, 0)
		mustInjectT(t, l, FaultConfig{Seed: 4, BER: 0.02, RetryBudget: 50})
		r := l.SendFlow(0, 64*1024, 0, pkt, aggregated)
		return r.Done - r.CleanDone
	}
	full := mk(false, WirePacketBytes(0))
	agg := mk(true, WirePacketBytes(0)) // identical framing: isolate the merge penalty
	if agg <= full {
		t.Fatalf("aggregated retry delay %v <= full-line %v: merge round trip not charged", agg, full)
	}
}

func TestControllerStallInjection(t *testing.T) {
	l := NewLink(sim.New(), 0, 0)
	mustInjectT(t, l, FaultConfig{Seed: 6, StallProb: 1, StallTime: 3 * sim.Microsecond})
	r := l.SendFlow(0, mem.LineSize, 0, 0, false)
	if r.Stalled != 3*sim.Microsecond {
		t.Fatalf("stall = %v, want 3us", r.Stalled)
	}
	if st := l.FaultStats(); st.Stalls != 1 || st.StallTime != 3*sim.Microsecond {
		t.Fatalf("stall accounting: %+v", st)
	}
	if r.Done < 3*sim.Microsecond {
		t.Fatalf("stall did not delay completion: %v", r.Done)
	}
}

func TestPersistentBandwidthDegradation(t *testing.T) {
	clean := NewLink(sim.New(), 16e9, 0)
	degraded := NewLink(sim.New(), 16e9, 0)
	mustInjectT(t, degraded, FaultConfig{Seed: 1, BandwidthDegrade: 0.25})
	if got, want := degraded.BytesPerSecond(), 4e9; got != want {
		t.Fatalf("degraded bandwidth = %g, want %g", got, want)
	}
	_, cd := clean.Send(0, 1<<20, 0)
	_, dd := degraded.Send(0, 1<<20, 0)
	if dd <= cd*3 {
		t.Fatalf("4x degradation only slowed %v -> %v", cd, dd)
	}
}

// TestBackPressureMonotonicUnderDegradedBandwidth asserts the pending-queue
// accounting stays consistent as the link trains down: the same offered
// load must see monotonically growing producer stall as bytesPerSecond
// drops.
func TestBackPressureMonotonicUnderDegradedBandwidth(t *testing.T) {
	stallAt := func(bps float64) sim.Time {
		l := NewLink(sim.New(), bps, 4)
		for i := 0; i < 64; i++ {
			l.Send(0, mem.LineSize, 0) // all ready at t=0: queue saturates
		}
		_, _, _, stall := l.Stats()
		return stall
	}
	var prev sim.Time = -1
	for _, bps := range []float64{16e9, 8e9, 4e9, 2e9, 1e9} {
		s := stallAt(bps)
		if s <= prev {
			t.Fatalf("stall %v at %g B/s did not grow (prev %v)", s, bps, prev)
		}
		prev = s
	}
	// The degraded-link path must produce the same stall as an equally
	// slow pristine link.
	l := NewLink(sim.New(), 16e9, 4)
	mustInjectT(t, l, FaultConfig{Seed: 1, BandwidthDegrade: 0.25})
	for i := 0; i < 64; i++ {
		l.Send(0, mem.LineSize, 0)
	}
	_, _, _, got := l.Stats()
	if want := stallAt(4e9); got != want {
		t.Fatalf("degraded-link stall %v != pristine 4GB/s stall %v", got, want)
	}
}

// TestResetClearsFaultCounters: Reset must clear retry/fault counters
// alongside the byte, busy, and stall counters.
func TestResetClearsFaultCounters(t *testing.T) {
	l := NewLink(sim.New(), 0, 4)
	mustInjectT(t, l, FaultConfig{Seed: 11, BER: 1e-4, StallProb: 0.5})
	for i := 0; i < 64; i++ {
		l.SendFlow(0, 4096, 0, WirePacketBytes(0), true)
	}
	if l.FaultStats() == (LinkFaultStats{}) {
		t.Fatal("no fault activity before reset")
	}
	l.Reset()
	if l.FaultStats() != (LinkFaultStats{}) {
		t.Fatalf("fault counters survived Reset: %+v", l.FaultStats())
	}
	b, p, busy, stall := l.Stats()
	if b != 0 || p != 0 || busy != 0 || stall != 0 {
		t.Fatal("base counters survived Reset")
	}
	if l.Fence(0) != 0 || l.FenceClean(0) != 0 {
		t.Fatal("drain state survived Reset")
	}
	if l.Faults() == nil {
		t.Fatal("Reset must keep the fault model: the hardware is still lossy")
	}
}

func TestPacketErrorProbShape(t *testing.T) {
	fm := MustFaultModel(FaultConfig{Seed: 1, BER: 1e-6})
	small := fm.PacketErrorProb(WirePacketBytes(2))
	large := fm.PacketErrorProb(WirePacketBytes(0))
	if small <= 0 || large <= small {
		t.Fatalf("packet error prob not increasing in size: %g vs %g", small, large)
	}
	if p := fm.PacketErrorProb(0); p != 0 {
		t.Fatalf("zero-size packet error prob = %g", p)
	}
	// Bursts preserve BER mass but reduce independent events.
	bursty := PacketErrorProb(fm.FlitErrorProb(), 8, WirePacketBytes(0))
	if bursty >= large {
		t.Fatalf("bursty event prob %g >= independent %g", bursty, large)
	}
}

func TestCorruptFrameDeterministic(t *testing.T) {
	p := Packet{Addr: 3, Payload: make([]byte, mem.LineSize)}
	frame, err := p.EncodeFramed()
	if err != nil {
		t.Fatal(err)
	}
	a := MustFaultModel(FaultConfig{Seed: 21, BER: 0.01})
	b := MustFaultModel(FaultConfig{Seed: 21, BER: 0.01})
	var flippedTotal int
	for i := 0; i < 200; i++ {
		wa, fa := a.CorruptFrame(frame)
		wb, fb := b.CorruptFrame(frame)
		if fa != fb {
			t.Fatalf("flip counts diverged at %d: %d vs %d", i, fa, fb)
		}
		flippedTotal += fa
		if string(wa) != string(wb) {
			t.Fatalf("corruption pattern diverged at %d", i)
		}
		if fa > 0 {
			if _, err := DecodeFramed(wa); err == nil && fa == 1 {
				t.Fatal("single-bit corruption passed the CRC")
			}
		}
	}
	if flippedTotal == 0 {
		t.Fatal("no bits flipped at BER 0.01 over 200 frames")
	}
}

func TestFaultConfigValidate(t *testing.T) {
	bad := []FaultConfig{
		{BER: -1}, {BER: 1}, {StallProb: 2}, {BandwidthDegrade: -0.1},
		{BandwidthDegrade: 1.5}, {RetryBudget: -1}, {RetryBackoff: -1},
		{BurstFlits: -2}, {ReplaySlots: -3},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("config %+v accepted", c)
		}
	}
	if err := (FaultConfig{Seed: 1, BER: 1e-9, StallProb: 0.5, BandwidthDegrade: 0.9}).Validate(); err != nil {
		t.Fatal(err)
	}
}
