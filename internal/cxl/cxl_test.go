package cxl

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"teco/internal/mem"
	"teco/internal/sim"
)

func TestEffectiveBandwidth(t *testing.T) {
	bw := EffectiveBandwidth()
	if bw <= 15e9 || bw >= 16e9 {
		t.Fatalf("effective bandwidth = %g, want 94.3%% of 16GB/s", bw)
	}
}

func TestServiceTime(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, 16e9, 0)
	// 64 B at 16 GB/s = 4 ns — the paper's §VIII-D per-line latency.
	st := l.ServiceTime(mem.LineSize, 0)
	if st < 3900*sim.Picosecond || st > 4100*sim.Picosecond {
		t.Fatalf("line service = %v, want ~4ns", st)
	}
	// Extra latency (Aggregator 1 ns) adds on top.
	if l.ServiceTime(mem.LineSize, sim.Nanosecond) != st+sim.Nanosecond {
		t.Fatal("extra latency not added")
	}
}

func TestLinkSerializesFIFO(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, 16e9, 0)
	_, d1 := l.Send(0, 64, 0)
	_, d2 := l.Send(0, 64, 0)
	if d2 <= d1 {
		t.Fatal("second packet must finish after first")
	}
	if d2-d1 != d1 {
		t.Fatalf("unequal spacing: %v then %v", d1, d2-d1)
	}
}

func TestLinkRespectsReadyTime(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, 16e9, 0)
	admit, done := l.Send(100*sim.Nanosecond, 64, 0)
	if admit != 100*sim.Nanosecond {
		t.Fatalf("admit = %v", admit)
	}
	if done <= 100*sim.Nanosecond {
		t.Fatalf("done = %v", done)
	}
}

func TestPendingQueueBackpressure(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, 16e9, 4) // tiny queue: 4 entries
	svc := l.ServiceTime(64, 0)
	// Five packets all ready at t=0: the fifth must wait for packet 1 to
	// leave the queue (i.e. finish serialization at svc).
	var admits []sim.Time
	for i := 0; i < 5; i++ {
		a, _ := l.Send(0, 64, 0)
		admits = append(admits, a)
	}
	for i := 0; i < 4; i++ {
		if admits[i] != 0 {
			t.Fatalf("packet %d admit = %v, want 0", i, admits[i])
		}
	}
	if admits[4] != svc {
		t.Fatalf("packet 4 admit = %v, want %v (slot frees when pkt 0 completes)", admits[4], svc)
	}
	_, _, _, stall := l.Stats()
	if stall != svc {
		t.Fatalf("stall = %v, want %v", stall, svc)
	}
}

func TestDeepQueueNoBackpressureForShortBursts(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, 16e9, DefaultQueueCap)
	for i := 0; i < DefaultQueueCap; i++ {
		a, _ := l.Send(0, 64, 0)
		if a != 0 {
			t.Fatalf("packet %d back-pressured in a %d-deep queue", i, DefaultQueueCap)
		}
	}
	a, _ := l.Send(0, 64, 0)
	if a == 0 {
		t.Fatal("packet beyond queue depth must be back-pressured")
	}
}

func TestFence(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, 16e9, 0)
	if l.Fence(5*sim.Nanosecond) != 5*sim.Nanosecond {
		t.Fatal("fence on idle link should return ready time")
	}
	_, done := l.Send(0, 6400, 0)
	if got := l.Fence(0); got != done {
		t.Fatalf("fence = %v, want %v", got, done)
	}
	if got := l.Fence(done + 10); got != done+10 {
		t.Fatal("fence must not travel back in time")
	}
	if l.Drained() != done {
		t.Fatal("Drained mismatch")
	}
}

func TestStatsAndReset(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, 16e9, 0)
	l.Send(0, 64, 0)
	l.SendMsg(0)
	b, p, busy, _ := l.Stats()
	if b != 64+MsgBytes || p != 2 || busy <= 0 {
		t.Fatalf("stats = %d bytes %d pkts busy %v", b, p, busy)
	}
	l.Reset()
	b, p, busy, stall := l.Stats()
	if b != 0 || p != 0 || busy != 0 || stall != 0 || l.Drained() != 0 {
		t.Fatal("reset incomplete")
	}
}

// Throughput sanity: streaming 1 GB of 64-byte lines takes ~1/15.09 s * 1e9/…
func TestLinkThroughput(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, 0, 0) // default effective bandwidth
	const lines = 100000
	var done sim.Time
	for i := 0; i < lines; i++ {
		_, done = l.Send(0, mem.LineSize, 0)
	}
	wantSeconds := float64(lines*mem.LineSize) / EffectiveBandwidth()
	got := done.Seconds()
	if got < wantSeconds*0.99 || got > wantSeconds*1.01 {
		t.Fatalf("streamed in %.6fs, want %.6fs", got, wantSeconds)
	}
}

func TestPacketEncodeDecodeFullLine(t *testing.T) {
	payload := make([]byte, mem.LineSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	p := Packet{Addr: 0x123456789A, Payload: payload}
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.WireBytes() {
		t.Fatalf("wire bytes = %d, want %d", len(buf), p.WireBytes())
	}
	q, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Addr != p.Addr || q.Aggregated || !bytes.Equal(q.Payload, payload) {
		t.Fatalf("roundtrip mismatch: %+v", q)
	}
}

func TestPacketEncodeDecodeAggregated(t *testing.T) {
	// dirty_bytes = 2: payload is 32 bytes for a 64-byte line (§V-B).
	payload := make([]byte, 32)
	rand.New(rand.NewSource(3)).Read(payload)
	p := Packet{Addr: 42, Aggregated: true, DirtyBytes: 2, Payload: payload}
	if p.PayloadLen() != 32 {
		t.Fatalf("aggregated payload len = %d, want 32", p.PayloadLen())
	}
	wire, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Aggregated || q.DirtyBytes != 2 || !bytes.Equal(q.Payload, payload) {
		t.Fatalf("roundtrip mismatch: %+v", q)
	}
}

func TestPacketHalvesWireSize(t *testing.T) {
	full := Packet{Addr: 1, Payload: make([]byte, 64)}
	agg := Packet{Addr: 1, Aggregated: true, DirtyBytes: 2, Payload: make([]byte, 32)}
	if agg.PayloadLen()*2 != full.PayloadLen() {
		t.Fatal("DBA with dirty_bytes=2 must halve the payload")
	}
	if agg.WireBytes() >= full.WireBytes() {
		t.Fatal("aggregated packet must be smaller on the wire")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 4)); err == nil {
		t.Fatal("short header must error")
	}
	p := Packet{Addr: 7, Payload: make([]byte, 64)}
	buf, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(buf[:20]); err == nil {
		t.Fatal("truncated payload must error")
	}
	// Corrupt dirty-byte length: aggregated flag with length 0.
	buf[7] = 1 << 7
	if _, err := Decode(buf); err == nil {
		t.Fatal("invalid dirty length must error")
	}
}

func TestEncodeErrorsOnMismatchedPayload(t *testing.T) {
	p := Packet{Addr: 1, Payload: make([]byte, 10)}
	if _, err := p.Encode(); !errors.Is(err, ErrPayloadMismatch) {
		t.Fatalf("err = %v, want ErrPayloadMismatch", err)
	}
	if _, err := p.EncodeFramed(); !errors.Is(err, ErrPayloadMismatch) {
		t.Fatalf("framed err = %v, want ErrPayloadMismatch", err)
	}
}

// Property: encode/decode round-trips for all dirty-byte lengths and
// arbitrary addresses within 48 bits.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(rawAddr uint64, db uint8, seed int64) bool {
		addr := mem.LineAddr(rawAddr & ((1 << 48) - 1))
		n := int(db%4) + 1
		p := Packet{Addr: addr, Aggregated: true, DirtyBytes: uint8(n)}
		p.Payload = make([]byte, p.PayloadLen())
		rand.New(rand.NewSource(seed)).Read(p.Payload)
		wire, err := p.Encode()
		if err != nil {
			return false
		}
		q, err := Decode(wire)
		if err != nil {
			return false
		}
		return q.Addr == p.Addr && q.Aggregated && q.DirtyBytes == uint8(n) && bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
