package cxl

import (
	"fmt"

	"teco/internal/conformance/check"
	"teco/internal/mem"
	"teco/internal/sim"
)

// Stream is the cache-line stream simulator over a Link: the paper's
// "updated cache lines ... going through the link one after another in a
// stream manner" (§VIII-A), pushed run-at-a-time where a run is one
// homogeneous burst of lines (one layer's gradient flush, one ADAM chunk's
// parameter writeback).
//
// It runs in one of two modes with bit-identical sim.Time results:
//
//   - Coalesced (the default fast path): a homogeneous run — same per-line
//     service time, no injected fault, no retry or poison in flight —
//     collapses into a single run-length segment whose completion time is
//     computed in closed form. No events fire.
//   - Per-line (the reference path): every cache line is its own pooled
//     event on the stream's private discrete-event engine; the run completes
//     when its last line event fires. Line i of a run of L lines carrying n
//     payload bytes completes at start + DurationForBytes(n*(i+1)/L), which
//     telescopes exactly to the closed form for the last line, so the two
//     modes agree bit-for-bit (asserted by stream_test.go and the
//     cross-check suites in core and experiments).
//
// Coalescing breaks exactly at fault boundaries: a run on a link with an
// attached fault model is never split or merged in either mode — it is
// handed to the flow-granular retry/replay engine whole, so the seeded RNG
// draw sequence (and therefore every retry, stall and poison timestamp) is
// identical in both modes. Backpressure boundaries need no special casing:
// pending-queue admission and link-busy serialization are applied through
// the same admitRun/commitRun as the closed form.
//
// A Stream owns a private engine rather than sharing the caller's: runs on
// one link complete monotonically (each run starts no earlier than the
// previous run's drain), so the private clock never has to move backwards,
// while two links fed from independent producer timelines would violate
// that on a shared clock.
type Stream struct {
	link    *Link
	perLine bool
	eng     *sim.Engine

	// lastDone is the firing time of the most recent line event — the
	// event-derived completion the per-line path commits, making the
	// closed-form comparison in the tests a real cross-check.
	lastDone sim.Time
	stats    StreamStats
	lh       lineHandler
}

// StreamStats counts how runs were simulated.
type StreamStats struct {
	// Runs is the number of PushRun calls.
	Runs int64
	// Coalesced counts runs collapsed into a closed-form segment.
	Coalesced int64
	// FaultFallback counts runs handed whole to the flow retry engine
	// because a fault model was attached (both modes take this path).
	FaultFallback int64
	// LineEvents counts per-line events fired through the event engine.
	LineEvents int64
}

// lineHandler is the pooled, closure-free per-line completion callback.
type lineHandler struct{ s *Stream }

func (h *lineHandler) Fire(now sim.Time) {
	h.s.lastDone = now
	h.s.stats.LineEvents++
}

// NewStream wraps link in a stream simulator. perLine selects the per-line
// reference path; false selects the coalesced fast path.
func NewStream(link *Link, perLine bool) *Stream {
	s := &Stream{link: link, perLine: perLine, eng: sim.New()}
	s.lh.s = s
	return s
}

// Link returns the underlying link.
func (s *Stream) Link() *Link { return s.link }

// PerLine reports whether the stream runs the per-line reference path.
func (s *Stream) PerLine() bool { return s.perLine }

// Stats returns the stream's simulation counters.
func (s *Stream) Stats() StreamStats { return s.stats }

// Fired returns the number of line events executed by the private engine.
func (s *Stream) Fired() uint64 { return s.eng.Fired() }

// PushRun pushes one homogeneous run of `lines` cache lines carrying n
// payload bytes total, becoming ready at `ready`. extra, pktBytes and
// aggregated have SendFlow's meaning (aggregation logic delay, retry framing
// granularity, DBA flag). The result is bit-identical across modes.
func (s *Stream) PushRun(ready sim.Time, n int, lines int64, extra sim.Time, pktBytes int, aggregated bool) FlowResult {
	s.stats.Runs++
	if s.link.faults != nil {
		// Fault boundary: never coalesce, never split — the retry engine
		// consumes its RNG at flow granularity, so both modes must hand
		// the run over whole to draw the same sequence.
		s.stats.FaultFallback++
		return s.link.SendFlow(ready, n, extra, pktBytes, aggregated)
	}
	if !s.perLine {
		s.stats.Coalesced++
		return s.link.SendFlow(ready, n, extra, pktBytes, aggregated)
	}
	return s.pushPerLine(ready, n, lines, extra, pktBytes)
}

// drainWindow bounds how many line events are outstanding at once — sized
// to the controller's pending-queue depth, the natural bound on in-flight
// lines. Windowing keeps the heap (and peak memory) small on multi-gigabyte
// models without changing any firing time, because line times within a run
// are already sorted; it also keeps the heap cache-resident, which measures
// ~2x faster per line than a 16Ki window.
const drainWindow = DefaultQueueCap

// pushPerLine simulates the run one cache-line event at a time on the
// stream's private engine and commits the event-derived completion time.
func (s *Stream) pushPerLine(ready sim.Time, n int, lines int64, extra sim.Time, pktBytes int) FlowResult {
	l := s.link
	admit, start := l.admitRun(ready)
	svc := l.ServiceTime(n, extra)
	if lines < 1 {
		lines = 1
	}
	s.lastDone = start
	for next := int64(0); next < lines; {
		batch := lines - next
		if batch > drainWindow {
			batch = drainWindow
		}
		for k := int64(0); k < batch; k++ {
			i := next + k
			// Cumulative-byte schedule: line i completes once its prefix
			// of the payload has serialized. The last line additionally
			// pays the run's fixed extra latency, landing it exactly on
			// start + ServiceTime(n, extra).
			t := start + sim.DurationForBytes(int64(n)*(i+1)/lines, l.bytesPerSecond)
			if i == lines-1 {
				t += extra
			}
			s.eng.AtHandler(t, &s.lh)
		}
		next += batch
		s.eng.Run()
	}
	done := s.lastDone

	res := FlowResult{Admit: admit, Packets: 1}
	if pktBytes > 0 {
		res.Packets = (int64(n) + int64(pktBytes) - 1) / int64(pktBytes)
		if res.Packets < 1 {
			res.Packets = 1
		}
	}
	res.CleanDone = done
	l.cleanFreeAt = done
	res.Done = done
	l.commitRun(done, svc, n)
	if check.Enabled() {
		check.Check(
			func() error {
				// The per-line cumulative-byte schedule must telescope to
				// the coalesced closed form — the bit-identity the fast
				// path is built on.
				if want := start + svc; done != want {
					return fmt.Errorf("cxl: per-line run finished at %v, closed form %v", done, want)
				}
				return nil
			},
			s.CheckInvariants,
			l.CheckInvariants,
		)
	}
	return res
}

// CheckInvariants validates the stream's simulation accounting and returns
// the first violation, if any: every pushed run took exactly one of the
// three simulation paths, and the private engine has fully drained (a
// pending line event after PushRun returns would mean a lost completion).
func (s *Stream) CheckInvariants() error {
	perLineRuns := s.stats.Runs - s.stats.Coalesced - s.stats.FaultFallback
	if perLineRuns < 0 {
		return fmt.Errorf("cxl: stream path counts exceed runs: %+v", s.stats)
	}
	if !s.perLine && perLineRuns != 0 {
		return fmt.Errorf("cxl: coalesced stream recorded %d per-line runs", perLineRuns)
	}
	if s.stats.LineEvents != int64(s.eng.Fired()) {
		return fmt.Errorf("cxl: %d line events recorded, %d fired", s.stats.LineEvents, s.eng.Fired())
	}
	if p := s.eng.Pending(); p != 0 {
		return fmt.Errorf("cxl: stream engine holds %d undrained line events", p)
	}
	return s.eng.CheckInvariants()
}

// PushLines is PushRun for full-line payloads: lines is derived from n at
// the 64-byte line size.
func (s *Stream) PushLines(ready sim.Time, n int, extra sim.Time, pktBytes int, aggregated bool) FlowResult {
	return s.PushRun(ready, n, mem.LinesIn(int64(n)), extra, pktBytes, aggregated)
}
