package cxl

import (
	"bytes"
	"testing"

	"teco/internal/mem"
)

// fuzzSeeds returns representative wire images: valid full-line and
// aggregated packets, their framed variants, plus the truncation and
// bit-flip corruptions the old ad-hoc fault tests exercised.
func fuzzSeeds(tb testing.TB) [][]byte {
	full := Packet{Addr: 0x123456789A, Payload: make([]byte, mem.LineSize)}
	for i := range full.Payload {
		full.Payload[i] = byte(i)
	}
	agg := Packet{Addr: 42, Aggregated: true, DirtyBytes: 2, Payload: make([]byte, 32)}
	for i := range agg.Payload {
		agg.Payload[i] = byte(0xA0 ^ i)
	}
	var seeds [][]byte
	for _, p := range []*Packet{&full, &agg} {
		wire, err := p.Encode()
		if err != nil {
			tb.Fatal(err)
		}
		framed, err := p.EncodeFramed()
		if err != nil {
			tb.Fatal(err)
		}
		flipped := append([]byte(nil), wire...)
		flipped[7] ^= 0x80 // toggle the aggregation flag
		seeds = append(seeds, wire, framed, flipped, wire[:4], wire[:headerSize], wire[:len(wire)-1])
	}
	seeds = append(seeds, nil, make([]byte, 1), make([]byte, headerSize))
	return seeds
}

// FuzzDecode asserts Decode never panics on arbitrary input, and that any
// packet it accepts is internally consistent and survives an Encode→Decode
// round trip bit-exactly.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		p, err := Decode(buf)
		if err != nil {
			return
		}
		if len(p.Payload) != p.PayloadLen() {
			t.Fatalf("decoded payload %dB != declared %dB", len(p.Payload), p.PayloadLen())
		}
		if p.Aggregated && (p.DirtyBytes == 0 || p.DirtyBytes > 4) {
			t.Fatalf("accepted invalid dirty-byte length %d", p.DirtyBytes)
		}
		wire, err := p.Encode()
		if err != nil {
			t.Fatalf("re-encode of accepted packet failed: %v", err)
		}
		q, err := Decode(wire)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if q.Addr != p.Addr || q.Aggregated != p.Aggregated ||
			q.DirtyBytes != p.DirtyBytes || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", q, p)
		}
	})
}

// FuzzDecodeFramed asserts the CRC-framed decode path never panics and
// never delivers data from a frame whose CRC does not match.
func FuzzDecodeFramed(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		p, err := DecodeFramed(buf)
		if err != nil {
			return
		}
		refr, err := p.EncodeFramed()
		if err != nil {
			t.Fatalf("re-frame of accepted packet failed: %v", err)
		}
		if _, err := DecodeFramed(refr); err != nil {
			t.Fatalf("round-trip framed decode failed: %v", err)
		}
	})
}
