// Link fault injection and the link-layer retry/replay engine.
//
// The paper's evaluation (§VIII-A) assumes a lossless link; real CXL
// hardware rides on a physical layer with a finite bit-error rate and
// recovers with CRC-protected flits, an ack/nak protocol backed by a replay
// buffer, and poison containment when recovery fails. This file models that
// machinery deterministically: a seeded FaultModel decides which packets are
// corrupted, and the Link's send path charges the NAK round trip, the
// exponential retransmit backoff, and the replay-buffer drain waves to the
// simulated clock. Exhausted retry budgets deliver *poisoned* data — the
// error is surfaced to the protocol layer instead of silently handing over
// garbage.
package cxl

import (
	"fmt"
	"math"
	"math/rand"

	"teco/internal/sim"
)

// Fault-model defaults. The latencies are first-order CXL controller
// figures, not calibrated constants: the NAK notification and the
// giant-cache stale-line refetch a retried merge needs are both round trips
// through the device, O(100 ns).
const (
	// DefaultRetryBudget is the number of retransmit rounds before a
	// packet is delivered poisoned.
	DefaultRetryBudget = 8
	// DefaultRetryBackoff is the base delay before the first retransmit
	// round; it doubles every round (exponential backoff).
	DefaultRetryBackoff = 50 * sim.Nanosecond
	// DefaultNakDelay is the NAK notification round trip charged once per
	// retransmit round.
	DefaultNakDelay = 100 * sim.Nanosecond
	// DefaultMergeRetryDelay is charged per retried *aggregated* packet:
	// the Disaggregator must re-fetch the stale line and re-run the merge,
	// re-sending the merge header round trip (giant-cache access).
	DefaultMergeRetryDelay = 100 * sim.Nanosecond
	// DefaultStallTime is the duration of one injected controller-queue
	// stall.
	DefaultStallTime = sim.Microsecond
	// DefaultReplaySlots is the replay (retry) buffer depth in packets;
	// a retransmit round larger than the buffer drains in waves.
	DefaultReplaySlots = 32
)

// FaultConfig configures deterministic link fault injection. The zero value
// is a pristine link: no errors, no stalls, no degradation.
type FaultConfig struct {
	// Seed drives every random draw; two runs with the same seed and
	// config produce identical retry counts and timings.
	Seed int64
	// BER is the per-bit probability of a wire error.
	BER float64
	// BurstFlits is the mean error-burst length in flits. 1 (or 0) means
	// independent single-flit errors; larger values concentrate the same
	// BER into bursts that corrupt runs of consecutive flits.
	BurstFlits int
	// StallProb is the per-flow probability of a controller-queue stall
	// of StallTime before serialization starts.
	StallProb float64
	// StallTime is the injected stall duration (default 1 us).
	StallTime sim.Time
	// BandwidthDegrade models persistent link degradation (lane or speed
	// downtraining) as a bandwidth factor in (0,1). 0 or 1 means none.
	BandwidthDegrade float64
	// RetryBudget is the number of retransmit rounds before a packet is
	// delivered poisoned (default 8).
	RetryBudget int
	// RetryBackoff is the base backoff before each retransmit round,
	// doubling per round (default 50 ns).
	RetryBackoff sim.Time
	// NakDelay is the NAK notification round trip per retransmit round
	// (default 100 ns).
	NakDelay sim.Time
	// MergeRetryDelay is the per-packet stale-line refetch cost of
	// retrying an aggregated payload (default 100 ns).
	MergeRetryDelay sim.Time
	// ReplaySlots is the replay-buffer depth in packets (default 32).
	ReplaySlots int
}

// Enabled reports whether the config injects any fault at all. A disabled
// config leaves the link's timing bit-identical to the fault-free model.
func (c FaultConfig) Enabled() bool {
	return c.BER > 0 || c.StallProb > 0 || (c.BandwidthDegrade > 0 && c.BandwidthDegrade < 1)
}

// Validate checks the configuration ranges.
func (c FaultConfig) Validate() error {
	if c.BER < 0 || c.BER >= 1 {
		return fmt.Errorf("cxl: BER %g outside [0,1)", c.BER)
	}
	if c.StallProb < 0 || c.StallProb > 1 {
		return fmt.Errorf("cxl: stall probability %g outside [0,1]", c.StallProb)
	}
	if c.BandwidthDegrade < 0 || c.BandwidthDegrade > 1 {
		return fmt.Errorf("cxl: bandwidth degrade factor %g outside [0,1]", c.BandwidthDegrade)
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("cxl: negative retry budget %d", c.RetryBudget)
	}
	if c.RetryBackoff < 0 || c.NakDelay < 0 || c.MergeRetryDelay < 0 || c.StallTime < 0 {
		return fmt.Errorf("cxl: negative fault latency")
	}
	if c.BurstFlits < 0 || c.ReplaySlots < 0 {
		return fmt.Errorf("cxl: negative burst length or replay depth")
	}
	return nil
}

// withDefaults fills zero fields with the documented defaults.
func (c FaultConfig) withDefaults() FaultConfig {
	if c.BurstFlits <= 0 {
		c.BurstFlits = 1
	}
	if c.StallTime == 0 {
		c.StallTime = DefaultStallTime
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = DefaultRetryBudget
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	if c.NakDelay == 0 {
		c.NakDelay = DefaultNakDelay
	}
	if c.MergeRetryDelay == 0 {
		c.MergeRetryDelay = DefaultMergeRetryDelay
	}
	if c.ReplaySlots == 0 {
		c.ReplaySlots = DefaultReplaySlots
	}
	return c
}

// FaultModel is the seeded random process deciding which flits go bad. It
// is deterministic: the draw sequence depends only on (Seed, config, call
// order), so a simulation replays identically.
type FaultModel struct {
	cfg FaultConfig
	rng *rand.Rand
	// flitErrProb is the probability that one flit carries at least one
	// bit error: 1-(1-BER)^(FlitBytes*8).
	flitErrProb float64
}

// NewFaultModel builds a model from cfg (defaults applied). An invalid
// configuration is returned as an error, mirroring NewEngine.
func NewFaultModel(cfg FaultConfig) (*FaultModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &FaultModel{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		flitErrProb: -math.Expm1(float64(FlitBytes*8) * math.Log1p(-cfg.BER)),
	}, nil
}

// MustFaultModel is NewFaultModel for statically known-good configurations;
// it panics on an invalid config.
func MustFaultModel(cfg FaultConfig) *FaultModel {
	f, err := NewFaultModel(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Config returns the model's configuration with defaults applied.
func (f *FaultModel) Config() FaultConfig { return f.cfg }

// FlitErrorProb returns the per-flit corruption probability.
func (f *FaultModel) FlitErrorProb() float64 { return f.flitErrProb }

// PacketErrorProb returns the probability that a wire packet of pktBytes is
// corrupted (CRC failure of at least one of its flits). Burst errors reduce
// the number of independent error events by the burst length.
func (f *FaultModel) PacketErrorProb(pktBytes int) float64 {
	return PacketErrorProb(f.flitErrProb, f.cfg.BurstFlits, pktBytes)
}

// PacketErrorProb is the pure computation behind FaultModel.PacketErrorProb,
// reusable by degradation policies that reason about hypothetical packet
// shapes: the probability that a pktBytes packet fails its CRC given a
// per-flit error probability and a mean burst length.
func PacketErrorProb(flitErrProb float64, burstFlits, pktBytes int) float64 {
	if flitErrProb <= 0 || pktBytes <= 0 {
		return 0
	}
	if burstFlits <= 0 {
		burstFlits = 1
	}
	flits := (pktBytes + FlitPayloadBytes - 1) / FlitPayloadBytes
	// Error *events* start bursts; the per-flit event rate preserves the
	// configured BER mass.
	event := flitErrProb / float64(burstFlits)
	p := -math.Expm1(float64(flits) * math.Log1p(-event))
	if p > 1 {
		p = 1
	}
	return p
}

// ExpectedRetriesPerPacket returns the expected first-round retransmissions
// per wire packet of pktBytes: the packet error probability times the burst
// spread. Degradation policies use this to price packet shapes against each
// other.
func (f *FaultModel) ExpectedRetriesPerPacket(pktBytes int) float64 {
	return f.PacketErrorProb(pktBytes) * float64(f.burstSpread(pktBytes))
}

// burstSpread returns how many packets one burst event corrupts.
func (f *FaultModel) burstSpread(pktBytes int) int64 {
	if f.cfg.BurstFlits <= 1 {
		return 1
	}
	flitsPerPkt := (pktBytes + FlitPayloadBytes - 1) / FlitPayloadBytes
	spread := int64((f.cfg.BurstFlits + flitsPerPkt - 1) / flitsPerPkt)
	if spread < 1 {
		spread = 1
	}
	return spread
}

// stallHit rolls the controller-stall Bernoulli for one flow.
func (f *FaultModel) stallHit() bool {
	if f.cfg.StallProb <= 0 {
		return false
	}
	return f.rng.Float64() < f.cfg.StallProb
}

// draw samples Binomial(k, p) deterministically. Exact Bernoulli rolls are
// used for small k; a Poisson (small mean) or normal (large mean)
// approximation otherwise, so the cost per draw is O(1)-ish instead of O(k)
// for the multi-hundred-thousand-packet flows of large models.
func (f *FaultModel) draw(k int64, p float64) int64 {
	if k <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return k
	}
	mean := float64(k) * p
	switch {
	case k <= 64:
		var c int64
		for i := int64(0); i < k; i++ {
			if f.rng.Float64() < p {
				c++
			}
		}
		return c
	case mean < 32:
		// Poisson inversion on one uniform.
		u := f.rng.Float64()
		pm := math.Exp(-mean)
		cdf := pm
		var c int64
		for u > cdf && c < k {
			c++
			pm *= mean / float64(c)
			cdf += pm
		}
		return c
	default:
		c := int64(math.Round(mean + f.rng.NormFloat64()*math.Sqrt(mean*(1-p))))
		if c < 0 {
			c = 0
		}
		if c > k {
			c = k
		}
		return c
	}
}

// CorruptFrame applies deterministic bit errors to a wire frame: the number
// of flips is a binomial draw over the frame's bits at the configured BER.
// It returns the (possibly copied and corrupted) frame and the flip count;
// with zero flips the input slice is returned unmodified.
func (f *FaultModel) CorruptFrame(wire []byte) ([]byte, int) {
	return f.CorruptFrameReuse(wire, nil)
}

// CorruptFrameReuse is CorruptFrame with a caller-owned scratch buffer for
// the corrupted copy: when flips occur the copy lands in scratch's capacity
// instead of a fresh allocation. The RNG draw sequence is identical to
// CorruptFrame's, so the two forms are interchangeable mid-run.
func (f *FaultModel) CorruptFrameReuse(wire, scratch []byte) ([]byte, int) {
	bits := int64(len(wire)) * 8
	k := f.draw(bits, f.cfg.BER)
	if k == 0 {
		return wire, 0
	}
	cp := append(scratch[:0], wire...)
	for i := int64(0); i < k; i++ {
		b := f.rng.Int63n(bits)
		cp[b/8] ^= 1 << (b % 8)
	}
	return cp, int(k)
}

// LinkFaultStats is the per-link fault/recovery accounting.
type LinkFaultStats struct {
	// Retries counts packet retransmissions (one per corrupted packet per
	// round).
	Retries int64
	// ReplayedBytes is the wire volume retransmitted from the replay
	// buffer.
	ReplayedBytes int64
	// Poisoned counts packets whose retry budget was exhausted and that
	// were delivered poisoned.
	Poisoned int64
	// Stalls counts injected controller-queue stalls; StallTime is their
	// cumulative duration.
	Stalls    int64
	StallTime sim.Time
	// RetryTime is the cumulative flow-completion delay caused by
	// retransmit rounds (NAK round trips, backoff, resends, replay-buffer
	// drain waves).
	RetryTime sim.Time
	// ReplayHighWater is the largest single-round replay-buffer demand in
	// packets (may exceed the configured depth; the excess drains in
	// waves).
	ReplayHighWater int64
}

// Add returns element-wise accumulation (high water maxes).
func (s LinkFaultStats) Add(o LinkFaultStats) LinkFaultStats {
	s.Retries += o.Retries
	s.ReplayedBytes += o.ReplayedBytes
	s.Poisoned += o.Poisoned
	s.Stalls += o.Stalls
	s.StallTime += o.StallTime
	s.RetryTime += o.RetryTime
	if o.ReplayHighWater > s.ReplayHighWater {
		s.ReplayHighWater = o.ReplayHighWater
	}
	return s
}

// FlowResult describes one flow's traversal of a (possibly faulty) link.
type FlowResult struct {
	// Admit is when a pending-queue slot was granted; Done is when the
	// last (successfully retransmitted) byte landed on the far side.
	Admit, Done sim.Time
	// CleanDone is the completion time the flow would have had on a
	// fault-free link with the same queue state.
	CleanDone sim.Time
	// Packets is the number of wire packets the flow was framed into.
	Packets int64
	// Retries / ReplayedBytes / Poisoned are this flow's share of the
	// link counters.
	Retries       int64
	ReplayedBytes int64
	Poisoned      int64
	// Stalled is the injected controller stall charged to this flow.
	Stalled sim.Time
}
