package trace

import (
	"bytes"
	"strings"
	"testing"

	"teco/internal/cxl"
	"teco/internal/mem"
	"teco/internal/sim"
)

func TestAppendAndSort(t *testing.T) {
	tr := &Trace{}
	tr.Append(30, Store, 3)
	tr.Append(10, Load, 1)
	tr.Append(20, Store, 2)
	if tr.Len() != 3 {
		t.Fatal("len")
	}
	recs := tr.Records()
	if recs[0].Line != 1 || recs[1].Line != 2 || recs[2].Line != 3 {
		t.Fatalf("not sorted: %+v", recs)
	}
	st := tr.Stores()
	if len(st) != 2 || st[0].Line != 2 {
		t.Fatalf("stores: %+v", st)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	tr := &Trace{}
	tr.Append(100, Store, 42)
	tr.Append(200, Load, 7)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatal("len after read")
	}
	recs := got.Records()
	if recs[0].At != 100 || recs[0].Op != Store || recs[0].Line != 42 {
		t.Fatalf("rec0 = %+v", recs[0])
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("garbage\n")); err == nil {
		t.Fatal("garbage must error")
	}
	if _, err := Read(strings.NewReader("10 X 5\n")); err == nil {
		t.Fatal("bad op must error")
	}
	tr, err := Read(strings.NewReader(""))
	if err != nil || tr.Len() != 0 {
		t.Fatal("empty trace should parse")
	}
}

func TestReplayOverCXL(t *testing.T) {
	tr := &Trace{}
	// 100 stores all ready at t=0: the link serializes them.
	for i := 0; i < 100; i++ {
		tr.Append(0, Store, mem.LineAddr(i))
	}
	link := cxl.NewLink(sim.New(), 16e9, 0)
	res := ReplayOverCXL(tr, link, 64, 0)
	if res.Lines != 100 || res.Bytes != 6400 {
		t.Fatalf("lines=%d bytes=%d", res.Lines, res.Bytes)
	}
	want := sim.DurationForBytes(6400, 16e9)
	if res.Finish < want*99/100 || res.Finish > want*101/100 {
		t.Fatalf("finish = %v, want ~%v", res.Finish, want)
	}
	if res.ExposedAfter != res.Finish {
		t.Fatal("all exposure is after the (instantaneous) producer")
	}
}

func TestReplayDBASmallerFinish(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 1000; i++ {
		tr.Append(0, Store, mem.LineAddr(i))
	}
	full := ReplayOverCXL(tr, cxl.NewLink(sim.New(), 16e9, 0), 64, 0)
	dba := ReplayOverCXL(tr, cxl.NewLink(sim.New(), 16e9, 0), 32, sim.Nanosecond)
	if dba.Finish >= full.Finish {
		t.Fatalf("DBA replay %v must beat full %v", dba.Finish, full.Finish)
	}
	if dba.Bytes*2 != full.Bytes {
		t.Fatal("volume halved")
	}
}

func TestReplaySpreadProducer(t *testing.T) {
	// Producer slower than the link: exposure is only the last transfer.
	tr := &Trace{}
	gap := 10 * sim.Microsecond
	for i := 0; i < 10; i++ {
		tr.Append(sim.Time(i+1)*gap, Store, mem.LineAddr(i))
	}
	link := cxl.NewLink(sim.New(), 16e9, 0)
	res := ReplayOverCXL(tr, link, 64, 0)
	lineTime := link.ServiceTime(64, 0)
	if res.ExposedAfter != lineTime {
		t.Fatalf("exposure = %v, want one line time %v", res.ExposedAfter, lineTime)
	}
}

func TestFromUpdateChunks(t *testing.T) {
	ready := []sim.Time{100, 200}
	bytesPer := []int64{640, 640} // 10 lines each
	tr := FromUpdateChunks(1000, ready, bytesPer, 50, 0)
	if tr.Len() != 20 {
		t.Fatalf("records = %d", tr.Len())
	}
	recs := tr.Records()
	if recs[0].At <= 1000 {
		t.Fatal("records must start after the phase offset")
	}
	if last := recs[len(recs)-1].At; last != 1200 {
		t.Fatalf("last record at %v, want phase start + final ready", last)
	}
	// Line addresses within the region.
	for _, r := range recs {
		if r.Line < 50 || r.Line >= 70 {
			t.Fatalf("line %d outside region", r.Line)
		}
	}
}

func TestFromUpdateChunksCapped(t *testing.T) {
	tr := FromUpdateChunks(0, []sim.Time{100}, []int64{64 * 1000}, 0, 10)
	if tr.Len() != 10 {
		t.Fatalf("capped records = %d", tr.Len())
	}
}

func TestFromUpdateChunksMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromUpdateChunks(0, []sim.Time{1}, nil, 0, 0)
}
