// Package trace records and replays timed cache-line writeback traces —
// the interface between the CPU/GPU simulators and the CXL emulator in the
// paper's methodology (§VIII-A: "we collect the timing and amount of these
// writebacks by generating a trace of main memory accesses during CPU
// simulation ... The trace contains the timings and addresses of memory
// loads/stores"). Traces serialize to a compact line-oriented text format
// so runs are reproducible and diffable.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"teco/internal/cxl"
	"teco/internal/mem"
	"teco/internal/sim"
)

// Op is a memory access kind.
type Op byte

const (
	// Load is a read from memory.
	Load Op = 'L'
	// Store is a write (for the CXL replay: a dirty writeback).
	Store Op = 'S'
)

// Record is one timed memory access.
type Record struct {
	At   sim.Time
	Op   Op
	Line mem.LineAddr
}

// Trace is an ordered sequence of records.
type Trace struct {
	recs []Record
}

// Append adds a record; timestamps may arrive unordered and are sorted at
// replay/serialization time.
func (t *Trace) Append(at sim.Time, op Op, line mem.LineAddr) {
	t.recs = append(t.recs, Record{At: at, Op: op, Line: line})
}

// Len returns the record count.
func (t *Trace) Len() int { return len(t.recs) }

// Records returns the records sorted by time (stable).
func (t *Trace) Records() []Record {
	out := make([]Record, len(t.recs))
	copy(out, t.recs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Stores returns only the store records, time-sorted.
func (t *Trace) Stores() []Record {
	var out []Record
	for _, r := range t.Records() {
		if r.Op == Store {
			out = append(out, r)
		}
	}
	return out
}

// Write serializes the trace: one "<ps> <op> <line>" row per record.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Records() {
		if _, err := fmt.Fprintf(bw, "%d %c %d\n", int64(r.At), r.Op, uint64(r.Line)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a serialized trace.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		var at int64
		var op byte
		var line uint64
		if _, err := fmt.Sscanf(sc.Text(), "%d %c %d", &at, &op, &line); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		if op != byte(Load) && op != byte(Store) {
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, op)
		}
		t.Append(sim.Time(at), Op(op), mem.LineAddr(line))
	}
	return t, sc.Err()
}

// ReplayResult summarizes replaying a writeback trace over the CXL link.
type ReplayResult struct {
	// Lines is the number of writebacks replayed.
	Lines int64
	// Bytes is the payload volume.
	Bytes int64
	// Finish is when the last transfer completes.
	Finish sim.Time
	// ExposedAfter is Finish minus the last producer timestamp: the
	// drain tail a CXLFENCE at the end of the producing phase waits for.
	ExposedAfter sim.Time
	// Stall is total producer back-pressure from the pending queue.
	Stall sim.Time
}

// ReplayOverCXL replays the trace's stores through a timed CXL link — the
// paper's process.py. payloadPerLine is the on-link bytes per 64-byte
// writeback (64, or 32 under DBA with dirty_bytes=2); extra is added per
// transfer (Aggregator latency).
func ReplayOverCXL(t *Trace, link *cxl.Link, payloadPerLine int, extra sim.Time) ReplayResult {
	var res ReplayResult
	var lastReady sim.Time
	for _, r := range t.Stores() {
		_, done := link.Send(r.At, payloadPerLine, extra)
		res.Lines++
		res.Bytes += int64(payloadPerLine)
		if done > res.Finish {
			res.Finish = done
		}
		if r.At > lastReady {
			lastReady = r.At
		}
	}
	if res.Finish > lastReady {
		res.ExposedAfter = res.Finish - lastReady
	}
	_, _, _, stall := link.Stats()
	res.Stall = stall
	return res
}

// FromUpdateChunks synthesizes a writeback trace from layer-granular
// update chunks (start offset + per-chunk ready times), splitting each
// chunk into line-granular stores spread uniformly across its window. The
// lines per chunk are capped to keep huge models tractable; cap <= 0 means
// one record per cache line.
func FromUpdateChunks(start sim.Time, readyAt []sim.Time, bytes []int64, base mem.LineAddr, cap int) *Trace {
	if len(readyAt) != len(bytes) {
		panic("trace: mismatched chunk schedule")
	}
	t := &Trace{}
	prev := sim.Time(0)
	next := base
	for i := range readyAt {
		lines := mem.LinesIn(bytes[i])
		n := lines
		if cap > 0 && n > int64(cap) {
			n = int64(cap)
		}
		window := readyAt[i] - prev
		for k := int64(0); k < n; k++ {
			at := start + prev + sim.Time(int64(window)*(k+1)/n)
			t.Append(at, Store, next+mem.LineAddr(k*lines/n))
		}
		prev = readyAt[i]
		next += mem.LineAddr(lines)
	}
	return t
}
