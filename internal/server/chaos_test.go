package server

// The chaos harness: proves the sweep service serves only correct,
// golden-equal results across repeated kill/restart cycles while the cache
// layer is being actively damaged — bit flips and truncated tails on
// committed entries, short writes and transient errors on the write path,
// and injected crashes that stop a write dead at an arbitrary byte. The
// contract under test is the one the package doc promises: corruption can
// cost a recompute, never a wrong answer.
//
// Two layers:
//
//   - TestChaosKillRestartCycles runs 60 in-process server lifetimes over
//     one shared cache directory (Kill on odd cycles, Drain on even) and
//     DeepEquals every response against the seed-42 conformance reference.
//   - TestDaemonSIGTERMDrain and TestDaemonChaosSoak drive the real
//     tecosimd binary over TCP; the soak (SIGKILL loop under fault flags)
//     is bounded by SOAK_SECS and skipped when unset, so `make soak` and
//     the CI soak job opt in explicitly.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"teco/internal/conformance"
	"teco/internal/diskcache"
	"teco/internal/experiments"
)

// chaosIDs are engine-only experiments (each generates in tens of
// milliseconds), cheap enough to recompute hundreds of times per run.
var chaosIDs = []string{"table1", "fig12", "volume", "table6", "ablation-dpu"}

// references generates the trusted seed-42 result set once.
func references(t *testing.T) map[string][]*experiments.Table {
	t.Helper()
	want := make(map[string][]*experiments.Table, len(chaosIDs))
	for _, id := range chaosIDs {
		tables, err := conformance.Generate(id)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = tables
	}
	return want
}

// TestChaosKillRestartCycles is the acceptance test: 60 server lifetimes
// over one cache directory with every fault family armed. Every 200
// response — cold, warm, or recomputed-after-corruption — must DeepEqual
// the conformance reference; torn or damaged entries may only ever cost a
// recompute.
func TestChaosKillRestartCycles(t *testing.T) {
	const cycles = 60
	dir := t.TempDir()
	want := references(t)

	faults := diskcache.NewFaults(1)
	faults.FlipBitEvery = 3
	faults.TruncateEvery = 5
	faults.ShortWriteEvery = 4
	faults.WriteErrEvery = 7

	// Off-golden seeds keep cold computes (and therefore cache commits, the
	// events the corruption plan counts) flowing in every cycle; their
	// references are generated directly and memoized.
	seedWant := make(map[string][]*experiments.Table)
	seedRef := func(id string, seed int64) []*experiments.Table {
		k := fmt.Sprintf("%s/%d", id, seed)
		if tables, ok := seedWant[k]; ok {
			return tables
		}
		tables, err := experiments.ByIDWith(id, experiments.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		seedWant[k] = tables
		return tables
	}

	var total diskcache.Stats
	served := 0
	for cycle := 0; cycle < cycles; cycle++ {
		s, err := New(Config{CacheDir: dir, CacheFaults: faults, CacheRetrySeed: int64(cycle)})
		if err != nil {
			t.Fatalf("cycle %d: restart failed: %v", cycle, err)
		}
		if cycle%5 == 2 {
			// Arm a kill -9 mid-write: the next cache commit dies at byte
			// `cycle` leaving a torn temp file for a later Open to sweep.
			faults.CrashNextWriteAfter(int64(cycle))
		}
		check := func(id string, seed int64, want []*experiments.Table) {
			resp, code := getRun(t, s.Handler(), fmt.Sprintf("id=%s&seed=%d", id, seed))
			if code != http.StatusOK {
				t.Fatalf("cycle %d %s seed %d: HTTP %d", cycle, id, seed, code)
			}
			got, err := DecodeTables(resp.Tables)
			if err != nil {
				t.Fatalf("cycle %d %s seed %d: undecodable response: %v", cycle, id, seed, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cycle %d %s seed %d: served tables differ from the reference (cached=%v)", cycle, id, seed, resp.Cached)
			}
			served++
		}
		for i, id := range chaosIDs {
			// Rotate which ids each cycle asks for so hits, misses and
			// recomputes all occur; all at the golden seed.
			if (cycle+i)%2 == 0 {
				continue
			}
			check(id, 42, want[id])
		}
		// One rotating off-golden request per cycle: seeds repeat every 7
		// cycles, so earlier (possibly since-corrupted) entries are re-read.
		id := chaosIDs[cycle%len(chaosIDs)]
		seed := int64(cycle % 7)
		check(id, seed, seedRef(id, seed))
		st := s.Cache().Stats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Puts += st.Puts
		total.CorruptDropped += st.CorruptDropped
		total.Retries += st.Retries
		total.TempSwept += st.TempSwept
		if cycle%2 == 1 {
			s.Kill() // abrupt: no flush, cache dir left as-is
		} else {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := s.Drain(ctx); err != nil {
				t.Fatalf("cycle %d: drain: %v", cycle, err)
			}
			cancel()
		}
	}

	// The run must actually have exercised the fault machinery, or the
	// zero-wrong-answers assertion above proved nothing.
	flips, truncs := faults.Corruptions()
	if flips == 0 || truncs == 0 {
		t.Fatalf("fault plan never fired: %d flips, %d truncations", flips, truncs)
	}
	if faults.Crashes() == 0 {
		t.Fatal("no injected mid-write crash fired")
	}
	if total.CorruptDropped == 0 {
		t.Fatal("no corrupt entry was ever detected and dropped — corruption injection is broken")
	}
	if total.TempSwept == 0 {
		t.Fatal("no torn temp file was ever swept — crash injection is broken")
	}
	if total.Hits == 0 {
		t.Fatal("no warm hit across the whole run — caching is broken")
	}
	t.Logf("%d cycles, %d responses verified: hits=%d puts=%d corrupt-dropped=%d retries=%d temp-swept=%d flips=%d truncs=%d crashes=%d",
		cycles, served, total.Hits, total.Puts, total.CorruptDropped, total.Retries, total.TempSwept, flips, truncs, faults.Crashes())
}

// TestChaosConcurrentClientsUnderFaults hammers one server lifetime with
// concurrent clients while entries are being corrupted, proving the
// coalescing + gate + corruption-recovery composition is race-free (run
// with -race) and still answer-exact.
func TestChaosConcurrentClientsUnderFaults(t *testing.T) {
	want := references(t)
	faults := diskcache.NewFaults(2)
	faults.FlipBitEvery = 2 // corrupt half of all committed entries
	s := newTestServer(t, func(c *Config) {
		c.CacheFaults = faults
		c.Slots = 4
	})

	const rounds, clients = 8, 6
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				id := chaosIDs[c%len(chaosIDs)]
				w := httptest.NewRecorder()
				s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/run?id="+id+"&seed=42", nil))
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("%s: HTTP %d", id, w.Code)
					return
				}
				var resp Response
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				got, err := DecodeTables(resp.Tables)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[id]) {
					errs <- fmt.Errorf("%s: wrong tables served (cached=%v)", id, resp.Cached)
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	if flips, _ := faults.Corruptions(); flips == 0 {
		t.Fatal("no corruption fired during the concurrent run")
	}
}

// --- process-level harness -------------------------------------------------

var (
	daemonBinOnce sync.Once
	daemonBin     string
	daemonBinErr  error
)

// buildDaemon builds cmd/tecosimd once per test process.
func buildDaemon(t *testing.T) string {
	t.Helper()
	daemonBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tecosimd-bin-*")
		if err != nil {
			daemonBinErr = err
			return
		}
		daemonBin = filepath.Join(dir, "tecosimd")
		cmd := exec.Command("go", "build", "-o", daemonBin, "teco/cmd/tecosimd")
		if out, err := cmd.CombinedOutput(); err != nil {
			daemonBinErr = fmt.Errorf("go build tecosimd: %v\n%s", err, out)
		}
	})
	if daemonBinErr != nil {
		t.Fatal(daemonBinErr)
	}
	return daemonBin
}

// startDaemon launches tecosimd on an ephemeral port and returns the base
// URL once the readiness line has been printed, plus the running command.
func startDaemon(t *testing.T, extraArgs ...string) (string, *exec.Cmd, *bufio.Scanner) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(buildDaemon(t), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.Fields(line[i+len("listening on "):])[0]
			return "http://" + addr, cmd, sc
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatal("daemon exited before printing its listen address")
	return "", nil, nil
}

// fetchTables GETs /run and decodes the table payload.
func fetchTables(base, id string) ([]*experiments.Table, bool, error) {
	resp, err := http.Get(base + "/run?id=" + id + "&seed=42")
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("%s: HTTP %d: %s", id, resp.StatusCode, body)
	}
	var envelope Response
	if err := json.Unmarshal(body, &envelope); err != nil {
		return nil, false, err
	}
	tables, err := DecodeTables(envelope.Tables)
	return tables, envelope.Cached, err
}

// TestDaemonSIGTERMDrain verifies the graceful-shutdown contract at the
// process level: a SIGTERM arriving while a slow request (fig2, a real
// fine-tuning run, ~seconds) is in flight must not drop that request — it
// completes with the correct tables — and the process then exits 0 after
// printing its drain summary.
func TestDaemonSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test; skipped in -short mode")
	}
	base, cmd, sc := startDaemon(t, "-cache-dir", t.TempDir())

	type result struct {
		tables []*experiments.Table
		err    error
	}
	slow := make(chan result, 1)
	go func() {
		tables, _, err := fetchTables(base, "fig2")
		slow <- result{tables, err}
	}()
	// Give the request time to reach the generator, then pull the plug.
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	r := <-slow
	if r.err != nil {
		t.Fatalf("in-flight request dropped by SIGTERM: %v", r.err)
	}
	want, err := conformance.Generate("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.tables, want) {
		t.Fatal("request served during drain differs from the conformance reference")
	}

	var drained bool
	for sc.Scan() {
		if strings.Contains(sc.Text(), "drained") {
			drained = true
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
	}
	if !drained {
		t.Fatal("daemon never printed its drain summary")
	}
}

// TestDaemonChaosSoak is the bounded process-level soak (`make soak`): an
// endless SIGKILL/restart loop against the real binary with cache fault
// injection enabled, verifying every response against the conformance
// reference. SOAK_SECS bounds the wall clock; unset skips (the in-process
// chaos tests above run unconditionally).
func TestDaemonChaosSoak(t *testing.T) {
	secsEnv := os.Getenv("SOAK_SECS")
	if secsEnv == "" {
		t.Skip("set SOAK_SECS to run the process-level soak (make soak)")
	}
	secs, err := strconv.Atoi(secsEnv)
	if err != nil || secs <= 0 {
		t.Fatalf("bad SOAK_SECS %q", secsEnv)
	}
	deadline := time.Now().Add(time.Duration(secs) * time.Second)
	want := references(t)
	cacheDir := t.TempDir()

	cycles, responses := 0, 0
	for time.Now().Before(deadline) {
		base, cmd, _ := startDaemon(t,
			"-cache-dir", cacheDir,
			"-fault-seed", strconv.Itoa(cycles+1),
			"-fault-flip-every", "3",
			"-fault-trunc-every", "5",
			"-fault-short-every", "4",
			"-fault-writeerr-every", "7",
		)
		for i, id := range chaosIDs {
			if (cycles+i)%2 == 0 {
				continue
			}
			tables, _, err := fetchTables(base, id)
			if err != nil {
				t.Fatalf("cycle %d: %v", cycles, err)
			}
			if !reflect.DeepEqual(tables, want[id]) {
				t.Fatalf("cycle %d %s: wrong tables served by daemon under fault injection", cycles, id)
			}
			responses++
		}
		// kill -9: no drain, no flush; the next cycle reboots on the same
		// cache directory and must sweep any torn state.
		cmd.Process.Kill()
		cmd.Wait()
		cycles++
	}
	if cycles < 2 {
		t.Fatalf("soak completed only %d cycles; SOAK_SECS too small to prove anything", cycles)
	}
	t.Logf("soak: %d SIGKILL cycles, %d responses verified, zero wrong answers", cycles, responses)
}
