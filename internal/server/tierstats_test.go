package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"teco/internal/experiments"
	"teco/internal/realtrain"
	"teco/internal/tiering"
)

// TestStatzExposesTierCounters: /statz surfaces the process-wide
// heterogeneous-tiering telemetry — a training run under a bounded fast
// tier with a migration budget moves the placement counters, and the JSON
// names are the documented ones. The counters are process-global and
// monotone, so the test asserts deltas.
func TestStatzExposesTierCounters(t *testing.T) {
	s := newTestServer(t, nil)
	before := statz(t, s.Handler()).Tiering

	// Drive a real stack training run under a bounded fast tier (75%: the
	// tier must still hold the largest optimizer-state slot) with a generous
	// migration budget; its placement events land in the telemetry /statz
	// snapshots. The recency policy chases the last-touched slot — the far
	// optimizer state, touched at the tail of every update pass — so
	// migrations are guaranteed to flow.
	tr, err := realtrain.NewTrainer(realtrain.Config{
		Arch: "stack", Layers: 3,
		Steps: 6, PreSteps: 6, Seed: 9,
		TierDRAMPct: 75, TierMigrateWords: 2_000_000, TierPolicy: "lru",
	})
	if err != nil {
		t.Fatal(err)
	}
	for !tr.Done() {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}

	after := statz(t, s.Handler()).Tiering
	if after.PlanSteps <= before.PlanSteps || after.FastHits <= before.FastHits {
		t.Fatalf("tiering counters never moved: before %+v after %+v", before, after)
	}
	if after.FarAccesses <= before.FarAccesses {
		t.Fatalf("far-access counter never moved: before %+v after %+v", before, after)
	}
	if after.Migrations <= before.Migrations || after.PromotedBytes <= before.PromotedBytes {
		t.Fatalf("migration counters never moved: before %+v after %+v", before, after)
	}

	// The wire names are part of the operator interface; pin them.
	raw, err := json.Marshal(Stats{Tiering: tiering.TierCounters{}})
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]json.RawMessage
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatal(err)
	}
	var tb map[string]json.RawMessage
	if err := json.Unmarshal(tree["tiering"], &tb); err != nil {
		t.Fatalf("no tiering block in /statz: %s", raw)
	}
	for _, name := range []string{"fast_hits", "far_accesses", "plan_steps",
		"migrations", "promoted_bytes", "demoted_bytes", "deferred"} {
		if _, ok := tb[name]; !ok {
			t.Fatalf("tiering counter %q missing from /statz", name)
		}
	}
}

// TestRunTierKnobsReachOptions: the /run tiering knobs parse from the query
// string and land in experiments.Options.
func TestRunTierKnobsReachOptions(t *testing.T) {
	var got experiments.Options
	s := newTestServer(t, func(c *Config) {
		c.Run = func(_ context.Context, id string, opt experiments.Options) ([]*experiments.Table, error) {
			got = opt
			return []*experiments.Table{{ID: id, Title: "stub", Header: []string{"a"}}}, nil
		}
	})
	_, code := getRun(t, s.Handler(),
		"id=tiering&seed=1&tier_policy=lru&tier_dram_pct=30&tier_migrate_budget=128")
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if got.TierPolicy != "lru" || got.TierDRAMPct != 30 || got.TierMigrateBudget != 128 {
		t.Fatalf("tier knobs lost in transit: %+v", got)
	}
}
