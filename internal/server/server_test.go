package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"teco/internal/conformance"
	"teco/internal/experiments"
)

// newTestServer builds a server over a fresh temp cache dir. Tweak the
// config (slots, stub runner) via mutate before construction.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{CacheDir: t.TempDir(), DefaultTimeout: 30 * time.Second}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

// getRun issues GET /run?... against a handler and decodes the envelope.
func getRun(t *testing.T, h http.Handler, query string) (Response, int) {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/run?"+query, nil))
	var resp Response
	if w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad envelope: %v\n%s", err, w.Body.Bytes())
		}
	}
	return resp, w.Code
}

// TestRunMatchesConformanceGoldens: a served result must DeepEqual the
// tables the conformance harness generates for the same id at the golden
// seed — the daemon adds transport and caching, never new numbers.
func TestRunMatchesConformanceGoldens(t *testing.T) {
	s := newTestServer(t, nil)
	for _, id := range []string{"table1", "fig12", "volume"} {
		resp, code := getRun(t, s.Handler(), fmt.Sprintf("id=%s&seed=%d", id, conformance.GoldenSeed))
		if code != http.StatusOK {
			t.Fatalf("%s: HTTP %d", id, code)
		}
		got, err := DecodeTables(resp.Tables)
		if err != nil {
			t.Fatalf("%s: decode: %v", id, err)
		}
		want, err := conformance.Generate(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: served tables differ from conformance reference", id)
		}
	}
}

// TestWarmCacheServesIdenticalBytes: the second request for a key is a
// cache hit with byte-identical tables and no second computation.
func TestWarmCacheServesIdenticalBytes(t *testing.T) {
	s := newTestServer(t, nil)
	cold, code := getRun(t, s.Handler(), "id=table1&seed=42")
	if code != http.StatusOK || cold.Cached {
		t.Fatalf("cold request: HTTP %d cached=%v", code, cold.Cached)
	}
	warm, code := getRun(t, s.Handler(), "id=table1&seed=42")
	if code != http.StatusOK || !warm.Cached {
		t.Fatalf("warm request: HTTP %d cached=%v", code, warm.Cached)
	}
	if !bytes.Equal(cold.Tables, warm.Tables) {
		t.Fatal("warm bytes differ from cold bytes for the same key")
	}
	if warm.Key != cold.Key {
		t.Fatalf("key changed between requests: %s vs %s", cold.Key, warm.Key)
	}
	if st := s.Stats(); st.Computes != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want exactly 1 compute and 1 hit", st)
	}
}

// TestDistinctConfigsGetDistinctKeys: result-shaping parameters move the
// cache key; scheduling parameters do not (they are the server's own).
func TestDistinctConfigsGetDistinctKeys(t *testing.T) {
	s := newTestServer(t, nil)
	a, _ := getRun(t, s.Handler(), "id=fig12&seed=1")
	b, _ := getRun(t, s.Handler(), "id=fig12&seed=2")
	if a.Key == b.Key {
		t.Fatal("different seeds mapped to the same cache key")
	}
}

// stubRunner returns a Run override that blocks until release is closed,
// counts invocations, and respects cancellation.
func stubRunner(started *atomic.Int64, release chan struct{}) func(context.Context, string, experiments.Options) ([]*experiments.Table, error) {
	return func(ctx context.Context, id string, opt experiments.Options) ([]*experiments.Table, error) {
		started.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []*experiments.Table{{ID: id, Title: "stub", Header: []string{"x"}}}, nil
	}
}

// TestCoalescingSharesOneComputation: concurrent identical requests run the
// generator once; the late arrivals report coalesced.
func TestCoalescingSharesOneComputation(t *testing.T) {
	var started atomic.Int64
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) { c.Run = stubRunner(&started, release) })

	const clients = 8
	codes := make([]int, clients)
	var coalesced atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, code := getRun(t, s.Handler(), "id=table1&seed=7")
			codes[i] = code
			if resp.Coalesced {
				coalesced.Add(1)
			}
		}(i)
	}
	// Wait until the one computation is in flight, then release it.
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the rest of the clients pile on
	close(release)
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("client %d: HTTP %d", i, code)
		}
	}
	if got := started.Load(); got != 1 {
		t.Fatalf("generator ran %d times for %d identical requests, want 1", got, clients)
	}
	if coalesced.Load() == 0 {
		t.Fatal("no client reported coalesced despite sharing a computation")
	}
}

// TestOverloadShedsWith503: with one slot and a zero-depth queue, a second
// distinct cold request is shed immediately with 503 + Retry-After rather
// than queued behind the running computation.
func TestOverloadShedsWith503(t *testing.T) {
	var started atomic.Int64
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.Slots = 1
		c.QueueDepth = -1 // shed as soon as the slot is taken
		c.Run = stubRunner(&started, release)
	})

	errc := make(chan int, 1)
	go func() {
		_, code := getRun(t, s.Handler(), "id=table1&seed=1")
		errc <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/run?id=table1&seed=2", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded request: HTTP %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After header")
	}
	close(release)
	if code := <-errc; code != http.StatusOK {
		t.Fatalf("in-flight request: HTTP %d", code)
	}
	if s.Stats().Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", s.Stats().Shed)
	}
}

// TestDeadlineCancelsAbandonedComputation: when the only waiter times out,
// the request gets 504 and the computation's context is cancelled so the
// sweep pool stops burning the slot.
func TestDeadlineCancelsAbandonedComputation(t *testing.T) {
	cancelled := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.Run = func(ctx context.Context, id string, opt experiments.Options) ([]*experiments.Table, error) {
			<-ctx.Done()
			close(cancelled)
			return nil, ctx.Err()
		}
	})
	_, code := getRun(t, s.Handler(), "id=table1&seed=3&timeout_ms=50")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request: HTTP %d, want 504", code)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned computation was never cancelled")
	}
	if s.Stats().Timeouts != 1 {
		t.Fatalf("timeout counter = %d, want 1", s.Stats().Timeouts)
	}
}

// TestCancelledGenerationIsNeverCached: a generation that ran to its
// (cancelled) end must not leave a poisoned cache entry — the next request
// for the key must recompute and get the real result.
func TestCancelledGenerationIsNeverCached(t *testing.T) {
	s := newTestServer(t, nil)
	if _, code := getRun(t, s.Handler(), "id=fig12&seed=42&timeout_ms=1"); code != http.StatusGatewayTimeout {
		// On a fast machine 1ms may still be enough to finish; only the
		// timeout path exercises the assertion, so require it.
		t.Skipf("generation finished inside 1ms; cannot exercise the cancellation path (HTTP %d)", code)
	}
	// The cancelled flight may briefly linger (a retry coalescing onto it
	// inherits its context.Canceled), and when cancellation loses the race
	// with a completed Put the cache legitimately holds the full result —
	// the guarantee is that nothing PARTIAL is ever served or cached. So:
	// retry past the lingering flight, then require the real tables.
	resp, code := getRun(t, s.Handler(), "id=fig12&seed=42")
	for deadline := time.Now().Add(10 * time.Second); code != http.StatusOK && time.Now().Before(deadline); {
		time.Sleep(10 * time.Millisecond)
		resp, code = getRun(t, s.Handler(), "id=fig12&seed=42")
	}
	if code != http.StatusOK {
		t.Fatalf("recompute after cancellation: HTTP %d", code)
	}
	got, err := DecodeTables(resp.Tables)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := conformance.Generate("fig12")
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-cancellation recompute differs from conformance reference")
	}
}

// TestBadRequests: unknown ids and malformed parameters are 400s, never
// computations.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, nil)
	for _, query := range []string{"id=nope", "id=table1&seed=abc", ""} {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/run?"+query, nil))
		if w.Code != http.StatusBadRequest {
			t.Fatalf("query %q: HTTP %d, want 400", query, w.Code)
		}
	}
	if st := s.Stats(); st.Computes != 0 {
		t.Fatalf("bad requests triggered %d computations", st.Computes)
	}
}

// TestPostJSONBody: POST with a JSON body is equivalent to GET with query
// parameters — same key, same bytes.
func TestPostJSONBody(t *testing.T) {
	s := newTestServer(t, nil)
	viaGet, _ := getRun(t, s.Handler(), "id=table1&seed=5")
	body, _ := json.Marshal(Request{ID: "table1", Seed: 5})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/run", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("POST: HTTP %d", w.Code)
	}
	var viaPost Response
	json.Unmarshal(w.Body.Bytes(), &viaPost)
	if viaPost.Key != viaGet.Key || !bytes.Equal(viaPost.Tables, viaGet.Tables) {
		t.Fatal("POST body and GET query produced different results")
	}
	if !viaPost.Cached {
		t.Fatal("identical POST request missed the cache warmed by GET")
	}
}

// TestDrainFinishesInFlightAndRejectsNew: SIGTERM semantics — an in-flight
// request completes successfully during the drain while new arrivals get
// 503, and the drain returns once the last request is done.
func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	var started atomic.Int64
	release := make(chan struct{})
	s, err := New(Config{CacheDir: t.TempDir(), Run: stubRunner(&started, release)})
	if err != nil {
		t.Fatal(err)
	}

	inflight := make(chan int, 1)
	go func() {
		_, code := getRun(t, s.Handler(), "id=table1&seed=9")
		inflight <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Wait for draining to take effect, then probe with a new request.
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/run?id=table1&seed=10", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: HTTP %d, want 503", w.Code)
	}

	select {
	case <-drained:
		t.Fatal("Drain returned while a request was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: HTTP %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestDrainLeavesNoGoroutines: after a drain the server's goroutines are
// gone (coalescing runners, gate waiters, drain watcher).
func TestDrainLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	s, err := New(Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < 3; seed++ {
		if _, code := getRun(t, s.Handler(), fmt.Sprintf("id=table1&seed=%d", seed)); code != http.StatusOK {
			t.Fatalf("seed %d: HTTP %d", seed, code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after drain", before, runtime.NumGoroutine())
}

// TestAuxiliaryEndpoints: /experiments lists registered ids, /healthz flips
// to 503 on drain, /statz serves a JSON snapshot.
func TestAuxiliaryEndpoints(t *testing.T) {
	s, err := New(Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/experiments", nil))
	var ids []string
	if err := json.Unmarshal(w.Body.Bytes(), &ids); err != nil || len(ids) == 0 {
		t.Fatalf("/experiments: %v (%s)", err, w.Body.Bytes())
	}
	if !reflect.DeepEqual(ids, experiments.IDs()) {
		t.Fatal("/experiments disagrees with the registry")
	}

	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "ok") {
		t.Fatalf("/healthz: HTTP %d %q", w.Code, w.Body.String())
	}

	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/statz", nil))
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("/statz: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Drain(ctx)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after drain: HTTP %d, want 503", w.Code)
	}
}

// TestWarmRestartReusesCache: a second server over the same directory
// serves the first server's results as hits without recomputing.
func TestWarmRestartReusesCache(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold, code := getRun(t, s1.Handler(), "id=volume&seed=42")
	if code != http.StatusOK {
		t.Fatalf("cold: HTTP %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(context.Background())
	warm, code := getRun(t, s2.Handler(), "id=volume&seed=42")
	if code != http.StatusOK || !warm.Cached {
		t.Fatalf("post-restart request: HTTP %d cached=%v", code, warm.Cached)
	}
	if !bytes.Equal(cold.Tables, warm.Tables) {
		t.Fatal("restarted server served different bytes for the same key")
	}
	if st := s2.Stats(); st.Computes != 0 {
		t.Fatalf("restarted server recomputed %d results it had on disk", st.Computes)
	}
}
