// Package server is the tecosimd sweep service: an HTTP/JSON front end
// that runs any registered experiment generator (internal/experiments)
// behind a bounded admission queue, coalesces identical in-flight requests
// by their canonical config fingerprint, and persists every result in a
// content-addressed, CRC-framed on-disk cache (internal/diskcache).
//
// Robustness is enforced, not hoped for:
//
//   - Per-request deadlines thread context cancellation through the sweep
//     pool (experiments.Options.Ctx → parallel.RunCtx): when the last
//     waiter for a computation gives up, the computation stops.
//   - Overload sheds instead of collapsing: when the compute slots and the
//     bounded queue are both full, requests get an immediate 503 with
//     Retry-After.
//   - Cache corruption — torn writes, bit flips, truncated tails — is
//     detected by CRC on read; the entry is dropped and transparently
//     recomputed. A crash at any byte of a cache write leaves either the
//     old entry or no entry (temp-file + fsync + rename + dir fsync).
//   - Graceful drain: Drain stops admitting, lets every in-flight request
//     finish, then flushes the cache directory. Kill models kill -9 for
//     the chaos harness (internal/server/chaos_test.go), which proves the
//     whole stack serves only bit-exact, golden-equal results across
//     repeated kill/restart cycles under injected disk faults.
//
// Determinism makes all of this cheap: every result is cacheable forever
// (PR 5's conformance harness pins them to seed-42 goldens), so throughput
// is a cache-and-resilience problem, not a compute problem.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"teco/internal/diskcache"
	"teco/internal/experiments"
	"teco/internal/fabric"
	"teco/internal/parallel"
	"teco/internal/staging"
	"teco/internal/tiering"
)

// payloadSchema versions the cached payload encoding (the JSON table
// serialization). It is mixed into every cache key so a schema change can
// never reinterpret old bytes — old entries simply miss and recompute.
const payloadSchema = 1

// Config parameterizes New. The zero value of every field selects a
// sensible default.
type Config struct {
	// CacheDir is the on-disk result cache directory (required).
	CacheDir string
	// Slots is the number of concurrently executing computations
	// (<= 0: 2). Each computation may itself fan out on Workers.
	Slots int
	// QueueDepth bounds how many cold requests may wait for a slot before
	// the server sheds load (< 0: 0, <=0 sheds as soon as slots fill;
	// 0 selects the default 64).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the client does not
	// send one (0: 2m). MaxTimeout caps client-requested deadlines (0: 10m).
	DefaultTimeout, MaxTimeout time.Duration
	// Workers sizes each computation's sweep pool (0: GOMAXPROCS).
	Workers int
	// RetryAfter is the hint returned with 503 responses (0: 1s).
	RetryAfter time.Duration
	// CacheMaxBytes bounds the on-disk cache; least-recently-used results
	// are evicted (and recomputed on demand) past it. 0 is unbounded.
	CacheMaxBytes int64
	// CacheFaults optionally injects cache-layer faults (chaos harness).
	CacheFaults *diskcache.Faults
	// CacheRetrySeed seeds the cache's backoff jitter.
	CacheRetrySeed int64
	// Run overrides the experiment runner (tests). Nil runs
	// experiments.ByIDWith.
	Run func(ctx context.Context, id string, opt experiments.Options) ([]*experiments.Table, error)
}

// Stats is the server's cumulative counter snapshot, plus the cache's.
type Stats struct {
	Requests  int64 `json:"requests"`
	Hits      int64 `json:"hits"`      // served straight from the warm cache
	Computes  int64 `json:"computes"`  // cold computations executed
	Coalesced int64 `json:"coalesced"` // requests that shared an in-flight computation
	Shed      int64 `json:"shed"`      // rejected 503: queue saturated
	Timeouts  int64 `json:"timeouts"`  // requests that hit their deadline
	Rejected  int64 `json:"rejected"`  // rejected 503: draining or killed
	PutErrors int64 `json:"put_errors"`

	InFlight int `json:"in_flight"` // distinct computations running now
	Queued   int `json:"queued"`    // cold requests waiting for a slot

	Cache diskcache.Stats `json:"cache"`

	// Fabric is the process-wide switched-fabric telemetry: port flaps,
	// failovers, frame retries, and degraded-mode training counters.
	Fabric fabric.Snapshot `json:"fabric"`

	// Layers is the process-wide per-layer offload telemetry: fast-tier
	// hits, misses, prefetch overlap, and eviction churn from both
	// scheduler halves (realtrain and core.StepLayered).
	Layers staging.LayerCounters `json:"layers"`

	// Tiering is the process-wide heterogeneous-tiering telemetry:
	// fast/far demand accesses, plan rounds, migrations and the byte flow
	// between the tiers, from both controller halves (realtrain and
	// core.RunTiered).
	Tiering tiering.TierCounters `json:"tiering"`
}

// Server is one sweep-service instance. Create with New, expose via
// Handler, stop with Drain (graceful) or Kill (abrupt).
type Server struct {
	cfg     Config
	cache   *diskcache.Cache
	gate    *parallel.Gate
	flights *flightGroup
	run     func(ctx context.Context, id string, opt experiments.Options) ([]*experiments.Table, error)

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool
	reqWG      sync.WaitGroup

	validIDs map[string]bool
	mux      *http.ServeMux

	requests, hits, computes, coalesced atomic.Int64
	shed, timeouts, rejected, putErrors atomic.Int64
}

// New builds a server over a (possibly already warm) cache directory.
func New(cfg Config) (*Server, error) {
	if cfg.Slots <= 0 {
		cfg.Slots = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Minute
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	cache, err := diskcache.Open(diskcache.Config{
		Dir:       cfg.CacheDir,
		RetrySeed: cfg.CacheRetrySeed,
		MaxBytes:  cfg.CacheMaxBytes,
		Faults:    cfg.CacheFaults,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		cache:    cache,
		gate:     parallel.NewGate(cfg.Slots, cfg.QueueDepth),
		flights:  newFlightGroup(),
		run:      cfg.Run,
		validIDs: make(map[string]bool),
	}
	if s.run == nil {
		s.run = func(_ context.Context, id string, opt experiments.Options) ([]*experiments.Table, error) {
			return experiments.ByIDWith(id, opt)
		}
	}
	for _, id := range experiments.IDs() {
		s.validIDs[id] = true
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/experiments", s.handleExperiments)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the underlying result cache (chaos harness, stats).
func (s *Server) Cache() *diskcache.Cache { return s.cache }

// Stats snapshots every counter.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:  s.requests.Load(),
		Hits:      s.hits.Load(),
		Computes:  s.computes.Load(),
		Coalesced: s.coalesced.Load(),
		Shed:      s.shed.Load(),
		Timeouts:  s.timeouts.Load(),
		Rejected:  s.rejected.Load(),
		PutErrors: s.putErrors.Load(),
		InFlight:  s.flights.inFlight(),
		Queued:    s.gate.Queued(),
		Cache:     s.cache.Stats(),
		Fabric:    fabric.Counters(),
		Layers:    staging.Counters(),
		Tiering:   tiering.Counters(),
	}
}

// Drain is the graceful-shutdown half of SIGTERM handling: stop admitting
// new requests (503), wait for every in-flight request to finish — each is
// bounded by its own deadline, so the wait terminates — then cancel the
// compute context and flush the cache directory. It returns ctx.Err() if
// the drain deadline expires first (remaining work is then abandoned).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.baseCancel()
	if cerr := s.cache.Close(); err == nil {
		err = cerr
	}
	return err
}

// Kill is kill -9 for the in-process chaos harness: stop admitting, cancel
// every computation immediately, flush nothing. The cache directory is left
// exactly as the "crash" found it; a later New on the same directory plays
// the reboot.
func (s *Server) Kill() {
	s.draining.Store(true)
	s.baseCancel()
}

// Request is the /run request body (POST) or query string (GET).
type Request struct {
	// ID is the experiment id (tecosim -list).
	ID string `json:"id"`
	// Seed drives the randomized experiments; 0 is a valid seed.
	Seed int64 `json:"seed"`
	// Fault-model and recovery knobs, mirroring tecosim's flags.
	BER          float64 `json:"ber,omitempty"`
	RetryBudget  int     `json:"retry_budget,omitempty"`
	Degrade      bool    `json:"degrade,omitempty"`
	CkptInterval int     `json:"ckpt_interval,omitempty"`
	CrashAt      int     `json:"crash_at,omitempty"`
	// Switched-fabric knobs, mirroring tecosim's -replicas/-host-ports/
	// -kill-port/-kill-step flags.
	Replicas  int `json:"replicas,omitempty"`
	HostPorts int `json:"host_ports,omitempty"`
	KillPort  int `json:"kill_port,omitempty"`
	KillStep  int `json:"kill_step,omitempty"`
	// Per-layer offload knobs, mirroring tecosim's -layers/-cache-pct/
	// -prefetch/-layer-policy/-layer-seq-len flags.
	Layers        int    `json:"layers,omitempty"`
	CachePct      int    `json:"cache_pct,omitempty"`
	PrefetchDepth int    `json:"prefetch,omitempty"`
	LayerPolicy   string `json:"layer_policy,omitempty"`
	LayerSeqLen   int    `json:"layer_seq_len,omitempty"`
	// Heterogeneous-tiering knobs, mirroring tecosim's -tier-policy/
	// -tier-dram-pct/-tier-migrate-budget flags.
	TierPolicy        string `json:"tier_policy,omitempty"`
	TierDRAMPct       int    `json:"tier_dram_pct,omitempty"`
	TierMigrateBudget int    `json:"tier_migrate_budget,omitempty"`
	// TimeoutMs overrides the server's default per-request deadline,
	// capped at Config.MaxTimeout.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// options maps a request onto the experiment option set. Scheduling knobs
// (Workers, Ctx) are the server's own and never reach the fingerprint.
func (s *Server) options(req Request) experiments.Options {
	return experiments.Options{
		Seed:              req.Seed,
		BER:               req.BER,
		RetryBudget:       req.RetryBudget,
		Degrade:           req.Degrade,
		CkptInterval:      req.CkptInterval,
		CrashAt:           req.CrashAt,
		Replicas:          req.Replicas,
		HostPorts:         req.HostPorts,
		KillPort:          req.KillPort,
		KillStep:          req.KillStep,
		Layers:            req.Layers,
		CachePct:          req.CachePct,
		PrefetchDepth:     req.PrefetchDepth,
		LayerPolicy:       req.LayerPolicy,
		LayerSeqLen:       req.LayerSeqLen,
		TierPolicy:        req.TierPolicy,
		TierDRAMPct:       req.TierDRAMPct,
		TierMigrateBudget: req.TierMigrateBudget,
		Workers:           s.cfg.Workers,
	}
}

// cacheKey derives the content address for a request: the canonical config
// fingerprint (experiments.Options.Fingerprint) mixed with the payload
// schema version.
func cacheKey(id string, opt experiments.Options) uint64 {
	// SplitMix-style finalizer over (fingerprint, schema) — cheap, and any
	// schema bump moves every key.
	z := opt.Fingerprint(id) + uint64(payloadSchema)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Response is the /run response envelope.
type Response struct {
	// Key is the content address the result lives under (hex).
	Key string `json:"key"`
	// Cached is true when the bytes came straight from the warm cache;
	// Coalesced is true when this request shared another's computation.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Tables is the experiment result, identical bytes for identical keys.
	Tables json.RawMessage `json:"tables"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(experiments.IDs())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// parseRequest accepts a JSON body (POST) or query parameters (GET).
func parseRequest(r *http.Request) (Request, error) {
	var req Request
	if r.Method == http.MethodPost {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, fmt.Errorf("bad JSON body: %v", err)
		}
		return req, nil
	}
	q := r.URL.Query()
	req.ID = q.Get("id")
	req.LayerPolicy = q.Get("layer_policy")
	req.TierPolicy = q.Get("tier_policy")
	var err error
	num := func(name string, dst *int64) {
		if v := q.Get(name); v != "" && err == nil {
			*dst, err = strconv.ParseInt(v, 10, 64)
		}
	}
	num("seed", &req.Seed)
	num("timeout_ms", &req.TimeoutMs)
	var i64 int64
	for name, dst := range map[string]*int{
		"retry_budget": &req.RetryBudget, "ckpt_interval": &req.CkptInterval, "crash_at": &req.CrashAt,
		"replicas": &req.Replicas, "host_ports": &req.HostPorts,
		"kill_port": &req.KillPort, "kill_step": &req.KillStep,
		"layers": &req.Layers, "cache_pct": &req.CachePct,
		"prefetch": &req.PrefetchDepth, "layer_seq_len": &req.LayerSeqLen,
		"tier_dram_pct": &req.TierDRAMPct, "tier_migrate_budget": &req.TierMigrateBudget,
	} {
		i64 = 0
		num(name, &i64)
		*dst = int(i64)
	}
	if v := q.Get("ber"); v != "" && err == nil {
		req.BER, err = strconv.ParseFloat(v, 64)
	}
	if v := q.Get("degrade"); v != "" && err == nil {
		req.Degrade, err = strconv.ParseBool(v)
	}
	if err != nil {
		return req, fmt.Errorf("bad query parameter: %v", err)
	}
	return req, nil
}

// encodeTables is the canonical payload serialization: compact JSON of the
// table list. encoding/json emits struct fields in declaration order and
// every cell is already a pinned string (strconv-formatted), so identical
// tables encode to identical bytes on every platform — the property that
// makes the cache content-addressable.
func encodeTables(tables []*experiments.Table) ([]byte, error) {
	return json.Marshal(tables)
}

// DecodeTables decodes a cached payload (clients, chaos harness).
func DecodeTables(payload []byte) ([]*experiments.Table, error) {
	var tables []*experiments.Table
	if err := json.Unmarshal(payload, &tables); err != nil {
		return nil, err
	}
	return tables, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.reqWG.Add(1)
	defer s.reqWG.Done()
	if s.draining.Load() {
		s.rejected.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	req, err := parseRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.validIDs[req.ID] {
		s.writeError(w, http.StatusBadRequest, "unknown experiment id %q (GET /experiments lists them)", req.ID)
		return
	}
	s.requests.Add(1)
	opt := s.options(req)
	key := cacheKey(req.ID, opt)
	keyHex := fmt.Sprintf("%016x", key)

	// Warm path: serve straight from the CRC-verified cache.
	if payload, ok, err := s.cache.Get(key); err != nil {
		s.writeError(w, http.StatusInternalServerError, "cache: %v", err)
		return
	} else if ok {
		s.hits.Add(1)
		s.respond(w, Response{Key: keyHex, Cached: true, Tables: payload})
		return
	}

	// Cold path: coalesce with identical in-flight requests, then compute
	// behind the bounded admission gate.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	payload, shared, err := s.flights.do(ctx, s.baseCtx, key, func(runCtx context.Context) ([]byte, error) {
		if err := s.gate.Enter(runCtx); err != nil {
			return nil, err
		}
		defer s.gate.Leave()
		// A racing flight may have committed this key while we queued.
		if p, ok, _ := s.cache.Get(key); ok {
			return p, nil
		}
		s.computes.Add(1)
		o := opt
		o.Ctx = runCtx
		tables, err := s.run(runCtx, req.ID, o)
		if err != nil {
			return nil, err
		}
		if err := runCtx.Err(); err != nil {
			// Cancelled mid-sweep: the tables carry zero cells for every
			// unreached grid point. They must never be served or cached.
			return nil, err
		}
		p, err := encodeTables(tables)
		if err != nil {
			return nil, err
		}
		if perr := s.cache.Put(key, p); perr != nil {
			// A failed persist must not fail the request: the result is
			// correct, it just won't be warm next time.
			s.putErrors.Add(1)
		}
		return p, nil
	})
	if shared {
		s.coalesced.Add(1)
	}
	switch {
	case err == nil:
		s.respond(w, Response{Key: keyHex, Cached: false, Coalesced: shared, Tables: payload})
	case errors.Is(err, parallel.ErrSaturated):
		s.shed.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "overloaded: admission queue full")
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded after %v", timeout)
	case errors.Is(err, context.Canceled):
		s.rejected.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "server stopping")
	default:
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) respond(w http.ResponseWriter, resp Response) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
