package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"teco/internal/experiments"
	"teco/internal/fabric"
	"teco/internal/realtrain"
)

// statz fetches and decodes /statz.
func statz(t *testing.T, h http.Handler) Stats {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/statz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/statz: HTTP %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("/statz: %v\n%s", err, w.Body.Bytes())
	}
	return st
}

// TestStatzExposesFabricCounters: /statz surfaces the process-wide fabric
// telemetry — a degraded data-parallel run moves the degraded-mode and
// frame counters, and the JSON names are the documented ones. The counters
// are process-global and monotone, so the test asserts deltas.
func TestStatzExposesFabricCounters(t *testing.T) {
	s := newTestServer(t, nil)
	before := statz(t, s.Handler()).Fabric

	// Drive a real kill-one-port training run through the fabric transport;
	// its lifecycle events land in the telemetry /statz snapshots.
	g, err := realtrain.NewGroup(realtrain.GroupConfig{
		Train:      realtrain.Config{Steps: 12, PreSteps: 6, Seed: 5},
		Replicas:   2,
		KillPort:   2,
		KillAtStep: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}

	after := statz(t, s.Handler()).Fabric
	if after.Frames <= before.Frames {
		t.Fatalf("frame counter never moved: before %+v after %+v", before, after)
	}
	if after.PortsDown <= before.PortsDown || after.LostReplicas <= before.LostReplicas {
		t.Fatalf("port-kill counters never moved: before %+v after %+v", before, after)
	}
	if after.DegradedSteps <= before.DegradedSteps || after.Redistributed <= before.Redistributed {
		t.Fatalf("degraded-mode counters never moved: before %+v after %+v", before, after)
	}

	// The wire names are part of the operator interface; pin them.
	raw, err := json.Marshal(Stats{Fabric: fabric.Snapshot{}})
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]json.RawMessage
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatal(err)
	}
	var fb map[string]json.RawMessage
	if err := json.Unmarshal(tree["fabric"], &fb); err != nil {
		t.Fatalf("no fabric block in /statz: %s", raw)
	}
	for _, name := range []string{"ports_down", "failovers", "failover_retries",
		"frames", "frame_retries", "frames_poisoned",
		"degraded_steps", "lost_replicas", "redistributed_shards", "rebuilds"} {
		if _, ok := fb[name]; !ok {
			t.Fatalf("fabric counter %q missing from /statz", name)
		}
	}
}

// TestRunFabricKnobsReachOptions: the /run fabric knobs parse from both the
// query string and the JSON body and land in experiments.Options.
func TestRunFabricKnobsReachOptions(t *testing.T) {
	var got experiments.Options
	s := newTestServer(t, func(c *Config) {
		c.Run = func(_ context.Context, id string, opt experiments.Options) ([]*experiments.Table, error) {
			got = opt
			return []*experiments.Table{{ID: id, Title: "stub", Header: []string{"a"}}}, nil
		}
	})
	_, code := getRun(t, s.Handler(), "id=fabric&seed=1&replicas=2&host_ports=1&kill_port=2&kill_step=9")
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if got.Replicas != 2 || got.HostPorts != 1 || got.KillPort != 2 || got.KillStep != 9 {
		t.Fatalf("fabric knobs lost in transit: %+v", got)
	}
}
