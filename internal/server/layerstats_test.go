package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"teco/internal/experiments"
	"teco/internal/realtrain"
	"teco/internal/staging"
)

// TestStatzExposesLayerCounters: /statz surfaces the process-wide per-layer
// offload telemetry — a scheduled training run moves the residency
// counters, and the JSON names are the documented ones. The counters are
// process-global and monotone, so the test asserts deltas.
func TestStatzExposesLayerCounters(t *testing.T) {
	s := newTestServer(t, nil)
	before := statz(t, s.Handler()).Layers

	// Drive a real stack training run under a tight cache with prefetch;
	// its residency events land in the telemetry /statz snapshots.
	tr, err := realtrain.NewTrainer(realtrain.Config{
		Arch: "stack", Layers: 3,
		Steps: 6, PreSteps: 6, Seed: 9,
		SchedCacheWords: 140000, SchedPrefetch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for !tr.Done() {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}

	after := statz(t, s.Handler()).Layers
	if after.SchedSteps <= before.SchedSteps || after.Hits <= before.Hits {
		t.Fatalf("scheduler counters never moved: before %+v after %+v", before, after)
	}
	if after.DemandMisses <= before.DemandMisses || after.Evictions <= before.Evictions {
		t.Fatalf("churn counters never moved: before %+v after %+v", before, after)
	}
	if after.PrefetchIssued <= before.PrefetchIssued {
		t.Fatalf("prefetch counter never moved: before %+v after %+v", before, after)
	}

	// The wire names are part of the operator interface; pin them.
	raw, err := json.Marshal(Stats{Layers: staging.LayerCounters{}})
	if err != nil {
		t.Fatal(err)
	}
	var tree map[string]json.RawMessage
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatal(err)
	}
	var lb map[string]json.RawMessage
	if err := json.Unmarshal(tree["layers"], &lb); err != nil {
		t.Fatalf("no layers block in /statz: %s", raw)
	}
	for _, name := range []string{"demand_misses", "hits", "prefetch_hits",
		"prefetch_issued", "evictions", "evicted_bytes", "loaded_bytes",
		"writeback_bytes", "sched_steps"} {
		if _, ok := lb[name]; !ok {
			t.Fatalf("layer counter %q missing from /statz", name)
		}
	}
}

// TestRunLayerKnobsReachOptions: the /run layer knobs parse from the query
// string and land in experiments.Options.
func TestRunLayerKnobsReachOptions(t *testing.T) {
	var got experiments.Options
	s := newTestServer(t, func(c *Config) {
		c.Run = func(_ context.Context, id string, opt experiments.Options) ([]*experiments.Table, error) {
			got = opt
			return []*experiments.Table{{ID: id, Title: "stub", Header: []string{"a"}}}, nil
		}
	})
	_, code := getRun(t, s.Handler(),
		"id=layers&seed=1&layers=4&cache_pct=25&prefetch=2&layer_policy=fifo&layer_seq_len=2048")
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if got.Layers != 4 || got.CachePct != 25 || got.PrefetchDepth != 2 ||
		got.LayerPolicy != "fifo" || got.LayerSeqLen != 2048 {
		t.Fatalf("layer knobs lost in transit: %+v", got)
	}
}
