package server

import (
	"context"
	"sync"
)

// Request coalescing (singleflight) keyed by the canonical config
// fingerprint: identical in-flight requests share one computation. The
// twist over a textbook singleflight is refcounted cancellation — the
// computation runs under its own context, detached from any single
// request's deadline, and is cancelled only when *every* interested waiter
// has abandoned (deadline expired, client disconnected) or the server is
// killed. One slow client can therefore never cancel work that other
// clients are still waiting for, and work nobody wants anymore stops
// promptly instead of burning a compute slot to completion.

// flightCall is one in-flight computation.
type flightCall struct {
	done   chan struct{} // closed after val/err are set
	cancel context.CancelFunc
	refs   int // waiters still interested; guarded by the group mutex
	val    []byte
	err    error
}

// flightGroup deduplicates concurrent computations by key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[uint64]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[uint64]*flightCall)}
}

// do returns the result of fn for key, starting it only if no computation
// for key is already in flight. The second return reports whether this
// caller shared another request's computation. fn runs on its own
// goroutine under a context derived from base; that context is cancelled
// when the last waiter abandons, so fn must treat cancellation as "nobody
// wants this anymore" and return promptly.
func (g *flightGroup) do(ctx, base context.Context, key uint64, fn func(context.Context) ([]byte, error)) ([]byte, bool, error) {
	g.mu.Lock()
	c, shared := g.calls[key]
	if !shared {
		runCtx, cancel := context.WithCancel(base)
		c = &flightCall{done: make(chan struct{}), cancel: cancel, refs: 0}
		g.calls[key] = c
		go func() {
			v, err := fn(runCtx)
			g.mu.Lock()
			c.val, c.err = v, err
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
			cancel()
		}()
	}
	c.refs++
	g.mu.Unlock()

	select {
	case <-c.done:
		return c.val, shared, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.refs--
		abandon := c.refs == 0
		g.mu.Unlock()
		if abandon {
			c.cancel()
		}
		return nil, shared, ctx.Err()
	}
}

// inFlight returns the number of distinct computations currently running.
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
