package checkpoint

import (
	"fmt"
	"os"
)

// This file is the crash-injection harness's file-damage toolkit: the
// recovery tests use it to prove that a checkpoint hit by a torn write
// (truncation) or a silent media bit flip is always detected by CRC and
// never loaded.

// FlipBit flips one bit of a file in place. bit indexes from the start of
// the file (bit 0 is the LSB of byte 0).
func FlipBit(path string, bit int64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if bit < 0 || bit >= int64(len(buf))*8 {
		return fmt.Errorf("checkpoint: bit %d outside file of %d bytes", bit, len(buf))
	}
	buf[bit/8] ^= 1 << (bit % 8)
	return os.WriteFile(path, buf, 0o644)
}

// TruncateTail removes the last n bytes of a file — a torn write from a
// crash mid-checkpoint on a filesystem without atomic rename.
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n < 0 || n > fi.Size() {
		return fmt.Errorf("checkpoint: truncate %d bytes from file of %d", n, fi.Size())
	}
	return os.Truncate(path, fi.Size()-n)
}
