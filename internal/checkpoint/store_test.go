package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These tests pin the crash-durability contract of Store.Save by swapping
// the injectable I/O steps (writeTempFile / renameFile / syncParentDir):
// the durable-write sequence must run in write→fsync→rename→dirsync order,
// and a failure at any step must leave the previous snapshot set intact.

func swapSaveHooks(t *testing.T,
	write func(string, []byte) (string, error),
	rename func(string, string) error,
	dirSync func(string) error) {
	t.Helper()
	origWrite, origRename, origSync := writeTempFile, renameFile, syncParentDir
	if write != nil {
		writeTempFile = write
	}
	if rename != nil {
		renameFile = rename
	}
	if dirSync != nil {
		syncParentDir = dirSync
	}
	t.Cleanup(func() {
		writeTempFile, renameFile, syncParentDir = origWrite, origRename, origSync
	})
}

// TestSaveDurableOrdering injects recording hooks and asserts the exact
// sequence: the temp file is written (and fsynced) before the rename, and
// the parent directory is fsynced after the rename — the order that makes
// the rename itself survive power loss.
func TestSaveDurableOrdering(t *testing.T) {
	dir := t.TempDir()
	var seq []string
	origWrite := writeTempFile
	swapSaveHooks(t,
		func(d string, wire []byte) (string, error) {
			seq = append(seq, "write+fsync(temp)")
			return origWrite(d, wire)
		},
		func(oldpath, newpath string) error {
			seq = append(seq, "rename")
			return os.Rename(oldpath, newpath)
		},
		func(d string) error {
			seq = append(seq, "fsync(dir)")
			if d != dir {
				t.Fatalf("dir fsync on %q, want the store dir %q", d, dir)
			}
			return nil
		})
	st, err := NewStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Save(testSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	want := "write+fsync(temp),rename,fsync(dir)"
	if got := strings.Join(seq, ","); got != want {
		t.Fatalf("durable-write order %q, want %q", got, want)
	}
}

// TestSaveWriteFailureLeavesStoreClean: an injected WriteFile failure (torn
// temp write) must fail the Save, remove the temp residue, and leave every
// previously saved snapshot loadable.
func TestSaveWriteFailureLeavesStoreClean(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	good := testSnapshot(7)
	if _, _, err := st.Save(good); err != nil {
		t.Fatal(err)
	}

	injected := errors.New("injected: disk full mid-write")
	origWrite := writeTempFile
	swapSaveHooks(t, func(d string, wire []byte) (string, error) {
		// Write half the bytes for real, then fail — the torn-temp case.
		tmp, _ := origWrite(d, wire[:len(wire)/2])
		return tmp, injected
	}, nil, nil)

	bad := testSnapshot(8)
	bad.Step = good.Step + 50
	if _, _, err := st.Save(bad); !errors.Is(err, injected) {
		t.Fatalf("Save error = %v, want the injected write failure", err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp residue %s left after failed Save", e.Name())
		}
	}
	s, info, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if s.Step != good.Step || len(info.Skipped) != 0 {
		t.Fatalf("recovery line moved: loaded step %d (skipped %v), want %d", s.Step, info.Skipped, good.Step)
	}
}

// TestSaveDirSyncFailureSurfaces: when the directory fsync fails the rename
// durability is unknown, so Save must report the error (the session then
// refuses to advance its recovery line) even though the file is visible.
func TestSaveDirSyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected: dir fsync lost")
	swapSaveHooks(t, nil, nil, func(string) error { return injected })
	if _, _, err := st.Save(testSnapshot(3)); !errors.Is(err, injected) {
		t.Fatalf("Save error = %v, want the injected dir-sync failure", err)
	}
}

// TestSaveRenameFailureRemovesTemp: a failed publish removes the fsynced
// temp file rather than stranding it.
func TestSaveRenameFailureRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected: rename EIO")
	swapSaveHooks(t, nil, func(string, string) error { return injected }, nil)
	if _, _, err := st.Save(testSnapshot(4)); !errors.Is(err, injected) {
		t.Fatalf("Save error = %v, want the injected rename failure", err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = filepath.Join(dir, e.Name())
		}
		t.Fatalf("store dir not clean after failed rename: %v", names)
	}
}
