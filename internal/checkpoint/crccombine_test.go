package checkpoint

import (
	"math/rand"
	"testing"

	"teco/internal/cxl"
	"teco/internal/parallel"
)

// TestCombineChecksumMatchesSerial: splitting a tensor at arbitrary points
// and folding zero-init chunk CRCs reproduces the serial Checksum exactly.
func TestCombineChecksumMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 255, 256, 257, 1000, 16384, 16385, 100_000} {
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		want := Checksum(v)
		for _, cuts := range [][]float64{{0.5}, {0.1, 0.2, 0.9}, {0.33, 0.34}} {
			crc := uint16(0xFFFF)
			lo := 0
			bounds := make([]int, 0, len(cuts)+1)
			for _, f := range cuts {
				bounds = append(bounds, int(f*float64(n)))
			}
			bounds = append(bounds, n)
			for _, hi := range bounds {
				if hi < lo {
					hi = lo
				}
				crc = CombineChecksum(crc, ChecksumChunk(v[lo:hi]), 4*(hi-lo))
				lo = hi
			}
			if crc != want {
				t.Fatalf("n=%d cuts=%v: combined %04x want %04x", n, cuts, crc, want)
			}
		}
	}
}

// TestZeroShiftMatchesUpdate: Z_n(s) equals literally running n zero bytes
// through the CRC, across state values and lengths including 0.
func TestZeroShiftMatchesUpdate(t *testing.T) {
	zeros := make([]byte, 5000)
	for _, s := range []uint16{0, 1, 0xFFFF, 0x1021, 0xBEEF} {
		for _, n := range []int{0, 1, 2, 3, 7, 64, 1023, 5000} {
			want := cxl.UpdateCRC16(s, zeros[:n])
			if got := zeroShift(s, n); got != want {
				t.Fatalf("zeroShift(%04x, %d) = %04x want %04x", s, n, got, want)
			}
		}
	}
}

// TestChecksumWorkersInvariance: the parallel checksum is bit-identical to
// the serial one at every worker count.
func TestChecksumWorkersInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := make([]float32, 3*16384+123) // several chunks plus a remainder
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	want := Checksum(v)
	for _, w := range []int{0, 1, 2, 3, 8, -1} {
		if got := ChecksumWorkers(v, w); got != want {
			t.Fatalf("workers=%d: %04x want %04x", w, got, want)
		}
	}
}

// TestChecksumChunkZeroAlloc pins the per-chunk CRC allocation-free — it
// runs inside the fused ADAM epilogue's steady-state loop.
func TestChecksumChunkZeroAlloc(t *testing.T) {
	v := make([]float32, 16384)
	lo, hi := parallel.ChunkBounds(0, len(v))
	if n := testing.AllocsPerRun(20, func() {
		_ = ChecksumChunk(v[lo:hi])
		_ = CombineChecksum(0xFFFF, 0x1234, 4*(hi-lo))
	}); n != 0 {
		t.Fatalf("allocated %v times per run, want 0", n)
	}
}
