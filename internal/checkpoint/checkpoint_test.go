package checkpoint

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"teco/internal/tensor"
)

func testSnapshot(seed int64) *Snapshot {
	rng := rand.New(rand.NewSource(seed))
	vec := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		return v
	}
	s := &Snapshot{
		ConfigTag:   0xDEADBEEFCAFE,
		Seed:        seed,
		Step:        123,
		AdamStep:    1623,
		ActivatedAt: -1,
		RNGDraws:    987654,
		Params:      vec(257),
		Compute:     vec(257),
		AdamM:       vec(257),
		AdamV:       vec(257),
		PrevParams:  vec(257),
		PrevGrads:   vec(257),
	}
	for i := 0; i < 7; i++ {
		sm := Sample{Step: int64(i * 10), Loss: rng.Float64(), DBAActive: i > 3}
		sm.ParamDist = tensor.Distribution{Counts: [4]int64{int64(i), 2, 3, 4}}
		sm.GradDist = tensor.Distribution{Counts: [4]int64{5, 6, int64(i), 8}}
		s.Samples = append(s.Samples, sm)
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSnapshot(7)
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", s, got)
	}
}

func TestDecodeRejectsEveryBitFlip(t *testing.T) {
	// Flip a sample of bits across the wire image: every one must be
	// detected (CRC-16 detects all single-bit errors), decoding must never
	// return a silently different snapshot.
	s := testSnapshot(11)
	wire := s.Encode()
	for bit := 0; bit < len(wire)*8; bit += 97 {
		cp := make([]byte, len(wire))
		copy(cp, wire)
		cp[bit/8] ^= 1 << (bit % 8)
		if _, err := Decode(cp); err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	wire := testSnapshot(13).Encode()
	for _, cut := range []int{1, 2, 3, 17, len(wire) / 2, len(wire) - 1} {
		if _, err := Decode(wire[:len(wire)-cut]); err == nil {
			t.Fatalf("truncation by %d bytes went undetected", cut)
		}
	}
	if _, err := Decode(append(append([]byte{}, wire...), 0)); err == nil {
		t.Fatal("trailing garbage went undetected")
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	wire := testSnapshot(17).Encode()
	wire[len(Magic)] = 99
	if _, err := Decode(wire); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestStoreSaveLoadRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(10); step <= 50; step += 10 {
		s := testSnapshot(step)
		s.Step = step
		if _, _, err := st.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	files, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("retention kept %d files, want 2: %v", len(files), files)
	}
	got, info, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 50 || len(info.Skipped) != 0 {
		t.Fatalf("latest step = %d (skipped %v), want 50", got.Step, info.Skipped)
	}
}

func TestStoreFallsBackPastCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for step := int64(10); step <= 30; step += 10 {
		s := testSnapshot(step)
		s.Step = step
		if _, _, err := st.Save(s); err != nil {
			t.Fatal(err)
		}
	}
	// Bit-flip the newest, truncate the middle: load must fall back to the
	// oldest intact snapshot and report both skips.
	latest, err := st.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(latest, 12345); err != nil {
		t.Fatal(err)
	}
	if err := TruncateTail(st.path(20), 100); err != nil {
		t.Fatal(err)
	}
	got, info, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 10 {
		t.Fatalf("fell back to step %d, want 10", got.Step)
	}
	if len(info.Skipped) != 2 {
		t.Fatalf("skipped = %v, want the two damaged files", info.Skipped)
	}
}

func TestStoreEmptyAndMissing(t *testing.T) {
	st, err := NewStore(filepath.Join(t.TempDir(), "fresh"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.LoadLatest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
	if _, err := NewStore("", 0); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestSaveIsAtomic(t *testing.T) {
	// No temp files may survive a successful save.
	dir := t.TempDir()
	st, _ := NewStore(dir, 3)
	if _, _, err := st.Save(testSnapshot(3)); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestCountingSourceBitIdenticalAndFastForward(t *testing.T) {
	// The wrapped stream must equal the raw source stream.
	raw := rand.New(rand.NewSource(99))
	cs := NewCountingSource(99)
	wrapped := rand.New(cs)
	for i := 0; i < 1000; i++ {
		if raw.Int63() != wrapped.Int63() {
			t.Fatalf("stream diverged at draw %d", i)
		}
	}
	draws := cs.Draws()
	next := wrapped.Int63()

	// Fast-forwarding a fresh source to the recorded position must yield
	// the same next draw.
	cs2 := NewCountingSource(99)
	cs2.FastForward(draws)
	if got := rand.New(cs2).Int63(); got != next {
		t.Fatalf("fast-forwarded draw = %d, want %d", got, next)
	}
}

func TestChecksumDetectsWordFlip(t *testing.T) {
	v := []float32{1, 2, 3, 4, 5}
	a := Checksum(v)
	v[3] = math.Float32frombits(math.Float32bits(v[3]) ^ 1)
	if Checksum(v) == a {
		t.Fatal("single-bit word flip not reflected in checksum")
	}
}

func TestCorruptHarnessBounds(t *testing.T) {
	p := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(p, []byte{0xFF}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(p, 8); err == nil {
		t.Fatal("out-of-range bit accepted")
	}
	if err := TruncateTail(p, 2); err == nil {
		t.Fatal("over-length truncation accepted")
	}
	if err := FlipBit(p, 0); err != nil {
		t.Fatal(err)
	}
	buf, _ := os.ReadFile(p)
	if buf[0] != 0xFE {
		t.Fatalf("byte = %x, want FE", buf[0])
	}
}
