package checkpoint

import "math/rand"

// CountingSource wraps the standard seeded source and counts every draw, so
// a checkpoint can record the exact stream position and a restore can
// fast-forward a fresh source to it. Wrapping at the Source level (rather
// than counting Intn calls) makes the count exact regardless of rejection
// loops inside rand.Rand, and keeps the generated stream bit-identical to
// using rand.NewSource directly.
type CountingSource struct {
	seed  int64
	src   rand.Source64
	draws uint64
}

var _ rand.Source64 = (*CountingSource)(nil)

// NewCountingSource returns a counting source seeded like rand.NewSource.
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 draws one value, counting it.
func (s *CountingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 draws one value, counting it.
func (s *CountingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed reseeds the underlying source and resets the draw count.
func (s *CountingSource) Seed(seed int64) {
	s.seed = seed
	s.src.Seed(seed)
	s.draws = 0
}

// Draws returns the number of values drawn since seeding.
func (s *CountingSource) Draws() uint64 { return s.draws }

// FastForward reseeds the source and replays draws until the stream is at
// position n, so the next draw is bit-identical to the (n+1)-th draw of an
// uninterrupted run.
func (s *CountingSource) FastForward(n uint64) {
	s.Seed(s.seed)
	for s.draws < n {
		s.draws++
		s.src.Uint64()
	}
}
