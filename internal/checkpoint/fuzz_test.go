package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecodeSnapshot drives the snapshot decoder with arbitrary bytes: it
// must never panic, and any buffer it accepts must re-encode to an image
// that decodes to the same snapshot (round-trip stability). Seeded with a
// valid snapshot so mutations explore the framed-section space.
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(testSnapshot(1).Encode())
	small := &Snapshot{ActivatedAt: -1, Params: []float32{1}, Compute: []float32{2},
		AdamM: []float32{3}, AdamV: []float32{4}, PrevParams: []float32{5}, PrevGrads: []float32{6}}
	f.Add(small.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		re := s.Encode()
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !bytes.Equal(re, s2.Encode()) {
			t.Fatal("encode/decode/encode not stable")
		}
	})
}
