// Package checkpoint implements step-level crash recovery for training
// runs: a CRC-framed, versioned binary snapshot format for parameter
// tensors, ADAM moment vectors, RNG state and step counters; an on-disk
// store with atomic write-then-rename and keep-last-K retention; and the
// corruption harness (bit flips, truncation) the recovery tests use to
// prove corrupted snapshots are always detected and never loaded.
//
// Integrity reuses the CXL link layer's CRC-16/CCITT-FALSE
// (internal/cxl/crc.go): every section of a snapshot is framed with a
// trailing CRC over its wire image, exactly like a flit-framed packet, so
// a truncated file or a flipped bit anywhere in a tensor fails closed with
// ErrCorrupt. Restores must be bit-exact — TECO's giant-cache + DBA design
// means a single undetected corrupt merge silently diverges training — so
// the format stores raw FP32 bit patterns and the RNG draw count needed to
// fast-forward a seeded source to the exact stream position.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"teco/internal/cxl"
	"teco/internal/tensor"
)

// Format constants. Version is bumped on any wire-image change; decoders
// reject versions they do not understand rather than guessing.
const (
	// Magic opens every snapshot file.
	Magic = "TECOCKPT"
	// Version is the current format version.
	Version = 1
)

// ErrCorrupt reports a snapshot whose framing or CRC check failed — the
// file must never be loaded; the store falls back to the previous one.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// Sample is one recorded point of the loss trajectory, carried inside the
// snapshot so a resumed run reproduces the uninterrupted run's full sample
// list bit-for-bit.
type Sample struct {
	Step      int64
	Loss      float64
	DBAActive bool
	ParamDist tensor.Distribution
	GradDist  tensor.Distribution
}

// Snapshot is everything a training step needs to resume bit-identically:
// the CPU master parameters, the accelerator compute copy (with its DBA
// staleness intact), both ADAM moment vectors and the optimizer step count
// (the bias corrections depend on it), the previous-step tensors the
// byte-change distributions diff against, the RNG fast-forward position,
// and the recorded loss trajectory so far.
type Snapshot struct {
	// ConfigTag fingerprints the owning run's configuration; restore into
	// a differently-configured trainer is refused.
	ConfigTag uint64
	// Seed is the run seed (data, init, batches and the fault model all
	// derive their streams from it).
	Seed int64
	// Step is the number of completed fine-tuning steps.
	Step int64
	// AdamStep is the optimizer's internal step counter.
	AdamStep int64
	// ActivatedAt is the step DBA switched on, -1 if not yet.
	ActivatedAt int64
	// RNGDraws is how many source draws the run's batch RNG has consumed;
	// restore replays exactly this many draws from the seed.
	RNGDraws uint64

	Params     []float32 // CPU master copy
	Compute    []float32 // accelerator copy (possibly DBA-stale high bytes)
	AdamM      []float32 // first moments
	AdamV      []float32 // second moments
	PrevParams []float32 // previous sampled master (distribution baseline)
	PrevGrads  []float32 // previous gradients (distribution baseline)

	Samples []Sample
}

// Section names of the wire format, in encode order.
const (
	secMeta       = "meta"
	secParams     = "params"
	secCompute    = "compute"
	secAdamM      = "adam.m"
	secAdamV      = "adam.v"
	secPrevParams = "prev.params"
	secPrevGrads  = "prev.grads"
	secSamples    = "samples"
)

// Encode serializes the snapshot: magic, version, section count, then each
// section framed as [u8 name length][name][u32 payload length][payload]
// [u16 CRC over name+payload].
func (s *Snapshot) Encode() []byte {
	var out []byte
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint16(out, 8) // section count

	out = appendSection(out, secMeta, s.encodeMeta())
	out = appendSection(out, secParams, encodeF32(s.Params))
	out = appendSection(out, secCompute, encodeF32(s.Compute))
	out = appendSection(out, secAdamM, encodeF32(s.AdamM))
	out = appendSection(out, secAdamV, encodeF32(s.AdamV))
	out = appendSection(out, secPrevParams, encodeF32(s.PrevParams))
	out = appendSection(out, secPrevGrads, encodeF32(s.PrevGrads))
	out = appendSection(out, secSamples, s.encodeSamples())
	return out
}

func (s *Snapshot) encodeMeta() []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, s.ConfigTag)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Seed))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Step))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.AdamStep))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.ActivatedAt))
	b = binary.LittleEndian.AppendUint64(b, s.RNGDraws)
	return b
}

func (s *Snapshot) encodeSamples() []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Samples)))
	for _, sm := range s.Samples {
		b = binary.LittleEndian.AppendUint64(b, uint64(sm.Step))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(sm.Loss))
		if sm.DBAActive {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		for _, c := range sm.ParamDist.Counts {
			b = binary.LittleEndian.AppendUint64(b, uint64(c))
		}
		for _, c := range sm.GradDist.Counts {
			b = binary.LittleEndian.AppendUint64(b, uint64(c))
		}
	}
	return b
}

func appendSection(out []byte, name string, payload []byte) []byte {
	out = append(out, byte(len(name)))
	out = append(out, name...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	crc := cxl.UpdateCRC16(0xFFFF, []byte(name))
	crc = cxl.UpdateCRC16(crc, payload)
	return binary.LittleEndian.AppendUint16(out, crc)
}

func encodeF32(v []float32) []byte {
	b := make([]byte, 4*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(f))
	}
	return b
}

func decodeF32(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("%w: tensor payload %d bytes not word-aligned", ErrCorrupt, len(b))
	}
	v := make([]float32, len(b)/4)
	for i := range v {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return v, nil
}

// Decode parses and CRC-verifies a snapshot wire image. Any framing
// violation, CRC mismatch, truncation, or trailing garbage returns an
// error wrapping ErrCorrupt: a damaged snapshot is never partially loaded.
func Decode(buf []byte) (*Snapshot, error) {
	if len(buf) < len(Magic)+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the header", ErrCorrupt, len(buf))
	}
	if string(buf[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	rest := buf[len(Magic):]
	ver := binary.LittleEndian.Uint16(rest)
	if ver != Version {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d (have %d)", ver, Version)
	}
	nsec := int(binary.LittleEndian.Uint16(rest[2:]))
	rest = rest[4:]

	s := &Snapshot{ActivatedAt: -1}
	seen := map[string]bool{}
	for i := 0; i < nsec; i++ {
		name, payload, tail, err := readSection(rest)
		if err != nil {
			return nil, err
		}
		rest = tail
		if seen[name] {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		seen[name] = true
		if err := s.decodeSection(name, payload); err != nil {
			return nil, err
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	for _, req := range []string{secMeta, secParams, secCompute, secAdamM, secAdamV, secPrevParams, secPrevGrads, secSamples} {
		if !seen[req] {
			return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, req)
		}
	}
	return s, nil
}

func readSection(b []byte) (name string, payload, rest []byte, err error) {
	if len(b) < 1 {
		return "", nil, nil, fmt.Errorf("%w: truncated section header", ErrCorrupt)
	}
	nameLen := int(b[0])
	b = b[1:]
	if nameLen == 0 || len(b) < nameLen+4 {
		return "", nil, nil, fmt.Errorf("%w: truncated section name", ErrCorrupt)
	}
	name = string(b[:nameLen])
	plen := int(binary.LittleEndian.Uint32(b[nameLen:]))
	b = b[nameLen+4:]
	if plen < 0 || len(b) < plen+2 {
		return "", nil, nil, fmt.Errorf("%w: truncated section %q", ErrCorrupt, name)
	}
	payload = b[:plen]
	crc := cxl.UpdateCRC16(0xFFFF, []byte(name))
	crc = cxl.UpdateCRC16(crc, payload)
	if crc != binary.LittleEndian.Uint16(b[plen:]) {
		return "", nil, nil, fmt.Errorf("%w: CRC mismatch in section %q", ErrCorrupt, name)
	}
	return name, payload, b[plen+2:], nil
}

func (s *Snapshot) decodeSection(name string, payload []byte) error {
	var err error
	switch name {
	case secMeta:
		if len(payload) != 48 {
			return fmt.Errorf("%w: meta section %d bytes, want 48", ErrCorrupt, len(payload))
		}
		s.ConfigTag = binary.LittleEndian.Uint64(payload)
		s.Seed = int64(binary.LittleEndian.Uint64(payload[8:]))
		s.Step = int64(binary.LittleEndian.Uint64(payload[16:]))
		s.AdamStep = int64(binary.LittleEndian.Uint64(payload[24:]))
		s.ActivatedAt = int64(binary.LittleEndian.Uint64(payload[32:]))
		s.RNGDraws = binary.LittleEndian.Uint64(payload[40:])
	case secParams:
		s.Params, err = decodeF32(payload)
	case secCompute:
		s.Compute, err = decodeF32(payload)
	case secAdamM:
		s.AdamM, err = decodeF32(payload)
	case secAdamV:
		s.AdamV, err = decodeF32(payload)
	case secPrevParams:
		s.PrevParams, err = decodeF32(payload)
	case secPrevGrads:
		s.PrevGrads, err = decodeF32(payload)
	case secSamples:
		s.Samples, err = decodeSamples(payload)
	default:
		// Unknown sections are skipped (their CRC already verified), so a
		// future writer can add sections without breaking old readers.
	}
	return err
}

func decodeSamples(b []byte) ([]Sample, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: truncated sample count", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	nc := len(tensor.Distribution{}.Counts)
	recBytes := 8 + 8 + 1 + 8*nc*2
	if len(b) != n*recBytes {
		return nil, fmt.Errorf("%w: sample section %d bytes for %d records", ErrCorrupt, len(b), n)
	}
	out := make([]Sample, n)
	for i := range out {
		r := b[i*recBytes:]
		out[i].Step = int64(binary.LittleEndian.Uint64(r))
		out[i].Loss = math.Float64frombits(binary.LittleEndian.Uint64(r[8:]))
		out[i].DBAActive = r[16] != 0
		for c := 0; c < nc; c++ {
			out[i].ParamDist.Counts[c] = int64(binary.LittleEndian.Uint64(r[17+8*c:]))
			out[i].GradDist.Counts[c] = int64(binary.LittleEndian.Uint64(r[17+8*nc+8*c:]))
		}
	}
	return out, nil
}

// Checksum returns the CRC-16 of a tensor's raw FP32 bit patterns — the
// per-tensor integrity mark the trainer validates after each DBA merge and
// the store validates on load (via the section CRCs, which cover the same
// bytes).
func Checksum(v []float32) uint16 {
	crc := uint16(0xFFFF)
	var buf [1024]byte
	for len(v) > 0 {
		n := len(buf) / 4
		if n > len(v) {
			n = len(v)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v[i]))
		}
		crc = cxl.UpdateCRC16(crc, buf[:4*n])
		v = v[n:]
	}
	return crc
}
