package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// DefaultKeepLast is the retention depth when StoreConfig leaves it zero:
// the latest snapshot plus two fallbacks, so a snapshot corrupted on disk
// (or torn by a crash mid-rename on a non-atomic filesystem) still leaves
// recovery points.
const DefaultKeepLast = 3

// ErrNoSnapshot reports a store with no loadable snapshot — every file was
// missing or corrupt. Callers fall back to a cold start.
var ErrNoSnapshot = errors.New("checkpoint: no loadable snapshot")

// Store manages a directory of snapshot files named ckpt-<step>.teco.
// Writes are atomic and crash-durable: the wire image goes to a temp file
// which is fsynced before the rename into its live name, and the parent
// directory is fsynced after, so a crash — or power loss — at any point
// leaves either the previous snapshot set or the complete new file under
// the live name, never a torn one and never a rename that evaporates on
// reboot. Retention keeps the last K snapshots.
type Store struct {
	dir  string
	keep int
}

// The durable-write sequence is factored into injectable steps so the
// crash-durability test can observe their order and fail each one —
// without them the fsync-before-rename and dir-fsync-after-rename ordering
// would be untestable (the kernel hides it on a healthy filesystem).
var (
	// writeTempFile writes wire to a fresh temp file in dir and fsyncs it,
	// returning the temp path. The fsync must happen before rename: rename
	// publishes the name, and a published name pointing at unflushed bytes
	// is exactly the torn state the store exists to prevent.
	writeTempFile = func(dir string, wire []byte) (string, error) {
		f, err := os.CreateTemp(dir, ".ckpt-*.tmp")
		if err != nil {
			return "", err
		}
		tmp := f.Name()
		if _, err := f.Write(wire); err != nil {
			f.Close()
			return tmp, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return tmp, err
		}
		return tmp, f.Close()
	}
	// renameFile publishes the temp file under its live name.
	renameFile = os.Rename
	// syncParentDir fsyncs the directory so the rename itself survives
	// power loss (the rename lives in directory metadata, which the file
	// fsync does not cover).
	syncParentDir = func(dir string) error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		err = d.Sync()
		if cerr := d.Close(); err == nil {
			err = cerr
		}
		return err
	}
)

// NewStore opens (creating if needed) a checkpoint directory. keep <= 0
// selects DefaultKeepLast.
func NewStore(dir string, keep int) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty store directory")
	}
	if keep <= 0 {
		keep = DefaultKeepLast
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store: %w", err)
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// path returns the snapshot filename for a step.
func (st *Store) path(step int64) string {
	return filepath.Join(st.dir, fmt.Sprintf("ckpt-%012d.teco", step))
}

// Save atomically and durably persists a snapshot and prunes old files
// past the retention depth. It returns the final path and the encoded
// size. The sequence is write-temp → fsync(temp) → rename → fsync(dir);
// any failure removes the temp file and leaves the previous snapshot set
// untouched.
func (st *Store) Save(s *Snapshot) (string, int64, error) {
	wire := s.Encode()
	tmpName, err := writeTempFile(st.dir, wire)
	if err != nil {
		if tmpName != "" {
			os.Remove(tmpName)
		}
		return "", 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	final := st.path(s.Step)
	if err := renameFile(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := syncParentDir(st.dir); err != nil {
		// The rename happened but its durability is unknown; surface the
		// error so the caller does not advance its recovery line past a
		// checkpoint that may evaporate on power loss.
		return "", 0, fmt.Errorf("checkpoint: save: sync dir: %w", err)
	}
	st.prune()
	return final, int64(len(wire)), nil
}

// prune removes snapshots beyond the retention depth, oldest first. Errors
// are ignored: retention is best-effort housekeeping, never a reason to
// fail a checkpoint that is already durable.
func (st *Store) prune() {
	files, err := st.List()
	if err != nil || len(files) <= st.keep {
		return
	}
	for _, f := range files[:len(files)-st.keep] {
		os.Remove(f)
	}
}

// List returns the snapshot files in ascending step order (the name embeds
// the zero-padded step, so lexical order is step order).
func (st *Store) List() ([]string, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) == ".teco" && len(name) > 10 && name[:5] == "ckpt-" {
			out = append(out, filepath.Join(st.dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// LoadInfo reports what a LoadLatest walk found.
type LoadInfo struct {
	// Path is the file the returned snapshot came from; Size is its
	// encoded length in bytes.
	Path string
	Size int64
	// Skipped lists newer snapshot files that were rejected as corrupt —
	// each was detected by CRC/framing and never partially loaded.
	Skipped []string
}

// LoadLatest returns the newest snapshot that decodes and CRC-verifies,
// skipping (and reporting) corrupt files. It returns ErrNoSnapshot when
// nothing is loadable, including when the directory does not exist yet.
func (st *Store) LoadLatest() (*Snapshot, LoadInfo, error) {
	var info LoadInfo
	files, err := st.List()
	if err != nil {
		return nil, info, err
	}
	for i := len(files) - 1; i >= 0; i-- {
		buf, err := os.ReadFile(files[i])
		if err != nil {
			info.Skipped = append(info.Skipped, files[i])
			continue
		}
		s, err := Decode(buf)
		if err != nil {
			info.Skipped = append(info.Skipped, files[i])
			continue
		}
		info.Path = files[i]
		info.Size = int64(len(buf))
		return s, info, nil
	}
	return nil, info, ErrNoSnapshot
}

// Latest returns the path of the newest snapshot file (without validating
// it) — the handle the crash-injection harness corrupts.
func (st *Store) Latest() (string, error) {
	files, err := st.List()
	if err != nil {
		return "", err
	}
	if len(files) == 0 {
		return "", ErrNoSnapshot
	}
	return files[len(files)-1], nil
}
