package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// DefaultKeepLast is the retention depth when StoreConfig leaves it zero:
// the latest snapshot plus two fallbacks, so a snapshot corrupted on disk
// (or torn by a crash mid-rename on a non-atomic filesystem) still leaves
// recovery points.
const DefaultKeepLast = 3

// ErrNoSnapshot reports a store with no loadable snapshot — every file was
// missing or corrupt. Callers fall back to a cold start.
var ErrNoSnapshot = errors.New("checkpoint: no loadable snapshot")

// Store manages a directory of snapshot files named ckpt-<step>.teco.
// Writes are atomic (write to a temp file, fsync, rename into place) so a
// crash mid-checkpoint never leaves a half-written file under a live name,
// and retention keeps the last K snapshots.
type Store struct {
	dir  string
	keep int
}

// NewStore opens (creating if needed) a checkpoint directory. keep <= 0
// selects DefaultKeepLast.
func NewStore(dir string, keep int) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty store directory")
	}
	if keep <= 0 {
		keep = DefaultKeepLast
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store: %w", err)
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// path returns the snapshot filename for a step.
func (st *Store) path(step int64) string {
	return filepath.Join(st.dir, fmt.Sprintf("ckpt-%012d.teco", step))
}

// Save atomically persists a snapshot and prunes old files past the
// retention depth. It returns the final path and the encoded size.
func (st *Store) Save(s *Snapshot) (string, int64, error) {
	wire := s.Encode()
	tmp, err := os.CreateTemp(st.dir, ".ckpt-*.tmp")
	if err != nil {
		return "", 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(wire); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	final := st.path(s.Step)
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", 0, fmt.Errorf("checkpoint: save: %w", err)
	}
	st.prune()
	return final, int64(len(wire)), nil
}

// prune removes snapshots beyond the retention depth, oldest first. Errors
// are ignored: retention is best-effort housekeeping, never a reason to
// fail a checkpoint that is already durable.
func (st *Store) prune() {
	files, err := st.List()
	if err != nil || len(files) <= st.keep {
		return
	}
	for _, f := range files[:len(files)-st.keep] {
		os.Remove(f)
	}
}

// List returns the snapshot files in ascending step order (the name embeds
// the zero-padded step, so lexical order is step order).
func (st *Store) List() ([]string, error) {
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if filepath.Ext(name) == ".teco" && len(name) > 10 && name[:5] == "ckpt-" {
			out = append(out, filepath.Join(st.dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// LoadInfo reports what a LoadLatest walk found.
type LoadInfo struct {
	// Path is the file the returned snapshot came from; Size is its
	// encoded length in bytes.
	Path string
	Size int64
	// Skipped lists newer snapshot files that were rejected as corrupt —
	// each was detected by CRC/framing and never partially loaded.
	Skipped []string
}

// LoadLatest returns the newest snapshot that decodes and CRC-verifies,
// skipping (and reporting) corrupt files. It returns ErrNoSnapshot when
// nothing is loadable, including when the directory does not exist yet.
func (st *Store) LoadLatest() (*Snapshot, LoadInfo, error) {
	var info LoadInfo
	files, err := st.List()
	if err != nil {
		return nil, info, err
	}
	for i := len(files) - 1; i >= 0; i-- {
		buf, err := os.ReadFile(files[i])
		if err != nil {
			info.Skipped = append(info.Skipped, files[i])
			continue
		}
		s, err := Decode(buf)
		if err != nil {
			info.Skipped = append(info.Skipped, files[i])
			continue
		}
		info.Path = files[i]
		info.Size = int64(len(buf))
		return s, info, nil
	}
	return nil, info, ErrNoSnapshot
}

// Latest returns the path of the newest snapshot file (without validating
// it) — the handle the crash-injection harness corrupts.
func (st *Store) Latest() (string, error) {
	files, err := st.List()
	if err != nil {
		return "", err
	}
	if len(files) == 0 {
		return "", ErrNoSnapshot
	}
	return files[len(files)-1], nil
}
