package checkpoint

import (
	"encoding/binary"
	"math"

	"teco/internal/cxl"
	"teco/internal/parallel"
)

// Chunk-combinable tensor checksums.
//
// The CRC-16/CCITT-FALSE state update S' = (S<<8) ^ table[S>>8 ^ b] is
// GF(2)-linear in (S, b): for fixed data D, the final state splits as
//
//	crc(init, D) = Z_|D|(init) ^ crc(0, D)
//
// where Z_n is the (data-independent) linear operator of running n zero
// bytes through the CRC. So a tensor can be checksummed as independent
// zero-initialized chunk CRCs — one per fixed-quantum parallel chunk,
// computed in any order or fused into another pass over the same range —
// and folded left to right with CombineChecksum into exactly the bits
// Checksum produces serially. Z_n is evaluated as a 16×16 GF(2) matrix
// power (square-and-multiply), so combining costs O(log n) 16-bit matrix
// applications per chunk, independent of the chunk's size.

// crcMat is a GF(2)-linear operator on the 16-bit CRC state; column i is
// the image of basis vector 1<<i.
type crcMat [16]uint16

// apply returns m·v over GF(2).
func (m *crcMat) apply(v uint16) uint16 {
	var r uint16
	for i := 0; v != 0; i++ {
		if v&1 != 0 {
			r ^= m[i]
		}
		v >>= 1
	}
	return r
}

// compose returns the operator m∘g (first g, then m).
func (m *crcMat) compose(g *crcMat) crcMat {
	var r crcMat
	for i := range g {
		r[i] = m.apply(g[i])
	}
	return r
}

// zeroByteMat is Z_1: the state map of one zero data byte,
// S -> (S<<8) ^ table[S>>8] (cxl.UpdateCRC16 with b = 0).
var zeroByteMat = func() (m crcMat) {
	for i := range m {
		m[i] = cxl.UpdateCRC16(1<<i, []byte{0})
	}
	return
}()

// zeroShift applies Z_n to s: the CRC state after n zero bytes follow a
// prefix whose state is s.
func zeroShift(s uint16, n int) uint16 {
	m := zeroByteMat
	for ; n > 0; n >>= 1 {
		if n&1 != 0 {
			s = m.apply(s)
		}
		m = m.compose(&m)
	}
	return s
}

// ChecksumChunk returns the zero-initialized CRC of v's raw FP32 bytes —
// the per-chunk partial that CombineChecksum folds into a full Checksum.
// Allocation-free.
func ChecksumChunk(v []float32) uint16 {
	var crc uint16
	var buf [1024]byte
	for len(v) > 0 {
		n := len(buf) / 4
		if n > len(v) {
			n = len(v)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v[i]))
		}
		crc = cxl.UpdateCRC16(crc, buf[:4*n])
		v = v[n:]
	}
	return crc
}

// CombineChecksum appends a chunk to a running tensor checksum: crc is the
// CRC state over everything before the chunk, part the chunk's
// ChecksumChunk, nbytes the chunk's byte length (4× its FP32 words). The
// result is bit-identical to continuing the serial CRC through the chunk.
func CombineChecksum(crc, part uint16, nbytes int) uint16 {
	return zeroShift(crc, nbytes) ^ part
}

// ChecksumWorkers is Checksum with the chunk CRCs computed on `workers`
// goroutines over the standard fixed-quantum partition and folded in chunk
// order — bit-identical to Checksum at every worker count (hot-path worker
// semantics: 0/1 serial, negative = GOMAXPROCS).
func ChecksumWorkers(v []float32, workers int) uint16 {
	n := len(v)
	if parallel.Chunks(n) <= 1 || parallel.HotResolve(workers) <= 1 {
		return Checksum(v)
	}
	parts := parallel.MapChunks(workers, n, func(lo, hi int) uint16 {
		return ChecksumChunk(v[lo:hi])
	})
	crc := uint16(0xFFFF)
	for c, part := range parts {
		lo, hi := parallel.ChunkBounds(c, n)
		crc = CombineChecksum(crc, part, 4*(hi-lo))
	}
	return crc
}
