package fabric

import (
	"fmt"
	"math/rand"

	"teco/internal/conformance/check"
	"teco/internal/cxl"
	"teco/internal/sim"
)

// Timed-plane defaults. HopLatency has no default on purpose: a zero hop
// keeps a one-port switch bit-identical to a bare link (the conformance
// equality), and the experiments opt into a realistic hop explicitly.
const (
	// DefaultHopLatency is the store-and-forward latency of one switch
	// hop that the fabric experiments charge (ingress + crossbar +
	// egress; CXL switch vendors quote ~100-250 ns).
	DefaultHopLatency = 100 * sim.Nanosecond
	// DefaultLinkDownTimeout is how long a sender waits on a dead port
	// before declaring the link down — the detection cost of a failure.
	DefaultLinkDownTimeout = 10 * sim.Microsecond
	// DefaultFailoverRetries bounds the route probes after a link-down
	// detection before the sender gives up.
	DefaultFailoverRetries = 3
	// DefaultFailoverBackoff is the base of the exponential, seeded-jitter
	// backoff between route probes.
	DefaultFailoverBackoff = 1 * sim.Microsecond
)

// SwitchConfig configures the timed switch plane.
type SwitchConfig struct {
	// Ports is the number of accelerator-facing (logical) ports.
	Ports int
	// SparePorts adds idle physical ports that failover can route onto.
	SparePorts int
	// HostPorts is the number of host-side uplinks the spine aggregates;
	// the spine bandwidth is HostPorts × the per-port bandwidth, so
	// Ports/HostPorts is the oversubscription ratio. 0 selects Ports
	// (non-blocking).
	HostPorts int
	// Bandwidth is the per-port link bandwidth; <= 0 selects the CXL
	// effective default (as cxl.NewLink does).
	Bandwidth float64
	// QueueCap is the per-port pending-queue depth (<= 0: cxl default).
	QueueCap int
	// PerLine selects the per-line reference path on every port stream.
	PerLine bool
	// HopLatency is the added switch traversal latency per flow. Zero
	// means cut-through with no hop cost, which keeps a one-port switch
	// bit-identical to a bare link.
	HopLatency sim.Time
	// Faults is the per-port fault template: port i runs
	// PortFaultConfig(Faults, i), so port 0 keeps the template's seed
	// and every port draws from an independent reproducible stream.
	Faults cxl.FaultConfig
	// LinkDownTimeout, FailoverRetries, FailoverBackoff tune failure
	// detection and rerouting; zero values select the defaults above.
	LinkDownTimeout sim.Time
	FailoverRetries int
	FailoverBackoff sim.Time
}

// PortFaultConfig derives port i's fault config from the template: the
// seed moves to an independent stream per port while every other knob is
// shared. Port 0 keeps the template seed exactly, which is what makes a
// one-port fabric replay the single-link engines bit-for-bit.
func PortFaultConfig(base cxl.FaultConfig, port int) cxl.FaultConfig {
	base.Seed += int64(port) * 1000003
	return base
}

// SwitchStats is the per-switch accounting (distinct from the process-wide
// telemetry: a Switch is built per step by the timing engine).
type SwitchStats struct {
	// Flows and Bytes count payload flows accepted across all ports.
	Flows, Bytes int64
	// SpineBytes is the volume that crossed the shared spine (equals
	// Bytes: conservation, asserted by CheckInvariants).
	SpineBytes int64
	// SpineQueued is the cumulative time flows waited for the spine —
	// the oversubscription cost.
	SpineQueued sim.Time
	// PortsDown / Failovers / FailoverRetries / FailedSends count
	// failure-path events.
	PortsDown       int64
	Failovers       int64
	FailoverRetries int64
	FailedSends     int64
}

// spine models the shared switch core as a single cut-through resource:
// a flow of n bytes begins arriving at the egress side hop-latency after
// its ingress port starts delivering, and occupies the spine for
// n / spine-bandwidth. Uncontended, a flow leaves the spine exactly
// hop-latency after it left its port — so a zero-hop, uncontended switch
// adds nothing, which is the degenerate-equality anchor.
type spine struct {
	bw     float64
	freeAt sim.Time
	bytes  int64
	queued sim.Time
}

func (s *spine) pass(portDone sim.Time, n int, hop sim.Time) sim.Time {
	svc := sim.DurationForBytes(int64(n), s.bw)
	arrival := portDone + hop - svc
	if arrival < 0 {
		arrival = 0
	}
	start := arrival
	if s.freeAt > start {
		s.queued += s.freeAt - start
		start = s.freeAt
	}
	out := start + svc
	s.freeAt = out
	s.bytes += int64(n)
	return out
}

// port is one physical switch port: a full cxl link + stream with its own
// fault domain.
type port struct {
	link   *cxl.Link
	stream *cxl.Stream
	up     bool
	// bound is the logical port routed over this physical port, -1 for
	// an unassigned spare.
	bound int
	bytes int64
}

// Switch is the timed fabric plane: logical ports 0..Ports-1 carry
// accelerator traffic over physical ports (primaries plus spares), every
// physical port a full cxl.Link with its own seeded fault model, all
// sharing the spine.
type Switch struct {
	cfg   SwitchConfig
	eng   *sim.Engine
	ports []*port
	// route maps logical port -> physical port; failover remaps it.
	route     []int
	sp, clean spine
	// cleanFed notes whether the clean spine has been fed (only ports
	// with fault models produce a meaningful fault-free drain).
	cleanFed bool
	rng      *rand.Rand
	lastDone []sim.Time
	cleanAt  []sim.Time
	stats    SwitchStats
}

// NewSwitch builds a switch with Ports+SparePorts physical links.
func NewSwitch(cfg SwitchConfig) (*Switch, error) {
	if cfg.Ports < 1 {
		return nil, fmt.Errorf("fabric: switch needs >= 1 port, got %d", cfg.Ports)
	}
	if cfg.SparePorts < 0 {
		return nil, fmt.Errorf("fabric: negative spare ports %d", cfg.SparePorts)
	}
	if cfg.HostPorts < 0 {
		return nil, fmt.Errorf("fabric: negative host ports %d", cfg.HostPorts)
	}
	if cfg.HostPorts == 0 {
		cfg.HostPorts = cfg.Ports
	}
	if cfg.LinkDownTimeout <= 0 {
		cfg.LinkDownTimeout = DefaultLinkDownTimeout
	}
	if cfg.FailoverRetries <= 0 {
		cfg.FailoverRetries = DefaultFailoverRetries
	}
	if cfg.FailoverBackoff <= 0 {
		cfg.FailoverBackoff = DefaultFailoverBackoff
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	sw := &Switch{
		cfg:      cfg,
		eng:      sim.New(),
		route:    make([]int, cfg.Ports),
		lastDone: make([]sim.Time, cfg.Ports),
		cleanAt:  make([]sim.Time, cfg.Ports),
		rng:      rand.New(rand.NewSource(cfg.Faults.Seed ^ 0x5DEECE66D)),
	}
	phys := cfg.Ports + cfg.SparePorts
	for i := 0; i < phys; i++ {
		l := cxl.NewLink(sw.eng, cfg.Bandwidth, cfg.QueueCap)
		if cfg.Faults.Enabled() {
			if _, err := l.InjectFaults(PortFaultConfig(cfg.Faults, i)); err != nil {
				return nil, err
			}
		}
		p := &port{link: l, stream: cxl.NewStream(l, cfg.PerLine), up: true, bound: -1}
		if i < cfg.Ports {
			p.bound = i
			sw.route[i] = i
		}
		sw.ports = append(sw.ports, p)
	}
	bw := sw.ports[0].link.BytesPerSecond()
	sw.sp.bw = float64(cfg.HostPorts) * bw
	sw.clean.bw = sw.sp.bw
	return sw, nil
}

// Ports returns the logical port count; PhysPorts includes spares.
func (sw *Switch) Ports() int     { return sw.cfg.Ports }
func (sw *Switch) PhysPorts() int { return len(sw.ports) }

// Link exposes physical port i's link (fault stats, recovery pricing).
func (sw *Switch) Link(i int) *cxl.Link { return sw.ports[i].link }

// PortUp reports whether logical port lp currently has a live route.
func (sw *Switch) PortUp(lp int) bool {
	return sw.ports[sw.route[lp]].up
}

// KillPort takes down the physical port currently routing logical port
// lp's traffic. Subsequent sends on lp pay link-down detection and either
// fail over to a spare or error.
func (sw *Switch) KillPort(lp int) error {
	if lp < 0 || lp >= sw.cfg.Ports {
		return fmt.Errorf("fabric: kill of unknown port %d", lp)
	}
	p := sw.ports[sw.route[lp]]
	if !p.up {
		return nil
	}
	p.up = false
	sw.stats.PortsDown++
	telemetry.portsDown.Add(1)
	return nil
}

// DownPorts counts physical ports currently down.
func (sw *Switch) DownPorts() int {
	n := 0
	for _, p := range sw.ports {
		if !p.up {
			n++
		}
	}
	return n
}

// failover charges link-down detection and probes for a spare route with
// bounded, seeded-jitter exponential backoff. It returns the time at which
// a route was secured (rerouted=true) or the sender gave up.
func (sw *Switch) failover(lp int, now sim.Time) (sim.Time, bool) {
	now += sw.cfg.LinkDownTimeout
	for attempt := 0; ; attempt++ {
		if alt := sw.spareFor(); alt >= 0 {
			sw.ports[alt].bound = lp
			sw.route[lp] = alt
			sw.stats.Failovers++
			telemetry.failovers.Add(1)
			return now, true
		}
		if attempt >= sw.cfg.FailoverRetries {
			return now, false
		}
		sw.stats.FailoverRetries++
		telemetry.failoverRetries.Add(1)
		shift := attempt
		if shift > 16 {
			shift = 16
		}
		back := sw.cfg.FailoverBackoff << uint(shift)
		back += sim.Time(sw.rng.Int63n(int64(back)/2 + 1))
		now += back + sw.cfg.LinkDownTimeout
	}
}

func (sw *Switch) spareFor() int {
	for i := sw.cfg.Ports; i < len(sw.ports); i++ {
		if p := sw.ports[i]; p.up && p.bound < 0 {
			return i
		}
	}
	return -1
}

// Send pushes one flow onto logical port lp's route and carries it across
// the spine. The returned FlowResult is the port link's result with Done
// (and CleanDone) advanced by the spine traversal; with one port, zero hop
// and no contention it is bit-identical to a bare cxl.Stream push.
func (sw *Switch) Send(lp int, ready sim.Time, n int, lines int64, extra sim.Time, pktBytes int, aggregated bool) (cxl.FlowResult, error) {
	if lp < 0 || lp >= sw.cfg.Ports {
		return cxl.FlowResult{}, fmt.Errorf("fabric: send on unknown port %d", lp)
	}
	p := sw.ports[sw.route[lp]]
	if !p.up {
		at, rerouted := sw.failover(lp, ready)
		if !rerouted {
			sw.stats.FailedSends++
			return cxl.FlowResult{}, &PortDownError{Port: lp, At: at}
		}
		ready = at
		p = sw.ports[sw.route[lp]]
	}
	res := p.stream.PushRun(ready, n, lines, extra, pktBytes, aggregated)
	res.Done = sw.sp.pass(res.Done, n, sw.cfg.HopLatency)
	if p.link.Faults() != nil {
		// The clean spine shadows the fault-free drain of the port so
		// Fence−FenceClean prices exactly the fault-exposed time, with
		// spine contention accounted once on each side.
		sw.cleanFed = true
		cleanOut := sw.clean.pass(p.link.FenceClean(0), n, sw.cfg.HopLatency)
		res.CleanDone = cleanOut
		if cleanOut > sw.cleanAt[lp] {
			sw.cleanAt[lp] = cleanOut
		}
	}
	p.bytes += int64(n)
	sw.stats.Flows++
	sw.stats.Bytes += int64(n)
	sw.stats.SpineBytes = sw.sp.bytes
	sw.stats.SpineQueued = sw.sp.queued
	if res.Done > sw.lastDone[lp] {
		sw.lastDone[lp] = res.Done
	}
	if check.Enabled() {
		check.Check(sw.CheckInvariants)
	}
	return res, nil
}

// FencePort is CXLFENCE over logical port lp's fabric path: the time all
// traffic sent on lp (port link and spine traversal) has completed, no
// earlier than ready.
func (sw *Switch) FencePort(lp int, ready sim.Time) sim.Time {
	if sw.lastDone[lp] > ready {
		return sw.lastDone[lp]
	}
	return ready
}

// FenceCleanPort is FencePort against the fault-free drain (see
// cxl.Link.FenceClean).
func (sw *Switch) FenceCleanPort(lp int, ready sim.Time) sim.Time {
	if sw.cleanAt[lp] > ready {
		return sw.cleanAt[lp]
	}
	return ready
}

// Stats returns the switch accounting so far.
func (sw *Switch) Stats() SwitchStats { return sw.stats }

// FaultStats aggregates the per-port link fault counters.
func (sw *Switch) FaultStats() cxl.LinkFaultStats {
	var fs cxl.LinkFaultStats
	for _, p := range sw.ports {
		fs = fs.Add(p.link.FaultStats())
	}
	return fs
}

// CheckInvariants verifies switch conservation: no flit lost or duplicated
// (every payload byte accepted on a port crossed the spine exactly once),
// per-port accounting adds up, and the fault-free drain never runs behind
// the faulted one.
func (sw *Switch) CheckInvariants() error {
	var portBytes int64
	for i, p := range sw.ports {
		if err := p.link.CheckInvariants(); err != nil {
			return fmt.Errorf("fabric: port %d: %w", i, err)
		}
		if err := p.stream.CheckInvariants(); err != nil {
			return fmt.Errorf("fabric: port %d: %w", i, err)
		}
		if p.bytes < 0 {
			return fmt.Errorf("fabric: port %d negative byte count %d", i, p.bytes)
		}
		portBytes += p.bytes
	}
	if sw.sp.bytes != portBytes {
		return fmt.Errorf("fabric: spine carried %d bytes, ports delivered %d (conservation)",
			sw.sp.bytes, portBytes)
	}
	if sw.sp.bytes != sw.stats.Bytes {
		return fmt.Errorf("fabric: spine bytes %d != accepted bytes %d", sw.sp.bytes, sw.stats.Bytes)
	}
	if sw.sp.queued < 0 || sw.clean.queued < 0 {
		return fmt.Errorf("fabric: negative spine queue time")
	}
	if sw.cleanFed && sw.clean.freeAt > sw.sp.freeAt {
		return fmt.Errorf("fabric: fault-free spine drain %v beyond drain %v",
			sw.clean.freeAt, sw.sp.freeAt)
	}
	down := int64(sw.DownPorts())
	if sw.stats.PortsDown < down {
		return fmt.Errorf("fabric: %d ports down but only %d kills recorded", down, sw.stats.PortsDown)
	}
	if sw.stats.Failovers < 0 || sw.stats.FailoverRetries < 0 || sw.stats.FailedSends < 0 {
		return fmt.Errorf("fabric: negative failover accounting %+v", sw.stats)
	}
	return nil
}
