package fabric

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"teco/internal/cxl"
)

// fixupCRC rewrites the trailer so a mutated image passes the CRC layer and
// exercises the structural checks behind it.
func fixupCRC(wire []byte) {
	binary.LittleEndian.PutUint16(wire[len(wire)-2:], cxl.CRC16(wire[:len(wire)-2]))
}

func sampleFrame() Frame {
	return Frame{
		Src:     3,
		Dst:     HostAddr,
		Kind:    KindGrad,
		Flow:    0x01020304,
		Seq:     42,
		Payload: []byte("per-sample gradient tape bytes"),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range []Frame{
		sampleFrame(),
		{Src: HostAddr, Dst: 0, Kind: KindParam, Flow: 7, Seq: 0, Payload: nil},
		{Src: 1, Dst: 2, Kind: KindCtl, Flow: 0, Seq: 1 << 30, Payload: make([]byte, 1024)},
	} {
		wire, err := f.AppendEncode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(wire) != f.WireLen() {
			t.Fatalf("wire %d bytes, WireLen says %d", len(wire), f.WireLen())
		}
		got, err := DecodeFrame(wire)
		if err != nil {
			t.Fatal(err)
		}
		if got.Src != f.Src || got.Dst != f.Dst || got.Kind != f.Kind ||
			got.Flow != f.Flow || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip mismatch: %+v -> %+v", f, got)
		}
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	f := sampleFrame()
	wire, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeFrame(wire[:frameHeaderLen+1]); !errors.Is(err, ErrFrameLength) && !errors.Is(err, ErrShortFrame) {
		t.Fatalf("truncated frame: got %v", err)
	}
	if _, err := DecodeFrame(nil); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("empty frame: got %v", err)
	}

	// Structural checks sit behind the CRC layer: mutate a field, fix the
	// CRC back up, and the specific error must still surface.
	bad := append([]byte(nil), wire...)
	bad[0] ^= 0xFF // version byte
	fixupCRC(bad)
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameVersion) {
		t.Fatalf("bad version: got %v", err)
	}

	bad = append(bad[:0], wire...)
	bad[1] = 0x7F // kind byte
	fixupCRC(bad)
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameKind) {
		t.Fatalf("bad kind: got %v", err)
	}

	bad = append(bad[:0], wire...)
	binary.LittleEndian.PutUint32(bad[12:16], 1<<25) // hostile length field
	fixupCRC(bad)
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameLength) {
		t.Fatalf("hostile length: got %v", err)
	}

	bad = append(bad[:0], wire...)
	bad[0] ^= 0x01 // plain corruption without a fixup fails the CRC itself
	if _, err := DecodeFrame(bad); !errors.Is(err, ErrCRC) {
		t.Fatalf("corrupt image: got %v", err)
	}

	if _, err := (&Frame{Kind: 0}).AppendEncode(nil); !errors.Is(err, ErrFrameKind) {
		t.Fatalf("encode of kind 0: got %v", err)
	}
}

// Every single-bit flip anywhere in the frame must fail the CRC — the
// detection property the fabric's retransmit path rests on.
func TestFrameCRCDetectsEverySingleBitFlip(t *testing.T) {
	f := sampleFrame()
	wire, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	mut := make([]byte, len(wire))
	for bit := 0; bit < len(wire)*8; bit++ {
		copy(mut, wire)
		mut[bit/8] ^= 1 << uint(bit%8)
		if _, err := DecodeFrame(mut); err == nil {
			t.Fatalf("flip of bit %d went undetected", bit)
		}
	}
}

// DecodeFrameInto must fail closed: a rejected image leaves no stale
// payload bytes behind.
func TestFrameDecodeFailClosed(t *testing.T) {
	f := sampleFrame()
	wire, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got Frame
	if err := DecodeFrameInto(&got, wire); err != nil {
		t.Fatal(err)
	}
	wire[len(wire)-1] ^= 0x01
	if err := DecodeFrameInto(&got, wire); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	if got.Src != 0 || got.Dst != 0 || got.Kind != 0 || got.Flow != 0 ||
		got.Seq != 0 || len(got.Payload) != 0 {
		t.Fatalf("rejected decode left state behind: %+v", got)
	}
}

func TestPortDownError(t *testing.T) {
	err := error(&PortDownError{Port: 2, At: 12345})
	if !strings.Contains(err.Error(), "port 2") {
		t.Fatalf("unhelpful error: %v", err)
	}
	var pde *PortDownError
	if !errors.As(err, &pde) || pde.Port != 2 {
		t.Fatal("errors.As failed to recover the port")
	}
}
