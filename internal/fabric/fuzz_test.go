package fabric

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives arbitrary byte images through the fabric frame
// codec. Properties: the decoder never panics, never allocates from a
// hostile length field, fails closed (any error leaves the frame zeroed),
// and every accepted frame re-encodes to the exact image it was decoded
// from (the codec is a bijection on valid images).
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range []Frame{
		{Src: 0, Dst: HostAddr, Kind: KindGrad, Flow: 1, Seq: 2, Payload: []byte("tape")},
		{Src: HostAddr, Dst: 3, Kind: KindParam, Flow: 9, Seq: 0, Payload: bytes.Repeat([]byte{0xA5}, 64)},
		{Src: 1, Dst: 2, Kind: KindCtl, Flow: 0, Seq: 0, Payload: nil},
	} {
		wire, err := fr.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{frameVersion, KindGrad, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := DecodeFrameInto(&fr, data); err != nil {
			if fr.Src != 0 || fr.Dst != 0 || fr.Kind != 0 || fr.Flow != 0 ||
				fr.Seq != 0 || len(fr.Payload) != 0 {
				t.Fatalf("decode error %v left frame state %+v", err, fr)
			}
			return
		}
		re, err := fr.AppendEncode(nil)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", data, re)
		}
	})
}
