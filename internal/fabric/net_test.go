package fabric

import (
	"bytes"
	"errors"
	"testing"

	"teco/internal/cxl"
)

func deliverAll(t *testing.T, n *Net, frames []Frame) []DeliverResult {
	t.Helper()
	var out []DeliverResult
	for i := range frames {
		res, err := n.Deliver(&frames[i])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		out = append(out, res)
	}
	return out
}

func gradFrames(nports, count int) []Frame {
	var fs []Frame
	for i := 0; i < count; i++ {
		payload := bytes.Repeat([]byte{byte(i), 0x5A}, 512)
		fs = append(fs, Frame{
			Src: uint8(i % nports), Dst: HostAddr,
			Kind: KindGrad, Flow: 1, Seq: uint32(i), Payload: payload,
		})
	}
	return fs
}

// The house guarantee: whatever the per-port BER does to the wire, every
// delivered payload is exact — faults surface only in the counters.
func TestNetDeliveryExactUnderBitErrors(t *testing.T) {
	n, err := NewNet(NetConfig{
		Ports: 3,
		// A BER high enough that a 1 KiB frame is corrupted nearly every
		// attempt, so retries and poisons both happen.
		Faults: cxl.FaultConfig{Seed: 11, BER: 1e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := gradFrames(3, 60)
	results := deliverAll(t, n, frames)
	for i, res := range results {
		if !bytes.Equal(res.Frame.Payload, frames[i].Payload) {
			t.Fatalf("frame %d: payload corrupted in delivery", i)
		}
		if res.Frame.Seq != frames[i].Seq || res.Frame.Src != frames[i].Src {
			t.Fatalf("frame %d: header corrupted in delivery", i)
		}
	}
	st := n.Stats()
	if st.Frames != 60 {
		t.Fatalf("frames %d, want 60", st.Frames)
	}
	if st.Retries == 0 {
		t.Fatal("BER 1e-4 on KiB frames produced no retransmits")
	}
	if st.Poisoned != st.Refetches {
		t.Fatalf("poisoned %d != refetches %d", st.Poisoned, st.Refetches)
	}
}

// Zero faults: no retries, no poisons, payloads exact.
func TestNetCleanDelivery(t *testing.T) {
	n, err := NewNet(NetConfig{Ports: 2})
	if err != nil {
		t.Fatal(err)
	}
	frames := gradFrames(2, 8)
	for _, res := range deliverAll(t, n, frames) {
		if res.Retries != 0 || res.Poisoned {
			t.Fatalf("clean fabric reported faults: %+v", res)
		}
	}
	if st := n.Stats(); st.Retries != 0 || st.Poisoned != 0 {
		t.Fatalf("clean fabric counted faults: %+v", st)
	}
}

// Fault draws are seeded per port: the same traffic replayed through a
// fresh Net with the same config produces identical counters.
func TestNetFaultsReproducible(t *testing.T) {
	run := func() NetStats {
		n, err := NewNet(NetConfig{Ports: 2, Faults: cxl.FaultConfig{Seed: 5, BER: 5e-5}})
		if err != nil {
			t.Fatal(err)
		}
		deliverAll(t, n, gradFrames(2, 40))
		return n.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// Host-to-replica traffic traverses only the replica's port fault domain;
// replica-to-replica traffic traverses both.
func TestNetPathFaultDomains(t *testing.T) {
	// Port 0 faulty, port 1 clean (per-port derived seeds make this hard to
	// arrange via the template, so deliver different routes and compare).
	n, err := NewNet(NetConfig{Ports: 2, Faults: cxl.FaultConfig{Seed: 3, BER: 3e-4}})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xC3}, 2048)
	before := n.Stats()
	for i := 0; i < 30; i++ {
		f := Frame{Src: 0, Dst: 1, Kind: KindParam, Flow: 2, Seq: uint32(i), Payload: payload}
		if _, err := n.Deliver(&f); err != nil {
			t.Fatal(err)
		}
	}
	delta := n.Stats().Retries - before.Retries
	if delta == 0 {
		t.Fatal("replica-to-replica path saw no corruption at BER 3e-4")
	}
	if _, err := n.Deliver(&Frame{Src: HostAddr, Dst: HostAddr, Kind: KindCtl, Flow: 0, Seq: 0}); err != nil {
		t.Fatal("host-to-host control frame crosses no fault domain")
	}
}

func TestNetFailoverAndRevive(t *testing.T) {
	n, err := NewNet(NetConfig{Ports: 2, SparePorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.KillPort(0); err != nil {
		t.Fatal(err)
	}
	f := Frame{Src: 0, Dst: HostAddr, Kind: KindGrad, Flow: 1, Seq: 1, Payload: []byte("x")}
	if _, err := n.Deliver(&f); err != nil {
		t.Fatalf("delivery with a spare: %v", err)
	}
	st := n.Stats()
	if st.PortsDown != 1 || st.Failovers != 1 {
		t.Fatalf("failover not counted: %+v", st)
	}
	// Revive: port 0 routes over its own (repaired) port again, the spare
	// is released for the next failure.
	if err := n.RevivePort(0); err != nil {
		t.Fatal(err)
	}
	if !n.PortUp(0) {
		t.Fatal("revived port not up")
	}
	if err := n.KillPort(1); err != nil {
		t.Fatal(err)
	}
	g := Frame{Src: 1, Dst: HostAddr, Kind: KindGrad, Flow: 1, Seq: 2, Payload: []byte("y")}
	if _, err := n.Deliver(&g); err != nil {
		t.Fatalf("released spare not reusable: %v", err)
	}

	// No spares left: killing the spare strands port 1.
	if err := n.KillPort(1); err != nil {
		t.Fatal(err)
	}
	_, err = n.Deliver(&g)
	var pde *PortDownError
	if !errors.As(err, &pde) || pde.Port != 1 {
		t.Fatalf("want PortDownError for port 1, got %v", err)
	}
}

func TestNetValidation(t *testing.T) {
	if _, err := NewNet(NetConfig{Ports: 0}); err == nil {
		t.Fatal("zero ports accepted")
	}
	if _, err := NewNet(NetConfig{Ports: 1, SparePorts: -1}); err == nil {
		t.Fatal("negative spares accepted")
	}
	n, err := NewNet(NetConfig{Ports: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := Frame{Src: 9, Dst: HostAddr, Kind: KindGrad, Flow: 0, Seq: 0}
	if _, err := n.Deliver(&f); err == nil {
		t.Fatal("frame to unknown port accepted")
	}
	bad := Frame{Src: 0, Dst: HostAddr, Kind: 0}
	if _, err := n.Deliver(&bad); err == nil {
		t.Fatal("unencodable frame accepted")
	}
	if err := n.KillPort(7); err == nil {
		t.Fatal("kill of unknown port accepted")
	}
	if err := n.RevivePort(7); err == nil {
		t.Fatal("revive of unknown port accepted")
	}
}
