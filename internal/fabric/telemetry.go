package fabric

import "sync/atomic"

// Process-wide fabric telemetry. The daemon's /statz endpoint snapshots
// these alongside the cache and admission stats, so an operator can see
// port flaps, failovers and degraded steps without scraping logs. The
// counters are monotone for the life of the process, like every other
// /statz figure; the transport layers (Switch, Net) record their own
// events and the data-parallel group in internal/realtrain records replica
// lifecycle events through the Record* helpers.
var telemetry struct {
	portsDown       atomic.Int64
	failovers       atomic.Int64
	failoverRetries atomic.Int64
	frames          atomic.Int64
	frameRetries    atomic.Int64
	framesPoisoned  atomic.Int64
	degradedSteps   atomic.Int64
	lostReplicas    atomic.Int64
	redistributed   atomic.Int64
	rebuilds        atomic.Int64
}

// Snapshot is a point-in-time copy of the process-wide fabric counters,
// JSON-shaped for /statz.
type Snapshot struct {
	// PortsDown counts ports killed (never revived ports subtracted:
	// the counter records events, not current state).
	PortsDown int64 `json:"ports_down"`
	// Failovers counts sends rerouted onto a spare port.
	Failovers int64 `json:"failovers"`
	// FailoverRetries counts backoff rounds spent probing for a route.
	FailoverRetries int64 `json:"failover_retries"`
	// Frames / FrameRetries / FramesPoisoned count functional-plane frame
	// deliveries, CRC-failure retransmits, and retry budgets exhausted.
	Frames         int64 `json:"frames"`
	FrameRetries   int64 `json:"frame_retries"`
	FramesPoisoned int64 `json:"frames_poisoned"`
	// DegradedSteps counts training steps completed with a shrunken
	// replica group; LostReplicas and Redistributed count the replicas
	// lost and the batch shards reassigned to survivors; Rebuilds counts
	// replicas restored from the master or a surviving replica.
	DegradedSteps int64 `json:"degraded_steps"`
	LostReplicas  int64 `json:"lost_replicas"`
	Redistributed int64 `json:"redistributed_shards"`
	Rebuilds      int64 `json:"rebuilds"`
}

// Counters returns the current process-wide fabric telemetry.
func Counters() Snapshot {
	return Snapshot{
		PortsDown:       telemetry.portsDown.Load(),
		Failovers:       telemetry.failovers.Load(),
		FailoverRetries: telemetry.failoverRetries.Load(),
		Frames:          telemetry.frames.Load(),
		FrameRetries:    telemetry.frameRetries.Load(),
		FramesPoisoned:  telemetry.framesPoisoned.Load(),
		DegradedSteps:   telemetry.degradedSteps.Load(),
		LostReplicas:    telemetry.lostReplicas.Load(),
		Redistributed:   telemetry.redistributed.Load(),
		Rebuilds:        telemetry.rebuilds.Load(),
	}
}

// RecordDegradedStep notes a training step that ran with a shrunken
// replica group.
func RecordDegradedStep() { telemetry.degradedSteps.Add(1) }

// RecordLostReplica notes a replica declared lost after failover was
// exhausted.
func RecordLostReplica() { telemetry.lostReplicas.Add(1) }

// RecordRedistributed notes n batch shards reassigned from a lost replica
// to survivors.
func RecordRedistributed(n int) { telemetry.redistributed.Add(int64(n)) }

// RecordRebuild notes a replica whose state was rebuilt from the master
// copy or a surviving replica.
func RecordRebuild() { telemetry.rebuilds.Add(1) }
