package fabric

import (
	"errors"
	"testing"

	"teco/internal/conformance/check"
	"teco/internal/cxl"
	"teco/internal/mem"
	"teco/internal/sim"
)

// pushes is a deterministic flow schedule shared by the equality tests.
type push struct {
	ready sim.Time
	n     int
}

func schedule() []push {
	var ps []push
	for i := 0; i < 24; i++ {
		ps = append(ps, push{
			ready: sim.Time(i) * 3 * sim.Microsecond / 2,
			n:     4096 + 128*i,
		})
	}
	return ps
}

// The degenerate anchor: a one-port, zero-hop, non-blocking switch is
// bit-identical to a bare cxl link+stream — Done, fences and fault draws all
// replay exactly. This is what lets StepFabric claim equality with Step.
func TestSwitchDegeneratesToBareLink(t *testing.T) {
	check.Enable(t)
	configs := map[string]cxl.FaultConfig{
		"clean":   {},
		"ber":     {Seed: 7, BER: 1e-6},
		"stalls":  {Seed: 7, StallProb: 0.05, StallTime: 2 * sim.Microsecond},
		"degrade": {Seed: 7, BandwidthDegrade: 0.7},
		"mixed":   {Seed: 7, BER: 5e-7, StallProb: 0.02, StallTime: sim.Microsecond, BandwidthDegrade: 0.9},
	}
	for name, fc := range configs {
		t.Run(name, func(t *testing.T) {
			sw, err := NewSwitch(SwitchConfig{Ports: 1, Faults: fc})
			if err != nil {
				t.Fatal(err)
			}
			eng := sim.New()
			link := cxl.NewLink(eng, 0, 0)
			if fc.Enabled() {
				if _, err := link.InjectFaults(fc); err != nil {
					t.Fatal(err)
				}
			}
			stream := cxl.NewStream(link, false)

			for i, p := range schedule() {
				want := stream.PushRun(p.ready, p.n, mem.LinesIn(int64(p.n)), 0, cxl.WirePacketBytes(0), false)
				got, err := sw.Send(0, p.ready, p.n, mem.LinesIn(int64(p.n)), 0, cxl.WirePacketBytes(0), false)
				if err != nil {
					t.Fatal(err)
				}
				if got.Done != want.Done {
					t.Fatalf("flow %d: switch Done %v, bare link %v", i, got.Done, want.Done)
				}
			}
			at := 40 * sim.Microsecond
			if got, want := sw.FencePort(0, at), link.Fence(at); got != want {
				t.Fatalf("fence: switch %v, bare link %v", got, want)
			}
			if fc.Enabled() {
				if got, want := sw.FenceCleanPort(0, at), link.FenceClean(at); got != want {
					t.Fatalf("clean fence: switch %v, bare link %v", got, want)
				}
				a, b := sw.FaultStats(), link.FaultStats()
				if a != b {
					t.Fatalf("fault draws diverged: switch %+v, bare link %+v", a, b)
				}
			}
		})
	}
}

// Oversubscription: with fewer host uplinks than ports, concurrent flows
// queue on the spine; a non-blocking switch passes the same flows with zero
// spine queueing and a strictly earlier (or equal) drain.
func TestSwitchOversubscriptionQueues(t *testing.T) {
	check.Enable(t)
	run := func(hostPorts int) (sim.Time, SwitchStats) {
		sw, err := NewSwitch(SwitchConfig{Ports: 4, HostPorts: hostPorts})
		if err != nil {
			t.Fatal(err)
		}
		var last sim.Time
		for i := 0; i < 12; i++ {
			for p := 0; p < 4; p++ {
				// Stagger the ports so spine arrivals are 200 ns apart:
				// longer than one non-blocking spine service (~136 ns for
				// 8 KiB at 4x port bandwidth), shorter than a 4:1
				// oversubscribed one (~543 ns) — so only the oversubscribed
				// spine queues.
				ready := sim.Time(i)*sim.Microsecond + sim.Time(p)*200*sim.Nanosecond
				res, err := sw.Send(p, ready, 8192, 128, 0, cxl.WirePacketBytes(0), false)
				if err != nil {
					t.Fatal(err)
				}
				if res.Done > last {
					last = res.Done
				}
			}
		}
		return last, sw.Stats()
	}
	fullDrain, full := run(4)
	overDrain, over := run(1)
	if full.SpineQueued != 0 {
		t.Fatalf("non-blocking switch queued %v on the spine", full.SpineQueued)
	}
	if over.SpineQueued <= 0 {
		t.Fatal("4:1 oversubscribed switch never queued")
	}
	if overDrain <= fullDrain {
		t.Fatalf("oversubscribed drain %v not later than non-blocking %v", overDrain, fullDrain)
	}
	if full.Bytes != over.Bytes || full.SpineBytes != full.Bytes {
		t.Fatalf("conservation: %+v vs %+v", full, over)
	}
}

// Hop latency shifts an uncontended flow by exactly the configured hop.
func TestSwitchHopLatency(t *testing.T) {
	zero, err := NewSwitch(SwitchConfig{Ports: 1})
	if err != nil {
		t.Fatal(err)
	}
	hop, err := NewSwitch(SwitchConfig{Ports: 1, HopLatency: DefaultHopLatency})
	if err != nil {
		t.Fatal(err)
	}
	a, err := zero.Send(0, 0, 4096, 64, 0, cxl.WirePacketBytes(0), false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hop.Send(0, 0, 4096, 64, 0, cxl.WirePacketBytes(0), false)
	if err != nil {
		t.Fatal(err)
	}
	if b.Done-a.Done != DefaultHopLatency {
		t.Fatalf("hop added %v, want %v", b.Done-a.Done, DefaultHopLatency)
	}
}

// A killed port with a spare fails over: the first send pays detection and
// backoff, traffic continues, and the failover is counted. Without a spare
// the send fails with PortDownError carrying the give-up time.
func TestSwitchFailover(t *testing.T) {
	check.Enable(t)
	sw, err := NewSwitch(SwitchConfig{Ports: 2, SparePorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.KillPort(0); err != nil {
		t.Fatal(err)
	}
	if sw.PortUp(0) {
		t.Fatal("killed port still up")
	}
	res, err := sw.Send(0, 0, 4096, 64, 0, cxl.WirePacketBytes(0), false)
	if err != nil {
		t.Fatalf("send with a spare available: %v", err)
	}
	if res.Done < DefaultLinkDownTimeout {
		t.Fatalf("failed-over send finished at %v, before the detection timeout %v", res.Done, DefaultLinkDownTimeout)
	}
	if !sw.PortUp(0) {
		t.Fatal("port 0 has no live route after failover")
	}
	st := sw.Stats()
	if st.PortsDown != 1 || st.Failovers != 1 {
		t.Fatalf("stats after failover: %+v", st)
	}
	// Port 1 is untouched.
	if _, err := sw.Send(1, 0, 4096, 64, 0, cxl.WirePacketBytes(0), false); err != nil {
		t.Fatal(err)
	}

	// Exhaust: kill the spare (now routing port 0) too; port 0's next send
	// must give up.
	if err := sw.KillPort(0); err != nil {
		t.Fatal(err)
	}
	_, err = sw.Send(0, 0, 4096, 64, 0, cxl.WirePacketBytes(0), false)
	var pde *PortDownError
	if !errors.As(err, &pde) {
		t.Fatalf("want PortDownError, got %v", err)
	}
	if pde.Port != 0 || pde.At <= DefaultLinkDownTimeout {
		t.Fatalf("give-up error %+v lacks detection time", pde)
	}
	if sw.Stats().FailedSends != 1 {
		t.Fatalf("failed send not counted: %+v", sw.Stats())
	}
	if err := sw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Failover give-up times are seeded: two switches with the same config give
// up at the same simulated time, a third with a different seed (almost
// surely) at a different one.
func TestSwitchFailoverBackoffSeeded(t *testing.T) {
	giveUp := func(seed int64) sim.Time {
		sw, err := NewSwitch(SwitchConfig{Ports: 1, Faults: cxl.FaultConfig{Seed: seed, BER: 1e-9}})
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.KillPort(0); err != nil {
			t.Fatal(err)
		}
		_, err = sw.Send(0, 0, 64, 1, 0, cxl.WirePacketBytes(0), false)
		var pde *PortDownError
		if !errors.As(err, &pde) {
			t.Fatalf("want PortDownError, got %v", err)
		}
		return pde.At
	}
	if a, b := giveUp(3), giveUp(3); a != b {
		t.Fatalf("same seed gave up at %v and %v", a, b)
	}
	if a, b := giveUp(3), giveUp(4); a == b {
		t.Fatalf("different seeds both gave up at %v", a)
	}
}

func TestSwitchConfigValidation(t *testing.T) {
	for _, cfg := range []SwitchConfig{
		{Ports: 0},
		{Ports: 2, SparePorts: -1},
		{Ports: 2, HostPorts: -2},
		{Ports: 2, Faults: cxl.FaultConfig{BER: -1}},
	} {
		if _, err := NewSwitch(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
	if err := (&Switch{cfg: SwitchConfig{Ports: 1}, route: []int{0}}).KillPort(5); err == nil {
		t.Fatal("kill of unknown port accepted")
	}
}
