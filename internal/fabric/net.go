package fabric

import (
	"bytes"
	"fmt"

	"teco/internal/cxl"
)

// NetConfig configures the functional fabric plane: the thing real frame
// bytes cross between the host and the replica accelerators during
// data-parallel training.
type NetConfig struct {
	// Ports is the number of accelerator-facing ports (one per replica).
	Ports int
	// SparePorts adds idle ports failover can reroute onto.
	SparePorts int
	// Faults is the per-port fault template (PortFaultConfig derives each
	// port's seed; port 0 keeps the template seed). Only the bit-error
	// half applies on the functional plane — stalls and degrade are
	// timing concepts priced by the Switch.
	Faults cxl.FaultConfig
	// RetryBudget bounds CRC-failure retransmits per frame before the
	// frame is delivered poisoned and recovered by a clean refetch.
	// 0 selects cxl.DefaultRetryBudget.
	RetryBudget int
	// FailoverRetries bounds route probes after a dead port. The
	// functional plane has no clock, so the Switch prices the seeded
	// backoff; here the probes only count. 0 selects the default.
	FailoverRetries int
}

// NetStats is the per-net frame accounting.
type NetStats struct {
	// Frames counts deliveries; Retries counts CRC-failure retransmits;
	// Poisoned counts frames whose retry budget ran out; Refetches counts
	// the clean recovery fetches that followed (Poisoned == Refetches:
	// a poisoned frame is never consumed, always refetched).
	Frames    int64
	Retries   int64
	Poisoned  int64
	Refetches int64
	// PortsDown / Failovers / FailoverRetries count failure-path events.
	PortsDown       int64
	Failovers       int64
	FailoverRetries int64
}

type netPort struct {
	fm    *cxl.FaultModel
	up    bool
	bound int
}

// Net is the functional fabric plane: per-port seeded fault models corrupt
// real frame images, CRC failures retransmit, exhausted budgets poison and
// refetch, dead ports fail over to spares. It is single-goroutine by
// design — the replica group serializes its fabric traffic in replica-id
// order, which is what keeps every fault draw reproducible.
type Net struct {
	cfg     NetConfig
	ports   []*netPort
	route   []int
	stats   NetStats
	wire    []byte
	corrupt []byte
}

// NewNet builds the functional plane with Ports+SparePorts ports.
func NewNet(cfg NetConfig) (*Net, error) {
	if cfg.Ports < 1 {
		return nil, fmt.Errorf("fabric: net needs >= 1 port, got %d", cfg.Ports)
	}
	if cfg.SparePorts < 0 {
		return nil, fmt.Errorf("fabric: negative spare ports %d", cfg.SparePorts)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = cxl.DefaultRetryBudget
	}
	if cfg.FailoverRetries <= 0 {
		cfg.FailoverRetries = DefaultFailoverRetries
	}
	n := &Net{cfg: cfg, route: make([]int, cfg.Ports)}
	for i := 0; i < cfg.Ports+cfg.SparePorts; i++ {
		p := &netPort{up: true, bound: -1}
		if pc := PortFaultConfig(cfg.Faults, i); pc.Enabled() {
			fm, err := cxl.NewFaultModel(pc)
			if err != nil {
				return nil, err
			}
			p.fm = fm
		}
		if i < cfg.Ports {
			p.bound = i
			n.route[i] = i
		}
		n.ports = append(n.ports, p)
	}
	return n, nil
}

// Stats returns the net accounting so far.
func (n *Net) Stats() NetStats { return n.stats }

// PortUp reports whether logical port lp currently has a live route.
func (n *Net) PortUp(lp int) bool { return n.ports[n.route[lp]].up }

// KillPort takes down the port routing lp's traffic.
func (n *Net) KillPort(lp int) error {
	if lp < 0 || lp >= n.cfg.Ports {
		return fmt.Errorf("fabric: kill of unknown port %d", lp)
	}
	p := n.ports[n.route[lp]]
	if !p.up {
		return nil
	}
	p.up = false
	n.stats.PortsDown++
	telemetry.portsDown.Add(1)
	return nil
}

// RevivePort restores logical port lp onto its original physical port
// (the repaired accelerator rejoining the fabric). Any spare it had failed
// over to is released.
func (n *Net) RevivePort(lp int) error {
	if lp < 0 || lp >= n.cfg.Ports {
		return fmt.Errorf("fabric: revive of unknown port %d", lp)
	}
	if cur := n.route[lp]; cur != lp {
		n.ports[cur].bound = -1
	}
	n.route[lp] = lp
	n.ports[lp].bound = lp
	n.ports[lp].up = true
	return nil
}

func (n *Net) failover(lp int) bool {
	for attempt := 0; ; attempt++ {
		for i := n.cfg.Ports; i < len(n.ports); i++ {
			if p := n.ports[i]; p.up && p.bound < 0 {
				p.bound = lp
				n.route[lp] = i
				n.stats.Failovers++
				telemetry.failovers.Add(1)
				return true
			}
		}
		if attempt >= n.cfg.FailoverRetries {
			return false
		}
		n.stats.FailoverRetries++
		telemetry.failoverRetries.Add(1)
	}
}

// DeliverResult reports one frame delivery.
type DeliverResult struct {
	Frame    Frame
	Retries  int
	Poisoned bool
}

// Deliver carries one frame across the fabric. The frame traverses the
// fault domain of every accelerator-facing port on its path — the source
// port when f.Src is a replica, the destination port when f.Dst is (the
// host uplink sits in the controlled host domain and is modelled
// fault-free). A corrupted image fails the CRC and retransmits; an
// exhausted budget delivers the frame poisoned, immediately recovered by
// a clean refetch — so the decoded payload is always exact and faults
// surface only in the counters, the house guarantee.
func (n *Net) Deliver(f *Frame) (DeliverResult, error) {
	var res DeliverResult
	ports, err := n.path(f)
	if err != nil {
		return res, err
	}
	wire, err := f.AppendEncode(n.wire[:0])
	if err != nil {
		return res, err
	}
	n.wire = wire
	n.stats.Frames++
	telemetry.frames.Add(1)
	for attempt := 0; ; attempt++ {
		img := wire
		flips := 0
		for _, p := range ports {
			if p.fm == nil {
				continue
			}
			var k int
			img, k = p.fm.CorruptFrameReuse(img, n.corrupt[:0])
			// Capture grown scratch capacity — but only after a corrupting
			// draw: with zero flips the call returns its input, and
			// capturing that here could alias the scratch onto the pristine
			// wire image, letting a later attempt corrupt it in place.
			if k > 0 && cap(img) > cap(n.corrupt) {
				n.corrupt = img[:0]
			}
			flips += k
		}
		if flips == 0 {
			break
		}
		if err := DecodeFrameInto(&res.Frame, img); err == nil && bytes.Equal(img, wire) {
			// An even number of flips landed on the same bits and
			// cancelled out; the image is intact, deliver it.
			break
		}
		// Rejected: by the CRC for almost every flip pattern, or — for a
		// multi-flip pattern that collides the CRC — by the receiver's
		// end-to-end payload digest. Either way the frame is NAKed and
		// retransmitted, never consumed corrupted.
		if attempt >= n.cfg.RetryBudget {
			res.Poisoned = true
			n.stats.Poisoned++
			n.stats.Refetches++
			telemetry.framesPoisoned.Add(1)
			break
		}
		res.Retries++
		n.stats.Retries++
		telemetry.frameRetries.Add(1)
	}
	// Clean delivery: either the image survived intact, or the poisoned
	// frame is refetched once more outside the fault window.
	if err := DecodeFrameInto(&res.Frame, wire); err != nil {
		return res, fmt.Errorf("fabric: clean frame failed to decode: %w", err)
	}
	return res, nil
}

// path resolves the accelerator ports the frame traverses, running
// failover for any dead one.
func (n *Net) path(f *Frame) ([]*netPort, error) {
	var ports []*netPort
	for _, addr := range [2]uint8{f.Src, f.Dst} {
		if addr == HostAddr {
			continue
		}
		lp := int(addr)
		if lp >= n.cfg.Ports {
			return nil, fmt.Errorf("fabric: frame addresses unknown port %d", lp)
		}
		p := n.ports[n.route[lp]]
		if !p.up {
			if !n.failover(lp) {
				return nil, &PortDownError{Port: lp}
			}
			p = n.ports[n.route[lp]]
		}
		ports = append(ports, p)
	}
	return ports, nil
}
