// Package fabric models a switched CXL fabric: N accelerator-facing ports
// sharing switch spine bandwidth behind per-port queues, with hop latency,
// per-port fault domains (the PR 1 cxl.FaultModel composed per link,
// unchanged), link-down detection, and bounded failover through spare
// ports. It has the same two planes as the rest of the repo: a timed plane
// (Switch, driven by internal/core for step timing) and a functional plane
// (Net, driven by the data-parallel trainer in internal/realtrain, where
// real frame bytes cross real per-port fault models).
package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"

	"teco/internal/cxl"
	"teco/internal/sim"
)

// Frame kinds. The fabric routes three traffic classes; anything else on
// the wire is a codec error, never silently delivered.
const (
	// KindGrad carries one sample's gradient tape from a replica to the
	// host (the data-parallel equivalent of the gradient writeback).
	KindGrad = 1
	// KindParam carries a parameter-shard payload: host→replica on the
	// shard owner's port, then replica→replica for the all-gather leg.
	KindParam = 2
	// KindCtl carries replica-group control traffic (join, rebuild).
	KindCtl = 3
)

// HostAddr is the frame address of the host port. The host sits on the
// switch's upstream side and is not an accelerator port, so it gets the
// reserved address outside the 0..254 accelerator range.
const HostAddr = 0xFF

// frameVersion is the codec version byte; bumping it invalidates every
// seed-corpus entry on purpose.
const frameVersion = 1

// frameHeaderLen is the fixed header: version, kind, src, dst, flow u32,
// seq u32, payload length u32. A 2-byte CRC-16 (the same CCITT-FALSE
// polynomial the cxl link layer uses) trails the payload.
const frameHeaderLen = 1 + 1 + 1 + 1 + 4 + 4 + 4

// frameOverhead is the wire bytes added around the payload.
const frameOverhead = frameHeaderLen + 2

// maxFramePayload bounds a decoded payload so a hostile length field can
// never drive an allocation; real fabric payloads are a few KiB.
const maxFramePayload = 1 << 24

// Codec errors. ErrCRC is distinct from the cxl packet codec's so a test
// can tell which layer rejected a corrupted image.
var (
	ErrShortFrame   = errors.New("fabric: frame too short")
	ErrFrameVersion = errors.New("fabric: unknown frame version")
	ErrFrameKind    = errors.New("fabric: unknown frame kind")
	ErrFrameLength  = errors.New("fabric: frame length mismatch")
	ErrCRC          = errors.New("fabric: frame CRC mismatch")
)

// Frame is one routed fabric message: source and destination port
// addresses (HostAddr for the host side), a traffic class, a flow id (the
// training step), a sequence number within the flow, and the payload.
type Frame struct {
	Src, Dst uint8
	Kind     uint8
	Flow     uint32
	Seq      uint32
	Payload  []byte
}

// WireLen is the encoded size of the frame.
func (f *Frame) WireLen() int { return frameOverhead + len(f.Payload) }

// AppendEncode appends the CRC-protected wire image of f to dst and
// returns the extended slice. The CRC covers header and payload, so any
// single corrupted bit anywhere in the image is detected.
func (f *Frame) AppendEncode(dst []byte) ([]byte, error) {
	if f.Kind != KindGrad && f.Kind != KindParam && f.Kind != KindCtl {
		return nil, ErrFrameKind
	}
	if len(f.Payload) > maxFramePayload {
		return nil, ErrFrameLength
	}
	base := len(dst)
	var hdr [frameHeaderLen]byte
	hdr[0] = frameVersion
	hdr[1] = f.Kind
	hdr[2] = f.Src
	hdr[3] = f.Dst
	binary.LittleEndian.PutUint32(hdr[4:8], f.Flow)
	binary.LittleEndian.PutUint32(hdr[8:12], f.Seq)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Payload...)
	var tail [2]byte
	binary.LittleEndian.PutUint16(tail[:], cxl.CRC16(dst[base:]))
	return append(dst, tail[:]...), nil
}

// Encode returns the CRC-protected wire image of f.
func (f *Frame) Encode() ([]byte, error) { return f.AppendEncode(nil) }

// DecodeFrame verifies and decodes one frame image.
func DecodeFrame(buf []byte) (Frame, error) {
	var f Frame
	err := DecodeFrameInto(&f, buf)
	return f, err
}

// DecodeFrameInto is DecodeFrame reusing f's payload capacity. f is zeroed
// on any error: a frame that fails any check — length, version, kind, CRC
// — is never partially delivered.
func DecodeFrameInto(f *Frame, buf []byte) error {
	if len(buf) < frameOverhead {
		*f = Frame{}
		return ErrShortFrame
	}
	body, tail := buf[:len(buf)-2], buf[len(buf)-2:]
	if cxl.CRC16(body) != binary.LittleEndian.Uint16(tail) {
		*f = Frame{}
		return ErrCRC
	}
	if body[0] != frameVersion {
		*f = Frame{}
		return ErrFrameVersion
	}
	kind := body[1]
	if kind != KindGrad && kind != KindParam && kind != KindCtl {
		*f = Frame{}
		return ErrFrameKind
	}
	plen := binary.LittleEndian.Uint32(body[12:16])
	if plen > maxFramePayload || int(plen) != len(body)-frameHeaderLen {
		*f = Frame{}
		return ErrFrameLength
	}
	f.Kind = kind
	f.Src = body[2]
	f.Dst = body[3]
	f.Flow = binary.LittleEndian.Uint32(body[4:8])
	f.Seq = binary.LittleEndian.Uint32(body[8:12])
	f.Payload = append(f.Payload[:0], body[frameHeaderLen:]...)
	return nil
}

// PortDownError reports a send that could not be delivered: the routed
// port is down and no spare port could take over within the failover
// budget. At carries the simulated time at which the sender gave up
// (timed plane) or zero (functional plane).
type PortDownError struct {
	Port int
	At   sim.Time
}

func (e *PortDownError) Error() string {
	return fmt.Sprintf("fabric: port %d down, failover exhausted", e.Port)
}
