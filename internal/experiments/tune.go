package experiments

import (
	"fmt"

	"teco/internal/core"
	"teco/internal/modelzoo"
	"teco/internal/realtrain"
	"teco/internal/tuner"
	"teco/internal/zero"
)

// tuneSteps is the fine-tune length per tuner evaluation (shorter than
// RealTrainSteps: the tuner runs the objective many times).
const tuneSteps = 300

// TuneActAfterSteps runs the paper's §V-A prescription — "act_aft_steps can
// be tuned using the Bayesian optimization" — with the from-scratch GP
// optimizer over the activation step, maximizing a quality+speed score.
func TuneActAfterSteps(seed int64) *Table { return TuneActAfterStepsWith(Options{Seed: seed}) }

// TuneActAfterStepsWith is TuneActAfterSteps with the objective served by
// the shared run cache. Bayesian optimization is inherently sequential
// (each acquisition depends on all previous observations), so the
// optimizer loop stays serial; the cache still collapses re-evaluations of
// activation steps the GP revisits.
func TuneActAfterStepsWith(opt Options) *Table {
	seed := opt.Seed
	t := &Table{
		ID:     "tune-act",
		Title:  "Bayesian optimization of act_aft_steps (§V-A)",
		Header: []string{"act_aft_steps", "Accuracy", "Speedup", "Score"},
	}
	m := modelzoo.GPT2()
	base := zero.NewEngine().Step(m, 4)
	cxlStep := tecoEngine(opt, core.Config{}).Step(m, 4).Total()
	dbaStep := tecoEngine(opt, core.Config{DBA: true}).Step(m, 4).Total()

	type point struct {
		act            int
		acc, sp, score float64
	}
	var history []point
	objective := func(x float64) float64 {
		act := int(x)
		if act < 0 {
			act = 0
		}
		if act > tuneSteps {
			act = tuneSteps
		}
		r := runTrain(opt, realtrain.Config{Steps: tuneSteps, Seed: seed, DBA: true, ActAfterSteps: act})
		avg := (float64(cxlStep)*float64(act) + float64(dbaStep)*float64(tuneSteps-act)) / tuneSteps
		sp := float64(base.Total()) / avg
		// Quality dominates; speed breaks ties (the paper's "strikes a
		// balance" criterion).
		score := r.FinalAcc + 0.05*sp
		history = append(history, point{act, r.FinalAcc, sp, score})
		return score
	}
	res, err := tuner.Maximize(objective, tuner.Config{
		Lo: 0, Hi: float64(tuneSteps), InitPoints: 4, Iters: 6, Seed: seed,
	})
	if err != nil {
		t.Note("tuner error: %v", err)
		return t
	}
	for _, p := range history {
		t.AddRow(fmt.Sprint(p.act), pct(p.acc), f2(p.sp)+"x", f4(p.score))
	}
	t.Note("best act_aft_steps = %d (score %.4f); the paper settles on 500 of 1775 steps — in this proxy the quality term is nearly flat in the activation step, so the optimizer leans toward early activation for speed", int(res.BestX), res.BestY)
	return t
}
