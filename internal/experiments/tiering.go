package experiments

import (
	"fmt"

	"teco/internal/core"
	"teco/internal/modelzoo"
	"teco/internal/tiering"
)

// The tiering sweeps chart the heterogeneous-memory tiering controller
// (core.RunTiered): what capacity pressure on the fast DRAM tier costs when
// the model (parameters + optimizer state) no longer fits, how much online
// hot/cold migration claws back under a bounded per-step budget, and how
// close the online heat policy lands to an oracle placement computed from
// the recorded full trace. Both tables are pure integer-picosecond
// simulation, so the goldens pin them byte for byte at seed 42.

// tieringDRAMGrid returns the swept fast-tier sizes in percent of the
// tiered slot bytes (parameters + FP32 ADAM moments); an explicit
// Options.TierDRAMPct collapses the axis.
func tieringDRAMGrid(opt Options) []int {
	if opt.TierDRAMPct > 0 {
		return []int{opt.TierDRAMPct}
	}
	return []int{10, 25, 50, 100}
}

// tieringBudgetGrid returns the swept per-step migration budgets in MiB
// (0 = static placement); an explicit Options.TierMigrateBudget collapses
// the axis.
func tieringBudgetGrid(opt Options) []int {
	if opt.TierMigrateBudget > 0 {
		return []int{opt.TierMigrateBudget}
	}
	return []int{0, 64, 512}
}

// tieringPolicyBudget is the policy ablation's per-step migration budget in
// MiB (default 512: wide enough for a few slot moves per step, so policies
// actually differ).
func tieringPolicyBudget(opt Options) int {
	if opt.TierMigrateBudget > 0 {
		return opt.TierMigrateBudget
	}
	return 512
}

// tieringPolicyDRAMPct is the policy ablation's fast-tier size (default 25:
// deep capacity pressure — the regime where placement matters).
func tieringPolicyDRAMPct(opt Options) int {
	if opt.TierDRAMPct > 0 {
		return opt.TierDRAMPct
	}
	return 25
}

// tieringSlotTotal returns the tiered byte total and largest single slot
// for feasibility guards (parameter slot + 2× optimizer-state slot per
// layer; the last layer carries the division remainder).
func tieringSlotTotal(m modelzoo.Model) (total, largest int64) {
	per := m.ParamBytes() / int64(m.Layers)
	last := per + (m.ParamBytes() - per*int64(m.Layers))
	return 3 * m.ParamBytes(), 2 * last
}

// TieringSweep is the capacity-pressure grid (GPT-2, batch 4): fast-tier
// size x migration budget, with parameter and optimizer-state slots
// scheduled separately. Per cell: the static-placement run, the migrating
// run under the heat policy, the win between them, and the placement churn
// behind it. Cells whose fast tier cannot hold the largest slot are
// structurally infeasible and render as "n/a".
func TieringSweep(opt Options) *Table {
	t := &Table{
		ID: "tiering",
		Title: "Heterogeneous memory tiering: DRAM size x migration budget " +
			"(GPT-2, batch 4, params + optimizer state, heat policy)",
		Header: []string{"DRAM", "Budget", "Static", "Tiered", "Win",
			"Far", "Migr", "Promoted", "Deferred"},
	}
	m := modelzoo.GPT2()
	total, largest := tieringSlotTotal(m)
	dramGrid := tieringDRAMGrid(opt)
	budgetGrid := tieringBudgetGrid(opt)
	policy := opt.TierPolicy
	rows := grid(opt, len(dramGrid)*len(budgetGrid), func(i int) []string {
		pct := dramGrid[i/len(budgetGrid)]
		budget := budgetGrid[i%len(budgetGrid)]
		label := fmt.Sprintf("%d%%", pct)
		blabel := fmt.Sprintf("%dMiB", budget)
		dram := total * int64(pct) / 100
		if pct < 100 && dram < largest {
			return []string{label, blabel, "n/a", "n/a", "n/a", "-", "-", "-", "-"}
		}
		e := tecoEngine(opt, core.Config{DBA: true})
		tc := core.TierConfig{DRAMBytes: dram, OptSlots: true, Policy: policy,
			MigrateBudget: int64(budget) << 20}
		if pct >= 100 {
			tc.DRAMBytes = 0 // everything fits: the all-fast baseline
		}
		static := tc
		static.Policy = "static"
		base, _, err := e.RunTiered(m, 4, static)
		if err != nil {
			return []string{label, blabel, "-", "-", "-", "-", "-", "-", err.Error()}
		}
		res, _, err := e.RunTiered(m, 4, tc)
		if err != nil {
			return []string{label, blabel, "-", "-", "-", "-", "-", "-", err.Error()}
		}
		return []string{
			label, blabel,
			ms(base.Total().Milliseconds()),
			ms(res.Total().Milliseconds()),
			f2(float64(base.Total())/float64(res.Total())) + "x",
			fmt.Sprint(res.Tier.FarAccesses),
			fmt.Sprint(res.Tier.Migrations),
			fmt.Sprintf("%dMB", res.Tier.PromotedBytes>>20),
			fmt.Sprint(res.Tier.Deferred),
		}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Note("migration promotes the hot parameter slots out of the CXL expander between steps, bounded by the per-step budget; the win column is the static/tiered step-time ratio, 1.00x when everything already fits fast or the budget is zero")
	return t
}

// TieringPolicySweep is the placement-policy ablation at fixed capacity
// pressure: each online policy's measured run plus its placement cost under
// the recorded trace, against the oracle placement computed from that same
// trace (greedy benefit-density fill — the clairvoyant reference). The
// "vs oracle" column is the policy/oracle placement-cost ratio the
// acceptance gap is recorded from.
func TieringPolicySweep(opt Options) *Table {
	pct := tieringPolicyDRAMPct(opt)
	budget := tieringPolicyBudget(opt)
	t := &Table{
		ID: "tiering-policy",
		Title: fmt.Sprintf("Tiering-policy ablation vs oracle placement "+
			"(GPT-2, batch 4, DRAM %d%%, budget %dMiB/step)", pct, budget),
		Header: []string{"Policy", "Total", "Prm", "Adam", "Far", "Migr",
			"Cost", "vs oracle"},
	}
	m := modelzoo.GPT2()
	total, _ := tieringSlotTotal(m)
	dram := total * int64(pct) / 100
	policies := []string{"static", "lru", "heat"}
	if opt.TierPolicy != "" {
		policies = []string{opt.TierPolicy}
	}
	cm := tiering.DefaultCostModel()
	type cell struct {
		row   []string
		cost  float64
		trace core.TierTrace
		err   error
	}
	cells := grid(opt, len(policies), func(i int) cell {
		e := tecoEngine(opt, core.Config{DBA: true})
		res, trace, err := e.RunTiered(m, 4, core.TierConfig{
			DRAMBytes: dram, OptSlots: true,
			Policy: policies[i], MigrateBudget: int64(budget) << 20,
		})
		if err != nil {
			return cell{err: err}
		}
		cost := cm.PlacementCost(trace.Heat, trace.Fast, trace.Sizes)
		return cell{
			row: []string{
				policies[i],
				ms(res.Total().Milliseconds()),
				ms(res.Prm.Milliseconds()),
				ms(res.Adam.Milliseconds()),
				fmt.Sprint(res.Tier.FarAccesses),
				fmt.Sprint(res.Tier.Migrations),
				ms(cost.Milliseconds()),
			},
			cost:  float64(cost),
			trace: trace,
		}
	})
	var oracleCost float64
	for _, c := range cells {
		if c.err == nil {
			// The access trace (heat) is placement-independent — every
			// policy walks the same slots — so any successful cell seeds
			// the oracle.
			oc := cm.PlacementCost(c.trace.Heat,
				cm.OraclePlacement(c.trace.Heat, c.trace.Sizes, c.trace.FastBytes),
				c.trace.Sizes)
			oracleCost = float64(oc)
			break
		}
	}
	for _, c := range cells {
		if c.err != nil {
			t.AddRow("-", "-", "-", "-", "-", "-", "-", c.err.Error())
			continue
		}
		gap := "-"
		if oracleCost > 0 {
			gap = f2(c.cost/oracleCost) + "x"
		}
		t.AddRow(append(c.row, gap)...)
	}
	t.Note("cost is the recorded trace priced by the DDR4/CXL-expander cost model under each policy's final placement; the oracle is the greedy benefit-density fill of the same trace — the gap column is what online placement leaves on the table")
	return t
}

// validateTiering rejects tiering-sweep options the controller cannot
// model, so the CLI fails fast instead of emitting a grid of error cells.
func (opt Options) validateTiering() error {
	if opt.TierDRAMPct < 0 || opt.TierDRAMPct > 100 {
		return fmt.Errorf("experiments: tier DRAM percentage %d outside 0..100", opt.TierDRAMPct)
	}
	if opt.TierMigrateBudget < 0 {
		return fmt.Errorf("experiments: negative tier migration budget %d", opt.TierMigrateBudget)
	}
	if _, err := tiering.ParsePolicy(opt.TierPolicy); err != nil {
		return err
	}
	return nil
}
