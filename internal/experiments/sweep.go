package experiments

import (
	"context"

	"teco/internal/parallel"
)

// grid evaluates fn over every index of an n-point experiment grid on the
// option's sweep pool (Workers <= 0: GOMAXPROCS, 1: serial) and returns the
// values in grid order regardless of completion order — table rows come out
// identical at every worker count.
func grid[T any](opt Options, n int, fn func(i int) T) []T {
	out, _ := parallel.Run(context.Background(), opt.Workers, n,
		func(_ context.Context, i int) (T, error) { return fn(i), nil })
	return out
}

// gridErr is grid for cells that can fail: the lowest-indexed error cancels
// the sweep and is returned, so the reported failure is deterministic.
func gridErr[T any](opt Options, n int, fn func(i int) (T, error)) ([]T, error) {
	return parallel.Run(context.Background(), opt.Workers, n,
		func(_ context.Context, i int) (T, error) { return fn(i) })
}
