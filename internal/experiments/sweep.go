package experiments

import (
	"context"

	"teco/internal/parallel"
)

// grid evaluates fn over every index of an n-point experiment grid on the
// option's sweep pool (Workers <= 0: GOMAXPROCS, 1: serial) and returns the
// values in grid order regardless of completion order — table rows come out
// identical at every worker count. When the option carries a context, a
// cancelled grid stops dispatching and returns immediately (RunCtx) with
// zero values for every unreached point; callers that care must check
// opt.Ctx.Err() after generating (the sweep service does) because the
// generators themselves are infallible.
func grid[T any](opt Options, n int, fn func(i int) T) []T {
	out, err := parallel.RunCtx(opt.context(), opt.Workers, n,
		func(_ context.Context, i int) (T, error) { return fn(i), nil })
	if err != nil || out == nil {
		// Cancelled mid-sweep: RunCtx withholds its (possibly still being
		// written) result storage, so hand back stable zero values — the
		// generators index into the slice unconditionally.
		return make([]T, n)
	}
	return out
}

// gridErr is grid for cells that can fail: the lowest-indexed error cancels
// the sweep and is returned, so the reported failure is deterministic.
func gridErr[T any](opt Options, n int, fn func(i int) (T, error)) ([]T, error) {
	return parallel.Run(opt.context(), opt.Workers, n,
		func(_ context.Context, i int) (T, error) { return fn(i) })
}
