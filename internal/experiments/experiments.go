package experiments

import (
	"fmt"

	"teco/internal/compressbl"
	"teco/internal/core"
	"teco/internal/gnn"
	"teco/internal/md"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/realtrain"
	"teco/internal/tensor"
	"teco/internal/zero"
)

// RealTrainSteps is the fine-tuning length used by the accuracy
// experiments (kept moderate so the full suite runs in minutes; increase
// for tighter statistics).
const RealTrainSteps = 800

// evalBatches are the batch sizes of Fig 11 / Table IV.
var evalBatches = []int{4, 8, 16}

// TableI reproduces Table I: percentage of training time spent in
// communication exposed to the critical path (ZeRO-Offload,
// Bert-large-cased).
func TableI() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Exposed communication share of training time (ZeRO-Offload, Bert-large-cased)",
		Header: []string{"Batch size", "Paper", "Measured"},
	}
	paper := map[int]string{4: "42.24%", 8: "37.87%", 16: "28.65%", 20: "25.95%"}
	e := zero.NewEngine()
	m := modelzoo.BertLargeCased()
	for _, b := range []int{4, 8, 16, 20} {
		r := e.Step(m, b)
		t.AddRow(fmt.Sprint(b), paper[b], pct(r.CommFraction()))
	}
	t.Note("gradient transfers partially exposed during backward; parameter transfers largely exposed after ADAM")
	return t
}

// Fig2 reproduces Figure 2: the distribution of value-changed bytes in
// parameters (a) and gradients (b) across two consecutive training steps,
// sampled over a real fine-tuning run.
func Fig2(seed int64) (params, grads *Table) {
	r := realtrain.Run(realtrain.Config{Steps: RealTrainSteps, Seed: seed})
	params = &Table{
		ID:     "fig2a",
		Title:  "Value-changed bytes in parameters across consecutive steps",
		Header: []string{"Step", "Last byte", "Last two bytes", "Other", "Unchanged(all)"},
	}
	grads = &Table{
		ID:     "fig2b",
		Title:  "Value-changed bytes in gradients across consecutive steps",
		Header: []string{"Step", "Last byte", "Last two bytes", "Other", "Unchanged(all)"},
	}
	for _, s := range r.Samples {
		if s.Step == 0 {
			continue
		}
		params.AddRow(fmt.Sprint(s.Step),
			pct(s.ParamDist.FracOfChanged(tensor.LastByte)),
			pct(s.ParamDist.FracOfChanged(tensor.LastTwoBytes)),
			pct(s.ParamDist.FracOfChanged(tensor.Other)),
			pct(s.ParamDist.FracUnchanged()))
		grads.AddRow(fmt.Sprint(s.Step),
			pct(s.GradDist.FracOfChanged(tensor.LastByte)),
			pct(s.GradDist.FracOfChanged(tensor.LastTwoBytes)),
			pct(s.GradDist.FracOfChanged(tensor.Other)),
			pct(s.GradDist.FracUnchanged()))
	}
	pd, gd := r.AggregateDistributions()
	params.Note("aggregate: %.1f%% of changed parameters confined to the low two bytes (paper: ~80%% in case 1); %.1f%% of all parameters unchanged (paper: 44.5%%)",
		100*(pd.FracOfChanged(tensor.LastByte)+pd.FracOfChanged(tensor.LastTwoBytes)), 100*pd.FracUnchanged())
	grads.Note("aggregate: %.1f%% of changed gradients touch higher bytes (paper: all bytes change frequently)",
		100*gd.FracOfChanged(tensor.Other))
	return params, grads
}

// AblationInvalidation reproduces the §IV-A2 measurement: stock
// invalidation-based CXL versus the update extension (paper: on-demand
// transfers cost +56.6% training time on average, up to 99.7% on T5).
func AblationInvalidation() *Table {
	t := &Table{
		ID:     "ablation-inval",
		Title:  "Update protocol vs stock invalidation MESI (batch 4)",
		Header: []string{"Model", "Update total", "Invalidation total", "Penalty"},
	}
	upd := core.MustEngine(core.Config{})
	inv := core.MustEngine(core.Config{Invalidation: true})
	var sum float64
	var n int
	for _, m := range modelzoo.EvaluationModels() {
		b := batchFor(m, 4)
		ru := upd.Step(m, b)
		ri := inv.Step(m, b)
		pen := float64(ri.Total())/float64(ru.Total()) - 1
		sum += pen
		n++
		t.AddRow(m.Name, ms(ru.Total().Milliseconds()), ms(ri.Total().Milliseconds()), pct(pen))
	}
	t.Note("average penalty %.1f%% (paper: 56.6%% average, up to 99.7%%)", 100*sum/float64(n))
	return t
}

func batchFor(m modelzoo.Model, b int) int {
	if m.FullGraphOnly {
		return 1
	}
	return b
}

// Fig11TableIV reproduces Figure 11 and Table IV: training-time speedup of
// TECO-CXL and TECO-Reduction over ZeRO-Offload per model and batch size.
func Fig11TableIV() *Table {
	t := &Table{
		ID:     "fig11",
		Title:  "Speedup over ZeRO-Offload (Fig 11 / Table IV)",
		Header: []string{"Model", "Batch", "TECO-CXL", "TECO-Reduction", "Paper (Reduction)"},
	}
	paper := map[string]map[int]string{
		"GPT2":              {4: "1.82x", 8: "1.52x", 16: "1.32x"},
		"Albert-xxlarge-v1": {4: "1.25x", 8: "1.23x", 16: "1.08x"},
		"Bert-large-cased":  {4: "1.6x", 8: "1.62x", 16: "1.41x"},
		"T5-large":          {4: "1.73x", 8: "1.58x", 16: "OOM"},
	}
	base := zero.NewEngine()
	cxlE := core.MustEngine(core.Config{})
	redE := core.MustEngine(core.Config{DBA: true})
	for _, m := range modelzoo.EvaluationModels() {
		batches := evalBatches
		if m.FullGraphOnly {
			batches = []int{1}
		}
		for _, b := range batches {
			pv := "-"
			if pm, ok := paper[m.Name]; ok {
				if v, ok := pm[b]; ok {
					pv = v
				}
			}
			if !m.FullGraphOnly && !m.FitsOnV100(b) {
				// The memory model reproduces the paper's T5 batch-16
				// out-of-memory on the 32GB V100.
				t.AddRow(m.Name, fmt.Sprint(b), "OOM", "OOM", pv)
				continue
			}
			rb := base.Step(m, b)
			t.AddRow(m.Name, fmt.Sprint(b),
				f2(cxlE.Step(m, b).Speedup(rb))+"x",
				f2(redE.Step(m, b).Speedup(rb))+"x",
				pv)
		}
	}
	t.Note("GCNII runs full-graph (batch column = 1); T5-large batch 16 OOMs on the paper's 32GB V100")
	return t
}

// TableV reproduces Table V: final model quality with and without
// TECO-Reduction, on the real fine-tuning proxy (accuracy and a
// perplexity-style metric).
func TableV(seed int64) *Table {
	t := &Table{
		ID:     "table5",
		Title:  "Final model quality, original vs TECO-Reduction (real fine-tuning proxy)",
		Header: []string{"Proxy run", "Metric", "Original", "TECO-Reduction"},
	}
	// One proxy run per evaluated model (different seeds play the role of
	// the different fine-tuning tasks).
	names := []string{"GPT2", "Albert-xxlarge-v1", "Bert-large-cased", "T5-large"}
	for i, name := range names {
		s := seed + int64(i)*100
		base := realtrain.Run(realtrain.Config{Steps: RealTrainSteps, Seed: s})
		red := realtrain.Run(realtrain.Config{Steps: RealTrainSteps, Seed: s, DBA: true, ActAfterSteps: RealTrainSteps / 2})
		t.AddRow(name, "Accuracy", pct(base.FinalAcc), pct(red.FinalAcc))
		t.AddRow(name, "Perplexity", f2(base.Perplexity), f2(red.Perplexity))
	}
	// GCNII: real full-graph GNN training (paper reports 54.90 original,
	// N/A for TECO-Reduction — we run both anyway).
	gBase := gnn.Train(gnn.TrainConfig{Epochs: 200, Seed: seed})
	gRed := gnn.Train(gnn.TrainConfig{Epochs: 200, Seed: seed, DBA: true, ActAfterSteps: 100})
	t.AddRow("GCNII", "Accuracy", pct(gBase.TestAcc), pct(gRed.TestAcc))
	t.Note("paper Table V reports task-specific metrics (e.g. Bert 93.13 -> 91.99 accuracy, GCNII 54.90); the proxy reproduces the property that DBA costs at most a small quality delta")
	return t
}

// Fig10 reproduces Figure 10: training loss curves with and without
// TECO-Reduction.
func Fig10(seed int64) *Table {
	base := realtrain.Run(realtrain.Config{Steps: RealTrainSteps, Seed: seed})
	red := realtrain.Run(realtrain.Config{Steps: RealTrainSteps, Seed: seed, DBA: true, ActAfterSteps: RealTrainSteps / 4})
	t := &Table{
		ID:     "fig10",
		Title:  "Training loss curves (original vs TECO-Reduction)",
		Header: []string{"Step", "Original loss", "TECO-Reduction loss"},
	}
	bs, bl := base.LossCurve()
	_, rl := red.LossCurve()
	for i := range bs {
		if i >= len(rl) {
			break
		}
		t.AddRow(fmt.Sprint(bs[i]), fmt.Sprintf("%.4f", bl[i]), fmt.Sprintf("%.4f", rl[i]))
	}
	t.Note("curves follow the same trend and converge in the same number of steps (paper Fig 10)")
	return t
}

// Fig12 reproduces Figure 12: the time breakdown for T5-large across batch
// sizes and systems.
func Fig12() *Table {
	t := &Table{
		ID:    "fig12",
		Title: "Time breakdown, T5-large (Fig 12)",
		Header: []string{"Batch", "System", "Fwd+Bwd", "Grad xfer (exposed)", "Clip",
			"ADAM", "Param xfer (exposed)", "Total"},
	}
	m := modelzoo.T5Large()
	engines := []struct {
		name string
		step func(modelzoo.Model, int) phases.StepResult
	}{
		{"ZeRO-Offload", func(m modelzoo.Model, b int) phases.StepResult { return zero.NewEngine().Step(m, b) }},
		{"TECO-CXL", func(m modelzoo.Model, b int) phases.StepResult { return core.MustEngine(core.Config{}).Step(m, b) }},
		{"TECO-Reduction", func(m modelzoo.Model, b int) phases.StepResult {
			return core.MustEngine(core.Config{DBA: true}).Step(m, b)
		}},
	}
	for _, b := range []int{4, 8} {
		for _, e := range engines {
			r := e.step(m, b)
			t.AddRow(fmt.Sprint(b), e.name,
				ms((r.Fwd + r.Bwd).Milliseconds()),
				ms(r.Grad.Milliseconds()),
				ms(r.Clip.Milliseconds()),
				ms(r.Adam.Milliseconds()),
				ms(r.Prm.Milliseconds()),
				ms(r.Total().Milliseconds()))
		}
	}
	t.Note("paper: gradients fully hidden at batch 8; TECO-CXL cuts exposed parameter time (~76%% at batch 4); DBA hides it completely")
	return t
}

// CommVolume reproduces §VIII-C: per-direction communication volume and
// the exposed-communication reduction.
func CommVolume() *Table {
	t := &Table{
		ID:    "volume",
		Title: "Communication volume and exposed-time reduction (batch 4)",
		Header: []string{"Model", "Param bytes (ZeRO)", "Param bytes (TECO-R)",
			"Grad bytes", "Comm-time reduction"},
	}
	base := zero.NewEngine()
	red := core.MustEngine(core.Config{DBA: true})
	var sum float64
	var n int
	gb := func(v int64) string { return fmt.Sprintf("%.2fGB", float64(v)/1e9) }
	for _, m := range modelzoo.EvaluationModels() {
		b := batchFor(m, 4)
		rb := base.Step(m, b)
		rr := red.Step(m, b)
		redn := rr.CommReduction(rb)
		sum += redn
		n++
		t.AddRow(m.Name, gb(rb.ParamLinkBytes), gb(rr.ParamLinkBytes), gb(rr.GradLinkBytes), pct(redn))
	}
	t.Note("average exposed-communication reduction %.1f%% (paper: 93.7%% average, up to 100%%); DBA halves parameter volume, gradients are not DBA'd", 100*sum/float64(n))
	return t
}

// TableVI reproduces Table VI: TECO effectiveness across GPT-2 scales.
func TableVI() *Table {
	t := &Table{
		ID:     "table6",
		Title:  "Impact of model size (GPT-2 scales, batch 4)",
		Header: []string{"Model", "ZeRO-Offload", "TECO-CXL", "TECO-Reduction", "Paper (CXL/Red)"},
	}
	paper := map[string]string{
		"GPT2": "1.55x/1.82x", "GPT2-Medium": "1.54x/1.64x",
		"GPT2-Large": "1.67x/1.79x", "GPT2-11B": "1.29x/1.41x",
	}
	base := zero.NewEngine()
	cxlE := core.MustEngine(core.Config{})
	redE := core.MustEngine(core.Config{DBA: true})
	for _, m := range modelzoo.SensitivityModels() {
		rb := base.Step(m, 4)
		t.AddRow(m.Name, "1x",
			f2(cxlE.Step(m, 4).Speedup(rb))+"x",
			f2(redE.Step(m, 4).Speedup(rb))+"x",
			paper[m.Name])
	}
	t.Note("the 11B configuration is compute-dominated (paper: computation is 63.4%% of total), so its speedup is the smallest")
	return t
}

// Fig13 reproduces Figure 13: model quality and speedup versus
// `act_aft_steps`.
func Fig13(seed int64) *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "DBA activation step sweep (quality vs speedup, GPT-2 proxy)",
		Header: []string{"act_aft_steps", "Perplexity", "Accuracy", "Speedup vs ZeRO"},
	}
	m := modelzoo.GPT2()
	base := zero.NewEngine().Step(m, 4)
	cxlStep := core.MustEngine(core.Config{}).Step(m, 4).Total()
	dbaStep := core.MustEngine(core.Config{DBA: true}).Step(m, 4).Total()
	total := RealTrainSteps
	for _, act := range []int{0, total / 8, total / 4, total / 2, 3 * total / 4, total} {
		r := realtrain.Run(realtrain.Config{Steps: total, Seed: seed, DBA: true, ActAfterSteps: act})
		// Average step time: CXL-only before activation, DBA after.
		avg := (float64(cxlStep)*float64(act) + float64(dbaStep)*float64(total-act)) / float64(total)
		sp := float64(base.Total()) / avg
		t.AddRow(fmt.Sprint(act), f2(r.Perplexity), pct(r.FinalAcc), f2(sp)+"x")
	}
	t.Note("paper Fig 13: accuracy 22.50-21.21, speedup 1.63x-1.15x across activation points; act_aft_steps=500 strikes the balance")
	return t
}

// AblationDPU compares ZeRO-Offload with and without the one-step delayed
// parameter update, and TECO-Reduction against both — the §II-A argument
// that DPU only helps at large batches (where there is little left to hide)
// while TECO wins exactly where memory pressure forces small batches.
func AblationDPU() *Table {
	t := &Table{
		ID:     "ablation-dpu",
		Title:  "DPU ablation (Bert-large-cased)",
		Header: []string{"Batch", "ZeRO-Offload", "ZeRO+DPU", "TECO-Reduction", "TECO vs DPU"},
	}
	e := zero.NewEngine()
	red := core.MustEngine(core.Config{DBA: true})
	m := modelzoo.BertLargeCased()
	for _, b := range []int{4, 8, 16, 20} {
		plain := e.Step(m, b)
		dpu := e.StepDPU(m, b)
		teco := red.Step(m, b)
		t.AddRow(fmt.Sprint(b),
			ms(plain.Total().Milliseconds()),
			ms(dpu.Total().Milliseconds()),
			ms(teco.Total().Milliseconds()),
			f2(float64(dpu.Total())/float64(teco.Total()))+"x")
	}
	t.Note("DPU hides the CPU chain only once GPU arithmetic intensity is high (paper §II-A); it also risks changing convergence, which TECO avoids")
	return t
}

// TableVII reproduces Table VII: ZeroQuant-style lossy compression vs
// TECO-Reduction on Bert-base / GLUE-MNLI.
func TableVII() *Table {
	t := &Table{
		ID:     "table7",
		Title:  "Lossy compression (ZeroQuant-style) vs TECO-Reduction",
		Header: []string{"System", "Task", "Model", "Time (hours)", "Paper"},
	}
	row := compressbl.ZeroQuant(modelzoo.BertBaseUncased(), 32, compressbl.GLUEMNLISteps(32))
	t.AddRow("Zero-Quant", row.Task, row.Model, f2(row.ZeroQuantHours), "5.8")
	t.AddRow("TECO-Reduction", row.Task, row.Model, f2(row.TECOHours), "2.03")
	t.Note("measured slowdown %.2fx (paper: 2.87x): the quantized model needs a full-precision teacher forward every step", row.Slowdown)
	return t
}

// TableVIII reproduces Table VIII: the lossless LZ4 transfer pipeline.
func TableVIII(seed int64) *Table {
	t := &Table{
		ID:     "table8",
		Title:  "Lossless compression (LZ4) pipeline, normalized to TECO-Reduction",
		Header: []string{"Model", "Compression ratio", "Paper ratio", "Normalized time", "Paper time"},
	}
	paperRatio := map[string]string{"GPT2": "5%", "Albert-xxlarge-v1": "0%", "Bert-large-cased": "0%", "T5-large": "36%"}
	paperTime := map[string]string{"GPT2": "4.51", "Albert-xxlarge-v1": "1.95", "Bert-large-cased": "3.03", "T5-large": "2.04"}
	for _, m := range []modelzoo.Model{modelzoo.GPT2(), modelzoo.AlbertXXLarge(), modelzoo.BertLargeCased(), modelzoo.T5Large()} {
		row := compressbl.LosslessCompression(m, 4, seed)
		t.AddRow(m.Name, pct(row.Ratio), paperRatio[m.Name], f2(row.Normalized), paperTime[m.Name])
	}
	t.Note("compression ratios measured with the from-scratch LZ4 on synthetic parameter snapshots; the pipeline is at least ~2x slower than TECO everywhere (paper's conclusion)")
	return t
}

// LAMMPS reproduces the §VII generality study on the Lennard-Jones melt.
func LAMMPS() *Table {
	t := &Table{
		ID:     "lammps",
		Title:  "Generality: LAMMPS-style LJ melt with offloaded force kernel (4M atoms)",
		Header: []string{"Metric", "Measured", "Paper"},
	}
	r := md.Generality(4_000_000)
	t.AddRow("Baseline comm fraction", pct(r.CommFraction), "27%")
	t.AddRow("Total improvement", pct(r.Improvement), "21.5%")
	t.AddRow("CXL contribution", pct(r.CXLContribution), "78%")
	t.AddRow("DBA contribution", pct(r.DBAContribution), "22%")
	t.AddRow("Volume reduction (DBA)", pct(r.VolumeReduction), "17%")

	// Physics-level validation: the melt tolerates the dirty-byte path.
	exact := md.RunOffloaded(md.NewSystem(md.Config{Seed: 1}), 200, 0.004, 4)
	dba3 := md.RunOffloaded(md.NewSystem(md.Config{Seed: 1}), 200, 0.004, md.MDDirtyBytes)
	t.AddRow("Energy drift (exact transfers)", fmt.Sprintf("%.4f", exact), "-")
	t.AddRow("Energy drift (dirty-byte path)", fmt.Sprintf("%.4f", dba3), "-")
	t.Note("positions cross the link as fixed-binade scaled coordinates, making the 3-dirty-byte merge well-conditioned (see internal/md)")
	return t
}

// All runs every experiment and returns the tables in paper order.
func All(seed int64) []*Table {
	f2a, f2b := Fig2(seed)
	return []*Table{
		TableI(),
		f2a, f2b,
		AblationInvalidation(),
		Fig11TableIV(),
		TableV(seed),
		Fig10(seed),
		Fig12(),
		CommVolume(),
		TableVI(),
		Fig13(seed),
		TableVII(),
		TableVIII(seed),
		LAMMPS(),
		FaultSweep(Options{Seed: seed}),
		RecoverySweep(Options{Seed: seed}),
	}
}

// ByID runs a single experiment by its id; Fig2 returns two tables.
func ByID(id string, seed int64) ([]*Table, error) {
	return ByIDWith(id, Options{Seed: seed})
}

// ByIDWith runs a single experiment with the full option set (fault
// injection knobs included).
func ByIDWith(id string, opt Options) ([]*Table, error) {
	seed := opt.Seed
	switch id {
	case "faults":
		if err := opt.validateFaults(); err != nil {
			return nil, err
		}
		return []*Table{FaultSweep(opt)}, nil
	case "recovery":
		if err := opt.validateRecovery(); err != nil {
			return nil, err
		}
		return []*Table{RecoverySweep(opt)}, nil
	case "table1":
		return []*Table{TableI()}, nil
	case "fig2", "fig2a", "fig2b":
		a, b := Fig2(seed)
		return []*Table{a, b}, nil
	case "ablation-inval":
		return []*Table{AblationInvalidation()}, nil
	case "fig11", "table4":
		return []*Table{Fig11TableIV()}, nil
	case "table5":
		return []*Table{TableV(seed)}, nil
	case "fig10":
		return []*Table{Fig10(seed)}, nil
	case "fig12":
		return []*Table{Fig12()}, nil
	case "volume":
		return []*Table{CommVolume()}, nil
	case "table6":
		return []*Table{TableVI()}, nil
	case "fig13":
		return []*Table{Fig13(seed)}, nil
	case "table7":
		return []*Table{TableVII()}, nil
	case "table8":
		return []*Table{TableVIII(seed)}, nil
	case "lammps":
		return []*Table{LAMMPS()}, nil
	case "tune-act":
		return []*Table{TuneActAfterSteps(seed)}, nil
	case "ablation-dpu":
		return []*Table{AblationDPU()}, nil
	case "time-to-loss":
		return []*Table{TimeToLoss(seed)}, nil
	case "linkspeed":
		return []*Table{LinkSpeedSweep()}, nil
	case "all":
		return All(seed), nil
	default:
		return nil, fmt.Errorf("experiments: unknown id %q", id)
	}
}

// IDs lists the runnable experiment ids.
func IDs() []string {
	return []string{"table1", "fig2", "ablation-inval", "fig11", "table5", "fig10",
		"fig12", "volume", "table6", "fig13", "table7", "table8", "lammps",
		"tune-act", "ablation-dpu", "time-to-loss", "linkspeed", "faults",
		"recovery", "all"}
}
