package experiments

import (
	"fmt"

	"teco/internal/compressbl"
	"teco/internal/core"
	"teco/internal/gnn"
	"teco/internal/md"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/realtrain"
	"teco/internal/tensor"
	"teco/internal/zero"
)

// RealTrainSteps is the fine-tuning length used by the accuracy
// experiments (kept moderate so the full suite runs in minutes; increase
// for tighter statistics).
const RealTrainSteps = 800

// evalBatches are the batch sizes of Fig 11 / Table IV.
var evalBatches = []int{4, 8, 16}

// tecoEngine builds a core engine for one grid point, honouring the
// option's coalescing selection (tecosim -coalesce). Timing tables are
// bit-identical in both modes (asserted by coalesce_test.go in core and the
// cross-check here), so PerLine never appears in a cache fingerprint.
func tecoEngine(opt Options, cfg core.Config) *core.Engine {
	cfg.PerLine = cfg.PerLine || opt.PerLine
	return core.MustEngine(cfg)
}

// Every generator has two forms: the original seed-only signature (kept for
// callers and tests) and a With variant taking the full Options, which is
// where the sweep pool and the run cache are wired in. Grid points always
// get fresh engines — the timing engines carry internal state — and rows
// land in grid order regardless of completion order, so a table is
// byte-identical at every worker count (asserted by parallel_test.go).

// TableI reproduces Table I: percentage of training time spent in
// communication exposed to the critical path (ZeRO-Offload,
// Bert-large-cased).
func TableI() *Table { return TableIWith(Options{}) }

// TableIWith is TableI on the option's sweep pool.
func TableIWith(opt Options) *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Exposed communication share of training time (ZeRO-Offload, Bert-large-cased)",
		Header: []string{"Batch size", "Paper", "Measured"},
	}
	paper := map[int]string{4: "42.24%", 8: "37.87%", 16: "28.65%", 20: "25.95%"}
	m := modelzoo.BertLargeCased()
	batches := []int{4, 8, 16, 20}
	for _, row := range grid(opt, len(batches), func(i int) []string {
		b := batches[i]
		r := zero.NewEngine().Step(m, b)
		return []string{fmt.Sprint(b), paper[b], pct(r.CommFraction())}
	}) {
		t.AddRow(row...)
	}
	t.Note("gradient transfers partially exposed during backward; parameter transfers largely exposed after ADAM")
	return t
}

// Fig2 reproduces Figure 2: the distribution of value-changed bytes in
// parameters (a) and gradients (b) across two consecutive training steps,
// sampled over a real fine-tuning run.
func Fig2(seed int64) (params, grads *Table) { return Fig2With(Options{Seed: seed}) }

// Fig2With is Fig2 against the shared run cache.
func Fig2With(opt Options) (params, grads *Table) {
	r := runTrain(opt, realtrain.Config{Steps: RealTrainSteps, Seed: opt.Seed})
	params = &Table{
		ID:     "fig2a",
		Title:  "Value-changed bytes in parameters across consecutive steps",
		Header: []string{"Step", "Last byte", "Last two bytes", "Other", "Unchanged(all)"},
	}
	grads = &Table{
		ID:     "fig2b",
		Title:  "Value-changed bytes in gradients across consecutive steps",
		Header: []string{"Step", "Last byte", "Last two bytes", "Other", "Unchanged(all)"},
	}
	for _, s := range r.Samples {
		if s.Step == 0 {
			continue
		}
		params.AddRow(fmt.Sprint(s.Step),
			pct(s.ParamDist.FracOfChanged(tensor.LastByte)),
			pct(s.ParamDist.FracOfChanged(tensor.LastTwoBytes)),
			pct(s.ParamDist.FracOfChanged(tensor.Other)),
			pct(s.ParamDist.FracUnchanged()))
		grads.AddRow(fmt.Sprint(s.Step),
			pct(s.GradDist.FracOfChanged(tensor.LastByte)),
			pct(s.GradDist.FracOfChanged(tensor.LastTwoBytes)),
			pct(s.GradDist.FracOfChanged(tensor.Other)),
			pct(s.GradDist.FracUnchanged()))
	}
	pd, gd := r.AggregateDistributions()
	params.Note("aggregate: %.1f%% of changed parameters confined to the low two bytes (paper: ~80%% in case 1); %.1f%% of all parameters unchanged (paper: 44.5%%)",
		100*(pd.FracOfChanged(tensor.LastByte)+pd.FracOfChanged(tensor.LastTwoBytes)), 100*pd.FracUnchanged())
	grads.Note("aggregate: %.1f%% of changed gradients touch higher bytes (paper: all bytes change frequently)",
		100*gd.FracOfChanged(tensor.Other))
	return params, grads
}

// AblationInvalidation reproduces the §IV-A2 measurement: stock
// invalidation-based CXL versus the update extension (paper: on-demand
// transfers cost +56.6% training time on average, up to 99.7% on T5).
func AblationInvalidation() *Table { return AblationInvalidationWith(Options{}) }

// AblationInvalidationWith is AblationInvalidation on the sweep pool.
func AblationInvalidationWith(opt Options) *Table {
	t := &Table{
		ID:     "ablation-inval",
		Title:  "Update protocol vs stock invalidation MESI (batch 4)",
		Header: []string{"Model", "Update total", "Invalidation total", "Penalty"},
	}
	models := modelzoo.EvaluationModels()
	type cell struct {
		row []string
		pen float64
	}
	cells := grid(opt, len(models), func(i int) cell {
		m := models[i]
		b := batchFor(m, 4)
		ru := tecoEngine(opt, core.Config{}).Step(m, b)
		ri := tecoEngine(opt, core.Config{Invalidation: true}).Step(m, b)
		pen := float64(ri.Total())/float64(ru.Total()) - 1
		return cell{
			row: []string{m.Name, ms(ru.Total().Milliseconds()), ms(ri.Total().Milliseconds()), pct(pen)},
			pen: pen,
		}
	})
	var sum float64
	for _, c := range cells {
		sum += c.pen
		t.AddRow(c.row...)
	}
	t.Note("average penalty %.1f%% (paper: 56.6%% average, up to 99.7%%)", 100*sum/float64(len(cells)))
	return t
}

func batchFor(m modelzoo.Model, b int) int {
	if m.FullGraphOnly {
		return 1
	}
	return b
}

// Fig11TableIV reproduces Figure 11 and Table IV: training-time speedup of
// TECO-CXL and TECO-Reduction over ZeRO-Offload per model and batch size.
func Fig11TableIV() *Table { return Fig11TableIVWith(Options{}) }

// Fig11TableIVWith is Fig11TableIV on the sweep pool: the model x batch
// grid runs concurrently, one fresh engine trio per point.
func Fig11TableIVWith(opt Options) *Table {
	t := &Table{
		ID:     "fig11",
		Title:  "Speedup over ZeRO-Offload (Fig 11 / Table IV)",
		Header: []string{"Model", "Batch", "TECO-CXL", "TECO-Reduction", "Paper (Reduction)"},
	}
	paper := map[string]map[int]string{
		"GPT2":              {4: "1.82x", 8: "1.52x", 16: "1.32x"},
		"Albert-xxlarge-v1": {4: "1.25x", 8: "1.23x", 16: "1.08x"},
		"Bert-large-cased":  {4: "1.6x", 8: "1.62x", 16: "1.41x"},
		"T5-large":          {4: "1.73x", 8: "1.58x", 16: "OOM"},
	}
	type point struct {
		m modelzoo.Model
		b int
	}
	var points []point
	for _, m := range modelzoo.EvaluationModels() {
		batches := evalBatches
		if m.FullGraphOnly {
			batches = []int{1}
		}
		for _, b := range batches {
			points = append(points, point{m, b})
		}
	}
	for _, row := range grid(opt, len(points), func(i int) []string {
		m, b := points[i].m, points[i].b
		pv := "-"
		if pm, ok := paper[m.Name]; ok {
			if v, ok := pm[b]; ok {
				pv = v
			}
		}
		if !m.FullGraphOnly && !m.FitsOnV100(b) {
			// The memory model reproduces the paper's T5 batch-16
			// out-of-memory on the 32GB V100.
			return []string{m.Name, fmt.Sprint(b), "OOM", "OOM", pv}
		}
		rb := zero.NewEngine().Step(m, b)
		return []string{m.Name, fmt.Sprint(b),
			f2(tecoEngine(opt, core.Config{}).Step(m, b).Speedup(rb)) + "x",
			f2(tecoEngine(opt, core.Config{DBA: true}).Step(m, b).Speedup(rb)) + "x",
			pv}
	}) {
		t.AddRow(row...)
	}
	t.Note("GCNII runs full-graph (batch column = 1); T5-large batch 16 OOMs on the paper's 32GB V100")
	return t
}

// TableV reproduces Table V: final model quality with and without
// TECO-Reduction, on the real fine-tuning proxy (accuracy and a
// perplexity-style metric).
func TableV(seed int64) *Table { return TableVWith(Options{Seed: seed}) }

// TableVWith is TableV with every proxy pair (and the GNN run) as a
// concurrent grid point against the shared run cache.
func TableVWith(opt Options) *Table {
	t := &Table{
		ID:     "table5",
		Title:  "Final model quality, original vs TECO-Reduction (real fine-tuning proxy)",
		Header: []string{"Proxy run", "Metric", "Original", "TECO-Reduction"},
	}
	// One proxy run per evaluated model (different seeds play the role of
	// the different fine-tuning tasks); the GNN rides as the last point.
	names := []string{"GPT2", "Albert-xxlarge-v1", "Bert-large-cased", "T5-large"}
	for _, rows := range grid(opt, len(names)+1, func(i int) [][]string {
		if i == len(names) {
			// GCNII: real full-graph GNN training (paper reports 54.90
			// original, N/A for TECO-Reduction — we run both anyway).
			gBase := gnn.Train(gnn.TrainConfig{Epochs: 200, Seed: opt.Seed})
			gRed := gnn.Train(gnn.TrainConfig{Epochs: 200, Seed: opt.Seed, DBA: true, ActAfterSteps: 100})
			return [][]string{{"GCNII", "Accuracy", pct(gBase.TestAcc), pct(gRed.TestAcc)}}
		}
		s := opt.Seed + int64(i)*100
		base := runTrain(opt, realtrain.Config{Steps: RealTrainSteps, Seed: s})
		red := runTrain(opt, realtrain.Config{Steps: RealTrainSteps, Seed: s, DBA: true, ActAfterSteps: RealTrainSteps / 2})
		return [][]string{
			{names[i], "Accuracy", pct(base.FinalAcc), pct(red.FinalAcc)},
			{names[i], "Perplexity", f2(base.Perplexity), f2(red.Perplexity)},
		}
	}) {
		for _, row := range rows {
			t.AddRow(row...)
		}
	}
	t.Note("paper Table V reports task-specific metrics (e.g. Bert 93.13 -> 91.99 accuracy, GCNII 54.90); the proxy reproduces the property that DBA costs at most a small quality delta")
	return t
}

// Fig10 reproduces Figure 10: training loss curves with and without
// TECO-Reduction.
func Fig10(seed int64) *Table { return Fig10With(Options{Seed: seed}) }

// Fig10With is Fig10 with both runs as concurrent grid points against the
// shared run cache.
func Fig10With(opt Options) *Table {
	cfgs := []realtrain.Config{
		{Steps: RealTrainSteps, Seed: opt.Seed},
		{Steps: RealTrainSteps, Seed: opt.Seed, DBA: true, ActAfterSteps: RealTrainSteps / 4},
	}
	runs := grid(opt, len(cfgs), func(i int) realtrain.Result { return runTrain(opt, cfgs[i]) })
	base, red := runs[0], runs[1]
	t := &Table{
		ID:     "fig10",
		Title:  "Training loss curves (original vs TECO-Reduction)",
		Header: []string{"Step", "Original loss", "TECO-Reduction loss"},
	}
	bs, bl := base.LossCurve()
	_, rl := red.LossCurve()
	for i := range bs {
		if i >= len(rl) {
			break
		}
		t.AddRow(fmt.Sprint(bs[i]), f4(bl[i]), f4(rl[i]))
	}
	t.Note("curves follow the same trend and converge in the same number of steps (paper Fig 10)")
	return t
}

// Fig12 reproduces Figure 12: the time breakdown for T5-large across batch
// sizes and systems.
func Fig12() *Table { return Fig12With(Options{}) }

// Fig12With is Fig12 on the sweep pool (batch x system grid).
func Fig12With(opt Options) *Table {
	t := &Table{
		ID:    "fig12",
		Title: "Time breakdown, T5-large (Fig 12)",
		Header: []string{"Batch", "System", "Fwd+Bwd", "Grad xfer (exposed)", "Clip",
			"ADAM", "Param xfer (exposed)", "Total"},
	}
	m := modelzoo.T5Large()
	engines := []struct {
		name string
		step func(modelzoo.Model, int) phases.StepResult
	}{
		{"ZeRO-Offload", func(m modelzoo.Model, b int) phases.StepResult { return zero.NewEngine().Step(m, b) }},
		{"TECO-CXL", func(m modelzoo.Model, b int) phases.StepResult { return tecoEngine(opt, core.Config{}).Step(m, b) }},
		{"TECO-Reduction", func(m modelzoo.Model, b int) phases.StepResult {
			return tecoEngine(opt, core.Config{DBA: true}).Step(m, b)
		}},
	}
	batches := []int{4, 8}
	for _, row := range grid(opt, len(batches)*len(engines), func(i int) []string {
		b := batches[i/len(engines)]
		e := engines[i%len(engines)]
		r := e.step(m, b)
		return []string{fmt.Sprint(b), e.name,
			ms((r.Fwd + r.Bwd).Milliseconds()),
			ms(r.Grad.Milliseconds()),
			ms(r.Clip.Milliseconds()),
			ms(r.Adam.Milliseconds()),
			ms(r.Prm.Milliseconds()),
			ms(r.Total().Milliseconds())}
	}) {
		t.AddRow(row...)
	}
	t.Note("paper: gradients fully hidden at batch 8; TECO-CXL cuts exposed parameter time (~76%% at batch 4); DBA hides it completely")
	return t
}

// CommVolume reproduces §VIII-C: per-direction communication volume and
// the exposed-communication reduction.
func CommVolume() *Table { return CommVolumeWith(Options{}) }

// CommVolumeWith is CommVolume on the sweep pool.
func CommVolumeWith(opt Options) *Table {
	t := &Table{
		ID:    "volume",
		Title: "Communication volume and exposed-time reduction (batch 4)",
		Header: []string{"Model", "Param bytes (ZeRO)", "Param bytes (TECO-R)",
			"Grad bytes", "Comm-time reduction"},
	}
	gb := func(v int64) string { return f2(float64(v)/1e9) + "GB" }
	models := modelzoo.EvaluationModels()
	type cell struct {
		row  []string
		redn float64
	}
	cells := grid(opt, len(models), func(i int) cell {
		m := models[i]
		b := batchFor(m, 4)
		rb := zero.NewEngine().Step(m, b)
		rr := tecoEngine(opt, core.Config{DBA: true}).Step(m, b)
		redn := rr.CommReduction(rb)
		return cell{
			row:  []string{m.Name, gb(rb.ParamLinkBytes), gb(rr.ParamLinkBytes), gb(rr.GradLinkBytes), pct(redn)},
			redn: redn,
		}
	})
	var sum float64
	for _, c := range cells {
		sum += c.redn
		t.AddRow(c.row...)
	}
	t.Note("average exposed-communication reduction %.1f%% (paper: 93.7%% average, up to 100%%); DBA halves parameter volume, gradients are not DBA'd", 100*sum/float64(len(cells)))
	return t
}

// TableVI reproduces Table VI: TECO effectiveness across GPT-2 scales.
func TableVI() *Table { return TableVIWith(Options{}) }

// TableVIWith is TableVI on the sweep pool.
func TableVIWith(opt Options) *Table {
	t := &Table{
		ID:     "table6",
		Title:  "Impact of model size (GPT-2 scales, batch 4)",
		Header: []string{"Model", "ZeRO-Offload", "TECO-CXL", "TECO-Reduction", "Paper (CXL/Red)"},
	}
	paper := map[string]string{
		"GPT2": "1.55x/1.82x", "GPT2-Medium": "1.54x/1.64x",
		"GPT2-Large": "1.67x/1.79x", "GPT2-11B": "1.29x/1.41x",
	}
	models := modelzoo.SensitivityModels()
	for _, row := range grid(opt, len(models), func(i int) []string {
		m := models[i]
		rb := zero.NewEngine().Step(m, 4)
		return []string{m.Name, "1x",
			f2(tecoEngine(opt, core.Config{}).Step(m, 4).Speedup(rb)) + "x",
			f2(tecoEngine(opt, core.Config{DBA: true}).Step(m, 4).Speedup(rb)) + "x",
			paper[m.Name]}
	}) {
		t.AddRow(row...)
	}
	t.Note("the 11B configuration is compute-dominated (paper: computation is 63.4%% of total), so its speedup is the smallest")
	return t
}

// Fig13 reproduces Figure 13: model quality and speedup versus
// `act_aft_steps`.
func Fig13(seed int64) *Table { return Fig13With(Options{Seed: seed}) }

// Fig13With is Fig13 with the activation-step sweep on the pool, runs
// against the shared cache.
func Fig13With(opt Options) *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "DBA activation step sweep (quality vs speedup, GPT-2 proxy)",
		Header: []string{"act_aft_steps", "Perplexity", "Accuracy", "Speedup vs ZeRO"},
	}
	m := modelzoo.GPT2()
	base := zero.NewEngine().Step(m, 4)
	cxlStep := tecoEngine(opt, core.Config{}).Step(m, 4).Total()
	dbaStep := tecoEngine(opt, core.Config{DBA: true}).Step(m, 4).Total()
	total := RealTrainSteps
	acts := []int{0, total / 8, total / 4, total / 2, 3 * total / 4, total}
	for _, row := range grid(opt, len(acts), func(i int) []string {
		act := acts[i]
		r := runTrain(opt, realtrain.Config{Steps: total, Seed: opt.Seed, DBA: true, ActAfterSteps: act})
		// Average step time: CXL-only before activation, DBA after.
		avg := (float64(cxlStep)*float64(act) + float64(dbaStep)*float64(total-act)) / float64(total)
		sp := float64(base.Total()) / avg
		return []string{fmt.Sprint(act), f2(r.Perplexity), pct(r.FinalAcc), f2(sp) + "x"}
	}) {
		t.AddRow(row...)
	}
	t.Note("paper Fig 13: accuracy 22.50-21.21, speedup 1.63x-1.15x across activation points; act_aft_steps=500 strikes the balance")
	return t
}

// AblationDPU compares ZeRO-Offload with and without the one-step delayed
// parameter update, and TECO-Reduction against both — the §II-A argument
// that DPU only helps at large batches (where there is little left to hide)
// while TECO wins exactly where memory pressure forces small batches.
func AblationDPU() *Table { return AblationDPUWith(Options{}) }

// AblationDPUWith is AblationDPU on the sweep pool.
func AblationDPUWith(opt Options) *Table {
	t := &Table{
		ID:     "ablation-dpu",
		Title:  "DPU ablation (Bert-large-cased)",
		Header: []string{"Batch", "ZeRO-Offload", "ZeRO+DPU", "TECO-Reduction", "TECO vs DPU"},
	}
	m := modelzoo.BertLargeCased()
	batches := []int{4, 8, 16, 20}
	for _, row := range grid(opt, len(batches), func(i int) []string {
		b := batches[i]
		e := zero.NewEngine()
		plain := e.Step(m, b)
		dpu := e.StepDPU(m, b)
		teco := tecoEngine(opt, core.Config{DBA: true}).Step(m, b)
		return []string{fmt.Sprint(b),
			ms(plain.Total().Milliseconds()),
			ms(dpu.Total().Milliseconds()),
			ms(teco.Total().Milliseconds()),
			f2(float64(dpu.Total())/float64(teco.Total())) + "x"}
	}) {
		t.AddRow(row...)
	}
	t.Note("DPU hides the CPU chain only once GPU arithmetic intensity is high (paper §II-A); it also risks changing convergence, which TECO avoids")
	return t
}

// TableVII reproduces Table VII: ZeroQuant-style lossy compression vs
// TECO-Reduction on Bert-base / GLUE-MNLI.
func TableVII() *Table {
	t := &Table{
		ID:     "table7",
		Title:  "Lossy compression (ZeroQuant-style) vs TECO-Reduction",
		Header: []string{"System", "Task", "Model", "Time (hours)", "Paper"},
	}
	row := compressbl.ZeroQuant(modelzoo.BertBaseUncased(), 32, compressbl.GLUEMNLISteps(32))
	t.AddRow("Zero-Quant", row.Task, row.Model, f2(row.ZeroQuantHours), "5.8")
	t.AddRow("TECO-Reduction", row.Task, row.Model, f2(row.TECOHours), "2.03")
	t.Note("measured slowdown %.2fx (paper: 2.87x): the quantized model needs a full-precision teacher forward every step", row.Slowdown)
	return t
}

// TableVIII reproduces Table VIII: the lossless LZ4 transfer pipeline.
func TableVIII(seed int64) *Table { return TableVIIIWith(Options{Seed: seed}) }

// TableVIIIWith is TableVIII on the sweep pool (one compression pipeline
// per model).
func TableVIIIWith(opt Options) *Table {
	t := &Table{
		ID:     "table8",
		Title:  "Lossless compression (LZ4) pipeline, normalized to TECO-Reduction",
		Header: []string{"Model", "Compression ratio", "Paper ratio", "Normalized time", "Paper time"},
	}
	paperRatio := map[string]string{"GPT2": "5%", "Albert-xxlarge-v1": "0%", "Bert-large-cased": "0%", "T5-large": "36%"}
	paperTime := map[string]string{"GPT2": "4.51", "Albert-xxlarge-v1": "1.95", "Bert-large-cased": "3.03", "T5-large": "2.04"}
	models := []modelzoo.Model{modelzoo.GPT2(), modelzoo.AlbertXXLarge(), modelzoo.BertLargeCased(), modelzoo.T5Large()}
	for _, row := range grid(opt, len(models), func(i int) []string {
		m := models[i]
		r := compressbl.LosslessCompression(m, 4, opt.Seed)
		return []string{m.Name, pct(r.Ratio), paperRatio[m.Name], f2(r.Normalized), paperTime[m.Name]}
	}) {
		t.AddRow(row...)
	}
	t.Note("compression ratios measured with the from-scratch LZ4 on synthetic parameter snapshots; the pipeline is at least ~2x slower than TECO everywhere (paper's conclusion)")
	return t
}

// LAMMPS reproduces the §VII generality study on the Lennard-Jones melt.
func LAMMPS() *Table {
	t := &Table{
		ID:     "lammps",
		Title:  "Generality: LAMMPS-style LJ melt with offloaded force kernel (4M atoms)",
		Header: []string{"Metric", "Measured", "Paper"},
	}
	r := md.Generality(4_000_000)
	t.AddRow("Baseline comm fraction", pct(r.CommFraction), "27%")
	t.AddRow("Total improvement", pct(r.Improvement), "21.5%")
	t.AddRow("CXL contribution", pct(r.CXLContribution), "78%")
	t.AddRow("DBA contribution", pct(r.DBAContribution), "22%")
	t.AddRow("Volume reduction (DBA)", pct(r.VolumeReduction), "17%")

	// Physics-level validation: the melt tolerates the dirty-byte path.
	exact := md.RunOffloaded(md.NewSystem(md.Config{Seed: 1}), 200, 0.004, 4)
	dba3 := md.RunOffloaded(md.NewSystem(md.Config{Seed: 1}), 200, 0.004, md.MDDirtyBytes)
	t.AddRow("Energy drift (exact transfers)", f4(exact), "-")
	t.AddRow("Energy drift (dirty-byte path)", f4(dba3), "-")
	t.Note("positions cross the link as fixed-binade scaled coordinates, making the 3-dirty-byte merge well-conditioned (see internal/md)")
	return t
}

// All runs every experiment and returns the tables in paper order.
func All(seed int64) []*Table { return AllWith(Options{Seed: seed}) }

// AllWith runs every experiment on the sweep pool: the generators
// themselves are the outer grid (inner grids share the same pool budget via
// goroutine scheduling), and the shared run cache collapses the duplicate
// fine-tuning runs across Fig 2, Fig 10, Table V and the fault/recovery
// sweeps. Table order is always paper order.
func AllWith(opt Options) []*Table {
	gens := []func() []*Table{
		func() []*Table { return []*Table{TableIWith(opt)} },
		func() []*Table { a, b := Fig2With(opt); return []*Table{a, b} },
		func() []*Table { return []*Table{AblationInvalidationWith(opt)} },
		func() []*Table { return []*Table{Fig11TableIVWith(opt)} },
		func() []*Table { return []*Table{TableVWith(opt)} },
		func() []*Table { return []*Table{Fig10With(opt)} },
		func() []*Table { return []*Table{Fig12With(opt)} },
		func() []*Table { return []*Table{CommVolumeWith(opt)} },
		func() []*Table { return []*Table{TableVIWith(opt)} },
		func() []*Table { return []*Table{Fig13With(opt)} },
		func() []*Table { return []*Table{TableVII()} },
		func() []*Table { return []*Table{TableVIIIWith(opt)} },
		func() []*Table { return []*Table{LAMMPS()} },
		func() []*Table { return []*Table{FaultSweep(opt)} },
		func() []*Table { return []*Table{RecoverySweep(opt)} },
		func() []*Table { return []*Table{FabricSweep(opt)} },
		func() []*Table { return []*Table{FabricFaultSweep(opt)} },
		func() []*Table { return []*Table{LayersSweep(opt)} },
		func() []*Table { return []*Table{LayersPolicySweep(opt)} },
		func() []*Table { return []*Table{TieringSweep(opt)} },
		func() []*Table { return []*Table{TieringPolicySweep(opt)} },
	}
	var out []*Table
	for _, tabs := range grid(opt, len(gens), func(i int) []*Table { return gens[i]() }) {
		out = append(out, tabs...)
	}
	return out
}

// ByID runs a single experiment by its id; Fig2 returns two tables.
func ByID(id string, seed int64) ([]*Table, error) {
	return ByIDWith(id, Options{Seed: seed})
}

// ByIDWith runs a single experiment with the full option set (fault
// injection and scheduling knobs included).
func ByIDWith(id string, opt Options) ([]*Table, error) {
	switch id {
	case "faults":
		if err := opt.validateFaults(); err != nil {
			return nil, err
		}
		return []*Table{FaultSweep(opt)}, nil
	case "recovery":
		if err := opt.validateRecovery(); err != nil {
			return nil, err
		}
		return []*Table{RecoverySweep(opt)}, nil
	case "fabric":
		if err := opt.validateFabric(); err != nil {
			return nil, err
		}
		return []*Table{FabricSweep(opt)}, nil
	case "fabric-faults":
		if err := opt.validateFabric(); err != nil {
			return nil, err
		}
		return []*Table{FabricFaultSweep(opt)}, nil
	case "layers":
		if err := opt.validateLayers(); err != nil {
			return nil, err
		}
		return []*Table{LayersSweep(opt)}, nil
	case "layers-policy":
		if err := opt.validateLayers(); err != nil {
			return nil, err
		}
		return []*Table{LayersPolicySweep(opt)}, nil
	case "tiering":
		if err := opt.validateTiering(); err != nil {
			return nil, err
		}
		return []*Table{TieringSweep(opt)}, nil
	case "tiering-policy":
		if err := opt.validateTiering(); err != nil {
			return nil, err
		}
		return []*Table{TieringPolicySweep(opt)}, nil
	case "table1":
		return []*Table{TableIWith(opt)}, nil
	case "fig2", "fig2a", "fig2b":
		a, b := Fig2With(opt)
		return []*Table{a, b}, nil
	case "ablation-inval":
		return []*Table{AblationInvalidationWith(opt)}, nil
	case "fig11", "table4":
		return []*Table{Fig11TableIVWith(opt)}, nil
	case "table5":
		return []*Table{TableVWith(opt)}, nil
	case "fig10":
		return []*Table{Fig10With(opt)}, nil
	case "fig12":
		return []*Table{Fig12With(opt)}, nil
	case "volume":
		return []*Table{CommVolumeWith(opt)}, nil
	case "table6":
		return []*Table{TableVIWith(opt)}, nil
	case "fig13":
		return []*Table{Fig13With(opt)}, nil
	case "table7":
		return []*Table{TableVII()}, nil
	case "table8":
		return []*Table{TableVIIIWith(opt)}, nil
	case "lammps":
		return []*Table{LAMMPS()}, nil
	case "tune-act":
		return []*Table{TuneActAfterStepsWith(opt)}, nil
	case "ablation-dpu":
		return []*Table{AblationDPUWith(opt)}, nil
	case "time-to-loss":
		return []*Table{TimeToLossWith(opt)}, nil
	case "linkspeed":
		return []*Table{LinkSpeedSweepWith(opt)}, nil
	case "all":
		return AllWith(opt), nil
	default:
		return nil, fmt.Errorf("experiments: unknown id %q", id)
	}
}

// IDs lists the runnable experiment ids.
func IDs() []string {
	return []string{"table1", "fig2", "ablation-inval", "fig11", "table5", "fig10",
		"fig12", "volume", "table6", "fig13", "table7", "table8", "lammps",
		"tune-act", "ablation-dpu", "time-to-loss", "linkspeed", "faults",
		"recovery", "fabric", "fabric-faults", "layers", "layers-policy",
		"tiering", "tiering-policy", "all"}
}
