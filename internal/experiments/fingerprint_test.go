package experiments

import (
	"context"
	"testing"
)

// TestFingerprintSchedulingInvariant: knobs proven not to change any output
// byte must not change the key — otherwise the cache would recompute (and
// the coalescer would split) identical work.
func TestFingerprintSchedulingInvariant(t *testing.T) {
	base := Options{Seed: 42, BER: 1e-6, RetryBudget: 4, Degrade: true}
	want := base.Fingerprint("faults")
	variants := []Options{
		{Seed: 42, BER: 1e-6, RetryBudget: 4, Degrade: true, Workers: 8},
		{Seed: 42, BER: 1e-6, RetryBudget: 4, Degrade: true, NoMemo: true},
		{Seed: 42, BER: 1e-6, RetryBudget: 4, Degrade: true, PerLine: true},
		{Seed: 42, BER: 1e-6, RetryBudget: 4, Degrade: true, CkptDir: "/tmp/elsewhere"},
		{Seed: 42, BER: 1e-6, RetryBudget: 4, Degrade: true, Ctx: context.Background()},
	}
	for i, v := range variants {
		if got := v.Fingerprint("faults"); got != want {
			t.Fatalf("variant %d: fingerprint %016x != base %016x — scheduling knob leaked into the key", i, got, want)
		}
	}
}

// TestFingerprintResultSensitivity: anything that can change a table cell
// must change the key.
func TestFingerprintResultSensitivity(t *testing.T) {
	base := Options{Seed: 42}
	seen := map[uint64]string{base.Fingerprint("faults"): "base"}
	distinct := map[string]Options{
		"seed":          {Seed: 43},
		"ber":           {Seed: 42, BER: 1e-5},
		"retry-budget":  {Seed: 42, RetryBudget: 2},
		"degrade":       {Seed: 42, Degrade: true},
		"ckpt-interval": {Seed: 42, CkptInterval: 25},
		"crash-at":      {Seed: 42, CrashAt: 10},
		"tier-policy":   {Seed: 42, TierPolicy: "lru"},
		"tier-dram":     {Seed: 42, TierDRAMPct: 25},
		"tier-budget":   {Seed: 42, TierMigrateBudget: 64},
	}
	for name, opt := range distinct {
		fp := opt.Fingerprint("faults")
		if prev, dup := seen[fp]; dup {
			t.Fatalf("%s collides with %s: %016x", name, prev, fp)
		}
		seen[fp] = name
	}
	if base.Fingerprint("faults") == base.Fingerprint("recovery") {
		t.Fatal("different experiment ids share a fingerprint")
	}
}

// TestGridCancellation: a cancelled option context stops the sweep pool and
// grid returns stable zero values instead of partially-written storage.
func TestGridCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := grid(Options{Workers: 4, Ctx: ctx}, 100, func(i int) int { return i + 1 })
	if len(out) != 100 {
		t.Fatalf("grid returned %d values, want 100 zero values", len(out))
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("out[%d] = %d, want 0 (cancelled before dispatch)", i, v)
		}
	}
	// And an un-cancelled context runs normally.
	out = grid(Options{Workers: 4, Ctx: context.Background()}, 10, func(i int) int { return i + 1 })
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("clean grid: out[%d] = %d", i, v)
		}
	}
}
