package experiments

import (
	"fmt"
	"os"

	"teco/internal/core"
	"teco/internal/phases"
	"teco/internal/realtrain"
)

// recoveryTrainConfig is the (deliberately short) fine-tuning run every
// recovery-sweep cell executes: long enough to cross DBA activation and
// several checkpoint intervals, short enough that the interval x rate grid
// finishes in seconds.
func recoveryTrainConfig(seed int64) realtrain.Config {
	return realtrain.Config{
		Steps: 40, PreSteps: 30, Seed: seed,
		DBA: true, ActAfterSteps: 10, SampleEvery: 5,
	}
}

// recoveryGrid returns the swept checkpoint intervals and per-step SDC
// rates. Explicit options collapse the corresponding axis to one value.
func recoveryGrid(opt Options) (intervals []int, rates []float64) {
	intervals = []int{5, 10, 25}
	if opt.CkptInterval > 0 {
		intervals = []int{opt.CkptInterval}
	}
	rates = []float64{0, 0.05, 0.15}
	return intervals, rates
}

// RecoverySweep is the checkpoint-interval x SDC-rate robustness grid: per
// cell, a checkpointed core.Session runs the short fine-tuning job with
// silent-data-corruption injection, and the table reports the checkpoint
// volume, every detection/rollback, the replayed-step cost, the recovery
// wall time, and — the property the whole subsystem exists for — whether
// the recovered run finished bit-identical to a fault-free reference.
// With CrashAt > 0 each cell additionally kills the run at that step and
// restores it from disk (core.CrashRun).
func RecoverySweep(opt Options) *Table {
	t := &Table{
		ID:    "recovery",
		Title: "Checkpoint/recovery sweep: SDC rollback-and-replay cost (real fine-tuning proxy)",
		Header: []string{"Interval", "SDC rate", "Ckpts", "Ckpt vol", "Detected",
			"Rollbacks", "Replayed", "Recovery", "Bit-identical"},
	}
	ref := runTrain(opt, recoveryTrainConfig(opt.Seed))

	intervals, rates := recoveryGrid(opt)
	type cell struct {
		interval int
		rate     float64
	}
	var cells []cell
	for _, interval := range intervals {
		for _, rate := range rates {
			cells = append(cells, cell{interval, rate})
		}
	}
	// Each cell owns a private checkpoint directory and session, so the
	// interval x rate grid runs concurrently on the sweep pool; the trainer
	// inside every session inherits the Workers knob (crash/restore under
	// the parallel trainer is part of the determinism surface).
	rows, err := gridErr(opt, len(cells), func(i int) ([]string, error) {
		interval, rate := cells[i].interval, cells[i].rate
		dir, err := os.MkdirTemp(opt.CkptDir, "teco-recovery-*")
		if err != nil {
			return nil, fmt.Errorf("cannot create checkpoint directory: %w", err)
		}
		defer os.RemoveAll(dir)
		train := recoveryTrainConfig(opt.Seed)
		train.Workers = opt.Workers
		cfg := core.SessionConfig{
			Train:    train,
			Dir:      dir,
			Interval: interval,
			SDC:      core.SDCPlan{Seed: opt.Seed + int64(interval), Rate: rate},
		}
		res, stats, err := runRecoveryCell(cfg, opt.CrashAt)
		if err != nil {
			return nil, fmt.Errorf("interval %d rate %.2f: %w", interval, rate, err)
		}
		identical := "yes"
		if res.FinalLoss != ref.FinalLoss || res.FinalAcc != ref.FinalAcc ||
			len(res.Samples) != len(ref.Samples) {
			identical = "NO"
		} else {
			for i := range res.Samples {
				if res.Samples[i] != ref.Samples[i] {
					identical = "NO"
					break
				}
			}
		}
		return []string{
			fmt.Sprint(interval),
			f2(rate),
			fmt.Sprint(stats.CkptWrites),
			mb(stats.CkptBytes),
			fmt.Sprint(stats.SDCDetected),
			fmt.Sprint(stats.Rollbacks),
			fmt.Sprint(stats.ReplayedSteps),
			ms(stats.RecoveryTime.Milliseconds()),
			identical,
		}, nil
	})
	if err != nil {
		t.Note("%v", err)
		return t
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	if opt.CrashAt > 0 {
		t.Note("each cell additionally killed at step %d and restored from disk (crash-injection harness)", opt.CrashAt)
	}
	t.Note("detections roll back to the newest CRC-intact checkpoint and replay; shorter intervals buy fewer replayed steps for more checkpoint volume — every cell must stay bit-identical to the fault-free reference")
	return t
}

// runRecoveryCell executes one grid cell: a plain session run, or — when a
// crash step is requested — the kill/restore harness.
func runRecoveryCell(cfg core.SessionConfig, crashAt int) (realtrain.Result, phases.RecoveryStats, error) {
	if crashAt > 0 {
		return core.CrashRun(cfg, crashAt)
	}
	s, err := core.NewSession(cfg)
	if err != nil {
		return realtrain.Result{}, phases.RecoveryStats{}, err
	}
	res, err := s.Run()
	if err != nil {
		return realtrain.Result{}, phases.RecoveryStats{}, err
	}
	return res, s.Stats(), nil
}
