package experiments

import (
	"fmt"
	"hash/fnv"
)

// Fingerprint returns the canonical 64-bit identity of "experiment id run
// under these options" — the cache and request-coalescing key of the sweep
// service. It follows the realtrain configTag / checkpoint ConfigTag
// scheme (FNV-64a over the %+v image of the canonicalized struct) and
// canonicalizes by zeroing every knob that is pure scheduling — Workers,
// NoMemo, PerLine, Ctx, and the CkptDir scratch root — because the
// determinism harnesses prove those cannot change a single output byte:
// requests that differ only in scheduling share one cache entry and one
// in-flight computation.
//
// Everything result-affecting stays in the key: the id, Seed, the fault
// knobs (BER, RetryBudget, Degrade), and the recovery-sweep shape
// (CkptInterval, CrashAt — recovery is bit-identical by construction, but
// the sweep's *reported* recovery statistics depend on both).
func (opt Options) Fingerprint(id string) uint64 {
	c := opt
	c.Workers = 0
	c.NoMemo = false
	c.PerLine = false
	c.Ctx = nil
	c.CkptDir = ""
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%+v", id, c)
	return h.Sum64()
}
