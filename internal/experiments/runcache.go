package experiments

import (
	"sync"
	"sync/atomic"

	"teco/internal/realtrain"
)

// The experiment suite asks for the same fine-tuning runs many times: Fig 2,
// Fig 10, Table V and the time-to-loss sweep all start from the identical
// baseline config, and every DBA variant of a seed shares its pre-training
// phase. Because the parallel trainer is bit-identical at every worker count
// (determinism_test.go in internal/realtrain) and NewTrainer is Pretrain +
// NewTrainerFromPre by construction, a run executed once can stand in for
// every duplicate request — the memoization below is a pure scheduling
// optimization with no observable effect on any table.

// runKey is the canonical identity of a fine-tuning run: the effective
// (defaulted) config with the scheduling knob zeroed, so requests at
// different worker counts share one cached result.
type runKey realtrain.Config

func canonicalRun(cfg realtrain.Config) runKey {
	c := cfg.WithDefaults()
	c.Workers = 0
	return runKey(c)
}

// preKey identifies a pre-training phase: exactly the knobs
// realtrain.Pretrain depends on.
type preKey struct {
	seed     int64
	batch    int
	lr, clip float64
	hidden   int
	preSteps int
	arch     string
}

// cacheEntry is a single-flight slot: the first requester executes, every
// concurrent duplicate blocks on the same Once and shares the value.
type cacheEntry[T any] struct {
	once sync.Once
	val  T
}

var (
	cacheMu sync.Mutex
	runTab  = map[runKey]*cacheEntry[realtrain.Result]{}
	preTab  = map[preKey]*cacheEntry[*realtrain.PreState]{}
	// Miss counters: how many runs / pre-trainings actually executed.
	// The memoization tests assert the dedup through these.
	runMisses atomic.Int64
	preMisses atomic.Int64
)

func runEntry(k runKey) *cacheEntry[realtrain.Result] {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	e, ok := runTab[k]
	if !ok {
		e = &cacheEntry[realtrain.Result]{}
		runTab[k] = e
	}
	return e
}

func preEntry(k preKey) *cacheEntry[*realtrain.PreState] {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	e, ok := preTab[k]
	if !ok {
		e = &cacheEntry[*realtrain.PreState]{}
		preTab[k] = e
	}
	return e
}

// resetRunCache drops every memoized run and pre-state (tests and the
// benchmark harness use it to measure cold-cache behavior).
func resetRunCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	runTab = map[runKey]*cacheEntry[realtrain.Result]{}
	preTab = map[preKey]*cacheEntry[*realtrain.PreState]{}
	runMisses.Store(0)
	preMisses.Store(0)
}

// pretrained returns the (memoized) pre-training state for cfg's pre-phase.
func pretrained(cfg realtrain.Config) *realtrain.PreState {
	c := cfg.WithDefaults()
	e := preEntry(preKey{c.Seed, c.Batch, c.LR, c.ClipNorm, c.Hidden, c.PreSteps, c.Arch})
	e.once.Do(func() {
		preMisses.Add(1)
		pre, err := realtrain.Pretrain(cfg)
		if err != nil {
			panic(err) // static experiment configs only, like realtrain.Run
		}
		e.val = pre
	})
	return e.val
}

// runTrain executes (or recalls) the fine-tuning run for cfg. The option's
// Workers knob rides along into the trainer's hot paths; NoMemo bypasses
// the cache entirely and runs from scratch.
func runTrain(opt Options, cfg realtrain.Config) realtrain.Result {
	cfg.Workers = opt.Workers
	if opt.NoMemo {
		return realtrain.Run(cfg)
	}
	e := runEntry(canonicalRun(cfg))
	e.once.Do(func() {
		runMisses.Add(1)
		tr, err := realtrain.NewTrainerFromPre(cfg, pretrained(cfg))
		if err != nil {
			panic(err)
		}
		for !tr.Done() {
			if err := tr.Step(); err != nil {
				panic(err)
			}
		}
		e.val = tr.Result()
	})
	return e.val
}
