package experiments

import (
	"context"
	"fmt"
	"strconv"

	"teco/internal/core"
	"teco/internal/cxl"
	"teco/internal/modelzoo"
	"teco/internal/phases"
)

// Options parameterizes experiment generation beyond the seed. The zero
// value of the fault knobs reproduces the paper's lossless-link evaluation.
type Options struct {
	// Seed drives the randomized experiments (real training, fault draws).
	Seed int64
	// BER centres the fault sweep on a specific bit-error rate; 0 uses the
	// default grid.
	BER float64
	// RetryBudget overrides the link-layer retransmit budget (0: default).
	RetryBudget int
	// Degrade enables the graceful-degradation policy in the fault sweep.
	Degrade bool
	// CkptInterval collapses the recovery sweep's interval axis to one
	// value (0: default grid).
	CkptInterval int
	// CkptDir roots the recovery sweep's (temporary, removed afterwards)
	// checkpoint directories; empty uses the system temp directory.
	CkptDir string
	// CrashAt > 0 additionally kills every recovery-sweep run at that step
	// and restores it from disk (core.CrashRun).
	CrashAt int
	// Workers sizes the sweep worker pool (grid points run concurrently)
	// and rides into the trainers' intra-step hot loops. <= 0 uses
	// GOMAXPROCS for the pool; 1 runs everything serially. Purely a
	// scheduling knob — every table is identical at every worker count.
	Workers int
	// Replicas collapses the fabric sweep's data-parallel-width axis to
	// one value (0: default grid).
	Replicas int
	// HostPorts pins the fabric switch's spine uplink count instead of the
	// default oversubscription grid (0: grid).
	HostPorts int
	// KillPort selects the fabric chaos target port, 1-based (0: the
	// sweep default).
	KillPort int
	// KillStep schedules the fabric chaos kill at that fine-tuning step in
	// data-parallel training runs (tecosimd's group endpoint).
	KillStep int
	// Layers collapses the layers sweep's layer-count axis to one value
	// (0: default grid) and overrides the layer count in the policy sweep.
	Layers int
	// CachePct collapses the layers sweep's fast-tier-size axis to one
	// percentage of the model's parameter bytes (0: default grid; also the
	// policy sweep's cache size, default 40).
	CachePct int
	// PrefetchDepth overrides the scheduled column's look-ahead depth in
	// the layers sweep and every prefetching row of the policy sweep
	// (0: defaults).
	PrefetchDepth int
	// LayerPolicy collapses the policy sweep's eviction-policy axis to one
	// of "lru", "fifo", "pin" ("": full set).
	LayerPolicy string
	// LayerSeqLen overrides the policy sweep's long-context sequence
	// length (0: default 1024).
	LayerSeqLen int
	// TierPolicy collapses the tiering-policy ablation's policy axis to one
	// of "heat", "lru", "static" ("": full set) and sets the capacity
	// sweep's migrating runs' policy ("": heat).
	TierPolicy string
	// TierDRAMPct collapses the tiering sweep's fast-tier-size axis to one
	// percentage of the tiered slot bytes (0: default grid; also the policy
	// ablation's capacity, default 25).
	TierDRAMPct int
	// TierMigrateBudget collapses the tiering sweep's per-step migration
	// byte-budget axis to one MiB value (0: default grid; also the policy
	// ablation's budget, default 512).
	TierMigrateBudget int
	// NoMemo disables the shared-run memoization (runcache.go), forcing
	// every requested fine-tuning run to execute from scratch. The tables
	// do not change; only wall-clock does. The benchmark harness uses it
	// to measure the memoization win.
	NoMemo bool
	// PerLine runs every timing engine on the per-line reference path
	// instead of the flow-coalescing fast path (tecosim -coalesce=false).
	// Tables are bit-identical in both modes; only wall-clock differs.
	PerLine bool
	// Ctx, when non-nil, bounds the whole generation: the sweep pool stops
	// dispatching grid points and returns as soon as it is cancelled (the
	// sweep service threads per-request deadlines through here). A
	// cancelled generation yields tables with zero-value cells for the
	// unreached points — callers that observe Ctx.Err() != nil after
	// generating must discard the result. Like Workers/NoMemo/PerLine it
	// is pure scheduling: it never appears in a fingerprint.
	Ctx context.Context
}

// context returns the generation-bounding context (Background when unset).
func (opt Options) context() context.Context {
	if opt.Ctx != nil {
		return opt.Ctx
	}
	return context.Background()
}

// validateRecovery rejects recovery-sweep options before any cell runs.
func (opt Options) validateRecovery() error {
	if opt.CkptInterval < 0 {
		return fmt.Errorf("experiments: negative checkpoint interval %d", opt.CkptInterval)
	}
	if opt.CrashAt < 0 {
		return fmt.Errorf("experiments: negative crash step %d", opt.CrashAt)
	}
	return nil
}

// validateFaults rejects fault-sweep options the link layer cannot model,
// so the CLI fails fast instead of emitting a truncated grid.
func (opt Options) validateFaults() error {
	return cxl.FaultConfig{
		Seed:        opt.Seed,
		BER:         opt.BER,
		RetryBudget: opt.RetryBudget,
	}.Validate()
}

// faultSweepBERs returns the swept error rates: the default grid spans the
// retry-dominated regime up to past the DBA degradation crossover; an
// explicit BER centres a decade around the requested value. Grid points
// scaled out of the modelable range [0,1) are dropped.
func faultSweepBERs(opt Options) []float64 {
	grid := []float64{0, 1e-7, 1e-6, 1e-5, 1e-4, 5e-4}
	if opt.BER > 0 {
		grid = []float64{0, opt.BER / 10, opt.BER, opt.BER * 10}
	}
	out := grid[:0]
	for _, b := range grid {
		if b < 1 {
			out = append(out, b)
		}
	}
	return out
}

// FaultSweep is the BER x dirty_bytes robustness grid (Bert-large-cased,
// batch 4): per cell, the retry/replay volume, the exposed retry latency,
// the step-time inflation over the fault-free link, and whether the
// graceful-degradation policy abandoned aggregation for full-line
// transfers.
func FaultSweep(opt Options) *Table {
	t := &Table{
		ID:    "faults",
		Title: "Link-fault sweep: retry/replay cost and DBA degradation (Bert-large-cased, batch 4)",
		Header: []string{"BER", "dirty_bytes", "Retries", "Replayed", "Poisoned",
			"Exposed retry", "Total", "vs clean", "Policy"},
	}
	m := modelzoo.BertLargeCased()
	bw := modelzoo.CXLLinkBandwidth()
	dirties := []int{1, 2, 4}
	type cell struct{ ber, db int }
	var cells []cell
	bers := faultSweepBERs(opt)
	for bi := range bers {
		for di := range dirties {
			cells = append(cells, cell{bi, di})
		}
	}
	type measured struct {
		ber      float64
		db       int
		r        phases.StepResult
		degraded bool
	}
	// Every cell gets a fresh engine (engines carry fault-RNG state), so the
	// grid points are independent and run concurrently; the clean-baseline
	// ratio needs every cell, so it is derived after the join.
	results, err := gridErr(opt, len(cells), func(i int) (measured, error) {
		ber, db := bers[cells[i].ber], dirties[cells[i].db]
		e, err := core.NewEngine(core.Config{
			DBA:        true,
			DirtyBytes: db,
			Degrade:    opt.Degrade,
			PerLine:    opt.PerLine,
			Faults: cxl.FaultConfig{
				Seed:        opt.Seed,
				BER:         ber,
				RetryBudget: opt.RetryBudget,
			},
		})
		if err != nil {
			return measured{}, err
		}
		r := e.Step(m, 4)
		return measured{ber: ber, db: db, r: r, degraded: r.Fault.Degraded}, nil
	})
	if err != nil {
		t.Note("invalid fault config: %v", err)
		return t
	}
	clean := make(map[int]float64)
	for _, res := range results {
		if res.ber == 0 {
			clean[res.db] = float64(res.r.Total())
		}
	}
	for _, res := range results {
		policy := "DBA"
		if res.degraded {
			policy = "full-line (degraded)"
		}
		t.AddRow(
			fmt.Sprintf("%.0e", res.ber),
			fmt.Sprint(res.db),
			fmt.Sprint(res.r.Fault.Retries),
			mb(res.r.Fault.ReplayedBytes),
			fmt.Sprint(res.r.Fault.Poisoned),
			ms(res.r.Fault.Exposed.Milliseconds()),
			ms(res.r.Total().Milliseconds()),
			f2(float64(res.r.Total())/clean[res.db])+"x",
			policy,
		)
	}
	cross := core.DegradationCrossoverBER(cxl.FaultConfig{BER: 1e-6, RetryBudget: opt.RetryBudget}, 2, bw)
	t.Note("aggregated payloads become uneconomical (every retried DBA packet re-pays the merge-header round trip) above BER ~%.1e for dirty_bytes=2; pass -degrade to let the policy fall back to full lines", cross)
	return t
}

// mb formats a byte count as mebibytes.
func mb(v int64) string { return strconv.FormatFloat(float64(v)/(1<<20), 'f', 1, 64) + "MB" }
