// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each generator
// returns a Table carrying the same rows/series the paper reports, with
// the paper's published values alongside for direct comparison.
package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // experiment id, e.g. "table1", "fig11"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends an explanatory footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown writes the table as GitHub-flavoured markdown.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

// Cell formatting is pinned through strconv.FormatFloat (never fmt's float
// verbs), so every emitted table is byte-identical across locales, hosts
// and Go versions — the property the conformance goldens regression-test.
func f0(v float64) string   { return strconv.FormatFloat(v, 'f', 0, 64) }
func f2(v float64) string   { return strconv.FormatFloat(v, 'f', 2, 64) }
func f4(v float64) string   { return strconv.FormatFloat(v, 'f', 4, 64) }
func pct(v float64) string  { return strconv.FormatFloat(100*v, 'f', 1, 64) + "%" }
func ms(v float64) string   { return strconv.FormatFloat(v, 'f', 1, 64) + "ms" }
func secs(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) + "s" }
