package experiments

import (
	"teco/internal/core"
	"teco/internal/modelzoo"
	"teco/internal/zero"
)

// LinkSpeedSweep is an extension experiment the paper's introduction
// motivates: tensor transfers take "~10 or ~100 of milliseconds on a PCIe
// 3.0 (or PCIe 5.0) interconnect". It sweeps the interconnect generation
// and reports how TECO's advantage evolves — faster links shrink the
// absolute transfer times but the coarse-grained exposure problem (and
// TECO's fix) persists.
func LinkSpeedSweep() *Table { return LinkSpeedSweepWith(Options{}) }

// LinkSpeedSweepWith is LinkSpeedSweep on the sweep pool (one link
// generation per point, fresh engines per point).
func LinkSpeedSweepWith(opt Options) *Table {
	t := &Table{
		ID:     "linkspeed",
		Title:  "Interconnect-generation sweep (Bert-large-cased, batch 4)",
		Header: []string{"Link", "Raw GB/s", "ZeRO-Offload step", "TECO-Reduction step", "Speedup"},
	}
	m := modelzoo.BertLargeCased()
	gens := []struct {
		name string
		raw  float64
	}{
		{"PCIe 3.0 x16", 16e9},
		{"PCIe 4.0 x16", 32e9},
		{"PCIe 5.0 x16", 64e9},
	}
	for _, row := range grid(opt, len(gens), func(i int) []string {
		g := gens[i]
		base := zero.NewEngine()
		base.LinkBandwidth = g.raw * modelzoo.BaselineDMAEfficiency
		teco := tecoEngine(opt, core.Config{DBA: true})
		teco.LinkBandwidth = g.raw * modelzoo.CXLEfficiency
		rb := base.Step(m, 4)
		rt := teco.Step(m, 4)
		return []string{g.name, f0(g.raw / 1e9),
			ms(rb.Total().Milliseconds()), ms(rt.Total().Milliseconds()),
			f2(rt.Speedup(rb)) + "x"}
	}) {
		t.AddRow(row...)
	}
	t.Note("faster links shrink the absolute gap but ZeRO-Offload's exposed transfers remain on the critical path; TECO's overlap advantage persists across generations")
	return t
}
