package experiments

import (
	"math"

	"teco/internal/core"
	"teco/internal/modelzoo"
	"teco/internal/realtrain"
	"teco/internal/sim"
	"teco/internal/zero"
)

// TimeToLoss is a derived experiment combining both halves of the
// reproduction: the *numerical* effect of DBA (the real loss curve from
// realtrain) with the *timing* effect (per-step times from the engines).
// It answers the question the paper's separate convergence and speedup
// results imply: how much sooner does TECO-Reduction reach a given training
// loss in wall-clock time?
func TimeToLoss(seed int64) *Table { return TimeToLossWith(Options{Seed: seed}) }

// TimeToLossWith is TimeToLoss with both training runs as concurrent grid
// points against the shared run cache (they are the same configs Fig 10
// uses, so under "all" they cost nothing extra).
func TimeToLossWith(opt Options) *Table {
	t := &Table{
		ID:     "time-to-loss",
		Title:  "Wall-clock time to reach a training-loss level (GPT-2 proxy, batch 4)",
		Header: []string{"Loss level", "ZeRO-Offload", "TECO-Reduction", "Sooner by"},
	}
	m := modelzoo.GPT2()
	act := RealTrainSteps / 4
	cfgs := []realtrain.Config{
		{Steps: RealTrainSteps, Seed: opt.Seed},
		{Steps: RealTrainSteps, Seed: opt.Seed, DBA: true, ActAfterSteps: act},
	}
	runs := grid(opt, len(cfgs), func(i int) realtrain.Result { return runTrain(opt, cfgs[i]) })
	base, red := runs[0], runs[1]

	baseStep := zero.NewEngine().Step(m, 4).Total()
	cxlStep := tecoEngine(opt, core.Config{}).Step(m, 4).Total()
	dbaStep := tecoEngine(opt, core.Config{DBA: true}).Step(m, 4).Total()

	// Wall-clock of step s under each system.
	baseClock := func(s int) sim.Time { return sim.Time(int64(baseStep) * int64(s+1)) }
	tecoClock := func(s int) sim.Time {
		pre := s + 1
		if pre > act {
			pre = act
		}
		post := s + 1 - pre
		return sim.Time(int64(cxlStep)*int64(pre) + int64(dbaStep)*int64(post))
	}

	// Running-min loss curves (loss is noisy per minibatch).
	smooth := func(samples []realtrain.StepSample) ([]int, []float64) {
		steps := make([]int, len(samples))
		loss := make([]float64, len(samples))
		best := math.Inf(1)
		for i, s := range samples {
			if s.Loss < best {
				best = s.Loss
			}
			steps[i] = s.Step
			loss[i] = best
		}
		return steps, loss
	}
	bSteps, bLoss := smooth(base.Samples)
	rSteps, rLoss := smooth(red.Samples)

	// Loss levels: between the common start and the common end.
	start := math.Max(bLoss[0], rLoss[0])
	end := math.Max(bLoss[len(bLoss)-1], rLoss[len(rLoss)-1])
	firstAt := func(steps []int, loss []float64, level float64, clock func(int) sim.Time) (sim.Time, bool) {
		for i := range loss {
			if loss[i] <= level {
				return clock(steps[i]), true
			}
		}
		return 0, false
	}
	for i := 1; i <= 4; i++ {
		level := start + (end-start)*float64(i)/4
		bt, okB := firstAt(bSteps, bLoss, level, baseClock)
		rt, okR := firstAt(rSteps, rLoss, level, tecoClock)
		if !okB || !okR {
			continue
		}
		t.AddRow(f4(level), secs(bt.Seconds()), secs(rt.Seconds()),
			f2(float64(bt)/float64(rt))+"x")
	}
	t.Note("same optimizer trajectory modulo the DBA approximation; TECO reaches every loss level earlier because each step is cheaper")
	return t
}
