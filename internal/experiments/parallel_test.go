package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"teco/internal/realtrain"
)

// fastGenerators are the engine-only tables (zero, core and compressbl
// engines, no real training): cheap enough to regenerate at several worker
// counts and deep-compare.
var fastGenerators = map[string]func(Options) *Table{
	"table1":         TableIWith,
	"ablation-inval": AblationInvalidationWith,
	"fig11":          Fig11TableIVWith,
	"fig12":          Fig12With,
	"volume":         CommVolumeWith,
	"table6":         TableVIWith,
	"table8":         TableVIIIWith,
	"ablation-dpu":   AblationDPUWith,
	"linkspeed":      LinkSpeedSweepWith,
	"faults":         FaultSweep,
}

// TestTablesIdenticalAcrossWorkerCounts regenerates every engine-backed
// table at workers 1, 2 and 8 and requires byte-identical output — the
// sweep-runner half of the determinism contract.
func TestTablesIdenticalAcrossWorkerCounts(t *testing.T) {
	for name, gen := range fastGenerators {
		ref := gen(Options{Seed: 3, Workers: 1})
		for _, workers := range []int{2, 8} {
			got := gen(Options{Seed: 3, Workers: workers})
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("%s: table differs at workers=%d:\nserial: %+v\nparallel: %+v", name, workers, ref, got)
			}
		}
	}
}

// TestRecoverySweepIdenticalAcrossWorkerCounts is the end-to-end check for
// the parallel trainer under crash/restore: the full recovery table — run
// uncached so every cell really trains — must match the serial one.
func TestRecoverySweepIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("real training in -short mode")
	}
	base := Options{Seed: 5, CkptInterval: 10, CrashAt: 13, NoMemo: true}
	serial := base
	serial.Workers = 1
	ref := RecoverySweep(serial)
	par := base
	par.Workers = 8
	got := RecoverySweep(par)
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("recovery sweep differs across worker counts:\nserial: %+v\nparallel: %+v", ref, got)
	}
	for _, row := range got.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("parallel recovered run not bit-identical: %v", row)
		}
	}
}

// TestRunCacheDedup asserts the memoization actually collapses duplicate
// runs and shared pre-training phases, and that NoMemo bypasses it.
func TestRunCacheDedup(t *testing.T) {
	resetRunCache()
	defer resetRunCache()
	cfg := realtrain.Config{Steps: 8, PreSteps: 6, Hidden: 16, Seed: 21, SampleEvery: 4}
	dbaCfg := cfg
	dbaCfg.DBA = true
	dbaCfg.ActAfterSteps = 4

	opt := Options{Seed: 21}
	r1 := runTrain(opt, cfg)
	r2 := runTrain(opt, cfg)
	if runMisses.Load() != 1 {
		t.Fatalf("duplicate request executed: %d misses", runMisses.Load())
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("cache returned a different result")
	}
	// A different fine-tune variant is a new run but the same pre-phase.
	runTrain(opt, dbaCfg)
	if runMisses.Load() != 2 {
		t.Fatalf("distinct config not executed: %d misses", runMisses.Load())
	}
	if preMisses.Load() != 1 {
		t.Fatalf("pre-training not shared: %d pre misses", preMisses.Load())
	}
	// Requests at a different worker count share the cached result
	// (bit-identity makes that sound).
	runTrain(Options{Seed: 21, Workers: 8}, cfg)
	if runMisses.Load() != 2 {
		t.Fatalf("worker count split the cache: %d misses", runMisses.Load())
	}
	// NoMemo forces a fresh execution and leaves the cache untouched.
	r3 := runTrain(Options{Seed: 21, NoMemo: true}, cfg)
	if runMisses.Load() != 2 {
		t.Fatalf("NoMemo polluted the cache: %d misses", runMisses.Load())
	}
	r3.Config.Workers = r1.Config.Workers
	if !reflect.DeepEqual(r1, r3) {
		t.Fatal("memoized and from-scratch runs differ — memoization is not transparent")
	}
}

// TestGridErrDeterministicError checks the sweep wrapper: the lowest-
// indexed failure is the one reported, regardless of scheduling.
func TestGridErrDeterministicError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := gridErr(Options{Workers: workers}, 50, func(i int) (int, error) {
			if i == 9 || i == 30 {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 9 failed" {
			t.Fatalf("workers=%d: err = %v, want the lowest-indexed failure", workers, err)
		}
	}
	out, err := gridErr(Options{Workers: 4}, 6, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
