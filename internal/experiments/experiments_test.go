package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"A", "Bee"}}
	tab.AddRow("1", "2")
	tab.Note("hello %d", 7)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "A", "Bee", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in %q", want, out)
		}
	}
	buf.Reset()
	tab.Markdown(&buf)
	if !strings.Contains(buf.String(), "| A | Bee |") {
		t.Fatalf("markdown = %q", buf.String())
	}
}

func TestTableI(t *testing.T) {
	tab := TableI()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Measured fractions decrease with batch size.
	var prev float64 = 101
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if v >= prev {
			t.Fatalf("fractions not decreasing: %v", tab.Rows)
		}
		prev = v
	}
}

func TestFig11Speedups(t *testing.T) {
	tab := Fig11TableIV()
	if len(tab.Rows) < 13 { // 4 models x 3 batches + GCNII
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	oomRows := 0
	for _, row := range tab.Rows {
		if row[2] == "OOM" {
			oomRows++
			continue
		}
		for _, col := range []int{2, 3} {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "x"), 64)
			if err != nil {
				t.Fatalf("row %v col %d: %v", row, col, err)
			}
			if v <= 1.0 || v > 2.5 {
				t.Fatalf("speedup %v out of range in %v", v, row)
			}
		}
	}
	if oomRows != 1 {
		t.Fatalf("expected exactly the T5 batch-16 OOM row, got %d", oomRows)
	}
}

func TestAblationInvalidation(t *testing.T) {
	tab := AblationInvalidation()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 {
			t.Fatalf("invalidation must cost time: %v", row)
		}
	}
}

func TestFig12Breakdown(t *testing.T) {
	tab := Fig12()
	if len(tab.Rows) != 6 { // 2 batches x 3 systems
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTableVIAndVolume(t *testing.T) {
	if len(TableVI().Rows) != 4 {
		t.Fatal("table6 rows")
	}
	vol := CommVolume()
	if len(vol.Rows) != 5 {
		t.Fatal("volume rows")
	}
	// TECO-R param bytes must be half of ZeRO's.
	for _, row := range vol.Rows {
		z, _ := strconv.ParseFloat(strings.TrimSuffix(row[1], "GB"), 64)
		r, _ := strconv.ParseFloat(strings.TrimSuffix(row[2], "GB"), 64)
		if r < 0.45*z || r > 0.55*z {
			t.Fatalf("DBA param volume not halved: %v", row)
		}
	}
}

func TestTableVIIAndVIII(t *testing.T) {
	t7 := TableVII()
	if len(t7.Rows) != 2 {
		t.Fatal("table7 rows")
	}
	t8 := TableVIII(1)
	if len(t8.Rows) != 4 {
		t.Fatal("table8 rows")
	}
	for _, row := range t8.Rows {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 1.2 {
			t.Fatalf("lossless pipeline must be slower than TECO: %v", row)
		}
	}
}

func TestLAMMPSTable(t *testing.T) {
	tab := LAMMPS()
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"table1", "fig12", "volume", "table6", "table7", "lammps"} {
		tabs, err := ByID(id, 1)
		if err != nil || len(tabs) == 0 {
			t.Fatalf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("nonsense", 1); err == nil {
		t.Fatal("unknown id must error")
	}
	if len(IDs()) < 13 {
		t.Fatal("IDs list incomplete")
	}
}

// TestRealTrainExperiments runs the slower accuracy experiments once.
func TestRealTrainExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("real training in -short mode")
	}
	a, b := Fig2(3)
	if len(a.Rows) == 0 || len(b.Rows) == 0 {
		t.Fatal("fig2 rows")
	}
	f10 := Fig10(3)
	if len(f10.Rows) < 10 {
		t.Fatal("fig10 rows")
	}
	f13 := Fig13(3)
	if len(f13.Rows) != 6 {
		t.Fatalf("fig13 rows = %d", len(f13.Rows))
	}
	// Speedups in fig13 must decrease as activation is delayed (less DBA
	// time) — i.e. first row has the highest speedup.
	first, _ := strconv.ParseFloat(strings.TrimSuffix(f13.Rows[0][3], "x"), 64)
	last, _ := strconv.ParseFloat(strings.TrimSuffix(f13.Rows[len(f13.Rows)-1][3], "x"), 64)
	if first <= last {
		t.Fatalf("speedup should fall with later activation: %v vs %v", first, last)
	}
	t5 := TableV(3)
	if len(t5.Rows) != 9 {
		t.Fatalf("table5 rows = %d", len(t5.Rows))
	}
}

func TestRecoverySweepTable(t *testing.T) {
	if testing.Short() {
		t.Skip("real training in -short mode")
	}
	tab := RecoverySweep(Options{Seed: 5, CkptInterval: 10, CrashAt: 13})
	if len(tab.Rows) != 3 { // one interval x three rates
		t.Fatalf("rows = %d: %v", len(tab.Rows), tab.Rows)
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("recovered run not bit-identical: %v", row)
		}
	}
	// The crash at step 13 with interval 10 forces replay even at rate 0.
	if tab.Rows[0][6] == "0" {
		t.Fatalf("crash-restore row reports no replayed steps: %v", tab.Rows[0])
	}
	if _, err := ByIDWith("recovery", Options{CrashAt: -1}); err == nil {
		t.Fatal("negative crash step accepted")
	}
	if _, err := ByIDWith("recovery", Options{CkptInterval: -2}); err == nil {
		t.Fatal("negative checkpoint interval accepted")
	}
}

func TestAblationDPUTable(t *testing.T) {
	tab := AblationDPU()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestLinkSpeedSweep(t *testing.T) {
	tab := LinkSpeedSweep()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Speedup stays > 1 across generations.
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if err != nil || v <= 1.0 {
			t.Fatalf("row %v: speedup %v err %v", row, v, err)
		}
	}
}

func TestTimeToLossTable(t *testing.T) {
	if testing.Short() {
		t.Skip("real training in -short mode")
	}
	tab := TimeToLoss(3)
	if len(tab.Rows) < 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil || v <= 1.0 {
			t.Fatalf("TECO must reach every level sooner: %v", row)
		}
	}
}

func TestTuneActTable(t *testing.T) {
	if testing.Short() {
		t.Skip("Bayesian optimization runs many trainings")
	}
	tab := TuneActAfterSteps(5)
	if len(tab.Rows) < 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "best act_aft_steps") {
		t.Fatalf("notes = %v", tab.Notes)
	}
}
