package experiments

import (
	"reflect"
	"testing"

	"teco/internal/core"
)

// TestTecoEnginePerLinePlumbing checks that the option's coalescing
// selection reaches every engine the generators build: opt.PerLine flips the
// engine to the per-line reference path, an explicit config wins either way,
// and the default stays the coalesced fast path.
func TestTecoEnginePerLinePlumbing(t *testing.T) {
	if e := tecoEngine(Options{}, core.Config{}); e.Config.PerLine {
		t.Error("zero options should build a coalesced engine")
	}
	if e := tecoEngine(Options{PerLine: true}, core.Config{}); !e.Config.PerLine {
		t.Error("Options.PerLine did not reach the engine config")
	}
	if e := tecoEngine(Options{}, core.Config{PerLine: true}); !e.Config.PerLine {
		t.Error("explicit Config.PerLine was dropped")
	}
}

// TestFaultSweepBitIdenticalPerLine regenerates the fault-sweep table on the
// per-line reference path and requires it byte-identical to the coalesced
// table — the experiments-level counterpart of the core cross-check suite,
// covering the fault boundary (runs handed whole to the retry engine) and
// the clean full-size cells in one grid. Skipped under -short: the clean
// per-line cells simulate every cache line of Bert-large.
func TestFaultSweepBitIdenticalPerLine(t *testing.T) {
	if testing.Short() {
		t.Skip("clean per-line cells simulate every cache line of Bert-large")
	}
	opt := Options{Seed: 7, BER: 1e-5}
	co := FaultSweep(opt)
	opt.PerLine = true
	pl := FaultSweep(opt)
	if !reflect.DeepEqual(co, pl) {
		t.Errorf("fault-sweep tables differ across modes:\ncoalesced: %+v\nper-line:  %+v", co, pl)
	}
}
