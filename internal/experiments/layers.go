package experiments

import (
	"fmt"

	"teco/internal/core"
	"teco/internal/modelzoo"
	"teco/internal/staging"
)

// The layers sweeps chart the tentpole of per-layer offload scheduling
// (core.StepLayered): how much of a too-small fast tier the eager prefetch
// window can hide, and where the eviction policies part ways. Both tables
// are pure integer-picosecond simulation, so the goldens pin them byte for
// byte at seed 42.

// layersLayerGrid returns the swept layer counts; an explicit Options.Layers
// collapses the axis.
func layersLayerGrid(opt Options) []int {
	if opt.Layers > 0 {
		return []int{opt.Layers}
	}
	return []int{1, 4, 12, 24}
}

// layersCacheGrid returns the swept fast-tier sizes in percent of the
// model's parameter bytes; an explicit Options.CachePct collapses the axis.
func layersCacheGrid(opt Options) []int {
	if opt.CachePct > 0 {
		return []int{opt.CachePct}
	}
	return []int{25, 50, 100}
}

// layersPrefetchDepth is the scheduled column's look-ahead (default 1: the
// model is link-bound, and a deeper window thrashes small caches — that
// cliff is the policy sweep's to chart, not this one's).
func layersPrefetchDepth(opt Options) int {
	if opt.PrefetchDepth > 0 {
		return opt.PrefetchDepth
	}
	return 1
}

// LayersSweep is the layer-count x cache-size grid (GPT-2, batch 4): per
// cell, the demand-only serial step, the prefetch-scheduled step, the
// overlap win between them, and the fast-tier churn behind it. Cells whose
// per-layer slot exceeds the cache are structurally infeasible and render
// as "n/a".
func LayersSweep(opt Options) *Table {
	t := &Table{
		ID: "layers",
		Title: fmt.Sprintf("Per-layer offload scheduling: layers x cache size "+
			"(GPT-2, batch 4, prefetch depth %d)", layersPrefetchDepth(opt)),
		Header: []string{"Layers", "Cache", "Serial", "Scheduled", "Win",
			"Misses", "Pf hits", "Evictions"},
	}
	m := modelzoo.GPT2()
	layerGrid := layersLayerGrid(opt)
	cacheGrid := layersCacheGrid(opt)
	depth := layersPrefetchDepth(opt)
	rows := grid(opt, len(layerGrid)*len(cacheGrid), func(i int) []string {
		layers := layerGrid[i/len(cacheGrid)]
		pct := cacheGrid[i%len(cacheGrid)]
		label := fmt.Sprintf("%d%%", pct)
		cache := m.ParamBytes() * int64(pct) / 100
		// The largest per-layer slot carries the division remainder; a cache
		// below it cannot hold even one layer.
		per := m.ParamBytes() / int64(layers)
		if largest := per + (m.ParamBytes() - per*int64(layers)); cache < largest {
			return []string{fmt.Sprint(layers), label, "n/a", "n/a", "n/a", "-", "-", "-"}
		}
		e := tecoEngine(opt, core.Config{DBA: true})
		serial, err := e.StepLayered(m, 4, core.LayerConfig{Layers: layers, CacheBytes: cache})
		if err != nil {
			return []string{fmt.Sprint(layers), label, "-", "-", "-", "-", "-", err.Error()}
		}
		sched, err := e.StepLayered(m, 4, core.LayerConfig{Layers: layers, CacheBytes: cache, Prefetch: depth})
		if err != nil {
			return []string{fmt.Sprint(layers), label, "-", "-", "-", "-", "-", err.Error()}
		}
		return []string{
			fmt.Sprint(layers), label,
			ms(serial.Total().Milliseconds()),
			ms(sched.Total().Milliseconds()),
			f2(float64(serial.Total())/float64(sched.Total())) + "x",
			fmt.Sprint(sched.Layer.DemandMisses),
			fmt.Sprint(sched.Layer.PrefetchHits),
			fmt.Sprint(sched.Layer.Evictions),
		}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Note("layer-k compute hides layer-k+1 transfer: the win column is the serial/scheduled step-time ratio, 1.00x when the cache already holds every layer")
	return t
}

// layersPolicySeqLen is the long-context scenario's sequence length.
func layersPolicySeqLen(opt Options) int {
	if opt.LayerSeqLen > 0 {
		return opt.LayerSeqLen
	}
	return 1024
}

// layersPolicyCachePct is the policy sweep's fast-tier size in percent of
// the model's parameter bytes.
func layersPolicyCachePct(opt Options) int {
	if opt.CachePct > 0 {
		return opt.CachePct
	}
	return 40
}

// LayersPolicySweep is the policy ablation: scenario (parameter-only short
// context vs activation-heavy long context) x eviction policy and prefetch
// depth, at a fixed undersized cache. The depth axis charts the thrash
// cliff — a window deeper than the spare cache slots evicts layers it is
// about to need — and the long-context rows add the activation spill and
// refetch traffic of Options.LayerSeqLen-token sequences.
func LayersPolicySweep(opt Options) *Table {
	t := &Table{
		ID: "layers-policy",
		Title: fmt.Sprintf("Layer eviction-policy ablation (GPT-2, batch 4, cache %d%%, long context %d tokens)",
			layersPolicyCachePct(opt), layersPolicySeqLen(opt)),
		Header: []string{"Scenario", "Policy", "Depth", "Prm", "Grad", "Total",
			"Misses", "Pf hits", "Evictions", "Writeback"},
	}
	m := modelzoo.GPT2()
	cache := m.ParamBytes() * int64(layersPolicyCachePct(opt)) / 100
	type variant struct {
		policy   string
		prefetch int
		pinned   int
	}
	variants := []variant{
		{"lru", 0, 0},
		{"lru", 1, 0},
		{"lru", 2, 0},
		{"fifo", 1, 0},
		{"pin", 1, 2},
	}
	if opt.LayerPolicy != "" {
		kept := variants[:0]
		for _, v := range variants {
			if v.policy == opt.LayerPolicy {
				kept = append(kept, v)
			}
		}
		variants = kept
	}
	if opt.PrefetchDepth > 0 {
		for i := range variants {
			if variants[i].prefetch > 0 {
				variants[i].prefetch = opt.PrefetchDepth
			}
		}
	}
	type scenario struct {
		name string
		lc   core.LayerConfig
	}
	scenarios := []scenario{
		{"short", core.LayerConfig{Layers: opt.Layers, CacheBytes: cache}},
		{"long-ctx", core.LayerConfig{Layers: opt.Layers, CacheBytes: cache,
			ActOffload: true, SeqLen: layersPolicySeqLen(opt)}},
	}
	rows := grid(opt, len(scenarios)*len(variants), func(i int) []string {
		sc := scenarios[i/len(variants)]
		v := variants[i%len(variants)]
		lc := sc.lc
		lc.Policy = v.policy
		lc.Prefetch = v.prefetch
		lc.Pinned = v.pinned
		e := tecoEngine(opt, core.Config{DBA: true})
		res, err := e.StepLayered(m, 4, lc)
		if err != nil {
			return []string{sc.name, v.policy, fmt.Sprint(v.prefetch), "-", "-", "-", "-", "-", "-", err.Error()}
		}
		return []string{
			sc.name, v.policy, fmt.Sprint(v.prefetch),
			ms(res.Prm.Milliseconds()),
			ms(res.Grad.Milliseconds()),
			ms(res.Total().Milliseconds()),
			fmt.Sprint(res.Layer.DemandMisses),
			fmt.Sprint(res.Layer.PrefetchHits),
			fmt.Sprint(res.Layer.Evictions),
			fmt.Sprintf("%dMB", res.Layer.WritebackBytes>>20),
		}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Note("the model is link-bound at this cache size, so depth 1 wins and deeper windows thrash; pinning the hot layers trades their refetches for a smaller working set")
	return t
}

// validateLayers rejects layer-sweep options the scheduler cannot model, so
// the CLI fails fast instead of emitting a grid of error cells.
func (opt Options) validateLayers() error {
	if opt.Layers < 0 || opt.PrefetchDepth < 0 || opt.LayerSeqLen < 0 {
		return fmt.Errorf("experiments: negative layers knob (layers %d, prefetch %d, seq_len %d)",
			opt.Layers, opt.PrefetchDepth, opt.LayerSeqLen)
	}
	if opt.CachePct < 0 || opt.CachePct > 100 {
		return fmt.Errorf("experiments: cache percentage %d outside 0..100", opt.CachePct)
	}
	if _, err := staging.ParsePolicy(opt.LayerPolicy); err != nil {
		return err
	}
	return nil
}
