package experiments

import (
	"fmt"

	"teco/internal/core"
	"teco/internal/cxl"
	"teco/internal/fabric"
	"teco/internal/modelzoo"
)

// fabricReplicaGrid returns the swept data-parallel widths; an explicit
// Options.Replicas collapses the axis to that width.
func fabricReplicaGrid(opt Options) []int {
	if opt.Replicas > 0 {
		return []int{opt.Replicas}
	}
	return []int{1, 2, 4, 8}
}

// FabricSweep is the switched-fabric scaling grid: data-parallel width x
// spine oversubscription (Bert-large-cased, batch 16, TECO-Reduction, one
// switch hop). Per cell: the step breakdown, the spine queueing cost, and
// the speedup over one replica at the same oversubscription.
func FabricSweep(opt Options) *Table {
	t := &Table{
		ID:    "fabric",
		Title: "Switched-fabric scaling: replicas x spine oversubscription (Bert-large-cased, batch 16)",
		Header: []string{"Replicas", "Host ports", "Oversub", "Fwd+Bwd", "Grad", "Prm",
			"Spine queued", "Total", "Speedup"},
	}
	m := modelzoo.BertLargeCased()
	oversubs := []int{1, 2, 4}
	if opt.HostPorts > 0 {
		oversubs = []int{0} // sentinel: explicit host-port count
	}
	// Low replica counts collapse distinct oversubscription ratios onto the
	// same host-port count; keep each realizable (replicas, ports) shape once.
	type cell struct {
		r, hostPorts int
		label        string
	}
	var cells []cell
	seen := map[[2]int]bool{}
	for _, r := range fabricReplicaGrid(opt) {
		for _, over := range oversubs {
			hostPorts := opt.HostPorts
			label := "explicit"
			if over > 0 {
				hostPorts = r / over
				if hostPorts < 1 {
					hostPorts = 1
				}
				label = fmt.Sprintf("%d:1", (r+hostPorts-1)/hostPorts)
			}
			if seen[[2]int{r, hostPorts}] {
				continue
			}
			seen[[2]int{r, hostPorts}] = true
			cells = append(cells, cell{r, hostPorts, label})
		}
	}
	rows := grid(opt, len(cells), func(i int) []string {
		r, hostPorts, label := cells[i].r, cells[i].hostPorts, cells[i].label
		e := tecoEngine(opt, core.Config{DBA: true})
		base, err := e.StepFabric(m, 16, fabricCfg(1, 1, 0))
		if err != nil {
			return []string{fmt.Sprint(r), fmt.Sprint(hostPorts), label, "-", "-", "-", "-", "-", err.Error()}
		}
		res, err := e.StepFabric(m, 16, fabricCfg(r, hostPorts, 0))
		if err != nil {
			return []string{fmt.Sprint(r), fmt.Sprint(hostPorts), label, "-", "-", "-", "-", "-", err.Error()}
		}
		return []string{
			fmt.Sprint(r), fmt.Sprint(hostPorts), label,
			ms((res.Fwd + res.Bwd).Milliseconds()),
			ms(res.Grad.Milliseconds()),
			ms(res.Prm.Milliseconds()),
			ms(res.Fabric.SpineQueued.Milliseconds()),
			ms(res.Total().Milliseconds()),
			f2(float64(base.Total())/float64(res.Total())) + "x",
		}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Note("per-replica batch shrinks with width; the spine serializes gradient and parameter streams, so oversubscription taxes exactly the communication phases")
	return t
}

// fabricCfg is the sweep's switch shape: one hop of latency, no spares.
func fabricCfg(replicas, hostPorts, killPort int) core.FabricConfig {
	return core.FabricConfig{
		Replicas:   replicas,
		HostPorts:  hostPorts,
		HopLatency: fabric.DefaultHopLatency,
		KillPort:   killPort,
	}
}

// fabricFaultBERs returns the per-port BER axis of the fault sweep.
func fabricFaultBERs(opt Options) []float64 {
	if opt.BER > 0 {
		return []float64{0, opt.BER}
	}
	return []float64{0, 1e-7, 1e-5}
}

// FabricFaultSweep is the per-port fault grid for the switched fabric:
// per-port BER x failure scenario (healthy, port killed with a spare
// available, port killed with no spare). Per cell: failovers, lost
// replicas, redistributed shards, the fault-exposed time and the step-time
// inflation over the healthy fabric.
func FabricFaultSweep(opt Options) *Table {
	replicas := 4
	if opt.Replicas > 0 {
		replicas = opt.Replicas
	}
	t := &Table{
		ID: "fabric-faults",
		Title: fmt.Sprintf("Switched-fabric fault sweep: per-port BER x port failure "+
			"(Bert-large-cased, batch 16, %d replicas)", replicas),
		Header: []string{"BER", "Scenario", "Failovers", "Lost", "Redistributed",
			"Exposed", "Total", "vs healthy"},
	}
	m := modelzoo.BertLargeCased()
	bers := fabricFaultBERs(opt)
	kill := replicas // default chaos target: the last replica's port
	if opt.KillPort > 0 {
		kill = opt.KillPort
	}
	type scenario struct {
		name   string
		spares int
		kill   int
	}
	scenarios := []scenario{
		{"healthy", 0, 0},
		{"kill+spare", 1, kill},
		{"kill", 0, kill},
	}
	rows := grid(opt, len(bers)*len(scenarios), func(i int) []string {
		ber := bers[i/len(scenarios)]
		sc := scenarios[i%len(scenarios)]
		cfg := core.Config{DBA: true}
		if ber > 0 {
			cfg.Faults = cxl.FaultConfig{Seed: opt.Seed, BER: ber, RetryBudget: opt.RetryBudget}
		}
		cfg.Degrade = opt.Degrade
		e := tecoEngine(opt, cfg)
		healthy, err := e.StepFabric(m, 16, core.FabricConfig{
			Replicas: replicas, HopLatency: fabric.DefaultHopLatency,
		})
		if err != nil {
			return []string{fmtBER(ber), sc.name, "-", "-", "-", "-", "-", err.Error()}
		}
		fc := core.FabricConfig{
			Replicas:   replicas,
			SparePorts: sc.spares,
			HopLatency: fabric.DefaultHopLatency,
			KillPort:   sc.kill,
		}
		res, err := e.StepFabric(m, 16, fc)
		if err != nil {
			return []string{fmtBER(ber), sc.name, "-", "-", "-", "-", "-", err.Error()}
		}
		return []string{
			fmtBER(ber), sc.name,
			fmt.Sprint(res.Fabric.Failovers),
			fmt.Sprint(res.Fabric.LostReplicas),
			fmt.Sprint(res.Fabric.Redistributed),
			ms(res.Fault.Exposed.Milliseconds()),
			ms(res.Total().Milliseconds()),
			f2(float64(res.Total())/float64(healthy.Total())) + "x",
		}
	})
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Note("a killed port with a spare costs one link-down detection and failover per direction; without one the replica is lost and its shard recomputes on the survivors")
	return t
}

// fmtBER prints an error rate in the sweep's scientific shorthand.
func fmtBER(ber float64) string {
	if ber == 0 {
		return "0"
	}
	return fmt.Sprintf("%.0e", ber)
}

// validateFabric rejects fabric options the switch cannot model.
func (opt Options) validateFabric() error {
	if opt.Replicas < 0 {
		return fmt.Errorf("experiments: negative replica count %d", opt.Replicas)
	}
	if opt.HostPorts < 0 {
		return fmt.Errorf("experiments: negative host-port count %d", opt.HostPorts)
	}
	replicas := 4 // the fault sweep's default width
	if opt.Replicas > 0 {
		replicas = opt.Replicas
	}
	if opt.KillPort > replicas {
		return fmt.Errorf("experiments: kill port %d outside 1..%d", opt.KillPort, replicas)
	}
	if opt.KillPort < 0 || opt.KillStep < 0 {
		return fmt.Errorf("experiments: negative chaos knob (kill_port %d, kill_step %d)", opt.KillPort, opt.KillStep)
	}
	return cxl.FaultConfig{Seed: opt.Seed, BER: opt.BER, RetryBudget: opt.RetryBudget}.Validate()
}
