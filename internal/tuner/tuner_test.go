package tuner

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCholeskyAndSolve(t *testing.T) {
	// A = [[4,2],[2,3]] => L = [[2,0],[1,sqrt2]].
	a := [][]float64{{4, 2}, {2, 3}}
	l, err := cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l[0][0]-2) > 1e-12 || math.Abs(l[1][0]-1) > 1e-12 || math.Abs(l[1][1]-math.Sqrt2) > 1e-12 {
		t.Fatalf("L = %v", l)
	}
	// Solve A x = b for b = [8, 7] => x = [11/8... ] check by multiply.
	x := cholSolve(l, []float64{8, 7})
	if math.Abs(4*x[0]+2*x[1]-8) > 1e-9 || math.Abs(2*x[0]+3*x[1]-7) > 1e-9 {
		t.Fatalf("x = %v", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	if _, err := cholesky([][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Fatal("indefinite matrix must fail")
	}
}

func TestNormFunctions(t *testing.T) {
	if math.Abs(normCDF(0)-0.5) > 1e-12 {
		t.Fatal("CDF(0)")
	}
	if normCDF(5) < 0.999 || normCDF(-5) > 0.001 {
		t.Fatal("CDF tails")
	}
	if math.Abs(normPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatal("PDF(0)")
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	// Higher mean -> higher EI; zero variance -> zero EI.
	if expectedImprovement(1.0, 0.1, 0.5) <= expectedImprovement(0.6, 0.1, 0.5) {
		t.Fatal("EI must grow with mean")
	}
	if expectedImprovement(0.4, 0, 0.5) != 0 {
		t.Fatal("no variance, no improvement")
	}
	if expectedImprovement(0.4, 0.5, 0.5) <= 0 {
		t.Fatal("uncertainty must give positive EI even below incumbent")
	}
}

func TestMaximizeFindsPeak(t *testing.T) {
	// Smooth unimodal objective with peak at x = 3.
	f := func(x float64) float64 { return -(x - 3) * (x - 3) }
	res, err := Maximize(f, Config{Lo: 0, Hi: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BestX-3) > 0.4 {
		t.Fatalf("best x = %v, want ~3", res.BestX)
	}
	if len(res.Xs) != len(res.Ys) || len(res.Xs) < 4 {
		t.Fatalf("history %d/%d", len(res.Xs), len(res.Ys))
	}
}

func TestMaximizeBeatsGridWithSameBudget(t *testing.T) {
	// A narrow peak: BO's exploitation should land closer than the coarse
	// seed grid alone.
	peak := 7.3
	f := func(x float64) float64 { return math.Exp(-2 * (x - peak) * (x - peak)) }
	res, err := Maximize(f, Config{Lo: 0, Hi: 10, InitPoints: 4, Iters: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestY < 0.9 {
		t.Fatalf("best value %v, expected near 1", res.BestY)
	}
}

func TestMaximizeEmptyInterval(t *testing.T) {
	if _, err := Maximize(func(float64) float64 { return 0 }, Config{Lo: 5, Hi: 5}); err == nil {
		t.Fatal("expected error")
	}
}

// Property: the reported best is the max over the evaluation history.
func TestBestIsHistoryMaxProperty(t *testing.T) {
	f := func(seed int64) bool {
		obj := func(x float64) float64 { return math.Sin(x) + 0.3*math.Cos(3*x) }
		res, err := Maximize(obj, Config{Lo: 0, Hi: 6, Seed: seed, Iters: 6})
		if err != nil {
			return false
		}
		best := math.Inf(-1)
		for _, y := range res.Ys {
			if y > best {
				best = y
			}
		}
		return res.BestY == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGPInterpolates(t *testing.T) {
	g := &gp{ell: 1.0, noise: 1e-8}
	g.xs = []float64{0, 1, 2}
	g.ys = []float64{1, 3, 2}
	if err := g.fit(); err != nil {
		t.Fatal(err)
	}
	for i, x := range g.xs {
		mu, varr := g.predict(x)
		if math.Abs(mu-g.ys[i]) > 1e-3 {
			t.Fatalf("GP does not interpolate at %v: %v vs %v", x, mu, g.ys[i])
		}
		if varr > 1e-3 {
			t.Fatalf("variance at data point = %v", varr)
		}
	}
	// Uncertainty grows away from data.
	_, varFar := g.predict(10)
	_, varNear := g.predict(0.5)
	if varFar <= varNear {
		t.Fatal("variance must grow away from observations")
	}
}
