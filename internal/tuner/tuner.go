// Package tuner implements the hyperparameter search the paper prescribes
// for `act_aft_steps` (§V-A: "act_aft_steps can be tuned using the Bayesian
// optimization [17], [94]"): a Gaussian-process Bayesian optimizer with an
// RBF kernel and expected-improvement acquisition, written from scratch on
// the standard library.
//
// The objective balances final model quality against training speedup —
// exactly the trade-off Figure 13 sweeps by hand.
package tuner

import (
	"fmt"
	"math"
	"math/rand"
)

// Objective evaluates a candidate x in [lo, hi] and returns a score to
// MAXIMIZE.
type Objective func(x float64) float64

// Config controls the optimizer.
type Config struct {
	Lo, Hi float64 // search interval
	// InitPoints seeds the GP with evenly spaced evaluations (default 4).
	InitPoints int
	// Iters is the number of BO iterations after seeding (default 12).
	Iters int
	// LengthScale is the RBF kernel length scale, in input units
	// (default: (Hi-Lo)/5).
	LengthScale float64
	// Noise is the observation noise variance (default 1e-6 relative).
	Noise float64
	Seed  int64
}

func (c Config) withDefaults() Config {
	if c.InitPoints == 0 {
		c.InitPoints = 4
	}
	if c.Iters == 0 {
		c.Iters = 12
	}
	if c.LengthScale == 0 {
		c.LengthScale = (c.Hi - c.Lo) / 5
	}
	if c.Noise == 0 {
		c.Noise = 1e-6
	}
	return c
}

// Result is the optimization outcome.
type Result struct {
	BestX, BestY float64
	// Xs/Ys are all evaluated points in evaluation order.
	Xs, Ys []float64
}

// gp is a tiny exact Gaussian process (RBF kernel, zero mean after
// standardization).
type gp struct {
	xs, ys []float64
	mean   float64
	std    float64
	ell    float64
	noise  float64
	// chol is the Cholesky factor of K + noise*I.
	chol  [][]float64
	alpha []float64 // (K+nI)^-1 y~
}

func (g *gp) kernel(a, b float64) float64 {
	d := (a - b) / g.ell
	return math.Exp(-0.5 * d * d)
}

// fit builds the posterior from the observations.
func (g *gp) fit() error {
	n := len(g.xs)
	// Standardize targets.
	g.mean = 0
	for _, y := range g.ys {
		g.mean += y
	}
	g.mean /= float64(n)
	g.std = 0
	for _, y := range g.ys {
		g.std += (y - g.mean) * (y - g.mean)
	}
	g.std = math.Sqrt(g.std/float64(n)) + 1e-12
	yt := make([]float64, n)
	for i, y := range g.ys {
		yt[i] = (y - g.mean) / g.std
	}
	// K + noise I.
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		for j := range K[i] {
			K[i][j] = g.kernel(g.xs[i], g.xs[j])
		}
		K[i][i] += g.noise
	}
	chol, err := cholesky(K)
	if err != nil {
		return err
	}
	g.chol = chol
	g.alpha = cholSolve(chol, yt)
	return nil
}

// predict returns the posterior mean and variance at x (standardized space
// converted back).
func (g *gp) predict(x float64) (mu, varr float64) {
	n := len(g.xs)
	k := make([]float64, n)
	for i := range k {
		k[i] = g.kernel(x, g.xs[i])
	}
	var m float64
	for i := range k {
		m += k[i] * g.alpha[i]
	}
	// v = L^-1 k ; var = k(x,x) - v.v
	v := forwardSolve(g.chol, k)
	var vv float64
	for _, t := range v {
		vv += t * t
	}
	varr = g.kernel(x, x) - vv
	if varr < 1e-12 {
		varr = 1e-12
	}
	return g.mean + g.std*m, g.std * g.std * varr
}

// cholesky returns the lower-triangular factor of a symmetric
// positive-definite matrix.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("tuner: matrix not positive definite at %d (%g)", i, sum)
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// forwardSolve solves L v = b.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * v[k]
		}
		v[i] = sum / l[i][i]
	}
	return v
}

// cholSolve solves (L L^T) x = b.
func cholSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	v := forwardSolve(l, b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := v[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

// normPDF / normCDF for expected improvement.
func normPDF(z float64) float64 { return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi) }
func normCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// expectedImprovement over the incumbent best.
func expectedImprovement(mu, varr, best float64) float64 {
	sd := math.Sqrt(varr)
	if sd < 1e-12 {
		return 0
	}
	z := (mu - best) / sd
	return (mu-best)*normCDF(z) + sd*normPDF(z)
}

// Maximize runs Bayesian optimization of f over [cfg.Lo, cfg.Hi].
func Maximize(f Objective, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Hi <= cfg.Lo {
		return Result{}, fmt.Errorf("tuner: empty interval [%g, %g]", cfg.Lo, cfg.Hi)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &gp{ell: cfg.LengthScale, noise: cfg.Noise}
	res := Result{BestY: math.Inf(-1)}

	eval := func(x float64) {
		y := f(x)
		g.xs = append(g.xs, x)
		g.ys = append(g.ys, y)
		res.Xs = append(res.Xs, x)
		res.Ys = append(res.Ys, y)
		if y > res.BestY {
			res.BestX, res.BestY = x, y
		}
	}

	// Seed with evenly spaced points (slightly jittered to avoid exact
	// kernel degeneracy).
	for i := 0; i < cfg.InitPoints; i++ {
		frac := (float64(i) + 0.5) / float64(cfg.InitPoints)
		x := cfg.Lo + frac*(cfg.Hi-cfg.Lo)
		eval(x)
	}

	for it := 0; it < cfg.Iters; it++ {
		if err := g.fit(); err != nil {
			return res, err
		}
		// Maximize EI on a dense candidate grid + random restarts.
		bestX, bestEI := cfg.Lo, -1.0
		for i := 0; i < 256; i++ {
			var x float64
			if i < 192 {
				x = cfg.Lo + (float64(i)+0.5)/192*(cfg.Hi-cfg.Lo)
			} else {
				x = cfg.Lo + rng.Float64()*(cfg.Hi-cfg.Lo)
			}
			mu, varr := g.predict(x)
			ei := expectedImprovement(mu, varr, res.BestY)
			if ei > bestEI {
				bestEI, bestX = ei, x
			}
		}
		if bestEI <= 1e-14 {
			break // converged: no expected improvement anywhere
		}
		eval(bestX)
	}
	return res, nil
}
