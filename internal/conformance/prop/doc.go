// Package prop is the seeded property/metamorphic harness of the
// conformance suite (see DESIGN.md "Conformance and invariants").
//
// One table-driven generator draws random configurations — bit-error rate ×
// dirty_bytes × worker count × coalescing mode × checkpoint interval — from
// a fixed seed and asserts the simulator's metamorphic laws on each draw:
//
//   - coalesced == per-line: the closed-form flow fast path and the
//     per-cache-line reference path produce bit-identical step results;
//   - workers-invariance: the parallel trainer is bit-identical at every
//     worker count;
//   - crash/restore == uninterrupted: killing a checkpointed session at an
//     arbitrary step and resuming lands on the exact same final state and
//     loss trajectory;
//   - zero-BER == fault-free: a fault model configured with error rate
//     zero leaves every timing identical to no fault model at all.
//
// The harness runs with the runtime invariant layer enabled
// (conformance/check), so every conservation law fires on every drawn
// configuration. The case count is bounded by the PROP_CASES environment
// variable (CI runs a reduced count under -race); the draws themselves are
// deterministic, so case k is the same configuration on every machine.
package prop
