package prop

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"teco/internal/conformance/check"
	"teco/internal/core"
	"teco/internal/cxl"
	"teco/internal/phases"
	"teco/internal/realtrain"
)

// fabricCase is one drawn switched-fabric configuration: port count,
// spine oversubscription, per-port bit-error rate, and the chaos kill step.
type fabricCase struct {
	seed      int64
	ber       float64 // per-port BER (0 = pristine fabric)
	replicas  int     // accelerator ports / data-parallel width
	hostPorts int     // spine uplinks (< replicas oversubscribes)
	batch     int     // engine step batch size
	killStep  int     // training step the chaos kill fires at
	workers   int     // trainer parallelism knob
}

func (c fabricCase) String() string {
	return fmt.Sprintf("seed=%d ber=%g replicas=%d hostPorts=%d batch=%d kill=%d workers=%d",
		c.seed, c.ber, c.replicas, c.hostPorts, c.batch, c.killStep, c.workers)
}

// drawFabric generates the deterministic fabric case table. A distinct
// stream constant keeps it decorrelated from the link-layer draw.
func drawFabric(n int) []fabricCase {
	rng := rand.New(rand.NewSource(propSeed + 1))
	bers := []float64{0, 1e-11, 1e-10, 5e-10}
	cases := make([]fabricCase, n)
	for i := range cases {
		replicas := 2 + rng.Intn(3) // 2..4: every case can lose a replica
		cases[i] = fabricCase{
			seed:      rng.Int63n(1 << 30),
			ber:       bers[rng.Intn(len(bers))],
			replicas:  replicas,
			hostPorts: 1 + rng.Intn(replicas),
			batch:     []int{8, 16}[rng.Intn(2)],
			killStep:  2 + rng.Intn(trainSteps-4),
			workers:   2 + rng.Intn(6),
		}
	}
	return cases
}

func (c fabricCase) engineConfig() core.Config {
	return core.Config{
		DBA: true,
		Faults: cxl.FaultConfig{
			Seed: c.seed,
			BER:  c.ber,
		},
	}
}

func (c fabricCase) trainConfig() realtrain.Config {
	return realtrain.Config{
		Steps: trainSteps, PreSteps: 30, Hidden: 32, Batch: 8,
		Seed: c.seed, DBA: true, ActAfterSteps: 4,
		SampleEvery: 2, SDCChecks: true,
	}
}

// stepFabric runs one fabric step and fails the test on config errors.
func stepFabric(t *testing.T, cfg core.Config, c fabricCase, fc core.FabricConfig) phases.StepResult {
	t.Helper()
	e, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatalf("engine %+v: %v", cfg, err)
	}
	res, err := e.StepFabric(tinyModel(propCase{}), c.batch, fc)
	if err != nil {
		t.Fatalf("fabric step (%s): %v", c, err)
	}
	return res
}

// TestMetamorphicFabric pushes every drawn fabric configuration through the
// switched-fabric metamorphic relations; it rides the same PROP_CASES
// budget (and -race CI job) as TestMetamorphic.
func TestMetamorphicFabric(t *testing.T) {
	check.Enable(t)
	for i, c := range drawFabric(caseCount(t)) {
		c := c
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) {
			t.Parallel()
			check.Enable(t)
			t.Log(c.String())

			// Relation 1: a one-replica fabric with zero hop latency is the
			// bare link — StepFabric degenerates to Step bit-for-bit; only
			// the Fabric stats block (absent from Step) may differ.
			direct, err := core.NewEngine(c.engineConfig())
			if err != nil {
				t.Fatal(err)
			}
			want := direct.Step(tinyModel(propCase{}), c.batch)
			got := stepFabric(t, c.engineConfig(), c, core.FabricConfig{Replicas: 1})
			got.Fabric = phases.FabricStats{}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("1-replica fabric != bare link:\n fabric: %+v\n link:   %+v", got, want)
			}

			// Relation 2: a per-port fault model at BER zero is the
			// pristine fabric, at every port count and oversubscription.
			fc := core.FabricConfig{Replicas: c.replicas, HostPorts: c.hostPorts}
			zcfg := c.engineConfig()
			zcfg.Faults = cxl.FaultConfig{Seed: c.seed, BER: 0}
			pcfg := c.engineConfig()
			pcfg.Faults = cxl.FaultConfig{}
			z, p := stepFabric(t, zcfg, c, fc), stepFabric(t, pcfg, c, fc)
			if !reflect.DeepEqual(z, p) {
				t.Errorf("zero-BER fabric != fault-free fabric:\n zero: %+v\n none: %+v", z, p)
			}

			// Relation 3: data-parallel fabric training is bit-identical to
			// the single-link trainer, at every worker count.
			ref := realtrain.Run(c.trainConfig())
			for _, workers := range []int{1, c.workers} {
				tc := c.trainConfig()
				tc.Workers = workers
				g, err := realtrain.NewGroup(realtrain.GroupConfig{Train: tc, Replicas: c.replicas})
				if err != nil {
					t.Fatalf("group (%s): %v", c, err)
				}
				res, err := g.Run()
				if err != nil {
					t.Fatalf("group run (%s): %v", c, err)
				}
				if !reflect.DeepEqual(normalize(res), normalize(ref)) {
					t.Errorf("fabric group (workers=%d) != single trainer:\n group:   %+v\n trainer: %+v",
						workers, normalize(res), normalize(ref))
				}
			}

			// Relation 4: one port killed mid-run at BER 0 — the degraded
			// group completes and equals the fault-free reference.
			g, err := realtrain.NewGroup(realtrain.GroupConfig{
				Train:      c.trainConfig(),
				Replicas:   c.replicas,
				KillPort:   c.replicas,
				KillAtStep: c.killStep,
			})
			if err != nil {
				t.Fatalf("chaos group (%s): %v", c, err)
			}
			res, err := g.Run()
			if err != nil {
				t.Fatalf("chaos run (%s): %v", c, err)
			}
			if !reflect.DeepEqual(normalize(res), normalize(ref)) {
				t.Errorf("kill at step %d != fault-free run:\n degraded: %+v\n direct:   %+v",
					c.killStep, normalize(res), normalize(ref))
			}
			if st := g.Stats(); st.LostReplicas != 1 || st.Redistributed == 0 {
				t.Errorf("chaos accounting (%s): %+v", c, st)
			}
		})
	}
}
