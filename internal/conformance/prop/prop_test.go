package prop

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"

	"teco/internal/conformance/check"
	"teco/internal/core"
	"teco/internal/cxl"
	"teco/internal/modelzoo"
	"teco/internal/realtrain"
)

// propSeed fixes the configuration draws: case k is identical everywhere.
const propSeed = 42

// defaultCases balances coverage against wall clock; CI overrides it via
// PROP_CASES (reduced under -race, where every hot loop runs instrumented).
const defaultCases = 6

func caseCount(t *testing.T) int {
	if s := os.Getenv("PROP_CASES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("invalid PROP_CASES %q", s)
		}
		return n
	}
	return defaultCases
}

// propCase is one drawn configuration across every axis the harness sweeps.
type propCase struct {
	seed       int64   // training + fault RNG seed
	ber        float64 // link bit-error rate (0 = pristine)
	dirtyBytes int     // DBA dirty_bytes hyperparameter
	workers    int     // trainer parallelism knob
	batch      int     // engine step batch size
	interval   int     // checkpoint interval (steps)
	crashAt    int     // step the crash/restore relation kills the run at
	degrade    bool    // graceful-degradation policy
}

func (c propCase) String() string {
	return fmt.Sprintf("seed=%d ber=%g dirty=%d workers=%d batch=%d interval=%d crash=%d degrade=%v",
		c.seed, c.ber, c.dirtyBytes, c.workers, c.batch, c.interval, c.crashAt, c.degrade)
}

// draw generates the deterministic case table.
func draw(n int) []propCase {
	rng := rand.New(rand.NewSource(propSeed))
	bers := []float64{0, 1e-11, 1e-10, 5e-10}
	cases := make([]propCase, n)
	for i := range cases {
		cases[i] = propCase{
			seed:       rng.Int63n(1 << 30),
			ber:        bers[rng.Intn(len(bers))],
			dirtyBytes: 1 + rng.Intn(3),
			workers:    2 + rng.Intn(6),
			batch:      []int{4, 8, 16}[rng.Intn(3)],
			interval:   []int{3, 5, 8}[rng.Intn(3)],
			crashAt:    2 + rng.Intn(trainSteps-4),
			degrade:    rng.Intn(2) == 1,
		}
	}
	return cases
}

const trainSteps = 12

// trainConfig is the fine-tuning proxy sized for the harness: small enough
// that every case runs in well under a second, large enough that the DBA
// merge, clipping and ADAM paths all execute.
func (c propCase) trainConfig() realtrain.Config {
	return realtrain.Config{
		Steps: trainSteps, PreSteps: 30, Hidden: 32, Batch: 8,
		Seed: c.seed, DBA: true, ActAfterSteps: 4,
		DirtyBytes: c.dirtyBytes, SampleEvery: 2, SDCChecks: true,
	}
}

// tinyModel keeps the per-line reference path affordable: ~4 MB of
// parameters is ~65k cache lines per transfer, against the billions a real
// model would schedule.
func tinyModel(c propCase) modelzoo.Model {
	return modelzoo.Model{
		Name: "prop-tiny", Kind: modelzoo.TransformerEncoder,
		Params: 4e6, ComputeParams: 4e6,
		Layers: 2, Hidden: 64, Heads: 2, SeqLen: 32,
	}
}

func engineConfig(c propCase, perLine bool) core.Config {
	return core.Config{
		DBA: true, DirtyBytes: c.dirtyBytes, PerLine: perLine,
		Degrade: c.degrade,
		Faults:  cxl.FaultConfig{Seed: c.seed, BER: c.ber},
	}
}

func step(t *testing.T, cfg core.Config, m modelzoo.Model, batch int) any {
	t.Helper()
	e, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatalf("engine %+v: %v", cfg, err)
	}
	return e.Step(m, batch)
}

// normalize strips the scheduling knob (excluded from the determinism
// contract by design) before whole-result comparison.
func normalize(r realtrain.Result) realtrain.Result {
	r.Config.Workers = 0
	return r
}

// TestMetamorphic is the single table-driven generator: every drawn
// configuration is pushed through all four metamorphic relations.
func TestMetamorphic(t *testing.T) {
	check.Enable(t)
	for i, c := range draw(caseCount(t)) {
		c := c
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) {
			t.Parallel()
			check.Enable(t)
			t.Log(c.String())

			m := tinyModel(c)

			// Relation 1: the coalesced closed-form fast path and the
			// per-line reference path are bit-identical.
			fast := step(t, engineConfig(c, false), m, c.batch)
			slow := step(t, engineConfig(c, true), m, c.batch)
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("coalesced != per-line:\n fast: %+v\n slow: %+v", fast, slow)
			}

			// Relation 2: a fault model at BER zero is the pristine link.
			zcfg := engineConfig(c, false)
			zcfg.Faults = cxl.FaultConfig{Seed: c.seed, BER: 0}
			pcfg := engineConfig(c, false)
			pcfg.Faults = cxl.FaultConfig{}
			if z, p := step(t, zcfg, m, c.batch), step(t, pcfg, m, c.batch); !reflect.DeepEqual(z, p) {
				t.Errorf("zero-BER != fault-free:\n zero: %+v\n none: %+v", z, p)
			}

			// Relation 3: the trainer is bit-identical at every worker
			// count.
			serial := c.trainConfig()
			serial.Workers = 1
			parallel := c.trainConfig()
			parallel.Workers = c.workers
			rs, rp := realtrain.Run(serial), realtrain.Run(parallel)
			if !reflect.DeepEqual(normalize(rs), normalize(rp)) {
				t.Errorf("workers=1 != workers=%d:\n serial:   %+v\n parallel: %+v",
					c.workers, normalize(rs), normalize(rp))
			}

			// Relation 4: crash + restore lands on the uninterrupted run.
			scfg := core.SessionConfig{
				Train: c.trainConfig(), Dir: t.TempDir(), Interval: c.interval,
			}
			crashed, _, err := core.CrashRun(scfg, c.crashAt)
			if err != nil {
				t.Fatalf("crash run (%s): %v", c, err)
			}
			if !reflect.DeepEqual(normalize(crashed), normalize(rs)) {
				t.Errorf("crash at %d + restore != uninterrupted:\n crashed: %+v\n direct:  %+v",
					c.crashAt, normalize(crashed), normalize(rs))
			}
		})
	}
}
