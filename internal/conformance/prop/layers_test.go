package prop

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"teco/internal/conformance/check"
	"teco/internal/core"
	"teco/internal/realtrain"
)

// layerCase is one drawn per-layer offload configuration: stack depth,
// fast-tier capacity, prefetch depth, eviction policy, and the crash step.
// Segment sizes with the default dataset are emb=131072 words, block=5120
// words each, head=264 words, so every drawn capacity holds the embedding
// (the largest slot) plus a working slot.
type layerCase struct {
	seed       int64
	layers     int    // transformer block count (stack arch)
	cacheWords int    // fast-tier capacity (0 = unbounded)
	prefetch   int    // eager look-ahead depth
	policy     string // eviction discipline
	pinned     int    // pinned hot segments (policy "pin")
	workers    int    // trainer parallelism knob
	dirty      int    // DBA dirty_bytes hyperparameter
	interval   int    // checkpoint interval (steps)
	crashAt    int    // step the crash/restore relation kills the run at
}

func (c layerCase) String() string {
	return fmt.Sprintf("seed=%d layers=%d cache=%d prefetch=%d policy=%s pinned=%d workers=%d dirty=%d interval=%d crash=%d",
		c.seed, c.layers, c.cacheWords, c.prefetch, c.policy, c.pinned, c.workers, c.dirty, c.interval, c.crashAt)
}

// drawLayers generates the deterministic layer-offload case table. A
// distinct stream constant keeps it decorrelated from the other draws.
func drawLayers(n int) []layerCase {
	rng := rand.New(rand.NewSource(propSeed + 2))
	policies := []string{"lru", "fifo", "pin"}
	caches := []int{0, 140000, 150000}
	cases := make([]layerCase, n)
	for i := range cases {
		c := layerCase{
			seed:       rng.Int63n(1 << 30),
			layers:     2 + rng.Intn(3), // 2..4 blocks
			cacheWords: caches[rng.Intn(len(caches))],
			prefetch:   rng.Intn(4),
			policy:     policies[rng.Intn(len(policies))],
			workers:    2 + rng.Intn(6),
			dirty:      1 + rng.Intn(3),
			interval:   []int{2, 3, 5}[rng.Intn(3)],
			crashAt:    2 + rng.Intn(5),
		}
		if c.policy == "pin" {
			c.pinned = 1 // the embedding segment
			if c.cacheWords == 0 {
				c.cacheWords = 140000 // pinning an unbounded cache is a no-op
			}
		}
		cases[i] = c
	}
	return cases
}

const layerTrainSteps = 8

// trainConfig is the stack fine-tune sized for the harness; the scheduling
// knobs stay zero here and are grafted on per relation.
func (c layerCase) trainConfig() realtrain.Config {
	return realtrain.Config{
		Arch: "stack", Layers: c.layers,
		Steps: layerTrainSteps, PreSteps: 12, Batch: 8, Seed: c.seed,
		DBA: true, ActAfterSteps: 3, DirtyBytes: c.dirty, SampleEvery: 2,
		SDCChecks: true,
	}
}

// sched grafts the drawn scheduling knobs onto a config.
func (c layerCase) sched(cfg realtrain.Config) realtrain.Config {
	cfg.SchedCacheWords = c.cacheWords
	cfg.SchedPrefetch = c.prefetch
	cfg.SchedPolicy = c.policy
	cfg.SchedPinned = c.pinned
	return cfg
}

// normalizeLayers strips the knobs excluded from the determinism contract —
// Workers and every scheduling knob (scheduling moves bytes in time, never
// changes them) — before whole-result comparison.
func normalizeLayers(r realtrain.Result) realtrain.Result {
	r.Config.Workers = 0
	r.Config.SchedCacheWords = 0
	r.Config.SchedPrefetch = 0
	r.Config.SchedPolicy = ""
	r.Config.SchedPinned = 0
	return r
}

// TestMetamorphicLayers pushes every drawn per-layer offload configuration
// through the layer-residency metamorphic relations; it rides the same
// PROP_CASES budget (and -race CI job) as TestMetamorphic.
func TestMetamorphicLayers(t *testing.T) {
	check.Enable(t)
	for i, c := range drawLayers(caseCount(t)) {
		c := c
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) {
			t.Parallel()
			check.Enable(t)
			t.Log(c.String())

			ref := realtrain.Run(c.trainConfig())

			// Relation 1: a cache that holds the whole model is the
			// all-resident baseline — the scheduled run is bit-identical to
			// the plain trainer.
			unbounded := c.sched(c.trainConfig())
			unbounded.SchedCacheWords = 0
			unbounded.SchedPinned = 0
			if unbounded.SchedPrefetch == 0 && unbounded.SchedPolicy == "" {
				unbounded.SchedPolicy = "lru" // keep the scheduler engaged
			}
			if got := realtrain.Run(unbounded); !reflect.DeepEqual(normalizeLayers(got), normalizeLayers(ref)) {
				t.Errorf("unbounded cache != plain trainer:\n sched: %+v\n plain: %+v",
					normalizeLayers(got), normalizeLayers(ref))
			}

			// Relation 2: the result is invariant across cache size,
			// prefetch depth, eviction policy, and worker count.
			for _, workers := range []int{1, c.workers} {
				cfg := c.sched(c.trainConfig())
				cfg.Workers = workers
				if got := realtrain.Run(cfg); !reflect.DeepEqual(normalizeLayers(got), normalizeLayers(ref)) {
					t.Errorf("scheduled run (workers=%d) != plain trainer:\n sched: %+v\n plain: %+v",
						workers, normalizeLayers(got), normalizeLayers(ref))
				}
			}

			// Relation 3: N=1 — the scheduler over the single-block MLP (one
			// segment, nothing to schedule) degrades to the plain trainer.
			mlp := realtrain.Config{
				Steps: layerTrainSteps, PreSteps: 12, Batch: 8, Seed: c.seed,
				DBA: true, ActAfterSteps: 3, DirtyBytes: c.dirty, SampleEvery: 2,
				SDCChecks: true,
			}
			mlpSched := mlp
			mlpSched.SchedPrefetch = 1 + c.prefetch
			mlpSched.SchedPolicy = c.policy
			if c.policy == "pin" {
				mlpSched.SchedPolicy = "lru" // one segment leaves nothing to pin
			}
			mr, ms := realtrain.Run(mlp), realtrain.Run(mlpSched)
			if !reflect.DeepEqual(normalizeLayers(ms), normalizeLayers(mr)) {
				t.Errorf("single-block scheduled != plain:\n sched: %+v\n plain: %+v",
					normalizeLayers(ms), normalizeLayers(mr))
			}

			// Relation 4: crash + restore mid-run under scheduling lands on
			// the uninterrupted plain run.
			scfg := core.SessionConfig{
				Train: c.sched(c.trainConfig()), Dir: t.TempDir(), Interval: c.interval,
			}
			crashed, _, err := core.CrashRun(scfg, c.crashAt)
			if err != nil {
				t.Fatalf("crash run (%s): %v", c, err)
			}
			if !reflect.DeepEqual(normalizeLayers(crashed), normalizeLayers(ref)) {
				t.Errorf("crash at %d + restore != uninterrupted:\n crashed: %+v\n direct:  %+v",
					c.crashAt, normalizeLayers(crashed), normalizeLayers(ref))
			}
		})
	}
}
