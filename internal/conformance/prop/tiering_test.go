package prop

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"teco/internal/conformance/check"
	"teco/internal/core"
	"teco/internal/realtrain"
)

// tierCase is one drawn heterogeneous-tiering configuration: stack depth,
// fast-tier percentage, placement policy, migration budget, and the crash
// step. With the stack dataset the largest slot is the embedding's
// optimizer state (131072 words × 8 bytes ≈ 62% of the tiered total at 2
// blocks), so drawn percentages start at 70 to keep every case feasible.
type tierCase struct {
	seed     int64
	layers   int    // transformer block count (stack arch)
	dramPct  int    // fast-tier capacity, percent of tiered slot bytes
	policy   string // placement policy
	budget   int    // per-step migration budget in FP32 words (0 = static)
	workers  int    // trainer parallelism knob
	dirty    int    // DBA dirty_bytes hyperparameter
	interval int    // checkpoint interval (steps)
	crashAt  int    // step the crash/restore relation kills the run at
}

func (c tierCase) String() string {
	return fmt.Sprintf("seed=%d layers=%d dram=%d%% policy=%s budget=%d workers=%d dirty=%d interval=%d crash=%d",
		c.seed, c.layers, c.dramPct, c.policy, c.budget, c.workers, c.dirty, c.interval, c.crashAt)
}

// drawTiering generates the deterministic tiering case table. A distinct
// stream constant keeps it decorrelated from the other draws.
func drawTiering(n int) []tierCase {
	rng := rand.New(rand.NewSource(propSeed + 3))
	policies := []string{"heat", "lru", "static"}
	pcts := []int{70, 80, 90}
	budgets := []int{0, 50000, 500000}
	cases := make([]tierCase, n)
	for i := range cases {
		cases[i] = tierCase{
			seed:     rng.Int63n(1 << 30),
			layers:   2 + rng.Intn(3), // 2..4 blocks
			dramPct:  pcts[rng.Intn(len(pcts))],
			policy:   policies[rng.Intn(len(policies))],
			budget:   budgets[rng.Intn(len(budgets))],
			workers:  2 + rng.Intn(6),
			dirty:    1 + rng.Intn(3),
			interval: []int{2, 3, 5}[rng.Intn(3)],
			crashAt:  2 + rng.Intn(5),
		}
	}
	return cases
}

// trainConfig is the stack fine-tune sized for the harness; the tiering
// knobs stay zero here and are grafted on per relation.
func (c tierCase) trainConfig() realtrain.Config {
	return realtrain.Config{
		Arch: "stack", Layers: c.layers,
		Steps: layerTrainSteps, PreSteps: 12, Batch: 8, Seed: c.seed,
		DBA: true, ActAfterSteps: 3, DirtyBytes: c.dirty, SampleEvery: 2,
		SDCChecks: true,
	}
}

// tiered grafts the drawn tiering knobs onto a config.
func (c tierCase) tiered(cfg realtrain.Config) realtrain.Config {
	cfg.TierDRAMPct = c.dramPct
	cfg.TierPolicy = c.policy
	cfg.TierMigrateWords = c.budget
	return cfg
}

// normalizeTiering strips the knobs excluded from the determinism contract —
// Workers, the offload-scheduling knobs, and the tiering knobs (placement
// moves bytes between tiers, never changes them) — before whole-result
// comparison.
func normalizeTiering(r realtrain.Result) realtrain.Result {
	r = normalizeLayers(r)
	r.Config.TierDRAMPct = 0
	r.Config.TierPolicy = ""
	r.Config.TierMigrateWords = 0
	return r
}

// runTiered steps a trainer by hand so the placement stats are observable
// alongside the result.
func runTiered(t *testing.T, cfg realtrain.Config) (realtrain.Result, *realtrain.Trainer) {
	t.Helper()
	tr, err := realtrain.NewTrainer(cfg)
	if err != nil {
		t.Fatalf("trainer (%+v): %v", cfg, err)
	}
	for !tr.Done() {
		if err := tr.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	return tr.Result(), tr
}

// TestMetamorphicTiering pushes every drawn tiering configuration through
// the hot/cold-migration metamorphic relations; it rides the same
// PROP_CASES budget (and -race CI job) as TestMetamorphic.
func TestMetamorphicTiering(t *testing.T) {
	check.Enable(t)
	for i, c := range drawTiering(caseCount(t)) {
		c := c
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) {
			t.Parallel()
			check.Enable(t)
			t.Log(c.String())

			ref := realtrain.Run(c.trainConfig())

			// Relation 1: a fast tier that holds every slot is the all-fast
			// baseline — the tiered run is bit-identical to the plain trainer
			// and the controller plans no migrations.
			allFits := c.tiered(c.trainConfig())
			allFits.TierDRAMPct = 0 // 0 = everything fits; policy keeps the controller engaged
			if allFits.TierPolicy == "" {
				allFits.TierPolicy = "heat"
			}
			got, tr := runTiered(t, allFits)
			if !reflect.DeepEqual(normalizeTiering(got), normalizeTiering(ref)) {
				t.Errorf("all-fits tiering != plain trainer:\n tiered: %+v\n plain:  %+v",
					normalizeTiering(got), normalizeTiering(ref))
			}
			if st, ok := tr.TierStats(); !ok || st.Migrations != 0 || st.FarAccesses != 0 {
				t.Errorf("all-fits run shows tier traffic: %+v (ok=%v)", st, ok)
			}

			// Relation 2: the trained result is invariant across fast-tier
			// size, policy, migration budget, and worker count.
			for _, workers := range []int{1, c.workers} {
				cfg := c.tiered(c.trainConfig())
				cfg.Workers = workers
				if got := realtrain.Run(cfg); !reflect.DeepEqual(normalizeTiering(got), normalizeTiering(ref)) {
					t.Errorf("tiered run (workers=%d) != plain trainer:\n tiered: %+v\n plain:  %+v",
						workers, normalizeTiering(got), normalizeTiering(ref))
				}
			}

			// Relation 3: a zero migration budget freezes the first-fit
			// placement, so any policy's accounting equals the static
			// policy's exactly.
			frozen := c.tiered(c.trainConfig())
			frozen.TierMigrateWords = 0
			_, ftr := runTiered(t, frozen)
			static := frozen
			static.TierPolicy = "static"
			_, str := runTiered(t, static)
			fst, _ := ftr.TierStats()
			sst, _ := str.TierStats()
			if !reflect.DeepEqual(fst, sst) {
				t.Errorf("zero-budget %q != static placement:\n %+v\n %+v", c.policy, fst, sst)
			}
			if fst.Migrations != 0 {
				t.Errorf("zero budget migrated: %+v", fst)
			}

			// Relation 4 (chaos arm): crash + restore mid-run — with the
			// controller migrating between steps — lands bit-identically on
			// the uninterrupted plain run.
			scfg := core.SessionConfig{
				Train: c.tiered(c.trainConfig()), Dir: t.TempDir(), Interval: c.interval,
			}
			crashed, _, err := core.CrashRun(scfg, c.crashAt)
			if err != nil {
				t.Fatalf("crash run (%s): %v", c, err)
			}
			if !reflect.DeepEqual(normalizeTiering(crashed), normalizeTiering(ref)) {
				t.Errorf("crash at %d + restore != uninterrupted:\n crashed: %+v\n direct:  %+v",
					c.crashAt, normalizeTiering(crashed), normalizeTiering(ref))
			}
		})
	}
}

// TestMetamorphicTieringChaos is the fault-injected arm: a run with SDC
// events on the link, killed and restored mid-run while migrations are in
// flight, still equals its own uninterrupted execution bit for bit — the
// tiering bookkeeping neither absorbs nor amplifies link corruption.
func TestMetamorphicTieringChaos(t *testing.T) {
	check.Enable(t)
	for i, c := range drawTiering(caseCount(t)) {
		c := c
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) {
			t.Parallel()
			check.Enable(t)
			t.Log(c.String())

			cfg := c.tiered(c.trainConfig())
			if cfg.TierMigrateWords == 0 {
				cfg.TierMigrateWords = 500000 // keep migrations in flight at the kill
			}
			plan := core.SDCPlan{Seed: c.seed + 7, Rate: 0.25}

			scfg := core.SessionConfig{
				Train: cfg, Dir: t.TempDir(), Interval: c.interval, SDC: plan,
			}
			crashed, _, err := core.CrashRun(scfg, c.crashAt)
			if err != nil {
				t.Fatalf("chaos crash run (%s): %v", c, err)
			}
			// The SDC plan perturbs the session run; equality must hold
			// against the session's own uninterrupted execution, which an
			// unkilled session (crash step past the run) provides.
			uncrashed, _, err := core.CrashRun(core.SessionConfig{
				Train: cfg, Dir: t.TempDir(), Interval: c.interval, SDC: plan,
			}, 0)
			if err != nil {
				t.Fatalf("chaos reference run (%s): %v", c, err)
			}
			if !reflect.DeepEqual(normalizeTiering(crashed), normalizeTiering(uncrashed)) {
				t.Errorf("chaos crash at %d + restore != uninterrupted chaos run:\n crashed: %+v\n direct:  %+v",
					c.crashAt, normalizeTiering(crashed), normalizeTiering(uncrashed))
			}
		})
	}
}
