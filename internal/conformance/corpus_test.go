package conformance

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"teco/internal/cxl"
	"teco/internal/fabric"
	"teco/internal/mem"
	"teco/internal/realtrain"
)

// corpusDirs maps each fuzz target to its seed-corpus directory, relative
// to this package. go test loads these automatically as fuzz seeds, so the
// corpora harden the 10s/30s CI fuzz passes with wire images harvested from
// a real seed-42 training trace instead of hand-typed bytes.
var corpusDirs = map[string]string{
	"FuzzDecode":         filepath.Join("..", "cxl", "testdata", "fuzz", "FuzzDecode"),
	"FuzzDecodeFramed":   filepath.Join("..", "cxl", "testdata", "fuzz", "FuzzDecodeFramed"),
	"FuzzDecodeSnapshot": filepath.Join("..", "checkpoint", "testdata", "fuzz", "FuzzDecodeSnapshot"),
	"FuzzDecodeFrame":    filepath.Join("..", "fabric", "testdata", "fuzz", "FuzzDecodeFrame"),
}

// corpusEntry renders one []byte input in Go's native corpus encoding.
func corpusEntry(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// harvest produces the corpus inputs from a small canonical-seed training
// run: real parameter bytes framed as full-line and DBA-aggregated CXL
// packets (plain, CRC-framed, and corrupted), and the run's checkpoint
// snapshot image.
func harvest(t *testing.T) map[string][][]byte {
	t.Helper()
	tr, err := realtrain.NewTrainer(realtrain.Config{
		Steps: 6, PreSteps: 20, Hidden: 16, Batch: 4, Seed: GoldenSeed,
		DBA: true, ActAfterSteps: 2, SampleEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for !tr.Done() {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// Trained parameter bytes — the realistic payload distribution (biased
	// exponents, clustered low-byte churn) the simulator actually ships.
	params := tr.MasterParams()
	line := make([]byte, mem.LineSize)
	for i := 0; i < len(line)/4 && i < len(params); i++ {
		bits := math.Float32bits(params[i])
		line[4*i] = byte(bits)
		line[4*i+1] = byte(bits >> 8)
		line[4*i+2] = byte(bits >> 16)
		line[4*i+3] = byte(bits >> 24)
	}
	full := cxl.Packet{Addr: 0x40 * 7, Payload: line}
	agg := cxl.Packet{Addr: 0x40 * 9, Aggregated: true, DirtyBytes: 2,
		Payload: line[:2*(mem.LineSize/4)]}

	var plain, framed [][]byte
	for _, p := range []*cxl.Packet{&full, &agg} {
		wire, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		fr, err := p.EncodeFramed()
		if err != nil {
			t.Fatal(err)
		}
		// Truncations and single-bit corruption: the decode error paths a
		// faulty link actually produces.
		clipped := wire[:len(wire)-3]
		flipped := append([]byte(nil), fr...)
		flipped[len(flipped)-1] ^= 0x01 // break the CRC trailer
		plain = append(plain, wire, clipped)
		framed = append(framed, fr, flipped, wire) // unframed bytes through the framed decoder
	}

	snap := tr.Snapshot().Encode()
	truncated := snap[:len(snap)/2]

	// Fabric frames around the same trained bytes: a gradient-tape frame, a
	// host parameter frame, a control frame, plus the hostile shapes (CRC
	// break, truncation) the switched fabric's retransmit path sees.
	var frames [][]byte
	for _, fr := range []fabric.Frame{
		{Src: 1, Dst: fabric.HostAddr, Kind: fabric.KindGrad, Flow: 3, Seq: 7, Payload: line},
		{Src: fabric.HostAddr, Dst: 2, Kind: fabric.KindParam, Flow: 1, Seq: 0, Payload: line[:20]},
		{Src: fabric.HostAddr, Dst: 1, Kind: fabric.KindCtl, Flow: 0, Seq: 1},
	} {
		wire, err := fr.Encode()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, wire)
	}
	broken := append([]byte(nil), frames[0]...)
	broken[len(broken)-1] ^= 0x01
	frames = append(frames, broken, frames[1][:len(frames[1])-5])

	return map[string][][]byte{
		"FuzzDecode":         plain,
		"FuzzDecodeFramed":   framed,
		"FuzzDecodeSnapshot": {snap, truncated},
		"FuzzDecodeFrame":    frames,
	}
}

// TestFuzzCorpus pins the harvested seed corpora. With -update it rewrites
// the corpus files; without, it asserts every corpus file is present and
// byte-identical to what the harvest produces (the corpora are as
// deterministic as the goldens — same seed, same trace).
func TestFuzzCorpus(t *testing.T) {
	inputs := harvest(t)
	for target, dir := range corpusDirs {
		entries := inputs[target]
		if len(entries) == 0 {
			t.Fatalf("no harvested inputs for %s", target)
		}
		if *update {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		for i, data := range entries {
			path := filepath.Join(dir, "conformance-"+strconv.Itoa(i))
			want := corpusEntry(data)
			if *update {
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Errorf("%s: missing corpus file (run -update): %v", target, err)
				continue
			}
			if string(got) != string(want) {
				t.Errorf("%s: corpus file %s drifted from the harvested trace", target, path)
			}
			if !strings.HasPrefix(string(got), "go test fuzz v1\n") {
				t.Errorf("%s: corpus file %s not in native corpus format", target, path)
			}
		}
	}
}
