package conformance

import (
	"testing"

	"teco/internal/experiments"
)

func TestSplitNumber(t *testing.T) {
	cases := []struct {
		in     string
		v      float64
		suffix string
		ok     bool
	}{
		{"42.24%", 42.24, "%", true},
		{"1.82x", 1.82, "x", true},
		{"-0.5ms", -0.5, "ms", true},
		{"128", 128, "", true},
		{"3.5GB", 3.5, "GB", true},
		{"GPT2", 0, "", false},
		{"-", 0, "", false},
		{"", 0, "", false},
	}
	for _, c := range cases {
		v, suffix, ok := splitNumber(c.in)
		if v != c.v || suffix != c.suffix || ok != c.ok {
			t.Errorf("splitNumber(%q) = (%v, %q, %v), want (%v, %q, %v)",
				c.in, v, suffix, ok, c.v, c.suffix, c.ok)
		}
	}
}

func TestCellsAgree(t *testing.T) {
	cases := []struct {
		a, b string
		tol  float64
		want bool
	}{
		{"1.82x", "1.82x", 0, true},     // byte equal always agrees
		{"1.82x", "1.83x", 0, false},    // zero tolerance is exact
		{"1.82x", "1.83x", 0.02, true},  // within 2%
		{"1.82x", "2.00x", 0.02, false}, // beyond 2%
		{"1.82x", "1.82%", 0.02, false}, // unit suffix must match
		{"0.00%", "0.01%", 0.02, true},  // absolute floor (tol itself) near zero
		{"0.0%", "0.1%", 0.02, false},   // drift past the absolute floor
		{"GPT2", "GPT-2", 0.02, false},  // non-numeric cells stay exact
	}
	for _, c := range cases {
		if got := cellsAgree(c.a, c.b, c.tol); got != c.want {
			t.Errorf("cellsAgree(%q, %q, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestNotesAgree(t *testing.T) {
	a := "average penalty 56.6% (paper: 56.6% average, up to 99.7%)"
	b := "average penalty 56.8% (paper: 56.6% average, up to 99.5%)"
	if !notesAgree(a, b, 0.02) {
		t.Errorf("numerically-close notes rejected")
	}
	if notesAgree(a, b, 0) {
		t.Errorf("zero tolerance accepted drifted note")
	}
	if notesAgree(a, "different text 56.6%", 0.5) {
		t.Errorf("text skeleton mismatch accepted")
	}
}

func tbl(id string, rows ...[]string) *experiments.Table {
	return &experiments.Table{ID: id, Title: "t", Header: []string{"A", "B"}, Rows: rows}
}

func TestDiffStructureAlwaysExact(t *testing.T) {
	g := tbl("fig10", []string{"1", "0.5000"})
	// Row count changes fail even on a tolerance-carrying table.
	f := tbl("fig10", []string{"1", "0.5000"}, []string{"2", "0.4000"})
	if errs := Diff([]*experiments.Table{g}, []*experiments.Table{f}); len(errs) == 0 {
		t.Error("row-count drift passed the diff")
	}
	// Value drift inside tolerance passes; outside fails.
	f2 := tbl("fig10", []string{"1", "0.5050"})
	if errs := Diff([]*experiments.Table{g}, []*experiments.Table{f2}); len(errs) != 0 {
		t.Errorf("in-tolerance drift failed: %v", errs)
	}
	f3 := tbl("fig10", []string{"1", "0.9000"})
	if errs := Diff([]*experiments.Table{g}, []*experiments.Table{f3}); len(errs) == 0 {
		t.Error("out-of-tolerance drift passed")
	}
	// A table without a tolerance entry is byte-exact.
	g4, f4 := tbl("table1", []string{"1", "0.5000"}), tbl("table1", []string{"1", "0.5001"})
	if errs := Diff([]*experiments.Table{g4}, []*experiments.Table{f4}); len(errs) == 0 {
		t.Error("drift on a zero-tolerance table passed")
	}
}
