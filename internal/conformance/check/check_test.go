package check

import (
	"errors"
	"strings"
	"testing"
)

// fakeTB records Errorf calls and runs cleanups like a finishing test.
type fakeTB struct {
	failures []string
	cleanups []func()
}

func (f *fakeTB) Helper()           {}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(format string, args ...any) {
	f.failures = append(f.failures, format)
}
func (f *fakeTB) finish() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestDisabledByDefault(t *testing.T) {
	if Enabled() {
		t.Fatal("checking enabled before any Enable call")
	}
	// Check must be a no-op: an always-failing invariant reports nothing.
	before := Violations()
	Check(func() error { return errors.New("boom") })
	if Violations() != before {
		t.Fatal("disabled Check evaluated its invariant")
	}
}

func TestEnableReportsViolations(t *testing.T) {
	tb := &fakeTB{}
	Enable(tb)
	defer tb.finish()

	if !Enabled() {
		t.Fatal("Enable did not switch checking on")
	}
	before := Violations()
	Check(
		func() error { return nil },
		func() error { return errors.New("conservation broken") },
	)
	if got := Violations() - before; got != 1 {
		t.Fatalf("violations = %d, want 1", got)
	}
	if len(tb.failures) != 1 || !strings.Contains(tb.failures[0], "conformance violation") {
		t.Fatalf("reporter saw %q, want one conformance violation", tb.failures)
	}
}

func TestDisablesWhenLastReporterLeaves(t *testing.T) {
	a, b := &fakeTB{}, &fakeTB{}
	Enable(a)
	Enable(b)
	a.finish()
	if !Enabled() {
		t.Fatal("checking dropped while a reporter is still live")
	}
	b.finish()
	if Enabled() {
		t.Fatal("checking still on after the last reporter left")
	}
}

func TestFailfFansOutToAllReporters(t *testing.T) {
	a, b := &fakeTB{}, &fakeTB{}
	Enable(a)
	Enable(b)
	defer a.finish()
	defer b.finish()

	Failf("law %d broken", 7)
	if len(a.failures) != 1 || len(b.failures) != 1 {
		t.Fatalf("fan-out saw %d/%d failures, want 1/1", len(a.failures), len(b.failures))
	}
}

func TestFailfPanicsWithoutReporter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Failf without reporter did not panic")
		}
	}()
	Failf("orphaned violation")
}
