// Package check is the runtime invariant layer of the conformance harness
// (see DESIGN.md "Conformance and invariants"). The simulator packages —
// sim, cxl, coherence, dba, phases, core, realtrain — call Check at the
// points where a conservation law, a monotonicity property or a protocol
// legality rule must hold. The layer is off by default and costs one
// predictable branch on a relaxed atomic load per call site, so the hot
// paths (the event engine fires tens of millions of events per suite) pay
// nothing measurable; tests switch it on with Enable(t), build-tag free,
// and every violation lands as a test failure on the enabling test.
//
// check is a leaf package: it imports nothing from the repository, so every
// simulator package can depend on it without cycles.
package check

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TB is the subset of *testing.T the layer needs. Declared locally so
// non-test code importing check does not pull in the testing package's
// flag registration.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
}

// Invariant is one deferred assertion: nil means the property holds, a
// non-nil error describes the violation.
type Invariant func() error

var (
	// enabled gates every instrumented call site. An atomic load keeps the
	// disabled cost at a single predictable branch even under -race.
	enabled atomic.Bool

	mu sync.Mutex
	// reporters are the currently-enabled tests, keyed for removal.
	reporters map[int]TB
	nextID    int

	// violations counts reported failures since process start (monotone;
	// tests use it to assert that a deliberately broken state is caught).
	violations atomic.Int64
)

// Enabled reports whether invariant checking is on. Instrumented code gates
// any non-trivial work on it:
//
//	if check.Enabled() {
//		check.Check(func() error { ... })
//	}
func Enabled() bool { return enabled.Load() }

// Enable switches invariant checking on for the duration of tb (it is
// switched back off by tb's Cleanup once no other test holds it open).
// Violations reported while tb is enabled fail tb via Errorf. Safe for
// concurrent use by parallel tests.
func Enable(tb TB) {
	mu.Lock()
	if reporters == nil {
		reporters = make(map[int]TB)
	}
	id := nextID
	nextID++
	reporters[id] = tb
	enabled.Store(true)
	mu.Unlock()

	tb.Cleanup(func() {
		mu.Lock()
		delete(reporters, id)
		if len(reporters) == 0 {
			enabled.Store(false)
		}
		mu.Unlock()
	})
}

// Check evaluates each invariant and reports every violation. It is a no-op
// while checking is disabled, so callers may pass closures unconditionally
// from cold paths; hot paths should gate on Enabled first to avoid building
// the closures at all.
func Check(invs ...Invariant) {
	if !Enabled() {
		return
	}
	for _, inv := range invs {
		if err := inv(); err != nil {
			Failf("%v", err)
		}
	}
}

// Failf reports one invariant violation to every enabled test. If checking
// was enabled without a live reporter (all tests finished but a goroutine
// raced past the flag), the violation panics rather than vanishing: a
// broken conservation law must never pass silently.
func Failf(format string, args ...any) {
	violations.Add(1)
	mu.Lock()
	defer mu.Unlock()
	if len(reporters) == 0 {
		panic(fmt.Sprintf("conformance violation (no reporter): "+format, args...))
	}
	for _, tb := range reporters {
		tb.Helper()
		tb.Errorf("conformance violation: "+format, args...)
	}
}

// Violations returns the number of violations reported since process start.
func Violations() int64 { return violations.Load() }
