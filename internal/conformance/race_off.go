//go:build !race

package conformance

// raceEnabled reports that this binary was built with the race detector.
const raceEnabled = false
