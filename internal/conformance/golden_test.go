package conformance

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"teco/internal/conformance/check"
	"teco/internal/experiments"
)

var update = flag.Bool("update", false, "regenerate testdata/golden from the generators at the canonical seed")

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".json")
}

// TestGolden regenerates every experiment at GoldenSeed and diffs it
// field-by-field against its pinned golden file. Run with -update to re-pin
// after an intentional model change; the files are written byte-identically
// from the generator output, so running -update twice is a no-op.
//
// The whole suite runs with the invariant layer enabled, so every
// conservation law in sim/cxl/coherence/dba/phases/core/realtrain is
// asserted across the full paper-figure workload, not just the unit tests.
func TestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration regenerates every experiment; skipped in -short")
	}
	if raceEnabled {
		t.Skip("golden regeneration skipped under -race (covered by the non-race run)")
	}
	check.Enable(t)

	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range GoldenIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			check.Enable(t)
			tables, err := Generate(id)
			if err != nil {
				t.Fatalf("generate %s: %v", id, err)
			}
			fresh, err := Marshal(tables)
			if err != nil {
				t.Fatalf("marshal %s: %v", id, err)
			}
			path := goldenPath(id)
			if *update {
				if err := os.WriteFile(path, fresh, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			pinned, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden for %s (run `make golden` or `go test ./internal/conformance -run TestGolden -update`): %v", id, err)
			}
			if bytes.Equal(pinned, fresh) {
				return
			}
			golden, err := Unmarshal(pinned)
			if err != nil {
				t.Fatalf("corrupt golden %s: %v", path, err)
			}
			for _, diff := range Diff(golden, tables) {
				t.Error(diff)
			}
			if !t.Failed() {
				t.Logf("%s: drift within tolerance of the pinned golden (re-pin with -update to silence)", id)
			}
		})
	}
}

// TestGoldenCoverage asserts the golden tree covers the generator registry
// exactly: one file per runnable experiment id, no stragglers. Deleting a
// golden file or adding a generator without re-pinning fails here.
func TestGoldenCoverage(t *testing.T) {
	want := append([]string(nil), GoldenIDs()...)
	sort.Strings(want)

	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden tree unreadable (run `make golden` to create it): %v", err)
	}
	var got []string
	for _, e := range entries {
		name := e.Name()
		if filepath.Ext(name) == ".json" {
			got = append(got, name[:len(name)-len(".json")])
		}
	}
	sort.Strings(got)

	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("golden files do not match the generator registry:\n  generators: %v\n  files:      %v", want, got)
	}

	// The registry itself must still expose "all" (the concatenation id the
	// CLI documents) and GoldenIDs must exclude it.
	all := false
	for _, id := range experiments.IDs() {
		if id == "all" {
			all = true
		}
	}
	if !all {
		t.Fatal(`experiments.IDs() no longer lists "all"`)
	}
	for _, id := range GoldenIDs() {
		if id == "all" {
			t.Fatal(`GoldenIDs must exclude "all"`)
		}
	}
}

// TestRenderGolden pins the text and markdown emitters byte for byte on
// cheap, fully deterministic tables (integer-picosecond simulation only).
// This is the locale/Go-version regression for Table.Render, Table.Markdown
// and the strconv-pinned cell formatters.
func TestRenderGolden(t *testing.T) {
	var buf bytes.Buffer
	for _, id := range []string{"table1", "linkspeed", "fig12"} {
		tables, err := Generate(id)
		if err != nil {
			t.Fatalf("generate %s: %v", id, err)
		}
		for _, tb := range tables {
			tb.Render(&buf)
		}
		for _, tb := range tables {
			tb.Markdown(&buf)
		}
	}
	path := filepath.Join("testdata", "golden", "render.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	pinned, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing render golden (run -update): %v", err)
	}
	if !bytes.Equal(pinned, buf.Bytes()) {
		t.Errorf("rendered table output drifted from %s; diff the file or re-pin with -update\n got:\n%s", path, buf.String())
	}
}
