// Package conformance is the repository's conformance harness: a golden
// regression suite pinning every paper-figure generator at the canonical
// seed, plus the glue shared with the runtime invariant layer
// (internal/conformance/check) and the property harness
// (internal/conformance/prop). See DESIGN.md "Conformance and invariants".
//
// The golden suite serializes the full result tables of every experiment in
// internal/experiments to testdata/golden/<id>.json and diffs them field by
// field in go test. Any drift — a changed cell, a reordered row, a deleted
// golden file — fails ./internal/conformance. Intentional changes are
// re-pinned with
//
//	go test ./internal/conformance -run TestGolden -update
//
// (or `make golden`), which rewrites the files byte-identically from the
// generators.
package conformance

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"teco/internal/experiments"
)

// GoldenSeed is the canonical seed every golden table is generated at. It is
// the seed the paper-reproduction README quotes; changing it invalidates the
// whole testdata/golden tree.
const GoldenSeed = 42

// GoldenIDs returns every experiment id the golden suite pins: the full
// generator registry except "all", which is by construction the
// concatenation of the others and would only duplicate bytes on disk.
func GoldenIDs() []string {
	var ids []string
	for _, id := range experiments.IDs() {
		if id == "all" {
			continue
		}
		ids = append(ids, id)
	}
	return ids
}

// Generate runs one experiment generator at the canonical seed.
func Generate(id string) ([]*experiments.Table, error) {
	return experiments.ByIDWith(id, experiments.Options{Seed: GoldenSeed})
}

// Marshal serializes tables to the canonical golden encoding: indented JSON
// with a trailing newline. encoding/json emits struct fields in declaration
// order and escapes deterministically, so equal tables marshal to equal
// bytes on every platform.
func Marshal(tables []*experiments.Table) ([]byte, error) {
	b, err := json.MarshalIndent(tables, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Unmarshal decodes a golden file.
func Unmarshal(data []byte) ([]*experiments.Table, error) {
	var tables []*experiments.Table
	if err := json.Unmarshal(data, &tables); err != nil {
		return nil, err
	}
	return tables, nil
}

// Tolerance relaxes the cell diff for one table. Zero tolerance (the
// default for every table not listed in tolerances) means byte equality.
type Tolerance struct {
	// Cells is the relative tolerance applied to every numeric cell: two
	// cells agree when their numeric prefixes differ by at most
	// Cells·max(1, |a|, |b|) and their unit suffixes match exactly.
	Cells float64
	// Notes is the tolerance for numbers embedded in table notes; the
	// non-numeric text must still match exactly.
	Notes float64
}

// tolerances lists the calibration-sensitive tables, keyed by Table.ID (not
// experiment id — the fig2 experiment emits tables fig2a and fig2b). These
// are exactly the tables whose cells descend from iterative floating-point
// training (realtrain, the MD proxy, the Bayesian tuner), where the Go
// compiler is free to contract a*b+c into a fused multiply-add on some
// architectures; everything else in the suite is integer-picosecond event
// simulation plus single IEEE divisions and must match byte for byte.
var tolerances = map[string]Tolerance{
	"fig2a":        {Cells: 0.02, Notes: 0.02},
	"fig2b":        {Cells: 0.02, Notes: 0.02},
	"table5":       {Cells: 0.02, Notes: 0.02},
	"fig10":        {Cells: 0.02, Notes: 0.02},
	"fig13":        {Cells: 0.02, Notes: 0.02},
	"tune-act":     {Cells: 0.05, Notes: 0.05},
	"time-to-loss": {Cells: 0.02, Notes: 0.02},
	"table7":       {Cells: 0.02, Notes: 0.02},
	"table8":       {Cells: 0.02, Notes: 0.02},
	"lammps":       {Cells: 0.02, Notes: 0.02},
}

// ToleranceFor returns the diff tolerance for a table ID.
func ToleranceFor(tableID string) Tolerance { return tolerances[tableID] }

// Diff compares regenerated tables against golden ones field by field and
// returns every mismatch. Structure (table count, IDs, titles, headers, row
// counts, note counts) must always match exactly; cell and note values are
// relaxed only by the table's Tolerance.
func Diff(golden, fresh []*experiments.Table) []error {
	var errs []error
	if len(golden) != len(fresh) {
		return []error{fmt.Errorf("table count: golden %d, regenerated %d", len(golden), len(fresh))}
	}
	for i, g := range golden {
		f := fresh[i]
		tol := ToleranceFor(g.ID)
		if g.ID != f.ID || g.Title != f.Title {
			errs = append(errs, fmt.Errorf("table %d identity: golden %q/%q, regenerated %q/%q",
				i, g.ID, g.Title, f.ID, f.Title))
			continue
		}
		if !equalStrings(g.Header, f.Header) {
			errs = append(errs, fmt.Errorf("%s: header: golden %v, regenerated %v", g.ID, g.Header, f.Header))
			continue
		}
		if len(g.Rows) != len(f.Rows) {
			errs = append(errs, fmt.Errorf("%s: row count: golden %d, regenerated %d", g.ID, len(g.Rows), len(f.Rows)))
			continue
		}
		for r := range g.Rows {
			gr, fr := g.Rows[r], f.Rows[r]
			if len(gr) != len(fr) {
				errs = append(errs, fmt.Errorf("%s: row %d width: golden %d, regenerated %d", g.ID, r, len(gr), len(fr)))
				continue
			}
			for c := range gr {
				if !cellsAgree(gr[c], fr[c], tol.Cells) {
					errs = append(errs, fmt.Errorf("%s: row %d col %q: golden %q, regenerated %q (tol %v)",
						g.ID, r, colName(g.Header, c), gr[c], fr[c], tol.Cells))
				}
			}
		}
		if len(g.Notes) != len(f.Notes) {
			errs = append(errs, fmt.Errorf("%s: note count: golden %d, regenerated %d", g.ID, len(g.Notes), len(f.Notes)))
			continue
		}
		for n := range g.Notes {
			if !notesAgree(g.Notes[n], f.Notes[n], tol.Notes) {
				errs = append(errs, fmt.Errorf("%s: note %d: golden %q, regenerated %q (tol %v)",
					g.ID, n, g.Notes[n], f.Notes[n], tol.Notes))
			}
		}
	}
	return errs
}

func colName(header []string, c int) string {
	if c < len(header) {
		return header[c]
	}
	return strconv.Itoa(c)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cellsAgree reports whether two cell strings match: byte-equal, or — when
// the table carries a tolerance — numerically close with identical unit
// suffixes ("42.24%" vs "42.25%", "1.82x" vs "1.83x").
func cellsAgree(a, b string, tol float64) bool {
	if a == b {
		return true
	}
	if tol <= 0 {
		return false
	}
	av, asuf, aok := splitNumber(a)
	bv, bsuf, bok := splitNumber(b)
	return aok && bok && asuf == bsuf && within(av, bv, tol)
}

// notesAgree compares note strings with every embedded number relaxed by tol
// and the interleaved text required to match exactly.
func notesAgree(a, b string, tol float64) bool {
	if a == b {
		return true
	}
	if tol <= 0 {
		return false
	}
	at, an := tokenizeNumbers(a)
	bt, bn := tokenizeNumbers(b)
	if at != bt || len(an) != len(bn) {
		return false
	}
	for i := range an {
		if !within(an[i], bn[i], tol) {
			return false
		}
	}
	return true
}

// within reports |a-b| <= tol·max(1, |a|, |b|): relative for large values,
// degrading to an absolute budget of tol itself for magnitudes below one
// (so 0.00 and 0.01 agree at tol 0.02, but 0.0 and 0.1 do not).
func within(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// splitNumber splits a cell into its leading decimal number and the
// remaining unit suffix. It fails (ok=false) when the cell does not start
// with a number.
func splitNumber(s string) (v float64, suffix string, ok bool) {
	i := 0
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		i++
	}
	digits := false
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
		digits = true
	}
	if i < len(s) && s[i] == '.' {
		i++
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
			digits = true
		}
	}
	if !digits {
		return 0, "", false
	}
	v, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, "", false
	}
	return v, s[i:], true
}

// tokenizeNumbers replaces every decimal number in s with the placeholder
// '#' and returns the resulting text skeleton plus the extracted numbers.
func tokenizeNumbers(s string) (string, []float64) {
	var sb strings.Builder
	var nums []float64
	for i := 0; i < len(s); {
		c := s[i]
		if c >= '0' && c <= '9' {
			j := i
			for j < len(s) && s[j] >= '0' && s[j] <= '9' {
				j++
			}
			if j < len(s) && s[j] == '.' && j+1 < len(s) && s[j+1] >= '0' && s[j+1] <= '9' {
				j++
				for j < len(s) && s[j] >= '0' && s[j] <= '9' {
					j++
				}
			}
			v, err := strconv.ParseFloat(s[i:j], 64)
			if err != nil {
				return s, nil
			}
			nums = append(nums, v)
			sb.WriteByte('#')
			i = j
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return sb.String(), nums
}
