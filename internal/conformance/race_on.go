//go:build race

package conformance

// raceEnabled reports that this binary was built with the race detector.
// The golden suite skips itself under -race: regenerating every experiment
// is minutes of pure-compute wall time there and the byte-level diff adds
// nothing the non-race run does not already prove. The invariant and
// property layers DO run under -race (see internal/conformance/prop).
const raceEnabled = true
