package conformance

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"teco/internal/conformance/check"
	"teco/internal/experiments"
)

// TestKernelTrainingWorkersBitIdentity pins the numeric core's strongest
// contract end-to-end: real training on the blocked kernels and the fused
// clip+ADAM+scan pass reproduces the seed golden BIT-identically, at every
// worker count. fig2 is the pinned experiment because it exposes the raw
// byte-change distributions of the parameter stream — a single rounding
// difference anywhere in forward, backward, clip, ADAM or the dirty-byte
// path moves its counts. NoMemo forces a fresh training run per worker
// count (no shared-run cache hits standing in for the computation).
func TestKernelTrainingWorkersBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates fig2 once per worker count")
	}
	if raceEnabled {
		t.Skip("covered by the non-race run; -race retunes nothing")
	}
	pinned, err := os.ReadFile(goldenPath("fig2"))
	if err != nil {
		t.Fatalf("missing golden for fig2 (run `make golden`): %v", err)
	}
	golden, err := Unmarshal(pinned)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8} {
		w := w
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			t.Parallel()
			check.Enable(t)
			tables, err := experiments.ByIDWith("fig2", experiments.Options{
				Seed: GoldenSeed, Workers: w, NoMemo: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Marshal(tables)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(pinned, fresh) {
				return
			}
			// Byte inequality means a numeric drift somewhere in the
			// kernel/fused path; Diff localizes it.
			for _, diff := range Diff(golden, tables) {
				t.Error(diff)
			}
			if !t.Failed() {
				t.Error("fig2 output differs byte-wise from the pinned golden (formatting drift)")
			}
		})
	}
}
