// Package cpusim is the gem5-avx stand-in: a memory-traffic model of the
// 48-core AVX-512 CPU running gradient clipping and the ADAM optimizer
// (paper Fig 1 phases 4-5, Table II configuration). Besides phase times it
// produces the schedule of parameter cache-line writebacks — the artifact
// the paper extracts from gem5 as a timed memory trace and replays through
// the CXL emulator (§VIII-A).
package cpusim

import (
	"fmt"

	"teco/internal/modelzoo"
	"teco/internal/sim"
)

// CPU is a Xeon-6120-class (2-socket, 48 simulated cores) timing model.
type CPU struct {
	// MemBandwidth is effective DRAM bandwidth for the vectorized
	// optimizer (memory-bound).
	MemBandwidth float64
	// AdamBytesPerParam / ClipBytesPerParam are per-parameter DRAM
	// traffic of the two phases.
	AdamBytesPerParam float64
	ClipBytesPerParam float64
	// FillBandwidth is staging-buffer memcpy bandwidth (ZeRO-Offload
	// double-buffer filling).
	FillBandwidth float64
}

// Xeon6120 returns the calibrated default.
func Xeon6120() *CPU {
	return &CPU{
		MemBandwidth:      modelzoo.CPUMemBandwidth,
		AdamBytesPerParam: modelzoo.AdamBytesPerParam,
		ClipBytesPerParam: modelzoo.ClipBytesPerParam,
		FillBandwidth:     modelzoo.CPUFillBandwidth,
	}
}

// AdamTime returns the ADAM update time for n parameters.
func (c *CPU) AdamTime(n int64) sim.Time {
	if n <= 0 {
		panic(fmt.Sprintf("cpusim: %d params", n))
	}
	return sim.FromSeconds(float64(n) * c.AdamBytesPerParam / c.MemBandwidth)
}

// ClipTime returns the global-norm gradient clipping time for n parameters.
func (c *CPU) ClipTime(n int64) sim.Time {
	if n <= 0 {
		panic(fmt.Sprintf("cpusim: %d params", n))
	}
	return sim.FromSeconds(float64(n) * c.ClipBytesPerParam / c.MemBandwidth)
}

// FillTime returns the time to memcpy n bytes into a staging buffer.
func (c *CPU) FillTime(n int64) sim.Time {
	return sim.DurationForBytes(n, c.FillBandwidth)
}

// UpdateChunk is a block of parameters whose updated cache lines are
// written back during the ADAM pass.
type UpdateChunk struct {
	// ReadyAt is the offset from the start of the ADAM pass at which the
	// chunk's last line is written back.
	ReadyAt sim.Time
	// Bytes is the FP32 parameter volume of the chunk.
	Bytes int64
	// Layer is the owning layer (parameters update in layer order).
	Layer int
}

// UpdateSchedule returns per-layer parameter writeback chunks, equally
// spaced across the ADAM pass. Because the paper's optimizer is vectorized
// (AVX-512), whole cache lines are updated together and written back as the
// streaming pass evicts them — so writebacks track compute progress, which
// is what makes the update protocol's fine-grained overlap possible
// (§IV-B: "multiple parameters are updated at the same time, causing only
// one transfer of the cache line").
func (c *CPU) UpdateSchedule(m modelzoo.Model) []UpdateChunk {
	adam := c.AdamTime(m.Params)
	n := m.Layers
	per := m.ParamBytes() / int64(n)
	rem := m.ParamBytes() - per*int64(n)
	chunks := make([]UpdateChunk, 0, n)
	for i := 0; i < n; i++ {
		b := per
		if i == n-1 {
			b += rem
		}
		chunks = append(chunks, UpdateChunk{
			ReadyAt: sim.Time(int64(adam) * int64(i+1) / int64(n)),
			Bytes:   b,
			Layer:   i,
		})
	}
	return chunks
}
