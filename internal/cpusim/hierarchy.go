package cpusim

import (
	"teco/internal/cache"
	"teco/internal/mem"
	"teco/internal/sim"
	"teco/internal/trace"
)

// HierarchySim executes the ADAM pass through a simulated cache hierarchy —
// the gem5 methodology proper, as opposed to the analytic model: every
// parameter/gradient/moment access walks L1 -> L2 -> L3, dirty parameter
// lines surface as timed writebacks when the LLC evicts them (plus the
// end-of-pass flush), and the result is exactly the artifact the paper
// extracts from gem5: "a trace of main memory accesses ... contains the
// timings and addresses of memory loads/stores" (§VIII-A).
type HierarchySim struct {
	L1, L2, L3 *cache.Cache
	// Timing parameters (per cache-line access).
	L1Hit, L2Hit, L3Hit, MemAccess sim.Time
	// ComputePerLine is the vector-ALU time to update one line of
	// parameters (16 FP32 ADAM updates under AVX-512).
	ComputePerLine sim.Time

	now sim.Time
}

// NewHierarchySim builds the Table II hierarchy with DDR4-class latencies.
func NewHierarchySim() *HierarchySim {
	return &HierarchySim{
		L1:             cache.New(cache.Gem5L1()),
		L2:             cache.New(cache.Gem5L2()),
		L3:             cache.New(cache.Gem5L3()),
		L1Hit:          1 * sim.Nanosecond,
		L2Hit:          4 * sim.Nanosecond,
		L3Hit:          12 * sim.Nanosecond,
		MemAccess:      90 * sim.Nanosecond,
		ComputePerLine: 2 * sim.Nanosecond,
	}
}

// Now returns the simulated CPU time.
func (h *HierarchySim) Now() sim.Time { return h.now }

// access walks the hierarchy for one line, returning evicted-dirty L3
// victims (the memory writebacks).
func (h *HierarchySim) access(l mem.LineAddr, write bool) []mem.LineAddr {
	var wbs []mem.LineAddr
	if hit, _, _ := h.L1.Access(l, write); hit {
		h.now += h.L1Hit
		return nil
	}
	// L1 miss: fill from L2 (L1 victims are absorbed by inclusive L2/L3
	// in this model; only L3 evictions reach memory).
	if hit, _, _ := h.L2.Access(l, write); hit {
		h.now += h.L2Hit
		return nil
	}
	hit, ev, evicted := h.L3.Access(l, write)
	if hit {
		h.now += h.L3Hit
		return nil
	}
	h.now += h.MemAccess
	if evicted && ev.Dirty {
		wbs = append(wbs, ev.Addr)
	}
	return wbs
}

// AdamRegions describes the five tensor regions the optimizer streams
// through (all sized for n parameters).
type AdamRegions struct {
	Params, Grads, M, V mem.Region
}

// LayoutAdam allocates the optimizer working set on a fresh address map:
// parameters in the giant-cache region, the rest in host DRAM.
func LayoutAdam(nParams int64) (*mem.Map, AdamRegions) {
	amap := mem.NewMap()
	bytes := nParams * 4
	r := AdamRegions{
		Params: amap.Allocate("params", mem.RegionGiantCache, bytes),
		Grads:  amap.Allocate("grads", mem.RegionHostDRAM, bytes),
		M:      amap.Allocate("adam-m", mem.RegionHostDRAM, bytes),
		V:      amap.Allocate("adam-v", mem.RegionHostDRAM, bytes),
	}
	return amap, r
}

// RunAdamPass streams one vectorized ADAM update over n parameters through
// the hierarchy and returns the timed trace of *parameter-region*
// writebacks (the lines the CXL home agent would route to the giant cache,
// Fig 8), including the end-of-pass cache flush. Off-region writebacks
// (gradients, moments) go to host DRAM and are not traced.
func (h *HierarchySim) RunAdamPass(amap *mem.Map, r AdamRegions, nParams int64) *trace.Trace {
	tr := &trace.Trace{}
	record := func(lines []mem.LineAddr) {
		for _, wb := range lines {
			if amap.InGiantCache(wb) {
				tr.Append(h.now, trace.Store, wb)
			}
		}
	}
	lines := mem.LinesIn(nParams * 4)
	for i := int64(0); i < lines; i++ {
		off := mem.LineAddr(i)
		// Vectorized per-line ADAM: read grad, read+write param, m, v.
		record(h.access(r.Grads.Base.Line()+off, false))
		record(h.access(r.Params.Base.Line()+off, true))
		record(h.access(r.M.Base.Line()+off, true))
		record(h.access(r.V.Base.Line()+off, true))
		h.now += h.ComputePerLine
	}
	// End-of-iteration flush (paper §IV-A2): push every resident dirty
	// line; only giant-cache lines enter the CXL trace. A line dirty in
	// an upper level and still resident in L3 is recorded once, by the
	// L3 flush.
	for _, c := range []*cache.Cache{h.L1, h.L2} {
		for _, ev := range c.FlushAll() {
			if ev.Dirty && amap.InGiantCache(ev.Addr) && !h.L3.Contains(ev.Addr) {
				tr.Append(h.now, trace.Store, ev.Addr)
			}
		}
	}
	for _, ev := range h.L3.FlushAll() {
		if ev.Dirty && amap.InGiantCache(ev.Addr) {
			tr.Append(h.now, trace.Store, ev.Addr)
		}
	}
	return tr
}
