package cpusim

import (
	"testing"

	"teco/internal/modelzoo"
	"teco/internal/sim"
)

func TestAdamTimeCalibration(t *testing.T) {
	c := Xeon6120()
	m := modelzoo.BertLargeCased()
	// 334M params * 20 B / 90 GB/s ~= 74 ms.
	got := c.AdamTime(m.Params).Milliseconds()
	if got < 60 || got > 90 {
		t.Fatalf("Bert ADAM time = %.1fms, calibration drifted", got)
	}
	// Linear in params.
	if c.AdamTime(2*m.Params) != 2*c.AdamTime(m.Params) {
		t.Fatal("ADAM time must be linear in parameter count")
	}
}

func TestClipCheaperThanAdam(t *testing.T) {
	c := Xeon6120()
	n := int64(100e6)
	if c.ClipTime(n) >= c.AdamTime(n) {
		t.Fatal("clipping touches less memory than ADAM")
	}
}

func TestPanicsOnNonPositive(t *testing.T) {
	c := Xeon6120()
	for _, fn := range []func(){
		func() { c.AdamTime(0) },
		func() { c.ClipTime(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFillFasterThanBaselineLink(t *testing.T) {
	c := Xeon6120()
	// "The buffer filling is much faster than the parameter transfer."
	n := int64(64 << 20)
	fill := c.FillTime(n)
	xfer := sim.DurationForBytes(n, modelzoo.BaselineLinkBandwidth())
	if fill >= xfer {
		t.Fatalf("fill %v must beat transfer %v", fill, xfer)
	}
}

func TestUpdateSchedule(t *testing.T) {
	c := Xeon6120()
	m := modelzoo.T5Large()
	chunks := c.UpdateSchedule(m)
	if len(chunks) != m.Layers {
		t.Fatalf("%d chunks", len(chunks))
	}
	var total int64
	adam := c.AdamTime(m.Params)
	prev := sim.Time(-1)
	for i, ch := range chunks {
		total += ch.Bytes
		if ch.ReadyAt <= prev || ch.ReadyAt > adam {
			t.Fatalf("chunk %d schedule broken: %v (adam %v)", i, ch.ReadyAt, adam)
		}
		prev = ch.ReadyAt
		if ch.Layer != i {
			t.Fatal("parameters update in layer order")
		}
	}
	if total != m.ParamBytes() {
		t.Fatalf("chunk bytes %d != param bytes %d", total, m.ParamBytes())
	}
	if chunks[len(chunks)-1].ReadyAt != adam {
		t.Fatal("last writeback lands at ADAM end")
	}
}

// The producer-rate comparison behind the paper's Fig 12 result: CPU ADAM
// produces dirty parameter lines faster than the CXL link drains them, so
// TECO-CXL's parameter phase is link-bound; halving bytes with DBA flips it
// to compute-bound (fully hidden).
func TestAdamOutpacesLinkWithoutDBA(t *testing.T) {
	c := Xeon6120()
	m := modelzoo.BertLargeCased()
	adam := c.AdamTime(m.Params)
	linkFull := sim.DurationForBytes(m.ParamBytes(), modelzoo.CXLLinkBandwidth())
	linkDBA := sim.DurationForBytes(m.ParamBytes()/2, modelzoo.CXLLinkBandwidth())
	if linkFull <= adam {
		t.Fatalf("full-line link time %v should exceed ADAM %v (link-bound)", linkFull, adam)
	}
	if linkDBA >= adam {
		t.Fatalf("DBA link time %v should hide behind ADAM %v (compute-bound)", linkDBA, adam)
	}
}
