package cpusim

import (
	"testing"

	"teco/internal/cxl"
	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/sim"
	"teco/internal/trace"
)

func runPass(t *testing.T, nParams int64) *trace.Trace {
	t.Helper()
	h := NewHierarchySim()
	amap, regions := LayoutAdam(nParams)
	return h.RunAdamPass(amap, regions, nParams)
}

// TestHierarchyTraceCoversEveryParameterLine: each parameter cache line is
// written exactly once per pass and must surface as exactly one memory
// writeback (eviction or flush) — no loss, no duplication.
func TestHierarchyTraceCoversEveryParameterLine(t *testing.T) {
	const nParams = 1 << 18 // 256K params = 16384 lines, 16x the L3... 1MB, fits L3
	tr := runPass(t, nParams)
	lines := mem.LinesIn(nParams * 4)
	if int64(tr.Len()) != lines {
		t.Fatalf("trace has %d writebacks, want %d", tr.Len(), lines)
	}
	seen := map[mem.LineAddr]bool{}
	for _, r := range tr.Records() {
		if r.Op != trace.Store {
			t.Fatal("trace must contain stores only")
		}
		if seen[r.Line] {
			t.Fatalf("line %d written back twice", r.Line)
		}
		seen[r.Line] = true
	}
}

// TestHierarchyTraceLargerThanLLC: when the parameter set exceeds the
// 16MB L3, most writebacks happen during the pass (evictions), not at the
// flush — the streaming behaviour that lets TECO overlap transfers with
// the optimizer.
func TestHierarchyTraceLargerThanLLC(t *testing.T) {
	const nParams = 8 << 20 // 32 MB of params: 2x the L3
	h := NewHierarchySim()
	amap, regions := LayoutAdam(nParams)
	tr := h.RunAdamPass(amap, regions, nParams)
	lines := mem.LinesIn(nParams * 4)
	if int64(tr.Len()) != lines {
		t.Fatalf("writebacks = %d, want %d", tr.Len(), lines)
	}
	end := h.Now()
	early := 0
	for _, r := range tr.Records() {
		if r.At < end*9/10 {
			early++
		}
	}
	if frac := float64(early) / float64(tr.Len()); frac < 0.3 {
		t.Fatalf("only %.2f of writebacks stream during the pass", frac)
	}
}

// TestHierarchyTimestampsMonotone: the trace is causally ordered.
func TestHierarchyTimestampsMonotone(t *testing.T) {
	tr := runPass(t, 1<<16)
	recs := tr.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatal("sorted trace timestamps must be nondecreasing")
		}
	}
	if recs[len(recs)-1].At <= 0 {
		t.Fatal("timestamps must advance")
	}
}

// TestHierarchyTraceReplaysOverCXL: the full paper pipeline — hierarchy
// simulation -> timed writeback trace -> CXL replay — runs end to end, and
// DBA halves the replayed volume.
func TestHierarchyTraceReplaysOverCXL(t *testing.T) {
	tr := runPass(t, 1<<18)
	full := trace.ReplayOverCXL(tr, cxl.NewLink(sim.New(), modelzoo.CXLLinkBandwidth(), cxl.DefaultQueueCap), 64, 0)
	dba := trace.ReplayOverCXL(tr, cxl.NewLink(sim.New(), modelzoo.CXLLinkBandwidth(), cxl.DefaultQueueCap), 32, sim.Nanosecond)
	if full.Bytes != dba.Bytes*2 {
		t.Fatalf("volumes: %d vs %d", full.Bytes, dba.Bytes)
	}
	if dba.Finish > full.Finish {
		t.Fatal("DBA replay must not finish later")
	}
	if full.Lines != int64(tr.Len()) {
		t.Fatal("replay must cover the whole trace")
	}
}

// TestHierarchyStreamingBeatsFlushStorm: streamed writebacks spread link
// work across the pass; deferring everything to one flush (what a
// non-coherent design does) serializes it at the end. The drain tail after
// the producer finishes must be shorter with streaming.
func TestHierarchyStreamingBeatsFlushStorm(t *testing.T) {
	const nParams = 8 << 20
	h := NewHierarchySim()
	amap, regions := LayoutAdam(nParams)
	tr := h.RunAdamPass(amap, regions, nParams)

	streamed := trace.ReplayOverCXL(tr, cxl.NewLink(sim.New(), modelzoo.CXLLinkBandwidth(), cxl.DefaultQueueCap), 64, 0)

	// Flush-storm counterfactual: same lines, all ready at pass end.
	storm := &trace.Trace{}
	end := h.Now()
	for _, r := range tr.Records() {
		storm.Append(end, trace.Store, r.Line)
	}
	stormRes := trace.ReplayOverCXL(storm, cxl.NewLink(sim.New(), modelzoo.CXLLinkBandwidth(), cxl.DefaultQueueCap), 64, 0)
	if streamed.ExposedAfter >= stormRes.ExposedAfter {
		t.Fatalf("streaming tail %v should beat flush-storm tail %v",
			streamed.ExposedAfter, stormRes.ExposedAfter)
	}
}
