package dba

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"teco/internal/mem"
)

func TestRegisterEncodeDecode(t *testing.T) {
	// The paper's canonical value: active + 2 dirty bytes = 1010b.
	r := Register{Active: true, DirtyBytes: 2}
	if r.Encode() != 0b1010 {
		t.Fatalf("encode = %04b, want 1010", r.Encode())
	}
	if got := DecodeRegister(0b1010); got != r {
		t.Fatalf("decode = %+v", got)
	}
	if (Register{}).Encode() != 0 {
		t.Fatal("inactive zero register must encode to 0")
	}
	for v := uint8(0); v < 16; v++ {
		if DecodeRegister(v).Encode() != v {
			t.Fatalf("register value %04b does not round-trip", v)
		}
	}
}

func TestRegisterValidate(t *testing.T) {
	if err := (Register{Active: true, DirtyBytes: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Register{Active: true, DirtyBytes: 0}).Validate(); err == nil {
		t.Fatal("active with 0 dirty bytes must be invalid")
	}
	if err := (Register{Active: false, DirtyBytes: 0}).Validate(); err != nil {
		t.Fatal("inactive register is always valid")
	}
}

func TestRegisterPayloadBytes(t *testing.T) {
	if (Register{}).PayloadBytes() != 64 {
		t.Fatal("inactive => full line")
	}
	if (Register{Active: true, DirtyBytes: 2}).PayloadBytes() != 32 {
		t.Fatal("2 dirty bytes => 32-byte payload")
	}
	if (Register{Active: true, DirtyBytes: 1}).PayloadBytes() != 16 {
		t.Fatal("1 dirty byte => 16-byte payload")
	}
}

// makeLine builds a 64-byte line of 16 FP32 values.
func makeLine(vals [16]float32) []byte {
	line := make([]byte, mem.LineSize)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(line[i*4:], math.Float32bits(v))
	}
	return line
}

func TestAggregateTakesLeastSignificantBytes(t *testing.T) {
	line := make([]byte, mem.LineSize)
	for i := range line {
		line[i] = byte(i)
	}
	got := Aggregate(line, 2)
	if len(got) != 32 {
		t.Fatalf("payload = %d bytes", len(got))
	}
	// Word w occupies bytes 4w..4w+3; its least-significant two bytes in
	// little-endian order are 4w and 4w+1.
	for w := 0; w < WordsPerLine; w++ {
		if got[2*w] != byte(4*w) || got[2*w+1] != byte(4*w+1) {
			t.Fatalf("word %d: payload bytes %d,%d", w, got[2*w], got[2*w+1])
		}
	}
}

func TestDisaggregateMerge(t *testing.T) {
	oldVals := [16]float32{}
	newVals := [16]float32{}
	for i := range oldVals {
		oldVals[i] = float32(i) + 0.5
		newVals[i] = oldVals[i] + 1e-6 // mantissa-only change
	}
	oldLine := makeLine(oldVals)
	newLine := makeLine(newVals)

	payload := Aggregate(newLine, 2)
	rec := Disaggregate(oldLine, payload, 2)

	// The reconstructed line must carry the new low bytes and the old
	// high bytes of every word.
	for w := 0; w < WordsPerLine; w++ {
		if rec[4*w] != newLine[4*w] || rec[4*w+1] != newLine[4*w+1] {
			t.Fatalf("word %d low bytes not updated", w)
		}
		if rec[4*w+2] != oldLine[4*w+2] || rec[4*w+3] != oldLine[4*w+3] {
			t.Fatalf("word %d high bytes overwritten", w)
		}
	}
	// old must be untouched.
	if !bytes.Equal(oldLine, makeLine(oldVals)) {
		t.Fatal("Disaggregate mutated its input")
	}
}

// Property: when a parameter's change is confined to its least-significant
// n bytes, Aggregate+Disaggregate reconstructs the new line exactly.
func TestLosslessWhenChangeConfinedProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		oldLine := make([]byte, mem.LineSize)
		rng.Read(oldLine)
		newLine := make([]byte, mem.LineSize)
		copy(newLine, oldLine)
		// Mutate only the low n bytes of each word.
		for w := 0; w < WordsPerLine; w++ {
			for b := 0; b < n; b++ {
				newLine[w*4+b] = byte(rng.Intn(256))
			}
		}
		rec := Disaggregate(oldLine, Aggregate(newLine, n), n)
		return bytes.Equal(rec, newLine)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reconstruction always equals (new low bytes | old high bytes),
// for arbitrary old/new lines — the approximation semantics the accuracy
// experiments rely on.
func TestMergeSemanticsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%4) + 1
		rng := rand.New(rand.NewSource(seed))
		oldLine := make([]byte, mem.LineSize)
		newLine := make([]byte, mem.LineSize)
		rng.Read(oldLine)
		rng.Read(newLine)
		rec := Disaggregate(oldLine, Aggregate(newLine, n), n)
		for w := 0; w < WordsPerLine; w++ {
			for b := 0; b < 4; b++ {
				want := oldLine[w*4+b]
				if b < n {
					want = newLine[w*4+b]
				}
				if rec[w*4+b] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyBytes4IsFullLine(t *testing.T) {
	line := make([]byte, mem.LineSize)
	rand.New(rand.NewSource(1)).Read(line)
	payload := Aggregate(line, 4)
	if !bytes.Equal(payload, line) {
		t.Fatal("n=4 aggregation must be the identity")
	}
	zero := make([]byte, mem.LineSize)
	if !bytes.Equal(Disaggregate(zero, payload, 4), line) {
		t.Fatal("n=4 disaggregation must fully overwrite")
	}
}

func TestMergeInPlace(t *testing.T) {
	oldLine := make([]byte, mem.LineSize)
	newLine := make([]byte, mem.LineSize)
	rng := rand.New(rand.NewSource(9))
	rng.Read(oldLine)
	rng.Read(newLine)
	dst := make([]byte, mem.LineSize)
	copy(dst, oldLine)
	Merge(dst, Aggregate(newLine, 2), 2)
	want := Disaggregate(oldLine, Aggregate(newLine, 2), 2)
	if !bytes.Equal(dst, want) {
		t.Fatal("Merge disagrees with Disaggregate")
	}
}

func TestAggregatePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Aggregate(make([]byte, 10), 2) },
		func() { Aggregate(make([]byte, 64), 0) },
		func() { Aggregate(make([]byte, 64), 5) },
		func() { Disaggregate(make([]byte, 64), make([]byte, 5), 2) },
		func() { Disaggregate(make([]byte, 10), make([]byte, 32), 2) },
		func() { Disaggregate(make([]byte, 64), make([]byte, 32), 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestControllerActivation(t *testing.T) {
	c := NewController(-1, 0) // defaults: 500 steps, 2 bytes
	if c.ActAfterSteps != DefaultActAfterSteps {
		t.Fatalf("default act_aft_steps = %d", c.ActAfterSteps)
	}
	if c.Register.DirtyBytes != DefaultDirtyBytes {
		t.Fatalf("default dirty_bytes = %d", c.Register.DirtyBytes)
	}
	for step := 0; step < 500; step++ {
		if c.CheckActivation(step) {
			t.Fatalf("DBA active at step %d, before act_aft_steps", step)
		}
	}
	if !c.CheckActivation(500) {
		t.Fatal("DBA must activate at step 500")
	}
	if c.ActivatedAt() != 500 {
		t.Fatalf("activatedAt = %d", c.ActivatedAt())
	}
	if !c.Active() || !c.CheckActivation(501) {
		t.Fatal("DBA must stay active")
	}
}

func TestControllerImmediateActivation(t *testing.T) {
	c := NewController(0, 2)
	if !c.CheckActivation(0) {
		t.Fatal("act_aft_steps=0 must activate at step 0")
	}
}

func TestLatencyConstants(t *testing.T) {
	// §VIII-D: Aggregator 1.28 ns, Disaggregator 1.126 ns, modelled 1 ns;
	// both must be under the ~4 ns per-line link slot so pipelining hides
	// them.
	if AggregatorLatencyPs != 1280 || DisaggregatorLatencyPs != 1126 {
		t.Fatal("synthesis latencies changed")
	}
	if ModelledLatency.Nanoseconds() != 1 {
		t.Fatal("modelled latency must be 1ns")
	}
	if AggregatorLatencyPs >= 4000 || DisaggregatorLatencyPs >= 4000 {
		t.Fatal("latencies must amortize under the 4ns line slot")
	}
}
