// Package dba implements dirty-byte aggregation (paper §V): the Aggregator
// in the CPU-side CXL module that packs only the least-significant
// `dirty_bytes` bytes of each 4-byte parameter into a CXL packet, the
// Disaggregator in the accelerator-side CXL module that merges those bytes
// into the stale cache-line copy held in the giant cache, the 4-bit DBA
// configuration register, and the runtime activation rule driven by
// `act_aft_steps`.
//
// Byte order: parameters are FP32 values stored little-endian, so the
// "least-significant two bytes" the paper identifies as the frequently
// changing mantissa bytes are bytes [0,1] of each 4-byte word in memory.
package dba

import (
	"bytes"
	"fmt"

	"teco/internal/conformance/check"
	"teco/internal/mem"
	"teco/internal/sim"
)

// WordSize is the data unit DBA operates on: one FP32 parameter.
const WordSize = 4

// WordsPerLine is the number of FP32 parameters per 64-byte cache line.
const WordsPerLine = mem.LineSize / WordSize

// Hardware latencies from the paper's Vivado synthesis scaled to ASIC
// (§VIII-D). End-to-end evaluation charges ModelledLatency per cache line,
// matching the paper's methodology.
const (
	AggregatorLatencyPs    = 1280 // 1.28 ns
	DisaggregatorLatencyPs = 1126 // 1.126 ns
	// ModelledLatency is the 1 ns the paper adds per line in simulation.
	ModelledLatency = sim.Nanosecond
)

// Register is the 4-bit DBA configuration register: the most significant
// bit activates DBA, the low three bits hold the dirty-byte length (0-4).
// The paper's example value 1010b means "active, 2 dirty bytes".
type Register struct {
	Active     bool
	DirtyBytes uint8
}

// Encode packs the register into its 4-bit hardware representation.
func (r Register) Encode() uint8 {
	v := r.DirtyBytes & 0x7
	if r.Active {
		v |= 1 << 3
	}
	return v
}

// DecodeRegister unpacks a 4-bit register value.
func DecodeRegister(v uint8) Register {
	return Register{Active: v&(1<<3) != 0, DirtyBytes: v & 0x7}
}

// Validate checks the register holds a usable configuration.
func (r Register) Validate() error {
	if r.Active && (r.DirtyBytes == 0 || r.DirtyBytes > 4) {
		return fmt.Errorf("dba: active register with invalid dirty-byte length %d", r.DirtyBytes)
	}
	return nil
}

// PayloadBytes returns the per-line payload size under this register: 64
// bytes when inactive, WordsPerLine*DirtyBytes when active (32 bytes for
// the canonical dirty_bytes=2).
func (r Register) PayloadBytes() int {
	if !r.Active {
		return mem.LineSize
	}
	return WordsPerLine * int(r.DirtyBytes)
}

// Aggregate implements the CPU-side Aggregator (Fig 7a): for each 4-byte
// word of the 64-byte line, take the least-significant n bytes and
// concatenate them. The paper implements this with simple logic gates; the
// Go version is the functional equivalent.
func Aggregate(line []byte, n int) []byte {
	return AppendAggregate(make([]byte, 0, WordsPerLine*n), line, n)
}

// AppendAggregate is Aggregate writing into dst's spare capacity, for
// callers that aggregate one line per iteration and want a steady-state
// zero-allocation loop.
func AppendAggregate(dst, line []byte, n int) []byte {
	if len(line) != mem.LineSize {
		panic(fmt.Sprintf("dba: aggregate needs a %d-byte line, got %d", mem.LineSize, len(line)))
	}
	if n <= 0 || n > WordSize {
		panic(fmt.Sprintf("dba: invalid dirty-byte length %d", n))
	}
	for w := 0; w < WordsPerLine; w++ {
		base := w * WordSize
		dst = append(dst, line[base:base+n]...)
	}
	return dst
}

// Disaggregate implements the accelerator-side Disaggregator (Fig 7b): it
// reads the stale 64-byte line from the giant cache, overwrites the
// least-significant n bytes of every word with the aggregated payload, and
// returns the reconstructed line. old is not modified.
//
// This is the paper's three-step logic — reset n bytes per word, shift each
// payload group to its word position, OR the two — expressed byte-wise.
func Disaggregate(old, payload []byte, n int) []byte {
	if len(old) != mem.LineSize {
		panic(fmt.Sprintf("dba: disaggregate needs a %d-byte line, got %d", mem.LineSize, len(old)))
	}
	if n <= 0 || n > WordSize {
		panic(fmt.Sprintf("dba: invalid dirty-byte length %d", n))
	}
	if len(payload) != WordsPerLine*n {
		panic(fmt.Sprintf("dba: payload %dB, want %dB", len(payload), WordsPerLine*n))
	}
	return disaggregateInto(make([]byte, mem.LineSize), old, payload, n)
}

// DisaggregateInto is Disaggregate reconstructing the line into dst (which
// must hold a full cache line), avoiding the per-line allocation. dst may
// not alias old.
func DisaggregateInto(dst, old, payload []byte, n int) []byte {
	if len(old) != mem.LineSize {
		panic(fmt.Sprintf("dba: disaggregate needs a %d-byte line, got %d", mem.LineSize, len(old)))
	}
	if n <= 0 || n > WordSize {
		panic(fmt.Sprintf("dba: invalid dirty-byte length %d", n))
	}
	if len(payload) != WordsPerLine*n {
		panic(fmt.Sprintf("dba: payload %dB, want %dB", len(payload), WordsPerLine*n))
	}
	if len(dst) != mem.LineSize {
		panic(fmt.Sprintf("dba: disaggregate destination %dB, want %d", len(dst), mem.LineSize))
	}
	return disaggregateInto(dst, old, payload, n)
}

func disaggregateInto(dst, old, payload []byte, n int) []byte {
	copy(dst, old)
	for w := 0; w < WordsPerLine; w++ {
		copy(dst[w*WordSize:w*WordSize+n], payload[w*n:(w+1)*n])
	}
	if check.Enabled() {
		checkMerged(dst, old, payload, n)
	}
	return dst
}

// checkMerged asserts the Disaggregator post-condition: the merged line
// carries exactly the payload in the low n bytes of every word and the
// stale line's bytes everywhere else. The post-condition implies merge
// idempotence — re-disaggregating the merged line with the same payload is
// a fixed point — which the conformance suite additionally exercises
// end-to-end.
func checkMerged(dst, old, payload []byte, n int) {
	check.Check(func() error {
		for w := 0; w < WordsPerLine; w++ {
			base := w * WordSize
			if !bytes.Equal(dst[base:base+n], payload[w*n:(w+1)*n]) {
				return fmt.Errorf("dba: word %d low bytes diverge from payload after merge", w)
			}
			if !bytes.Equal(dst[base+n:base+WordSize], old[base+n:base+WordSize]) {
				return fmt.Errorf("dba: word %d high bytes diverge from stale line after merge", w)
			}
		}
		return nil
	})
}

// Merge applies Disaggregate in place on dst.
func Merge(dst, payload []byte, n int) {
	res := Disaggregate(dst, payload, n)
	copy(dst, res)
}

// Controller decides when DBA turns on, mirroring TECO's check_activation()
// API (paper §V-A and Listing 1): DBA activates once the training step
// reaches ActAfterSteps. The default of 500 is the paper's default.
type Controller struct {
	// ActAfterSteps is the `act_aft_steps` hyperparameter.
	ActAfterSteps int
	// Register mirrors the hardware DBA register; CheckActivation flips
	// its Active bit.
	Register Register
	// activatedAt records the step DBA switched on (-1 before).
	activatedAt int
}

// DefaultActAfterSteps is the paper's default `act_aft_steps`.
const DefaultActAfterSteps = 500

// DefaultDirtyBytes is the paper's default `dirty_bytes` for DL training.
const DefaultDirtyBytes = 2

// NewController builds a controller. actAfterSteps < 0 selects the default
// 500; dirtyBytes <= 0 selects the default 2.
func NewController(actAfterSteps, dirtyBytes int) *Controller {
	if actAfterSteps < 0 {
		actAfterSteps = DefaultActAfterSteps
	}
	if dirtyBytes <= 0 {
		dirtyBytes = DefaultDirtyBytes
	}
	return &Controller{
		ActAfterSteps: actAfterSteps,
		Register:      Register{Active: false, DirtyBytes: uint8(dirtyBytes)},
		activatedAt:   -1,
	}
}

// CheckActivation is called once per training step (after backward, as in
// Listing 1). It returns true when DBA is active for the *next* parameter
// transfer.
func (c *Controller) CheckActivation(step int) bool {
	if !c.Register.Active && step >= c.ActAfterSteps {
		c.Register.Active = true
		c.activatedAt = step
	}
	return c.Register.Active
}

// Active reports the current activation state.
func (c *Controller) Active() bool { return c.Register.Active }

// Restore rewinds the controller to a checkpointed activation state:
// activatedAt < 0 means DBA had not yet switched on, any other value
// re-activates the register as of that step. Checkpoint restore uses this
// so a resumed run replays the exact activation history.
func (c *Controller) Restore(activatedAt int) {
	if activatedAt < 0 {
		c.Register.Active = false
		c.activatedAt = -1
		return
	}
	c.Register.Active = true
	c.activatedAt = activatedAt
}

// ActivatedAt returns the step DBA switched on, or -1.
func (c *Controller) ActivatedAt() int { return c.activatedAt }
