package dba

import (
	"math"
	"math/rand"
	"testing"
)

func randomWords(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(rng.Uint32())
	}
	return out
}

// TestMergeWordsParallelBitIdentical merges the same tensors serially and in
// parallel for every dirty-byte width and requires bit-equal results.
func TestMergeWordsParallelBitIdentical(t *testing.T) {
	const n = 3*16384 + 291
	master := randomWords(n, 2)
	for dirty := 1; dirty <= WordSize; dirty++ {
		for _, workers := range []int{2, 8} {
			ser := randomWords(n, 1)
			par := append([]float32(nil), ser...)
			MergeWords(ser, master, dirty, 1)
			MergeWords(par, master, dirty, workers)
			for i := range ser {
				if math.Float32bits(ser[i]) != math.Float32bits(par[i]) {
					t.Fatalf("dirty=%d workers=%d: word %d differs", dirty, workers, i)
				}
			}
		}
	}
}

func TestMergeWordsSemantics(t *testing.T) {
	compute := []float32{math.Float32frombits(0xAABBCCDD)}
	master := []float32{math.Float32frombits(0x11223344)}
	MergeWords(compute, master, 2, 1)
	if got := math.Float32bits(compute[0]); got != 0xAABB3344 {
		t.Fatalf("merge = %08x", got)
	}
	MergeWords(compute, master, 4, 1)
	if math.Float32bits(compute[0]) != 0x11223344 {
		t.Fatal("n=4 must copy fully")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dirty bytes outside 1..4")
		}
	}()
	MergeWords(compute, master, 5, 1)
}

// TestFirstMergeMismatchDeterministic plants violations in several chunks
// and requires the lowest index at every worker count.
func TestFirstMergeMismatchDeterministic(t *testing.T) {
	const n = 4 * 16384
	master := randomWords(n, 3)
	compute := append([]float32(nil), master...)
	MergeWords(compute, master, 2, 1)
	for _, workers := range []int{1, 2, 8} {
		if got := FirstMergeMismatch(compute, master, 2, workers); got != -1 {
			t.Fatalf("workers=%d: clean merge reported %d", workers, got)
		}
	}
	// Corrupt a low byte at two positions in different chunks.
	flip := func(i int) {
		compute[i] = math.Float32frombits(math.Float32bits(compute[i]) ^ 0x01)
	}
	flip(3 * 16384)
	flip(16384 + 7)
	for _, workers := range []int{1, 2, 8} {
		if got := FirstMergeMismatch(compute, master, 2, workers); got != 16384+7 {
			t.Fatalf("workers=%d: got %d, want %d", workers, got, 16384+7)
		}
	}
}

// TestScanChangedParallelBitIdentical compares the byte-change distribution
// of a serial and parallel scan — counts are integers, so they must match
// exactly.
func TestScanChangedParallelBitIdentical(t *testing.T) {
	const n = 5*16384 + 17
	old := randomWords(n, 4)
	new := append([]float32(nil), old...)
	rng := rand.New(rand.NewSource(5))
	for i := range new {
		// A mix of untouched, low-byte, and high-byte changes.
		switch rng.Intn(3) {
		case 1:
			new[i] = math.Float32frombits(math.Float32bits(new[i]) ^ uint32(1+rng.Intn(0xFFFF)))
		case 2:
			new[i] = math.Float32frombits(rng.Uint32())
		}
	}
	want := ScanChanged(old, new, 1)
	for _, workers := range []int{2, 8} {
		got := ScanChanged(old, new, workers)
		if got != want {
			t.Fatalf("workers=%d: distribution %+v, want %+v", workers, got, want)
		}
	}
}

func benchmarkScanChanged(b *testing.B, workers int) {
	const n = 1 << 20
	old := randomWords(n, 8)
	new := randomWords(n, 9)
	b.SetBytes(int64(n) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScanChanged(old, new, workers)
	}
}

func BenchmarkScanChangedSerial(b *testing.B)   { benchmarkScanChanged(b, 1) }
func BenchmarkScanChangedParallel(b *testing.B) { benchmarkScanChanged(b, -1) }

func benchmarkMergeWords(b *testing.B, workers int) {
	const n = 1 << 20
	master := randomWords(n, 10)
	compute := randomWords(n, 11)
	b.SetBytes(int64(n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeWords(compute, master, 2, workers)
	}
}

func BenchmarkMergeWordsSerial(b *testing.B)   { benchmarkMergeWords(b, 1) }
func BenchmarkMergeWordsParallel(b *testing.B) { benchmarkMergeWords(b, -1) }
