// Word-granular DBA operations over flat FP32 parameter vectors — the
// software twin of the Aggregator/Disaggregator line path that the real
// fine-tuning proxy (internal/realtrain) runs every step. These are the
// per-step hot loops, so each takes a workers knob and runs over chunked
// goroutines with the serial fallback at workers <= 1; every operation is
// element-wise or combines with exact arithmetic (integer counters,
// min-index), so results are bit-identical at any worker count.

package dba

import (
	"fmt"
	"math"

	"teco/internal/conformance/check"
	"teco/internal/parallel"
	"teco/internal/tensor"
)

// wordMask returns the bit mask of the low n dirty bytes of an FP32 word.
func wordMask(n int) uint32 {
	if n <= 0 || n > WordSize {
		panic(fmt.Sprintf("dba: invalid dirty-byte length %d", n))
	}
	if n == WordSize {
		return ^uint32(0)
	}
	return uint32(1)<<(uint(n)*8) - 1
}

// MergeWords applies the Disaggregator semantics word-by-word over whole
// tensors: the low n bytes of each master value overwrite the compute
// copy's low bytes; the high bytes keep whatever the accelerator last had.
// compute and master must have equal length.
func MergeWords(compute, master []float32, n, workers int) {
	if len(compute) != len(master) {
		panic(fmt.Sprintf("dba: merge %d words into %d", len(master), len(compute)))
	}
	if n == WordSize {
		// Full words: plain copy (per chunk, still element-wise).
		if parallel.HotResolve(workers) <= 1 {
			copy(compute, master)
		} else {
			parallel.ForChunks(workers, len(compute), func(lo, hi int) {
				copy(compute[lo:hi], master[lo:hi])
			})
		}
		return
	}
	mask := wordMask(n)
	// The serial path (every step of a Workers<=1 trainer) runs the merge
	// loop directly — no closure, no allocation.
	if parallel.HotResolve(workers) <= 1 {
		mergeRange(compute, master, mask, 0, len(compute))
	} else {
		parallel.ForChunks(workers, len(compute), func(lo, hi int) {
			mergeRange(compute, master, mask, lo, hi)
		})
	}
	if check.Enabled() {
		check.Check(func() error {
			// Merge post-condition doubles as the idempotence law: a word
			// already carrying the master's low bytes is a fixed point.
			if i := FirstMergeMismatch(compute, master, n, workers); i >= 0 {
				return fmt.Errorf("dba: word %d diverges from master's low %d bytes after MergeWords", i, n)
			}
			return nil
		})
	}
}

// mergeRange is the merge loop over [lo, hi) — the chunk body the serial
// and parallel paths of MergeWords share.
func mergeRange(compute, master []float32, mask uint32, lo, hi int) {
	for i := lo; i < hi; i++ {
		cb := math.Float32bits(compute[i])
		mb := math.Float32bits(master[i])
		compute[i] = math.Float32frombits((cb &^ mask) | (mb & mask))
	}
}

// FirstMergeMismatch checks the Disaggregator post-condition — every word
// of the merged compute copy carries the master's low n bytes — and
// returns the first (lowest) offending index, or -1. The SDC guard in the
// trainer turns a hit into a rollback. Like the merge itself, the serial
// path is a plain allocation-free loop.
func FirstMergeMismatch(compute, master []float32, n, workers int) int {
	if len(compute) != len(master) {
		panic(fmt.Sprintf("dba: verify %d words against %d", len(master), len(compute)))
	}
	mask := wordMask(n)
	if parallel.HotResolve(workers) <= 1 {
		for i := range compute {
			if (math.Float32bits(compute[i])^math.Float32bits(master[i]))&mask != 0 {
				return i
			}
		}
		return -1
	}
	return parallel.FirstIndex(workers, len(compute), func(i int) bool {
		return (math.Float32bits(compute[i])^math.Float32bits(master[i]))&mask != 0
	})
}

// ScanChanged classifies every word transition old[i] -> new[i] into the
// Fig 2 byte-change classes — the value-changed-byte scan that motivates
// dirty-byte aggregation. Per-chunk distributions are combined in chunk
// order with integer adds, so the counts are bit-identical to a serial
// pass at any worker count.
func ScanChanged(old, new []float32, workers int) tensor.Distribution {
	if len(old) != len(new) {
		panic(fmt.Sprintf("dba: scan over %d vs %d words", len(old), len(new)))
	}
	parts := parallel.MapChunks(workers, len(old), func(lo, hi int) tensor.Distribution {
		var d tensor.Distribution
		for i := lo; i < hi; i++ {
			d.Observe(old[i], new[i])
		}
		return d
	})
	var total tensor.Distribution
	for _, p := range parts {
		total.Add(p)
	}
	return total
}
