// Package layerbench is the shared measurement core for the per-layer
// offload microbenchmark: BenchmarkLayerOverlap (make bench) and
// cmd/perfgate both run this one workload, so the gate guards exactly what
// the benchmark shows. The workload is the layers sweep's headline cell —
// GPT-2 at a fast tier holding 40% of the model, prefetch depth 1 — i.e.
// one full prefetch-scheduled StepLayered including the staging-plane walk
// and the residency bookkeeping.
package layerbench

import (
	"testing"

	"teco/internal/core"
	"teco/internal/modelzoo"
)

// Batch is the benchmark workload's step batch size.
const Batch = 4

// CachePct is the fast-tier size in percent of the model's parameter bytes.
const CachePct = 40

// Result is one measured run of the microbenchmark.
type Result struct {
	// NsPerOp is nanoseconds per prefetch-scheduled layered step.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per layered step.
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// config returns the benchmark's layer schedule.
func config(m modelzoo.Model) core.LayerConfig {
	return core.LayerConfig{
		CacheBytes: m.ParamBytes() * CachePct / 100,
		Prefetch:   1,
	}
}

// Run executes the workload b.N times (the body of BenchmarkLayerOverlap).
func Run(b *testing.B) {
	m := modelzoo.GPT2()
	e := core.MustEngine(core.Config{DBA: true})
	lc := config(m)
	if _, err := e.StepLayered(m, Batch, lc); err != nil { // warm engine pools
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.StepLayered(m, Batch, lc); err != nil {
			b.Fatal(err)
		}
	}
}

// Measure runs the microbenchmark via testing.Benchmark (so iteration-count
// calibration matches `go test -bench`).
func Measure() Result {
	r := testing.Benchmark(Run)
	return Result{NsPerOp: r.NsPerOp(), AllocsPerOp: r.AllocsPerOp()}
}

// Best returns the fastest of n repeated measurements — slowdowns on a
// shared machine are interference, never the code being "luckily" fast.
func Best(n int) Result {
	best := Measure()
	for i := 1; i < n; i++ {
		if r := Measure(); r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}
