package layerbench

import "testing"

// BenchmarkLayerOverlap is the per-layer offload microbenchmark `make
// bench` reports and cmd/perfgate gates against perf_baseline.json.
func BenchmarkLayerOverlap(b *testing.B) { Run(b) }
