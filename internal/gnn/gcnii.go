package gnn

import (
	"math"
	"math/rand"
)

// GCNII is the deep graph convolutional network of Chen et al. (2020),
// which the paper evaluates as its GNN workload. Each layer applies
//
//	H^{l+1} = ReLU( ( (1-alpha) Â H^l + alpha H^0 ) ( (1-beta_l) I + beta_l W^l ) )
//
// with initial residual (alpha) and identity mapping (beta_l =
// log(lambda/l + 1)), preceded by a linear input encoder and followed by a
// linear classifier. Parameters live in one flat FP32 vector so the model
// can ride the dirty-byte machinery exactly like the MLP in realtrain.
type GCNII struct {
	Feat, Hidden, Classes, Layers int
	Alpha, Lambda                 float64
	Params                        []float32
}

// NewGCNII builds the model with Glorot-style initialization.
func NewGCNII(feat, hidden, classes, layers int, seed int64) *GCNII {
	m := &GCNII{
		Feat: feat, Hidden: hidden, Classes: classes, Layers: layers,
		Alpha: 0.1, Lambda: 0.5,
	}
	m.Params = make([]float32, m.NumParams())
	rng := rand.New(rand.NewSource(seed))
	win, _, wl, wout, _ := m.views(m.Params)
	scale := func(fanIn int) float32 { return float32(math.Sqrt(2 / float64(fanIn))) }
	for i := range win {
		win[i] = scale(feat) * float32(rng.NormFloat64())
	}
	for l := range wl {
		for i := range wl[l] {
			wl[l][i] = scale(hidden) * float32(rng.NormFloat64())
		}
	}
	for i := range wout {
		wout[i] = scale(hidden) * float32(rng.NormFloat64())
	}
	return m
}

// NumParams returns the flat parameter count: input encoder, L layer
// matrices, output classifier, and the two bias vectors.
func (m *GCNII) NumParams() int {
	return m.Feat*m.Hidden + m.Hidden + // W_in, b_in
		m.Layers*m.Hidden*m.Hidden + // W^l
		m.Hidden*m.Classes + m.Classes // W_out, b_out
}

// views slices a flat vector into (Win, bIn, perLayerW, Wout, bOut).
func (m *GCNII) views(p []float32) (win, bin []float32, wl [][]float32, wout, bout []float32) {
	o := 0
	win = p[o : o+m.Feat*m.Hidden]
	o += m.Feat * m.Hidden
	bin = p[o : o+m.Hidden]
	o += m.Hidden
	wl = make([][]float32, m.Layers)
	for l := 0; l < m.Layers; l++ {
		wl[l] = p[o : o+m.Hidden*m.Hidden]
		o += m.Hidden * m.Hidden
	}
	wout = p[o : o+m.Hidden*m.Classes]
	o += m.Hidden * m.Classes
	bout = p[o : o+m.Classes]
	return
}

// beta returns the identity-mapping strength for layer l (1-indexed).
func (m *GCNII) beta(l int) float32 {
	return float32(math.Log(m.Lambda/float64(l) + 1))
}

// forwardState holds the activations needed by backward.
type forwardState struct {
	h0     [][]float32   // encoder output (post-ReLU)
	encPre [][]float32   // encoder pre-activation
	z      [][][]float32 // per layer: Z = (1-a) Â H + a H0
	pre    [][][]float32 // per layer: pre-ReLU M
	h      [][][]float32 // per layer: post-ReLU output
	logits [][]float32
	probs  [][]float32
}

func alloc(n, d int) [][]float32 {
	m := make([][]float32, n)
	for i := range m {
		m[i] = make([]float32, d)
	}
	return m
}

// forward runs the full-graph forward pass with the given parameters.
func (m *GCNII) forward(params []float32, g *Graph) *forwardState {
	win, bin, wl, wout, bout := m.views(params)
	st := &forwardState{}
	// Encoder: H0 = ReLU(X Win + bIn).
	st.encPre = alloc(g.N, m.Hidden)
	st.h0 = alloc(g.N, m.Hidden)
	for i := 0; i < g.N; i++ {
		x := g.Features[i]
		for j := 0; j < m.Hidden; j++ {
			s := bin[j]
			for d := 0; d < m.Feat; d++ {
				s += x[d] * win[d*m.Hidden+j]
			}
			st.encPre[i][j] = s
			if s > 0 {
				st.h0[i][j] = s
			}
		}
	}
	// GCNII layers.
	a := float32(m.Alpha)
	cur := st.h0
	prop := alloc(g.N, m.Hidden)
	for l := 0; l < m.Layers; l++ {
		b := m.beta(l + 1)
		g.Propagate(cur, prop)
		z := alloc(g.N, m.Hidden)
		for i := 0; i < g.N; i++ {
			for j := 0; j < m.Hidden; j++ {
				z[i][j] = (1-a)*prop[i][j] + a*st.h0[i][j]
			}
		}
		pre := alloc(g.N, m.Hidden)
		out := alloc(g.N, m.Hidden)
		w := wl[l]
		for i := 0; i < g.N; i++ {
			zi := z[i]
			for j := 0; j < m.Hidden; j++ {
				// M = Z((1-b)I + bW): (1-b) z_j + b (z . W[:,j]).
				s := (1 - b) * zi[j]
				for k := 0; k < m.Hidden; k++ {
					s += b * zi[k] * w[k*m.Hidden+j]
				}
				pre[i][j] = s
				if s > 0 {
					out[i][j] = s
				}
			}
		}
		st.z = append(st.z, z)
		st.pre = append(st.pre, pre)
		st.h = append(st.h, out)
		cur = out
	}
	// Classifier.
	st.logits = alloc(g.N, m.Classes)
	st.probs = alloc(g.N, m.Classes)
	for i := 0; i < g.N; i++ {
		hi := cur[i]
		for c := 0; c < m.Classes; c++ {
			s := bout[c]
			for j := 0; j < m.Hidden; j++ {
				s += hi[j] * wout[j*m.Classes+c]
			}
			st.logits[i][c] = s
		}
		softmaxInto(st.logits[i], st.probs[i])
	}
	return st
}

func softmaxInto(z, out []float32) {
	maxZ := z[0]
	for _, v := range z[1:] {
		if v > maxZ {
			maxZ = v
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(float64(v - maxZ))
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
}

// LossAndGrad computes the mean cross-entropy over the graph's training
// nodes and the full gradient into grads (zeroed first). Returns the loss.
func (m *GCNII) LossAndGrad(params []float32, g *Graph, grads []float32) float64 {
	for i := range grads {
		grads[i] = 0
	}
	st := m.forward(params, g)
	_, _, wl, wout, _ := m.views(params)
	gwin, gbin, gwl, gwout, gbout := m.views(grads)

	var loss float64
	inv := float32(1.0 / float64(len(g.Train)))
	// dLogits only on training nodes.
	dH := alloc(g.N, m.Hidden)  // gradient w.r.t. current layer output
	dH0 := alloc(g.N, m.Hidden) // accumulated gradient into H0
	last := st.h0
	if m.Layers > 0 {
		last = st.h[m.Layers-1]
	}
	for _, i := range g.Train {
		y := g.Labels[i]
		p := float64(st.probs[i][y])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
		for c := 0; c < m.Classes; c++ {
			dz := st.probs[i][c] * inv
			if c == y {
				dz -= inv
			}
			gbout[c] += dz
			for j := 0; j < m.Hidden; j++ {
				gwout[j*m.Classes+c] += last[i][j] * dz
				dH[i][j] += wout[j*m.Classes+c] * dz
			}
		}
	}

	// Backward through GCNII layers.
	a := float32(m.Alpha)
	dZ := alloc(g.N, m.Hidden)
	dProp := alloc(g.N, m.Hidden)
	for l := m.Layers - 1; l >= 0; l-- {
		b := m.beta(l + 1)
		w := wl[l]
		gw := gwl[l]
		z := st.z[l]
		pre := st.pre[l]
		// dM = dH ∘ relu'(pre); dW += b Z^T dM; dZ = (1-b) dM + b dM W^T.
		for i := 0; i < g.N; i++ {
			for j := 0; j < m.Hidden; j++ {
				if pre[i][j] <= 0 {
					dH[i][j] = 0
				}
			}
		}
		for i := 0; i < g.N; i++ {
			dm := dH[i]
			zi := z[i]
			dzi := dZ[i]
			for j := 0; j < m.Hidden; j++ {
				dzi[j] = (1 - b) * dm[j]
			}
			for k := 0; k < m.Hidden; k++ {
				zk := zi[k]
				dzk := float32(0)
				for j := 0; j < m.Hidden; j++ {
					gw[k*m.Hidden+j] += b * zk * dm[j]
					dzk += b * w[k*m.Hidden+j] * dm[j]
				}
				dzi[k] += dzk
			}
		}
		// dProp = (1-a) Â^T dZ = (1-a) Â dZ (Â symmetric); dH0 += a dZ.
		g.Propagate(dZ, dProp)
		for i := 0; i < g.N; i++ {
			for j := 0; j < m.Hidden; j++ {
				dH[i][j] = (1 - a) * dProp[i][j]
				dH0[i][j] += a * dZ[i][j]
			}
		}
	}
	// The encoder output feeds layer 0's propagation path (now in dH) and
	// every layer's residual (in dH0).
	for i := 0; i < g.N; i++ {
		for j := 0; j < m.Hidden; j++ {
			dH0[i][j] += dH[i][j]
		}
	}
	// Encoder backward.
	for i := 0; i < g.N; i++ {
		x := g.Features[i]
		for j := 0; j < m.Hidden; j++ {
			if st.encPre[i][j] <= 0 {
				continue
			}
			d := dH0[i][j]
			gbin[j] += d
			for dd := 0; dd < m.Feat; dd++ {
				gwin[dd*m.Hidden+j] += x[dd] * d
			}
		}
	}
	return loss / float64(len(g.Train))
}

// Accuracy evaluates node-classification accuracy on the given node set.
func (m *GCNII) Accuracy(params []float32, g *Graph, nodes []int) float64 {
	st := m.forward(params, g)
	correct := 0
	for _, i := range nodes {
		best := 0
		for c := range st.probs[i] {
			if st.probs[i][c] > st.probs[i][best] {
				best = c
			}
		}
		if best == g.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(nodes))
}
