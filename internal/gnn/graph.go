// Package gnn implements GCNII (Chen et al., "Simple and Deep Graph
// Convolutional Networks", the paper's fifth workload — Table III, trained
// full-graph on a Wisconsin-scale dataset) with real forward/backward math
// and the same master/accelerator parameter split as realtrain, so the
// dirty-byte path can be validated on a graph workload too.
package gnn

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an undirected graph with node features and labels, plus the
// symmetric-normalized adjacency (with self-loops) used by graph
// convolutions: Â = D^-1/2 (A+I) D^-1/2.
type Graph struct {
	N        int
	Features [][]float32 // N x F
	Labels   []int       // N
	Classes  int
	// adj is Â in CSR-ish form: per-node neighbour index/weight lists.
	adjIdx [][]int32
	adjW   [][]float32
	// Train/Val/Test are node masks (Wisconsin-style 48/32/20 split).
	Train, Val, Test []int
}

// GraphConfig sizes the synthetic dataset. Defaults mimic the Wisconsin
// graph's scale (251 nodes).
type GraphConfig struct {
	Nodes   int     // default 251
	Feat    int     // feature dimension (default 32)
	Classes int     // default 5
	IntraP  float64 // intra-community edge probability (default 0.10)
	InterP  float64 // inter-community edge probability (default 0.02)
	Seed    int64
}

func (c GraphConfig) withDefaults() GraphConfig {
	if c.Nodes == 0 {
		c.Nodes = 251
	}
	if c.Feat == 0 {
		c.Feat = 32
	}
	if c.Classes == 0 {
		c.Classes = 5
	}
	if c.IntraP == 0 {
		c.IntraP = 0.05
	}
	if c.InterP == 0 {
		c.InterP = 0.03
	}
	return c
}

// NewGraph builds a planted-partition graph: nodes belong to communities;
// features are noisy community centroids; labels are the communities.
func NewGraph(cfg GraphConfig) *Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Graph{N: cfg.Nodes, Classes: cfg.Classes}

	centroids := make([][]float32, cfg.Classes)
	for c := range centroids {
		centroids[c] = make([]float32, cfg.Feat)
		for d := range centroids[c] {
			centroids[c][d] = float32(rng.NormFloat64()) * 0.5
		}
	}
	g.Labels = make([]int, cfg.Nodes)
	g.Features = make([][]float32, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		c := i % cfg.Classes
		g.Labels[i] = c
		g.Features[i] = make([]float32, cfg.Feat)
		for d := range g.Features[i] {
			g.Features[i][d] = centroids[c][d] + 1.5*float32(rng.NormFloat64())
		}
	}

	// Edges.
	adj := make([]map[int]bool, cfg.Nodes)
	for i := range adj {
		adj[i] = map[int]bool{i: true} // self-loop
	}
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			p := cfg.InterP
			if g.Labels[i] == g.Labels[j] {
				p = cfg.IntraP
			}
			if rng.Float64() < p {
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}
	// Symmetric normalization.
	deg := make([]float64, cfg.Nodes)
	for i := range adj {
		deg[i] = float64(len(adj[i]))
	}
	g.adjIdx = make([][]int32, cfg.Nodes)
	g.adjW = make([][]float32, cfg.Nodes)
	for i := range adj {
		neigh := make([]int, 0, len(adj[i]))
		for j := range adj[i] {
			neigh = append(neigh, j)
		}
		sort.Ints(neigh) // deterministic accumulation order
		for _, j := range neigh {
			g.adjIdx[i] = append(g.adjIdx[i], int32(j))
			w := 1.0 / (sqrt(deg[i]) * sqrt(deg[j]))
			g.adjW[i] = append(g.adjW[i], float32(w))
		}
	}

	// Wisconsin-style 48/32/20 split, deterministic shuffle.
	perm := rng.Perm(cfg.Nodes)
	nTrain := cfg.Nodes * 48 / 100
	nVal := cfg.Nodes * 32 / 100
	g.Train = perm[:nTrain]
	g.Val = perm[nTrain : nTrain+nVal]
	g.Test = perm[nTrain+nVal:]
	return g
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 1
	}
	// Newton iterations are plenty for degree-scale values.
	x := v
	for i := 0; i < 24; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// Propagate computes out = Â * in for an N x d feature matrix.
func (g *Graph) Propagate(in [][]float32, out [][]float32) {
	if len(in) != g.N || len(out) != g.N {
		panic(fmt.Sprintf("gnn: propagate over %d/%d rows, graph has %d", len(in), len(out), g.N))
	}
	d := len(in[0])
	for i := 0; i < g.N; i++ {
		row := out[i]
		for k := range row {
			row[k] = 0
		}
		for nIdx, j := range g.adjIdx[i] {
			w := g.adjW[i][nIdx]
			src := in[j]
			for k := 0; k < d; k++ {
				row[k] += w * src[k]
			}
		}
	}
}

// Edges returns the number of directed adjacency entries (including
// self-loops) — the propagation work per layer.
func (g *Graph) Edges() int {
	n := 0
	for _, idx := range g.adjIdx {
		n += len(idx)
	}
	return n
}
