package gnn

import (
	"math"

	"teco/internal/dba"
	"teco/internal/optim"
)

// TrainConfig controls a full-graph GCNII training run with the TECO
// parameter path.
type TrainConfig struct {
	Epochs int     // full-graph steps (default 200)
	Hidden int     // hidden width (default 64)
	Layers int     // GCNII depth (default 8)
	LR     float64 // ADAM learning rate (default 1e-2)
	Seed   int64
	// DBA enables the dirty-byte parameter path with ActAfterSteps /
	// DirtyBytes semantics, exactly as in realtrain.
	DBA           bool
	ActAfterSteps int
	DirtyBytes    int
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.Layers == 0 {
		c.Layers = 8
	}
	if c.LR == 0 {
		c.LR = 1e-2
	}
	if c.DirtyBytes == 0 {
		c.DirtyBytes = dba.DefaultDirtyBytes
	}
	return c
}

// TrainResult is a completed run.
type TrainResult struct {
	Config    TrainConfig
	Losses    []float64
	TestAcc   float64 // accuracy of the accelerator (compute) parameters
	MasterAcc float64 // accuracy of the exact CPU master parameters
}

// Train runs full-graph training (GCNII "only supports full-graph
// training" — there is no batch dimension) with the master/accelerator
// parameter split.
func Train(cfg TrainConfig) TrainResult {
	cfg = cfg.withDefaults()
	g := NewGraph(GraphConfig{Seed: cfg.Seed})
	m := NewGCNII(len(g.Features[0]), cfg.Hidden, g.Classes, cfg.Layers, cfg.Seed+1)

	n := m.NumParams()
	master := m.Params
	compute := make([]float32, n)
	copy(compute, master)
	grads := make([]float32, n)
	ad := optim.MustAdam(n, optim.AdamConfig{LR: cfg.LR, WeightDecay: 5e-4})
	ctrl := dba.NewController(cfg.ActAfterSteps, cfg.DirtyBytes)

	res := TrainResult{Config: cfg}
	for e := 0; e < cfg.Epochs; e++ {
		loss := m.LossAndGrad(compute, g, grads)
		res.Losses = append(res.Losses, loss)
		optim.ClipGlobalNorm(grads, 5.0)
		if err := ad.Step(master, grads); err != nil {
			panic(err) // lengths are static over the whole run
		}
		if cfg.DBA && ctrl.CheckActivation(e) {
			mergeWords(compute, master, cfg.DirtyBytes)
		} else {
			copy(compute, master)
		}
	}
	res.TestAcc = m.Accuracy(compute, g, g.Test)
	res.MasterAcc = m.Accuracy(master, g, g.Test)
	return res
}

// mergeWords is the word-level Disaggregator merge (shared semantics with
// realtrain and internal/dba — verified equivalent in tests).
func mergeWords(compute, master []float32, n int) {
	if n >= 4 {
		copy(compute, master)
		return
	}
	mask := uint32(1)<<(uint(n)*8) - 1
	for i := range compute {
		cb := math.Float32bits(compute[i])
		mb := math.Float32bits(master[i])
		compute[i] = math.Float32frombits((cb &^ mask) | (mb & mask))
	}
}
