package gnn

import (
	"math"
	"math/rand"
	"testing"
)

func TestGraphConstruction(t *testing.T) {
	g := NewGraph(GraphConfig{Seed: 1})
	if g.N != 251 || g.Classes != 5 {
		t.Fatalf("N=%d classes=%d", g.N, g.Classes)
	}
	if len(g.Train)+len(g.Val)+len(g.Test) != g.N {
		t.Fatal("split does not cover the graph")
	}
	// 48/32/20 split.
	if got := len(g.Train); got != 251*48/100 {
		t.Fatalf("train = %d", got)
	}
	for _, y := range g.Labels {
		if y < 0 || y >= g.Classes {
			t.Fatalf("label %d", y)
		}
	}
	if g.Edges() < g.N {
		t.Fatal("every node has at least its self-loop")
	}
}

// TestNormalizedAdjacencyRowMass: Â row sums are bounded (for a regular
// graph they are ~1); mainly checks the normalization is applied.
func TestNormalizedAdjacency(t *testing.T) {
	g := NewGraph(GraphConfig{Seed: 2})
	ones := alloc(g.N, 1)
	for i := range ones {
		ones[i][0] = 1
	}
	out := alloc(g.N, 1)
	g.Propagate(ones, out)
	for i := range out {
		if out[i][0] <= 0 || out[i][0] > 1.5 {
			t.Fatalf("row %d mass = %v", i, out[i][0])
		}
	}
}

func TestPropagatePanicsOnBadShape(t *testing.T) {
	g := NewGraph(GraphConfig{Seed: 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Propagate(alloc(3, 4), alloc(3, 4))
}

func TestGCNIIShapes(t *testing.T) {
	m := NewGCNII(32, 64, 5, 8, 1)
	want := 32*64 + 64 + 8*64*64 + 64*5 + 5
	if m.NumParams() != want {
		t.Fatalf("params = %d, want %d", m.NumParams(), want)
	}
	if len(m.Params) != want {
		t.Fatal("flat vector size")
	}
	// beta decays with depth (identity mapping strengthens in deep layers).
	if m.beta(1) <= m.beta(8) {
		t.Fatal("beta must decay with layer index")
	}
}

// TestGCNIIGradientsMatchFiniteDifferences validates the full-graph
// backprop (encoder, GCNII layers with residual+identity mapping,
// classifier) against central differences.
func TestGCNIIGradientsMatchFiniteDifferences(t *testing.T) {
	g := NewGraph(GraphConfig{Nodes: 40, Feat: 6, Classes: 3, Seed: 4})
	m := NewGCNII(6, 8, 3, 3, 5)
	grads := make([]float32, m.NumParams())
	m.LossAndGrad(m.Params, g, grads)

	rng := rand.New(rand.NewSource(6))
	const eps = 1e-3
	checked := 0
	for trial := 0; trial < 60 && checked < 15; trial++ {
		i := rng.Intn(m.NumParams())
		orig := m.Params[i]
		m.Params[i] = orig + eps
		lp := m.LossAndGrad(m.Params, g, make([]float32, m.NumParams()))
		m.Params[i] = orig - eps
		lm := m.LossAndGrad(m.Params, g, make([]float32, m.NumParams()))
		m.Params[i] = orig
		fd := (lp - lm) / (2 * eps)
		if math.Abs(fd) < 1e-3 || math.Abs(float64(grads[i])) < 1e-3 {
			continue
		}
		rel := math.Abs(fd-float64(grads[i])) / math.Max(math.Abs(fd), math.Abs(float64(grads[i])))
		if rel > 0.08 {
			t.Fatalf("param %d: analytic %v vs FD %v (rel %.3f)", i, grads[i], fd, rel)
		}
		checked++
	}
	if checked < 8 {
		t.Fatalf("only %d gradients checked", checked)
	}
}

func TestFullGraphTrainingLearns(t *testing.T) {
	r := Train(TrainConfig{Epochs: 150, Seed: 7})
	chance := 1.0 / 5
	if r.TestAcc < chance+0.15 {
		t.Fatalf("test accuracy %.3f barely above chance", r.TestAcc)
	}
	// Loss decreased.
	if r.Losses[len(r.Losses)-1] >= r.Losses[0] {
		t.Fatalf("loss did not decrease: %v -> %v", r.Losses[0], r.Losses[len(r.Losses)-1])
	}
}

func TestTrainingDeterministic(t *testing.T) {
	a := Train(TrainConfig{Epochs: 30, Seed: 8})
	b := Train(TrainConfig{Epochs: 30, Seed: 8})
	if a.TestAcc != b.TestAcc || a.Losses[29] != b.Losses[29] {
		t.Fatal("training not deterministic")
	}
}

// TestDBAOnGNN: the dirty-byte path works on the graph workload too — the
// full-graph equivalent of Table V's accuracy comparison.
func TestDBAOnGNN(t *testing.T) {
	base := Train(TrainConfig{Epochs: 200, Seed: 9})
	red := Train(TrainConfig{Epochs: 200, Seed: 9, DBA: true, ActAfterSteps: 100})
	if diff := base.TestAcc - red.TestAcc; diff > 0.12 {
		t.Fatalf("DBA cost %.3f accuracy on the GNN (%.3f -> %.3f)", diff, base.TestAcc, red.TestAcc)
	}
}

func TestMergeWordsFullCopy(t *testing.T) {
	c := []float32{1}
	m := []float32{2}
	mergeWords(c, m, 4)
	if c[0] != 2 {
		t.Fatal("n=4 must copy")
	}
}
