package staging

import (
	"strings"
	"testing"
)

func mustResidency(t *testing.T, sizes []int64, capacity int64, policy Policy, pinned int) *Residency {
	t.Helper()
	r, err := NewResidency(sizes, capacity, policy, pinned)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{
		"": LRU, "lru": LRU, "fifo": FIFO, "pin": Pinned, "pinned": Pinned,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("mru"); err == nil || !strings.Contains(err.Error(), "policy") {
		t.Fatalf("bad policy: err=%v", err)
	}
	if got := Policy(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown policy String() = %q", got)
	}
	for p, s := range map[Policy]string{LRU: "lru", FIFO: "fifo", Pinned: "pin"} {
		if p.String() != s {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}

// TestNewResidencyErrors pins every constructor rejection: malformed slot
// tables, capacities below the largest slot, and pinned sets that leave no
// working slot.
func TestNewResidencyErrors(t *testing.T) {
	if _, err := NewResidency(nil, 0, LRU, 0); err == nil {
		t.Fatal("empty slot table accepted")
	}
	if _, err := NewResidency([]int64{10, 0, 5}, 0, LRU, 0); err == nil {
		t.Fatal("zero-size slot accepted")
	}
	if _, err := NewResidency([]int64{10, -3}, 0, LRU, 0); err == nil {
		t.Fatal("negative slot accepted")
	}
	if _, err := NewResidency([]int64{100, 40}, 50, LRU, 0); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("capacity below largest slot: err=%v", err)
	}
	// Pinned set fits, but nothing is left for a working slot.
	if _, err := NewResidency([]int64{100, 40, 40}, 110, Pinned, 1); err == nil || !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("overpinned capacity: err=%v", err)
	}
}

// TestNewResidencyClamps: pinned counts are clamped to valid ranges and
// ignored outside the Pinned policy; oversized capacities collapse to the
// total.
func TestNewResidencyClamps(t *testing.T) {
	if r := mustResidency(t, []int64{10, 20}, 0, LRU, 5); r.Pins() != 0 {
		t.Fatalf("LRU kept %d pins", r.Pins())
	}
	if r := mustResidency(t, []int64{10, 20}, 1<<40, Pinned, -2); r.Pins() != 0 {
		t.Fatalf("negative pin request kept %d pins", r.Pins())
	}
	r := mustResidency(t, []int64{10, 20}, 1<<40, Pinned, 7)
	if r.Pins() != 2 || r.Capacity() != 30 {
		t.Fatalf("pins=%d capacity=%d, want 2/30", r.Pins(), r.Capacity())
	}
	// All slots pinned: everything resident from construction, no errors.
	if !r.Resident(0) || !r.Resident(1) || r.ResidentBytes() != 30 {
		t.Fatalf("pinned slots not wired down: %+v", r.Stats())
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestResidencyWarm: warming fills without miss/eviction accounting and
// refuses (rather than evicts) past capacity.
func TestResidencyWarm(t *testing.T) {
	r := mustResidency(t, []int64{10, 10, 10}, 20, LRU, 0)
	if !r.Warm(0) || !r.Warm(1) {
		t.Fatal("warm within capacity refused")
	}
	if !r.Warm(0) {
		t.Fatal("re-warming a resident slot refused")
	}
	if r.Warm(2) {
		t.Fatal("warm past capacity evicted")
	}
	if st := r.Stats(); st.DemandMisses != 0 || st.Evictions != 0 || st.LoadedBytes != 0 {
		t.Fatalf("warming counted as traffic: %+v", st)
	}
	if r.ResidentBytes() != 20 {
		t.Fatalf("resident %d, want 20", r.ResidentBytes())
	}
}

// TestResidencyLRUVsFIFO: the two policies part ways exactly when the
// eviction-ordering slot was re-used after load — LRU protects it, FIFO
// drops it anyway.
func TestResidencyLRUVsFIFO(t *testing.T) {
	run := func(policy Policy) *Residency {
		r := mustResidency(t, []int64{10, 10, 10}, 20, policy, 0)
		r.Use(0, 0) // load 0
		r.Use(1, 1) // load 1
		r.Use(0, 0) // re-use 0: newest by recency, oldest by load order
		r.Use(2, 2) // needs a victim
		return r
	}
	lru := run(LRU)
	if !lru.Resident(0) || lru.Resident(1) {
		t.Fatal("LRU evicted the recently used slot")
	}
	fifo := run(FIFO)
	if fifo.Resident(0) || !fifo.Resident(1) {
		t.Fatal("FIFO kept the oldest-loaded slot")
	}
	for _, r := range []*Residency{lru, fifo} {
		if st := r.Stats(); st.Evictions != 1 || st.EvictedBytes != 10 {
			t.Fatalf("eviction accounting: %+v", st)
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResidencyPrefetchNeverEvictsExecutingOrPinned: a prefetch that could
// only make room by dropping the executing or a pinned slot is skipped and
// counted, and the later demand use still succeeds.
func TestResidencyPrefetchNeverEvictsExecutingOrPinned(t *testing.T) {
	r := mustResidency(t, []int64{10, 10, 10}, 20, Pinned, 1)
	// Slot 0 pinned; slot 1 resident and executing: no victim exists.
	if miss, _ := r.Use(1, 1); !miss {
		t.Fatal("first use of slot 1 should miss")
	}
	if r.Prefetch(2, 1) {
		t.Fatal("prefetch evicted the executing or pinned slot")
	}
	if st := r.Stats(); st.PrefetchSkipped != 1 || st.PrefetchIssued != 0 {
		t.Fatalf("skip accounting: %+v", st)
	}
	// Prefetch of an already-resident slot is a no-op, not a fetch.
	if r.Prefetch(1, 1) {
		t.Fatal("prefetch re-fetched a resident slot")
	}
	// Once slot 2 executes, the demand fetch may evict slot 1 — but never
	// the pinned slot 0.
	if miss, evicted := r.Use(2, 2); !miss || evicted != 10 {
		t.Fatalf("demand fetch after skip: miss=%v evicted=%d", miss, evicted)
	}
	if !r.Resident(0) || r.Resident(1) {
		t.Fatal("demand fetch chose the pinned slot as victim")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestResidencyPrefetchHitAccounting: a prefetched slot's first demand use
// counts as a prefetch hit exactly once.
func TestResidencyPrefetchHitAccounting(t *testing.T) {
	r := mustResidency(t, []int64{10, 10}, 20, LRU, 0)
	if !r.Prefetch(1, 0) {
		t.Fatal("prefetch with free capacity refused")
	}
	if miss, _ := r.Use(1, 1); miss {
		t.Fatal("prefetched slot missed")
	}
	r.Use(1, 1)
	st := r.Stats()
	if st.PrefetchHits != 1 || st.Hits != 2 || st.PrefetchIssued != 1 {
		t.Fatalf("prefetch-hit accounting: %+v", st)
	}
	if got := r.Heat(); got[1] != 2 || got[0] != 0 {
		t.Fatalf("heat map: %v", got)
	}
	if r.Slots() != 2 {
		t.Fatalf("slots = %d", r.Slots())
	}
}

// TestResidencyCheckInvariantsCatchesCorruption: each invariant fires on a
// hand-corrupted tracker (same package, so the private state is reachable).
func TestResidencyCheckInvariantsCatchesCorruption(t *testing.T) {
	fresh := func() *Residency { return mustResidency(t, []int64{10, 10}, 20, Pinned, 1) }

	r := fresh()
	r.used += 5 // byte account drifts from the resident set
	if err := r.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "resident bytes") {
		t.Fatalf("byte-account drift undetected: %v", err)
	}

	r = fresh()
	r.resident[1] = true // layer appears without its bytes
	if err := r.CheckInvariants(); err == nil {
		t.Fatal("phantom resident slot undetected")
	}

	r = fresh()
	r.prefetched[1] = true // prefetched flag on a non-resident slot
	if err := r.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "prefetched") {
		t.Fatalf("dangling prefetch flag undetected: %v", err)
	}

	r = fresh()
	r.resident[0] = false
	r.used -= r.sizes[0] // pinned slot evicted
	if err := r.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("evicted pinned slot undetected: %v", err)
	}

	r = fresh()
	r.capacity = 5 // capacity shrinks under the resident bytes
	if err := r.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("capacity overflow undetected: %v", err)
	}
}
