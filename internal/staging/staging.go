// Package staging implements ZeRO-Offload's software transfer machinery as
// real data structures: the CPU-side double buffer that pipelines parameter
// fills against DMA transfers (paper §II-A), and the GPU-side gradient
// buffer that is "periodically filled and flushed" during backward
// (Fig 1, phase 3). TECO's contribution is precisely that the update
// protocol makes both unnecessary ("there is no need to use the
// double-buffer technique ... we can avoid the frequent synchronization
// between the two buffers and reduce software complexity", §IV-B).
package staging

import "fmt"

// DoubleBuffer pipelines producer fills against consumer transfers: while
// the producer fills one half, the other half is in flight. The zero value
// is not usable; construct with NewDoubleBuffer.
type DoubleBuffer struct {
	bufs     [2][]float32
	capacity int
	// fillIdx is the half currently accepting writes.
	fillIdx int
	// used counts elements in the filling half.
	used int
	// inFlight marks the other half as owned by the transfer engine.
	inFlight bool

	swaps, stalls int64
}

// NewDoubleBuffer builds a double buffer of two capacity-element halves.
func NewDoubleBuffer(capacity int) *DoubleBuffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("staging: capacity %d", capacity))
	}
	return &DoubleBuffer{
		bufs:     [2][]float32{make([]float32, 0, capacity), make([]float32, 0, capacity)},
		capacity: capacity,
	}
}

// Fill appends values to the filling half, returning the number accepted
// (fewer than len(vals) when the half becomes full — the caller must Swap
// and retry, mirroring the synchronization the paper calls out).
func (d *DoubleBuffer) Fill(vals []float32) int {
	room := d.capacity - len(d.bufs[d.fillIdx])
	n := len(vals)
	if n > room {
		n = room
	}
	d.bufs[d.fillIdx] = append(d.bufs[d.fillIdx], vals[:n]...)
	return n
}

// Full reports whether the filling half has no room left.
func (d *DoubleBuffer) Full() bool { return len(d.bufs[d.fillIdx]) == d.capacity }

// Pending returns the element count of the filling half.
func (d *DoubleBuffer) Pending() int { return len(d.bufs[d.fillIdx]) }

// Swap hands the filling half to the transfer engine and opens the other
// half for filling. It fails while the previous transfer is still in
// flight (the stall the paper's double buffer suffers when transfers are
// slower than fills).
func (d *DoubleBuffer) Swap() ([]float32, error) {
	if d.inFlight {
		d.stalls++
		return nil, fmt.Errorf("staging: previous transfer still in flight")
	}
	out := d.bufs[d.fillIdx]
	if len(out) == 0 {
		return nil, fmt.Errorf("staging: nothing to transfer")
	}
	d.inFlight = true
	d.fillIdx = 1 - d.fillIdx
	d.bufs[d.fillIdx] = d.bufs[d.fillIdx][:0]
	d.swaps++
	return out, nil
}

// Complete signals that the in-flight transfer finished.
func (d *DoubleBuffer) Complete() {
	d.inFlight = false
}

// Stats returns (successful swaps, stalled swap attempts).
func (d *DoubleBuffer) Stats() (swaps, stalls int64) { return d.swaps, d.stalls }

// GradientBuffer is the GPU-side accumulation buffer: backward appends
// gradients; when the buffer fills, it flushes (one bulk transfer) and
// resets. Flush order is preserved.
type GradientBuffer struct {
	buf      []float32
	capacity int
	flushes  int64
	flushed  int64
	onFlush  func([]float32)
}

// NewGradientBuffer builds a buffer that calls onFlush with each full (or
// final partial) chunk. onFlush must copy if it retains the slice.
func NewGradientBuffer(capacity int, onFlush func([]float32)) *GradientBuffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("staging: capacity %d", capacity))
	}
	if onFlush == nil {
		onFlush = func([]float32) {}
	}
	return &GradientBuffer{buf: make([]float32, 0, capacity), capacity: capacity, onFlush: onFlush}
}

// Append adds gradients, flushing every time the buffer fills.
func (g *GradientBuffer) Append(vals []float32) {
	for len(vals) > 0 {
		room := g.capacity - len(g.buf)
		n := len(vals)
		if n > room {
			n = room
		}
		g.buf = append(g.buf, vals[:n]...)
		vals = vals[n:]
		if len(g.buf) == g.capacity {
			g.flush()
		}
	}
}

// FlushRemaining pushes out a final partial buffer (end of backward).
func (g *GradientBuffer) FlushRemaining() {
	if len(g.buf) > 0 {
		g.flush()
	}
}

func (g *GradientBuffer) flush() {
	g.flushes++
	g.flushed += int64(len(g.buf))
	g.onFlush(g.buf)
	g.buf = g.buf[:0]
}

// Stats returns (flush count, total elements flushed).
func (g *GradientBuffer) Stats() (flushes, elements int64) { return g.flushes, g.flushed }
