package staging

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDoubleBufferPipelining(t *testing.T) {
	d := NewDoubleBuffer(4)
	if n := d.Fill([]float32{1, 2, 3, 4, 5}); n != 4 {
		t.Fatalf("accepted %d, want 4", n)
	}
	if !d.Full() {
		t.Fatal("buffer should be full")
	}
	chunk, err := d.Swap()
	if err != nil || len(chunk) != 4 {
		t.Fatalf("swap: %v %v", chunk, err)
	}
	// Other half now accepts fills while the first is in flight.
	if n := d.Fill([]float32{5}); n != 1 {
		t.Fatal("fill after swap failed")
	}
	// A second swap before Complete stalls — the paper's buffer sync.
	if _, err := d.Swap(); err == nil {
		t.Fatal("swap during in-flight transfer must stall")
	}
	d.Complete()
	if _, err := d.Swap(); err != nil {
		t.Fatalf("swap after completion: %v", err)
	}
	swaps, stalls := d.Stats()
	if swaps != 2 || stalls != 1 {
		t.Fatalf("swaps=%d stalls=%d", swaps, stalls)
	}
}

func TestDoubleBufferEmptySwap(t *testing.T) {
	d := NewDoubleBuffer(4)
	if _, err := d.Swap(); err == nil {
		t.Fatal("empty swap must fail")
	}
}

func TestDoubleBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDoubleBuffer(0)
}

// Property: every value filled is transferred exactly once, in order.
func TestDoubleBufferConservationProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw)%16 + 1
		rng := rand.New(rand.NewSource(seed))
		d := NewDoubleBuffer(capacity)
		var sent, received []float32
		for i := 0; i < 200; i++ {
			v := []float32{float32(rng.NormFloat64())}
			for d.Fill(v) == 0 {
				chunk, err := d.Swap()
				if err != nil {
					d.Complete() // transfer engine catches up
					continue
				}
				received = append(received, chunk...)
				d.Complete()
			}
			sent = append(sent, v[0])
		}
		// Drain.
		if chunk, err := d.Swap(); err == nil {
			received = append(received, chunk...)
			d.Complete()
		}
		if len(sent) != len(received) {
			return false
		}
		for i := range sent {
			if sent[i] != received[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGradientBufferFlushing(t *testing.T) {
	var flushed [][]float32
	g := NewGradientBuffer(4, func(chunk []float32) {
		cp := make([]float32, len(chunk))
		copy(cp, chunk)
		flushed = append(flushed, cp)
	})
	g.Append([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9})
	g.FlushRemaining()
	if len(flushed) != 3 {
		t.Fatalf("flushes = %d", len(flushed))
	}
	if len(flushed[0]) != 4 || len(flushed[2]) != 1 {
		t.Fatalf("chunk sizes: %d, %d", len(flushed[0]), len(flushed[2]))
	}
	flushes, elems := g.Stats()
	if flushes != 3 || elems != 9 {
		t.Fatalf("stats = %d/%d", flushes, elems)
	}
	// Order preserved.
	want := float32(1)
	for _, c := range flushed {
		for _, v := range c {
			if v != want {
				t.Fatalf("order broken: %v != %v", v, want)
			}
			want++
		}
	}
}

func TestGradientBufferNilCallback(t *testing.T) {
	g := NewGradientBuffer(2, nil)
	g.Append([]float32{1, 2, 3})
	g.FlushRemaining()
	if f, e := g.Stats(); f != 2 || e != 3 {
		t.Fatalf("stats = %d/%d", f, e)
	}
}

func TestGradientBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGradientBuffer(-1, nil)
}

// Property: the gradient buffer conserves and orders all appended values.
func TestGradientBufferConservationProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw)%32 + 1
		rng := rand.New(rand.NewSource(seed))
		var out []float32
		g := NewGradientBuffer(capacity, func(chunk []float32) {
			out = append(out, chunk...)
		})
		var in []float32
		for i := 0; i < 50; i++ {
			batch := make([]float32, rng.Intn(20))
			for j := range batch {
				batch[j] = float32(rng.NormFloat64())
			}
			in = append(in, batch...)
			g.Append(batch)
		}
		g.FlushRemaining()
		if len(in) != len(out) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
