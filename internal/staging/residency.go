package staging

import (
	"fmt"
)

// Per-layer fast-tier residency tracking — the policy half of the offload
// scheduler. A Residency models a capacity-bounded fast tier (the giant
// cache) holding a subset of the model's layer-granular slots; the
// functional trainer (realtrain.OffloadScheduler) and the timing engine
// (core.StepLayered) share this one implementation so "which layer is
// resident when" has a single definition on both sides of the house
// equality. Policies are 10Cache-style placement rules: plain LRU, FIFO,
// and pinned-hot-layers (the first K slots are never evicted).

// Policy selects the eviction discipline.
type Policy int

const (
	// LRU evicts the least-recently-used resident slot.
	LRU Policy = iota
	// FIFO evicts the resident slot loaded longest ago, regardless of use.
	FIFO
	// Pinned is LRU with the first Pinned slots exempt from eviction (the
	// "pinned hot layers" policy: embeddings and early layers are touched
	// by every step's forward AND backward tail, so wiring them down
	// removes their refetches entirely).
	Pinned
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Pinned:
		return "pin"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps the flag spelling to a Policy; "" is LRU.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "lru":
		return LRU, nil
	case "fifo":
		return FIFO, nil
	case "pin", "pinned":
		return Pinned, nil
	default:
		return 0, fmt.Errorf("staging: unknown eviction policy %q (want lru, fifo or pin)", s)
	}
}

// ResidencyStats counts scheduler activity since construction.
type ResidencyStats struct {
	// Hits counts demand uses that found the slot resident; PrefetchHits
	// is the subset whose residency came from a prefetch not yet used.
	Hits         int64
	PrefetchHits int64
	// DemandMisses counts uses that had to fetch on the critical path.
	DemandMisses int64
	// PrefetchIssued counts prefetch fetches started; PrefetchSkipped
	// counts prefetches declined because no victim could be evicted
	// (everything resident was pinned or executing).
	PrefetchIssued  int64
	PrefetchSkipped int64
	// Evictions counts slots dropped to make room; LoadedBytes and
	// EvictedBytes are the byte volumes fetched and dropped.
	Evictions    int64
	LoadedBytes  int64
	EvictedBytes int64
}

// Residency tracks which of a fixed set of slots is resident in a
// capacity-bounded fast tier. Not safe for concurrent use; each scheduler
// owns one.
type Residency struct {
	sizes    []int64
	capacity int64
	policy   Policy
	pinned   int

	resident []bool
	// prefetched marks resident slots loaded by prefetch and not yet used.
	prefetched []bool
	lastUse    []int64 // recency tick per slot (LRU / Pinned victim order)
	loadSeq    []int64 // load tick per slot (FIFO victim order)
	used       int64
	tick       int64
	loads      int64

	heat  []int64 // demand uses per slot, the /statz heat map
	stats ResidencyStats
}

// NewResidency builds a tracker for len(sizes) slots under the given byte
// capacity. capacity <= 0 means unbounded (every slot fits — the
// all-resident baseline). A bounded capacity must hold the largest single
// slot (the executing layer always needs somewhere to live) and, under the
// Pinned policy, all pinned slots plus the largest unpinned one.
func NewResidency(sizes []int64, capacity int64, policy Policy, pinned int) (*Residency, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("staging: residency needs at least one slot")
	}
	var total, maxSlot int64
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("staging: slot %d has size %d", i, s)
		}
		total += s
		if s > maxSlot {
			maxSlot = s
		}
	}
	if capacity <= 0 || capacity > total {
		capacity = total
	}
	if policy != Pinned {
		pinned = 0
	}
	if pinned < 0 {
		pinned = 0
	}
	if pinned > len(sizes) {
		pinned = len(sizes)
	}
	if capacity < maxSlot {
		return nil, fmt.Errorf("staging: capacity %d below largest slot %d", capacity, maxSlot)
	}
	var pinnedBytes int64
	for i := 0; i < pinned; i++ {
		pinnedBytes += sizes[i]
	}
	if pinned < len(sizes) {
		// Room for the pinned set plus at least one victim slot, otherwise
		// the unpinned layers could never be loaded at all.
		var maxUnpinned int64
		for i := pinned; i < len(sizes); i++ {
			if sizes[i] > maxUnpinned {
				maxUnpinned = sizes[i]
			}
		}
		if pinnedBytes+maxUnpinned > capacity {
			return nil, fmt.Errorf("staging: capacity %d cannot hold %d pinned bytes plus a working slot", capacity, pinnedBytes)
		}
	}
	r := &Residency{
		sizes:      append([]int64(nil), sizes...),
		capacity:   capacity,
		policy:     policy,
		pinned:     pinned,
		resident:   make([]bool, len(sizes)),
		prefetched: make([]bool, len(sizes)),
		lastUse:    make([]int64, len(sizes)),
		loadSeq:    make([]int64, len(sizes)),
		heat:       make([]int64, len(sizes)),
	}
	// Pinned slots are wired down from the start (their load is part of
	// run setup, not any step's critical path).
	for i := 0; i < pinned; i++ {
		r.insert(i)
	}
	return r, nil
}

// Slots returns the slot count.
func (r *Residency) Slots() int { return len(r.sizes) }

// Capacity returns the effective byte capacity.
func (r *Residency) Capacity() int64 { return r.capacity }

// Pins returns the pinned slot count in effect.
func (r *Residency) Pins() int { return r.pinned }

// Resident reports whether slot i is in the fast tier.
func (r *Residency) Resident(i int) bool { return r.resident[i] }

// ResidentBytes returns the bytes currently held.
func (r *Residency) ResidentBytes() int64 { return r.used }

// Heat returns the per-slot demand-use counts (aliased; callers must not
// mutate).
func (r *Residency) Heat() []int64 { return r.heat }

// Stats returns the counters so far.
func (r *Residency) Stats() ResidencyStats { return r.stats }

// Warm marks slot i resident without counting a miss or an eviction — the
// initial working set a preceding step's traversal left behind. It fails
// rather than evict (warming is construction-time only).
func (r *Residency) Warm(i int) bool {
	if r.resident[i] {
		return true
	}
	if r.used+r.sizes[i] > r.capacity {
		return false
	}
	r.insert(i)
	return true
}

// Touch records a demand access to slot i without changing residency — the
// tiering controller's accessor. Under hot/cold migration, placement changes
// only through planned migrations, never as a side effect of an access, but
// accesses must still land in the same heat/hit/miss accounting the offload
// scheduler uses. Returns whether the slot was resident (a fast-tier hit).
func (r *Residency) Touch(i int) bool {
	r.tick++
	r.heat[i]++
	// Recency is a property of the access, not of residency: a far slot's
	// last use must advance too, or a recency-ranked migration policy could
	// never see it as a promotion candidate. Eviction ordering among
	// resident slots is unaffected.
	r.lastUse[i] = r.tick
	if r.resident[i] {
		r.stats.Hits++
		return true
	}
	r.stats.DemandMisses++
	return false
}

// Evict explicitly demotes slot i out of the fast tier — the tiering
// controller's migration primitive, distinct from policy-driven makeRoom
// eviction. Pinned and non-resident slots refuse; returns whether the slot
// was resident and is now demoted.
func (r *Residency) Evict(i int) bool {
	if i < r.pinned || !r.resident[i] {
		return false
	}
	r.resident[i] = false
	r.prefetched[i] = false
	r.used -= r.sizes[i]
	r.stats.Evictions++
	r.stats.EvictedBytes += r.sizes[i]
	recordEviction(r.sizes[i])
	return true
}

// LastUse returns slot i's recency tick (the LRU victim key), for
// recency-based placement policies layered on top of the tracker.
func (r *Residency) LastUse(i int) int64 { return r.lastUse[i] }

func (r *Residency) insert(i int) {
	r.resident[i] = true
	r.used += r.sizes[i]
	r.tick++
	r.loads++
	r.lastUse[i] = r.tick
	r.loadSeq[i] = r.loads
}

// Use records a demand access to slot i with slot `executing` currently on
// the compute unit (pass i itself outside any overlap window). It returns
// whether the access missed (the caller prices the on-critical-path fetch)
// and how many bytes of evictions made room.
func (r *Residency) Use(i, executing int) (miss bool, evictedBytes int64) {
	r.tick++
	r.heat[i]++
	if r.resident[i] {
		r.stats.Hits++
		if r.prefetched[i] {
			r.stats.PrefetchHits++
			r.prefetched[i] = false
		}
		r.lastUse[i] = r.tick
		return false, 0
	}
	r.stats.DemandMisses++
	evictedBytes = r.makeRoom(r.sizes[i], i, executing)
	if r.used+r.sizes[i] > r.capacity {
		// Unreachable by construction (capacity >= max slot and makeRoom
		// only refuses pinned/executing slots, which the constructor
		// guarantees leave room) — but fail loudly, not silently.
		panic(fmt.Sprintf("staging: cannot fit slot %d (%d bytes) in %d/%d", i, r.sizes[i], r.used, r.capacity))
	}
	r.insert(i)
	r.stats.LoadedBytes += r.sizes[i]
	return true, evictedBytes
}

// Prefetch loads slot i ahead of use, with slot `executing` on the compute
// unit. A prefetch never evicts the executing slot or a pinned slot; if no
// other victim exists it is skipped (the scheduler falls back to a demand
// fetch later). Returns whether a fetch was actually started.
func (r *Residency) Prefetch(i, executing int) bool {
	if r.resident[i] {
		return false
	}
	if !r.canMakeRoom(r.sizes[i], i, executing) {
		r.stats.PrefetchSkipped++
		return false
	}
	r.makeRoom(r.sizes[i], i, executing)
	r.insert(i)
	r.prefetched[i] = true
	r.stats.PrefetchIssued++
	r.stats.LoadedBytes += r.sizes[i]
	return true
}

// victim returns the policy's next eviction candidate, excluding pinned
// slots, the executing slot, and the slot being loaded; -1 if none.
func (r *Residency) victim(loading, executing int) int {
	best := -1
	var bestKey int64
	for i := r.pinned; i < len(r.sizes); i++ {
		if !r.resident[i] || i == loading || i == executing {
			continue
		}
		key := r.lastUse[i]
		if r.policy == FIFO {
			key = r.loadSeq[i]
		}
		if best == -1 || key < bestKey {
			best, bestKey = i, key
		}
	}
	return best
}

func (r *Residency) canMakeRoom(need int64, loading, executing int) bool {
	free := r.capacity - r.used
	for i := r.pinned; i < len(r.sizes) && free < need; i++ {
		if r.resident[i] && i != loading && i != executing {
			free += r.sizes[i]
		}
	}
	return free >= need
}

func (r *Residency) makeRoom(need int64, loading, executing int) (evictedBytes int64) {
	for r.capacity-r.used < need {
		v := r.victim(loading, executing)
		if v < 0 {
			break
		}
		r.resident[v] = false
		r.prefetched[v] = false
		r.used -= r.sizes[v]
		r.stats.Evictions++
		r.stats.EvictedBytes += r.sizes[v]
		evictedBytes += r.sizes[v]
		recordEviction(r.sizes[v])
	}
	return evictedBytes
}

// CheckInvariants validates the residency laws the conformance layer
// threads through the scheduler: the byte account matches the resident
// set exactly (no layer lost, none double-counted), the per-tier capacity
// is respected, and pinned slots are still wired down.
func (r *Residency) CheckInvariants() error {
	var used int64
	for i, res := range r.resident {
		if res {
			used += r.sizes[i]
		} else if r.prefetched[i] {
			return fmt.Errorf("staging: slot %d prefetched but not resident", i)
		}
	}
	if used != r.used {
		return fmt.Errorf("staging: resident bytes %d != tracked %d (layer lost)", used, r.used)
	}
	if r.used > r.capacity {
		return fmt.Errorf("staging: resident bytes %d exceed capacity %d", r.used, r.capacity)
	}
	for i := 0; i < r.pinned; i++ {
		if !r.resident[i] {
			return fmt.Errorf("staging: pinned slot %d was evicted", i)
		}
	}
	return nil
}
