package staging

import "sync/atomic"

// Process-wide layer-offload telemetry. Both halves of the per-layer
// scheduler — the functional trainer path (realtrain.OffloadScheduler) and
// the timing engine (core.StepLayered) — record residency events here, so
// the daemon's /statz endpoint can show layer heat and fast-tier churn
// alongside the fabric and cache figures. Counters are monotone for the
// life of the process.
var telemetry struct {
	demandMisses   atomic.Int64
	hits           atomic.Int64
	prefetchHits   atomic.Int64
	prefetchIssued atomic.Int64
	evictions      atomic.Int64
	evictedBytes   atomic.Int64
	loadedBytes    atomic.Int64
	writebackBytes atomic.Int64
	schedSteps     atomic.Int64
}

// LayerCounters is a point-in-time copy of the process-wide layer-offload
// telemetry, JSON-shaped for /statz.
type LayerCounters struct {
	// DemandMisses / Hits / PrefetchHits count demand accesses that fetched
	// on the critical path, found the layer resident, and found it resident
	// because a prefetch raced ahead of use.
	DemandMisses int64 `json:"demand_misses"`
	Hits         int64 `json:"hits"`
	PrefetchHits int64 `json:"prefetch_hits"`
	// PrefetchIssued counts prefetch fetches started.
	PrefetchIssued int64 `json:"prefetch_issued"`
	// Evictions / EvictedBytes / LoadedBytes count fast-tier churn.
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
	LoadedBytes  int64 `json:"loaded_bytes"`
	// WritebackBytes is the volume written back to the far tier
	// (activation spills and layer writebacks).
	WritebackBytes int64 `json:"writeback_bytes"`
	// SchedSteps counts training steps that ran under a layer scheduler.
	SchedSteps int64 `json:"sched_steps"`
}

// Counters returns the current process-wide layer-offload telemetry.
func Counters() LayerCounters {
	return LayerCounters{
		DemandMisses:   telemetry.demandMisses.Load(),
		Hits:           telemetry.hits.Load(),
		PrefetchHits:   telemetry.prefetchHits.Load(),
		PrefetchIssued: telemetry.prefetchIssued.Load(),
		Evictions:      telemetry.evictions.Load(),
		EvictedBytes:   telemetry.evictedBytes.Load(),
		LoadedBytes:    telemetry.loadedBytes.Load(),
		WritebackBytes: telemetry.writebackBytes.Load(),
		SchedSteps:     telemetry.schedSteps.Load(),
	}
}

func recordEviction(bytes int64) {
	telemetry.evictions.Add(1)
	telemetry.evictedBytes.Add(bytes)
}

// RecordSchedStep folds one scheduled step's residency deltas into the
// process-wide counters (delta = after - before for the step).
func RecordSchedStep(delta ResidencyStats) {
	telemetry.demandMisses.Add(delta.DemandMisses)
	telemetry.hits.Add(delta.Hits)
	telemetry.prefetchHits.Add(delta.PrefetchHits)
	telemetry.prefetchIssued.Add(delta.PrefetchIssued)
	telemetry.loadedBytes.Add(delta.LoadedBytes)
	telemetry.schedSteps.Add(1)
}

// RecordWriteback notes n bytes written back to the far tier.
func RecordWriteback(n int64) { telemetry.writebackBytes.Add(n) }
