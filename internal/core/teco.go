// Package core is TECO itself: the training-step engine that runs the
// ZeRO-Offload dataflow over the update-coherent CXL giant cache (paper
// Fig 6), optionally with dirty-byte aggregation, plus the invalidation-
// protocol ablation of §IV-A2.
//
// The functional protocol (state machines, packets, byte merging) lives in
// internal/coherence, internal/cxl and internal/dba and is exercised by
// ReplayLines; the timing engine here schedules layer-granular flows over
// the timed link model, which is how the paper's own evaluation couples
// gem5/Accel-Sim traces to its CXL emulator.
package core

import (
	"fmt"
	"sync/atomic"

	"teco/internal/conformance/check"
	"teco/internal/cpusim"
	"teco/internal/cxl"
	"teco/internal/dba"
	"teco/internal/gpusim"
	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/sim"
)

// Config selects the TECO variant and hyperparameters.
type Config struct {
	// DBA enables dirty-byte aggregation (TECO-Reduction).
	DBA bool
	// DirtyBytes is the `dirty_bytes` hyperparameter (default 2).
	DirtyBytes int
	// Invalidation runs the giant cache under the stock MESI protocol
	// (the §IV-A2 ablation) instead of the update extension.
	Invalidation bool
	// Faults configures deterministic link fault injection; the zero value
	// is a pristine link and leaves every timing bit-identical to the
	// fault-free engine.
	Faults cxl.FaultConfig
	// Degrade enables the graceful-degradation policy: when the configured
	// error rate makes DBA-aggregated payloads uneconomical (every retried
	// aggregated packet re-pays the merge-header round trip), the step
	// falls back to full-line transfers.
	Degrade bool
	// PerLine disables the flow-coalescing fast path: every cache line
	// becomes its own event on the stream simulator instead of a
	// closed-form run segment. Results are bit-identical in both modes
	// (asserted by coalesce_test.go); per-line exists as the reference
	// path and costs orders of magnitude more wall clock. The zero value
	// (coalesced) can be overridden process-wide with SetPerLineDefault,
	// which is how the tecosim -coalesce=false flag reaches the engines
	// the experiment generators build internally.
	PerLine bool
}

// perLineDefault is the process-wide PerLine override (see SetPerLineDefault).
var perLineDefault atomic.Bool

// SetPerLineDefault makes every subsequently built Engine default to the
// per-line reference path when v is true. An explicit Config.PerLine still
// wins; the default only lifts the zero value. cmd/tecosim sets it from
// -coalesce=false before any experiment runs.
func SetPerLineDefault(v bool) { perLineDefault.Store(v) }

// Variant returns the phases.Variant this config corresponds to.
func (c Config) Variant() phases.Variant {
	switch {
	case c.Invalidation:
		return phases.TECOInvalidation
	case c.DBA:
		return phases.TECOReduction
	default:
		return phases.TECOCXL
	}
}

// Engine simulates TECO training steps.
type Engine struct {
	GPU *gpusim.GPU
	CPU *cpusim.CPU
	// LinkBandwidth is the effective CXL bandwidth (94.3% of PCIe 3.0).
	LinkBandwidth float64
	// QueueCap is the CXL controller pending-queue depth.
	QueueCap int
	Config   Config
}

// NewEngine returns a TECO engine with the calibrated defaults. It rejects
// out-of-range hyperparameters (dirty_bytes outside 1..4, invalid fault
// rates) instead of panicking — these arrive from user flags.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.DirtyBytes <= 0 {
		cfg.DirtyBytes = dba.DefaultDirtyBytes
	}
	if cfg.DirtyBytes > 4 {
		return nil, fmt.Errorf("core: dirty_bytes %d outside 1..4", cfg.DirtyBytes)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	cfg.PerLine = cfg.PerLine || perLineDefault.Load()
	return &Engine{
		GPU:           gpusim.V100(),
		CPU:           cpusim.Xeon6120(),
		LinkBandwidth: modelzoo.CXLLinkBandwidth(),
		QueueCap:      cxl.DefaultQueueCap,
		Config:        cfg,
	}, nil
}

// MustEngine is NewEngine for statically known-good configs; it panics on a
// config NewEngine would reject.
func MustEngine(cfg Config) *Engine {
	e, err := NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// mustInject attaches a fault model to a link from a config NewEngine has
// already validated (derived-seed variants keep the same ranges).
func mustInject(l *cxl.Link, cfg cxl.FaultConfig) {
	if _, err := l.InjectFaults(cfg); err != nil {
		panic(err)
	}
}

// paramLinkBytes returns the CPU->GPU payload volume for one step.
func (e *Engine) paramLinkBytes(m modelzoo.Model, useDBA bool) int64 {
	if !useDBA || e.Config.Invalidation {
		return m.ParamBytes()
	}
	// DBA: dirty_bytes of every 4-byte word cross the link.
	return m.ParamBytes() * int64(e.Config.DirtyBytes) / 4
}

// Step simulates one training step under the configured variant.
func (e *Engine) Step(m modelzoo.Model, batch int) phases.StepResult {
	if e.Config.Invalidation {
		res := e.stepInvalidation(m, batch)
		if check.Enabled() {
			check.Check(res.Check)
		}
		return res
	}
	useDBA := e.Config.DBA
	degraded := false
	if useDBA && e.Config.Degrade &&
		AggregatedUneconomical(e.Config.Faults, e.Config.DirtyBytes, e.LinkBandwidth) {
		// Graceful degradation: aggregated payloads cost more expected
		// link time than full lines at this error rate — run the step
		// with DBA switched off. The variant label stays TECO-Reduction:
		// degradation is a per-step policy decision, not a reconfig.
		useDBA = false
		degraded = true
	}
	res := e.stepUpdate(m, batch, useDBA)
	res.Fault.Degraded = degraded
	if check.Enabled() {
		check.Check(res.Check)
	}
	return res
}

// stepUpdate is the TECO dataflow of Fig 6: gradients stream to CPU as
// backward writes them back ((3)); updated parameter cache lines stream to
// the giant cache as the vectorized ADAM pass writes them back ((1)/(2));
// CXLFENCE is called once after each producer finishes. useDBA selects the
// per-line payload (the degradation policy may clear it while Config.DBA
// stays set).
func (e *Engine) stepUpdate(m modelzoo.Model, batch int, useDBA bool) phases.StepResult {
	eng := sim.New()
	up := cxl.NewLink(eng, e.LinkBandwidth, e.QueueCap)   // giant cache -> CPU
	down := cxl.NewLink(eng, e.LinkBandwidth, e.QueueCap) // CPU -> giant cache
	fc := e.Config.Faults
	if fc.Enabled() {
		// Derived seeds keep the two directions on independent but
		// reproducible random streams.
		upCfg, downCfg := fc, fc
		upCfg.Seed = 2*fc.Seed + 1
		downCfg.Seed = 2*fc.Seed + 2
		mustInject(up, upCfg)
		mustInject(down, downCfg)
	}
	ups := cxl.NewStream(up, e.Config.PerLine)
	downs := cxl.NewStream(down, e.Config.PerLine)

	fwd := e.GPU.ForwardTime(m, batch)
	bwd := e.GPU.BackwardTime(m, batch)
	bwdStart := fwd
	bwdEnd := fwd + bwd

	// Gradients: cache-line-granular update pushes track backward layer
	// by layer (no buffer-fill delay — the fine-grained win). Gradients
	// never aggregate, so the wire packet is a full line.
	fullWire := cxl.WirePacketBytes(0)
	for _, ch := range e.GPU.GradientSchedule(m, batch) {
		ups.PushRun(bwdStart+ch.ReadyAt, int(ch.Bytes), mem.LinesIn(ch.Bytes), 0, fullWire, false)
	}
	// CXLFENCE after the last gradient writeback (Fig 6: "after the
	// buffer is full, CXLFENCE() must be called").
	gradDone := up.Fence(bwdEnd)
	gradExposed := gradDone - bwdEnd

	clip := e.CPU.ClipTime(m.Params)
	clipEnd := gradDone + clip

	// Parameters: ADAM's cache-line writebacks stream over the update
	// protocol while the pass runs. No double buffer, no explicit
	// transfer calls (Fig 6 (1)/(2)).
	adam := e.CPU.AdamTime(m.Params)
	adamEnd := clipEnd + adam
	perLine := e.perLinePayload(useDBA)
	paramWire := fullWire
	var extra sim.Time
	if useDBA {
		// Aggregator logic delay, amortized by pipelining: the paper
		// charges 1 ns end-to-end per in-flight group (§VIII-D).
		extra = dba.ModelledLatency
		paramWire = cxl.WirePacketBytes(e.Config.DirtyBytes)
	}
	for _, ch := range e.CPU.UpdateSchedule(m) {
		payload := ch.Bytes * int64(perLine) / mem.LineSize
		downs.PushRun(clipEnd+ch.ReadyAt, int(payload), mem.LinesIn(ch.Bytes), extra, paramWire, useDBA)
	}
	// One CXLFENCE after all parameters are updated (Listing 1: inside
	// optimizer.step()).
	paramDone := down.Fence(adamEnd)
	paramExposed := paramDone - adamEnd

	res := phases.StepResult{
		Variant: e.Config.Variant(),
		Breakdown: phases.Breakdown{
			Fwd:  fwd,
			Bwd:  bwd,
			Grad: gradExposed,
			Clip: clip,
			Adam: adam,
			Prm:  paramExposed,
		},
		ParamLinkBytes: e.paramLinkBytes(m, useDBA),
		GradLinkBytes:  m.GradBytes(),
	}
	if fc.Enabled() {
		// Poisoned lines fall back to on-demand fetches: the consumer
		// re-requests the full line (aggregation abandoned) on the
		// critical path, after the fence that surfaced the poison.
		gradRecovery := poisonRecoveryTime(up)
		prmRecovery := poisonRecoveryTime(down)
		res.Grad += gradRecovery
		res.Prm += prmRecovery
		res.GradLinkBytes += poisonRecoveryBytes(up)
		res.ParamLinkBytes += poisonRecoveryBytes(down)
		fs := up.FaultStats().Add(down.FaultStats())
		res.Fault = phases.FaultStats{
			Retries:       fs.Retries,
			ReplayedBytes: fs.ReplayedBytes,
			Poisoned:      fs.Poisoned,
			Recovered:     fs.Poisoned,
			Stalls:        fs.Stalls,
			StallTime:     fs.StallTime,
			Exposed: (gradDone - up.FenceClean(bwdEnd)) +
				(paramDone - down.FenceClean(adamEnd)) +
				gradRecovery + prmRecovery,
		}
	}
	return res
}

// poisonRecoveryTime prices the on-demand re-fetch of every line the link
// delivered poisoned: a NAK-style poison notification, the request/response
// message round trip, and the full-line resend, all on the critical path.
func poisonRecoveryTime(l *cxl.Link) sim.Time {
	n := l.FaultStats().Poisoned
	if n == 0 {
		return 0
	}
	cfg := l.Faults().Config()
	per := cfg.NakDelay + 2*l.ServiceTime(cxl.MsgBytes, 0) + l.ServiceTime(mem.LineSize, 0)
	return sim.Time(n) * per
}

// poisonRecoveryBytes is the extra link volume of those re-fetches.
func poisonRecoveryBytes(l *cxl.Link) int64 {
	return l.FaultStats().Poisoned * (cxl.MsgBytes + mem.LineSize)
}

// perLinePayload returns the on-link payload per 64-byte parameter line.
func (e *Engine) perLinePayload(useDBA bool) int {
	reg := dba.Register{Active: useDBA, DirtyBytes: uint8(e.Config.DirtyBytes)}
	return reg.PayloadBytes()
}

// stepInvalidation is the §IV-A2 ablation: with stock MESI, updates send
// only invalidation messages; the data crosses the link on demand when the
// consumer reads it, placing both full transfers on the critical path. The
// paper measures this costing +56.6% training time on average.
func (e *Engine) stepInvalidation(m modelzoo.Model, batch int) phases.StepResult {
	eng := sim.New()
	link := cxl.NewLink(eng, e.LinkBandwidth, e.QueueCap)
	glink := cxl.NewLink(eng, e.LinkBandwidth, e.QueueCap)
	fc := e.Config.Faults
	if fc.Enabled() {
		pCfg, gCfg := fc, fc
		pCfg.Seed = 2*fc.Seed + 3
		gCfg.Seed = 2*fc.Seed + 4
		mustInject(link, pCfg)
		mustInject(glink, gCfg)
	}
	links := cxl.NewStream(link, e.Config.PerLine)
	glinks := cxl.NewStream(glink, e.Config.PerLine)

	fwd := e.GPU.ForwardTime(m, batch)
	bwd := e.GPU.BackwardTime(m, batch)

	// Parameters fetched on demand when forward touches them (before any
	// compute can proceed), gradients fetched on demand when the CPU
	// clips. Invalidation messages also occupy the link.
	fullWire := cxl.WirePacketBytes(0)
	lines := mem.LinesIn(m.ParamBytes())
	invalMsgs := sim.DurationForBytes(lines*cxl.MsgBytes, link.BytesPerSecond())
	pf := links.PushRun(0, int(m.ParamBytes()), lines, 0, fullWire, false)
	paramFetch := pf.Done
	gf := glinks.PushRun(0, int(m.GradBytes()), mem.LinesIn(m.GradBytes()), 0, fullWire, false)
	gradFetch := gf.Done

	clip := e.CPU.ClipTime(m.Params)
	adam := e.CPU.AdamTime(m.Params)

	res := phases.StepResult{
		Variant: e.Config.Variant(),
		Breakdown: phases.Breakdown{
			Fwd:  fwd,
			Bwd:  bwd,
			Grad: gradFetch + invalMsgs,
			Clip: clip,
			Adam: adam,
			Prm:  paramFetch,
		},
		ParamLinkBytes: m.ParamBytes() + lines*cxl.MsgBytes,
		GradLinkBytes:  m.GradBytes(),
	}
	if fc.Enabled() {
		gradRecovery := poisonRecoveryTime(glink)
		prmRecovery := poisonRecoveryTime(link)
		res.Grad += gradRecovery
		res.Prm += prmRecovery
		res.GradLinkBytes += poisonRecoveryBytes(glink)
		res.ParamLinkBytes += poisonRecoveryBytes(link)
		fs := link.FaultStats().Add(glink.FaultStats())
		res.Fault = phases.FaultStats{
			Retries:       fs.Retries,
			ReplayedBytes: fs.ReplayedBytes,
			Poisoned:      fs.Poisoned,
			Recovered:     fs.Poisoned,
			Stalls:        fs.Stalls,
			StallTime:     fs.StallTime,
			Exposed: (pf.Done - pf.CleanDone) + (gf.Done - gf.CleanDone) +
				gradRecovery + prmRecovery,
		}
	}
	return res
}
