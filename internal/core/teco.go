// Package core is TECO itself: the training-step engine that runs the
// ZeRO-Offload dataflow over the update-coherent CXL giant cache (paper
// Fig 6), optionally with dirty-byte aggregation, plus the invalidation-
// protocol ablation of §IV-A2.
//
// The functional protocol (state machines, packets, byte merging) lives in
// internal/coherence, internal/cxl and internal/dba and is exercised by
// ReplayLines; the timing engine here schedules layer-granular flows over
// the timed link model, which is how the paper's own evaluation couples
// gem5/Accel-Sim traces to its CXL emulator.
package core

import (
	"fmt"

	"teco/internal/cpusim"
	"teco/internal/cxl"
	"teco/internal/dba"
	"teco/internal/gpusim"
	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/sim"
)

// Config selects the TECO variant and hyperparameters.
type Config struct {
	// DBA enables dirty-byte aggregation (TECO-Reduction).
	DBA bool
	// DirtyBytes is the `dirty_bytes` hyperparameter (default 2).
	DirtyBytes int
	// Invalidation runs the giant cache under the stock MESI protocol
	// (the §IV-A2 ablation) instead of the update extension.
	Invalidation bool
}

// Variant returns the phases.Variant this config corresponds to.
func (c Config) Variant() phases.Variant {
	switch {
	case c.Invalidation:
		return phases.TECOInvalidation
	case c.DBA:
		return phases.TECOReduction
	default:
		return phases.TECOCXL
	}
}

// Engine simulates TECO training steps.
type Engine struct {
	GPU *gpusim.GPU
	CPU *cpusim.CPU
	// LinkBandwidth is the effective CXL bandwidth (94.3% of PCIe 3.0).
	LinkBandwidth float64
	// QueueCap is the CXL controller pending-queue depth.
	QueueCap int
	Config   Config
}

// NewEngine returns a TECO engine with the calibrated defaults.
func NewEngine(cfg Config) *Engine {
	if cfg.DirtyBytes <= 0 {
		cfg.DirtyBytes = dba.DefaultDirtyBytes
	}
	if cfg.DirtyBytes > 4 {
		panic(fmt.Sprintf("core: dirty_bytes %d", cfg.DirtyBytes))
	}
	return &Engine{
		GPU:           gpusim.V100(),
		CPU:           cpusim.Xeon6120(),
		LinkBandwidth: modelzoo.CXLLinkBandwidth(),
		QueueCap:      cxl.DefaultQueueCap,
		Config:        cfg,
	}
}

// paramLinkBytes returns the CPU->GPU payload volume for one step.
func (e *Engine) paramLinkBytes(m modelzoo.Model) int64 {
	if !e.Config.DBA || e.Config.Invalidation {
		return m.ParamBytes()
	}
	// DBA: dirty_bytes of every 4-byte word cross the link.
	return m.ParamBytes() * int64(e.Config.DirtyBytes) / 4
}

// Step simulates one training step under the configured variant.
func (e *Engine) Step(m modelzoo.Model, batch int) phases.StepResult {
	if e.Config.Invalidation {
		return e.stepInvalidation(m, batch)
	}
	return e.stepUpdate(m, batch)
}

// stepUpdate is the TECO dataflow of Fig 6: gradients stream to CPU as
// backward writes them back ((3)); updated parameter cache lines stream to
// the giant cache as the vectorized ADAM pass writes them back ((1)/(2));
// CXLFENCE is called once after each producer finishes.
func (e *Engine) stepUpdate(m modelzoo.Model, batch int) phases.StepResult {
	eng := sim.New()
	up := cxl.NewLink(eng, e.LinkBandwidth, e.QueueCap)   // giant cache -> CPU
	down := cxl.NewLink(eng, e.LinkBandwidth, e.QueueCap) // CPU -> giant cache

	fwd := e.GPU.ForwardTime(m, batch)
	bwd := e.GPU.BackwardTime(m, batch)
	bwdStart := fwd
	bwdEnd := fwd + bwd

	// Gradients: cache-line-granular update pushes track backward layer
	// by layer (no buffer-fill delay — the fine-grained win).
	for _, ch := range e.GPU.GradientSchedule(m, batch) {
		up.Send(bwdStart+ch.ReadyAt, int(ch.Bytes), 0)
	}
	// CXLFENCE after the last gradient writeback (Fig 6: "after the
	// buffer is full, CXLFENCE() must be called").
	gradDone := up.Fence(bwdEnd)
	gradExposed := gradDone - bwdEnd

	clip := e.CPU.ClipTime(m.Params)
	clipEnd := gradDone + clip

	// Parameters: ADAM's cache-line writebacks stream over the update
	// protocol while the pass runs. No double buffer, no explicit
	// transfer calls (Fig 6 (1)/(2)).
	adam := e.CPU.AdamTime(m.Params)
	adamEnd := clipEnd + adam
	perLine := e.perLinePayload()
	var extra sim.Time
	if e.Config.DBA {
		// Aggregator logic delay, amortized by pipelining: the paper
		// charges 1 ns end-to-end per in-flight group (§VIII-D).
		extra = dba.ModelledLatency
	}
	for _, ch := range e.CPU.UpdateSchedule(m) {
		payload := ch.Bytes * int64(perLine) / mem.LineSize
		down.Send(clipEnd+ch.ReadyAt, int(payload), extra)
	}
	// One CXLFENCE after all parameters are updated (Listing 1: inside
	// optimizer.step()).
	paramDone := down.Fence(adamEnd)
	paramExposed := paramDone - adamEnd

	return phases.StepResult{
		Variant: e.Config.Variant(),
		Breakdown: phases.Breakdown{
			Fwd:  fwd,
			Bwd:  bwd,
			Grad: gradExposed,
			Clip: clip,
			Adam: adam,
			Prm:  paramExposed,
		},
		ParamLinkBytes: e.paramLinkBytes(m),
		GradLinkBytes:  m.GradBytes(),
	}
}

// perLinePayload returns the on-link payload per 64-byte parameter line.
func (e *Engine) perLinePayload() int {
	reg := dba.Register{Active: e.Config.DBA, DirtyBytes: uint8(e.Config.DirtyBytes)}
	return reg.PayloadBytes()
}

// stepInvalidation is the §IV-A2 ablation: with stock MESI, updates send
// only invalidation messages; the data crosses the link on demand when the
// consumer reads it, placing both full transfers on the critical path. The
// paper measures this costing +56.6% training time on average.
func (e *Engine) stepInvalidation(m modelzoo.Model, batch int) phases.StepResult {
	eng := sim.New()
	link := cxl.NewLink(eng, e.LinkBandwidth, e.QueueCap)

	fwd := e.GPU.ForwardTime(m, batch)
	bwd := e.GPU.BackwardTime(m, batch)

	// Parameters fetched on demand when forward touches them (before any
	// compute can proceed), gradients fetched on demand when the CPU
	// clips. Invalidation messages also occupy the link.
	lines := mem.LinesIn(m.ParamBytes())
	invalMsgs := sim.DurationForBytes(lines*cxl.MsgBytes, e.LinkBandwidth)
	_, paramFetch := link.Send(0, int(m.ParamBytes()), 0)
	gradFetch := sim.DurationForBytes(m.GradBytes(), e.LinkBandwidth)

	clip := e.CPU.ClipTime(m.Params)
	adam := e.CPU.AdamTime(m.Params)

	return phases.StepResult{
		Variant: e.Config.Variant(),
		Breakdown: phases.Breakdown{
			Fwd:  fwd,
			Bwd:  bwd,
			Grad: gradFetch + invalMsgs,
			Clip: clip,
			Adam: adam,
			Prm:  paramFetch,
		},
		ParamLinkBytes: m.ParamBytes() + lines*cxl.MsgBytes,
		GradLinkBytes:  m.GradBytes(),
	}
}
