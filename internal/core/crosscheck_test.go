package core

import (
	"testing"

	"teco/internal/cpusim"
	"teco/internal/cxl"
	"teco/internal/dba"
	"teco/internal/gpusim"
	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/sim"
	"teco/internal/trace"
	"teco/internal/zero"
)

// TestEngineMatchesTraceReplay cross-validates the two halves of the
// methodology: the layer-granular flow engine (Step) against an explicit
// writeback-trace replay through the same link model (the paper's
// gem5-trace -> process.py path). The parameter-phase drain computed both
// ways must agree.
func TestEngineMatchesTraceReplay(t *testing.T) {
	for _, m := range []modelzoo.Model{modelzoo.GPT2(), modelzoo.BertLargeCased(), modelzoo.T5Large()} {
		for _, useDBA := range []bool{false, true} {
			e := MustEngine(Config{DBA: useDBA})
			r := e.Step(m, 4)

			// Rebuild the same ADAM writeback schedule as a trace and
			// replay it line-group by line-group over a fresh link.
			cpu := cpusim.Xeon6120()
			chunks := cpu.UpdateSchedule(m)
			ready := make([]sim.Time, len(chunks))
			sizes := make([]int64, len(chunks))
			for i, c := range chunks {
				ready[i], sizes[i] = c.ReadyAt, c.Bytes
			}
			// One record per layer chunk = the engine's own granularity.
			tr := trace.FromUpdateChunks(0, ready, sizes, 0, 1)
			link := cxl.NewLink(sim.New(), e.LinkBandwidth, e.QueueCap)
			payloadPerLine := mem.LineSize
			var extra sim.Time
			if useDBA {
				payloadPerLine = dba.WordsPerLine * dba.DefaultDirtyBytes
				extra = dba.ModelledLatency
			}
			// Scale: each record carries one whole layer's bytes.
			var finish sim.Time
			for i, rec := range tr.Stores() {
				payload := sizes[i] * int64(payloadPerLine) / mem.LineSize
				_, done := link.Send(rec.At, int(payload), extra)
				if done > finish {
					finish = done
				}
			}
			adamEnd := cpu.AdamTime(m.Params)
			var exposed sim.Time
			if finish > adamEnd {
				exposed = finish - adamEnd
			}
			if r.Prm != exposed {
				t.Errorf("%s dba=%v: engine exposure %v != trace replay %v", m.Name, useDBA, r.Prm, exposed)
			}
		}
	}
}

// TestParamVolumeConservation: bytes on the link equal the model's
// parameter bytes exactly (halved under DBA) for every engine variant — no
// silent truncation anywhere in the flow decomposition.
func TestParamVolumeConservation(t *testing.T) {
	for _, m := range modelzoo.EvaluationModels() {
		b := 4
		if m.FullGraphOnly {
			b = 1
		}
		base := zero.NewEngine().Step(m, b)
		if base.ParamLinkBytes != m.ParamBytes() {
			t.Errorf("%s: baseline param bytes %d != %d", m.Name, base.ParamLinkBytes, m.ParamBytes())
		}
		red := MustEngine(Config{DBA: true}).Step(m, b)
		if red.ParamLinkBytes != m.ParamBytes()/2 {
			t.Errorf("%s: DBA param bytes %d != %d", m.Name, red.ParamLinkBytes, m.ParamBytes()/2)
		}
		if red.GradLinkBytes != m.GradBytes() {
			t.Errorf("%s: grad bytes %d != %d", m.Name, red.GradLinkBytes, m.GradBytes())
		}
	}
}

// TestStepMonotoneInBatch: more compute per step, longer steps — for every
// variant.
func TestStepMonotoneInBatch(t *testing.T) {
	m := modelzoo.BertLargeCased()
	for _, cfg := range []Config{{}, {DBA: true}, {Invalidation: true}} {
		e := MustEngine(cfg)
		prev := sim.Time(0)
		for _, b := range []int{1, 2, 4, 8, 16, 32} {
			tot := e.Step(m, b).Total()
			if tot <= prev {
				t.Fatalf("%v: total not monotone at batch %d", cfg.Variant(), b)
			}
			prev = tot
		}
	}
}

// TestGradExposureMatchesReplay cross-validates the gradient direction the
// same way: replaying the backward writeback schedule over a fresh link
// must produce the engine's exposed gradient time.
func TestGradExposureMatchesReplay(t *testing.T) {
	gpu := gpusim.V100()
	for _, m := range []modelzoo.Model{modelzoo.GPT2(), modelzoo.T5Large()} {
		for _, batch := range []int{4, 8} {
			e := MustEngine(Config{})
			r := e.Step(m, batch)

			link := cxl.NewLink(sim.New(), e.LinkBandwidth, e.QueueCap)
			bwdStart := gpu.ForwardTime(m, batch)
			bwdEnd := bwdStart + gpu.BackwardTime(m, batch)
			var finish sim.Time
			for _, ch := range gpu.GradientSchedule(m, batch) {
				_, done := link.Send(bwdStart+ch.ReadyAt, int(ch.Bytes), 0)
				if done > finish {
					finish = done
				}
			}
			var exposed sim.Time
			if finish > bwdEnd {
				exposed = finish - bwdEnd
			}
			if r.Grad != exposed {
				t.Errorf("%s b%d: engine grad exposure %v != replay %v", m.Name, batch, r.Grad, exposed)
			}
		}
	}
}
