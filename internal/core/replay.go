package core

import (
	"errors"
	"fmt"

	"teco/internal/coherence"
	"teco/internal/cxl"
	"teco/internal/dba"
	"teco/internal/mem"
	"teco/internal/tensor"
)

// ReplayStats summarizes a functional protocol replay.
type ReplayStats struct {
	// Lines is the number of parameter cache lines updated.
	Lines int64
	// PayloadBytes is the total payload crossing the link CPU->GPU.
	PayloadBytes int64
	// OnDemandTransfers counts critical-path (read-miss) transfers; zero
	// under the update protocol.
	OnDemandTransfers int64
	// FlushData counts update-protocol pushes.
	FlushData int64
	// SnoopEntries is the directory size at the end (zero under update).
	SnoopEntries int
	// Retries counts CRC-failed frames that were retransmitted.
	Retries int64
	// Poisoned counts pushes whose retry budget was exhausted; the line
	// was delivered poisoned and the consumer fell back to an on-demand
	// fetch instead of merging corrupt data.
	Poisoned int64
	// Recovered counts poisoned lines re-fetched on demand.
	Recovered int64
}

// wireScratch holds the per-replay reusable buffers for the functional wire
// path, so the per-line loop runs allocation-free in steady state: the line
// image, the aggregated payload, the encoded frame, the fault model's
// corruption copy, and the decoded packet (whose payload capacity DecodeInto
// recycles). One replay call owns one wireScratch; nothing escapes a
// delivery except through explicit copies.
type wireScratch struct {
	line    []byte     // EncodeLineInto target (one cache line)
	payload []byte     // AppendAggregate target
	frame   []byte     // AppendEncode/AppendEncodeFramed target
	corrupt []byte     // CorruptFrameReuse scratch
	merged  []byte     // DisaggregateInto target (one cache line)
	decoded cxl.Packet // DecodeInto/DecodeFramedInto target
}

func newWireScratch() *wireScratch {
	return &wireScratch{
		line:   make([]byte, mem.LineSize),
		merged: make([]byte, mem.LineSize),
	}
}

// wireDelivery runs one frame across the (possibly faulty) wire: encode with
// the CRC trailer, corrupt per the fault model, decode. CRC failures are
// retransmitted; a push that exhausts `budget` returns cxl.ErrCRC (the
// caller poisons the line). On-demand fetches are critical-path — the
// consumer cannot proceed without the data — so they retry until clean.
// The decoded packet lives in ws.decoded and is valid until the next call.
func (ws *wireScratch) wireDelivery(pkt *cxl.Packet, fm *cxl.FaultModel, onDemand bool, retries *int64) (*cxl.Packet, error) {
	if fm == nil {
		wire, err := pkt.AppendEncode(ws.frame[:0])
		if err != nil {
			return nil, err
		}
		ws.frame = wire
		if err := cxl.DecodeInto(&ws.decoded, wire); err != nil {
			return nil, err
		}
		return &ws.decoded, nil
	}
	frame, err := pkt.AppendEncodeFramed(ws.frame[:0])
	if err != nil {
		return nil, err
	}
	ws.frame = frame
	budget := fm.Config().RetryBudget
	for attempt := 0; ; attempt++ {
		wire, flips := fm.CorruptFrameReuse(frame, ws.corrupt)
		if flips > 0 {
			ws.corrupt = wire
		}
		err := cxl.DecodeFramedInto(&ws.decoded, wire)
		if err == nil {
			return &ws.decoded, nil
		}
		if !errors.Is(err, cxl.ErrCRC) {
			return nil, err
		}
		*retries++
		if !onDemand && attempt >= budget {
			return nil, err
		}
	}
}

// ReplayParameterUpdate drives the full functional stack for one parameter
// update cycle: the CPU writes every cache line of `updated` into the
// coherent domain; payloads are framed as CXL packets (DBA-aggregated when
// configured), decoded on the accelerator side, and merged into the stale
// device copy (`old`). It returns the resulting device-side tensor and the
// protocol statistics.
//
// Under DBA the device tensor is the byte-exact dirty-byte merge: new low
// bytes over old high bytes — the approximation the accuracy experiments
// (Table V, Fig 10, Fig 13) quantify.
//
// With cfg.Faults enabled, frames carry the flit CRC trailer and cross a
// lossy wire: CRC failures are NAK'd and retransmitted; pushes exhausting
// the retry budget are delivered poisoned, the writer keeps ownership, and
// the consumer's next read recovers the line with an on-demand fetch — the
// merge never consumes corrupt bytes.
func ReplayParameterUpdate(old, updated *tensor.Tensor, cfg Config) (*tensor.Tensor, ReplayStats, error) {
	if old.Len() != updated.Len() {
		return nil, ReplayStats{}, fmt.Errorf("core: replay over mismatched tensors (%d vs %d)", old.Len(), updated.Len())
	}
	if cfg.DirtyBytes <= 0 {
		cfg.DirtyBytes = dba.DefaultDirtyBytes
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, ReplayStats{}, err
	}
	var fm *cxl.FaultModel
	if cfg.Faults.Enabled() {
		fcfg := cfg.Faults
		fcfg.Seed = 2*fcfg.Seed + 5
		fm = cxl.MustFaultModel(fcfg) // validated above
	}

	amap := mem.NewMap()
	region := amap.Allocate("params", mem.RegionGiantCache, old.Bytes())
	mode := coherence.Update
	if cfg.Invalidation {
		mode = coherence.Invalidation
	}

	device := old.Clone()
	var stats ReplayStats
	var cbErr error
	var poisoned []mem.LineAddr
	ws := newWireScratch()
	stale := make([]byte, mem.LineSize)

	dom := coherence.NewDomain(coherence.Config{
		Mode:    mode,
		AddrMap: amap,
		OnTransfer: func(tr coherence.Transfer) {
			if cbErr != nil {
				return
			}
			if tr.OnDemand {
				stats.OnDemandTransfers++
			}
			if tr.Msg == coherence.MsgFlushData {
				stats.FlushData++
			}
			line := int64(tr.Line - region.Base.Line())
			// Frame the payload as a CXL packet and apply it to the
			// device copy.
			newLine := updated.EncodeLineInto(line, ws.line)
			var pkt cxl.Packet
			if cfg.DBA && !cfg.Invalidation {
				ws.payload = dba.AppendAggregate(ws.payload[:0], newLine, cfg.DirtyBytes)
				pkt = cxl.Packet{
					Addr:       tr.Line,
					Aggregated: true,
					DirtyBytes: uint8(cfg.DirtyBytes),
					Payload:    ws.payload,
				}
			} else {
				pkt = cxl.Packet{Addr: tr.Line, Payload: newLine}
			}
			decoded, err := ws.wireDelivery(&pkt, fm, tr.OnDemand, &stats.Retries)
			if err != nil {
				if errors.Is(err, cxl.ErrCRC) {
					// Retry budget exhausted: the line arrives poisoned
					// and is NOT merged; the protocol layer recovers it.
					stats.Poisoned++
					poisoned = append(poisoned, tr.Line)
					return
				}
				cbErr = err
				return
			}
			stats.PayloadBytes += int64(decoded.PayloadLen())
			if decoded.Aggregated {
				device.EncodeLineInto(line, stale)
				merged := dba.DisaggregateInto(ws.merged, stale, decoded.Payload, int(decoded.DirtyBytes))
				device.DecodeLine(line, merged)
			} else {
				device.DecodeLine(line, decoded.Payload)
			}
		},
	})

	// drainPoison surfaces the poisoned deliveries to the protocol: the
	// writer reverts to Modified (it still owns the only good copy) and
	// the consumer's copy is invalidated, forcing on-demand recovery.
	drainPoison := func() {
		for _, l := range poisoned {
			dom.PoisonPush(l, coherence.CPU)
		}
		poisoned = poisoned[:0]
	}

	lines := old.Lines()
	stats.Lines = lines
	// Initial condition: the giant cache holds the previous step's
	// parameters (Fig 5: G_S = E).
	for l := int64(0); l < lines; l++ {
		dom.Seed(region.Base.Line()+mem.LineAddr(l), coherence.Accelerator)
	}
	// CPU ADAM pass: vectorized update writes each line once.
	for l := int64(0); l < lines; l++ {
		dom.Write(region.Base.Line()+mem.LineAddr(l), coherence.CPU)
	}
	drainPoison()
	// End-of-iteration flush guarantees everything was pushed (update
	// protocol); poisoned lines are Modified again and survive the flush —
	// the writer keeps the only good copy until the consumer recovers it
	// on demand. Under the invalidation ablation there is no push: dirty
	// lines stay in the CPU cache (or cross at eviction) and the
	// accelerator pulls them on demand — the §IV-A2 critical-path cost.
	if mode == coherence.Update {
		dom.FlushCPU()
	}
	// Accelerator reads all parameters for the next forward pass; under
	// the update protocol these are local hits (or on-demand recoveries of
	// still-poisoned lines), under invalidation they are on-demand fills.
	for l := int64(0); l < lines; l++ {
		dom.Read(region.Base.Line()+mem.LineAddr(l), coherence.Accelerator)
	}
	if cbErr != nil {
		return nil, stats, cbErr
	}
	dom.NoteRetransmit(stats.Retries)
	_, _, stats.Recovered = dom.FaultCounters()
	stats.SnoopEntries = dom.SnoopEntries()
	return device, stats, nil
}

// ReplayGradientFlush drives the reverse functional path: the accelerator
// produces gradient cache lines in the giant-cache region during backward
// ((3) in Fig 6); the update protocol pushes each line to the CPU, which
// assembles its gradient copy for clipping and ADAM. It returns the
// CPU-side tensor and protocol statistics. Gradients never use DBA (paper
// §V: "the gradients transfers from the accelerator to CPU cannot apply
// DBA"), so every payload is a full 64-byte line.
func ReplayGradientFlush(grads *tensor.Tensor, cfg Config) (*tensor.Tensor, ReplayStats, error) {
	if err := cfg.Faults.Validate(); err != nil {
		return nil, ReplayStats{}, err
	}
	var fm *cxl.FaultModel
	if cfg.Faults.Enabled() {
		fcfg := cfg.Faults
		fcfg.Seed = 2*fcfg.Seed + 6
		fm = cxl.MustFaultModel(fcfg) // validated above
	}

	amap := mem.NewMap()
	region := amap.Allocate("grads", mem.RegionGiantCache, grads.Bytes())
	mode := coherence.Update
	if cfg.Invalidation {
		mode = coherence.Invalidation
	}

	cpuCopy := tensor.New(grads.Name()+"-cpu", grads.Len())
	var stats ReplayStats
	var cbErr error
	var poisoned []mem.LineAddr
	ws := newWireScratch()
	dom := coherence.NewDomain(coherence.Config{
		Mode:    mode,
		AddrMap: amap,
		OnTransfer: func(tr coherence.Transfer) {
			if cbErr != nil {
				return
			}
			if tr.OnDemand {
				stats.OnDemandTransfers++
			}
			if tr.Msg == coherence.MsgFlushData {
				stats.FlushData++
			}
			line := int64(tr.Line - region.Base.Line())
			pkt := cxl.Packet{Addr: tr.Line, Payload: grads.EncodeLineInto(line, ws.line)}
			decoded, err := ws.wireDelivery(&pkt, fm, tr.OnDemand, &stats.Retries)
			if err != nil {
				if errors.Is(err, cxl.ErrCRC) {
					stats.Poisoned++
					poisoned = append(poisoned, tr.Line)
					return
				}
				cbErr = err
				return
			}
			stats.PayloadBytes += int64(decoded.PayloadLen())
			cpuCopy.DecodeLine(line, decoded.Payload)
		},
	})

	lines := grads.Lines()
	stats.Lines = lines
	// Backward writes each gradient line once on the accelerator.
	for l := int64(0); l < lines; l++ {
		dom.Write(region.Base.Line()+mem.LineAddr(l), coherence.Accelerator)
	}
	for _, l := range poisoned {
		dom.PoisonPush(l, coherence.Accelerator)
	}
	poisoned = poisoned[:0]
	// CPU reads all gradients for clipping; under the update protocol the
	// data already arrived (poisoned lines recover on demand), under
	// invalidation each read is on demand.
	for l := int64(0); l < lines; l++ {
		dom.Read(region.Base.Line()+mem.LineAddr(l), coherence.CPU)
	}
	if cbErr != nil {
		return nil, stats, cbErr
	}
	dom.NoteRetransmit(stats.Retries)
	_, _, stats.Recovered = dom.FaultCounters()
	stats.SnoopEntries = dom.SnoopEntries()
	return cpuCopy, stats, nil
}
