package core

import (
	"fmt"

	"teco/internal/coherence"
	"teco/internal/cxl"
	"teco/internal/dba"
	"teco/internal/mem"
	"teco/internal/tensor"
)

// ReplayStats summarizes a functional protocol replay.
type ReplayStats struct {
	// Lines is the number of parameter cache lines updated.
	Lines int64
	// PayloadBytes is the total payload crossing the link CPU->GPU.
	PayloadBytes int64
	// OnDemandTransfers counts critical-path (read-miss) transfers; zero
	// under the update protocol.
	OnDemandTransfers int64
	// FlushData counts update-protocol pushes.
	FlushData int64
	// SnoopEntries is the directory size at the end (zero under update).
	SnoopEntries int
}

// ReplayParameterUpdate drives the full functional stack for one parameter
// update cycle: the CPU writes every cache line of `updated` into the
// coherent domain; payloads are framed as CXL packets (DBA-aggregated when
// configured), decoded on the accelerator side, and merged into the stale
// device copy (`old`). It returns the resulting device-side tensor and the
// protocol statistics.
//
// Under DBA the device tensor is the byte-exact dirty-byte merge: new low
// bytes over old high bytes — the approximation the accuracy experiments
// (Table V, Fig 10, Fig 13) quantify.
func ReplayParameterUpdate(old, updated *tensor.Tensor, cfg Config) (*tensor.Tensor, ReplayStats, error) {
	if old.Len() != updated.Len() {
		return nil, ReplayStats{}, fmt.Errorf("core: replay over mismatched tensors (%d vs %d)", old.Len(), updated.Len())
	}
	if cfg.DirtyBytes <= 0 {
		cfg.DirtyBytes = dba.DefaultDirtyBytes
	}

	amap := mem.NewMap()
	region := amap.Allocate("params", mem.RegionGiantCache, old.Bytes())
	mode := coherence.Update
	if cfg.Invalidation {
		mode = coherence.Invalidation
	}

	device := old.Clone()
	var stats ReplayStats

	dom := coherence.NewDomain(coherence.Config{
		Mode:    mode,
		AddrMap: amap,
		OnTransfer: func(tr coherence.Transfer) {
			if tr.OnDemand {
				stats.OnDemandTransfers++
			}
			if tr.Msg == coherence.MsgFlushData {
				stats.FlushData++
			}
			line := int64(tr.Line - region.Base.Line())
			// Frame the payload as a CXL packet and apply it to the
			// device copy.
			newLine := updated.EncodeLine(line)
			var pkt cxl.Packet
			if cfg.DBA && !cfg.Invalidation {
				pkt = cxl.Packet{
					Addr:       tr.Line,
					Aggregated: true,
					DirtyBytes: uint8(cfg.DirtyBytes),
					Payload:    dba.Aggregate(newLine, cfg.DirtyBytes),
				}
			} else {
				pkt = cxl.Packet{Addr: tr.Line, Payload: newLine}
			}
			wire := pkt.Encode()
			decoded, err := cxl.Decode(wire)
			if err != nil {
				panic(fmt.Sprintf("core: packet did not survive the wire: %v", err))
			}
			stats.PayloadBytes += int64(decoded.PayloadLen())
			if decoded.Aggregated {
				stale := device.EncodeLine(line)
				merged := dba.Disaggregate(stale, decoded.Payload, int(decoded.DirtyBytes))
				device.DecodeLine(line, merged)
			} else {
				device.DecodeLine(line, decoded.Payload)
			}
		},
	})

	lines := old.Lines()
	stats.Lines = lines
	// Initial condition: the giant cache holds the previous step's
	// parameters (Fig 5: G_S = E).
	for l := int64(0); l < lines; l++ {
		dom.Seed(region.Base.Line()+mem.LineAddr(l), coherence.Accelerator)
	}
	// CPU ADAM pass: vectorized update writes each line once.
	for l := int64(0); l < lines; l++ {
		dom.Write(region.Base.Line()+mem.LineAddr(l), coherence.CPU)
	}
	// End-of-iteration flush guarantees everything was pushed (update
	// protocol). Under the invalidation ablation there is no push: dirty
	// lines stay in the CPU cache (or cross at eviction) and the
	// accelerator pulls them on demand — the §IV-A2 critical-path cost.
	if mode == coherence.Update {
		dom.FlushCPU()
	}
	// Accelerator reads all parameters for the next forward pass; under
	// the update protocol these are local hits, under invalidation they
	// are on-demand fills.
	for l := int64(0); l < lines; l++ {
		dom.Read(region.Base.Line()+mem.LineAddr(l), coherence.Accelerator)
	}
	stats.SnoopEntries = dom.SnoopEntries()
	return device, stats, nil
}

// ReplayGradientFlush drives the reverse functional path: the accelerator
// produces gradient cache lines in the giant-cache region during backward
// ((3) in Fig 6); the update protocol pushes each line to the CPU, which
// assembles its gradient copy for clipping and ADAM. It returns the
// CPU-side tensor and protocol statistics. Gradients never use DBA (paper
// §V: "the gradients transfers from the accelerator to CPU cannot apply
// DBA"), so every payload is a full 64-byte line.
func ReplayGradientFlush(grads *tensor.Tensor, cfg Config) (*tensor.Tensor, ReplayStats, error) {
	amap := mem.NewMap()
	region := amap.Allocate("grads", mem.RegionGiantCache, grads.Bytes())
	mode := coherence.Update
	if cfg.Invalidation {
		mode = coherence.Invalidation
	}

	cpuCopy := tensor.New(grads.Name()+"-cpu", grads.Len())
	var stats ReplayStats
	dom := coherence.NewDomain(coherence.Config{
		Mode:    mode,
		AddrMap: amap,
		OnTransfer: func(tr coherence.Transfer) {
			if tr.OnDemand {
				stats.OnDemandTransfers++
			}
			if tr.Msg == coherence.MsgFlushData {
				stats.FlushData++
			}
			line := int64(tr.Line - region.Base.Line())
			pkt := cxl.Packet{Addr: tr.Line, Payload: grads.EncodeLine(line)}
			decoded, err := cxl.Decode(pkt.Encode())
			if err != nil {
				panic(fmt.Sprintf("core: gradient packet did not survive the wire: %v", err))
			}
			stats.PayloadBytes += int64(decoded.PayloadLen())
			cpuCopy.DecodeLine(line, decoded.Payload)
		},
	})

	lines := grads.Lines()
	stats.Lines = lines
	// Backward writes each gradient line once on the accelerator.
	for l := int64(0); l < lines; l++ {
		dom.Write(region.Base.Line()+mem.LineAddr(l), coherence.Accelerator)
	}
	// CPU reads all gradients for clipping; under the update protocol the
	// data already arrived, under invalidation each read is on demand.
	for l := int64(0); l < lines; l++ {
		dom.Read(region.Base.Line()+mem.LineAddr(l), coherence.CPU)
	}
	stats.SnoopEntries = dom.SnoopEntries()
	return cpuCopy, stats, nil
}
