package core

import (
	"math"
	"strings"
	"testing"

	"teco/internal/checkpoint"
	"teco/internal/realtrain"
)

// recoverCfg keeps the recovery tests quick while still exercising DBA
// activation and sampling inside the checkpointed window.
func recoverCfg(dir string) SessionConfig {
	return SessionConfig{
		Train: realtrain.Config{
			Steps: 60, PreSteps: 40, Seed: 77,
			DBA: true, ActAfterSteps: 20, SampleEvery: 5,
		},
		Dir:      dir,
		Interval: 10,
	}
}

func wordsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// referenceRun executes the same training uninterrupted (guards on, no
// checkpointing, no faults) and returns the finished trainer.
func referenceRun(t *testing.T, cfg SessionConfig) *realtrain.Trainer {
	t.Helper()
	train := cfg.Train
	train.SDCChecks = true
	tr, err := realtrain.NewTrainer(train)
	if err != nil {
		t.Fatal(err)
	}
	for !tr.Done() {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func assertSameRun(t *testing.T, ref, got *realtrain.Trainer) {
	t.Helper()
	if !wordsEqual(ref.MasterParams(), got.MasterParams()) {
		t.Fatal("master parameters diverged from uninterrupted run")
	}
	if !wordsEqual(ref.ComputeParams(), got.ComputeParams()) {
		t.Fatal("compute copy diverged from uninterrupted run")
	}
	rm, rv := ref.Moments()
	gm, gv := got.Moments()
	if !wordsEqual(rm, gm) || !wordsEqual(rv, gv) {
		t.Fatal("ADAM moments diverged from uninterrupted run")
	}
	a, b := ref.Result(), got.Result()
	if a.FinalLoss != b.FinalLoss || a.FinalAcc != b.FinalAcc || a.DivergedWords != b.DivergedWords {
		t.Fatal("final metrics diverged from uninterrupted run")
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("loss trajectory has %d vs %d samples", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("loss-trajectory sample %d diverged: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

// The ISSUE acceptance criterion: kill at an arbitrary step, restore, and
// the final parameters, ADAM moments, and loss trajectory are bit-identical
// to an uninterrupted run.
func TestCrashRunBitIdentical(t *testing.T) {
	for _, crashAt := range []int{5, 23, 40, 59} {
		cfg := recoverCfg(t.TempDir())
		ref := referenceRun(t, cfg)

		_, stats, err := CrashRun(cfg, crashAt)
		if err != nil {
			t.Fatalf("crash at %d: %v", crashAt, err)
		}
		// Reload the survivor's final checkpoint and compare every tensor.
		st, err := checkpoint.NewStore(cfg.Dir, cfg.KeepLast)
		if err != nil {
			t.Fatal(err)
		}
		snap, _, err := st.LoadLatest()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Step != int64(cfg.Train.Steps) {
			t.Fatalf("crash at %d: final checkpoint at step %d", crashAt, snap.Step)
		}
		got, err := realtrain.NewTrainerFromSnapshot(withGuards(cfg.Train), snap)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRun(t, ref, got)
		if stats.CkptWrites == 0 {
			t.Fatalf("crash at %d: no checkpoints written", crashAt)
		}
		// No SDC is injected here, so the replay distance is exactly the
		// crash offset past the last checkpoint (the whole run when the
		// crash precedes the first checkpoint).
		want := int64(crashAt % cfg.Interval)
		if crashAt < cfg.Interval {
			want = int64(crashAt)
		}
		if stats.ReplayedSteps != want {
			t.Fatalf("crash at %d: replayed %d steps, want %d", crashAt, stats.ReplayedSteps, want)
		}
	}
}

func withGuards(c realtrain.Config) realtrain.Config {
	c.SDCChecks = true
	return c
}

// Restore-after-poison: scheduled silent corruption is detected by the
// guards, rolled back, replayed — and the run still ends bit-identical to a
// fault-free one.
func TestSessionRecoversFromInjectedSDC(t *testing.T) {
	cfg := recoverCfg(t.TempDir())
	cfg.SDC = SDCPlan{Seed: 3, Rate: 0.08, MaxEvents: 3}
	ref := referenceRun(t, cfg)

	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.SDCDetected == 0 || stats.Rollbacks == 0 {
		t.Fatalf("injection plan produced no detections: %+v", stats)
	}
	if stats.SDCDetected != stats.Rollbacks {
		t.Fatalf("every detection must roll back: %+v", stats)
	}
	if stats.ReplayedSteps == 0 && stats.Rollbacks > 0 {
		// A rollback at step 0 before any checkpoint legitimately replays
		// nothing; with three events this is vanishingly unlikely, so treat
		// it as a schedule bug.
		t.Fatalf("rollbacks without replayed steps: %+v", stats)
	}
	assertSameRun(t, ref, s.Trainer())

	// The recovery accounting surfaces through the shared step-result type.
	sr := s.StepResult()
	if !sr.Recovery.Any() || sr.Recovery.Rollbacks != stats.Rollbacks {
		t.Fatalf("StepResult.Recovery = %+v, want %+v", sr.Recovery, stats)
	}
}

// A truncated or bit-flipped checkpoint must be detected by CRC at restore
// time and never loaded: the session falls back to the previous intact
// snapshot and still finishes bit-identically.
func TestSessionFallsBackPastDamagedCheckpoints(t *testing.T) {
	cfg := recoverCfg(t.TempDir())
	ref := referenceRun(t, cfg)

	victim, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.RunUntil(35); err != nil {
		t.Fatal(err)
	}
	// Simulated crash, then storage damage: bit-flip the newest checkpoint
	// (step 30) and truncate the one before it (step 20).
	st, err := checkpoint.NewStore(cfg.Dir, cfg.KeepLast)
	if err != nil {
		t.Fatal(err)
	}
	files, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("expected checkpoints at steps 10/20/30, got %v", files)
	}
	if err := checkpoint.FlipBit(files[2], 4444); err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.TruncateTail(files[1], 64); err != nil {
		t.Fatal(err)
	}

	survivor, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !survivor.Resumed() {
		t.Fatal("survivor did not resume from a checkpoint")
	}
	if got := survivor.Trainer().StepCount(); got != 10 {
		t.Fatalf("resumed at step %d, want fallback to 10", got)
	}
	if got := survivor.Stats().CorruptSnapshotsSkipped; got != 2 {
		t.Fatalf("CorruptSnapshotsSkipped = %d, want 2", got)
	}
	if _, err := survivor.Run(); err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, ref, survivor.Trainer())
}

// With every checkpoint destroyed, the session must refuse to load any of
// them (CRC) and cold-start from step zero — corrupted checkpoints are
// never loaded, the other half of the acceptance criterion.
func TestSessionColdStartsWhenAllCheckpointsCorrupt(t *testing.T) {
	cfg := recoverCfg(t.TempDir())
	victim, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.RunUntil(35); err != nil {
		t.Fatal(err)
	}
	st, _ := checkpoint.NewStore(cfg.Dir, cfg.KeepLast)
	files, _ := st.List()
	for _, f := range files {
		if err := checkpoint.FlipBit(f, 99); err != nil {
			t.Fatal(err)
		}
	}
	survivor, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if survivor.Resumed() || survivor.Trainer().StepCount() != 0 {
		t.Fatal("survivor loaded a corrupt checkpoint")
	}
	if got := survivor.Stats().CorruptSnapshotsSkipped; got != int64(len(files)) {
		t.Fatalf("CorruptSnapshotsSkipped = %d, want %d", got, len(files))
	}
}

// The rollback backstop: persistent corruption aborts instead of looping.
func TestSessionAbortsAfterMaxRollbacks(t *testing.T) {
	cfg := recoverCfg(t.TempDir())
	cfg.MaxRollbacks = 1
	cfg.SDC = SDCPlan{Seed: 1, Rate: 1.0, MaxEvents: 3}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run()
	if err == nil || !strings.Contains(err.Error(), "rollbacks") {
		t.Fatalf("Run() = %v, want rollback-limit abort", err)
	}
}
