package core

import (
	"testing"

	"teco/internal/checkpoint"
	"teco/internal/realtrain"
)

// TestCrashRunParallelWorkersBitIdentical runs the kill/restore harness
// with the trainer's hot loops on 8 workers and compares the survivor's
// final state against a serial uninterrupted reference — the crash-recovery
// corner of the parallel determinism contract. The crash lands mid-interval
// so the restored run replays steps under the parallel paths too.
func TestCrashRunParallelWorkersBitIdentical(t *testing.T) {
	cfg := recoverCfg(t.TempDir())
	ref := referenceRun(t, cfg) // serial: cfg.Train.Workers is zero

	par := cfg
	par.Train.Workers = 8
	if _, _, err := CrashRun(par, 23); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.NewStore(par.Dir, par.KeepLast)
	if err != nil {
		t.Fatal(err)
	}
	snap, _, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Step != int64(par.Train.Steps) {
		t.Fatalf("final checkpoint at step %d", snap.Step)
	}
	// The snapshot was written by a workers=8 run; restore it serially —
	// the config tag excludes the scheduling knob, so this must work.
	got, err := realtrain.NewTrainerFromSnapshot(withGuards(cfg.Train), snap)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, ref, got)
}
