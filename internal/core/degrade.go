package core

import (
	"math"

	"teco/internal/cxl"
	"teco/internal/dba"
	"teco/internal/mem"
	"teco/internal/sim"
)

// AggregatedUneconomical is the graceful-degradation criterion: at the
// configured error rate, does a DBA-aggregated parameter line cost more
// expected link time than a plain full-line transfer?
//
// Per line, the expected cost is the serialization time plus the expected
// retransmissions. Smaller aggregated packets fail less often and are
// cheaper to resend — but every retried aggregated packet also re-pays the
// merge-header round trip (the Disaggregator must refetch the stale line
// from the giant cache to redo the merge, cfg.MergeRetryDelay), a cost a
// full-line retry never sees. Above a crossover packet-error rate the merge
// penalty dominates and aggregation loses; with the default latencies and
// dirty_bytes=2 the crossover sits near a per-flit error probability of
// ~2%, i.e. BER ≈ 4e-5.
func AggregatedUneconomical(fc cxl.FaultConfig, dirtyBytes int, bytesPerSecond float64) bool {
	if !fc.Enabled() || fc.BER <= 0 {
		return false
	}
	if dirtyBytes <= 0 {
		dirtyBytes = dba.DefaultDirtyBytes
	}
	if bytesPerSecond <= 0 {
		bytesPerSecond = cxl.EffectiveBandwidth()
	}
	f, err := cxl.NewFaultModel(fc)
	if err != nil {
		// An unmodelable config cannot be priced; never degrade on it.
		return false
	}
	cfg := f.Config()
	sf := float64(sim.DurationForBytes(mem.LineSize, bytesPerSecond))
	sa := float64(sim.DurationForBytes(int64(mem.LineSize/4*dirtyBytes), bytesPerSecond))
	rf := f.ExpectedRetriesPerPacket(cxl.WirePacketBytes(0))
	ra := f.ExpectedRetriesPerPacket(cxl.WirePacketBytes(dirtyBytes))
	costFull := sf * (1 + rf)
	costAgg := sa*(1+ra) + ra*float64(cfg.MergeRetryDelay)
	return costAgg >= costFull
}

// DegradationCrossoverBER locates (by bisection on a log scale) the lowest
// BER at which AggregatedUneconomical flips for the given dirty_bytes, or 0
// if it never flips below 1e-2. Experiment tables use it to annotate the
// sweep.
func DegradationCrossoverBER(fc cxl.FaultConfig, dirtyBytes int, bytesPerSecond float64) float64 {
	lo, hi := 1e-12, 1e-2
	probe := func(ber float64) bool {
		c := fc
		c.BER = ber
		return AggregatedUneconomical(c, dirtyBytes, bytesPerSecond)
	}
	if !probe(hi) {
		return 0
	}
	if probe(lo) {
		return lo
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(lo * hi)
		if probe(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
