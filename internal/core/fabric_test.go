package core

import (
	"reflect"
	"testing"

	"teco/internal/conformance/check"
	"teco/internal/cxl"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/sim"
)

func fabricFaultConfigs() map[string]Config {
	return map[string]Config{
		"clean":    {},
		"dba":      {DBA: true},
		"ber":      {DBA: true, Faults: cxl.FaultConfig{Seed: 3, BER: 1e-7}},
		"stalls":   {Faults: cxl.FaultConfig{Seed: 3, StallProb: 0.01, StallTime: 2 * sim.Microsecond}},
		"degrade":  {DBA: true, Faults: cxl.FaultConfig{Seed: 3, BandwidthDegrade: 0.8}},
		"mixed":    {DBA: true, Faults: cxl.FaultConfig{Seed: 5, BER: 5e-8, StallProb: 0.005, StallTime: sim.Microsecond}},
		"per-line": {DBA: true, PerLine: true},
	}
}

// The conformance equality from the issue: a one-replica fabric with no
// spares and zero hop latency is bit-identical to the existing single-link
// engine — same breakdown, byte accounting and fault draws — across the
// fault matrix. The only allowed difference is the Fabric stats block.
func TestStepFabricSingleReplicaMatchesStep(t *testing.T) {
	check.Enable(t)
	m := modelzoo.BertLargeCased()
	for name, cfg := range fabricFaultConfigs() {
		t.Run(name, func(t *testing.T) {
			e := MustEngine(cfg)
			want := e.Step(m, 4)
			got, err := e.StepFabric(m, 4, FabricConfig{Replicas: 1})
			if err != nil {
				t.Fatal(err)
			}
			if got.Fabric.Replicas != 1 || got.Fabric.Degraded {
				t.Fatalf("fabric stats implausible: %+v", got.Fabric)
			}
			got.Fabric = phases.FabricStats{}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("fabric step diverged from single-link step:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// More replicas shard the batch: per-replica compute shrinks, so the
// compute phases can only get faster while the fabric fences stay correct
// (total never negative, all breakdown laws hold via res.Check).
func TestStepFabricScaling(t *testing.T) {
	check.Enable(t)
	m := modelzoo.BertLargeCased()
	e := MustEngine(Config{DBA: true})
	var prevFwd sim.Time
	for i, replicas := range []int{1, 2, 4, 8} {
		res, err := e.StepFabric(m, 16, FabricConfig{Replicas: replicas, HopLatency: 100 * sim.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Check(); err != nil {
			t.Fatalf("replicas=%d: %v", replicas, err)
		}
		if i > 0 && res.Fwd > prevFwd {
			t.Fatalf("replicas=%d: forward time grew from %v to %v", replicas, prevFwd, res.Fwd)
		}
		prevFwd = res.Fwd
		if res.Fabric.SpineBytes == 0 {
			t.Fatalf("replicas=%d: no spine traffic", replicas)
		}
		// Each replica pushes a full gradient and receives a full parameter
		// image: link volume scales with the replica count.
		if res.GradLinkBytes != m.GradBytes()*int64(replicas) {
			t.Fatalf("replicas=%d: grad bytes %d, want %d", replicas, res.GradLinkBytes, m.GradBytes()*int64(replicas))
		}
	}
}

// Oversubscribing the spine (HostPorts < Replicas) can only slow the step
// and must show up as spine queueing.
func TestStepFabricOversubscription(t *testing.T) {
	m := modelzoo.BertLargeCased()
	e := MustEngine(Config{})
	full, err := e.StepFabric(m, 16, FabricConfig{Replicas: 8})
	if err != nil {
		t.Fatal(err)
	}
	over, err := e.StepFabric(m, 16, FabricConfig{Replicas: 8, HostPorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if over.Total() < full.Total() {
		t.Fatalf("8:1 oversubscribed step %v faster than non-blocking %v", over.Total(), full.Total())
	}
	if over.Fabric.SpineQueued <= full.Fabric.SpineQueued {
		t.Fatalf("oversubscription queued %v, non-blocking %v", over.Fabric.SpineQueued, full.Fabric.SpineQueued)
	}
}

// Kill without a spare: the step completes degraded — one replica lost, its
// shard redistributed, all conservation laws intact.
func TestStepFabricKillDegrades(t *testing.T) {
	check.Enable(t)
	m := modelzoo.BertLargeCased()
	e := MustEngine(Config{DBA: true})
	ref, err := e.StepFabric(m, 16, FabricConfig{Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.StepFabric(m, 16, FabricConfig{Replicas: 4, KillPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	fb := res.Fabric
	if !fb.Degraded || fb.LostReplicas != 1 || fb.PortsDown != 2 {
		t.Fatalf("kill without spare: %+v", fb)
	}
	if fb.Redistributed == 0 {
		t.Fatalf("lost shard never redistributed: %+v", fb)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	// Detection plus recomputation must cost time versus the clean step.
	if res.Total() <= ref.Total() {
		t.Fatalf("degraded step %v not slower than clean %v", res.Total(), ref.Total())
	}
}

// Kill with a spare: the send fails over — nothing lost, not degraded, but
// the failover and its detection delay are visible.
func TestStepFabricKillFailsOver(t *testing.T) {
	check.Enable(t)
	m := modelzoo.BertLargeCased()
	e := MustEngine(Config{})
	ref, err := e.StepFabric(m, 16, FabricConfig{Replicas: 4, SparePorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.StepFabric(m, 16, FabricConfig{Replicas: 4, SparePorts: 1, KillPort: 1})
	if err != nil {
		t.Fatal(err)
	}
	fb := res.Fabric
	if fb.Degraded || fb.LostReplicas != 0 {
		t.Fatalf("spare did not prevent degradation: %+v", fb)
	}
	if fb.Failovers != 2 { // one per direction
		t.Fatalf("failovers %d, want 2: %+v", fb.Failovers, fb)
	}
	if res.Total() <= ref.Total() {
		t.Fatalf("failover step %v not slower than clean %v", res.Total(), ref.Total())
	}
}

func TestStepFabricValidation(t *testing.T) {
	m := modelzoo.BertLargeCased()
	e := MustEngine(Config{})
	for name, fc := range map[string]FabricConfig{
		"zero-replicas": {Replicas: 0},
		"batch-small":   {Replicas: 32},
		"kill-range":    {Replicas: 2, KillPort: 7},
	} {
		if _, err := e.StepFabric(m, 16, fc); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	inval := MustEngine(Config{Invalidation: true})
	if _, err := inval.StepFabric(m, 16, FabricConfig{Replicas: 2}); err == nil {
		t.Fatal("invalidation protocol accepted on the fabric path")
	}
	// Kill of the only replica with no spare: every shard is lost — error,
	// never a silent empty step.
	if _, err := e.StepFabric(m, 16, FabricConfig{Replicas: 1, KillPort: 1}); err == nil {
		t.Fatal("all-replicas-lost step succeeded")
	}
}
