package core

import (
	"testing"

	"teco/internal/cxl"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/zero"
)

func TestVariantMapping(t *testing.T) {
	if (Config{}).Variant() != phases.TECOCXL {
		t.Fatal("default variant")
	}
	if (Config{DBA: true}).Variant() != phases.TECOReduction {
		t.Fatal("DBA variant")
	}
	if (Config{Invalidation: true}).Variant() != phases.TECOInvalidation {
		t.Fatal("invalidation variant")
	}
}

func TestNewEngineDefaultsAndValidation(t *testing.T) {
	e, err := NewEngine(Config{DBA: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.Config.DirtyBytes != 2 {
		t.Fatalf("default dirty bytes = %d", e.Config.DirtyBytes)
	}
	if _, err := NewEngine(Config{DirtyBytes: 9}); err == nil {
		t.Fatal("expected error for dirty_bytes > 4")
	}
	if _, err := NewEngine(Config{Faults: cxl.FaultConfig{BER: 2}}); err == nil {
		t.Fatal("expected error for BER outside [0,1)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustEngine should panic where NewEngine errors")
		}
	}()
	MustEngine(Config{DirtyBytes: 9})
}

// TestSpeedupShape asserts the headline result per model and batch: both
// TECO variants beat ZeRO-Offload, TECO-Reduction beats TECO-CXL, and
// speedups land in the paper's neighbourhood (Table IV: 1.08x-1.82x).
func TestSpeedupShape(t *testing.T) {
	base := zero.NewEngine()
	tecoCXL := MustEngine(Config{})
	tecoRed := MustEngine(Config{DBA: true})
	for _, m := range modelzoo.EvaluationModels() {
		batches := []int{4, 8, 16}
		if m.FullGraphOnly {
			batches = []int{1}
		}
		for _, b := range batches {
			rb := base.Step(m, b)
			rc := tecoCXL.Step(m, b)
			rr := tecoRed.Step(m, b)
			sc := rc.Speedup(rb)
			sr := rr.Speedup(rb)
			if sc <= 1.0 {
				t.Errorf("%s b%d: TECO-CXL speedup %.2f <= 1", m.Name, b, sc)
			}
			if sr < sc {
				t.Errorf("%s b%d: TECO-Reduction %.2f < TECO-CXL %.2f", m.Name, b, sr, sc)
			}
			if sr > 2.2 {
				t.Errorf("%s b%d: speedup %.2f implausibly high", m.Name, b, sr)
			}
		}
	}
}

// TestBertSpeedupNearPaper pins the calibrated headline numbers for
// Bert-large (paper Table IV: 1.6x at b4, 1.62x at b8, 1.41x at b16).
func TestBertSpeedupNearPaper(t *testing.T) {
	base := zero.NewEngine()
	red := MustEngine(Config{DBA: true})
	m := modelzoo.BertLargeCased()
	paper := map[int]float64{4: 1.60, 8: 1.62, 16: 1.41}
	for b, want := range paper {
		got := red.Step(m, b).Speedup(base.Step(m, b))
		if got < want-0.35 || got > want+0.35 {
			t.Errorf("b%d speedup %.2f, paper %.2f", b, got, want)
		}
	}
}

// TestAlbertLowestSpeedup: "Albert-xxlarge-v1 shows less speedup than the
// other models" because its computation dominates.
func TestAlbertLowestSpeedup(t *testing.T) {
	base := zero.NewEngine()
	red := MustEngine(Config{DBA: true})
	albert := red.Step(modelzoo.AlbertXXLarge(), 4).Speedup(base.Step(modelzoo.AlbertXXLarge(), 4))
	for _, m := range []modelzoo.Model{modelzoo.GPT2(), modelzoo.BertLargeCased(), modelzoo.T5Large()} {
		other := red.Step(m, 4).Speedup(base.Step(m, 4))
		if albert >= other {
			t.Errorf("Albert speedup %.2f >= %s %.2f", albert, m.Name, other)
		}
	}
}

// TestSpeedupDecreasesWithBatch: Table IV's trend — bigger batches leave
// less communication to hide.
func TestSpeedupDecreasesWithBatch(t *testing.T) {
	base := zero.NewEngine()
	red := MustEngine(Config{DBA: true})
	for _, m := range []modelzoo.Model{modelzoo.GPT2(), modelzoo.BertLargeCased()} {
		s4 := red.Step(m, 4).Speedup(base.Step(m, 4))
		s16 := red.Step(m, 16).Speedup(base.Step(m, 16))
		if s16 >= s4 {
			t.Errorf("%s: speedup did not decrease with batch (%.2f -> %.2f)", m.Name, s4, s16)
		}
	}
}

// TestDBAHalvesParamVolume: §VIII-C — "the volume is reduced by 50% after
// applying DBA" for parameters, and gradients are untouched.
func TestDBAHalvesParamVolume(t *testing.T) {
	m := modelzoo.BertLargeCased()
	cxlOnly := MustEngine(Config{}).Step(m, 4)
	red := MustEngine(Config{DBA: true}).Step(m, 4)
	if red.ParamLinkBytes*2 != cxlOnly.ParamLinkBytes {
		t.Fatalf("DBA param volume %d, want half of %d", red.ParamLinkBytes, cxlOnly.ParamLinkBytes)
	}
	if red.GradLinkBytes != cxlOnly.GradLinkBytes {
		t.Fatal("gradients must not be DBA'd (no common byte-update pattern)")
	}
}

// TestDBAFullyHidesParamTransfer: Fig 12 — "when applying DBA, the
// [parameter] transfer time is completely hidden" (drain tail only).
func TestDBAFullyHidesParamTransfer(t *testing.T) {
	m := modelzoo.BertLargeCased()
	red := MustEngine(Config{DBA: true}).Step(m, 4)
	// Exposure should be only the final-chunk drain, < 5% of the full
	// transfer time.
	full := float64(m.ParamBytes()/2) / modelzoo.CXLLinkBandwidth()
	if red.Prm.Seconds() > 0.10*full {
		t.Fatalf("DBA param exposure %v too large", red.Prm)
	}
}

// TestGradHiddenAtBatch8: Fig 12 — "for the gradients, the transfer time is
// completely hidden by TECO when the batch size is 8"; at batch 4 it is
// exposed but hidden by at least ~69%.
func TestGradHiddenAtBatch8(t *testing.T) {
	base := zero.NewEngine()
	tecoE := MustEngine(Config{DBA: true})
	m := modelzoo.T5Large() // Fig 12 uses T5-large
	r8 := tecoE.Step(m, 8)
	fullXfer := float64(m.GradBytes()) / modelzoo.CXLLinkBandwidth()
	if r8.Grad.Seconds() > 0.05*fullXfer {
		t.Fatalf("b8 grad exposure %v, want ~fully hidden", r8.Grad)
	}
	r4 := tecoE.Step(m, 4)
	b4base := base.Step(m, 4)
	hidden := 1 - float64(r4.Grad)/float64(b4base.Grad+1)
	if hidden < 0.5 {
		t.Fatalf("b4 gradient hiding = %.2f, want most of it hidden", hidden)
	}
}

// TestInvalidationAblation: §IV-A2 — on-demand transfers increase training
// time substantially (paper: +56.6% on average) relative to update mode.
func TestInvalidationAblation(t *testing.T) {
	m := modelzoo.BertLargeCased()
	upd := MustEngine(Config{}).Step(m, 4)
	inv := MustEngine(Config{Invalidation: true}).Step(m, 4)
	ratio := float64(inv.Total())/float64(upd.Total()) - 1
	if ratio < 0.25 || ratio > 1.2 {
		t.Fatalf("invalidation penalty = %.1f%%, want a large penalty (~56%%)", 100*ratio)
	}
	// Invalidation messages add link volume.
	if inv.ParamLinkBytes <= upd.ParamLinkBytes {
		t.Fatal("invalidation mode must move more bytes (messages + data)")
	}
}

// TestCommReductionNearPaper: the headline "TECO reduces communication
// overhead by 93.7% on average (up to 100%)".
func TestCommReductionNearPaper(t *testing.T) {
	base := zero.NewEngine()
	red := MustEngine(Config{DBA: true})
	var sum float64
	var n int
	for _, m := range modelzoo.EvaluationModels() {
		b := 4
		if m.FullGraphOnly {
			b = 1
		}
		r := red.Step(m, b).CommReduction(base.Step(m, b))
		if r < 0.5 {
			t.Errorf("%s: comm reduction %.2f too small", m.Name, r)
		}
		sum += r
		n++
	}
	if avg := sum / float64(n); avg < 0.7 {
		t.Fatalf("average comm reduction %.2f, paper reports 93.7%%", avg)
	}
}

// TestModelSizeSensitivity: Table VI — TECO keeps winning across GPT-2
// scales, with the 11B model showing the smallest gain because compute
// dominates (paper: 63.4% of total).
func TestModelSizeSensitivity(t *testing.T) {
	base := zero.NewEngine()
	red := MustEngine(Config{DBA: true})
	speedups := map[string]float64{}
	for _, m := range modelzoo.SensitivityModels() {
		s := red.Step(m, 4).Speedup(base.Step(m, 4))
		speedups[m.Name] = s
		if s <= 1.0 {
			t.Errorf("%s: no speedup (%.2f)", m.Name, s)
		}
	}
	for name, s := range speedups {
		if name == "GPT2-11B" {
			continue
		}
		if speedups["GPT2-11B"] >= s {
			t.Errorf("11B speedup %.2f should be the smallest (vs %s %.2f)",
				speedups["GPT2-11B"], name, s)
		}
	}
}

// TestDirtyBytesSweep: fewer dirty bytes -> less volume, never slower.
func TestDirtyBytesSweep(t *testing.T) {
	m := modelzoo.GPT2()
	var prevVol int64 = 1 << 62
	var prevTotal = int64(1) << 62
	for _, db := range []int{4, 3, 2, 1} {
		r := MustEngine(Config{DBA: true, DirtyBytes: db}).Step(m, 4)
		if r.ParamLinkBytes >= prevVol {
			t.Fatalf("dirty_bytes=%d volume %d did not shrink", db, r.ParamLinkBytes)
		}
		if int64(r.Total()) > prevTotal {
			t.Fatalf("dirty_bytes=%d got slower", db)
		}
		prevVol = r.ParamLinkBytes
		prevTotal = int64(r.Total())
	}
}
