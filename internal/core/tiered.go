package core

import (
	"fmt"

	"teco/internal/conformance/check"
	"teco/internal/cxl"
	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/sim"
	"teco/internal/tiering"
)

// Heterogeneous-memory tiering for the timing engine — the timing half of
// the controller whose functional half lives in realtrain (both share
// tiering.Controller over staging.Residency, so slot placement has one
// definition on both sides of the house equality).
//
// RunTiered runs Steps ordinary TECO steps (compute + coherence planes,
// untouched) and adds a TIERING plane on top: host-side model state lives
// in two tiers — local DDR4 (fast) and DRAM behind a CXL.mem expander
// (far). Each layer contributes a parameter slot (touched by forward,
// backward and the update pass) and, in OptSlots mode, an optimizer-state
// slot of twice the bytes (FP32 ADAM moments m+v) touched only by the
// update — a ~6× per-byte heat-density skew that makes placement matter.
// A far-tier touch streams the slot over the CXL link and exposes its
// latency in the breakdown (forward/backward parameter touches extend Prm,
// update-pass touches extend Adam); a fast-tier touch costs nothing extra
// (local DDR is already priced inside the compute phases). Migrations
// planned from the recorded heat are pushed on the same links at step
// start, so they queue ahead of — compete with — the step's own demand
// traffic, bounded per step by the migration budget.
//
// When every slot fits fast (DRAMBytes 0) the tiering plane moves no bytes
// and adds no time: RunTiered degrades to a sum of plain Steps
// bit-identically, with only the TierStats hit counters recording that the
// walk happened (asserted by tiered_test.go). A zero migration budget
// likewise freezes the initial placement regardless of policy.

// DefaultTierSteps is the step count RunTiered aggregates when
// TierConfig.Steps is zero: enough for heat to separate and migration to
// converge, small enough to keep the sweeps fast.
const DefaultTierSteps = 4

// TierConfig parameterizes one tiered run.
type TierConfig struct {
	// Layers overrides the model's layer count (0 keeps the model's own).
	Layers int
	// DRAMBytes is the fast-tier capacity; 0 means the whole model fits
	// fast (the all-resident baseline). A bounded capacity must hold the
	// largest single slot.
	DRAMBytes int64
	// Policy is the placement rank: "" or "heat", "lru", "static".
	Policy string
	// MigrateBudget is the per-step migration byte budget — the admission
	// throttle; 0 disables migration (static first-fit placement).
	MigrateBudget int64
	// Steps is the number of training steps to aggregate (0 =
	// DefaultTierSteps).
	Steps int
	// OptSlots schedules optimizer-state slots (2× parameter bytes, the
	// FP32 m+v moments) separately from parameters.
	OptSlots bool
}

// TierTrace is the recorded access trace and final placement of a tiered
// run — the input the oracle placement and the policy ablation's cost
// accounting consume.
type TierTrace struct {
	Sizes     []int64
	Heat      []int64
	Fast      []bool
	FastBytes int64
}

// tierSlotBytes builds the slot sizes: per-layer parameter slots,
// interleaved with 2× optimizer-state slots in OptSlots mode
// (param k = slot 2k, opt k = slot 2k+1).
func tierSlotBytes(m modelzoo.Model, optSlots bool) []int64 {
	params := layerSlotBytes(m)
	if !optSlots {
		return params
	}
	sizes := make([]int64, 0, 2*len(params))
	for _, p := range params {
		sizes = append(sizes, p, 2*p)
	}
	return sizes
}

// tieredPlane is the tiering plane of one tiered run: the placement
// controller plus the promote/demote links and per-slot arrival times.
type tieredPlane struct {
	ctl    *tiering.Controller
	fetch  *cxl.Link
	wb     *cxl.Link
	fetchS *cxl.Stream
	wbS    *cxl.Stream
	arrive []sim.Time // per-slot promotion completion (0: none in flight)
	wire   int

	stats phases.TierStats
}

// migrate prices this step's planned migrations as background stream
// traffic at t: promotions stream far→fast on the fetch link — ahead of
// the step's demand fetches, competing for the same bandwidth — and
// demotions stream fast→far on the writeback link.
func (p *tieredPlane) migrate(ms []tiering.Migration, t sim.Time) {
	for _, mg := range ms {
		if mg.Promote {
			fr := p.fetchS.PushRun(t, int(mg.Bytes), mem.LinesIn(mg.Bytes), 0, p.wire, false)
			p.arrive[mg.Slot] = fr.Done
			p.stats.PromotedBytes += mg.Bytes
		} else {
			p.wbS.PushRun(t, int(mg.Bytes), mem.LinesIn(mg.Bytes), 0, p.wire, false)
			p.arrive[mg.Slot] = 0
			p.stats.DemotedBytes += mg.Bytes
		}
		p.stats.Migrations++
	}
}

// touch walks one demand access to slot k at cursor t and returns the
// exposed stall: zero on a settled fast hit, the full stream time on a far
// access, and only the residual wait when a still-arriving promotion races
// the access.
func (p *tieredPlane) touch(k int, t sim.Time) sim.Time {
	if !p.ctl.Touch(k) {
		sz := p.ctl.Size(k)
		fr := p.fetchS.PushRun(t, int(sz), mem.LinesIn(sz), 0, p.wire, false)
		p.stats.FarAccesses++
		p.stats.FarFetchBytes += sz
		return fr.Done - t
	}
	p.stats.FastHits++
	if done := p.arrive[k]; done != 0 {
		p.arrive[k] = 0
		if done > t {
			return done - t
		}
	}
	return 0
}

// addStep accumulates one step's result into a run aggregate: every
// additive field sums, Degraded ORs.
func addStep(a, s phases.StepResult) phases.StepResult {
	a.Variant = s.Variant
	a.Fwd += s.Fwd
	a.Bwd += s.Bwd
	a.Grad += s.Grad
	a.Clip += s.Clip
	a.Adam += s.Adam
	a.Prm += s.Prm
	a.ParamLinkBytes += s.ParamLinkBytes
	a.GradLinkBytes += s.GradLinkBytes
	a.Fault.Retries += s.Fault.Retries
	a.Fault.ReplayedBytes += s.Fault.ReplayedBytes
	a.Fault.Poisoned += s.Fault.Poisoned
	a.Fault.Recovered += s.Fault.Recovered
	a.Fault.Stalls += s.Fault.Stalls
	a.Fault.StallTime += s.Fault.StallTime
	a.Fault.Exposed += s.Fault.Exposed
	a.Fault.Degraded = a.Fault.Degraded || s.Fault.Degraded
	return a
}

// RunTiered simulates tc.Steps training steps under heterogeneous-memory
// tiering and returns the aggregated result plus the recorded trace.
func (e *Engine) RunTiered(m modelzoo.Model, batch int, tc TierConfig) (phases.StepResult, TierTrace, error) {
	if e.Config.Invalidation {
		return phases.StepResult{}, TierTrace{}, fmt.Errorf("core: tiering requires the update protocol")
	}
	if tc.Layers < 0 || tc.DRAMBytes < 0 || tc.MigrateBudget < 0 || tc.Steps < 0 {
		return phases.StepResult{}, TierTrace{}, fmt.Errorf("core: negative tier config %+v", tc)
	}
	if tc.Layers > 0 {
		m.Layers = tc.Layers
	}
	policy, err := tiering.ParsePolicy(tc.Policy)
	if err != nil {
		return phases.StepResult{}, TierTrace{}, err
	}
	steps := tc.Steps
	if steps == 0 {
		steps = DefaultTierSteps
	}
	sizes := tierSlotBytes(m, tc.OptSlots)
	ctl, err := tiering.New(tiering.Config{
		Sizes:       sizes,
		FastBytes:   tc.DRAMBytes,
		Policy:      policy,
		BudgetBytes: tc.MigrateBudget,
	})
	if err != nil {
		return phases.StepResult{}, TierTrace{}, err
	}

	// Tiering plane: its own engine and link pair, like the staging plane —
	// tier migration shares no queue with the coherence streams.
	eng := sim.New()
	p := &tieredPlane{
		ctl:    ctl,
		fetch:  cxl.NewLink(eng, e.LinkBandwidth, e.QueueCap),
		wb:     cxl.NewLink(eng, e.LinkBandwidth, e.QueueCap),
		arrive: make([]sim.Time, len(sizes)),
		wire:   cxl.WirePacketBytes(0),
	}
	p.fetchS = cxl.NewStream(p.fetch, e.Config.PerLine)
	p.wbS = cxl.NewStream(p.wb, e.Config.PerLine)
	p.stats.Slots = int64(len(sizes))
	p.stats.FastBytes = ctl.Capacity()

	pslot := func(k int) int {
		if tc.OptSlots {
			return 2 * k
		}
		return k
	}

	var agg phases.StepResult
	var cursor sim.Time
	n := sim.Time(int64(m.Layers))
	last := m.Layers - 1
	for s := 0; s < steps; s++ {
		// Compute + coherence planes: the ordinary TECO step, untouched.
		out := e.Step(m, batch)

		// Migrations planned from the heat recorded so far, excluding the
		// slot of the layer about to execute, priced at step start.
		p.migrate(ctl.PlanStep(pslot(0)), cursor)

		var farStall, adamStall sim.Time
		stepStart := cursor

		// Forward walk: layer k touches its parameter slot over its
		// telescoped share of the forward time.
		for k := 0; k <= last; k++ {
			farStall += p.touch(pslot(k), cursor)
			cursor += out.Fwd*sim.Time(int64(k)+1)/n - out.Fwd*sim.Time(int64(k))/n
		}
		// Backward walk in reverse.
		for k := last; k >= 0; k-- {
			farStall += p.touch(pslot(k), cursor)
			i := sim.Time(int64(last - k))
			cursor += out.Bwd*(i+1)/n - out.Bwd*i/n
		}
		cursor += out.Grad
		// Update pass: the CPU reads/writes master parameters and, in
		// OptSlots mode, the ADAM moments, over the clip+ADAM window.
		upd := out.Clip + out.Adam
		for k := 0; k <= last; k++ {
			adamStall += p.touch(pslot(k), cursor)
			if tc.OptSlots {
				adamStall += p.touch(2*k+1, cursor)
			}
			cursor += upd*sim.Time(int64(k)+1)/n - upd*sim.Time(int64(k))/n
		}

		out.Prm += farStall
		out.Adam += adamStall
		p.stats.FarStall += farStall
		p.stats.AdamStall += adamStall
		p.stats.Steps++
		// The next step starts after this one's full critical path.
		cursor = stepStart + out.Total()

		if check.Enabled() {
			check.Check(out.Check, ctl.CheckInvariants)
		}
		agg = addStep(agg, out)
	}
	// Demotion writebacks still in flight at run end are off the critical
	// path (the fast-tier copy was authoritative until the stream fenced).
	p.wb.Fence(cursor)

	st := ctl.Stats()
	p.stats.ResidentBytes = st.ResidentBytes
	p.stats.Deferred = st.Deferred
	agg.Tier = p.stats

	trace := TierTrace{
		Sizes:     sizes,
		Heat:      ctl.Heat(),
		Fast:      ctl.Placement(),
		FastBytes: ctl.Capacity(),
	}
	if check.Enabled() {
		check.Check(agg.Check, ctl.CheckInvariants)
	}
	return agg, trace, nil
}
