package core

import (
	"math"
	"math/rand"
	"testing"

	"teco/internal/tensor"
)

func randomTensors(n int, seed int64) (*tensor.Tensor, *tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	old := tensor.New("old", n)
	upd := tensor.New("new", n)
	for i := 0; i < n; i++ {
		v := float32(rng.NormFloat64())
		old.Set(i, v)
		// Fine-tuning-sized update.
		upd.Set(i, v*(1+1e-6*float32(rng.NormFloat64())))
	}
	return old, upd
}

func TestReplayFullLineExact(t *testing.T) {
	old, upd := randomTensors(1024, 1)
	dev, stats, err := ReplayParameterUpdate(old, upd, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < upd.Len(); i++ {
		if math.Float32bits(dev.At(i)) != math.Float32bits(upd.At(i)) {
			t.Fatalf("element %d: %x != %x", i, math.Float32bits(dev.At(i)), math.Float32bits(upd.At(i)))
		}
	}
	if stats.OnDemandTransfers != 0 {
		t.Fatalf("update protocol produced %d on-demand transfers", stats.OnDemandTransfers)
	}
	if stats.FlushData != stats.Lines {
		t.Fatalf("FlushData = %d, want one per line (%d)", stats.FlushData, stats.Lines)
	}
	if stats.SnoopEntries != 0 {
		t.Fatal("update protocol must not populate the snoop filter")
	}
	if stats.PayloadBytes != stats.Lines*64 {
		t.Fatalf("payload bytes = %d", stats.PayloadBytes)
	}
}

func TestReplayDBAMergeSemantics(t *testing.T) {
	old, upd := randomTensors(1024, 2)
	dev, stats, err := ReplayParameterUpdate(old, upd, Config{DBA: true, DirtyBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Each device value must be: new low 2 bytes merged over old high 2.
	for i := 0; i < upd.Len(); i++ {
		ob := math.Float32bits(old.At(i))
		nb := math.Float32bits(upd.At(i))
		want := (ob & 0xFFFF0000) | (nb & 0x0000FFFF)
		if got := math.Float32bits(dev.At(i)); got != want {
			t.Fatalf("element %d: got %08x, want %08x (old %08x new %08x)", i, got, want, ob, nb)
		}
	}
	// Payload halved.
	if stats.PayloadBytes != stats.Lines*32 {
		t.Fatalf("payload bytes = %d, want %d", stats.PayloadBytes, stats.Lines*32)
	}
}

func TestReplayDBAExactWhenChangesAreSmall(t *testing.T) {
	// When updates only touch the low two bytes, DBA is lossless.
	old := tensor.New("old", 256)
	upd := tensor.New("new", 256)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 256; i++ {
		bits := rng.Uint32()
		old.Set(i, math.Float32frombits(bits))
		upd.Set(i, math.Float32frombits((bits&0xFFFF0000)|rng.Uint32()&0xFFFF))
	}
	dev, _, err := ReplayParameterUpdate(old, upd, Config{DBA: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if math.Float32bits(dev.At(i)) != math.Float32bits(upd.At(i)) {
			t.Fatalf("element %d lost data", i)
		}
	}
}

func TestReplayInvalidationOnDemand(t *testing.T) {
	// Tensor small enough to stay in the CPU LLC so every accelerator
	// read is an on-demand critical-path fill.
	old, upd := randomTensors(4096, 4)
	dev, stats, err := ReplayParameterUpdate(old, upd, Config{Invalidation: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OnDemandTransfers == 0 {
		t.Fatal("invalidation protocol must fetch on demand")
	}
	if stats.SnoopEntries == 0 {
		t.Fatal("invalidation protocol tracks sharers")
	}
	// Data still correct (full lines, no DBA in invalidation mode).
	for i := 0; i < upd.Len(); i++ {
		if math.Float32bits(dev.At(i)) != math.Float32bits(upd.At(i)) {
			t.Fatalf("element %d wrong", i)
		}
	}
}

func TestReplayMismatchedTensors(t *testing.T) {
	if _, _, err := ReplayParameterUpdate(tensor.New("a", 4), tensor.New("b", 8), Config{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestReplayGradientFlushUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	grads := tensor.New("g", 512)
	for i := 0; i < 512; i++ {
		grads.Set(i, float32(rng.NormFloat64()))
	}
	cpu, stats, err := ReplayGradientFlush(grads, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if math.Float32bits(cpu.At(i)) != math.Float32bits(grads.At(i)) {
			t.Fatalf("gradient %d corrupted", i)
		}
	}
	if stats.OnDemandTransfers != 0 {
		t.Fatal("update protocol gradients must not be on-demand")
	}
	if stats.FlushData != stats.Lines {
		t.Fatalf("pushes = %d, want %d", stats.FlushData, stats.Lines)
	}
	// Full 64-byte payloads — gradients are never DBA'd.
	if stats.PayloadBytes != stats.Lines*64 {
		t.Fatalf("payload = %d", stats.PayloadBytes)
	}
}

func TestReplayGradientFlushInvalidation(t *testing.T) {
	grads := tensor.New("g", 256)
	for i := 0; i < 256; i++ {
		grads.Set(i, float32(i))
	}
	cpu, stats, err := ReplayGradientFlush(grads, Config{Invalidation: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OnDemandTransfers == 0 {
		t.Fatal("invalidation gradients must be fetched on demand")
	}
	for i := 0; i < 256; i++ {
		if cpu.At(i) != grads.At(i) {
			t.Fatalf("gradient %d wrong", i)
		}
	}
}
