package core

import (
	"math/rand"
	"reflect"
	"testing"

	"teco/internal/cxl"
	"teco/internal/modelzoo"
	"teco/internal/tensor"
)

// TestZeroFaultStepBitIdentical: a fault config that injects nothing (only a
// seed set) must leave every timing and byte count bit-identical to an
// engine with no fault config at all — the fault path is strictly additive.
func TestZeroFaultStepBitIdentical(t *testing.T) {
	m := modelzoo.BertLargeCased()
	for _, cfg := range []Config{{}, {DBA: true}, {Invalidation: true}} {
		withSeed := cfg
		withSeed.Faults = cxl.FaultConfig{Seed: 99}
		withSeed.Degrade = true
		plain := MustEngine(cfg).Step(m, 4)
		seeded := MustEngine(withSeed).Step(m, 4)
		if !reflect.DeepEqual(plain, seeded) {
			t.Fatalf("%v: disabled fault config changed the step:\n plain  %+v\n seeded %+v",
				cfg.Variant(), plain, seeded)
		}
		if seeded.Fault.Any() {
			t.Fatalf("%v: fault stats nonzero on pristine link: %+v", cfg.Variant(), seeded.Fault)
		}
	}
}

// TestFaultedStepDeterministic: same seed and BER give identical retry
// counts and timings; a different seed gives different ones.
func TestFaultedStepDeterministic(t *testing.T) {
	m := modelzoo.BertLargeCased()
	mk := func(seed int64) Config {
		return Config{DBA: true, Faults: cxl.FaultConfig{Seed: seed, BER: 1e-6}}
	}
	a := MustEngine(mk(7)).Step(m, 4)
	b := MustEngine(mk(7)).Step(m, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n a %+v\n b %+v", a, b)
	}
	c := MustEngine(mk(8)).Step(m, 4)
	if reflect.DeepEqual(a.Fault, c.Fault) {
		t.Fatal("different seeds produced identical fault stats")
	}
}

// TestFaultExposureGrowsWithBER: retries, exposed retry latency, and the
// step total all grow with the error rate.
func TestFaultExposureGrowsWithBER(t *testing.T) {
	m := modelzoo.BertLargeCased()
	var prev StepTotals
	for i, ber := range []float64{0, 1e-7, 1e-6, 1e-5} {
		r := MustEngine(Config{DBA: true, Faults: cxl.FaultConfig{Seed: 3, BER: ber}}).Step(m, 4)
		cur := StepTotals{Retries: r.Fault.Retries, Exposed: int64(r.Fault.Exposed), Total: int64(r.Total())}
		if i > 0 {
			if cur.Retries <= prev.Retries {
				t.Fatalf("retries not increasing at BER %g: %d <= %d", ber, cur.Retries, prev.Retries)
			}
			if cur.Exposed < prev.Exposed || cur.Total < prev.Total {
				t.Fatalf("exposure/total shrank at BER %g: %+v vs %+v", ber, cur, prev)
			}
		}
		prev = cur
	}
}

// StepTotals is a comparison scratch type for the monotonicity tests.
type StepTotals struct{ Retries, Exposed, Total int64 }

// TestExposedMatchesBreakdownGrowth: the reported exposed retry latency
// equals the growth of the step's exposed communication phases relative to
// the fault-free run (the fault path only stretches Grad and Prm).
func TestExposedMatchesBreakdownGrowth(t *testing.T) {
	m := modelzoo.BertLargeCased()
	clean := MustEngine(Config{DBA: true}).Step(m, 4)
	faulty := MustEngine(Config{DBA: true, Faults: cxl.FaultConfig{Seed: 3, BER: 1e-5}}).Step(m, 4)
	if faulty.Fault.Exposed <= 0 {
		t.Fatal("no exposed retry latency at BER 1e-5")
	}
	growth := (faulty.Grad - clean.Grad) + (faulty.Prm - clean.Prm)
	if growth != faulty.Fault.Exposed {
		t.Fatalf("breakdown growth %v != reported exposed %v", growth, faulty.Fault.Exposed)
	}
	if faulty.Fwd != clean.Fwd || faulty.Bwd != clean.Bwd ||
		faulty.Clip != clean.Clip || faulty.Adam != clean.Adam {
		t.Fatal("fault injection touched a compute phase")
	}
}

// TestDegradationPolicy: below the crossover BER the policy keeps DBA; above
// it the step falls back to full-line transfers (and the fallback is
// genuinely cheaper there).
func TestDegradationPolicy(t *testing.T) {
	bw := modelzoo.CXLLinkBandwidth()
	cross := DegradationCrossoverBER(cxl.FaultConfig{BER: 1e-6}, 2, bw)
	if cross <= 1e-6 || cross >= 1e-3 {
		t.Fatalf("crossover BER %g outside the plausible window (1e-6, 1e-3)", cross)
	}
	if AggregatedUneconomical(cxl.FaultConfig{BER: cross / 4}, 2, bw) {
		t.Fatal("policy degraded below the crossover")
	}
	if !AggregatedUneconomical(cxl.FaultConfig{BER: cross * 4}, 2, bw) {
		t.Fatal("policy kept DBA above the crossover")
	}

	m := modelzoo.BertLargeCased()
	low := MustEngine(Config{DBA: true, Degrade: true,
		Faults: cxl.FaultConfig{Seed: 5, BER: cross / 4}}).Step(m, 4)
	if low.Fault.Degraded {
		t.Fatal("degraded at a benign BER")
	}
	high := cxl.FaultConfig{Seed: 5, BER: cross * 4}
	deg := MustEngine(Config{DBA: true, Degrade: true, Faults: high}).Step(m, 4)
	if !deg.Fault.Degraded {
		t.Fatal("did not degrade above the crossover")
	}
	if deg.Variant != low.Variant {
		t.Fatalf("degradation changed the variant label: %v vs %v", deg.Variant, low.Variant)
	}
	stubborn := MustEngine(Config{DBA: true, Faults: high}).Step(m, 4)
	if deg.Total() >= stubborn.Total() {
		t.Fatalf("degraded step (%v) not faster than insisting on DBA (%v)", deg.Total(), stubborn.Total())
	}
	full := MustEngine(Config{}).Step(m, 4)
	if deg.ParamLinkBytes < full.ParamLinkBytes {
		t.Fatal("degraded step still shipped aggregated parameter volume")
	}
}

// TestPoisonRecoveryAccounting: a tiny retry budget at a harsh BER produces
// poisoned packets, and each one is recovered on demand with its round trip
// charged to the exposed phases and its bytes to the link volume.
func TestPoisonRecoveryAccounting(t *testing.T) {
	m := modelzoo.BertLargeCased()
	fc := cxl.FaultConfig{Seed: 11, BER: 5e-5, RetryBudget: 1}
	r := MustEngine(Config{Faults: fc}).Step(m, 4)
	if r.Fault.Poisoned == 0 {
		t.Fatal("harsh BER with budget 1 produced no poisoned packets")
	}
	if r.Fault.Recovered != r.Fault.Poisoned {
		t.Fatalf("recovered %d != poisoned %d", r.Fault.Recovered, r.Fault.Poisoned)
	}
	clean := MustEngine(Config{}).Step(m, 4)
	extraBytes := (r.ParamLinkBytes + r.GradLinkBytes) - (clean.ParamLinkBytes + clean.GradLinkBytes)
	if extraBytes <= 0 {
		t.Fatal("poison recovery shipped no extra link volume")
	}
}

// TestReplayUnderFaultsIsLossless: with fault injection enabled, the
// functional replay still delivers the bit-exact result — retransmissions
// and poison recovery never let corrupt bytes reach the device tensor.
func TestReplayUnderFaultsIsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 4096
	old := tensor.New("old", n)
	upd := tensor.New("upd", n)
	for i := 0; i < n; i++ {
		old.Set(i, rng.Float32())
		upd.Set(i, rng.Float32())
	}
	want, _, err := ReplayParameterUpdate(old, upd, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Moderate BER: retries happen, everything recovers within budget.
	got, stats, err := ReplayParameterUpdate(old, upd, Config{
		Faults: cxl.FaultConfig{Seed: 2, BER: 1e-4}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries == 0 {
		t.Fatal("BER 1e-4 produced no retries")
	}
	if !reflect.DeepEqual(want.Data(), got.Data()) {
		t.Fatal("faulted replay diverged from fault-free result")
	}

	// Harsh BER with budget 0: every CRC failure poisons; recovery must
	// still deliver the exact tensor via on-demand fetches.
	got2, stats2, err := ReplayParameterUpdate(old, upd, Config{
		Faults: cxl.FaultConfig{Seed: 2, BER: 2e-4, RetryBudget: -0 + 1}})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Poisoned == 0 {
		t.Fatal("harsh BER with budget 1 poisoned nothing")
	}
	if !reflect.DeepEqual(want.Data(), got2.Data()) {
		t.Fatal("poison recovery delivered corrupt data")
	}

	// Gradients take the reverse path.
	gwant, _, err := ReplayGradientFlush(upd, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ggot, gstats, err := ReplayGradientFlush(upd, Config{
		Faults: cxl.FaultConfig{Seed: 4, BER: 2e-4, RetryBudget: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if gstats.Retries == 0 {
		t.Fatal("gradient flush saw no retries")
	}
	if !reflect.DeepEqual(gwant.Data(), ggot.Data()) {
		t.Fatal("faulted gradient flush diverged")
	}
}

// TestReplayRejectsInvalidFaultConfig: fault configs are validated at the
// replay boundary, returned as errors rather than panics.
func TestReplayRejectsInvalidFaultConfig(t *testing.T) {
	old := tensor.New("a", 16)
	upd := tensor.New("b", 16)
	bad := Config{Faults: cxl.FaultConfig{BER: -1}}
	if _, _, err := ReplayParameterUpdate(old, upd, bad); err == nil {
		t.Fatal("negative BER accepted by ReplayParameterUpdate")
	}
	if _, _, err := ReplayGradientFlush(old, bad); err == nil {
		t.Fatal("negative BER accepted by ReplayGradientFlush")
	}
}
