package core

import (
	"fmt"

	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/sim"
	"teco/internal/zero"
)

// TrainingEstimate is an end-to-end training-run projection: TECO's step
// time is time-varying because DBA activates after `act_aft_steps`
// (TECO-CXL step times before, TECO-Reduction after).
type TrainingEstimate struct {
	Model         string
	Batch         int
	Steps         int
	ActAfterSteps int
	// BaselineTotal is ZeRO-Offload's end-to-end time.
	BaselineTotal sim.Time
	// TECOTotal is the TECO run's end-to-end time.
	TECOTotal sim.Time
	// Speedup is BaselineTotal / TECOTotal.
	Speedup float64
	// TimeSavedFraction is 1 - TECOTotal/BaselineTotal, the quantity the
	// paper's cost analysis (§VIII-C) converts into dollars.
	TimeSavedFraction float64
}

// EstimateTraining projects an end-to-end fine-tuning run of `steps` steps
// with DBA activating at actAfterSteps (negative: DBA never activates —
// TECO-CXL only).
func EstimateTraining(m modelzoo.Model, batch, steps, actAfterSteps int) TrainingEstimate {
	if steps <= 0 {
		panic(fmt.Sprintf("core: %d training steps", steps))
	}
	if m.FullGraphOnly {
		batch = 1
	}
	base := zero.NewEngine().Step(m, batch).Total()
	cxlStep := MustEngine(Config{}).Step(m, batch).Total()
	dbaStep := MustEngine(Config{DBA: true}).Step(m, batch).Total()

	pre := steps
	if actAfterSteps >= 0 && actAfterSteps < steps {
		pre = actAfterSteps
	}
	tecoTotal := sim.Time(int64(cxlStep)*int64(pre) + int64(dbaStep)*int64(steps-pre))
	baseTotal := sim.Time(int64(base) * int64(steps))
	est := TrainingEstimate{
		Model: m.Name, Batch: batch, Steps: steps, ActAfterSteps: actAfterSteps,
		BaselineTotal: baseTotal,
		TECOTotal:     tecoTotal,
	}
	est.Speedup = float64(baseTotal) / float64(tecoTotal)
	est.TimeSavedFraction = 1 - float64(tecoTotal)/float64(baseTotal)
	return est
}

// CostModel is the paper's §VIII-C data-center economics: "It has been
// reported that in an AWS data center, the AI training takes 20% of GPU
// cycles. Assume a data center with 256 A100 GPU and 50% utilization of
// GPUs. 7% of saving in training time leads to a reduction of roughly $900K
// in production cost in a year (based on AWS p4de.24xlarge)."
type CostModel struct {
	// GPUs in the fleet (default 256).
	GPUs int
	// GPUsPerInstance for the priced instance type (default 8,
	// p4de.24xlarge).
	GPUsPerInstance int
	// InstanceHourlyUSD is the on-demand price (default 40.97).
	InstanceHourlyUSD float64
	// TrainingShare is the fraction of GPU time spent on training
	// (default 0.5, the paper's utilization assumption).
	TrainingShare float64
}

// DefaultCostModel returns the paper's assumptions.
func DefaultCostModel() CostModel {
	return CostModel{GPUs: 256, GPUsPerInstance: 8, InstanceHourlyUSD: 40.97, TrainingShare: 0.5}
}

// AnnualSavingsUSD converts a fractional training-time saving into yearly
// dollars for the fleet.
func (c CostModel) AnnualSavingsUSD(timeSavedFraction float64) float64 {
	if c.GPUs == 0 {
		c = DefaultCostModel()
	}
	instances := float64(c.GPUs) / float64(c.GPUsPerInstance)
	annual := instances * c.InstanceHourlyUSD * 24 * 365
	return annual * c.TrainingShare * timeSavedFraction
}

// ProductionSavings combines a training estimate with the cost model,
// returning the projected yearly savings and the step results used.
func ProductionSavings(m modelzoo.Model, batch int, c CostModel) (float64, phases.StepResult, phases.StepResult) {
	base := zero.NewEngine().Step(m, batch)
	red := MustEngine(Config{DBA: true}).Step(m, batch)
	saved := 1 - float64(red.Total())/float64(base.Total())
	return c.AnnualSavingsUSD(saved), base, red
}
