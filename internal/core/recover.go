package core

import (
	"errors"
	"fmt"
	"math/rand"

	"teco/internal/checkpoint"
	"teco/internal/phases"
	"teco/internal/realtrain"
	"teco/internal/sim"
)

// SDCPlan schedules silent-data-corruption injections into a session's
// resident tensors — the software analogue of the link-level fault model:
// bit flips that arrive through a channel no CRC covers. Events are
// precomputed from the seed so a run is reproducible, and each event fires
// at most once, so rollback-and-replay always terminates.
type SDCPlan struct {
	// Seed drives the event schedule; Rate is the per-step probability of
	// an injection. Zero Rate disables injection.
	Seed int64
	Rate float64
	// MaxEvents bounds the number of injections (default 4).
	MaxEvents int
}

// sdcEvent is one scheduled corruption: flip bitMask of word index in the
// named resident tensor just before the step executes.
type sdcEvent struct {
	tensor  string
	index   int
	bitMask uint32
}

// SessionConfig controls a checkpointed training session.
type SessionConfig struct {
	// Train is the underlying fine-tuning run. SDC guards are forced on
	// inside a session regardless of Train.SDCChecks (the guards are
	// read-only, so guarded and unguarded runs stay bit-identical).
	Train realtrain.Config
	// Dir is the checkpoint directory (required).
	Dir string
	// Interval checkpoints every N completed steps (default 25; negative
	// disables periodic checkpointing).
	Interval int
	// KeepLast is the retention depth (default checkpoint.DefaultKeepLast).
	KeepLast int
	// MaxRollbacks aborts the run after this many recoveries (default 8) —
	// the backstop against a persistently corrupting environment.
	MaxRollbacks int
	// SDC optionally injects silent corruption to exercise recovery.
	SDC SDCPlan
}

func (c SessionConfig) withDefaults() SessionConfig {
	c.Train.SDCChecks = true
	if c.Interval == 0 {
		c.Interval = 25
	}
	if c.KeepLast == 0 {
		c.KeepLast = checkpoint.DefaultKeepLast
	}
	if c.MaxRollbacks == 0 {
		c.MaxRollbacks = 8
	}
	if c.SDC.MaxEvents == 0 {
		c.SDC.MaxEvents = 4
	}
	return c
}

// Session is a crash-recoverable training run: a realtrain.Trainer wrapped
// with periodic CRC-framed checkpoints, always-on SDC guards, and a
// rollback-and-replay policy. Construction auto-resumes from the newest
// intact checkpoint in the directory, so "kill the process, make a new
// Session over the same directory" is the recovery procedure — CrashRun
// proves it resumes bit-identically.
type Session struct {
	cfg     SessionConfig
	store   *checkpoint.Store
	tr      *realtrain.Trainer
	stats   phases.RecoveryStats
	resumed bool
	plan    map[int]sdcEvent
}

// NewSession opens (or creates) the checkpoint directory and either resumes
// from the newest intact snapshot or cold-starts a fresh trainer.
func NewSession(cfg SessionConfig) (*Session, error) {
	cfg = cfg.withDefaults()
	st, err := checkpoint.NewStore(cfg.Dir, cfg.KeepLast)
	if err != nil {
		return nil, err
	}
	s := &Session{cfg: cfg, store: st}

	snap, info, err := st.LoadLatest()
	switch {
	case err == nil:
		s.tr, err = realtrain.NewTrainerFromSnapshot(cfg.Train, snap)
		if err != nil {
			return nil, fmt.Errorf("core: resume from %s: %w", info.Path, err)
		}
		if err := s.tr.VerifyIntegrity(); err != nil {
			return nil, fmt.Errorf("core: resumed state failed integrity check: %w", err)
		}
		s.resumed = true
		s.stats.CorruptSnapshotsSkipped += int64(len(info.Skipped))
		s.stats.RecoveryTime += restoreTime(info.Size)
	case errors.Is(err, checkpoint.ErrNoSnapshot):
		// Cold start — but still account any corrupt files the walk
		// rejected on the way to "nothing loadable".
		s.stats.CorruptSnapshotsSkipped += int64(len(info.Skipped))
		s.tr, err = realtrain.NewTrainer(cfg.Train)
		if err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	s.plan = buildSDCPlan(cfg, s.tr)
	return s, nil
}

// buildSDCPlan precomputes the step->corruption schedule. The schedule is a
// pure function of the plan seed and the run shape, independent of how many
// times steps get replayed.
func buildSDCPlan(cfg SessionConfig, tr *realtrain.Trainer) map[int]sdcEvent {
	plan := map[int]sdcEvent{}
	if cfg.SDC.Rate <= 0 {
		return plan
	}
	tensors := []string{"master", "compute", "adam.m", "adam.v"}
	rng := rand.New(rand.NewSource(cfg.SDC.Seed))
	n := len(tr.MasterParams())
	for step := 0; step < tr.Config().Steps && len(plan) < cfg.SDC.MaxEvents; step++ {
		if rng.Float64() >= cfg.SDC.Rate {
			continue
		}
		plan[step] = sdcEvent{
			tensor:  tensors[rng.Intn(len(tensors))],
			index:   rng.Intn(n),
			bitMask: 1 << uint(1+rng.Intn(30)),
		}
	}
	return plan
}

// Resumed reports whether construction restored a checkpoint.
func (s *Session) Resumed() bool { return s.resumed }

// Trainer exposes the underlying trainer (read-only use by tests).
func (s *Session) Trainer() *realtrain.Trainer { return s.tr }

// Stats returns the accumulated recovery accounting.
func (s *Session) Stats() phases.RecoveryStats { return s.stats }

// StepResult packages the recovery accounting in the shared per-step result
// shape, so the experiment tables can report checkpoint overhead next to
// the link-level numbers.
func (s *Session) StepResult() phases.StepResult {
	return phases.StepResult{Variant: phases.TECOReduction, Recovery: s.stats}
}

// Checkpoint persists the current trainer state immediately.
func (s *Session) Checkpoint() error {
	_, size, err := s.store.Save(s.tr.Snapshot())
	if err != nil {
		return err
	}
	s.stats.CkptWrites++
	s.stats.CkptBytes += size
	return nil
}

// Run drives the session to completion: inject scheduled SDC events, step,
// roll back and replay on detection, checkpoint every Interval steps, and
// write a final checkpoint at the end.
func (s *Session) Run() (realtrain.Result, error) {
	if err := s.RunUntil(s.tr.Config().Steps); err != nil {
		return realtrain.Result{}, err
	}
	if err := s.Checkpoint(); err != nil {
		return realtrain.Result{}, err
	}
	return s.tr.Result(), nil
}

// RunUntil advances the session to the given step count (bounded by the
// configured run length). CrashRun uses it to stop mid-flight.
func (s *Session) RunUntil(stop int) error {
	if stop > s.tr.Config().Steps {
		stop = s.tr.Config().Steps
	}
	for s.tr.StepCount() < stop {
		step := s.tr.StepCount()
		if ev, ok := s.plan[step]; ok {
			// Consume the event so replay passes this step cleanly.
			delete(s.plan, step)
			if err := s.tr.CorruptWord(ev.tensor, ev.index, ev.bitMask); err != nil {
				return err
			}
		}
		if err := s.tr.Step(); err != nil {
			if !realtrain.IsCorruption(err) {
				return err
			}
			s.stats.SDCDetected++
			if err := s.rollback(); err != nil {
				return err
			}
			continue
		}
		done := s.tr.StepCount()
		if s.cfg.Interval > 0 && done%s.cfg.Interval == 0 {
			if err := s.Checkpoint(); err != nil {
				return err
			}
		}
	}
	return nil
}

// rollback restores the newest intact checkpoint (or cold-starts when none
// survives) and accounts the replay distance. The guards detect corruption
// before it is committed past the failing phase, so the restored state plus
// deterministic replay reproduces the fault-free run bit-exactly.
func (s *Session) rollback() error {
	if s.stats.Rollbacks >= int64(s.cfg.MaxRollbacks) {
		return fmt.Errorf("core: aborting after %d rollbacks (persistent corruption)", s.stats.Rollbacks)
	}
	cur := s.tr.StepCount()

	snap, info, err := s.store.LoadLatest()
	switch {
	case err == nil:
		s.stats.CorruptSnapshotsSkipped += int64(len(info.Skipped))
		s.tr, err = realtrain.NewTrainerFromSnapshot(s.cfg.Train, snap)
		if err != nil {
			return fmt.Errorf("core: rollback to %s: %w", info.Path, err)
		}
	case errors.Is(err, checkpoint.ErrNoSnapshot):
		// Nothing persisted yet: replay from step zero. NewTrainer is
		// deterministic in the seed, so this is still bit-exact.
		s.stats.CorruptSnapshotsSkipped += int64(len(info.Skipped))
		s.tr, err = realtrain.NewTrainer(s.cfg.Train)
		if err != nil {
			return err
		}
	default:
		return err
	}
	if err := s.tr.VerifyIntegrity(); err != nil {
		return fmt.Errorf("core: restored state failed integrity check: %w", err)
	}
	s.stats.Rollbacks++
	s.stats.ReplayedSteps += int64(cur - s.tr.StepCount())
	s.stats.RecoveryTime += restoreTime(info.Size)
	return nil
}

// ckptReadBandwidth models NVMe-class sequential read for restore timing —
// deterministic like every sim.Time in the repo, so the recovery sweep is
// exactly regenerable (the repo's determinism invariant).
const ckptReadBandwidth = 2 << 30 // bytes/s

// restoreTime charges the modeled cost of re-reading an encoded snapshot.
func restoreTime(bytes int64) sim.Time {
	return sim.Time(float64(bytes) / float64(ckptReadBandwidth) * float64(sim.Second))
}

// CrashRun is the crash-injection harness: run a session until crashAt
// completed steps, kill it there (the Session is simply abandoned, exactly
// like a process death — no flush, no final checkpoint), then construct a
// new Session over the same directory, which auto-resumes from the newest
// intact checkpoint and finishes the run. It returns the survivor's result
// and the combined recovery accounting of both incarnations.
func CrashRun(cfg SessionConfig, crashAt int) (realtrain.Result, phases.RecoveryStats, error) {
	first, err := NewSession(cfg)
	if err != nil {
		return realtrain.Result{}, phases.RecoveryStats{}, err
	}
	if err := first.RunUntil(crashAt); err != nil {
		return realtrain.Result{}, phases.RecoveryStats{}, err
	}
	// Process dies here. No state survives except the checkpoint directory.

	second, err := NewSession(cfg)
	if err != nil {
		return realtrain.Result{}, phases.RecoveryStats{}, err
	}
	resumeAt := second.Trainer().StepCount()
	res, err := second.Run()
	if err != nil {
		return realtrain.Result{}, phases.RecoveryStats{}, err
	}
	stats := first.Stats().Add(second.Stats())
	// The steps between the resume point and the crash are executed twice:
	// once by the victim, once by the survivor.
	if crashAt > resumeAt {
		stats.ReplayedSteps += int64(crashAt - resumeAt)
	}
	return res, stats, nil
}
