package core

import (
	"errors"
	"fmt"

	"teco/internal/conformance/check"
	"teco/internal/dba"
	"teco/internal/cxl"
	"teco/internal/fabric"
	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/sim"
)

// FabricConfig configures the data-parallel switched-fabric step.
type FabricConfig struct {
	// Replicas is the data-parallel width: one accelerator (and one
	// switch port per direction) per replica, each computing batch/R.
	Replicas int
	// HostPorts sets the spine uplink count (Replicas/HostPorts is the
	// oversubscription ratio); 0 selects Replicas (non-blocking).
	HostPorts int
	// SparePorts adds idle ports per direction for failover.
	SparePorts int
	// HopLatency is the switch traversal latency per flow. Zero keeps a
	// one-replica fabric bit-identical to the point-to-point engine (the
	// conformance equality); experiments pass fabric.DefaultHopLatency.
	HopLatency sim.Time
	// KillPort, when 1..Replicas, kills that replica's ports (1-based,
	// both directions) after its backward pass, before its gradient
	// writeback — the mid-step accelerator-loss case. With a spare port
	// the step fails over; without one the replica is lost, its shard is
	// recomputed by the survivors, and the step completes degraded.
	KillPort int
}

// StepFabric simulates one data-parallel training step over the switched
// fabric: every replica runs forward/backward on its batch shard and
// streams gradients up its own fabric port; the host clips and runs ADAM
// once; parameter writebacks stream down every live replica's port. With
// one replica, no spares and zero hop latency the result is bit-identical
// to Step (asserted by TestStepFabricSingleReplicaMatchesStep) — the
// switch layer degenerates to the bare link.
func (e *Engine) StepFabric(m modelzoo.Model, batch int, fc FabricConfig) (phases.StepResult, error) {
	R := fc.Replicas
	if R < 1 {
		return phases.StepResult{}, fmt.Errorf("core: fabric needs >= 1 replica, got %d", R)
	}
	if batch < R {
		return phases.StepResult{}, fmt.Errorf("core: batch %d smaller than %d replicas", batch, R)
	}
	if fc.KillPort < 0 || fc.KillPort > R {
		return phases.StepResult{}, fmt.Errorf("core: kill port %d outside 1..%d", fc.KillPort, R)
	}
	if e.Config.Invalidation {
		return phases.StepResult{}, fmt.Errorf("core: fabric mode runs the update protocol only")
	}
	useDBA := e.Config.DBA
	degradedDBA := false
	if useDBA && e.Config.Degrade &&
		AggregatedUneconomical(e.Config.Faults, e.Config.DirtyBytes, e.LinkBandwidth) {
		useDBA = false
		degradedDBA = true
	}
	res, err := e.stepFabric(m, batch, fc, useDBA)
	if err != nil {
		return phases.StepResult{}, err
	}
	res.Fault.Degraded = degradedDBA
	if check.Enabled() {
		check.Check(res.Check)
	}
	return res, nil
}

// fabricSwitch builds one direction's switch with per-port derived fault
// seeds (port 0 keeps the direction's base seed, matching stepUpdate).
func (e *Engine) fabricSwitch(fc FabricConfig, seedOffset int64) (*fabric.Switch, error) {
	faults := e.Config.Faults
	if faults.Enabled() {
		faults.Seed = 2*faults.Seed + seedOffset
	}
	return fabric.NewSwitch(fabric.SwitchConfig{
		Ports:      fc.Replicas,
		SparePorts: fc.SparePorts,
		HostPorts:  fc.HostPorts,
		Bandwidth:  e.LinkBandwidth,
		QueueCap:   e.QueueCap,
		PerLine:    e.Config.PerLine,
		HopLatency: fc.HopLatency,
		Faults:     faults,
	})
}

func (e *Engine) stepFabric(m modelzoo.Model, batch int, fc FabricConfig, useDBA bool) (phases.StepResult, error) {
	R := fc.Replicas
	up, err := e.fabricSwitch(fc, 1)
	if err != nil {
		return phases.StepResult{}, err
	}
	down, err := e.fabricSwitch(fc, 2)
	if err != nil {
		return phases.StepResult{}, err
	}

	// Contiguous batch shards, remainder to the low replica ids.
	shard := make([]int, R)
	base, rem := batch/R, batch%R
	for r := range shard {
		shard[r] = base
		if r < rem {
			shard[r]++
		}
	}

	// Scheduled chaos: the replica's ports die after its backward pass,
	// before the gradient writeback.
	kill := fc.KillPort - 1
	if kill >= 0 {
		if err := up.KillPort(kill); err != nil {
			return phases.StepResult{}, err
		}
		if err := down.KillPort(kill); err != nil {
			return phases.StepResult{}, err
		}
	}

	fullWire := cxl.WirePacketBytes(0)
	alive := make([]bool, R)
	bwdEnd := make([]sim.Time, R)
	var fwdMaxLive, detectAt sim.Time
	var gradBytes int64
	lost := -1
	for r := 0; r < R; r++ {
		alive[r] = true
		fwd := e.GPU.ForwardTime(m, shard[r])
		bwd := e.GPU.BackwardTime(m, shard[r])
		bwdEnd[r] = fwd + bwd
		for _, ch := range e.GPU.GradientSchedule(m, shard[r]) {
			_, serr := up.Send(r, fwd+ch.ReadyAt, int(ch.Bytes), mem.LinesIn(ch.Bytes), 0, fullWire, false)
			if serr != nil {
				var pde *fabric.PortDownError
				if !errors.As(serr, &pde) {
					return phases.StepResult{}, serr
				}
				// Link-down detection: the failed writeback surfaces at
				// pde.At, after the timeout and failover probes.
				alive[r] = false
				lost = r
				if pde.At > detectAt {
					detectAt = pde.At
				}
				break
			}
			gradBytes += ch.Bytes
		}
		if alive[r] && fwd > fwdMaxLive {
			fwdMaxLive = fwd
		}
	}
	redistributed := int64(0)
	if lost >= 0 {
		// Graceful degradation: the survivors re-run the lost shard after
		// detection, splitting it evenly, and stream the recomputed
		// gradients up their own (live) ports.
		var survivors []int
		for r := 0; r < R; r++ {
			if alive[r] {
				survivors = append(survivors, r)
			}
		}
		if len(survivors) == 0 {
			return phases.StepResult{}, fmt.Errorf("core: all replicas lost (no spare port)")
		}
		b2, rem2 := shard[lost]/len(survivors), shard[lost]%len(survivors)
		for i, r := range survivors {
			extra := b2
			if i < rem2 {
				extra++
			}
			if extra == 0 {
				continue
			}
			redistributed++
			start := bwdEnd[r]
			if detectAt > start {
				start = detectAt
			}
			fwd2 := e.GPU.ForwardTime(m, extra)
			bwd2 := e.GPU.BackwardTime(m, extra)
			for _, ch := range e.GPU.GradientSchedule(m, extra) {
				if _, serr := up.Send(r, start+fwd2+ch.ReadyAt, int(ch.Bytes), mem.LinesIn(ch.Bytes), 0, fullWire, false); serr != nil {
					return phases.StepResult{}, serr
				}
				gradBytes += ch.Bytes
			}
			bwdEnd[r] = start + fwd2 + bwd2
		}
	}

	// Global gradient barrier: CXLFENCE over every live port's path.
	var maxBwdEnd, gradDone, gradClean sim.Time
	for r := 0; r < R; r++ {
		if !alive[r] {
			continue
		}
		if bwdEnd[r] > maxBwdEnd {
			maxBwdEnd = bwdEnd[r]
		}
		if t := up.FencePort(r, bwdEnd[r]); t > gradDone {
			gradDone = t
		}
		if t := up.FenceCleanPort(r, bwdEnd[r]); t > gradClean {
			gradClean = t
		}
	}

	clip := e.CPU.ClipTime(m.Params)
	clipEnd := gradDone + clip
	adam := e.CPU.AdamTime(m.Params)
	adamEnd := clipEnd + adam

	perLine := e.perLinePayload(useDBA)
	paramWire := fullWire
	var extra sim.Time
	if useDBA {
		extra = dba.ModelledLatency
		paramWire = cxl.WirePacketBytes(e.Config.DirtyBytes)
	}
	var paramBytes int64
	liveDown := 0
	for r := 0; r < R; r++ {
		if !alive[r] {
			continue
		}
		for _, ch := range e.CPU.UpdateSchedule(m) {
			payload := ch.Bytes * int64(perLine) / mem.LineSize
			if _, serr := down.Send(r, clipEnd+ch.ReadyAt, int(payload), mem.LinesIn(ch.Bytes), extra, paramWire, useDBA); serr != nil {
				var pde *fabric.PortDownError
				if !errors.As(serr, &pde) {
					return phases.StepResult{}, serr
				}
				return phases.StepResult{}, fmt.Errorf("core: replica %d unreachable for parameter writeback: %w", r, serr)
			}
		}
		paramBytes += e.paramLinkBytes(m, useDBA)
		liveDown++
	}
	var paramDone, prmClean sim.Time
	paramDone, prmClean = adamEnd, adamEnd
	for r := 0; r < R; r++ {
		if !alive[r] {
			continue
		}
		if t := down.FencePort(r, adamEnd); t > paramDone {
			paramDone = t
		}
		if t := down.FenceCleanPort(r, adamEnd); t > prmClean {
			prmClean = t
		}
	}

	res := phases.StepResult{
		Variant: e.Config.Variant(),
		Breakdown: phases.Breakdown{
			Fwd:  fwdMaxLive,
			Bwd:  maxBwdEnd - fwdMaxLive,
			Grad: gradDone - maxBwdEnd,
			Clip: clip,
			Adam: adam,
			Prm:  paramDone - adamEnd,
		},
		ParamLinkBytes: paramBytes,
		GradLinkBytes:  gradBytes,
	}
	upStats, downStats := up.Stats(), down.Stats()
	res.Fabric = phases.FabricStats{
		Replicas:        int64(R),
		HostPorts:       int64(fc.HostPorts),
		PortsDown:       upStats.PortsDown + downStats.PortsDown,
		Failovers:       upStats.Failovers + downStats.Failovers,
		FailoverRetries: upStats.FailoverRetries + downStats.FailoverRetries,
		SpineBytes:      upStats.SpineBytes + downStats.SpineBytes,
		SpineQueued:     upStats.SpineQueued + downStats.SpineQueued,
		LostReplicas:    int64(R - liveDown),
		Redistributed:   redistributed,
		Degraded:        lost >= 0,
	}
	if res.Fabric.HostPorts == 0 {
		res.Fabric.HostPorts = int64(R)
	}
	if e.Config.Faults.Enabled() {
		var gradRecovery, prmRecovery sim.Time
		var gradRecBytes, prmRecBytes int64
		for i := 0; i < up.PhysPorts(); i++ {
			gradRecovery += poisonRecoveryTime(up.Link(i))
			gradRecBytes += poisonRecoveryBytes(up.Link(i))
		}
		for i := 0; i < down.PhysPorts(); i++ {
			prmRecovery += poisonRecoveryTime(down.Link(i))
			prmRecBytes += poisonRecoveryBytes(down.Link(i))
		}
		res.Grad += gradRecovery
		res.Prm += prmRecovery
		res.GradLinkBytes += gradRecBytes
		res.ParamLinkBytes += prmRecBytes
		fs := up.FaultStats().Add(down.FaultStats())
		res.Fault = phases.FaultStats{
			Retries:       fs.Retries,
			ReplayedBytes: fs.ReplayedBytes,
			Poisoned:      fs.Poisoned,
			Recovered:     fs.Poisoned,
			Stalls:        fs.Stalls,
			StallTime:     fs.StallTime,
			Exposed: (gradDone - gradClean) + (paramDone - prmClean) +
				gradRecovery + prmRecovery,
		}
	}
	if check.Enabled() {
		check.Check(up.CheckInvariants, down.CheckInvariants)
	}
	return res, nil
}
