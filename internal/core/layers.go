package core

import (
	"fmt"

	"teco/internal/conformance/check"
	"teco/internal/cxl"
	"teco/internal/mem"
	"teco/internal/modelzoo"
	"teco/internal/phases"
	"teco/internal/sim"
	"teco/internal/staging"
)

// Per-layer offload scheduling for the timing engine — the timing half of
// the scheduler whose functional half lives in realtrain.OffloadScheduler
// (both share staging.Residency, so "which layer is resident when" has one
// definition on both sides of the house equality).
//
// StepLayered runs the ordinary TECO step (compute + coherence planes,
// untouched) and adds a STAGING plane on top: a fast tier of CacheBytes
// holding a subset of the model's layers, fed from the far tier over its
// own pair of timed links. The forward walk demand-fetches each layer it
// reaches and prefetches the next Prefetch layers while layer k computes —
// layer-k compute hides layer-k+1 transfer, the paper's Fig 6 overlap at
// layer granularity. The backward walk mirrors this downward. Fetch
// latency that compute could not hide lands in the breakdown (param stalls
// in Prm, activation stalls and writeback exposure in Grad), so the layers
// sweep can chart scheduled step time against cache size and policy.
//
// When every layer fits (CacheBytes >= model) the staging plane moves no
// bytes and adds no time: StepLayered degrades to Step bit-identically,
// with only the LayerStats hit counters recording that the walk happened
// (asserted by layers_test.go, which zeroes Layer and compares DeepEqual).

// LayerConfig parameterizes one layered step.
type LayerConfig struct {
	// Layers overrides the model's layer count (0 keeps the model's own) —
	// the layers-sweep axis.
	Layers int
	// CacheBytes is the fast-tier capacity; 0 means every layer fits (the
	// all-resident baseline). A bounded capacity must hold at least the
	// largest per-layer slot.
	CacheBytes int64
	// Prefetch is the eager look-ahead depth in layers; 0 is demand-only
	// (the no-overlap serial reference).
	Prefetch int
	// Policy is the eviction discipline: "" or "lru", "fifo", "pin".
	Policy string
	// Pinned is the pinned hot-layer count (policy "pin").
	Pinned int
	// ActOffload spills each layer's activations to the far tier as
	// forward leaves them behind and refetches them for backward — the
	// long-context activation-heavy mode.
	ActOffload bool
	// SeqLen overrides the model's effective and padded sequence length
	// (the long-context knob; 0 keeps the model's own).
	SeqLen int
}

// layerSlotBytes splits the model's parameter bytes into per-layer slots
// (remainder on the last, mirroring cpusim.UpdateSchedule).
func layerSlotBytes(m modelzoo.Model) []int64 {
	n := m.Layers
	per := m.ParamBytes() / int64(n)
	rem := m.ParamBytes() - per*int64(n)
	sizes := make([]int64, n)
	for i := range sizes {
		sizes[i] = per
		if i == n-1 {
			sizes[i] += rem
		}
	}
	return sizes
}

// perLayerActBytes returns one layer's activation footprint for the batch.
func perLayerActBytes(m modelzoo.Model, batch int) int64 {
	return m.ActivationBytes(batch) / int64(m.Layers)
}

// layerPlane is the staging plane of one layered step: the residency model
// plus the fetch/writeback links and the per-layer completion times.
type layerPlane struct {
	res       *staging.Residency
	fetch     *cxl.Link
	wb        *cxl.Link
	fetchS    *cxl.Stream
	wbS       *cxl.Stream
	sizes     []int64
	fetchDone []sim.Time // per-layer param fetch completion (0: none in flight)
	actDone   []sim.Time // per-layer activation refetch completion
	actBytes  int64
	wire      int

	stats phases.LayerStats
}

// use walks one demand access at cursor t and returns the stall compute
// must absorb before layer k can execute.
func (p *layerPlane) use(k int, t sim.Time) sim.Time {
	miss, _ := p.res.Use(k, k)
	if miss {
		fr := p.fetchS.PushRun(t, int(p.sizes[k]), mem.LinesIn(p.sizes[k]), 0, p.wire, false)
		p.stats.DemandMisses++
		p.stats.FetchBytes += p.sizes[k]
		stall := fr.Done - t
		p.stats.DemandStall += stall
		p.fetchDone[k] = 0
		return stall
	}
	p.stats.Hits++
	if done := p.fetchDone[k]; done > t {
		// A prefetch raced ahead of use but compute outran the wire: only
		// the residual is exposed.
		p.stats.PrefetchHits++
		p.fetchDone[k] = 0
		stall := done - t
		p.stats.PrefetchStall += stall
		return stall
	}
	if p.fetchDone[k] != 0 {
		p.stats.PrefetchHits++
		p.fetchDone[k] = 0
	}
	return 0
}

// prefetch issues the eager fetch of layer j while layer k executes at t.
func (p *layerPlane) prefetch(j, k int, t sim.Time) {
	if !p.res.Prefetch(j, k) {
		return
	}
	fr := p.fetchS.PushRun(t, int(p.sizes[j]), mem.LinesIn(p.sizes[j]), 0, p.wire, false)
	p.stats.PrefetchIssued++
	p.stats.FetchBytes += p.sizes[j]
	p.fetchDone[j] = fr.Done
}

// spillAct writes layer k's activations to the far tier at t (off the
// critical path; the writeback fence at the end surfaces any exposure).
func (p *layerPlane) spillAct(t sim.Time) {
	p.wbS.PushRun(t, int(p.actBytes), mem.LinesIn(p.actBytes), 0, p.wire, false)
	p.stats.WritebackBytes += p.actBytes
}

// fetchAct refetches layer k's activations for backward: demand-issued at
// t unless prefetchAct already has them in flight.
func (p *layerPlane) fetchAct(k int, t sim.Time) sim.Time {
	done := p.actDone[k]
	if done == 0 {
		fr := p.fetchS.PushRun(t, int(p.actBytes), mem.LinesIn(p.actBytes), 0, p.wire, false)
		done = fr.Done
		p.stats.FetchBytes += p.actBytes
	}
	p.actDone[k] = 0
	if done > t {
		stall := done - t
		p.stats.ActStall += stall
		return stall
	}
	return 0
}

// prefetchAct issues the eager activation refetch of layer j at t.
func (p *layerPlane) prefetchAct(j int, t sim.Time) {
	if p.actDone[j] != 0 {
		return
	}
	fr := p.fetchS.PushRun(t, int(p.actBytes), mem.LinesIn(p.actBytes), 0, p.wire, false)
	p.stats.FetchBytes += p.actBytes
	p.actDone[j] = fr.Done
}

// StepLayered simulates one training step under per-layer offload
// scheduling. The compute and coherence planes are exactly Step's; the
// staging plane adds the layer-migration traffic and its exposed stalls.
func (e *Engine) StepLayered(m modelzoo.Model, batch int, lc LayerConfig) (phases.StepResult, error) {
	if e.Config.Invalidation {
		return phases.StepResult{}, fmt.Errorf("core: layered scheduling requires the update protocol")
	}
	if lc.Layers < 0 || lc.Prefetch < 0 || lc.Pinned < 0 {
		return phases.StepResult{}, fmt.Errorf("core: negative layer config %+v", lc)
	}
	if lc.Layers > 0 {
		m.Layers = lc.Layers
	}
	if lc.SeqLen > 0 {
		m.SeqLen = lc.SeqLen
		m.AllocSeqLen = lc.SeqLen
	}
	policy, err := staging.ParsePolicy(lc.Policy)
	if err != nil {
		return phases.StepResult{}, err
	}
	sizes := layerSlotBytes(m)
	res, err := staging.NewResidency(sizes, lc.CacheBytes, policy, lc.Pinned)
	if err != nil {
		return phases.StepResult{}, err
	}
	// Warm start: the fast tier holds the lowest layers, the working set
	// the previous step's backward walk (which ends at layer 0) left.
	for i := range sizes {
		if !res.Warm(i) {
			break
		}
	}

	// Compute + coherence planes: the ordinary TECO step, untouched.
	out := e.Step(m, batch)

	// Staging plane: its own engine and link pair — far-tier layer
	// migration shares no queue with the coherence streams.
	eng := sim.New()
	p := &layerPlane{
		res:       res,
		fetch:     cxl.NewLink(eng, e.LinkBandwidth, e.QueueCap),
		wb:        cxl.NewLink(eng, e.LinkBandwidth, e.QueueCap),
		sizes:     sizes,
		fetchDone: make([]sim.Time, m.Layers),
		actDone:   make([]sim.Time, m.Layers),
		wire:      cxl.WirePacketBytes(0),
	}
	p.fetchS = cxl.NewStream(p.fetch, e.Config.PerLine)
	p.wbS = cxl.NewStream(p.wb, e.Config.PerLine)
	if lc.ActOffload {
		p.actBytes = perLayerActBytes(m, batch)
	}
	p.stats.Layers = int64(m.Layers)
	p.stats.CacheBytes = res.Capacity()

	fwd := e.GPU.ForwardTime(m, batch)
	bwd := e.GPU.BackwardTime(m, batch)
	n := int64(m.Layers)
	last := m.Layers - 1

	// Forward walk: layer k computes over its telescoped share of the
	// forward time while the prefetch window pulls k+1..k+P.
	var cursor, prmStall, actStall sim.Time
	for k := 0; k <= last; k++ {
		prmStall += p.use(k, cursor)
		for j := k + 1; j <= k+lc.Prefetch && j <= last; j++ {
			p.prefetch(j, k, cursor)
		}
		if p.actBytes > 0 {
			p.spillAct(cursor)
		}
		cursor += fwd*sim.Time(int64(k)+1)/sim.Time(n) - fwd*sim.Time(int64(k))/sim.Time(n)
	}
	// Backward walk in reverse, prefetching downward; spilled activations
	// stream back in before each layer's backward.
	for k := last; k >= 0; k-- {
		prmStall += p.use(k, cursor)
		for j := k - 1; j >= k-lc.Prefetch && j >= 0; j-- {
			p.prefetch(j, k, cursor)
			if p.actBytes > 0 {
				p.prefetchAct(j, cursor)
			}
		}
		if p.actBytes > 0 {
			actStall += p.fetchAct(k, cursor)
		}
		i := int64(last - k)
		cursor += bwd*sim.Time(i+1)/sim.Time(n) - bwd*sim.Time(i)/sim.Time(n)
	}
	// Evicted parameter layers are clean (the CPU master copy is
	// authoritative), so evictions are free; the only writeback exposure
	// is the activation spill still in flight when backward needs the bus.
	if p.actBytes > 0 {
		actStall += p.wb.Fence(cursor) - cursor
	}

	rs := res.Stats()
	p.stats.ResidentBytes = res.ResidentBytes()
	p.stats.Evictions = rs.Evictions
	// The staging plane is a separate far-tier interconnect: its volumes
	// stay in LayerStats (FetchBytes/WritebackBytes) rather than folding
	// into the coherence link counters, but its exposed latency is real
	// step time — param stalls extend Prm, activation stalls and spill
	// exposure extend Grad.
	out.Prm += prmStall
	out.Grad += actStall
	out.Layer = p.stats

	// Both scheduler halves feed the process-wide /statz telemetry.
	staging.RecordSchedStep(staging.ResidencyStats{
		Hits:           p.stats.Hits,
		PrefetchHits:   p.stats.PrefetchHits,
		DemandMisses:   p.stats.DemandMisses,
		PrefetchIssued: p.stats.PrefetchIssued,
		LoadedBytes:    p.stats.FetchBytes,
	})
	if p.stats.WritebackBytes > 0 {
		staging.RecordWriteback(p.stats.WritebackBytes)
	}

	if check.Enabled() {
		check.Check(out.Check, res.CheckInvariants)
	}
	return out, nil
}
