package core

import (
	"reflect"
	"strings"
	"testing"

	"teco/internal/conformance/check"
	"teco/internal/cxl"
	"teco/internal/modelzoo"
)

// TestStepLayeredAllResidentMatchesStep is the degradation guarantee: when
// the fast tier holds every layer, the staging plane moves no bytes and
// adds no time — StepLayered equals Step bit-identically once the Layer
// accounting (which only records that the walk happened) is zeroed.
func TestStepLayeredAllResidentMatchesStep(t *testing.T) {
	check.Enable(t)
	m := modelzoo.GPT2()
	for name, cfg := range map[string]Config{
		"plain":  {},
		"dba":    {DBA: true},
		"faults": {DBA: true, Faults: cxl.FaultConfig{Seed: 5, BER: 1e-7}},
	} {
		t.Run(name, func(t *testing.T) {
			e := MustEngine(cfg)
			want := e.Step(m, 4)
			got, err := e.StepLayered(m, 4, LayerConfig{Prefetch: 2})
			if err != nil {
				t.Fatal(err)
			}
			l := got.Layer
			if l.DemandMisses != 0 || l.FetchBytes != 0 || l.WritebackBytes != 0 ||
				l.DemandStall != 0 || l.PrefetchStall != 0 || l.ActStall != 0 {
				t.Fatalf("all-resident step shows staging traffic: %+v", l)
			}
			if l.Hits != 2*int64(m.Layers) {
				t.Fatalf("layer walk hit %d times, want %d", l.Hits, 2*m.Layers)
			}
			got.Layer = want.Layer
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("all-resident layered step diverged:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestStepLayeredOverlapWin is the acceptance criterion of the layers
// sweep: with >= 4 layers and a cache under 50% of the model, the
// prefetch-scheduled step is measurably faster than the no-prefetch serial
// reference — layer-k compute hides layer-k+1 transfer.
func TestStepLayeredOverlapWin(t *testing.T) {
	check.Enable(t)
	e := MustEngine(Config{})
	m := modelzoo.GPT2() // 12 layers
	cache := m.ParamBytes() * 2 / 5

	serial, err := e.StepLayered(m, 4, LayerConfig{CacheBytes: cache})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 1: the model is link-bound here (per-layer fetch ~2.9ms vs
	// ~1.1ms forward compute), and a deeper window thrashes a cache this
	// small — the layers-policy sweep charts exactly that cliff.
	sched, err := e.StepLayered(m, 4, LayerConfig{CacheBytes: cache, Prefetch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Layer.PrefetchIssued != 0 {
		t.Fatalf("serial reference issued prefetches: %+v", serial.Layer)
	}
	if sched.Layer.PrefetchIssued == 0 || sched.Layer.PrefetchHits == 0 {
		t.Fatalf("scheduled run overlapped nothing: %+v", sched.Layer)
	}
	if sched.Total() >= serial.Total() {
		t.Fatalf("prefetch won nothing: scheduled %v vs serial %v", sched.Total(), serial.Total())
	}
	if serial.Layer.DemandMisses == 0 || serial.Layer.Evictions == 0 {
		t.Fatalf("undersized cache produced no churn: %+v", serial.Layer)
	}
}

// TestStepLayeredPolicies asserts every eviction policy walks the same
// layers (same hit+miss total) while placing misses differently, and that
// pinning the hot layers removes their refetches.
func TestStepLayeredPolicies(t *testing.T) {
	check.Enable(t)
	e := MustEngine(Config{})
	m := modelzoo.GPT2()
	cache := m.ParamBytes() / 2
	uses := 2 * int64(m.Layers)

	for _, policy := range []string{"lru", "fifo", "pin"} {
		lc := LayerConfig{CacheBytes: cache, Prefetch: 1, Policy: policy}
		if policy == "pin" {
			lc.Pinned = 2
		}
		res, err := e.StepLayered(m, 4, lc)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Layer.Hits + res.Layer.DemandMisses; got != uses {
			t.Fatalf("%s: %d demand uses, want %d", policy, got, uses)
		}
		if res.Layer.CacheBytes != cache {
			t.Fatalf("%s: cache %d, want %d", policy, res.Layer.CacheBytes, cache)
		}
	}
}

// TestStepLayeredActOffload asserts the long-context mode spills and
// refetches activations: writeback volume appears and the step pays (only)
// Grad-side exposure relative to the param-only schedule.
func TestStepLayeredActOffload(t *testing.T) {
	check.Enable(t)
	e := MustEngine(Config{})
	m := modelzoo.GPT2()
	base := LayerConfig{CacheBytes: m.ParamBytes() / 2, Prefetch: 2, SeqLen: 512}
	off := base
	off.ActOffload = true

	plain, err := e.StepLayered(m, 4, base)
	if err != nil {
		t.Fatal(err)
	}
	spill, err := e.StepLayered(m, 4, off)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Layer.WritebackBytes != 0 {
		t.Fatalf("param-only schedule wrote activations: %+v", plain.Layer)
	}
	if spill.Layer.WritebackBytes == 0 || spill.Layer.ActStall == 0 {
		t.Fatalf("activation offload moved nothing: %+v", spill.Layer)
	}
	if spill.Grad <= plain.Grad {
		t.Fatalf("activation offload exposed no transfer time: %v vs %v", spill.Grad, plain.Grad)
	}
	// Activation refetches share the staging fetch link with parameter
	// fetches (so Prm may legitimately grow under contention), but compute
	// phases must be untouched.
	if spill.Fwd != plain.Fwd || spill.Bwd != plain.Bwd {
		t.Fatal("activation offload changed the compute phases")
	}
}

// TestStepLayeredDeterministic asserts the layered step is a pure function
// of its inputs.
func TestStepLayeredDeterministic(t *testing.T) {
	e := MustEngine(Config{DBA: true})
	m := modelzoo.BertLargeCased()
	lc := LayerConfig{CacheBytes: m.ParamBytes() / 3, Prefetch: 2, Policy: "fifo", ActOffload: true}
	a, err := e.StepLayered(m, 8, lc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.StepLayered(m, 8, lc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("layered step not deterministic")
	}
}

// TestStepLayeredErrors asserts malformed layer configs fail cleanly.
func TestStepLayeredErrors(t *testing.T) {
	m := modelzoo.GPT2()
	if _, err := MustEngine(Config{Invalidation: true}).StepLayered(m, 4, LayerConfig{}); err == nil {
		t.Fatal("invalidation engine accepted layered scheduling")
	}
	e := MustEngine(Config{})
	if _, err := e.StepLayered(m, 4, LayerConfig{Policy: "mru"}); err == nil || !strings.Contains(err.Error(), "policy") {
		t.Fatalf("bad policy: err=%v", err)
	}
	if _, err := e.StepLayered(m, 4, LayerConfig{CacheBytes: 100}); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("undersized cache: err=%v", err)
	}
	if _, err := e.StepLayered(m, 4, LayerConfig{Prefetch: -1}); err == nil {
		t.Fatal("negative prefetch accepted")
	}
}
