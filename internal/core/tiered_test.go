package core

import (
	"reflect"
	"testing"

	"teco/internal/conformance/check"
	"teco/internal/cxl"
	"teco/internal/modelzoo"
	"teco/internal/phases"
)

// TestRunTieredAllFitsMatchesSteps is the degradation guarantee: with
// DRAMBytes 0 every slot is fast, the tiering plane moves no bytes and adds
// no time — RunTiered equals the sum of plain Steps bit-identically once
// the Tier accounting (which only records that the walk happened) is
// zeroed.
func TestRunTieredAllFitsMatchesSteps(t *testing.T) {
	check.Enable(t)
	m := modelzoo.GPT2()
	for name, cfg := range map[string]Config{
		"plain":  {},
		"dba":    {DBA: true},
		"faults": {DBA: true, Faults: cxl.FaultConfig{Seed: 5, BER: 1e-7}},
	} {
		t.Run(name, func(t *testing.T) {
			ref := MustEngine(cfg)
			var want phases.StepResult
			for s := 0; s < DefaultTierSteps; s++ {
				want = addStep(want, ref.Step(m, 4))
			}

			e := MustEngine(cfg)
			got, _, err := e.RunTiered(m, 4, TierConfig{OptSlots: true, MigrateBudget: 1 << 30})
			if err != nil {
				t.Fatal(err)
			}
			tr := got.Tier
			if tr.FarAccesses != 0 || tr.FarFetchBytes != 0 || tr.Migrations != 0 ||
				tr.FarStall != 0 || tr.AdamStall != 0 {
				t.Fatalf("all-fast run shows tier traffic: %+v", tr)
			}
			if wantHits := int64(DefaultTierSteps) * int64(m.Layers) * 4; tr.FastHits != wantHits {
				t.Fatalf("tier walk hit %d times, want %d", tr.FastHits, wantHits)
			}
			got.Tier = want.Tier
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("all-fast tiered run diverged:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestRunTieredZeroBudgetMatchesStatic: with no migration budget every
// policy freezes the first-fit placement, so heat, lru and static runs are
// bit-identical.
func TestRunTieredZeroBudgetMatchesStatic(t *testing.T) {
	check.Enable(t)
	m := modelzoo.GPT2()
	dram := 3 * m.ParamBytes() / 4
	base, baseTrace, err := MustEngine(Config{DBA: true}).RunTiered(m, 4, TierConfig{
		DRAMBytes: dram, OptSlots: true, Policy: "static", MigrateBudget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"heat", "lru", "static"} {
		got, trace, err := MustEngine(Config{DBA: true}).RunTiered(m, 4, TierConfig{
			DRAMBytes: dram, OptSlots: true, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("policy %q with zero budget diverged from static:\n got %+v\nwant %+v",
				policy, got, base)
		}
		if !reflect.DeepEqual(trace.Fast, baseTrace.Fast) {
			t.Fatalf("policy %q moved placement with zero budget", policy)
		}
	}
}

// TestRunTieredMigrationWins: under capacity pressure with a budget, the
// heat policy beats the static placement — the tentpole's reason to exist —
// and the migration accounting balances.
func TestRunTieredMigrationWins(t *testing.T) {
	check.Enable(t)
	m := modelzoo.GPT2()
	dram := 3 * m.ParamBytes() / 4 // 25% of the tiered total
	tc := TierConfig{DRAMBytes: dram, OptSlots: true, MigrateBudget: 512 << 20}

	static := tc
	static.Policy = "static"
	base, _, err := MustEngine(Config{DBA: true}).RunTiered(m, 4, static)
	if err != nil {
		t.Fatal(err)
	}
	got, trace, err := MustEngine(Config{DBA: true}).RunTiered(m, 4, tc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() >= base.Total() {
		t.Fatalf("heat policy no faster than static: %v vs %v", got.Total(), base.Total())
	}
	if got.Tier.Migrations == 0 || got.Tier.PromotedBytes == 0 {
		t.Fatalf("win without migrations: %+v", got.Tier)
	}
	var resident int64
	for i, fast := range trace.Fast {
		if fast {
			resident += trace.Sizes[i]
		}
	}
	if resident > trace.FastBytes {
		t.Fatalf("final placement overfills the fast tier: %d > %d", resident, trace.FastBytes)
	}
}

// TestRunTieredPerLineMatchesCoalesced: the tiering plane is bit-identical
// on the per-line reference path and the flow-coalescing fast path.
func TestRunTieredPerLineMatchesCoalesced(t *testing.T) {
	check.Enable(t)
	m := modelzoo.GPT2()
	m.Layers = 4
	tc := TierConfig{DRAMBytes: 3 * m.ParamBytes() / 2, OptSlots: true,
		MigrateBudget: 512 << 20}
	fast, _, err := MustEngine(Config{DBA: true}).RunTiered(m, 2, tc)
	if err != nil {
		t.Fatal(err)
	}
	slow, _, err := MustEngine(Config{DBA: true, PerLine: true}).RunTiered(m, 2, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("per-line tiered run diverged:\n got %+v\nwant %+v", slow, fast)
	}
}

// TestRunTieredErrors: invalid configs fail fast with errors, not panics.
func TestRunTieredErrors(t *testing.T) {
	m := modelzoo.GPT2()
	e := MustEngine(Config{DBA: true})
	for name, tc := range map[string]TierConfig{
		"negative-layers": {Layers: -1},
		"negative-dram":   {DRAMBytes: -1},
		"negative-budget": {MigrateBudget: -1},
		"negative-steps":  {Steps: -1},
		"bad-policy":      {Policy: "mru"},
		"tier-too-small":  {DRAMBytes: 1},
	} {
		if _, _, err := e.RunTiered(m, 4, tc); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, _, err := MustEngine(Config{Invalidation: true}).RunTiered(m, 4, TierConfig{}); err == nil {
		t.Fatal("invalidation protocol accepted")
	}
}

// TestRunTieredDeterministic: identical configs give identical results and
// traces.
func TestRunTieredDeterministic(t *testing.T) {
	m := modelzoo.GPT2()
	tc := TierConfig{DRAMBytes: 3 * m.ParamBytes() / 4, OptSlots: true,
		MigrateBudget: 512 << 20}
	a, ta, err := MustEngine(Config{DBA: true}).RunTiered(m, 4, tc)
	if err != nil {
		t.Fatal(err)
	}
	b, tb, err := MustEngine(Config{DBA: true}).RunTiered(m, 4, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(ta, tb) {
		t.Fatal("tiered run not deterministic")
	}
}
