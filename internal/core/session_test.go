package core

import (
	"testing"

	"teco/internal/modelzoo"
)

func TestEstimateTraining(t *testing.T) {
	m := modelzoo.GPT2()
	est := EstimateTraining(m, 4, 1000, 500)
	if est.Speedup <= 1.0 {
		t.Fatalf("speedup = %v", est.Speedup)
	}
	if est.TECOTotal >= est.BaselineTotal {
		t.Fatal("TECO must finish earlier")
	}
	// Earlier activation -> faster run.
	early := EstimateTraining(m, 4, 1000, 0)
	late := EstimateTraining(m, 4, 1000, 1000)
	if early.TECOTotal >= late.TECOTotal {
		t.Fatalf("earlier activation must be faster: %v vs %v", early.TECOTotal, late.TECOTotal)
	}
	// Never-activate equals all-CXL.
	never := EstimateTraining(m, 4, 1000, -1)
	if never.TECOTotal != late.TECOTotal {
		t.Fatal("act=-1 must equal act=steps")
	}
	if 1-early.TimeSavedFraction-float64(early.TECOTotal)/float64(early.BaselineTotal) > 1e-12 {
		t.Fatal("saved fraction definition")
	}
}

func TestEstimateTrainingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EstimateTraining(modelzoo.GPT2(), 4, 0, 0)
}

func TestEstimateFullGraphIgnoresBatch(t *testing.T) {
	g := modelzoo.GCNII()
	a := EstimateTraining(g, 4, 100, 50)
	b := EstimateTraining(g, 64, 100, 50)
	if a.TECOTotal != b.TECOTotal {
		t.Fatal("full-graph estimate must ignore batch")
	}
}

// TestCostAnalysisNearPaper: §VIII-C — "7% of saving in training time leads
// to a reduction of roughly $900K in production cost in a year" for a
// 256-GPU fleet at p4de.24xlarge pricing.
func TestCostAnalysisNearPaper(t *testing.T) {
	c := DefaultCostModel()
	savings := c.AnnualSavingsUSD(0.07)
	if savings < 300_000 || savings > 1_200_000 {
		t.Fatalf("7%% saving = $%.0f/yr, paper estimates ~$900K", savings)
	}
	// Linear in the saved fraction.
	if 2*savings != c.AnnualSavingsUSD(0.14) {
		t.Fatal("savings must be linear")
	}
	// Zero-value model falls back to defaults.
	if (CostModel{}).AnnualSavingsUSD(0.07) != savings {
		t.Fatal("zero-value cost model must use defaults")
	}
}

func TestProductionSavingsPositive(t *testing.T) {
	usd, base, red := ProductionSavings(modelzoo.BertLargeCased(), 4, DefaultCostModel())
	if usd <= 0 {
		t.Fatalf("savings = %v", usd)
	}
	if red.Total() >= base.Total() {
		t.Fatal("TECO step must be faster")
	}
}
