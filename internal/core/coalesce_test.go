package core

import (
	"testing"

	"teco/internal/cxl"
	"teco/internal/modelzoo"
	"teco/internal/phases"
)

// tinyModel is a scaled-down transformer used for the dense cross-check
// grids: per-line simulation fires one event per 64-byte cache line, so
// full-size models are reserved for the targeted full-scale cases below.
func tinyModel() modelzoo.Model {
	return modelzoo.Model{
		Name:          "tiny-xcheck",
		Kind:          modelzoo.TransformerEncoder,
		Params:        1 << 20,
		ComputeParams: 1 << 20,
		Layers:        4,
		Hidden:        256,
		Heads:         4,
		SeqLen:        64,
	}
}

// stepBothModes runs one step with the coalesced fast path and the per-line
// reference path and returns both results.
func stepBothModes(t *testing.T, cfg Config, m modelzoo.Model, batch int) (co, pl phases.StepResult) {
	t.Helper()
	cfgCo, cfgPl := cfg, cfg
	cfgCo.PerLine = false
	cfgPl.PerLine = true
	eCo, err := NewEngine(cfgCo)
	if err != nil {
		t.Fatal(err)
	}
	ePl, err := NewEngine(cfgPl)
	if err != nil {
		t.Fatal(err)
	}
	return eCo.Step(m, batch), ePl.Step(m, batch)
}

// TestCoalesceBitIdenticalGrid is the tentpole acceptance test: across
// variants, batch sizes, BERs, dirty-byte widths and the degradation
// policy, the coalesced and per-line paths must produce byte-identical
// StepResults (every sim.Time, every byte counter, every fault stat).
func TestCoalesceBitIdenticalGrid(t *testing.T) {
	m := tinyModel()
	variants := []struct {
		name string
		cfg  Config
	}{
		{"cxl", Config{}},
		{"reduction", Config{DBA: true}},
		{"invalidation", Config{Invalidation: true}},
	}
	bers := []float64{0, 1e-6, 1e-5, 1e-4}
	dirties := []int{1, 2, 4}
	for _, v := range variants {
		for _, batch := range []int{4, 16} {
			for _, ber := range bers {
				for _, db := range dirties {
					if db != 2 && !v.cfg.DBA {
						continue // dirty_bytes only matters under DBA
					}
					cfg := v.cfg
					cfg.DirtyBytes = db
					if ber > 0 {
						cfg.Faults = cxl.FaultConfig{Seed: 11, BER: ber}
						cfg.Degrade = v.cfg.DBA && ber >= 1e-4
					}
					co, pl := stepBothModes(t, cfg, m, batch)
					if co != pl {
						t.Errorf("%s batch=%d ber=%g dirty=%d: coalesced %+v != per-line %+v",
							v.name, batch, ber, db, co, pl)
					}
				}
			}
		}
	}
}

// TestCoalesceBitIdenticalPaperConfigs cross-checks the configurations the
// accuracy experiments (fig2, table5, fig10, fig13) and the fault sweep
// evaluate: the paper's proxy models under TECO-CXL and TECO-Reduction.
// Clean (pristine-link) runs simulate every cache line of the full-size
// model in per-line mode, so the cheaper models carry the clean coverage
// and the larger ones ride on the fault-injected path (where both modes
// must hand runs to the retry engine whole, making the cells cheap). T5's
// clean full-size run is covered by the tiny grid above plus its faulted
// cells here.
func TestCoalesceBitIdenticalPaperConfigs(t *testing.T) {
	type cfgCase struct {
		name  string
		m     modelzoo.Model
		batch int
		cfg   Config
	}
	cases := []cfgCase{
		// fig13 / time-to-loss timing config: GPT-2 proxy, batch 4.
		{"gpt2-cxl-clean", modelzoo.GPT2(), 4, Config{}},
		{"gpt2-reduction-clean", modelzoo.GPT2(), 4, Config{DBA: true}},
		// fault-sweep configs (Bert-large-cased, batch 4) at the sweep's
		// own BER grid points, dirty_bytes 1/2/4.
		{"bert-dba1-ber1e-6", modelzoo.BertLargeCased(), 4,
			Config{DBA: true, DirtyBytes: 1, Faults: cxl.FaultConfig{Seed: 42, BER: 1e-6}}},
		{"bert-dba2-ber1e-5", modelzoo.BertLargeCased(), 4,
			Config{DBA: true, DirtyBytes: 2, Faults: cxl.FaultConfig{Seed: 42, BER: 1e-5}}},
		{"bert-dba4-ber5e-4-degrade", modelzoo.BertLargeCased(), 4,
			Config{DBA: true, DirtyBytes: 4, Degrade: true, Faults: cxl.FaultConfig{Seed: 42, BER: 5e-4}}},
		{"bert-inval-ber1e-5", modelzoo.BertLargeCased(), 4,
			Config{Invalidation: true, Faults: cxl.FaultConfig{Seed: 42, BER: 1e-5}}},
		{"albert-cxl-ber1e-6", modelzoo.AlbertXXLarge(), 4,
			Config{Faults: cxl.FaultConfig{Seed: 42, BER: 1e-6}}},
		{"t5-reduction-ber1e-5", modelzoo.T5Large(), 4,
			Config{DBA: true, Faults: cxl.FaultConfig{Seed: 42, BER: 1e-5}}},
	}
	if !testing.Short() {
		// Full-size clean runs for the remaining table5/fig2 proxies
		// (~3s each in per-line mode; skipped under -short).
		cases = append(cases,
			cfgCase{"bert-reduction-clean", modelzoo.BertLargeCased(), 4, Config{DBA: true}},
			cfgCase{"albert-cxl-clean", modelzoo.AlbertXXLarge(), 4, Config{}},
		)
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			co, pl := stepBothModes(t, c.cfg, c.m, c.batch)
			if co != pl {
				t.Errorf("coalesced %+v != per-line %+v", co, pl)
			}
		})
	}
}

// TestPerLineDefaultOverride checks the process-wide default the tecosim
// -coalesce flag uses: engines built while the override is set run
// per-line, explicit configs still win, and results stay bit-identical.
func TestPerLineDefaultOverride(t *testing.T) {
	m := tinyModel()
	base := MustEngine(Config{DBA: true}).Step(m, 4)
	SetPerLineDefault(true)
	defer SetPerLineDefault(false)
	e := MustEngine(Config{DBA: true})
	if !e.Config.PerLine {
		t.Fatal("SetPerLineDefault(true) did not reach a newly built engine")
	}
	if got := e.Step(m, 4); got != base {
		t.Errorf("per-line default produced %+v, coalesced produced %+v", got, base)
	}
}
