// Package solver demonstrates TECO's generality claim beyond MD (§VII):
// "many applications have the above characteristic, including common
// numerical solvers (e.g., multi-grid solver and conjugate gradient
// solver)". It implements a CSR sparse-matrix substrate, a 2D Poisson
// problem builder, a conjugate-gradient reference solver, and an offloaded
// weighted-Jacobi smoother whose iterate crosses the (functional) dirty-byte
// channel — an iterative application that tolerates the DBA approximation
// because the iterate converges to a fixed point.
package solver

import (
	"fmt"
	"math"
)

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	N      int
	RowPtr []int32
	ColIdx []int32
	Values []float32
}

// Poisson2D builds the standard 5-point finite-difference Laplacian on an
// n x n interior grid (SPD, diagonally dominant).
func Poisson2D(n int) *CSR {
	if n <= 0 {
		panic(fmt.Sprintf("solver: grid size %d", n))
	}
	N := n * n
	m := &CSR{N: N, RowPtr: make([]int32, N+1)}
	idx := func(i, j int) int { return i*n + j }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			row := idx(i, j)
			add := func(col int, v float32) {
				m.ColIdx = append(m.ColIdx, int32(col))
				m.Values = append(m.Values, v)
			}
			if i > 0 {
				add(idx(i-1, j), -1)
			}
			if j > 0 {
				add(idx(i, j-1), -1)
			}
			add(row, 4)
			if j < n-1 {
				add(idx(i, j+1), -1)
			}
			if i < n-1 {
				add(idx(i+1, j), -1)
			}
			m.RowPtr[row+1] = int32(len(m.ColIdx))
		}
	}
	return m
}

// MatVec computes y = A x. This is the kernel the accelerator runs in the
// offloaded configuration.
func (m *CSR) MatVec(x, y []float32) {
	if len(x) != m.N || len(y) != m.N {
		panic(fmt.Sprintf("solver: matvec with %d/%d vectors for N=%d", len(x), len(y), m.N))
	}
	for i := 0; i < m.N; i++ {
		var s float32
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Values[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

// Diag extracts the diagonal.
func (m *CSR) Diag() []float32 {
	d := make([]float32, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if int(m.ColIdx[k]) == i {
				d[i] = m.Values[k]
			}
		}
	}
	return d
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Values) }

func dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// ResidualNorm returns ||b - A x||2.
func ResidualNorm(m *CSR, x, b []float32) float64 {
	r := make([]float32, m.N)
	m.MatVec(x, r)
	var s float64
	for i := range r {
		d := float64(b[i]) - float64(r[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// CG solves A x = b with the conjugate-gradient method to relative
// tolerance tol or maxIter iterations, returning the iteration count.
func CG(m *CSR, b, x []float32, tol float64, maxIter int) int {
	r := make([]float32, m.N)
	p := make([]float32, m.N)
	q := make([]float32, m.N)
	m.MatVec(x, q)
	for i := range r {
		r[i] = b[i] - q[i]
		p[i] = r[i]
	}
	rr := dot(r, r)
	b2 := math.Sqrt(dot(b, b))
	if b2 == 0 {
		b2 = 1
	}
	for it := 0; it < maxIter; it++ {
		if math.Sqrt(rr)/b2 < tol {
			return it
		}
		m.MatVec(p, q)
		alpha := rr / dot(p, q)
		for i := range x {
			x[i] += float32(alpha) * p[i]
			r[i] -= float32(alpha) * q[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + float32(beta)*p[i]
		}
	}
	return maxIter
}

// OffloadConfig controls the offloaded Jacobi run.
type OffloadConfig struct {
	// Omega is the Jacobi damping (default 0.8).
	Omega float64
	// DirtyBytes applies the dirty-byte merge to the iterate transfer
	// (4 = exact). Like MD positions, the iterate crosses as a
	// fixed-binade scaled value so the merge is well-conditioned.
	DirtyBytes int
	// Bound is the known amplitude bound used for the fixed-binade
	// scaling (default: derived from b and the diagonal).
	Bound float64
	// MaxIter bounds the iteration count (default 2000).
	MaxIter int
	// Tol is the relative residual target (default 1e-5).
	Tol float64
	// ActAfterIters delays the dirty-byte channel: full transfers until
	// this iteration, DBA after — the solver analogue of act_aft_steps.
	ActAfterIters int
}

func (c OffloadConfig) withDefaults() OffloadConfig {
	if c.Omega == 0 {
		c.Omega = 0.8
	}
	if c.DirtyBytes == 0 {
		c.DirtyBytes = 4
	}
	if c.MaxIter == 0 {
		c.MaxIter = 2000
	}
	if c.Tol == 0 {
		c.Tol = 1e-5
	}
	return c
}

// OffloadResult reports the run.
type OffloadResult struct {
	Iterations int
	RelRes     float64
	Converged  bool
}

// OffloadedJacobi solves A x = b with damped Jacobi where the accelerator
// computes A*x from its own copy of the iterate, refreshed each iteration
// through the dirty-byte channel — the producer/consumer offload pattern of
// §VII with a solver workload.
func OffloadedJacobi(m *CSR, b, x []float32, cfg OffloadConfig) OffloadResult {
	cfg = cfg.withDefaults()
	diag := m.Diag()
	if cfg.Bound == 0 {
		// Amplitude bound: ||b||inf / min diag * safety.
		var bmax float32
		for _, v := range b {
			if v > bmax {
				bmax = v
			}
			if -v > bmax {
				bmax = -v
			}
		}
		dmin := diag[0]
		for _, d := range diag {
			if d < dmin {
				dmin = d
			}
		}
		cfg.Bound = float64(bmax) / float64(dmin) * float64(m.N)
		if cfg.Bound == 0 {
			cfg.Bound = 1
		}
	}

	accX := make([]float32, m.N) // accelerator's iterate copy (scaled space)
	q := make([]float32, m.N)
	scale := float32(1 / cfg.Bound)
	toScaled := func(v float32) float32 { return 1 + (v*scale+1)/2 } // [-B,B] -> [1,2)
	fromScaled := func(u float32) float32 { return ((u - 1) * 2 * float32(cfg.Bound)) - float32(cfg.Bound) }
	mask := uint32(0)
	if cfg.DirtyBytes < 4 {
		mask = ^(uint32(1)<<(uint(cfg.DirtyBytes)*8) - 1)
	}
	// Initial full transfer: before DBA activates the accelerator holds an
	// exact copy (the Disaggregator merges into a valid stale line).
	for i := range x {
		accX[i] = toScaled(x[i])
	}

	b2 := math.Sqrt(dot(b, b))
	if b2 == 0 {
		b2 = 1
	}
	res := OffloadResult{}
	work := make([]float32, m.N)
	for it := 0; it < cfg.MaxIter; it++ {
		// Transfer x CPU -> accelerator; the dirty-byte channel engages
		// once ActAfterIters iterations have passed (before that, full
		// transfers — exactly the act_aft_steps behaviour).
		dbaOn := mask != 0 && it >= cfg.ActAfterIters
		for i := range x {
			u := toScaled(x[i])
			if dbaOn {
				stale := math.Float32bits(accX[i])
				fresh := math.Float32bits(u)
				u = math.Float32frombits((stale & mask) | (fresh &^ mask))
			}
			accX[i] = u
		}
		// Accelerator kernel: q = A * accX (in problem space).
		for i := range work {
			work[i] = fromScaled(accX[i])
		}
		m.MatVec(work, q)
		// CPU update: x += omega * D^-1 (b - q).
		for i := range x {
			x[i] += float32(cfg.Omega) * (b[i] - q[i]) / diag[i]
		}
		res.RelRes = ResidualNorm(m, x, b) / b2
		res.Iterations = it + 1
		if res.RelRes < cfg.Tol {
			res.Converged = true
			return res
		}
	}
	return res
}
