package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoisson2DStructure(t *testing.T) {
	m := Poisson2D(4)
	if m.N != 16 {
		t.Fatalf("N = %d", m.N)
	}
	// Interior node (1,1) -> row 5 has 5 entries; corner row 0 has 3.
	row := func(i int) int { return int(m.RowPtr[i+1] - m.RowPtr[i]) }
	if row(5) != 5 {
		t.Fatalf("interior row entries = %d", row(5))
	}
	if row(0) != 3 {
		t.Fatalf("corner row entries = %d", row(0))
	}
	// Diagonal is 4 everywhere.
	for _, d := range m.Diag() {
		if d != 4 {
			t.Fatalf("diag = %v", d)
		}
	}
	if m.NNZ() != len(m.Values) {
		t.Fatal("nnz accessor")
	}
}

func TestPoissonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Poisson2D(0)
}

func TestMatVecAgainstDense(t *testing.T) {
	m := Poisson2D(3)
	x := make([]float32, 9)
	for i := range x {
		x[i] = float32(i + 1)
	}
	y := make([]float32, 9)
	m.MatVec(x, y)
	// Row 4 (center, grid (1,1)): neighbours 1,3,5,7 with -1, self 4*5.
	want := float32(4*5 - 2 - 4 - 6 - 8)
	if y[4] != want {
		t.Fatalf("y[4] = %v, want %v", y[4], want)
	}
}

func TestMatVecPanicsOnShape(t *testing.T) {
	m := Poisson2D(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.MatVec(make([]float32, 4), make([]float32, 9))
}

func TestCGSolvesPoisson(t *testing.T) {
	m := Poisson2D(16)
	b := make([]float32, m.N)
	rng := rand.New(rand.NewSource(1))
	for i := range b {
		b[i] = float32(rng.NormFloat64())
	}
	x := make([]float32, m.N)
	iters := CG(m, b, x, 1e-6, 2000)
	if iters >= 2000 {
		t.Fatal("CG did not converge")
	}
	rel := ResidualNorm(m, x, b) / math.Sqrt(dot(b, b))
	if rel > 1e-5 {
		t.Fatalf("relative residual %g", rel)
	}
}

func TestCGZeroRHS(t *testing.T) {
	m := Poisson2D(4)
	x := make([]float32, m.N)
	if CG(m, make([]float32, m.N), x, 1e-6, 100) != 0 {
		t.Fatal("zero RHS should converge immediately")
	}
}

func TestOffloadedJacobiExactConverges(t *testing.T) {
	m := Poisson2D(12)
	b := make([]float32, m.N)
	for i := range b {
		b[i] = 1
	}
	x := make([]float32, m.N)
	res := OffloadedJacobi(m, b, x, OffloadConfig{Tol: 1e-4, MaxIter: 5000})
	if !res.Converged {
		t.Fatalf("exact Jacobi did not converge: rel %g after %d", res.RelRes, res.Iterations)
	}
}

// TestOffloadedJacobiToleratesDBA: the §VII generality condition — the
// iterative solver tolerates the dirty-byte approximation (3 bytes, fixed
// binade) and still converges to the same tolerance.
func TestOffloadedJacobiToleratesDBA(t *testing.T) {
	m := Poisson2D(12)
	b := make([]float32, m.N)
	for i := range b {
		b[i] = 1
	}
	exact := OffloadedJacobi(m, b, make([]float32, m.N), OffloadConfig{Tol: 1e-4, MaxIter: 5000})
	dba := OffloadedJacobi(m, b, make([]float32, m.N), OffloadConfig{Tol: 1e-4, MaxIter: 5000, DirtyBytes: 3})
	if !dba.Converged {
		t.Fatalf("DBA Jacobi did not converge: rel %g", dba.RelRes)
	}
	// The approximation may cost some iterations but not an order of
	// magnitude.
	if dba.Iterations > 3*exact.Iterations {
		t.Fatalf("DBA cost too many iterations: %d vs %d", dba.Iterations, exact.Iterations)
	}
}

// TestDBATwoBytesLimitsAccuracy: with only 2 dirty bytes the scaled iterate
// quantizes at ~2^-9 of the amplitude bound — the solver stalls at a higher
// residual floor than the 3-byte channel (the dirty_bytes ablation on a
// solver workload).
func TestDBATwoBytesLimitsAccuracy(t *testing.T) {
	m := Poisson2D(12)
	b := make([]float32, m.N)
	for i := range b {
		b[i] = 1
	}
	// Activate early, while the iterate still moves through its high
	// mantissa bytes: the 2-byte channel's quantization then feeds back
	// into the iteration, while the 3-byte channel stays lossless
	// (fixed-binade encoding keeps all changing bits in the low 3 bytes).
	cfgBase := OffloadConfig{Tol: 1e-4, MaxIter: 3000, ActAfterIters: 20}
	cfg3 := cfgBase
	cfg3.DirtyBytes = 3
	cfg2 := cfgBase
	cfg2.DirtyBytes = 2
	r3 := OffloadedJacobi(m, b, make([]float32, m.N), cfg3)
	r2 := OffloadedJacobi(m, b, make([]float32, m.N), cfg2)
	if !r3.Converged {
		t.Fatalf("3-byte channel should converge like exact transfers (rel %g)", r3.RelRes)
	}
	if r2.Converged {
		t.Fatal("2-byte channel should not reach 1e-4 when activated early")
	}
	if math.IsNaN(r2.RelRes) || math.IsInf(r2.RelRes, 0) {
		t.Fatal("2-byte run must remain finite")
	}
	if r2.RelRes <= r3.RelRes {
		t.Fatalf("2-byte floor %g should be worse than 3-byte %g", r2.RelRes, r3.RelRes)
	}
}

// Property: CG solutions match the offloaded Jacobi fixed point.
func TestSolversAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Poisson2D(8)
		b := make([]float32, m.N)
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		xc := make([]float32, m.N)
		CG(m, b, xc, 1e-7, 3000)
		xj := make([]float32, m.N)
		OffloadedJacobi(m, b, xj, OffloadConfig{Tol: 1e-6, MaxIter: 20000})
		for i := range xc {
			if math.Abs(float64(xc[i]-xj[i])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}
