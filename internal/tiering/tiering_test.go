package tiering

import (
	"testing"

	"teco/internal/modelzoo"
)

func mustController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func checkOK(t *testing.T, c *Controller) {
	t.Helper()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFirstFitInitialPlacement: New fills the fast tier in slot order,
// skipping slots that no longer fit, and everything else starts far.
func TestFirstFitInitialPlacement(t *testing.T) {
	c := mustController(t, Config{Sizes: []int64{40, 80, 40, 80}, FastBytes: 130})
	want := []bool{true, true, false, false} // 40+80=120, 10 bytes free fit nothing
	got := c.Placement()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placement %v, want %v", got, want)
		}
	}
	if c.FastResident(0) != true || c.FastResident(3) != false {
		t.Fatal("FastResident disagrees with Placement")
	}
	checkOK(t, c)
}

// TestFirstFitSkipsAndBackfills: a slot too big for the remaining space is
// skipped but a later smaller slot still lands fast.
func TestFirstFitSkipsAndBackfills(t *testing.T) {
	c := mustController(t, Config{Sizes: []int64{60, 80, 30}, FastBytes: 100})
	got := c.Placement()
	want := []bool{true, false, true} // 60, skip 80, 30 → 90/100
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placement %v, want %v", got, want)
		}
	}
	checkOK(t, c)
}

// TestTouchAccounting: fast touches count as hits, far touches as far
// accesses, and neither changes placement.
func TestTouchAccounting(t *testing.T) {
	c := mustController(t, Config{Sizes: []int64{50, 50, 50}, FastBytes: 100})
	if !c.Touch(0) || !c.Touch(1) {
		t.Fatal("fast slots missed")
	}
	if c.Touch(2) {
		t.Fatal("far slot hit")
	}
	st := c.Stats()
	if st.FastHits != 2 || st.FarAccesses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if !c.FastResident(0) || c.FastResident(2) {
		t.Fatal("a demand access changed placement")
	}
	checkOK(t, c)
}

// TestZeroBudgetIsStatic: with a zero migration budget, PlanStep never
// moves anything regardless of policy or heat skew.
func TestZeroBudgetIsStatic(t *testing.T) {
	for _, p := range []Policy{Heat, Recency} {
		c := mustController(t, Config{Sizes: []int64{50, 50}, FastBytes: 50, Policy: p})
		for i := 0; i < 10; i++ {
			c.Touch(1) // far slot is much hotter
		}
		if ms := c.PlanStep(-1); ms != nil {
			t.Fatalf("policy %v migrated %v with zero budget", p, ms)
		}
		if got := c.Placement(); !got[0] || got[1] {
			t.Fatalf("placement changed: %v", got)
		}
		checkOK(t, c)
	}
}

// TestStaticPolicyNeverMigrates: the static policy freezes the first-fit
// placement even with an unbounded budget.
func TestStaticPolicyNeverMigrates(t *testing.T) {
	c := mustController(t, Config{Sizes: []int64{50, 50}, FastBytes: 50,
		Policy: Static, BudgetBytes: 1 << 40})
	for i := 0; i < 10; i++ {
		c.Touch(1)
	}
	if ms := c.PlanStep(-1); ms != nil {
		t.Fatalf("static policy migrated %v", ms)
	}
	checkOK(t, c)
}

// TestMigrationPromotesHotOverCold: a strictly hotter far slot displaces
// the coldest fast victim, the moves balance byte-for-byte, and the
// invariants hold throughout.
func TestMigrationPromotesHotOverCold(t *testing.T) {
	c := mustController(t, Config{Sizes: []int64{50, 50, 50}, FastBytes: 100,
		Policy: Heat, BudgetBytes: 200})
	// Heat: slot0=2, slot1=1, slot2=3 (far, hottest).
	c.Touch(0)
	c.Touch(0)
	c.Touch(1)
	c.Touch(2)
	c.Touch(2)
	c.Touch(2)
	ms := c.PlanStep(-1)
	if len(ms) != 2 {
		t.Fatalf("migrations %v, want demote+promote pair", ms)
	}
	if ms[0].Promote || ms[0].Slot != 1 {
		t.Fatalf("first move %+v, want demotion of coldest slot 1", ms[0])
	}
	if !ms[1].Promote || ms[1].Slot != 2 {
		t.Fatalf("second move %+v, want promotion of slot 2", ms[1])
	}
	got := c.Placement()
	if !got[0] || got[1] || !got[2] {
		t.Fatalf("placement %v", got)
	}
	st := c.Stats()
	if st.PromotedBytes != 50 || st.DemotedBytes != 50 || st.Migrations != 2 {
		t.Fatalf("stats %+v", st)
	}
	checkOK(t, c)
}

// TestEqualHeatNeverChurns: equal rank is not strictly colder, so uniform
// heat produces no migrations — the anti-thrash rule.
func TestEqualHeatNeverChurns(t *testing.T) {
	c := mustController(t, Config{Sizes: []int64{50, 50, 50}, FastBytes: 100,
		Policy: Heat, BudgetBytes: 1 << 40})
	for step := 0; step < 5; step++ {
		for i := 0; i < 3; i++ {
			c.Touch(i)
		}
		if ms := c.PlanStep(-1); ms != nil {
			t.Fatalf("uniform heat churned: %v", ms)
		}
	}
	checkOK(t, c)
}

// TestExecutingSlotExcluded: the executing slot is neither promoted nor
// demoted, even when it is the hottest candidate or the coldest victim.
func TestExecutingSlotExcluded(t *testing.T) {
	// Hottest far slot is executing: nothing to promote.
	c := mustController(t, Config{Sizes: []int64{50, 50}, FastBytes: 50,
		Policy: Heat, BudgetBytes: 1 << 40})
	for i := 0; i < 5; i++ {
		c.Touch(1)
	}
	if ms := c.PlanStep(1); ms != nil {
		t.Fatalf("promoted the executing slot: %v", ms)
	}
	// Only victim is executing: the promotion has no room and stays put.
	if ms := c.PlanStep(0); ms != nil {
		t.Fatalf("demoted the executing slot: %v", ms)
	}
	// Same heat skew with nothing executing: the move happens, proving the
	// exclusions above were the only blockers.
	if ms := c.PlanStep(-1); len(ms) != 2 {
		t.Fatalf("expected demote+promote once slot 1 stopped executing, got %v", ms)
	}
	checkOK(t, c)
}

// TestBudgetThrottleDefers: a budget smaller than the cheapest move defers
// the promotion and counts it, leaving placement untouched.
func TestBudgetThrottleDefers(t *testing.T) {
	c := mustController(t, Config{Sizes: []int64{50, 50}, FastBytes: 50,
		Policy: Heat, BudgetBytes: 60}) // move costs 50 demote + 50 promote = 100
	for i := 0; i < 5; i++ {
		c.Touch(1)
	}
	if ms := c.PlanStep(-1); ms != nil {
		t.Fatalf("migrated past the budget: %v", ms)
	}
	st := c.Stats()
	if st.Deferred != 1 || st.Migrations != 0 {
		t.Fatalf("stats %+v, want one deferral and no migrations", st)
	}
	if got := c.Placement(); !got[0] || got[1] {
		t.Fatalf("placement changed under a deferral: %v", got)
	}
	checkOK(t, c)
}

// TestPromotionIntoFreeSpace: when the fast tier has room, a promotion
// needs no victims and costs only its own bytes.
func TestPromotionIntoFreeSpace(t *testing.T) {
	c := mustController(t, Config{Sizes: []int64{60, 80, 30}, FastBytes: 100,
		Policy: Heat, BudgetBytes: 1 << 40})
	// Initial: 60+30 fast (first-fit skip), 80 far, 10 free. Make the far
	// slot hottest, demote both fast slots to fit it.
	for i := 0; i < 5; i++ {
		c.Touch(1)
	}
	ms := c.PlanStep(-1)
	if len(ms) != 3 {
		t.Fatalf("migrations %v, want two demotions and one promotion", ms)
	}
	st := c.Stats()
	if st.PromotedBytes != 80 || st.DemotedBytes != 90 {
		t.Fatalf("stats %+v", st)
	}
	checkOK(t, c)
}

// TestParsePolicy: the flag spellings and the error path.
func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"": Heat, "heat": Heat, "lru": Recency, "recency": Recency, "static": Static,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("mru"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if Heat.String() != "heat" || Recency.String() != "lru" || Static.String() != "static" {
		t.Fatal("policy spellings drifted")
	}
}

// TestNewRejectsBadConfig: negative budgets and a fast tier smaller than
// the largest slot are construction errors, not latent panics.
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Sizes: []int64{10}, BudgetBytes: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := New(Config{Sizes: []int64{100, 10}, FastBytes: 50}); err == nil {
		t.Fatal("capacity below largest slot accepted")
	}
}

// TestUnboundedCapacityAllFast: FastBytes <= 0 means everything fits fast —
// the degenerate all-resident configuration the metamorphic suite pins
// against the untiered baseline.
func TestUnboundedCapacityAllFast(t *testing.T) {
	c := mustController(t, Config{Sizes: []int64{50, 50, 50}, Policy: Heat,
		BudgetBytes: 1 << 40})
	for i, fast := range c.Placement() {
		if !fast {
			t.Fatalf("slot %d not fast under unbounded capacity", i)
		}
	}
	if ms := c.PlanStep(-1); ms != nil {
		t.Fatalf("migrated with everything fast: %v", ms)
	}
	checkOK(t, c)
}

// TestCXLExpanderMatchesLinkModel: the far tier's sustained bandwidth is
// the repo's effective CXL link bandwidth — the cost model and the stream
// simulator must price the same wire.
func TestCXLExpanderMatchesLinkModel(t *testing.T) {
	cm := DefaultCostModel()
	if got, want := cm.Far.BytesPerSecond, modelzoo.CXLLinkBandwidth(); got != want {
		t.Fatalf("CXL expander bandwidth %g != link bandwidth %g", got, want)
	}
	if cm.Far.AccessLatency <= cm.Fast.AccessLatency {
		t.Fatal("far tier not slower than fast tier")
	}
	if cm.Fast.BytesPerSecond <= cm.Far.BytesPerSecond {
		t.Fatal("fast tier not faster than far tier")
	}
}
