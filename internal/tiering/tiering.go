// Package tiering implements the heterogeneous-memory tiering controller:
// hot/cold placement of layer-granular tensor slots across a fast host-DRAM
// tier and a CXL-expander far tier, with online migration planned from the
// heat the staging residency tracker already records (10Cache/CXLRAMSim-
// style cost-model placement; ROADMAP item 5).
//
// Like the offload scheduler, the controller has two halves sharing this one
// implementation: the functional trainer (realtrain) runs it as pure
// bookkeeping — placement never touches numerics, so any tiering config
// trains bit-identically to the static baseline — and the timing engine
// (core.RunTiered) prices its far-tier accesses and migration traffic on
// the CXL link streams. Placement changes ONLY through planned migrations,
// bounded per step by a byte budget (the admission throttle that keeps
// migration from starving the training step); a demand access to a far slot
// is charged but never promotes by itself.
package tiering

import (
	"fmt"
	"sort"

	"teco/internal/staging"
)

// Policy selects how the controller ranks slots for placement.
type Policy int

const (
	// Heat ranks by cumulative demand-use count (the /statz heat map):
	// promote the hottest far slot over strictly colder fast victims.
	Heat Policy = iota
	// Recency ranks by last-use tick — an LRU-flavored policy that chases
	// the most recently touched slots instead of the most touched.
	Recency
	// Static freezes the initial first-fit placement: no migrations ever.
	Static
)

func (p Policy) String() string {
	switch p {
	case Heat:
		return "heat"
	case Recency:
		return "lru"
	case Static:
		return "static"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy maps the flag spelling to a Policy; "" is Heat.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "heat":
		return Heat, nil
	case "lru", "recency":
		return Recency, nil
	case "static":
		return Static, nil
	default:
		return 0, fmt.Errorf("tiering: unknown policy %q (want heat, lru or static)", s)
	}
}

// Config sizes a Controller.
type Config struct {
	// Sizes are the per-slot byte sizes (layer-granular tensor slots).
	Sizes []int64
	// FastBytes is the fast-tier (host DRAM) capacity; <= 0 means the whole
	// model fits fast and the controller degenerates to static all-fast
	// placement.
	FastBytes int64
	// Policy ranks slots for promotion and demotion.
	Policy Policy
	// BudgetBytes is the per-PlanStep migration byte budget — the admission
	// throttle. Promotions and the demotions that make room for them both
	// count against it; 0 disables migration (static placement).
	BudgetBytes int64
}

// Migration is one planned slot move between the tiers.
type Migration struct {
	Slot int
	// Promote moves far→fast when true, fast→far when false.
	Promote bool
	Bytes   int64
}

// Stats is a point-in-time summary of controller activity.
type Stats struct {
	Slots         int64
	FastBytes     int64
	ResidentBytes int64
	// FastHits / FarAccesses classify demand accesses by serving tier
	// (straight from the shared staging.Residency accounting).
	FastHits      int64
	FarAccesses   int64
	PlanSteps     int64
	Migrations    int64
	PromotedBytes int64
	DemotedBytes  int64
	// Deferred counts promotions wanted but pushed past this step by the
	// budget throttle.
	Deferred int64
}

// Controller tracks slot placement across the two tiers. Not safe for
// concurrent use; each trainer or timing plane owns one.
type Controller struct {
	res    *staging.Residency
	sizes  []int64
	policy Policy
	budget int64

	total           int64
	farBytes        int64
	initialResident int64

	planSteps     int64
	migrations    int64
	promotedBytes int64
	demotedBytes  int64
	deferred      int64

	// tele* snapshot the cumulative counters at the last telemetry flush,
	// so recordPlan folds only per-round deltas into the process counters.
	teleMigrations int64
	telePromoted   int64
	teleDemoted    int64
	teleDeferred   int64
}

// New builds a controller with the static first-fit initial placement: the
// fast tier is filled in slot order until capacity, everything else starts
// on the CXL expander. The residency tracker underneath is the same
// implementation the offload scheduler uses, so heat/hit/miss accounting
// has a single definition across the repo.
func New(cfg Config) (*Controller, error) {
	if cfg.BudgetBytes < 0 {
		return nil, fmt.Errorf("tiering: negative migration budget %d", cfg.BudgetBytes)
	}
	res, err := staging.NewResidency(cfg.Sizes, cfg.FastBytes, staging.LRU, 0)
	if err != nil {
		return nil, fmt.Errorf("tiering: %w", err)
	}
	c := &Controller{
		res:    res,
		sizes:  append([]int64(nil), cfg.Sizes...),
		policy: cfg.Policy,
		budget: cfg.BudgetBytes,
	}
	for _, s := range c.sizes {
		c.total += s
	}
	for i := range c.sizes {
		res.Warm(i) // first-fit: skips slots that no longer fit
	}
	c.farBytes = c.total - res.ResidentBytes()
	c.initialResident = res.ResidentBytes()
	return c, nil
}

// Slots returns the slot count.
func (c *Controller) Slots() int { return len(c.sizes) }

// Size returns slot i's byte size.
func (c *Controller) Size(i int) int64 { return c.sizes[i] }

// Capacity returns the fast tier's effective byte capacity.
func (c *Controller) Capacity() int64 { return c.res.Capacity() }

// FastResident reports whether slot i is currently in the fast tier.
func (c *Controller) FastResident(i int) bool { return c.res.Resident(i) }

// Placement returns a copy of the current per-slot placement (true = fast).
func (c *Controller) Placement() []bool {
	out := make([]bool, len(c.sizes))
	for i := range out {
		out[i] = c.res.Resident(i)
	}
	return out
}

// Heat returns a copy of the per-slot demand-use counts.
func (c *Controller) Heat() []int64 {
	return append([]int64(nil), c.res.Heat()...)
}

// Touch records a demand access to slot i and reports whether the fast tier
// served it. Placement is never changed by an access.
func (c *Controller) Touch(i int) bool {
	fast := c.res.Touch(i)
	recordAccess(fast)
	return fast
}

// score is the policy's placement rank for slot i (higher = keep fast).
func (c *Controller) score(i int) int64 {
	if c.policy == Recency {
		return c.res.LastUse(i)
	}
	return c.res.Heat()[i]
}

// PlanStep plans and applies this step's migrations from the heat recorded
// so far, excluding the executing slot (pass -1 between steps). Candidates
// are considered hottest-first; each promotion demotes only strictly colder
// victims (equal rank never churns) and the whole batch — promotions plus
// the demotions making room for them — is cut off by the byte budget. The
// returned list is what the timing plane prices as background stream
// traffic; placement has already been updated when PlanStep returns.
func (c *Controller) PlanStep(executing int) []Migration {
	c.planSteps++
	defer func() { recordPlan(c) }()
	if c.policy == Static || c.budget <= 0 {
		return nil
	}
	// Far-tier candidates, hottest first, ties to the lower index for
	// determinism.
	var cands []int
	for i := range c.sizes {
		if !c.res.Resident(i) && i != executing {
			cands = append(cands, i)
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		sa, sb := c.score(cands[a]), c.score(cands[b])
		if sa != sb {
			return sa > sb
		}
		return cands[a] < cands[b]
	})
	var out []Migration
	var used int64
	for _, h := range cands {
		demote, cost, ok := c.demotionSet(h, executing)
		if !ok {
			continue // nothing strictly colder to displace
		}
		if used+cost > c.budget {
			// Admission throttle: the hottest remaining candidate does not
			// fit this step's budget, so planning stops here — migration
			// never crowds out more than BudgetBytes of link time per step.
			c.deferred++
			break
		}
		for _, v := range demote {
			c.res.Evict(v)
			c.farBytes += c.sizes[v]
			c.demotedBytes += c.sizes[v]
			c.migrations++
			out = append(out, Migration{Slot: v, Promote: false, Bytes: c.sizes[v]})
		}
		if !c.res.Warm(h) {
			panic(fmt.Sprintf("tiering: promotion of slot %d failed after making room", h))
		}
		c.farBytes -= c.sizes[h]
		c.promotedBytes += c.sizes[h]
		c.migrations++
		out = append(out, Migration{Slot: h, Promote: true, Bytes: c.sizes[h]})
		used += cost
	}
	return out
}

// demotionSet assembles the coldest strictly-colder-than-h fast victims
// whose eviction makes room for h, and the byte cost of the whole move
// (demotions + the promotion itself). ok is false when no such set exists.
func (c *Controller) demotionSet(h, executing int) (demote []int, cost int64, ok bool) {
	free := c.res.Capacity() - c.res.ResidentBytes()
	cost = c.sizes[h]
	taken := make(map[int]bool)
	for free < c.sizes[h] {
		v := -1
		var vKey int64
		for i := range c.sizes {
			if !c.res.Resident(i) || taken[i] || i == executing {
				continue
			}
			key := c.score(i)
			if key >= c.score(h) {
				continue
			}
			if v == -1 || key < vKey || (key == vKey && i < v) {
				v, vKey = i, key
			}
		}
		if v < 0 {
			return nil, 0, false
		}
		taken[v] = true
		demote = append(demote, v)
		free += c.sizes[v]
		cost += c.sizes[v]
	}
	return demote, cost, true
}

// Stats returns the controller's activity counters.
func (c *Controller) Stats() Stats {
	rs := c.res.Stats()
	return Stats{
		Slots:         int64(len(c.sizes)),
		FastBytes:     c.res.Capacity(),
		ResidentBytes: c.res.ResidentBytes(),
		FastHits:      rs.Hits,
		FarAccesses:   rs.DemandMisses,
		PlanSteps:     c.planSteps,
		Migrations:    c.migrations,
		PromotedBytes: c.promotedBytes,
		DemotedBytes:  c.demotedBytes,
		Deferred:      c.deferred,
	}
}

// CheckInvariants validates the tiering laws the conformance layer threads
// through both halves: the residency laws of the fast tier, no tensor lost
// (every byte is on exactly one tier), and migration conservation (bytes
// promoted minus bytes demoted is exactly the fast tier's net growth — what
// left one tier arrived at the other).
func (c *Controller) CheckInvariants() error {
	if err := c.res.CheckInvariants(); err != nil {
		return err
	}
	if c.farBytes < 0 {
		return fmt.Errorf("tiering: negative far-tier bytes %d", c.farBytes)
	}
	if got := c.farBytes + c.res.ResidentBytes(); got != c.total {
		return fmt.Errorf("tiering: tier bytes %d != total %d (tensor lost)", got, c.total)
	}
	if net := c.promotedBytes - c.demotedBytes; net != c.res.ResidentBytes()-c.initialResident {
		return fmt.Errorf("tiering: migration conservation broken: net promoted %d != fast-tier growth %d",
			net, c.res.ResidentBytes()-c.initialResident)
	}
	if c.migrations == 0 && (c.promotedBytes != 0 || c.demotedBytes != 0) {
		return fmt.Errorf("tiering: migrated bytes without migrations")
	}
	return nil
}
