package tiering

import (
	"sort"

	"teco/internal/mem"
	"teco/internal/sim"
)

// CostModel prices slot accesses on the two tiers from the repo's memory
// device constants: the fast tier is local host DDR4, the far tier is DRAM
// behind a CXL.mem expander whose sustained bandwidth is the CXL link
// itself (modelzoo.CXLLinkBandwidth — pinned equal by test).
type CostModel struct {
	Fast *mem.DRAM
	Far  *mem.DRAM
}

// DefaultCostModel returns the calibrated host-DDR4 / CXL-expander pair.
func DefaultCostModel() CostModel {
	return CostModel{Fast: mem.HostDDR4(), Far: mem.CXLExpander()}
}

// AccessTime prices one full-slot access on a tier: idle-row latency plus
// streaming the slot at the tier's sustained bandwidth.
func (cm CostModel) AccessTime(fast bool, bytes int64) sim.Time {
	d := cm.Far
	if fast {
		d = cm.Fast
	}
	return d.AccessLatency + d.StreamTime(bytes)
}

// PlacementCost prices a recorded access trace under a placement: the sum
// over slots of heat (demand accesses) × per-access time on the slot's
// tier. This is the objective the oracle minimizes and the quantity the
// tiering-policy ablation reports per policy.
func (cm CostModel) PlacementCost(heat []int64, fast []bool, sizes []int64) sim.Time {
	var total sim.Time
	for i := range sizes {
		total += sim.Time(heat[i]) * cm.AccessTime(fast[i], sizes[i])
	}
	return total
}

// benefitDensity is the per-byte time saved by keeping a slot of that size
// on the fast tier, in picoseconds. Computed from the raw device rates, not
// the quantized integer AccessTime: picosecond rounding on ~40MB slots is
// large enough to reorder same-rate slots of nearly equal size, and a
// greedy fill driven by that artifact fragments the fast tier (observed: a
// 2-byte shortfall turning the optimal 9-slot fill into an 8-slot one).
func (cm CostModel) benefitDensity(bytes int64) float64 {
	lat := float64(cm.Far.AccessLatency - cm.Fast.AccessLatency)
	perByte := 1e12/cm.Far.BytesPerSecond - 1e12/cm.Fast.BytesPerSecond
	return lat/float64(bytes) + perByte
}

// OraclePlacement computes the placement a clairvoyant controller would
// pick for a recorded full trace: fill the fast tier greedily by benefit
// density — heat × (far − fast access time) saved per byte. Greedy-by-
// density is exact when slots share a size and the classic knapsack-greedy
// bound otherwise; the gap the policy ablation reports is against this
// reference. capacity <= 0 means everything fits fast.
func (cm CostModel) OraclePlacement(heat, sizes []int64, capacity int64) []bool {
	fast := make([]bool, len(sizes))
	var total int64
	for _, s := range sizes {
		total += s
	}
	if capacity <= 0 || capacity >= total {
		for i := range fast {
			fast[i] = true
		}
		return fast
	}
	density := make([]float64, len(sizes))
	order := make([]int, len(sizes))
	for i := range sizes {
		order[i] = i
		density[i] = float64(heat[i]) * cm.benefitDensity(sizes[i])
	}
	sort.Slice(order, func(a, b int) bool {
		if density[order[a]] != density[order[b]] {
			return density[order[a]] > density[order[b]]
		}
		return order[a] < order[b]
	})
	var used int64
	for _, i := range order {
		if used+sizes[i] <= capacity {
			fast[i] = true
			used += sizes[i]
		}
	}
	return fast
}
