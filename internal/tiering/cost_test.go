package tiering

import (
	"reflect"
	"testing"
)

// TestPlacementCostSums: cost is the heat-weighted sum of per-tier access
// times, so moving a slot fast reduces cost by exactly heat × benefit.
func TestPlacementCostSums(t *testing.T) {
	cm := DefaultCostModel()
	sizes := []int64{1 << 20, 2 << 20}
	heat := []int64{3, 5}
	far := cm.PlacementCost(heat, []bool{false, false}, sizes)
	mixed := cm.PlacementCost(heat, []bool{true, false}, sizes)
	want := far - 3*(cm.AccessTime(false, sizes[0])-cm.AccessTime(true, sizes[0]))
	if mixed != want {
		t.Fatalf("mixed cost %v, want %v", mixed, want)
	}
	if all := cm.PlacementCost(heat, []bool{true, true}, sizes); all >= mixed {
		t.Fatalf("all-fast cost %v not below mixed %v", all, mixed)
	}
}

// TestOracleAllFits: capacity at or above the total (or unbounded) places
// everything fast.
func TestOracleAllFits(t *testing.T) {
	cm := DefaultCostModel()
	sizes := []int64{10, 20, 30}
	heat := []int64{1, 1, 1}
	for _, cap := range []int64{0, -1, 60, 100} {
		for i, fast := range cm.OraclePlacement(heat, sizes, cap) {
			if !fast {
				t.Fatalf("capacity %d: slot %d not fast", cap, i)
			}
		}
	}
}

// TestOraclePrefersHotDense: under pressure the oracle keeps the slots with
// the highest heat-per-byte benefit and respects capacity exactly.
func TestOraclePrefersHotDense(t *testing.T) {
	cm := DefaultCostModel()
	sizes := []int64{1 << 20, 1 << 20, 2 << 20}
	heat := []int64{10, 1, 10} // slot 0 hottest per byte, slot 2 hot but big
	fast := cm.OraclePlacement(heat, sizes, 3<<20)
	if !fast[0] || fast[1] || !fast[2] {
		t.Fatalf("placement %v, want hot slots 0 and 2", fast)
	}
	var used int64
	for i, f := range fast {
		if f {
			used += sizes[i]
		}
	}
	if used > 3<<20 {
		t.Fatalf("oracle overfilled: %d", used)
	}
}

// TestOracleDeterministic: equal inputs give identical placements — ties
// break by index, never map order.
func TestOracleDeterministic(t *testing.T) {
	cm := DefaultCostModel()
	sizes := []int64{50, 50, 50, 50}
	heat := []int64{2, 2, 2, 2}
	first := cm.OraclePlacement(heat, sizes, 100)
	for i := 0; i < 50; i++ {
		if got := cm.OraclePlacement(heat, sizes, 100); !reflect.DeepEqual(got, first) {
			t.Fatalf("oracle not deterministic: %v vs %v", got, first)
		}
	}
	if !first[0] || !first[1] || first[2] || first[3] {
		t.Fatalf("equal-density tie not broken by index: %v", first)
	}
}

// TestOracleRoundingRegression: GPT-2's remainder-carrying last slot is 8
// bytes larger than its siblings; integer picosecond access times round
// those to a higher per-byte density, which once promoted the big slot
// first and fragmented the fill 2 bytes short of the optimal 9-slot pack.
// The float density computation must keep same-rate slots ordered by size.
func TestOracleRoundingRegression(t *testing.T) {
	cm := DefaultCostModel()
	var sizes, heat []int64
	for i := 0; i < 12; i++ {
		p := int64(40666666)
		if i == 11 {
			p = 40666674 // the remainder-carrying slot
		}
		sizes = append(sizes, p, 2*p)
		heat = append(heat, 12, 4)
	}
	fast := cm.OraclePlacement(heat, sizes, 366000000)
	var params int
	for i := 0; i < len(fast); i += 2 {
		if fast[i] {
			params++
		}
		if fast[i+1] {
			t.Fatalf("cold optimizer slot %d placed fast", i+1)
		}
	}
	if params != 9 {
		t.Fatalf("oracle packed %d parameter slots, want 9", params)
	}
}
