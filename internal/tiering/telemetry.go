package tiering

import "sync/atomic"

// Process-wide tiering telemetry. Both halves of the controller — the
// functional trainer bookkeeping (realtrain) and the timing plane
// (core.RunTiered) — record placement events here, so the daemon's /statz
// endpoint can show tier heat and migration churn alongside the residency
// and fabric figures. Counters are monotone for the life of the process.
var telemetry struct {
	fastHits      atomic.Int64
	farAccesses   atomic.Int64
	planSteps     atomic.Int64
	migrations    atomic.Int64
	promotedBytes atomic.Int64
	demotedBytes  atomic.Int64
	deferred      atomic.Int64
}

// TierCounters is a point-in-time copy of the process-wide tiering
// telemetry, JSON-shaped for /statz.
type TierCounters struct {
	// FastHits / FarAccesses classify demand slot accesses by the tier
	// that served them.
	FastHits    int64 `json:"fast_hits"`
	FarAccesses int64 `json:"far_accesses"`
	// PlanSteps counts migration planning rounds (one per training step
	// under a tiering controller).
	PlanSteps int64 `json:"plan_steps"`
	// Migrations / PromotedBytes / DemotedBytes count hot/cold moves;
	// Deferred counts promotions pushed to a later step by the budget
	// throttle.
	Migrations    int64 `json:"migrations"`
	PromotedBytes int64 `json:"promoted_bytes"`
	DemotedBytes  int64 `json:"demoted_bytes"`
	Deferred      int64 `json:"deferred"`
}

// Counters returns the current process-wide tiering telemetry.
func Counters() TierCounters {
	return TierCounters{
		FastHits:      telemetry.fastHits.Load(),
		FarAccesses:   telemetry.farAccesses.Load(),
		PlanSteps:     telemetry.planSteps.Load(),
		Migrations:    telemetry.migrations.Load(),
		PromotedBytes: telemetry.promotedBytes.Load(),
		DemotedBytes:  telemetry.demotedBytes.Load(),
		Deferred:      telemetry.deferred.Load(),
	}
}

func recordAccess(fast bool) {
	if fast {
		telemetry.fastHits.Add(1)
	} else {
		telemetry.farAccesses.Add(1)
	}
}

// recordPlan folds the delta of one planning round into the process-wide
// counters. Called with the controller's cumulative counters; the previous
// snapshot is kept on the controller so only the delta lands.
func recordPlan(c *Controller) {
	telemetry.planSteps.Add(1)
	telemetry.migrations.Add(c.migrations - c.teleMigrations)
	telemetry.promotedBytes.Add(c.promotedBytes - c.telePromoted)
	telemetry.demotedBytes.Add(c.demotedBytes - c.teleDemoted)
	telemetry.deferred.Add(c.deferred - c.teleDeferred)
	c.teleMigrations = c.migrations
	c.telePromoted = c.promotedBytes
	c.teleDemoted = c.demotedBytes
	c.teleDeferred = c.deferred
}
