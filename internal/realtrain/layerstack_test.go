package realtrain

import (
	"math"
	"reflect"
	"testing"
)

// stackTestConfig is a short stack run cheap enough for unit tests.
func stackTestConfig(layers int) Config {
	return Config{
		Arch: "stack", Layers: layers,
		Steps: 6, Batch: 8, PreSteps: 12, Seed: 7, SampleEvery: 2,
	}
}

// TestLayerStackGradFiniteDiff validates the hand-derived backward pass of
// the N-layer stack against central finite differences on a spread of
// parameter indices from every segment.
func TestLayerStackGradFiniteDiff(t *testing.T) {
	ds := NewDataset(DatasetConfig{Seed: 3, Train: 64, Test: 16})
	m := NewLayerStack(ds.Vocab, ds.Dim, ds.Classes, 3, 11)
	batch := []int{1, 5, 9, 23}
	grads := make([]float32, m.NumParams())
	m.LossAndGrad(m.Params, ds, batch, grads)

	params64 := make([]float64, len(m.Params))
	for i, v := range m.Params {
		params64[i] = float64(v)
	}
	lossAt := func(i int, delta float64) float64 {
		orig := m.Params[i]
		m.Params[i] = float32(params64[i] + delta)
		scratch := make([]float32, m.NumParams())
		l := m.LossAndGrad(m.Params, ds, batch, scratch)
		m.Params[i] = orig
		return l
	}

	// Probe indices: embedding rows the batch touches, every block's five
	// matrices, and the head.
	var probes []int
	for _, seg := range m.Segments() {
		span := seg.Hi - seg.Lo
		for _, frac := range []int{7, span / 2, span - 3} {
			probes = append(probes, seg.Lo+frac%span)
		}
	}
	const eps = 1e-2
	checked := 0
	for _, i := range probes {
		num := (lossAt(i, eps) - lossAt(i, -eps)) / (2 * eps)
		got := float64(grads[i])
		// The loss is computed in FP32, so the quotient carries ~1e-5 of
		// round-off noise; gradients below that scale (and embedding rows
		// outside the batch, which are exactly zero both ways) are skipped.
		if math.Max(math.Abs(num), math.Abs(got)) < 1e-4 {
			continue
		}
		rel := math.Abs(num-got) / math.Max(math.Abs(num), math.Abs(got))
		if rel > 0.05 && math.Abs(num-got) > 5e-4 {
			t.Errorf("param %d: analytic %g vs numeric %g (rel %.3f)", i, got, num, rel)
		}
		checked++
	}
	if checked < 8 {
		t.Fatalf("only %d non-trivial probes checked", checked)
	}
}

// TestLayerStackSegmentsTile asserts the segmentation tiles the flat
// vector exactly: contiguous, non-overlapping, covering every word.
func TestLayerStackSegmentsTile(t *testing.T) {
	for _, layers := range []int{1, 2, 5} {
		m := NewLayerStack(64, 8, 4, layers, 1)
		segs := m.Segments()
		if len(segs) != layers+2 {
			t.Fatalf("layers=%d: %d segments", layers, len(segs))
		}
		off := 0
		for _, s := range segs {
			if s.Lo != off || s.Hi <= s.Lo {
				t.Fatalf("segment %q [%d,%d) breaks tiling at %d", s.Name, s.Lo, s.Hi, off)
			}
			off = s.Hi
		}
		if off != m.NumParams() {
			t.Fatalf("segments cover %d of %d", off, m.NumParams())
		}
	}
}

// TestLayerStackTrains asserts the stack actually learns the synthetic
// task: a short fine-tune from a pre-trained state beats chance accuracy.
func TestLayerStackTrains(t *testing.T) {
	cfg := stackTestConfig(2)
	cfg.Steps, cfg.PreSteps = 20, 500
	res := Run(cfg)
	// 8 classes: chance is 0.125.
	if res.FinalAcc < 0.3 {
		t.Fatalf("stack accuracy %.3f barely above chance", res.FinalAcc)
	}
	if math.IsNaN(res.FinalLoss) || math.IsInf(res.FinalLoss, 0) {
		t.Fatalf("non-finite final loss %v", res.FinalLoss)
	}
}

// TestLayerStackDeterministic asserts two identical runs are DeepEqual.
func TestLayerStackDeterministic(t *testing.T) {
	a := Run(stackTestConfig(3))
	b := Run(stackTestConfig(3))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("stack run not deterministic")
	}
}

// TestLayerStackSnapshotRestore proves mid-run crash/restore of the stack
// arch is bit-identical to the uninterrupted run — the multi-layer case of
// the PR 2 recovery guarantee.
func TestLayerStackSnapshotRestore(t *testing.T) {
	cfg := stackTestConfig(3)
	ref, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !ref.Done() {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}

	tr, err := NewTrainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := tr.Snapshot()
	restored, err := NewTrainerFromSnapshot(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	for !restored.Done() {
		if err := restored.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(ref.Result(), restored.Result()) {
		t.Fatal("restored stack run diverged from uninterrupted run")
	}
	for i := range ref.MasterParams() {
		if ref.MasterParams()[i] != restored.MasterParams()[i] {
			t.Fatalf("master word %d differs after restore", i)
		}
	}
}
