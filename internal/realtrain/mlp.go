package realtrain

import (
	"math"
	"math/rand"

	"teco/internal/kernels"
)

// MLP is an embedding + two-layer softmax classifier with a flat parameter
// vector, so the whole model can ride the tensor/DBA machinery as one
// buffer:
//
//	tokens -> mean(Emb[tok]) -> ReLU(x W1 + b1) -> W2 + b2 -> softmax.
//
// The embedding table gives the model the sparse-update structure of real
// transformer fine-tuning: only rows appearing in a batch receive
// gradients, so a large share of parameters is bit-identical across
// consecutive steps (paper §III, "44.5% of parameters do not change").
type MLP struct {
	Vocab, Dim, Hidden, Classes int
	// Params is the flat FP32 parameter vector:
	// [Emb (Vocab*Dim) | W1 (Dim*Hidden) | b1 | W2 (Hidden*Classes) | b2].
	Params []float32

	// sc holds the preallocated forward/backward work buffers, so the
	// per-example hot loops run allocation-free. Because of it an MLP is
	// not safe for concurrent use — each trainer owns its own instance.
	sc *mlpScratch
}

// mlpScratch is the per-instance buffer set for one forward/backward pass.
// Slices returned by Forward (probs) alias these buffers and are valid
// until the next call on the same MLP.
type mlpScratch struct {
	x, h, z, probs []float32
	dz, dh, dx     []float32
	act            []int // ReLU-active hidden units, compacted per example
}

func (m *MLP) scratch() *mlpScratch {
	if m.sc == nil {
		m.sc = &mlpScratch{
			x:     make([]float32, m.Dim),
			h:     make([]float32, m.Hidden),
			z:     make([]float32, m.Classes),
			probs: make([]float32, m.Classes),
			dz:    make([]float32, m.Classes),
			dh:    make([]float32, m.Hidden),
			dx:    make([]float32, m.Dim),
			act:   make([]int, 0, m.Hidden),
		}
	}
	return m.sc
}

// NewMLP builds a model with Kaiming-style random initialization.
func NewMLP(vocab, dim, hidden, classes int, seed int64) *MLP {
	m := &MLP{Vocab: vocab, Dim: dim, Hidden: hidden, Classes: classes}
	m.Params = make([]float32, m.NumParams())
	rng := rand.New(rand.NewSource(seed))
	emb, w1, _, w2, _ := m.views(m.Params)
	for i := range emb {
		emb[i] = 0.5 * float32(rng.NormFloat64())
	}
	s1 := float32(math.Sqrt(2 / float64(dim)))
	for i := range w1 {
		w1[i] = s1 * float32(rng.NormFloat64())
	}
	s2 := float32(math.Sqrt(2 / float64(hidden)))
	for i := range w2 {
		w2[i] = s2 * float32(rng.NormFloat64())
	}
	return m
}

// NumParams returns the flat parameter count.
func (m *MLP) NumParams() int {
	return m.Vocab*m.Dim + m.Dim*m.Hidden + m.Hidden + m.Hidden*m.Classes + m.Classes
}

// views slices a flat vector into (Emb, W1, b1, W2, b2).
func (m *MLP) views(p []float32) (emb, w1, b1, w2, b2 []float32) {
	o := 0
	emb = p[o : o+m.Vocab*m.Dim]
	o += m.Vocab * m.Dim
	w1 = p[o : o+m.Dim*m.Hidden]
	o += m.Dim * m.Hidden
	b1 = p[o : o+m.Hidden]
	o += m.Hidden
	w2 = p[o : o+m.Hidden*m.Classes]
	o += m.Hidden * m.Classes
	b2 = p[o : o+m.Classes]
	return
}

// embed computes the mean embedding of a token bag into x.
func (m *MLP) embed(params []float32, tok []int, x []float32) []float32 {
	emb, _, _, _, _ := m.views(params)
	for d := range x {
		x[d] = 0
	}
	for _, t := range tok {
		base := t * m.Dim
		for d := 0; d < m.Dim; d++ {
			x[d] += emb[base+d]
		}
	}
	inv := float32(1.0 / float64(len(tok)))
	for d := range x {
		x[d] *= inv
	}
	return x
}

// Forward computes class probabilities for one example using the given
// parameter vector (which may be the DBA-merged accelerator copy). The
// returned slice aliases the MLP's scratch buffers and is valid until the
// next call on this instance.
func (m *MLP) Forward(params []float32, tok []int) []float32 {
	probs, _, _ := m.forwardHidden(params, tok)
	return probs
}

// forwardHidden runs the forward pass with both dense layers on the shared
// blocked kernels (internal/kernels). Each accumulator still receives its
// additions in the original index order — h[j] over ascending d, z[c] over
// ascending j — so the FP32 results are bit-identical to the naive
// column-major loops, just without the Hidden-strided (resp.
// Classes-strided) weight walks.
func (m *MLP) forwardHidden(params []float32, tok []int) (probs, hidden, x []float32) {
	_, w1, b1, w2, b2 := m.views(params)
	sc := m.scratch()
	x = m.embed(params, tok, sc.x)
	h := sc.h
	kernels.MatVecInto(h, b1, x, w1, m.Dim, m.Hidden)
	for j, s := range h {
		if s < 0 {
			h[j] = 0
		}
	}
	z := sc.z
	kernels.MatVecInto(z, b2, h, w2, m.Hidden, m.Classes)
	return softmaxInto(sc.probs, z), h, x
}

func softmax(z []float32) []float32 {
	return softmaxInto(make([]float32, len(z)), z)
}

func softmaxInto(out, z []float32) []float32 {
	maxZ := z[0]
	for _, v := range z[1:] {
		if v > maxZ {
			maxZ = v
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(float64(v - maxZ))
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
	return out
}

// LossAndGrad computes mean cross-entropy loss over a minibatch and the
// gradient with respect to params, written into grads (zeroed first).
// Returns the loss. Embedding gradients are sparse: only rows whose tokens
// appear in the batch are touched.
func (m *MLP) LossAndGrad(params []float32, ds *Dataset, batch []int, grads []float32) float64 {
	for i := range grads {
		grads[i] = 0
	}
	gemb, gw1, gb1, gw2, gb2 := m.views(grads)
	_, w1, _, w2, _ := m.views(params)
	sc := m.scratch()
	var loss float64
	inv := float32(1.0 / float64(len(batch)))
	for _, idx := range batch {
		tok := ds.TrainTok[idx]
		y := ds.TrainY[idx]
		probs, h, x := m.forwardHidden(params, tok)
		p := float64(probs[y])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
		// dz = probs - onehot(y), scaled by 1/B.
		dz := sc.dz
		for c := range dz {
			dz[c] = probs[c] * inv
		}
		dz[y] -= inv
		// W2, b2 gradients and hidden backprop via the fused backward
		// kernel (rank-1 gw2 update + ascending-c dh chain per row).
		dh := sc.dh
		kernels.BackProjSet(gw2, dh, h, dz, w2, m.Hidden, m.Classes)
		for c := 0; c < m.Classes; c++ {
			gb2[c] += dz[c]
		}
		// ReLU gate: compact the active hidden units once, then walk W1
		// row-major. Every accumulator keeps its original addition order —
		// gw1[d*H+j] receives exactly one term per example and dx[d] sums
		// over the active j in ascending order either way — so the
		// interchange is bit-identical to the j-outer strided loop.
		act := sc.act[:0]
		for j := 0; j < m.Hidden; j++ {
			if h[j] <= 0 {
				continue
			}
			gb1[j] += dh[j]
			act = append(act, j)
		}
		sc.act = act
		dx := sc.dx
		for d := 0; d < m.Dim; d++ {
			base := d * m.Hidden
			gw1row := gw1[base : base+m.Hidden]
			w1row := w1[base : base+m.Hidden]
			xd := x[d]
			var s float32
			for _, j := range act {
				dhj := dh[j]
				gw1row[j] += xd * dhj
				s += w1row[j] * dhj
			}
			dx[d] = s
		}
		tokInv := float32(1.0 / float64(len(tok)))
		for _, t := range tok {
			base := t * m.Dim
			for d := 0; d < m.Dim; d++ {
				gemb[base+d] += dx[d] * tokInv
			}
		}
	}
	return loss / float64(len(batch))
}

// Accuracy evaluates top-1 accuracy on the test split using params.
func (m *MLP) Accuracy(params []float32, ds *Dataset) float64 {
	correct := 0
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		best := 0
		for c := range probs {
			if probs[c] > probs[best] {
				best = c
			}
		}
		if best == ds.TestY[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.TestTok))
}

// MeanLoss evaluates mean cross-entropy on the test split.
func (m *MLP) MeanLoss(params []float32, ds *Dataset) float64 {
	var loss float64
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		p := float64(probs[ds.TestY[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
	}
	return loss / float64(len(ds.TestTok))
}
