package realtrain

import (
	"math"
	"math/rand"
)

// MLP is an embedding + two-layer softmax classifier with a flat parameter
// vector, so the whole model can ride the tensor/DBA machinery as one
// buffer:
//
//	tokens -> mean(Emb[tok]) -> ReLU(x W1 + b1) -> W2 + b2 -> softmax.
//
// The embedding table gives the model the sparse-update structure of real
// transformer fine-tuning: only rows appearing in a batch receive
// gradients, so a large share of parameters is bit-identical across
// consecutive steps (paper §III, "44.5% of parameters do not change").
type MLP struct {
	Vocab, Dim, Hidden, Classes int
	// Params is the flat FP32 parameter vector:
	// [Emb (Vocab*Dim) | W1 (Dim*Hidden) | b1 | W2 (Hidden*Classes) | b2].
	Params []float32
}

// NewMLP builds a model with Kaiming-style random initialization.
func NewMLP(vocab, dim, hidden, classes int, seed int64) *MLP {
	m := &MLP{Vocab: vocab, Dim: dim, Hidden: hidden, Classes: classes}
	m.Params = make([]float32, m.NumParams())
	rng := rand.New(rand.NewSource(seed))
	emb, w1, _, w2, _ := m.views(m.Params)
	for i := range emb {
		emb[i] = 0.5 * float32(rng.NormFloat64())
	}
	s1 := float32(math.Sqrt(2 / float64(dim)))
	for i := range w1 {
		w1[i] = s1 * float32(rng.NormFloat64())
	}
	s2 := float32(math.Sqrt(2 / float64(hidden)))
	for i := range w2 {
		w2[i] = s2 * float32(rng.NormFloat64())
	}
	return m
}

// NumParams returns the flat parameter count.
func (m *MLP) NumParams() int {
	return m.Vocab*m.Dim + m.Dim*m.Hidden + m.Hidden + m.Hidden*m.Classes + m.Classes
}

// views slices a flat vector into (Emb, W1, b1, W2, b2).
func (m *MLP) views(p []float32) (emb, w1, b1, w2, b2 []float32) {
	o := 0
	emb = p[o : o+m.Vocab*m.Dim]
	o += m.Vocab * m.Dim
	w1 = p[o : o+m.Dim*m.Hidden]
	o += m.Dim * m.Hidden
	b1 = p[o : o+m.Hidden]
	o += m.Hidden
	w2 = p[o : o+m.Hidden*m.Classes]
	o += m.Hidden * m.Classes
	b2 = p[o : o+m.Classes]
	return
}

// embed computes the mean embedding of a token bag.
func (m *MLP) embed(params []float32, tok []int) []float32 {
	emb, _, _, _, _ := m.views(params)
	x := make([]float32, m.Dim)
	for _, t := range tok {
		base := t * m.Dim
		for d := 0; d < m.Dim; d++ {
			x[d] += emb[base+d]
		}
	}
	inv := float32(1.0 / float64(len(tok)))
	for d := range x {
		x[d] *= inv
	}
	return x
}

// Forward computes class probabilities for one example using the given
// parameter vector (which may be the DBA-merged accelerator copy).
func (m *MLP) Forward(params []float32, tok []int) []float32 {
	probs, _, _ := m.forwardHidden(params, tok)
	return probs
}

func (m *MLP) forwardHidden(params []float32, tok []int) (probs, hidden, x []float32) {
	_, w1, b1, w2, b2 := m.views(params)
	x = m.embed(params, tok)
	h := make([]float32, m.Hidden)
	for j := 0; j < m.Hidden; j++ {
		s := b1[j]
		for d := 0; d < m.Dim; d++ {
			s += x[d] * w1[d*m.Hidden+j]
		}
		if s < 0 {
			s = 0
		}
		h[j] = s
	}
	z := make([]float32, m.Classes)
	for c := 0; c < m.Classes; c++ {
		s := b2[c]
		for j := 0; j < m.Hidden; j++ {
			s += h[j] * w2[j*m.Classes+c]
		}
		z[c] = s
	}
	return softmax(z), h, x
}

func softmax(z []float32) []float32 {
	maxZ := z[0]
	for _, v := range z[1:] {
		if v > maxZ {
			maxZ = v
		}
	}
	var sum float64
	out := make([]float32, len(z))
	for i, v := range z {
		e := math.Exp(float64(v - maxZ))
		out[i] = float32(e)
		sum += e
	}
	for i := range out {
		out[i] = float32(float64(out[i]) / sum)
	}
	return out
}

// LossAndGrad computes mean cross-entropy loss over a minibatch and the
// gradient with respect to params, written into grads (zeroed first).
// Returns the loss. Embedding gradients are sparse: only rows whose tokens
// appear in the batch are touched.
func (m *MLP) LossAndGrad(params []float32, ds *Dataset, batch []int, grads []float32) float64 {
	for i := range grads {
		grads[i] = 0
	}
	gemb, gw1, gb1, gw2, gb2 := m.views(grads)
	_, w1, _, w2, _ := m.views(params)
	var loss float64
	inv := float32(1.0 / float64(len(batch)))
	for _, idx := range batch {
		tok := ds.TrainTok[idx]
		y := ds.TrainY[idx]
		probs, h, x := m.forwardHidden(params, tok)
		p := float64(probs[y])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
		// dz = probs - onehot(y), scaled by 1/B.
		dz := make([]float32, m.Classes)
		for c := range dz {
			dz[c] = probs[c] * inv
		}
		dz[y] -= inv
		// W2, b2 gradients and hidden backprop.
		dh := make([]float32, m.Hidden)
		for j := 0; j < m.Hidden; j++ {
			hj := h[j]
			for c := 0; c < m.Classes; c++ {
				gw2[j*m.Classes+c] += hj * dz[c]
				dh[j] += w2[j*m.Classes+c] * dz[c]
			}
		}
		for c := 0; c < m.Classes; c++ {
			gb2[c] += dz[c]
		}
		// ReLU gate, then W1, b1, and the embedding rows.
		dx := make([]float32, m.Dim)
		for j := 0; j < m.Hidden; j++ {
			if h[j] <= 0 {
				continue
			}
			gb1[j] += dh[j]
			for d := 0; d < m.Dim; d++ {
				gw1[d*m.Hidden+j] += x[d] * dh[j]
				dx[d] += w1[d*m.Hidden+j] * dh[j]
			}
		}
		tokInv := float32(1.0 / float64(len(tok)))
		for _, t := range tok {
			base := t * m.Dim
			for d := 0; d < m.Dim; d++ {
				gemb[base+d] += dx[d] * tokInv
			}
		}
	}
	return loss / float64(len(batch))
}

// Accuracy evaluates top-1 accuracy on the test split using params.
func (m *MLP) Accuracy(params []float32, ds *Dataset) float64 {
	correct := 0
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		best := 0
		for c := range probs {
			if probs[c] > probs[best] {
				best = c
			}
		}
		if best == ds.TestY[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.TestTok))
}

// MeanLoss evaluates mean cross-entropy on the test split.
func (m *MLP) MeanLoss(params []float32, ds *Dataset) float64 {
	var loss float64
	for i, tok := range ds.TestTok {
		probs := m.Forward(params, tok)
		p := float64(probs[ds.TestY[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
	}
	return loss / float64(len(ds.TestTok))
}
