package realtrain

import (
	"reflect"
	"testing"

	"teco/internal/conformance/check"
	"teco/internal/cxl"
)

func groupCfg(seed int64) Config {
	return Config{Steps: 30, PreSteps: 20, Seed: seed, SampleEvery: 5}
}

func groupDBACfg(seed int64) Config {
	c := groupCfg(seed)
	c.DBA = true
	c.ActAfterSteps = 8
	return c
}

func runGroup(t *testing.T, cfg GroupConfig) (*Group, Result) {
	t.Helper()
	g, err := NewGroup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

// The tentpole equality: N-replica fabric training is bit-identical to the
// single-link trainer — same Result (loss trajectory, final metrics), same
// master and compute parameters, at every replica count, with and without
// DBA and mixed precision.
func TestGroupMatchesTrainer(t *testing.T) {
	check.Enable(t)
	for name, mk := range map[string]func(int64) Config{
		"plain": groupCfg,
		"dba":   groupDBACfg,
		"fp16": func(seed int64) Config {
			c := groupDBACfg(seed)
			c.FP16Compute = true
			return c
		},
	} {
		t.Run(name, func(t *testing.T) {
			cfg := mk(41)
			want := Run(cfg)
			wantTr, err := NewTrainer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for !wantTr.Done() {
				if err := wantTr.Step(); err != nil {
					t.Fatal(err)
				}
			}
			for _, replicas := range []int{1, 2, 3} {
				g, res := runGroup(t, GroupConfig{Train: cfg, Replicas: replicas})
				if !reflect.DeepEqual(res, want) {
					t.Fatalf("replicas=%d: result diverged from single trainer", replicas)
				}
				if !bitsEqual(g.Trainer().MasterParams(), wantTr.MasterParams()) {
					t.Fatalf("replicas=%d: master params diverged", replicas)
				}
				if !bitsEqual(g.Trainer().ComputeParams(), wantTr.ComputeParams()) {
					t.Fatalf("replicas=%d: compute params diverged", replicas)
				}
				if st := g.Stats(); st.Steps != int64(cfg.Steps) || st.GradFrames == 0 {
					t.Fatalf("replicas=%d: implausible stats %+v", replicas, st)
				}
			}
		})
	}
}

// Per-port bit errors corrupt frames on the wire; CRC retransmits (and
// poisoned-frame refetches) repair every one, so the run stays bit-identical
// while the counters show real fault traffic.
func TestGroupExactUnderFrameFaults(t *testing.T) {
	check.Enable(t)
	cfg := groupDBACfg(43)
	want := Run(cfg)
	g, res := runGroup(t, GroupConfig{
		Train:    cfg,
		Replicas: 3,
		Faults:   cxl.FaultConfig{Seed: 9, BER: 2e-6},
	})
	if !reflect.DeepEqual(res, want) {
		t.Fatal("bit errors leaked into the training result")
	}
	st := g.Stats()
	if st.FrameRetries == 0 {
		t.Fatalf("BER 2e-6 produced no frame retransmits: %+v", st)
	}
	if ns := g.NetStats(); ns.Retries != st.FrameRetries {
		t.Fatalf("group retries %d != net retries %d", st.FrameRetries, ns.Retries)
	}
}

// The chaos proof from the issue: one port killed mid-run at BER=0 — the
// degraded data-parallel run completes and equals the fault-free reference
// (which, by the tape equality, is the same at N-1 replicas and at 1).
func TestFabricChaosKillPort(t *testing.T) {
	check.Enable(t)
	cfg := groupDBACfg(47)
	want := Run(cfg)
	_, wantN1 := runGroup(t, GroupConfig{Train: cfg, Replicas: 2})

	g, res := runGroup(t, GroupConfig{
		Train:      cfg,
		Replicas:   3,
		KillPort:   3, // 1-based: replica id 2
		KillAtStep: 11,
	})
	if !reflect.DeepEqual(res, wantN1) {
		t.Fatal("degraded run diverged from the fault-free N-1-replica reference")
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatal("degraded run diverged from the single trainer")
	}
	st := g.Stats()
	if st.LostReplicas != 1 {
		t.Fatalf("lost %d replicas, want 1: %+v", st.LostReplicas, st)
	}
	if st.DegradedSteps == 0 {
		t.Fatalf("kill mid-run produced no degraded step: %+v", st)
	}
	if st.Redistributed == 0 {
		t.Fatalf("lost shard never redistributed: %+v", st)
	}
	if live := g.LiveReplicas(); len(live) != 2 {
		t.Fatalf("live replicas %v, want 2 survivors", live)
	}
}

// Same kill with a spare port available: delivery fails over, no replica is
// lost, no step degrades, and the result still matches.
func TestFabricChaosKillPortWithSpare(t *testing.T) {
	check.Enable(t)
	cfg := groupCfg(53)
	want := Run(cfg)
	g, res := runGroup(t, GroupConfig{
		Train:      cfg,
		Replicas:   3,
		SparePorts: 1,
		KillPort:   1,
		KillAtStep: 7,
	})
	if !reflect.DeepEqual(res, want) {
		t.Fatal("failed-over run diverged")
	}
	st := g.Stats()
	if st.LostReplicas != 0 || st.DegradedSteps != 0 {
		t.Fatalf("spare port did not prevent degradation: %+v", st)
	}
	if g.NetStats().Failovers == 0 {
		t.Fatalf("kill with spare produced no failover: %+v", g.NetStats())
	}
}

// A lost replica revived mid-run rebuilds its local state from the host and
// rejoins; the run completes bit-identical with the full group back.
func TestGroupReviveRebuilds(t *testing.T) {
	check.Enable(t)
	cfg := groupCfg(59)
	want := Run(cfg)
	g, err := NewGroup(GroupConfig{Train: cfg, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	for g.Trainer().StepCount() < 10 {
		if err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.KillReplica(1); err != nil {
		t.Fatal(err)
	}
	for g.Trainer().StepCount() < 20 {
		if err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(g.LiveReplicas()) != 2 {
		t.Fatal("killed replica still live")
	}
	if err := g.ReviveReplica(1); err != nil {
		t.Fatal(err)
	}
	if len(g.LiveReplicas()) != 3 {
		t.Fatal("revived replica not live")
	}
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatal("revived run diverged")
	}
	if st := g.Stats(); st.Rebuilds != 1 || st.LostReplicas != 1 {
		t.Fatalf("rebuild accounting: %+v", st)
	}
}

// A group restored from a PR 2 checkpoint snapshot finishes bit-identical
// to the uninterrupted group (and therefore to the single trainer).
func TestGroupSnapshotResume(t *testing.T) {
	cfg := groupDBACfg(61)
	ref, err := NewGroup(GroupConfig{Train: cfg, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	for ref.Trainer().StepCount() < 13 {
		if err := ref.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap := ref.Trainer().Snapshot()
	refRes, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	res, err := NewGroupFromSnapshot(GroupConfig{Train: cfg, Replicas: 2}, snap)
	if err != nil {
		t.Fatal(err)
	}
	resRes, err := res.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refRes, resRes) {
		t.Fatal("snapshot-restored group diverged")
	}
	if !bitsEqual(ref.Trainer().MasterParams(), res.Trainer().MasterParams()) {
		t.Fatal("snapshot-restored master params diverged")
	}
}

// The staged-tape pipeline is worker-count invariant: replicas compute
// tapes in parallel goroutines but every tape is a pure function of shipped
// bits.
func TestGroupWorkersInvariance(t *testing.T) {
	var results []Result
	for _, workers := range []int{1, 4} {
		cfg := groupCfg(67)
		cfg.Workers = workers
		_, res := runGroup(t, GroupConfig{Train: cfg, Replicas: 3})
		res.Config.Workers = 0 // only the worker knob may differ
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("worker count changed the training result")
	}
}

// Losing the last replica is a hard error, not a silent wrong answer.
func TestGroupAllReplicasLost(t *testing.T) {
	cfg := groupCfg(71)
	g, err := NewGroup(GroupConfig{Train: cfg, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.KillReplica(0); err != nil {
		t.Fatal(err)
	}
	if err := g.Step(); err == nil {
		t.Fatal("step with every replica lost succeeded")
	}
}

func TestGroupValidation(t *testing.T) {
	base := groupCfg(3)
	for name, gc := range map[string]GroupConfig{
		"zero-replicas": {Train: base, Replicas: 0},
		"batch-small":   {Train: base, Replicas: 64},
		"kill-range":    {Train: base, Replicas: 2, KillPort: 5},
		"attention": {Train: func() Config {
			c := base
			c.Arch = "attention"
			return c
		}(), Replicas: 2},
	} {
		if _, err := NewGroup(gc); err == nil {
			t.Fatalf("%s: config accepted", name)
		}
	}
}
