package realtrain

import (
	"math"
	"math/rand"
	"testing"
)

// The foundational fabric equality: computing per-sample tapes and replaying
// them in batch order reproduces LossAndGrad bit-for-bit — loss and every
// gradient word.
func TestTapeReplayMatchesLossAndGrad(t *testing.T) {
	ds := NewDataset(DatasetConfig{Seed: 3, Vocab: 512, Train: 512})
	m := NewMLP(ds.Vocab, ds.Dim, 64, ds.Classes, 17)
	params := m.Params
	rng := rand.New(rand.NewSource(17))

	batch := ds.Batch(rng, 32)
	want := make([]float32, len(params))
	wantLoss := m.LossAndGrad(params, ds, batch, want)

	inv := float32(1.0 / float64(len(batch)))
	got := make([]float32, len(params))
	var gotLoss float64
	// Compute tapes out of order (reverse) to prove order-independence of
	// the staging phase; replay strictly in batch order.
	tapes := make([]*sampleTape, len(batch))
	for pos := len(batch) - 1; pos >= 0; pos-- {
		tp := newSampleTape(m)
		m.tapeSample(params, ds, batch[pos], pos, inv, tp)
		tapes[pos] = tp
	}
	for pos := range batch {
		m.replayTape(got, ds, tapes[pos])
		gotLoss += tapes[pos].loss
	}
	gotLoss /= float64(len(batch))

	if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
		t.Fatalf("loss: replay %v, direct %v", gotLoss, wantLoss)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("grad word %d: replay %x, direct %x",
				i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

// A tape survives the frame codec: encode, decode into a fresh tape, and
// every field (including float bit patterns) round-trips.
func TestTapeEncodeDecodeRoundTrip(t *testing.T) {
	ds := NewDataset(DatasetConfig{Seed: 4, Vocab: 256, Train: 256})
	m := NewMLP(ds.Vocab, ds.Dim, 48, ds.Classes, 23)
	params := m.Params

	tp := newSampleTape(m)
	m.tapeSample(params, ds, 5, 3, 1.0/8, tp)

	wire := tp.appendEncode(nil)
	if len(wire) != tapeWireLen(m) {
		t.Fatalf("encoded %d bytes, tapeWireLen says %d", len(wire), tapeWireLen(m))
	}
	got := newSampleTape(m)
	if err := got.decode(wire, m); err != nil {
		t.Fatal(err)
	}
	if got.pos != tp.pos || got.idx != tp.idx ||
		math.Float64bits(got.loss) != math.Float64bits(tp.loss) {
		t.Fatalf("header mismatch: %+v vs %+v", got, tp)
	}
	pairs := [][2][]float32{
		{got.h, tp.h}, {got.x, tp.x}, {got.dz, tp.dz}, {got.dh, tp.dh}, {got.dx, tp.dx},
	}
	for pi, p := range pairs {
		for i := range p[0] {
			if math.Float32bits(p[0][i]) != math.Float32bits(p[1][i]) {
				t.Fatalf("array %d word %d mismatch", pi, i)
			}
		}
	}

	// Wrong-length payloads are rejected, never partially applied.
	if err := got.decode(wire[:len(wire)-1], m); err == nil {
		t.Fatal("truncated tape accepted")
	}
	if err := got.decode(append(wire, 0), m); err == nil {
		t.Fatal("oversized tape accepted")
	}
}
